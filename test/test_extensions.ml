(* Tests for the extension features: the retiming transform (§7.4), the
   paper-style pretty printer, and the interpreter's enforcement of the
   §4.5 undefined-behaviour rules. *)

open Hir_ir
open Hir_dialect

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let verify_clean m =
  let e = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error err -> List.iter (Diagnostic.Engine.emit e) (Diagnostic.Engine.to_list err));
  Verify_schedule.verify_module e m;
  if Diagnostic.Engine.has_errors e then
    Alcotest.failf "must verify:\n%s" (Diagnostic.Engine.to_string e)

(* ------------------------------------------------------------------ *)
(* Retiming                                                            *)

(* A design with two 32-bit shift registers feeding an adder: retiming
   must sink them into one register after the adder. *)
let build_retimable () =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"retimable"
      ~args:[ Builder.arg "x" Typ.i32; Builder.arg "y" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
      (fun b args t ->
        match args with
        | [ x; y ] ->
          let dx = Builder.delay b x ~by:2 ~at:Builder.(t @>> 0) in
          let dy = Builder.delay b y ~by:2 ~at:Builder.(t @>> 0) in
          let s = Builder.add b dx dy in
          Builder.return_ b [ s ]
        | _ -> assert false)
  in
  (m, f)

let count_ops root name = List.length (Ir.Walk.find_all root name)

let total_delay_bits root =
  List.fold_left
    (fun acc d ->
      match Typ.bit_width (Ir.Value.typ (Ir.Op.result d 0)) with
      | Some w -> acc + (w * Ops.delay_by d)
      | None -> acc)
    0
    (Ir.Walk.find_all root "hir.delay")

let test_retime_sinks_registers () =
  let m, _f = build_retimable () in
  check_int "two delays before" 2 (count_ops m "hir.delay");
  check_int "128 register bits before" 128 (total_delay_bits m);
  check_bool "changed" true (Retime.run m);
  check_int "one delay after" 1 (count_ops m "hir.delay");
  check_int "64 register bits after" 64 (total_delay_bits m);
  verify_clean m

let test_retime_preserves_semantics () =
  let run_design m f a b =
    let result, _ =
      Interp.run ~module_op:m ~func:f
        [ Interp.Scalar (Bitvec.of_int ~width:32 a); Interp.Scalar (Bitvec.of_int ~width:32 b) ]
    in
    Bitvec.to_int (List.hd result.Interp.return_values)
  in
  let m, f = build_retimable () in
  let before = run_design m f 1000 234 in
  ignore (Retime.run m);
  let after = run_design m f 1000 234 in
  check_int "same value" before after;
  check_int "it is the sum" 1234 after

let test_retime_respects_mixed_keys () =
  (* Delays with different depths must not be merged. *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"mixed"
      ~args:[ Builder.arg "x" Typ.i32 ]
      ~results:[ (Typ.i32, 0) ]
      (fun b args t ->
        match args with
        | [ x ] ->
          let d1 = Builder.delay b x ~by:1 ~at:Builder.(t @>> 0) in
          let d2 = Builder.delay b x ~by:2 ~at:Builder.(t @>> 0) in
          let s = Builder.add b d1 d2 in
          Builder.return_ b [ s ]
        | _ -> assert false)
  in
  check_bool "no change" false (Retime.run m);
  check_int "both delays kept" 2 (count_ops m "hir.delay")

let test_retime_rtl_equivalence () =
  (* The retimed design still produces the right value in generated
     Verilog. *)
  let m, f = build_retimable () in
  ignore (Retime.run m);
  verify_clean m;
  let emitted = Hir_codegen.Emit.emit ~module_op:m ~top:f () in
  let result, _ =
    Hir_rtl.Harness.run ~emitted
      ~inputs:
        [
          Hir_rtl.Harness.Scalar (Bitvec.of_int ~width:32 41);
          Hir_rtl.Harness.Scalar (Bitvec.of_int ~width:32 1);
        ]
      ~cycles:4 ()
  in
  (match result.Hir_rtl.Harness.output_values with
  | [ (_, v) ] -> check_int "41+1" 42 (Bitvec.to_int v)
  | _ -> Alcotest.fail "one output expected")

(* ------------------------------------------------------------------ *)
(* Pretty printer                                                      *)

let test_pretty_transpose () =
  let m, _ = Hir_kernels.Transpose.build () in
  let text = Pretty.module_to_string m in
  List.iter
    (fun needle -> check_bool needle true (contains text needle))
    [
      "hir.func @transpose at %t (%Ai : !hir.memref<16*16*i32, r>";
      "hir.for %i : i32 = %c0 to %c16 step %c1 iter_time(%ti = %t offset 1) {";
      "hir.mem_read %Ai[%i, %j] at %tj : i32";
      "hir.delay %j by 1 at %tj : i32";
      "hir.mem_write";
      "hir.yield at %tj offset 1";
      "hir.yield at %tf_j offset 1";
      "hir.return";
    ]

let test_pretty_stencil_call () =
  let m, _ = Hir_kernels.Stencil1d.build () in
  let text = Pretty.module_to_string m in
  check_bool "call with delay annotation" true
    (contains text "hir.call @stencil_1d_op(");
  check_bool "result delay printed" true (contains text "delay 1)");
  check_bool "alloc printed" true (contains text "hir.alloc()")

let test_pretty_unroll () =
  let m, _ = Hir_kernels.Gemm.build () in
  let text = Pretty.module_to_string m in
  check_bool "unroll_for syntax" true
    (contains text "hir.unroll_for");
  check_bool "iter_time" true (contains text "iter_time(")

(* ------------------------------------------------------------------ *)
(* Interpreter UB enforcement (§4.5)                                   *)

let test_uninitialized_read_is_ub () =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"ub_read"
      ~args:[ Builder.arg "O" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let c0 = Builder.constant b 0 in
          let ports =
            Builder.alloc b ~kind:Ops.Lut_ram ~dims:[ 4 ] ~elem:Typ.i32
              ~ports:[ Types.Read ]
          in
          let r = List.hd ports in
          let v = Builder.mem_read b r [ c0 ] ~at:Builder.(t @>> 0) in
          Builder.mem_write b v o [ c0 ] ~at:Builder.(t @>> 1);
          Builder.return_ b []
        | _ -> assert false)
  in
  match Interp.run ~module_op:m ~func:f [ Interp.Out_tensor ] with
  | exception Interp.Runtime_error msg ->
    check_bool "mentions uninitialized" true (contains msg "uninitialized")
  | _ -> Alcotest.fail "expected a runtime error"

let test_out_of_bounds_is_ub () =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"ub_oob"
      ~args:
        [
          Builder.arg "A" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "O" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ a; o ] ->
          let c9 = Builder.constant b 9 in
          let c0 = Builder.constant b 0 in
          let v = Builder.mem_read b a [ c9 ] ~at:Builder.(t @>> 0) in
          Builder.mem_write b v o [ c0 ] ~at:Builder.(t @>> 1);
          Builder.return_ b []
        | _ -> assert false)
  in
  let input = Array.make 4 (Bitvec.zero 32) in
  match Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ] with
  | exception Interp.Runtime_error msg ->
    check_bool "mentions bounds" true (contains msg "bounds")
  | _ -> Alcotest.fail "expected a runtime error"

let test_descending_loop_is_ub () =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"ub_loop" ~args:[]
      (fun b _ t ->
        let c5 = Builder.constant b 5 in
        let c2 = Builder.constant b 2 in
        let c1 = Builder.constant b 1 in
        let _ =
          Builder.for_loop b ~lb:c5 ~ub:c2 ~step:c1 ~at:Builder.(t @>> 1)
            (fun b ~iv:_ ~ti -> Builder.yield b ~at:Builder.(ti @>> 1))
        in
        Builder.return_ b [])
  in
  match Interp.run ~module_op:m ~func:f [] with
  | exception Interp.Runtime_error msg -> check_bool "UB reported" true (contains msg "UB")
  | _ -> Alcotest.fail "expected a runtime error"

(* ------------------------------------------------------------------ *)
(* Extern modules and schedule signatures (§5.4)                       *)

let test_extern_through_interpreter () =
  (* The MAC of Figure 2 with balanced delays, executed through the
     interpreter using the registered behavioural model of the
     pipelined multiplier. *)
  let m = Builder.create_module () in
  let mult =
    Builder.extern_func m ~name:"mult"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
  in
  let f =
    Builder.func m ~name:"mac"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32; Builder.arg "c" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let p = List.hd (Builder.call b ~callee:mult [ a; bb ] ~at:Builder.(t @>> 0)) in
          let c2 = Builder.delay b c ~by:2 ~at:Builder.(t @>> 0) in
          Builder.return_ b [ Builder.add b p c2 ]
        | _ -> assert false)
  in
  verify_clean m;
  let bv n = Bitvec.of_int ~width:32 n in
  let result, _ =
    Interp.run ~module_op:m ~func:f
      [ Interp.Scalar (bv 7); Interp.Scalar (bv 6); Interp.Scalar (bv 100) ]
  in
  check_int "7*6+100" 142 (Bitvec.to_int (List.hd result.Interp.return_values));
  check_int "latency = multiplier depth" 2 result.Interp.cycles

(* A callee whose argument arrives late (arg_delay > 0): the caller
   must supply it at exactly that offset, which the verifier enforces
   and both executions honour. *)
let test_arg_delays () =
  let m = Builder.create_module () in
  let callee =
    Builder.func m ~name:"late_arg"
      ~args:[ Builder.arg "x" Typ.i32; Builder.arg ~delay:2 "y" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
      (fun b args t ->
        match args with
        | [ x; y ] ->
          (* x arrives at t, y at t+2: align x. *)
          let x2 = Builder.delay b x ~by:2 ~at:Builder.(t @>> 0) in
          Builder.return_ b [ Builder.add b x2 y ]
        | _ -> assert false)
  in
  let f =
    Builder.func m ~name:"caller"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
      (fun b args t ->
        match args with
        | [ a; bb ] ->
          (* The y argument must be valid at t+2; produce it there. *)
          let b2 = Builder.delay b bb ~by:2 ~at:Builder.(t @>> 0) in
          let r = List.hd (Builder.call b ~callee [ a; b2 ] ~at:Builder.(t @>> 0)) in
          Builder.return_ b [ r ]
        | _ -> assert false)
  in
  verify_clean m;
  let bv n = Bitvec.of_int ~width:32 n in
  let result, _ =
    Interp.run ~module_op:m ~func:f [ Interp.Scalar (bv 30); Interp.Scalar (bv 12) ]
  in
  check_int "30+12" 42 (Bitvec.to_int (List.hd result.Interp.return_values));
  (* And through the generated Verilog. *)
  let emitted = Hir_codegen.Emit.emit ~module_op:m ~top:f () in
  let rtl, _ =
    Hir_rtl.Harness.run ~emitted
      ~inputs:[ Hir_rtl.Harness.Scalar (bv 30); Hir_rtl.Harness.Scalar (bv 12) ]
      ~cycles:6 ()
  in
  (match rtl.Hir_rtl.Harness.output_values with
  | [ (_, v) ] -> check_int "RTL agrees" 42 (Bitvec.to_int v)
  | _ -> Alcotest.fail "one output expected")

let () =
  Alcotest.run "extensions"
    [
      ( "retiming",
        [
          Alcotest.test_case "sinks registers" `Quick test_retime_sinks_registers;
          Alcotest.test_case "preserves semantics" `Quick test_retime_preserves_semantics;
          Alcotest.test_case "mixed keys untouched" `Quick test_retime_respects_mixed_keys;
          Alcotest.test_case "RTL equivalence" `Quick test_retime_rtl_equivalence;
        ] );
      ( "pretty printer",
        [
          Alcotest.test_case "transpose (Listing 1)" `Quick test_pretty_transpose;
          Alcotest.test_case "stencil call" `Quick test_pretty_stencil_call;
          Alcotest.test_case "gemm unroll" `Quick test_pretty_unroll;
        ] );
      ( "extern & signatures (§5.4)",
        [
          Alcotest.test_case "extern through interpreter" `Quick
            test_extern_through_interpreter;
          Alcotest.test_case "argument delays" `Quick test_arg_delays;
        ] );
      ( "interpreter UB (§4.5)",
        [
          Alcotest.test_case "uninitialized read" `Quick test_uninitialized_read_is_ub;
          Alcotest.test_case "out of bounds" `Quick test_out_of_bounds_is_ub;
          Alcotest.test_case "descending loop" `Quick test_descending_loop_is_ub;
        ] );
    ]
