(* Two-phase cycle-accurate simulator for the flattened synthesizable
   subset:

     phase 1  settle combinational logic (assigns in topological order)
     phase 2  evaluate all always @(posedge clk) statements against the
              settled state, then commit register and memory updates

   Width semantics follow Verilog's context-determined evaluation as
   documented in [Hir_verilog.Ast]. *)

open Hir_verilog.Ast

exception Sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

type signal = {
  mutable value : Bitvec.t;
  width : int;
  is_reg : bool;
}

type memory = { cells : Bitvec.t array; elem_width : int }

type assertion_failure = { at_cycle : int; message : string }

type t = {
  signals : (string, signal) Hashtbl.t;
  memories : (string, memory) Hashtbl.t;
  assigns : (string * expr) list;  (* topologically sorted *)
  always : stmt list;
  inputs : string list;
  outputs : string list;
  mutable cycle : int;
  mutable failures : assertion_failure list;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let signal_width t name =
  match Hashtbl.find_opt t.signals name with
  | Some s -> s.width
  | None -> (
    match Hashtbl.find_opt t.memories name with
    | Some m -> m.elem_width
    | None -> fail "unknown signal %s" name)

(* Wires read by an expression (for the dependency graph); memory reads
   depend on the address expression only — the memory contents are
   state. *)
let rec wire_deps expr acc =
  match expr with
  | Const _ -> acc
  | Ref name -> name :: acc
  | Index (_, a) -> wire_deps a acc
  | Slice (e, _, _) -> wire_deps e acc
  | Unop (_, e) -> wire_deps e acc
  | Binop (_, a, b) -> wire_deps a (wire_deps b acc)
  | Ternary (c, a, b) -> wire_deps c (wire_deps a (wire_deps b acc))
  | Concat es -> List.fold_left (fun acc e -> wire_deps e acc) acc es

let create (flat : Flatten.flat) =
  let signals = Hashtbl.create 256 in
  let memories = Hashtbl.create 16 in
  let assigns = ref [] in
  let always = ref [] in
  List.iter
    (fun item ->
      match item with
      | Wire_decl { name; width } ->
        Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = false }
      | Reg_decl { name; width } ->
        Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = true }
      | Mem_decl { name; width; depth; _ } ->
        Hashtbl.replace memories name
          { cells = Array.make depth (Bitvec.zero width); elem_width = width }
      | Assign { target; expr } -> assigns := (target, expr) :: !assigns
      | Always_ff stmts -> always := !always @ stmts
      | Comment _ -> ()
      | Instance _ -> fail "simulator requires a flattened design")
    flat.flat_items;
  (* Topologically sort the assigns: edge from each dependency that is
     itself an assign target. *)
  let assign_list = List.rev !assigns in
  let target_tbl = Hashtbl.create 64 in
  List.iter (fun (t, e) -> Hashtbl.replace target_tbl t e) assign_list;
  let visited = Hashtbl.create 64 in
  let sorted = ref [] in
  let rec visit ~stack target =
    match Hashtbl.find_opt visited target with
    | Some `Done -> ()
    | Some `In_progress ->
      fail "combinational loop through signal %s" target
    | None ->
      Hashtbl.replace visited target `In_progress;
      let expr = Hashtbl.find target_tbl target in
      List.iter
        (fun dep ->
          match Hashtbl.find_opt signals dep with
          | Some s when not s.is_reg ->
            if Hashtbl.mem target_tbl dep then visit ~stack:(target :: stack) dep
          | _ -> ())
        (wire_deps expr []);
      Hashtbl.replace visited target `Done;
      sorted := (target, expr) :: !sorted
  in
  List.iter (fun (t, _) -> visit ~stack:[] t) assign_list;
  {
    signals;
    memories;
    assigns = List.rev !sorted;
    always = !always;
    inputs = flat.flat_inputs;
    outputs = flat.flat_outputs;
    cycle = 0;
    failures = [];
  }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let rec natural t expr = natural_width ~signal_width:(signal_width t) expr

and eval t ~width expr : Bitvec.t =
  match expr with
  | Const b -> Bitvec.resize ~width b
  | Ref name -> (
    match Hashtbl.find_opt t.signals name with
    | Some s -> Bitvec.resize ~width s.value
    | None -> fail "read of unknown signal %s" name)
  | Index (name, addr) -> (
    match Hashtbl.find_opt t.memories name with
    | Some m ->
      let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
      if a < Array.length m.cells then Bitvec.resize ~width m.cells.(a)
      else Bitvec.zero width
    | None -> fail "indexing non-memory %s" name)
  | Slice (e, hi, lo) ->
    let v = eval t ~width:(max (hi + 1) (natural t e)) e in
    Bitvec.resize ~width (Bitvec.extract ~hi ~lo v)
  | Unop (Not, e) -> Bitvec.lognot (eval t ~width e)
  | Unop (Red_or, e) ->
    let v = eval t ~width:(max 1 (natural t e)) e in
    Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero v)))
  | Unop (Red_and, e) ->
    let w = max 1 (natural t e) in
    let v = eval t ~width:w e in
    Bitvec.resize ~width (Bitvec.of_bool (Bitvec.equal v (Bitvec.ones w)))
  | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
    let x = eval t ~width a and y = eval t ~width b in
    let f =
      match op with
      | Add -> Bitvec.add
      | Sub -> Bitvec.sub
      | Mul -> Bitvec.mul
      | And -> Bitvec.logand
      | Or -> Bitvec.logor
      | Xor -> Bitvec.logxor
      | _ -> assert false
    in
    f x y
  | Binop (Shl, a, b) ->
    let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
    Bitvec.shift_left (eval t ~width a) (min shift width)
  | Binop (Shr, a, b) ->
    let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
    Bitvec.shift_right_logical (eval t ~width a) (min shift width)
  | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
    let w = max 1 (max (natural t a) (natural t b)) in
    let x = eval t ~width:w a and y = eval t ~width:w b in
    let c = Bitvec.compare x y in
    let r =
      match op with
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Eq -> c = 0
      | Ne -> c <> 0
      | _ -> assert false
    in
    Bitvec.resize ~width (Bitvec.of_bool r)
  | Binop (Log_and, a, b) ->
    let x = eval t ~width:(max 1 (natural t a)) a in
    let y = eval t ~width:(max 1 (natural t b)) b in
    Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) && not (Bitvec.is_zero y)))
  | Binop (Log_or, a, b) ->
    let x = eval t ~width:(max 1 (natural t a)) a in
    let y = eval t ~width:(max 1 (natural t b)) b in
    Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) || not (Bitvec.is_zero y)))
  | Ternary (c, a, b) ->
    let cond = eval t ~width:(max 1 (natural t c)) c in
    if Bitvec.is_zero cond then eval t ~width b else eval t ~width a
  | Concat es ->
    let parts = List.map (fun e -> eval t ~width:(max 1 (natural t e)) e) es in
    let v = List.fold_left (fun acc p -> Bitvec.concat acc p) (List.hd parts) (List.tl parts) in
    Bitvec.resize ~width v

let eval_bool t expr = not (Bitvec.is_zero (eval t ~width:(max 1 (natural t expr)) expr))

(* ------------------------------------------------------------------ *)
(* Cycle execution                                                     *)

type update =
  | Set_reg of string * Bitvec.t
  | Set_mem of string * int * Bitvec.t

let rec run_stmt t acc stmt =
  match stmt with
  | Nonblocking (Lref name, e) ->
    let w = signal_width t name in
    Set_reg (name, eval t ~width:w e) :: acc
  | Nonblocking (Lindex (name, addr), e) -> (
    match Hashtbl.find_opt t.memories name with
    | Some m ->
      let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
      Set_mem (name, a, eval t ~width:m.elem_width e) :: acc
    | None -> fail "write to non-memory %s" name)
  | If (c, then_s, else_s) ->
    if eval_bool t c then List.fold_left (run_stmt t) acc then_s
    else List.fold_left (run_stmt t) acc else_s
  | Assert_stmt { cond; message } ->
    if not (eval_bool t cond) then
      t.failures <- { at_cycle = t.cycle; message } :: t.failures;
    acc

let settle t =
  List.iter
    (fun (target, expr) ->
      let s = Hashtbl.find t.signals target in
      s.value <- eval t ~width:s.width expr)
    t.assigns

let commit t updates =
  List.iter
    (fun u ->
      match u with
      | Set_reg (name, v) -> (Hashtbl.find t.signals name).value <- v
      | Set_mem (name, a, v) ->
        let m = Hashtbl.find t.memories name in
        if a < Array.length m.cells then m.cells.(a) <- v
        else
          t.failures <-
            { at_cycle = t.cycle; message = Printf.sprintf "write past end of %s" name }
            :: t.failures)
    updates

(* Drive an input signal (before [step]). *)
let set_input t name v =
  match Hashtbl.find_opt t.signals name with
  | Some s -> s.value <- Bitvec.resize ~width:s.width v
  | None -> fail "unknown input %s" name

let peek t name =
  match Hashtbl.find_opt t.signals name with
  | Some s -> s.value
  | None -> fail "unknown signal %s" name

(* Clock edge against already-settled combinational state. *)
let clock t =
  let updates = List.fold_left (run_stmt t) [] t.always in
  commit t updates;
  t.cycle <- t.cycle + 1

(* One full clock cycle: settle combinational logic, then clock all
   registers/memories.  Callers that need to observe settled outputs
   (e.g. memory agents) use [settle_only] + [clock] separately. *)
let step t =
  settle t;
  clock t

let settle_only t = settle t

let failures t = List.rev t.failures
let cycle t = t.cycle

(* All named signals with their widths, for waveform dumping. *)
let signal_names t =
  Hashtbl.fold (fun name s acc -> (name, s.width) :: acc) t.signals []
  |> List.sort compare
