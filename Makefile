# Convenience targets around dune; `make check` is the tier-1 gate
# plus a smoke run of the compilation service over examples/ and the
# built-in kernels.

SMOKE_DESIGNS := examples/designs/transpose.hir examples/designs/stencil_1d.hir \
                 examples/designs/fifo.hir

.PHONY: all build test check faults crash fuzz serve-smoke serve-swarm bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + an end-to-end `hirc batch` smoke over the textual
# example designs and every built-in kernel (4 workers, cached,
# traced), exercising parse -> verify -> passes -> emit for real,
# plus a bounded deterministic fuzz pass over the frontend.
check: build test
	dune exec bin/hirc.exe -- batch $(SMOKE_DESIGNS) --kernels -j 4 \
	  --cache-dir _build/.hirc-smoke-cache --trace _build/smoke.trace.json \
	  -o _build/smoke-verilog
	dune exec bin/hirc.exe -- fuzz 2000 --seed 1
	@_build/default/bin/hirc.exe sim transposee 2>&1 | grep -q "did you mean transpose" \
	  || { echo "make check: FAILED (sim typo did not suggest a kernel)"; exit 1; }
	@_build/default/bin/hirc.exe sim gemm --engine opcodee 2>&1 | grep -q "did you mean opcode" \
	  || { echo "make check: FAILED (sim engine typo did not suggest an engine)"; exit 1; }
	@_build/default/bin/hirc.exe sim gemm --partitions autoo 2>&1 | grep -q "did you mean auto" \
	  || { echo "make check: FAILED (sim partitions typo did not suggest auto)"; exit 1; }
	@echo "sim typo suggestion: OK"
	$(MAKE) faults
	$(MAKE) serve-smoke
	$(MAKE) crash
	dune exec bench/main.exe -- --canonicalize-scaling
	dune exec bench/main.exe -- --sim-scaling
	dune exec bench/main.exe -- --incremental
	dune exec bench/main.exe -- --emit-scaling
	@echo "make check: OK"

# Seeded fault-injection sweep over the kernel suite: at a 10% rate on
# every injection point the batch must terminate within the deadline
# (timeout(1) is the hang guard), lose no jobs, and exit 0 (all jobs
# produced output, however degraded) or 2 (some failed after retries)
# — never crash, never hang.  Three seeds so the sweep actually varies
# the fault schedule.
faults: build
	@rm -rf _build/.hirc-faults-cache
	@for seed in 1 2 3; do \
	  echo "faults: seed $$seed, 10% on all points"; \
	  timeout 120 dune exec bin/hirc.exe -- batch --kernels -j 4 \
	    --cache-dir _build/.hirc-faults-cache --inject '*=0.1' \
	    --inject-seed $$seed --deadline 60 \
	    --json _build/faults-$$seed.json; \
	  code=$$?; \
	  if [ $$code -ne 0 ] && [ $$code -ne 2 ]; then \
	    echo "make faults: FAILED (seed $$seed exited $$code)"; exit 1; \
	  fi; \
	  grep -q '"total":9' _build/faults-$$seed.json || \
	    { echo "make faults: FAILED (seed $$seed lost jobs)"; exit 1; }; \
	done
	@echo "make faults: OK"

# Crash-recovery acceptance: an 8-client swarm against a journaled
# `hirc serve` with 10% faults on every journal.* point, kill -9
# mid-swarm, restart on the same journal, recover every job
# byte-identical, then an unfaulted SIGTERM drain that must exit 0
# with zero incomplete journal records.  Three seeds vary the fault
# schedule; timeout(1) is the hang guard.
crash: build
	@for seed in 1 2 3; do \
	  echo "crash: seed $$seed, 10% on journal.* points"; \
	  timeout 240 dune exec bench/main.exe -- --serve-crash --crash-seed $$seed \
	    || { echo "make crash: FAILED (seed $$seed)"; exit 1; }; \
	done
	@echo "make crash: OK"

# End-to-end smoke of the real `hirc serve` binary: start the server,
# drive compiles / a health probe / an HTTP GET, run the early-closing
# client SIGPIPE regression, then a clean protocol shutdown.  The
# whole thing runs under timeout(1) as the hang guard.
serve-smoke: build
	timeout 120 dune exec test/serve_smoke.exe -- _build/default/bin/hirc.exe

# The admission-control acceptance run: 8 concurrent clients, mixed
# kernel sizes, 10% injected faults; zero lost jobs and bounded p99
# or the bench exits nonzero.  Heavier than serve-smoke, so it is not
# part of `make check`; run it when touching the server or scheduler.
serve-swarm: build
	timeout 300 dune exec bench/main.exe -- --serve-swarm

# The acceptance campaign from the never-crash contract: 10k mutated
# inputs through the frontend and 10k through the full pipeline, both
# seeded and deterministic.  Exits nonzero on any non-diagnostic crash.
fuzz: build
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1 --full

# Machine-readable benchmark results for tracking the perf trajectory.
bench-json:
	dune exec bench/main.exe -- --table 6 --json bench-results.json

clean:
	dune clean
