(* Tests for the lib/driver compilation service: pipeline-spec parsing
   (round-trip and error cases), the content-addressed cache (hit on
   identical input, invalidation on source/pipeline edits), the
   multicore batch scheduler (4-worker output byte-identical to
   sequential), pass-manager instrumentation and the Chrome trace
   exporter. *)

open Hir_ir
open Hir_dialect
open Hir_driver

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse_ok spec =
  match Pipeline.parse spec with
  | Ok s -> s
  | Error e -> Alcotest.failf "expected %S to parse, got: %s" spec e

let parse_err spec =
  match Pipeline.parse spec with
  | Ok s -> Alcotest.failf "expected %S to be rejected, parsed as %S" spec (Pipeline.to_string s)
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Pipeline specs                                                      *)

let test_pipeline_roundtrip () =
  List.iter
    (fun spec -> check_string spec spec (Pipeline.to_string (parse_ok spec)))
    [
      "unroll";
      "canonicalize,precision-opt,unroll,delay-elim";
      "cse,retime{repeat=2},precision-opt";
      "verify,verify-schedule,dce";
    ]

let test_pipeline_normalization () =
  (* Whitespace and empty option braces normalize away. *)
  check_string "spaces" "cse,delay-elim"
    (Pipeline.to_string (parse_ok " cse , delay-elim "));
  check_string "empty-braces" "retime" (Pipeline.to_string (parse_ok "retime{}"));
  (* Normalized output re-parses to itself (idempotent). *)
  let s = Pipeline.to_string (parse_ok "retime{ repeat=3 }, cse") in
  check_string "fixpoint" s (Pipeline.to_string (parse_ok s))

let test_pipeline_errors () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect spec fragment =
    let e = parse_err spec in
    check_bool (Printf.sprintf "%S error mentions %S (got %S)" spec fragment e) true
      (contains e fragment)
  in
  expect "" "empty";
  expect "cse,,dce" "empty";
  expect "frobnicate" "unknown pass";
  expect "cse{bogus=1}" "unknown option";
  expect "cse{repeat=0}" "positive";
  expect "cse{repeat}" "key=value"

(* Malformed specs surface as located diagnostics: the reported column
   is the 1-based position of the offending stage or option within the
   spec string, so the CLI can point into the argument itself. *)
let test_pipeline_located_errors () =
  let expect spec col =
    match Pipeline.parse_located spec with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
    | Error d -> (
      match d.Diagnostic.loc with
      | Location.File { file; line; col = c } ->
        check_string "located in the spec pseudo-file" "--passes" file;
        check_int "specs are one line" 1 line;
        check_int (Printf.sprintf "%S column" spec) col c
      | _ -> Alcotest.failf "expected a file location for %S" spec)
  in
  (* col points at "bogus", not at the start of the spec *)
  expect "canonicalize,bogus" 14;
  (* ... at the malformed option inside the braces *)
  expect "canonicalize, unroll{repeat=x}" 22;
  expect "cse{ repeat=1, depth=2 }" 16;
  (* ... and at the empty stage between the commas *)
  expect "cse,,dce" 5

let test_pipeline_to_passes () =
  let passes = Pipeline.to_passes (parse_ok "cse,retime{repeat=3},dce") in
  check_int "repeat expansion" 5 (List.length passes);
  Alcotest.(check (list string))
    "pass order"
    [ "cse"; "retime"; "retime"; "retime"; "dce" ]
    (List.map (fun p -> p.Pass.name) passes)

(* ------------------------------------------------------------------ *)
(* Pass-manager instrumentation                                        *)

let test_instrumentation () =
  let m, _ = Hir_kernels.Transpose.build () in
  let events = ref [] in
  let mgr =
    Pass.Manager.create
      ~instrument:(fun ev -> events := ev :: !events)
      (Pipeline.to_passes (parse_ok "canonicalize,unroll"))
  in
  let result = Pass.Manager.run mgr m in
  check_bool "succeeded" true result.Pass.succeeded;
  let events = List.rev !events in
  check_int "begin/end pairs" 4 (List.length events);
  (* Stats and events report the same passes in the same order. *)
  let ended =
    List.filter_map
      (function
        | Pass.Pass_end { pass_name; seconds; changed; _ } -> Some (pass_name, seconds, changed)
        | Pass.Pass_begin _ -> None)
      events
  in
  List.iter2
    (fun (name, seconds, changed) (s : Pass.stat) ->
      check_string "event/stat name" s.Pass.pass_name name;
      check_bool "event/stat changed" s.Pass.changed changed;
      check_bool "event/stat seconds" true (s.Pass.seconds = seconds))
    ended result.Pass.stats

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-driver-test-%d-%d" (Unix.getpid ()) !counter)

let transpose_text () =
  Ir.with_isolated_ids (fun () ->
      let m, _ = Hir_kernels.Transpose.build () in
      Printer.op_to_string m)

(* Payload files live under 2-hex shard subdirectories; walk the root
   plus one level of shards (skipping the quarantine). *)
let cache_files dir ~suffix =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let path = Filename.concat dir f in
         if Sys.is_directory path then
           if f = "quarantine" then []
           else
             Sys.readdir path |> Array.to_list
             |> List.filter_map (fun g ->
                    if Filename.check_suffix g suffix then
                      Some (Filename.concat path g)
                    else None)
         else if Filename.check_suffix f suffix then [ path ]
         else [])

(* One payload extension per cache entry kind (see [Cache.kind_ext]). *)
let payload_suffixes = [ ".v"; ".lnk"; ".src"; ".fn"; ".vm" ]

let compile_text ?cache ~pipeline text =
  match Driver.compile_job ?cache (Driver.job_of_text ~pipeline ~name:"t.hir" text) with
  | Ok o -> o
  | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e)

let test_cache_hit_and_invalidation () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  check_bool "first compile misses" false cold.Driver.from_cache;
  let warm = compile_text ~cache ~pipeline text in
  check_bool "second compile hits" true warm.Driver.from_cache;
  check_string "hit returns identical Verilog" cold.Driver.verilog warm.Driver.verilog;
  check_bool "hit preserves usage" true (cold.Driver.usage = warm.Driver.usage);
  check_string "hit preserves top" cold.Driver.top_name warm.Driver.top_name;
  (* A comment-only edit misses the whole-job key, but every function's
     cone hash is unchanged: the design re-links from the staged chain
     without optimizing or emitting anything. *)
  let relinked = compile_text ~cache ~pipeline (text ^ "\n// edited\n") in
  check_bool "comment edit re-links from cache" true relinked.Driver.from_cache;
  check_string "re-linked Verilog is byte-identical" cold.Driver.verilog
    relinked.Driver.verilog;
  (* A semantic edit (function rename) invalidates the whole chain. *)
  let replace ~needle ~by s =
    let nl = String.length needle and sl = String.length s in
    let b = Buffer.create sl in
    let i = ref 0 in
    while !i < sl do
      if !i + nl <= sl && String.sub s !i nl = needle then begin
        Buffer.add_string b by;
        i := !i + nl
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let edited =
    compile_text ~cache ~pipeline (replace ~needle:"@transpose" ~by:"@transposed" text)
  in
  check_bool "semantic edit misses" false edited.Driver.from_cache;
  (* Changing the pipeline invalidates. *)
  let other = compile_text ~cache ~pipeline:(Pipeline.default ~optimize:false) text in
  check_bool "different pipeline misses" false other.Driver.from_cache;
  check_int "cache hits" 1 (Cache.hits cache);
  check_int "cache misses" 4 (Cache.misses cache)

(* Regression: a cache entry whose .v payload is unreadable (here: a
   directory squatting on the path) degraded the whole compile with a
   [Sys_error]; it must instead count as a miss and recompile. *)
let test_cache_damaged_entry_degrades_to_miss () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  (* Smash every payload file — of every entry kind — into a directory
     of the same name. *)
  List.iter
    (fun suffix ->
      List.iter
        (fun path ->
          Sys.remove path;
          Unix.mkdir path 0o755)
        (cache_files dir ~suffix))
    payload_suffixes;
  let again = compile_text ~cache ~pipeline text in
  check_bool "damaged entry is a miss" false again.Driver.from_cache;
  check_string "recompile still correct" cold.Driver.verilog again.Driver.verilog

(* Regression: [compile_job] must return [Error] with diagnostics for
   any bad input — exceptions crossing the scheduler's domain boundary
   killed the whole batch. *)
let test_compile_job_errors_are_diagnostics () =
  let pipeline = Pipeline.default ~optimize:true in
  let run text =
    match Driver.compile_job (Driver.job_of_text ~pipeline ~name:"bad.hir" text) with
    | Ok _ -> Alcotest.failf "expected a failure for:\n%s" text
    | Error e ->
      check_string "error names the job" "bad.hir" e.Driver.err_job;
      check_bool "has diagnostics" true (e.Driver.err_diags <> []);
      Driver.error_to_string e
  in
  (* Garbage input: a located parse diagnostic, not an exception. *)
  let msg = run "%%% not hir at all" in
  check_bool "parse error mentions location" true (String.length msg > 0);
  (* A wrong attribute kind ({value = "x"} on a constant) used to crash
     in an [Attribute.as_int] accessor; now it is a verifier error. *)
  let text =
    "\"builtin.module\"() ({\n\
    \  ^bb():\n\
    \  \"hir.func\"() ({\n\
    \    ^bb(%t: !hir.time):\n\
    \    %c = \"hir.constant\"() {value = \"x\"} : () -> (!hir.const)\n\
    \    \"hir.return\"() : () -> ()\n\
    \  }) {sym_name = @f, arg_types = [!ty<!hir.time>]} : () -> ()\n\
     }) : () -> ()"
  in
  ignore (run text);
  (* An empty module has no top function to choose. *)
  let msg = run "\"builtin.module\"() ({\n  ^bb():\n}) : () -> ()" in
  check_bool "no-function error is attributed to the job" true
    (let needle = "bad.hir" in
     let n = String.length needle and l = String.length msg in
     let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
     go 0)

let test_cache_key () =
  let k ?(pipeline = "unroll") ?top ?(source = "src") () = Cache.key ~pipeline ~top ~source in
  check_bool "stable" true (k () = k ());
  check_bool "source-sensitive" false (k () = k ~source:"src2" ());
  check_bool "pipeline-sensitive" false (k () = k ~pipeline:"unroll,dce" ());
  check_bool "top-sensitive" false (k () = k ~top:"f" ())

(* ------------------------------------------------------------------ *)
(* Batch scheduler                                                     *)

let test_scheduler_order () =
  let jobs = Array.init 64 Fun.id in
  let out = Scheduler.map_ordered ~workers:4 ~f:(fun i x -> (i, x * 2)) jobs in
  Array.iteri
    (fun i (idx, doubled) ->
      check_int "index" i idx;
      check_int "value" (i * 2) doubled)
    out

let test_scheduler_exception () =
  let jobs = Array.init 8 Fun.id in
  match
    Scheduler.map_ordered ~workers:4 ~f:(fun _ x -> if x = 5 then failwith "boom" else x) jobs
  with
  | _ -> Alcotest.fail "expected the job exception to re-raise"
  | exception Failure msg -> check_string "payload" "boom" msg

let kernel_jobs pipeline =
  Hir_kernels.Kernels.all
  |> List.map (fun k ->
         Driver.job_of_builder ~pipeline ~name:k.Hir_kernels.Kernels.name
           k.Hir_kernels.Kernels.build)
  |> Array.of_list

let verilog_of = function
  | Ok o -> o.Driver.verilog
  | Error e -> Alcotest.failf "batch job failed: %s" (Driver.error_to_string e)

let test_batch_deterministic () =
  let pipeline = Pipeline.default ~optimize:true in
  let sequential = Driver.batch ~workers:1 (kernel_jobs pipeline) in
  let parallel = Driver.batch ~workers:4 (kernel_jobs pipeline) in
  check_int "job count" (List.length Hir_kernels.Kernels.all) (Array.length parallel.Driver.outcomes);
  Array.iteri
    (fun i seq_outcome ->
      let name = (List.nth Hir_kernels.Kernels.all i).Hir_kernels.Kernels.name in
      check_string
        (Printf.sprintf "%s: 4-worker output byte-identical to sequential" name)
        (verilog_of seq_outcome)
        (verilog_of parallel.Driver.outcomes.(i)))
    sequential.Driver.outcomes

let test_batch_warm_cache () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let pipeline = Pipeline.default ~optimize:true in
  let cold = Driver.batch ~cache ~workers:4 (kernel_jobs pipeline) in
  let warm = Driver.batch ~cache ~workers:4 (kernel_jobs pipeline) in
  Array.iter
    (fun o ->
      match o with
      | Ok r -> check_bool "cold run misses" false r.Driver.from_cache
      | Error e -> Alcotest.failf "batch job failed: %s" (Driver.error_to_string e))
    cold.Driver.outcomes;
  Array.iteri
    (fun i o ->
      check_bool "warm run is a hit" true
        (match o with Ok r -> r.Driver.from_cache | Error _ -> false);
      check_string "warm output identical"
        (verilog_of cold.Driver.outcomes.(i))
        (verilog_of o))
    warm.Driver.outcomes;
  check_int "100% hits on the warm run" (Array.length warm.Driver.outcomes)
    (Cache.hits cache)

(* ------------------------------------------------------------------ *)
(* Top-function choice note                                            *)

let test_top_note () =
  (* task_parallel is a multi-function module; compiling its printed
     form without --top must succeed and say which function was chosen. *)
  let text =
    Ir.with_isolated_ids (fun () ->
        let m, _ = Hir_kernels.Taskparallel.build () in
        Printer.op_to_string m)
  in
  let o = compile_text ~pipeline:(Pipeline.default ~optimize:true) text in
  check_bool "note present" true (o.Driver.note <> None);
  check_string "chose the last function" "task_parallel" o.Driver.top_name

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

let test_trace_spans_and_json () =
  let trace = Trace.create () in
  let pipeline = Pipeline.default ~optimize:true in
  (match
     Driver.compile_job ~trace
       (Driver.job_of_text ~pipeline ~name:"t.hir" (transpose_text ()))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e));
  let names = List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans trace) in
  List.iter
    (fun expected ->
      check_bool (Printf.sprintf "span %s present" expected) true (List.mem expected names))
    [ "parse"; "verify"; "pass:canonicalize"; "pass:unroll"; "emit"; "print" ];
  let json = Trace.to_chrome_json [ trace ] in
  let contains needle =
    let lh = String.length json and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "has traceEvents" true (contains "\"traceEvents\"");
  check_bool "has complete-span phase" true (contains "\"ph\":\"X\"");
  check_bool "has parse span" true (contains "\"name\":\"parse\"")

(* ------------------------------------------------------------------ *)
(* Fault injection: spec parsing and seeded decisions                  *)

let test_faults_spec_parsing () =
  let ok spec =
    match Faults.parse_spec spec with
    | Ok rules -> rules
    | Error e -> Alcotest.failf "expected %S to parse, got: %s" spec e
  in
  let err spec =
    match Faults.parse_spec spec with
    | Ok rules ->
      Alcotest.failf "expected %S to be rejected, parsed as %S" spec
        (Faults.rules_to_string rules)
    | Error e -> e
  in
  (* Round-trip through the printer. *)
  List.iter
    (fun spec -> check_string spec spec (Faults.rules_to_string (ok spec)))
    [ "cache.read=0.5"; "*=0.1"; "job.compile@2"; "cache.read=0.25,worker.spawn@1" ];
  check_string "whitespace normalizes" "cache.read=0.5,sim.settle@3"
    (Faults.rules_to_string (ok " cache.read = 0.5 , sim.settle @ 3 "));
  ignore (err "");
  ignore (err "bogus=0.5");  (* unknown point *)
  ignore (err "cache.read=1.5");  (* probability out of range *)
  ignore (err "cache.read=-0.1");
  ignore (err "job.compile@0");  (* counts are 1-based *)
  ignore (err "cache.read");  (* missing trigger *)
  ignore (err "cache.read=oops")

let test_faults_nth_trigger () =
  let cfg = { Faults.rules = [ ("job.compile", Faults.Nth 3) ]; seed = 0 } in
  Faults.with_config cfg (fun () ->
      Faults.with_scope "job-a" (fun () ->
          let fired = ref [] in
          for i = 1 to 6 do
            match Faults.point "job.compile" with
            | () -> ()
            | exception Faults.Injected "job.compile" -> fired := i :: !fired
          done;
          Alcotest.(check (list int)) "fires on exactly the 3rd hit" [ 3 ] (List.rev !fired);
          (* A rule for one point never fires another. *)
          Faults.point "cache.read"));
  (* Outside with_config the points are inert. *)
  Faults.point "job.compile"

let test_faults_determinism () =
  (* Seeded decisions are a pure function of (seed, scope, point, hit
     index): two installs with the same seed fire on identical hits,
     and a different seed gives a different schedule. *)
  let schedule seed =
    let cfg = { Faults.rules = [ ("cache.read", Faults.Prob 0.3) ]; seed } in
    Faults.with_config cfg (fun () ->
        Faults.with_scope "job-a" (fun () ->
            List.init 200 (fun i ->
                match Faults.point "cache.read" with
                | () -> false
                | exception Faults.Injected _ -> i = i)))
  in
  let s1 = schedule 42 in
  check_bool "same seed, same schedule" true (s1 = schedule 42);
  check_bool "some hits fire" true (List.mem true s1);
  check_bool "some hits pass" true (List.mem false s1);
  check_bool "different seed, different schedule" false (s1 = schedule 43);
  (* The raw uniform stream is reproducible too. *)
  check_bool "uniform is pure" true
    (Faults.uniform ~seed:7 ~key:"k" ~index:3 = Faults.uniform ~seed:7 ~key:"k" ~index:3);
  check_bool "uniform in [0,1)" true
    (List.for_all
       (fun i ->
         let u = Faults.uniform ~seed:1 ~key:"k" ~index:i in
         u >= 0. && u < 1.)
       (List.init 100 Fun.id))

(* ------------------------------------------------------------------ *)
(* Guards: deadlines and budgets                                       *)

let test_deadline_timeout () =
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let limits = { Guard.deadline_s = Some 0.; work_budget = None } in
  match
    Driver.compile_job ~limits (Driver.job_of_text ~pipeline ~name:"t.hir" text)
  with
  | Ok _ -> Alcotest.fail "expected a zero deadline to time the job out"
  | Error e ->
    check_bool "classified as timeout" true (e.Driver.err_class = Driver.Timeout);
    check_bool "diagnostic mentions the timeout" true
      (let msg = Driver.error_to_string e in
       let needle = "timeout" in
       let n = String.length needle and l = String.length msg in
       let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
       go 0)

let test_work_budget () =
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let limits = { Guard.deadline_s = None; work_budget = Some 1 } in
  match
    Driver.compile_job ~limits (Driver.job_of_text ~pipeline ~name:"t.hir" text)
  with
  | Ok _ -> Alcotest.fail "expected a 1-tick work budget to exhaust"
  | Error e -> check_bool "classified as timeout" true (e.Driver.err_class = Driver.Timeout)

(* ------------------------------------------------------------------ *)
(* Cache integrity                                                     *)

let quarantine_files dir =
  let q = Filename.concat dir "quarantine" in
  if Sys.file_exists q then Array.to_list (Sys.readdir q) else []

(* A bit-flipped payload must fail the digest check, be quarantined,
   and recompile to byte-identical Verilog — never serve the damaged
   bytes. *)
let test_cache_bitflip_quarantined () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  (* Flip one byte in every payload, of every entry kind. *)
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let bytes = really_input_string ic n in
      close_in ic;
      let b = Bytes.of_string bytes in
      Bytes.set b (n / 2) (Char.chr (Char.code (Bytes.get b (n / 2)) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc)
    (List.concat_map (fun suffix -> cache_files dir ~suffix) payload_suffixes);
  let again = compile_text ~cache ~pipeline text in
  check_bool "bit-flipped entry is not served" false again.Driver.from_cache;
  check_string "recompile is bit-identical to the cold compile" cold.Driver.verilog
    again.Driver.verilog;
  check_bool "degradation recorded" true
    (List.exists
       (fun d -> String.length d >= 7 && String.sub d 0 7 = "corrupt")
       again.Driver.degradations);
  (* One corrupt entry per kind: job, src, link, vmod, fn. *)
  check_int "all five damaged entries counted" 5 (Cache.corrupt_count cache);
  check_bool "damaged files moved to quarantine" true (quarantine_files dir <> [])

let test_cache_truncated_meta_quarantined () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  List.iter
    (fun path ->
      let oc = open_out_bin path in
      output_string oc "hir-driver/2\n";  (* header only: truncated *)
      close_out oc)
    (cache_files dir ~suffix:".meta");
  let again = compile_text ~cache ~pipeline text in
  check_bool "truncated meta is not served" false again.Driver.from_cache;
  check_string "recompile is bit-identical" cold.Driver.verilog again.Driver.verilog;
  check_bool "quarantined" true (quarantine_files dir <> [])

(* [store] must never throw, and a failed atomic write must not leave
   temp files behind.  A directory squatting on the payload path makes
   [Sys.rename] fail reliably. *)
let test_cache_store_failure_is_clean () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let k = Cache.key ~pipeline:"p" ~top:None ~source:"s" in
  let squat = Cache.verilog_path cache k in
  if not (Sys.file_exists (Filename.dirname squat)) then
    Unix.mkdir (Filename.dirname squat) 0o755;
  Unix.mkdir squat 0o755;
  let entry =
    {
      Cache.e_top = "f";
      e_verilog = "module f; endmodule\n";
      e_usage = Hir_resources.Model.zero;
    }
  in
  (match Cache.store cache k entry with
  | Ok () -> Alcotest.fail "expected store onto a squatted path to fail"
  | Error _ -> ());
  Alcotest.(check (list string)) "no temp files leak from the failed write" []
    (cache_files dir ~suffix:".tmp")

(* Crash-ordering on the durable store path: [store] writes payload
   then meta, each as temp + fsync + rename, with the "cache.write"
   fault point between the temp write and the rename.  Faulting the
   first write models a crash before anything is published; faulting
   the second models a published payload with no meta.  Both must
   report an error, leave no temp litter, and leave the cache either
   empty or cleanly missing — never serving a half-stored entry. *)
let test_cache_write_fault_ordering () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let k = Cache.key ~pipeline:"p" ~top:None ~source:"s" in
  let entry =
    {
      Cache.e_top = "f";
      e_verilog = "module f; endmodule\n";
      e_usage = Hir_resources.Model.zero;
    }
  in
  (* Crash before the payload rename: nothing published. *)
  Faults.with_config
    { Faults.rules = [ ("cache.write", Faults.Nth 1) ]; seed = 1 }
    (fun () ->
      match Cache.store cache k entry with
      | Ok () -> Alcotest.fail "payload-write fault must fail the store"
      | Error _ -> ());
  check_bool "no payload published" true (cache_files dir ~suffix:".v" = []);
  Alcotest.(check (list string)) "no temp litter" [] (cache_files dir ~suffix:".tmp");
  check_bool "lookup misses cleanly" true (Cache.lookup cache k = None);
  (* Crash between the payload rename and the meta rename: the torn
     pair must read as a miss, not as corruption served. *)
  Faults.with_config
    { Faults.rules = [ ("cache.write", Faults.Nth 2) ]; seed = 1 }
    (fun () ->
      match Cache.store cache k entry with
      | Ok () -> Alcotest.fail "meta-write fault must fail the store"
      | Error _ -> ());
  check_bool "payload was published" true (cache_files dir ~suffix:".v" <> []);
  check_bool "meta was not" true (cache_files dir ~suffix:".meta" = []);
  Alcotest.(check (list string)) "still no temp litter" []
    (cache_files dir ~suffix:".tmp");
  check_bool "torn pair reads as a miss" true (Cache.lookup cache k = None);
  check_int "both faults counted" 2 (Cache.fault_count cache);
  (* A clean store over the torn pair heals it. *)
  (match Cache.store cache k entry with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean store failed: %s" e);
  match Cache.lookup cache k with
  | Some e -> check_string "healed entry served" entry.Cache.e_verilog e.Cache.e_verilog
  | None -> Alcotest.fail "healed entry must hit"

let test_cache_verify_and_prune () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let pipeline = Pipeline.default ~optimize:true in
  ignore (compile_text ~cache ~pipeline (transpose_text ()));
  ignore
    (compile_text ~cache ~pipeline (transpose_text () ^ "\n// second entry\n"));
  (* The first compile stores the full chain (job, src, fn, vmod,
     link); the comment-suffixed second stores its own src entry and a
     job entry promoted from the link hit: 7 entries in all. *)
  let r = Cache.verify cache in
  check_int "all entries scanned" 7 r.Cache.vr_scanned;
  check_int "all entries ok" 7 r.Cache.vr_ok;
  (* Damage one payload, then verify again. *)
  let victim = List.hd (cache_files dir ~suffix:".v") in
  let oc = open_out_bin victim in
  output_string oc "garbage";
  close_out oc;
  let r = Cache.verify cache in
  check_int "damaged entry found" 1 (List.length r.Cache.vr_quarantined);
  check_int "the other entries still ok" 6 r.Cache.vr_ok;
  check_bool "moved to quarantine" true (quarantine_files dir <> []);
  (* Prune empties the quarantine; a second prune finds nothing. *)
  let p = Cache.prune cache in
  check_bool "prune removed the quarantined files" true (p.Cache.pr_removed > 0);
  check_bool "prune reports bytes" true (p.Cache.pr_bytes > 0);
  Alcotest.(check (list string)) "quarantine empty" [] (quarantine_files dir);
  let p = Cache.prune cache in
  check_int "second prune is a no-op" 0 p.Cache.pr_removed

(* [Cache.verify] is an offline integrity scan: it must not perturb the
   runtime hit/miss/store counters a monitoring endpoint reports, and a
   clean entry must still hit afterwards. *)
let test_cache_verify_preserves_counters () =
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  ignore (compile_text ~cache ~pipeline text);
  ignore (compile_text ~cache ~pipeline text);
  let snapshot () =
    ( Cache.hits cache,
      Cache.misses cache,
      Cache.store_count cache,
      Cache.corrupt_count cache,
      Cache.fault_count cache,
      Cache.kind_stats cache )
  in
  let before = snapshot () in
  let r = Cache.verify cache in
  check_bool "verify scanned the population" true (r.Cache.vr_scanned > 0);
  check_bool "verify leaves every counter untouched" true (before = snapshot ());
  let warm = compile_text ~cache ~pipeline text in
  check_bool "the verified entry still hits" true warm.Driver.from_cache

(* Quarantining the same key twice must not clobber the first capture:
   the second file lands beside it under a numbered suffix. *)
let test_cache_quarantine_collision () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let damage () =
    let victim = List.hd (cache_files dir ~suffix:".v") in
    let oc = open_out_bin victim in
    output_string oc "garbage";
    close_out oc
  in
  ignore (compile_text ~cache ~pipeline text);
  damage ();
  ignore (Cache.verify cache);
  let first = quarantine_files dir in
  check_bool "first quarantine captured files" true (first <> []);
  (* Recompiling restores the same key; damaging it again forces a
     second quarantine of identically-named files. *)
  ignore (compile_text ~cache ~pipeline text);
  damage ();
  ignore (Cache.verify cache);
  let second = quarantine_files dir in
  check_bool "no capture was overwritten" true
    (List.length second > List.length first);
  check_bool "collision resolved with a numbered suffix" true
    (List.exists (fun f -> Filename.check_suffix f ".1") second)

(* Under a byte budget the cache evicts least-recently-used entries at
   store time, where "used" is refreshed by hits: after aging the
   population, a hit entry survives the sweep that claims the rest, and
   an evicted entry is simply a clean miss. *)
let test_cache_budget_eviction () =
  let pipeline = Pipeline.default ~optimize:true in
  let text_a = transpose_text () in
  let text_b =
    Ir.with_isolated_ids (fun () ->
        let m, _ = Hir_kernels.Fifo.build () in
        Printer.op_to_string m)
  in
  let all_files dir =
    List.concat_map (fun s -> cache_files dir ~suffix:s) (".meta" :: payload_suffixes)
  in
  let du files =
    List.fold_left (fun a f -> a + (Unix.stat f).Unix.st_size) 0 files
  in
  (* Probe the on-disk footprint of each source's entry chain, so the
     budget below is sized from measurements, not guesses. *)
  let probe text =
    let dir = fresh_dir () in
    ignore (compile_text ~cache:(Cache.create ~dir ()) ~pipeline text);
    du (all_files dir)
  in
  let bytes_a = probe text_a and bytes_b = probe text_b in
  let job_a =
    let dir = fresh_dir () in
    ignore (compile_text ~cache:(Cache.create ~dir ()) ~pipeline text_a);
    let jobs = cache_files dir ~suffix:".v" in
    du jobs + (du (all_files dir) - du jobs) / 5
  in
  (* Room for B's whole chain plus A's whole-job entry — but not for
     both chains, so storing B must trigger a sweep. *)
  let budget = bytes_b + (2 * job_a) in
  check_bool "probe: the budget cannot hold both chains" true
    (budget < bytes_a + bytes_b);
  let dir = fresh_dir () in
  let cache = Cache.create ~budget_bytes:budget ~dir () in
  let cold_a = compile_text ~cache ~pipeline text_a in
  (* Age everything on disk, then hit A's whole-job entry: the hit
     refreshes that entry's clock and nothing else's. *)
  let old = Unix.gettimeofday () -. 3600. in
  List.iter (fun f -> Unix.utimes f old old) (all_files dir);
  let warm_a = compile_text ~cache ~pipeline text_a in
  check_bool "A hits before the sweep" true warm_a.Driver.from_cache;
  let cold_b = compile_text ~cache ~pipeline text_b in
  check_bool "B compiles cold" false cold_b.Driver.from_cache;
  check_bool "storing B over budget evicted the aged entries" true
    (Cache.eviction_count cache > 0);
  let again_a = compile_text ~cache ~pipeline text_a in
  check_bool "A's freshly-hit job entry survived the sweep" true
    again_a.Driver.from_cache;
  check_string "A's cached Verilog is intact" cold_a.Driver.verilog
    again_a.Driver.verilog;
  (* A recompile of anything evicted is just a cold compile. *)
  let again_b = compile_text ~cache ~pipeline text_b in
  check_string "evicted or not, B recompiles to the same bytes"
    cold_b.Driver.verilog again_b.Driver.verilog

(* ------------------------------------------------------------------ *)
(* Scheduler fault paths                                               *)

let test_scheduler_collects_all_failures () =
  let jobs = Array.init 8 Fun.id in
  match
    Scheduler.map_ordered ~workers:2
      ~f:(fun _ x -> if x mod 2 = 1 then failwith (string_of_int x) else x)
      jobs
  with
  | _ -> Alcotest.fail "expected the job exceptions to re-raise"
  | exception Scheduler.Job_failures failures ->
    check_int "all four raising jobs reported" 4 (List.length failures);
    List.iter
      (fun (i, e) ->
        check_bool "odd index" true (i mod 2 = 1);
        match e with
        | Failure msg -> check_string "payload matches index" (string_of_int i) msg
        | e -> Alcotest.failf "unexpected exception: %s" (Printexc.to_string e))
      failures

let test_scheduler_spawn_fault_degrades_inline () =
  (* With every worker spawn failing, the scheduler's last ladder rung
     runs the jobs inline — nothing is lost. *)
  let cfg = { Faults.rules = [ ("worker.spawn", Faults.Prob 1.) ]; seed = 0 } in
  let spawn_failures = ref 0 in
  let out =
    Faults.with_config cfg (fun () ->
        Scheduler.map_ordered ~workers:4
          ~on_spawn_failure:(fun _ -> incr spawn_failures)
          ~f:(fun _ x -> x * 2)
          (Array.init 16 Fun.id))
  in
  check_int "all spawns failed" 4 !spawn_failures;
  Array.iteri (fun i v -> check_int "job ran inline" (i * 2) v) out

(* ------------------------------------------------------------------ *)
(* Degradation ladders                                                 *)

let test_canonicalize_legacy_fallback () =
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let clean = compile_text ~pipeline text in
  let degraded =
    Fun.protect
      ~finally:(fun () ->
        Hir_dialect.Passes.canonicalize_rounds := Hir_dialect.Passes.max_canonicalize_rounds)
      (fun () ->
        (* Zero rounds trips the greedy driver's backstop before its
           first drain; the pass must fall back to the legacy fixpoint
           and still converge. *)
        Hir_dialect.Passes.canonicalize_rounds := 0;
        compile_text ~pipeline text)
  in
  check_string "legacy fallback produces identical Verilog" clean.Driver.verilog
    degraded.Driver.verilog;
  check_bool "fallback surfaced as a degradation" true
    (List.exists
       (fun d ->
         let needle = "fallback" in
         let n = String.length needle and l = String.length d in
         let rec go i = i + n <= l && (String.sub d i n = needle || go (i + 1)) in
         go 0)
       degraded.Driver.degradations)

let test_sim_settle_fallback () =
  let module Emit = Hir_codegen.Emit in
  let module Harness = Hir_rtl.Harness in
  let input = Hir_kernels.Fifo.make_input ~seed:11 in
  let run_with ~engine () =
    Ir.with_isolated_ids (fun () ->
        let m, f = Hir_kernels.Fifo.build () in
        let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
        let inputs = [ Harness.Tensor (Array.copy input); Harness.Out_tensor ] in
        let r, agents = Harness.run ~engine ~emitted ~inputs ~cycles:80 () in
        (r, Harness.nth_tensor agents 1))
  in
  let clean, clean_out = run_with ~engine:`Reference () in
  (* The ladder must cover both compiled engines — the closure engine
     and the opcode engine (the default), including its partitioned
     settle: [Sim.settle_fault_hook] fires on the main domain before
     the partitions fan out, so the injected Sim_error surfaces the
     same way regardless of partition count. *)
  List.iter
    (fun engine ->
      let cfg = { Faults.rules = [ ("sim.settle", Faults.Nth 1) ]; seed = 0 } in
      let (degraded, degraded_out), counters =
        Pass.with_counters (fun () -> Faults.with_config cfg (run_with ~engine))
      in
      let name = Hir_rtl.Sim.engine_name engine in
      check_bool (name ^ ": ladder fell back to the reference engine") true
        (degraded.Harness.engine_used = `Reference);
      check_bool (name ^ ": fallback counter recorded") true
        (List.mem_assoc "sim.fallback_reference" counters);
      check_bool (name ^ ": degraded run matches a clean reference run") true
        (clean.Harness.output_values = degraded.Harness.output_values
        && clean_out = degraded_out))
    [ `Compiled; `Opcode ]

(* Same ladder for batched runs: a Sim_error mid-batch re-runs every
   stimulus on the reference walker. *)
let test_sim_batch_fallback () =
  let module Emit = Hir_codegen.Emit in
  let module Harness = Hir_rtl.Harness in
  let input = Hir_kernels.Fifo.make_input ~seed:12 in
  let run_with ~engine () =
    Ir.with_isolated_ids (fun () ->
        let m, f = Hir_kernels.Fifo.build () in
        let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
        let stimuli =
          List.init 2 (fun _ -> [ Harness.Tensor (Array.copy input); Harness.Out_tensor ])
        in
        Harness.run_batch ~engine ~stimuli ~emitted ~cycles:80 ())
  in
  let clean = run_with ~engine:`Reference () in
  let cfg = { Faults.rules = [ ("sim.settle", Faults.Nth 1) ]; seed = 0 } in
  let degraded, counters =
    Pass.with_counters (fun () -> Faults.with_config cfg (run_with ~engine:`Opcode))
  in
  check_bool "batch fallback counter recorded" true
    (List.mem_assoc "sim.fallback_reference" counters);
  List.iter2
    (fun ((c : Harness.run_result), _) ((d : Harness.run_result), _) ->
      check_bool "batched ladder fell back to the reference engine" true
        (d.Harness.engine_used = `Reference);
      check_bool "degraded batch stimulus matches clean reference" true
        (c.Harness.output_values = d.Harness.output_values))
    clean degraded

(* ------------------------------------------------------------------ *)
(* Batch robustness under injection                                    *)

(* Fast kernels only: the property below compiles them dozens of times. *)
let fast_kernel_jobs pipeline =
  [ "transpose"; "stencil_1d"; "fifo" ]
  |> List.map (fun name ->
         let k = Option.get (Hir_kernels.Kernels.find name) in
         Driver.job_of_builder ~pipeline ~name k.Hir_kernels.Kernels.build)
  |> Array.of_list

let test_batch_partial_results () =
  let pipeline = Pipeline.default ~optimize:true in
  let jobs =
    [|
      Driver.job_of_text ~pipeline ~name:"bad.hir" "%%% not hir";
      Driver.job_of_text ~pipeline ~name:"good.hir" (transpose_text ());
    |]
  in
  let result = Driver.batch ~workers:2 jobs in
  check_int "one report per job" 2 (Array.length result.Driver.reports);
  (match result.Driver.reports.(0).Driver.rp_outcome with
  | Error e -> check_string "bad job failed" "bad.hir" e.Driver.err_job
  | Ok _ -> Alcotest.fail "expected bad.hir to fail");
  match result.Driver.reports.(1).Driver.rp_outcome with
  | Ok o ->
    check_bool "good job still compiled" true (String.length o.Driver.verilog > 0)
  | Error e -> Alcotest.failf "good job failed: %s" (Driver.error_to_string e)

(* The central robustness invariant: under ANY injection schedule a
   batch terminates with exactly one report per job; the schedule is a
   deterministic function of the seed (same seed = same statuses and
   attempt counts, whatever the worker count); and every job that
   reports Ok — degraded or not — carries Verilog bit-identical to a
   fault-free compile. *)
let batch_under_injection_prop =
  let pipeline = Pipeline.default ~optimize:true in
  let baseline =
    lazy
      (Driver.batch ~workers:1 (fast_kernel_jobs pipeline)
      |> fun r ->
      Array.to_list r.Driver.reports
      |> List.map (fun (rp : Driver.report) ->
             match rp.Driver.rp_outcome with
             | Ok o -> (rp.Driver.rp_job, o.Driver.verilog)
             | Error e ->
               Alcotest.failf "fault-free baseline failed: %s"
                 (Driver.error_to_string e)))
  in
  let gen =
    QCheck.(
      quad (int_bound 1000)
        (oneofl [ 0.0; 0.1; 0.3; 0.6 ])  (* cache.read *)
        (oneofl [ 0.0; 0.2; 0.5 ])  (* job.compile *)
        (oneofl [ 0.0; 0.5; 1.0 ]) (* worker.spawn *))
  in
  QCheck.Test.make ~count:12 ~name:"batch under injection: no lost jobs, deterministic"
    gen
    (fun (seed, p_read, p_compile, p_spawn) ->
      let spec =
        Printf.sprintf "cache.read=%g,cache.write=%g,job.compile=%g,worker.spawn=%g"
          p_read (p_read /. 2.) p_compile p_spawn
      in
      let rules =
        match Faults.parse_spec spec with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "spec %S rejected: %s" spec e
      in
      let cfg = { Faults.rules; seed } in
      (* Zero backoff: retries must not sleep inside a property. *)
      let retry =
        { Driver.default_retry with Driver.base_backoff_s = 0.; max_backoff_s = 0. }
      in
      let run workers =
        let cache = Cache.create ~dir:(fresh_dir ()) () in
        Faults.with_config cfg (fun () ->
            Driver.batch ~cache ~workers ~retry (fast_kernel_jobs pipeline))
      in
      let summarize r =
        Array.to_list r.Driver.reports
        |> List.map (fun (rp : Driver.report) ->
               ( rp.Driver.rp_job,
                 Driver.status_to_string (Driver.report_status rp),
                 rp.Driver.rp_attempts ))
      in
      let r1 = run 1 in
      let names = List.map (fun (n, _, _) -> n) (summarize r1) in
      if names <> [ "transpose"; "stencil_1d"; "fifo" ] then
        QCheck.Test.fail_reportf "lost or reordered jobs: %s" (String.concat "," names);
      (* Determinism: same seed, same schedule — sequential rerun and a
         3-worker run must report identical statuses and attempts. *)
      if summarize (run 1) <> summarize r1 then
        QCheck.Test.fail_reportf "same seed, different outcome on rerun";
      if summarize (run 3) <> summarize r1 then
        QCheck.Test.fail_reportf "worker count changed the fault schedule";
      (* Integrity: any Ok output is bit-identical to the fault-free
         baseline, however degraded the path that produced it. *)
      let base = Lazy.force baseline in
      Array.iter
        (fun (rp : Driver.report) ->
          match rp.Driver.rp_outcome with
          | Ok o ->
            if o.Driver.verilog <> List.assoc rp.Driver.rp_job base then
              QCheck.Test.fail_reportf "%s: degraded output differs from baseline"
                rp.Driver.rp_job
          | Error e ->
            (* Failures are legitimate under injection, but must be
               classified — never an anonymous crash. *)
            if e.Driver.err_diags = [] then
              QCheck.Test.fail_reportf "%s: failure without diagnostics" rp.Driver.rp_job)
        r1.Driver.reports;
      true)

let () =
  Alcotest.run "driver"
    [
      ( "pipeline",
        [
          Alcotest.test_case "roundtrip" `Quick test_pipeline_roundtrip;
          Alcotest.test_case "normalization" `Quick test_pipeline_normalization;
          Alcotest.test_case "errors" `Quick test_pipeline_errors;
          Alcotest.test_case "errors-located" `Quick test_pipeline_located_errors;
          Alcotest.test_case "to-passes" `Quick test_pipeline_to_passes;
        ] );
      ( "instrumentation",
        [ Alcotest.test_case "events-match-stats" `Quick test_instrumentation ] );
      ( "cache",
        [
          Alcotest.test_case "hit-and-invalidation" `Quick test_cache_hit_and_invalidation;
          Alcotest.test_case "key" `Quick test_cache_key;
          Alcotest.test_case "damaged-entry-degrades-to-miss" `Quick
            test_cache_damaged_entry_degrades_to_miss;
          Alcotest.test_case "errors-are-diagnostics" `Quick
            test_compile_job_errors_are_diagnostics;
        ] );
      ( "batch",
        [
          Alcotest.test_case "scheduler-order" `Quick test_scheduler_order;
          Alcotest.test_case "scheduler-exception" `Quick test_scheduler_exception;
          Alcotest.test_case "deterministic-4-workers" `Quick test_batch_deterministic;
          Alcotest.test_case "warm-cache" `Quick test_batch_warm_cache;
        ] );
      ("top", [ Alcotest.test_case "implicit-choice-note" `Quick test_top_note ]);
      ("trace", [ Alcotest.test_case "spans-and-json" `Quick test_trace_spans_and_json ]);
      ( "faults",
        [
          Alcotest.test_case "spec-parsing" `Quick test_faults_spec_parsing;
          Alcotest.test_case "nth-trigger" `Quick test_faults_nth_trigger;
          Alcotest.test_case "seeded-determinism" `Quick test_faults_determinism;
        ] );
      ( "guards",
        [
          Alcotest.test_case "deadline-timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "work-budget" `Quick test_work_budget;
        ] );
      ( "cache-integrity",
        [
          Alcotest.test_case "bitflip-quarantined" `Quick test_cache_bitflip_quarantined;
          Alcotest.test_case "truncated-meta-quarantined" `Quick
            test_cache_truncated_meta_quarantined;
          Alcotest.test_case "store-failure-is-clean" `Quick
            test_cache_store_failure_is_clean;
          Alcotest.test_case "write-fault-ordering" `Quick
            test_cache_write_fault_ordering;
          Alcotest.test_case "verify-and-prune" `Quick test_cache_verify_and_prune;
          Alcotest.test_case "verify-preserves-counters" `Quick
            test_cache_verify_preserves_counters;
          Alcotest.test_case "quarantine-collision" `Quick
            test_cache_quarantine_collision;
          Alcotest.test_case "budget-eviction" `Quick test_cache_budget_eviction;
        ] );
      ( "scheduler-faults",
        [
          Alcotest.test_case "collects-all-failures" `Quick
            test_scheduler_collects_all_failures;
          Alcotest.test_case "spawn-fault-degrades-inline" `Quick
            test_scheduler_spawn_fault_degrades_inline;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "canonicalize-legacy-fallback" `Quick
            test_canonicalize_legacy_fallback;
          Alcotest.test_case "sim-settle-fallback" `Quick test_sim_settle_fallback;
          Alcotest.test_case "sim-batch-fallback" `Quick test_sim_batch_fallback;
        ] );
      ( "batch-robustness",
        [
          Alcotest.test_case "partial-results" `Quick test_batch_partial_results;
          QCheck_alcotest.to_alcotest ~verbose:false batch_under_injection_prop;
        ] );
    ]
