(* Retiming (paper Section 7.4): move registers across combinational
   operations without changing observable behaviour.

   The implemented rewrite sinks delays through pure ops:

       op (hir.delay x by k at (t,o), hir.delay y by k at (t,o))
     ==>
       hir.delay (op (x, y)) by k at (t,o)

   which halves the register bits when the op has more input bits than
   output bits (two 32-bit shift registers become one), and moves the
   combinational logic to the early side of the register — the classic
   retiming step for timing closure.  Constants pass through freely.
   The schedule verifier remains the safety net for the transformation,
   as the paper prescribes. *)

open Hir_ir

let is_pure op = Dialect.op_has_trait (Ir.Op.name op) Dialect.Pure

(* The delay feeding [v], if it is single-use and v is not a constant. *)
let feeding_delay v =
  match Ir.Value.defining_op v with
  | Some d when Ir.Op.name d = "hir.delay" && Ir.Value.has_one_use v -> Some d
  | _ -> None

let delay_key d =
  ( Ir.Value.id (Ops.delay_time d),
    Ops.delay_offset d,
    Ops.delay_by d )

let run_rw rw =
  let module_op = Rewrite.Rewriter.root rw in
  let candidates = ref [] in
  Ir.Walk.ops_pre module_op ~f:(fun op ->
      if is_pure op && Ir.Op.name op <> "hir.constant" && Ir.Op.num_results op = 1 then
        candidates := op :: !candidates);
  List.iter
    (fun op ->
      let operands = Ir.Op.operands op in
      let classified =
        List.map
          (fun v ->
            if Ops.is_const v then `Const v
            else
              match feeding_delay v with
              | Some d -> `Delayed (v, d)
              | None -> `Other)
          operands
      in
      let delays =
        List.filter_map (function `Delayed (_, d) -> Some d | _ -> None) classified
      in
      let all_ok =
        (match delays with [] -> false | _ :: _ -> true)
        && List.for_all (function `Other -> false | _ -> true) classified
        &&
        match delays with
        | first :: rest -> List.for_all (fun d -> delay_key d = delay_key first) rest
        | [] -> false
      in
      if all_ok then begin
        match (Ir.Op.parent op, delays) with
        | Some _block, first_delay :: _ ->
          let by = Ops.delay_by first_delay in
          let time = Ops.delay_time first_delay in
          let offset = Ops.delay_offset first_delay in
          (* Rewire the op to consume the delay inputs directly. *)
          List.iteri
            (fun i c ->
              match c with
              | `Delayed (_, d) -> Rewrite.Rewriter.set_operand rw op i (Ops.delay_input d)
              | `Const _ | `Other -> ())
            classified;
          (* Snapshot the op's consumers now — the new delay is about
             to become one more, and must keep reading the raw value. *)
          let result = Ir.Op.result op 0 in
          let consumers = Ir.Value.uses result in
          (* A single delay now registers the op's (narrower) result. *)
          let new_delay =
            Ir.Op.create ~loc:(Ir.Op.loc op)
              ~attrs:
                [ ("by", Attribute.Int by); ("offset", Attribute.Int offset) ]
              ~result_hints:[ Option.map (fun h -> h ^ "_q") (Ir.Value.hint result) ]
              "hir.delay"
              ~operands:[ result; time ]
              ~result_types:[ Ir.Value.typ result ]
          in
          Rewrite.Rewriter.insert_op_after rw ~anchor:op new_delay;
          (* All previous consumers of the op now read the registered
             value; the delay itself keeps the raw one. *)
          List.iter
            (fun (user, i) ->
              Rewrite.Rewriter.set_operand rw user i (Ir.Op.result new_delay 0))
            consumers;
          (* The original input delays are dead now. *)
          List.iter
            (fun d ->
              if not (Ir.Value.has_uses (Ir.Op.result d 0)) then
                Rewrite.Rewriter.erase_op rw d)
            delays;
          Rewrite.Rewriter.bump rw "retime.sink"
        | _ -> ()
      end)
    !candidates;
  Rewrite.Rewriter.changed rw

let run module_op = run_rw (Rewrite.Rewriter.create ~root:module_op ())

let pass =
  Pass.make ~name:"retime"
    ~description:"Sink registers through combinational ops (Section 7.4)"
    (fun module_op _engine ->
      let rw = Rewrite.Rewriter.create ~root:module_op () in
      let changed = run_rw rw in
      List.iter
        (fun (name, n) -> Pass.record_counter ~n name)
        (Rewrite.Rewriter.counters rw);
      changed)
