(* Standard optimization passes (paper Section 6.2 and 6.4):
   dead-code elimination, constant folding/propagation, common
   sub-expression elimination, strength reduction of constant
   multiplies, and delay (shift-register) elimination.

   All passes operate on a module op and report whether they changed
   anything.  The precision optimization of Section 6.3 lives in
   [Precision_opt]. *)

open Hir_ir

let is_pure op = Dialect.op_has_trait (Ir.Op.name op) Dialect.Pure

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)

(* Iteratively removes pure ops (and delays) whose results are unused.
   hir.delay is not Pure (it is scheduled), but an unused delay drives
   nothing and can go. *)
let dce_removable op =
  (is_pure op || Ir.Op.name op = "hir.delay") && Ir.Op.num_results op > 0

let run_dce module_op =
  let changed = ref false in
  let rec fixpoint () =
    let removed = ref false in
    let candidates = ref [] in
    Ir.Walk.ops_post module_op ~f:(fun op ->
        if dce_removable op then candidates := op :: !candidates);
    List.iter
      (fun op ->
        let used =
          List.exists
            (fun r -> Ir.Rewrite.has_uses ~root:module_op r)
            (Ir.Op.results op)
        in
        if not used then begin
          Ir.Rewrite.erase op;
          removed := true;
          changed := true
        end)
      !candidates;
    if !removed then fixpoint ()
  in
  fixpoint ();
  !changed

let dce =
  Pass.make ~name:"dce" ~description:"Remove unused pure operations"
    (fun module_op _engine -> run_dce module_op)

(* ------------------------------------------------------------------ *)
(* Constant folding / propagation                                      *)

let fold_binary name a b =
  match name with
  | "hir.add" -> Some (a + b)
  | "hir.sub" -> Some (a - b)
  | "hir.mult" -> Some (a * b)
  | "hir.and" -> Some (a land b)
  | "hir.or" -> Some (a lor b)
  | "hir.xor" -> Some (a lxor b)
  | "hir.shl" -> Some (a lsl b)
  | "hir.shrl" -> Some (a lsr b)
  | "hir.shra" -> Some (a asr b)
  | "hir.lt" -> Some (if a < b then 1 else 0)
  | "hir.le" -> Some (if a <= b then 1 else 0)
  | "hir.gt" -> Some (if a > b then 1 else 0)
  | "hir.ge" -> Some (if a >= b then 1 else 0)
  | "hir.eq" -> Some (if a = b then 1 else 0)
  | "hir.ne" -> Some (if a <> b then 1 else 0)
  | _ -> None

(* Fold ops whose operands are all hir.constant into a fresh
   hir.constant.  Folding is exact (OCaml int arithmetic): constants
   are width-polymorphic until they meet a typed wire. *)
let run_const_fold module_op =
  let changed = ref false in
  let worklist = ref [] in
  Ir.Walk.ops_pre module_op ~f:(fun op ->
      if is_pure op && Ir.Op.name op <> "hir.constant" then worklist := op :: !worklist);
  (* Program order, so a folded def feeds folds of its users in the
     same pass. *)
  let worklist = ref (List.rev !worklist) in
  List.iter
    (fun op ->
      let const_operands = List.map Ops.as_constant (Ir.Op.operands op) in
      if List.for_all Option.is_some const_operands then begin
        let vals = List.map (Option.value ~default:0) const_operands in
        let folded =
          match (Ir.Op.name op, vals) with
          | name, [ a; b ] -> fold_binary name a b
          | "hir.not", [ a ] -> Some (lnot a)
          | ("hir.zext" | "hir.sext" | "hir.trunc"), [ a ] -> Some a
          | "hir.select", [ c; x; y ] -> Some (if c <> 0 then x else y)
          | _ -> None
        in
        match folded with
        | None -> ()
        | Some value ->
          (match Ir.Op.parent op with
          | None -> ()
          | Some block ->
            let new_const =
              Ir.Op.create ~loc:(Ir.Op.loc op)
                ~attrs:[ ("value", Attribute.Int value) ]
                "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
            in
            Ir.Block.insert_before block ~anchor:op new_const;
            Ir.Rewrite.replace_uses ~root:module_op
              ~old_v:(Ir.Op.result op 0)
              ~new_v:(Ir.Op.result new_const 0);
            Ir.Block.remove block op;
            changed := true)
      end)
    !worklist;
  !changed

let const_fold =
  Pass.make ~name:"const-fold"
    ~description:"Fold compute ops with constant operands (Section 6.2)"
    (fun module_op _engine -> run_const_fold module_op)

(* ------------------------------------------------------------------ *)
(* Common sub-expression elimination                                   *)

(* Two pure ops with the same name, operands and attributes compute the
   same value.  Scoped per block region-tree: an op can only be
   replaced by an equivalent one from the same or an enclosing block,
   which the single-pass scope table guarantees. *)
let cse_key op =
  ( Ir.Op.name op,
    List.map Ir.Value.id (Ir.Op.operands op),
    List.sort compare op.Ir.attrs )

let run_cse module_op =
  let changed = ref false in
  let table : (string * int list * (string * Attribute.t) list, Ir.value) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec walk_block block =
    let added = ref [] in
    List.iter
      (fun op ->
        if is_pure op && Ir.Op.num_results op = 1 then begin
          let key = cse_key op in
          match Hashtbl.find_opt table key with
          | Some existing ->
            Ir.Rewrite.replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0)
              ~new_v:existing;
            (* The op itself is now dead; leave removal to DCE so we
               don't mutate the list we are iterating. *)
            changed := true
          | None ->
            Hashtbl.add table key (Ir.Op.result op 0);
            added := key :: !added
        end;
        List.iter
          (fun r -> List.iter (fun b -> walk_block b) (Ir.Region.blocks r))
          (Ir.Op.regions op))
      (Ir.Block.ops block);
    (* Leaving the scope: entries from this block are no longer valid
       dominators for siblings. *)
    List.iter (Hashtbl.remove table) !added
  in
  (match Ir.Op.regions module_op with
  | [ r ] -> List.iter walk_block (Ir.Region.blocks r)
  | _ -> ());
  if !changed then ignore (run_dce module_op);
  !changed

let cse =
  Pass.make ~name:"cse"
    ~description:"Common sub-expression elimination (Section 6.2)"
    (fun module_op _engine -> run_cse module_op)

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)

let log2_exact n =
  if n <= 0 then None
  else
    let rec go k v = if v = 1 then Some k else if v land 1 = 1 then None else go (k + 1) (v / 2) in
    go 0 n

(* Multiplications by power-of-two constants become shifts; x*1 -> x;
   x*0 -> 0; x+0 / x-0 -> x.  (Section 6.2: "replaces multiplication
   ... with constants" by cheaper ops — a multiplier costs DSPs or many
   LUTs, a constant shift costs wires.) *)
let run_strength_reduction module_op =
  let changed = ref false in
  let worklist = ref [] in
  Ir.Walk.ops_pre module_op ~f:(fun op -> worklist := op :: !worklist);
  List.iter
    (fun op ->
      let replace_with_value v =
        (* Keep the IR typed: only forward a value that has the same
           type as the result, or a width-polymorphic constant. *)
        let type_ok = Typ.equal (Ir.Value.typ v) (Ir.Value.typ (Ir.Op.result op 0)) in
        match Ir.Op.parent op with
        | Some _ when type_ok ->
          Ir.Rewrite.replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0) ~new_v:v;
          Ir.Rewrite.erase op;
          changed := true
        | _ -> ()
      in
      let rewrite_to name operands =
        match Ir.Op.parent op with
        | None -> ()
        | Some block ->
          let new_op =
            Ir.Op.create ~loc:(Ir.Op.loc op) name ~operands
              ~result_types:[ Ir.Value.typ (Ir.Op.result op 0) ]
          in
          Ir.Block.insert_before block ~anchor:op new_op;
          Ir.Rewrite.replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0)
            ~new_v:(Ir.Op.result new_op 0);
          Ir.Block.remove block op;
          changed := true
      in
      let mk_const value =
        match Ir.Op.parent op with
        | None -> None
        | Some block ->
          let c =
            Ir.Op.create ~loc:(Ir.Op.loc op)
              ~attrs:[ ("value", Attribute.Int value) ]
              "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
          in
          Ir.Block.insert_before block ~anchor:op c;
          Some (Ir.Op.result c 0)
      in
      match Ir.Op.name op with
      | "hir.mult" -> (
        let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
        let with_const x c =
          match c with
          | 0 ->
            (* x*0 -> 0 only helps when the forwarded zero's type is
               accepted by [replace_with_value] (the result must itself
               be !hir.const).  Creating the constant unconditionally
               litters the block with a dead op that CSE/DCE then
               remove while reporting "changed" — which kept the
               canonicalize fixpoint loop spinning forever. *)
            if Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) Types.Const then (
              match mk_const 0 with Some z -> replace_with_value z | None -> ())
          | 1 -> replace_with_value x
          | c -> (
            match log2_exact c with
            | Some k -> (
              match mk_const k with
              | Some shift -> rewrite_to "hir.shl" [ x; shift ]
              | None -> ())
            | None -> ())
        in
        match (Ops.as_constant x, Ops.as_constant y) with
        | _, Some c -> with_const x c
        | Some c, _ -> with_const y c
        | None, None -> ())
      | "hir.add" | "hir.sub" -> (
        let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
        match Ops.as_constant y with
        | Some 0 -> replace_with_value x
        | _ ->
          if Ir.Op.name op = "hir.add" then
            match Ops.as_constant x with Some 0 -> replace_with_value y | _ -> ())
      | _ -> ())
    !worklist;
  if !changed then ignore (run_dce module_op);
  !changed

let strength_reduction =
  Pass.make ~name:"strength-reduction"
    ~description:"Rewrite constant multiplies into shifts (Section 6.2)"
    (fun module_op _engine -> run_strength_reduction module_op)

(* ------------------------------------------------------------------ *)
(* Delay elimination                                                   *)

(* Shift registers are shared (Section 6.4):
   - duplicate delays (same input, same time variable, same offset,
     same depth) collapse to one;
   - a deeper delay of the same (input, time, offset) reuses the
     shallower one as its input:  delay(x, m) = delay(delay(x, k), m-k)
     for the largest available k < m. *)
let run_delay_elim module_op =
  let changed = ref false in
  (* Group delays by (input value, time value, offset). *)
  let groups : (int * int * int, (int * Ir.op) list ref) Hashtbl.t = Hashtbl.create 32 in
  Ir.Walk.ops_pre module_op ~f:(fun op ->
      if Ir.Op.name op = "hir.delay" then begin
        let key =
          ( Ir.Value.id (Ops.delay_input op),
            Ir.Value.id (Ops.delay_time op),
            Ops.delay_offset op )
        in
        let cell =
          match Hashtbl.find_opt groups key with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add groups key c;
            c
        in
        cell := (Ops.delay_by op, op) :: !cell
      end);
  Hashtbl.iter
    (fun _ cell ->
      (* Restore textual order (the walk prepended) so that the stable
         sort keeps the textually-first delay as the survivor: only it
         dominates every user of its duplicates. *)
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !cell) in
      (* Walk shallow to deep; collapse duplicates, re-root deeper ones
         onto the previous stage.  Only delays in the same block may be
         chained (same time domain is guaranteed by the key, but a
         delay in a nested block cannot feed an outer one). *)
      let rec go prev = function
        | [] -> ()
        | (by, op) :: rest -> (
          match prev with
          | Some (prev_by, prev_op)
            when Option.equal Ir.Block.equal (Ir.Op.parent op) (Ir.Op.parent prev_op) ->
            if by = prev_by then begin
              (* Exact duplicate: forward all uses to the survivor. *)
              Ir.Rewrite.replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0)
                ~new_v:(Ir.Op.result prev_op 0);
              Ir.Rewrite.erase op;
              changed := true;
              go prev rest
            end
            else begin
              (* Chain: this delay only needs (by - prev_by) more
                 stages on top of the survivor's output, starting when
                 the survivor's output is valid. *)
              Ir.Op.set_operand op 0 (Ir.Op.result prev_op 0);
              Ir.Op.set_attr op "by" (Attribute.Int (by - prev_by));
              Ir.Op.set_attr op "offset"
                (Attribute.Int (Ops.delay_offset op + prev_by));
              changed := true;
              go (Some (by, op)) rest
            end
          | _ -> go (Some (by, op)) rest)
      in
      go None sorted)
    groups;
  !changed

let delay_elim =
  Pass.make ~name:"delay-elim"
    ~description:"Share and chain shift registers (Section 6.4)"
    (fun module_op _engine -> run_delay_elim module_op)

(* ------------------------------------------------------------------ *)
(* Canonicalization pipeline                                           *)

(* Backstop against a non-convergent rewrite combination: real modules
   reach fixpoint in a handful of rounds, so hitting the bound means a
   rewrite bug — degrade to "stop canonicalizing" rather than hang. *)
let max_canonicalize_rounds = 64

let run_canonicalize module_op =
  let changed = ref false in
  let step () =
    let c1 = run_const_fold module_op in
    let c2 = run_strength_reduction module_op in
    let c3 = run_cse module_op in
    let c4 = run_dce module_op in
    c1 || c2 || c3 || c4
  in
  let rounds = ref 0 in
  while !rounds < max_canonicalize_rounds && step () do
    incr rounds;
    changed := true
  done;
  !changed

let canonicalize =
  Pass.make ~name:"canonicalize"
    ~description:"Fold, reduce, CSE and DCE to fixpoint"
    (fun module_op _engine -> run_canonicalize module_op)

let standard_pipeline () = [ canonicalize; delay_elim ]
