lib/rtl/vcd.ml: Bitvec Char Hashtbl List Printf Sim String
