lib/kernels/convolution.ml: Array Bitvec Builder Hir_dialect Hir_ir Interp List Ops Typ Types Util
