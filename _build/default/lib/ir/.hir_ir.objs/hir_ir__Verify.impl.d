lib/ir/verify.ml: Array Diagnostic Dialect Hashtbl Ir List
