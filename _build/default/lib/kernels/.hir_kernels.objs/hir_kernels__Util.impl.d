lib/kernels/util.ml: Array Bitvec
