examples/quickstart.ml: Array Bitvec Builder Diagnostic Format Hir_codegen Hir_dialect Hir_ir Hir_resources Hir_verilog Interp List Ops Printer Printf String Typ Types Verify Verify_schedule
