(* Registry of the evaluation kernels (paper Section 8) plus the
   task-parallel pipeline of Listing 3. *)

open Hir_ir

type t = {
  name : string;
  description : string;
  build : unit -> Ir.op * Ir.op;  (* (module, top-level function) *)
  check : unit -> (Hir_dialect.Interp.result, string) result;
}

let all =
  [
    {
      name = Transpose.name;
      description = "16x16 matrix transpose, pipelined inner loop (Listing 1)";
      build = Transpose.build;
      check = (fun () -> Transpose.check_interp ());
    };
    {
      name = Stencil1d.name;
      description = "1-d weighted stencil with a register window, II=1 (Listing 2)";
      build = Stencil1d.build;
      check = (fun () -> Stencil1d.check_interp ());
    };
    {
      name = Histogram.name;
      description = "256-bin histogram with data-dependent BRAM accesses";
      build = Histogram.build;
      check = (fun () -> Histogram.check_interp ());
    };
    {
      name = Gemm.name;
      description = "16x16 GEMM on a 16x16 PE array built from nested unroll_for";
      build = Gemm.build;
      check = (fun () -> Gemm.check_interp ());
    };
    {
      name = Convolution.name;
      description = "8x8 image x 3x3 constant kernel, line buffers, II=1";
      build = Convolution.build;
      check = (fun () -> Convolution.check_interp ());
    };
    {
      name = Fifo.name;
      description = "depth-256 flow-through BRAM FIFO, concurrent push/pop";
      build = Fifo.build;
      check = (fun () -> Fifo.check_interp ());
    };
    {
      name = Elementwise_max.name;
      description = "element-wise max: comparator + mux datapath, II=1";
      build = Elementwise_max.build;
      check = (fun () -> Elementwise_max.check_interp ());
    };
    {
      name = Taskparallel.name;
      description = "two stencils overlapped in lock-step (Listing 3)";
      build = Taskparallel.build;
      check = (fun () -> Taskparallel.check_interp ());
    };
  ]

let find name = List.find_opt (fun k -> k.name = name) all
