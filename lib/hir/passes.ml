(* Standard optimization passes (paper Section 6.2 and 6.4):
   dead-code elimination, constant folding/propagation, common
   sub-expression elimination, strength reduction of constant
   multiplies, and delay (shift-register) elimination.

   All passes operate on a module op and report whether they changed
   anything.  The precision optimization of Section 6.3 lives in
   [Precision_opt].

   Since the use-def refactor, the passes are thin configurations of
   the greedy worklist driver in [Hir_ir.Rewrite]: constant folding is
   the registered fold hooks, strength reduction is the registered
   rewrite patterns (see [Ops.register]), DCE is use-list-driven
   erasure, and CSE is a scoped-table sweep.  [canonicalize] is one
   driver invocation that runs all four to a worklist fixpoint.  The
   [Legacy] module below keeps the original whole-module fixpoint
   implementations for the before/after benchmark and the differential
   test. *)

open Hir_ir

let is_pure op = Dialect.op_has_trait (Ir.Op.name op) Dialect.Pure

(* Re-exported: the (shift-guarded) constant evaluator now lives next
   to the op definitions. *)
let fold_binary = Ops.fold_binary
let log2_exact = Ops.log2_exact

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)

(* Pure ops (and delays) whose results are unused.  hir.delay is not
   Pure (it is scheduled), but an unused delay drives nothing and can
   go. *)
let dce_removable op =
  (is_pure op || Ir.Op.name op = "hir.delay") && Ir.Op.num_results op > 0

(* Use-list-driven erasure: seed with every removable op, erase the
   unused ones, and re-enqueue the defining ops of erased operands —
   they may just have lost their last use.  O(ops + erasures), no
   whole-module rescans. *)
let run_dce module_op =
  let changed = ref false in
  let worklist = ref [] in
  Ir.Walk.ops_post module_op ~f:(fun op ->
      if dce_removable op then worklist := op :: !worklist);
  let rec go () =
    match !worklist with
    | [] -> ()
    | op :: rest ->
      worklist := rest;
      (if Option.is_some (Ir.Op.parent op)
          && List.for_all (fun r -> not (Ir.Value.has_uses r)) (Ir.Op.results op)
       then begin
         let feeders = Ir.Op.operands op in
         Ir.erase_op op;
         changed := true;
         Pass.record_counter "dce";
         List.iter
           (fun v ->
             match Ir.Value.defining_op v with
             | Some d when dce_removable d -> worklist := d :: !worklist
             | _ -> ())
           feeders
       end);
      go ()
  in
  go ();
  !changed

let dce =
  Pass.make ~name:"dce" ~description:"Remove unused pure operations"
    (fun module_op _engine -> run_dce module_op)

(* ------------------------------------------------------------------ *)
(* Constant folding / propagation                                      *)

(* One driver drain over the fold hooks only (no patterns, no DCE):
   folded defs re-enqueue their users, so folds cascade in one pass. *)
let run_const_fold_stats module_op =
  Rewrite.run_greedy
    ~config:{ Rewrite.default_config with patterns = Some [] }
    module_op

let run_const_fold module_op = (run_const_fold_stats module_op).Rewrite.ds_changed

let record_driver_stats (stats : Rewrite.driver_stats) =
  List.iter
    (fun (name, n) -> Pass.record_counter ~n name)
    stats.Rewrite.ds_applications;
  Pass.record_counter ~n:stats.Rewrite.ds_rounds "driver.rounds";
  Pass.record_counter ~n:stats.Rewrite.ds_processed "driver.ops-processed"

let const_fold =
  Pass.make ~name:"const-fold"
    ~description:"Fold compute ops with constant operands (Section 6.2)"
    (fun module_op _engine ->
      let stats = run_const_fold_stats module_op in
      record_driver_stats stats;
      stats.Rewrite.ds_changed)

(* ------------------------------------------------------------------ *)
(* Common sub-expression elimination                                   *)

(* Two pure ops with the same name, operands and attributes compute the
   same value.  Scoped per block region-tree: an op can only be
   replaced by an equivalent one from the same or an enclosing block,
   which the single-pass scope table guarantees. *)
let cse_key op =
  ( Ir.Op.name op,
    List.map Ir.Value.id (Ir.Op.operands op),
    List.sort compare op.Ir.attrs )

(* The CSE sweep used both standalone and inside the canonicalize
   driver.  Duplicates forward their uses to the textually-first
   equivalent op (the only one guaranteed to dominate them) and are
   left in place, dead, for DCE — [Rewriter.replace_value] re-enqueues
   the dead def, so the driver erases it in the next drain. *)
let cse_sweep rw =
  let changed = ref false in
  let table : (string * int list * (string * Attribute.t) list, Ir.value) Hashtbl.t =
    Hashtbl.create 64
  in
  let rec walk_block block =
    let added = ref [] in
    List.iter
      (fun op ->
        if is_pure op && Ir.Op.num_results op = 1 then begin
          let key = cse_key op in
          match Hashtbl.find_opt table key with
          | Some existing ->
            if Ir.Value.has_uses (Ir.Op.result op 0) then begin
              Rewrite.Rewriter.replace_value rw (Ir.Op.result op 0) existing;
              Rewrite.Rewriter.bump rw "cse";
              changed := true
            end
          | None ->
            Hashtbl.add table key (Ir.Op.result op 0);
            added := key :: !added
        end;
        List.iter
          (fun r -> List.iter (fun b -> walk_block b) (Ir.Region.blocks r))
          (Ir.Op.regions op))
      (Ir.Block.ops block);
    (* Leaving the scope: entries from this block are no longer valid
       dominators for siblings. *)
    List.iter (Hashtbl.remove table) !added
  in
  (match Ir.Op.regions (Rewrite.Rewriter.root rw) with
  | [ r ] -> List.iter walk_block (Ir.Region.blocks r)
  | _ -> ());
  !changed

let run_cse module_op =
  let rw = Rewrite.Rewriter.create ~root:module_op () in
  let changed = cse_sweep rw in
  List.iter
    (fun (name, n) -> Pass.record_counter ~n name)
    (Rewrite.Rewriter.counters rw);
  if changed then ignore (run_dce module_op);
  changed

let cse =
  Pass.make ~name:"cse"
    ~description:"Common sub-expression elimination (Section 6.2)"
    (fun module_op _engine -> run_cse module_op)

(* ------------------------------------------------------------------ *)
(* Strength reduction                                                  *)

(* The rewrite patterns themselves are registered against the op names
   in [Ops.register]; this pass is a driver drain over just those
   patterns (folds off). *)
let run_strength_reduction_stats module_op =
  Rewrite.run_greedy
    ~config:{ Rewrite.default_config with use_folds = false }
    module_op

let run_strength_reduction module_op =
  let stats = run_strength_reduction_stats module_op in
  if stats.Rewrite.ds_changed then ignore (run_dce module_op);
  stats.Rewrite.ds_changed

let strength_reduction =
  Pass.make ~name:"strength-reduction"
    ~description:"Rewrite constant multiplies into shifts (Section 6.2)"
    (fun module_op _engine ->
      let stats = run_strength_reduction_stats module_op in
      record_driver_stats stats;
      if stats.Rewrite.ds_changed then ignore (run_dce module_op);
      stats.Rewrite.ds_changed)

(* ------------------------------------------------------------------ *)
(* Delay elimination                                                   *)

(* Shift registers are shared (Section 6.4):
   - duplicate delays (same input, same time variable, same offset,
     same depth) collapse to one;
   - a deeper delay of the same (input, time, offset) reuses the
     shallower one as its input:  delay(x, m) = delay(delay(x, k), m-k)
     for the largest available k < m. *)
let run_delay_elim_rw rw =
  let module_op = Rewrite.Rewriter.root rw in
  (* Group delays by (input value, time value, offset). *)
  let groups : (int * int * int, (int * Ir.op) list ref) Hashtbl.t = Hashtbl.create 32 in
  Ir.Walk.ops_pre module_op ~f:(fun op ->
      if Ir.Op.name op = "hir.delay" then begin
        let key =
          ( Ir.Value.id (Ops.delay_input op),
            Ir.Value.id (Ops.delay_time op),
            Ops.delay_offset op )
        in
        let cell =
          match Hashtbl.find_opt groups key with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add groups key c;
            c
        in
        cell := (Ops.delay_by op, op) :: !cell
      end);
  Hashtbl.iter
    (fun _ cell ->
      (* Restore textual order (the walk prepended) so that the stable
         sort keeps the textually-first delay as the survivor: only it
         dominates every user of its duplicates. *)
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !cell) in
      (* Walk shallow to deep; collapse duplicates, re-root deeper ones
         onto the previous stage.  Only delays in the same block may be
         chained (same time domain is guaranteed by the key, but a
         delay in a nested block cannot feed an outer one). *)
      let rec go prev = function
        | [] -> ()
        | (by, op) :: rest -> (
          match prev with
          | Some (prev_by, prev_op)
            when Option.equal Ir.Block.equal (Ir.Op.parent op) (Ir.Op.parent prev_op) ->
            if by = prev_by then begin
              (* Exact duplicate: forward all uses to the survivor. *)
              Rewrite.Rewriter.replace_op_with_value rw op (Ir.Op.result prev_op 0);
              Rewrite.Rewriter.bump rw "delay-elim.dedup";
              go prev rest
            end
            else begin
              (* Chain: this delay only needs (by - prev_by) more
                 stages on top of the survivor's output, starting when
                 the survivor's output is valid. *)
              Rewrite.Rewriter.set_operand rw op 0 (Ir.Op.result prev_op 0);
              Rewrite.Rewriter.set_attr rw op "by" (Attribute.Int (by - prev_by));
              Rewrite.Rewriter.set_attr rw op "offset"
                (Attribute.Int (Ops.delay_offset op + prev_by));
              Rewrite.Rewriter.bump rw "delay-elim.chain";
              go (Some (by, op)) rest
            end
          | _ -> go (Some (by, op)) rest)
      in
      go None sorted)
    groups;
  Rewrite.Rewriter.changed rw

let run_delay_elim module_op =
  run_delay_elim_rw (Rewrite.Rewriter.create ~root:module_op ())

let delay_elim =
  Pass.make ~name:"delay-elim"
    ~description:"Share and chain shift registers (Section 6.4)"
    (fun module_op _engine ->
      let rw = Rewrite.Rewriter.create ~root:module_op () in
      let changed = run_delay_elim_rw rw in
      List.iter
        (fun (name, n) -> Pass.record_counter ~n name)
        (Rewrite.Rewriter.counters rw);
      changed)

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)

(* Backstop against a non-convergent rewrite combination: real modules
   converge by worklist exhaustion, so hitting the bound means a
   rewrite bug — degrade rather than hang.  The driver reports it
   through [ds_backstop] and a "backstop" counter, and the
   [canonicalize] pass falls back to the [Legacy] fixpoint below (see
   [canonicalize]). *)
let max_canonicalize_rounds = 64

(* Mutable so the fault-tolerance tests can trip the backstop on a
   well-behaved module (set to 0: the driver gives up before its first
   drain) and observe the legacy fallback; production code never writes
   it. *)
let canonicalize_rounds = ref max_canonicalize_rounds

(* One greedy driver invocation: fold hooks + strength-reduction
   patterns + trivial-DCE on the worklist, with the scoped CSE sweep
   between drains.  Replaces the legacy 4-pass x 64-round loop. *)
let canonicalize_config () =
  {
    Rewrite.default_config with
    is_trivially_dead = Some dce_removable;
    sweeps = [ cse_sweep ];
    max_rounds = !canonicalize_rounds;
  }

let run_canonicalize_stats module_op =
  Rewrite.run_greedy ~config:(canonicalize_config ()) module_op

let run_canonicalize module_op =
  (run_canonicalize_stats module_op).Rewrite.ds_changed

(* The [canonicalize] pass itself is defined at the end of the file,
   after [Legacy]: its degradation ladder falls back to the legacy
   whole-module fixpoint when the greedy driver trips its backstop. *)

(* ------------------------------------------------------------------ *)
(* Legacy whole-module fixpoint implementations                        *)

(* The pre-use-list pass bodies: every query and rewrite re-walks the
   whole module, and canonicalize loops all four passes to fixpoint.
   Kept (a) as the baseline for the canonicalize-scaling benchmark and
   (b) as the reference semantics for the driver-vs-legacy differential
   test.  Mutations route through [Ir.Op.set_operand] / [Ir.erase_op],
   so use lists stay consistent even on the legacy path — only the
   query complexity is legacy. *)
module Legacy = struct
  let replace_uses ~root ~old_v ~new_v =
    Ir.Walk.ops_pre root ~f:(fun op ->
        Array.iteri
          (fun i v -> if Ir.Value.equal v old_v then Ir.Op.set_operand op i new_v)
          op.Ir.operands)

  let count_uses ~root v =
    let n = ref 0 in
    Ir.Walk.ops_pre root ~f:(fun op ->
        Array.iter (fun u -> if Ir.Value.equal u v then incr n) op.Ir.operands);
    !n

  let has_uses ~root v = count_uses ~root v > 0

  let run_dce module_op =
    let changed = ref false in
    let rec fixpoint () =
      let removed = ref false in
      let candidates = ref [] in
      Ir.Walk.ops_post module_op ~f:(fun op ->
          if dce_removable op then candidates := op :: !candidates);
      List.iter
        (fun op ->
          let used =
            List.exists (fun r -> has_uses ~root:module_op r) (Ir.Op.results op)
          in
          if not used then begin
            Ir.erase_op op;
            removed := true;
            changed := true
          end)
        !candidates;
      if !removed then fixpoint ()
    in
    fixpoint ();
    !changed

  let run_const_fold module_op =
    let changed = ref false in
    let worklist = ref [] in
    Ir.Walk.ops_pre module_op ~f:(fun op ->
        if is_pure op && Ir.Op.name op <> "hir.constant" then
          worklist := op :: !worklist);
    (* Program order, so a folded def feeds folds of its users in the
       same pass. *)
    let worklist = ref (List.rev !worklist) in
    List.iter
      (fun op ->
        let const_operands = List.map Ops.as_constant (Ir.Op.operands op) in
        if List.for_all Option.is_some const_operands then begin
          let vals = List.map (Option.value ~default:0) const_operands in
          let folded =
            match (Ir.Op.name op, vals) with
            | name, [ a; b ] -> fold_binary name a b
            | "hir.not", [ a ] -> Some (lnot a)
            | ("hir.zext" | "hir.sext" | "hir.trunc"), [ a ] -> Some a
            | "hir.select", [ c; x; y ] -> Some (if c <> 0 then x else y)
            | _ -> None
          in
          match folded with
          | None -> ()
          | Some value ->
            (match Ir.Op.parent op with
            | None -> ()
            | Some block ->
              let new_const =
                Ir.Op.create ~loc:(Ir.Op.loc op)
                  ~attrs:[ ("value", Attribute.Int value) ]
                  "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
              in
              Ir.Block.insert_before block ~anchor:op new_const;
              replace_uses ~root:module_op
                ~old_v:(Ir.Op.result op 0)
                ~new_v:(Ir.Op.result new_const 0);
              Ir.erase_op op;
              changed := true)
        end)
      !worklist;
    !changed

  let run_cse module_op =
    let changed = ref false in
    let table : (string * int list * (string * Attribute.t) list, Ir.value) Hashtbl.t =
      Hashtbl.create 64
    in
    let rec walk_block block =
      let added = ref [] in
      List.iter
        (fun op ->
          if is_pure op && Ir.Op.num_results op = 1 then begin
            let key = cse_key op in
            match Hashtbl.find_opt table key with
            | Some existing ->
              replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0)
                ~new_v:existing;
              (* The op itself is now dead; leave removal to DCE so we
                 don't mutate the list we are iterating. *)
              changed := true
            | None ->
              Hashtbl.add table key (Ir.Op.result op 0);
              added := key :: !added
          end;
          List.iter
            (fun r -> List.iter (fun b -> walk_block b) (Ir.Region.blocks r))
            (Ir.Op.regions op))
        (Ir.Block.ops block);
      List.iter (Hashtbl.remove table) !added
    in
    (match Ir.Op.regions module_op with
    | [ r ] -> List.iter walk_block (Ir.Region.blocks r)
    | _ -> ());
    if !changed then ignore (run_dce module_op);
    !changed

  let run_strength_reduction module_op =
    let changed = ref false in
    let worklist = ref [] in
    Ir.Walk.ops_pre module_op ~f:(fun op -> worklist := op :: !worklist);
    List.iter
      (fun op ->
        let replace_with_value v =
          (* Keep the IR typed: only forward a value that has the same
             type as the result. *)
          let type_ok =
            Typ.equal (Ir.Value.typ v) (Ir.Value.typ (Ir.Op.result op 0))
          in
          match Ir.Op.parent op with
          | Some _ when type_ok ->
            replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0) ~new_v:v;
            Ir.erase_op op;
            changed := true
          | _ -> ()
        in
        let rewrite_to name operands =
          match Ir.Op.parent op with
          | None -> ()
          | Some block ->
            let new_op =
              Ir.Op.create ~loc:(Ir.Op.loc op) name ~operands
                ~result_types:[ Ir.Value.typ (Ir.Op.result op 0) ]
            in
            Ir.Block.insert_before block ~anchor:op new_op;
            replace_uses ~root:module_op ~old_v:(Ir.Op.result op 0)
              ~new_v:(Ir.Op.result new_op 0);
            Ir.erase_op op;
            changed := true
        in
        let mk_const value =
          match Ir.Op.parent op with
          | None -> None
          | Some block ->
            let c =
              Ir.Op.create ~loc:(Ir.Op.loc op)
                ~attrs:[ ("value", Attribute.Int value) ]
                "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
            in
            Ir.Block.insert_before block ~anchor:op c;
            Some (Ir.Op.result c 0)
        in
        match Ir.Op.name op with
        | "hir.mult" -> (
          let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
          let with_const x c =
            match c with
            | 0 ->
              (* x*0 -> 0 only when the result is itself !hir.const;
                 see [Ops.pat_mult_strength]. *)
              if Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) Types.Const then (
                match mk_const 0 with Some z -> replace_with_value z | None -> ())
            | 1 -> replace_with_value x
            | c -> (
              match log2_exact c with
              | Some k when 0 <= k && k < Sys.int_size -> (
                match mk_const k with
                | Some shift -> rewrite_to "hir.shl" [ x; shift ]
                | None -> ())
              | _ -> ())
          in
          match (Ops.as_constant x, Ops.as_constant y) with
          | _, Some c -> with_const x c
          | Some c, _ -> with_const y c
          | None, None -> ())
        | "hir.add" | "hir.sub" -> (
          let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
          match Ops.as_constant y with
          | Some 0 -> replace_with_value x
          | _ ->
            if Ir.Op.name op = "hir.add" then
              match Ops.as_constant x with
              | Some 0 -> replace_with_value y
              | _ -> ())
        | _ -> ())
      !worklist;
    if !changed then ignore (run_dce module_op);
    !changed

  let run_canonicalize module_op =
    let changed = ref false in
    (* DCE runs before CSE within a round (matching the driver, which
       erases trivially-dead ops as it drains, before its CSE sweep):
       otherwise a dead op's operand could be chosen as a CSE
       representative and survive at its early position, yielding a
       different — though semantically equal — normal form. *)
    let step () =
      let c1 = run_const_fold module_op in
      let c2 = run_strength_reduction module_op in
      let c3 = run_dce module_op in
      let c4 = run_cse module_op in
      c1 || c2 || c3 || c4
    in
    let rounds = ref 0 in
    while !rounds < max_canonicalize_rounds && step () do
      incr rounds;
      changed := true
    done;
    !changed
end

(* ------------------------------------------------------------------ *)
(* Canonicalize, with its degradation ladder                           *)

(* A backstop trip means the greedy driver did not converge (a rewrite
   bug, not an input property — real modules converge by worklist
   exhaustion).  Rather than ship a half-rewritten module, fall back to
   the legacy whole-module fixpoint — the executable specification the
   driver is differentially tested against (both converge to the same
   normal form) — and record the fallback through [Pass.record_counter]
   so it is observable in --stats, Chrome traces and the batch
   degradation report instead of silent. *)
let canonicalize =
  Pass.make ~name:"canonicalize"
    ~description:"Fold, reduce, CSE and DCE to a worklist fixpoint"
    (fun module_op _engine ->
      let stats = run_canonicalize_stats module_op in
      record_driver_stats stats;
      if stats.Rewrite.ds_backstop then begin
        Pass.record_counter "canonicalize.fallback_legacy";
        let legacy_changed = Legacy.run_canonicalize module_op in
        stats.Rewrite.ds_changed || legacy_changed
      end
      else stats.Rewrite.ds_changed)

let standard_pipeline () = [ canonicalize; delay_elim ]
