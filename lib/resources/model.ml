(* Analytical Xilinx-7-series resource model over the Verilog AST —
   the stand-in for Vivado synthesis in Tables 4 and 5.

   Cost table (per operator, at its natural bit width w):
     add/sub           w LUTs (carry chain)
     and/or/xor        w LUTs
     comparison        ceil(w/2) LUTs
     2:1 mux           ceil(w/2) LUTs
     multiply          DSP48E1s: 1 (w<=18), 2 (w<=25), 3 otherwise
     shift by const    0 (wiring)
     dynamic shift     barrel: w/2 * log2(w) LUTs
     register          w FFs
     block RAM         ceil(bits / 18Kib) BRAM18s
     distributed RAM   width * ceil(depth/64) LUTs (RAM64X1)
     register file     width * depth FFs

   Simulation-only assertions cost nothing.  The absolute numbers are
   a model, not Vivado; what the evaluation reproduces is the relative
   shape between the HIR and HLS compilers, which are both measured by
   this same model. *)

open Hir_verilog.Ast

type usage = { lut : int; ff : int; dsp : int; bram : int }

let zero = { lut = 0; ff = 0; dsp = 0; bram = 0 }

let ( ++ ) a b =
  { lut = a.lut + b.lut; ff = a.ff + b.ff; dsp = a.dsp + b.dsp; bram = a.bram + b.bram }

let luts n = { zero with lut = n }
let ffs n = { zero with ff = n }

let cdiv a b = (a + b - 1) / b

let clog2 n =
  if n <= 1 then 0
  else
    let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
    go 0 1

let dsp_for_mul w = if w <= 18 then 1 else if w <= 25 then 2 else 3

let is_const = function Const _ -> true | _ -> false

let rec expr_cost ~signal_width e =
  let w e' = max 1 (natural_width ~signal_width e') in
  match e with
  | Const _ | Ref _ -> zero
  | Index (_, addr) -> expr_cost ~signal_width addr
  | Slice (e, _, _) -> expr_cost ~signal_width e
  | Unop (Not, e) -> expr_cost ~signal_width e
  | Unop ((Red_or | Red_and), e) -> expr_cost ~signal_width e ++ luts (cdiv (w e) 6)
  | Binop ((Add | Sub), a, b) ->
    expr_cost ~signal_width a ++ expr_cost ~signal_width b ++ luts (max (w a) (w b))
  | Binop ((And | Or | Xor), a, b) ->
    expr_cost ~signal_width a ++ expr_cost ~signal_width b ++ luts (max (w a) (w b))
  | Binop (Mul, a, b) ->
    expr_cost ~signal_width a ++ expr_cost ~signal_width b
    ++ { zero with dsp = dsp_for_mul (max (w a) (w b)) }
  | Binop ((Shl | Shr), a, b) ->
    let shift_cost =
      if is_const b then zero
      else luts (max (w a) 2 * clog2 (max (w a) 2) / 2)
    in
    expr_cost ~signal_width a ++ expr_cost ~signal_width b ++ shift_cost
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne), a, b) ->
    expr_cost ~signal_width a ++ expr_cost ~signal_width b
    ++ luts (cdiv (max (w a) (w b)) 2)
  | Binop ((Log_and | Log_or), a, b) ->
    expr_cost ~signal_width a ++ expr_cost ~signal_width b ++ luts 1
  | Ternary (c, a, b) ->
    expr_cost ~signal_width c ++ expr_cost ~signal_width a ++ expr_cost ~signal_width b
    ++ luts (cdiv (max (w a) (w b)) 2)
  | Concat es -> List.fold_left (fun acc e -> acc ++ expr_cost ~signal_width e) zero es

let rec stmt_cost ~signal_width s =
  match s with
  | Nonblocking (Lref _, e) -> expr_cost ~signal_width e
  | Nonblocking (Lindex (_, a), e) -> expr_cost ~signal_width a ++ expr_cost ~signal_width e
  | If (c, t, f) ->
    expr_cost ~signal_width c
    ++ List.fold_left (fun acc s -> acc ++ stmt_cost ~signal_width s) zero t
    ++ List.fold_left (fun acc s -> acc ++ stmt_cost ~signal_width s) zero f
  | Assert_stmt _ -> zero  (* simulation-only *)

let mem_cost ~width ~depth = function
  | Style_bram -> { zero with bram = max 1 (cdiv (width * depth) 18432) }
  | Style_lutram -> luts (width * max 1 (cdiv depth 64))
  | Style_reg -> ffs (width * depth)

(* Inclusive resource usage of one module, with each instance's cost
   resolved by the caller-supplied [instance_usage] (by instantiated
   module name).  This is the unit the driver's per-function Verilog
   cache stores: a module's usage can be computed bottom-up over the
   call graph without the whole design in hand. *)
let module_usage ~instance_usage m =
  let widths = Hashtbl.create 64 in
  List.iter
    (fun item ->
      match item with
      | Wire_decl { name; width } | Reg_decl { name; width } ->
        Hashtbl.replace widths name width
      | Mem_decl { name; width; _ } -> Hashtbl.replace widths name width
      | _ -> ())
    m.items;
  List.iter (fun p -> Hashtbl.replace widths p.port_name p.width) m.ports;
  let signal_width name =
    match Hashtbl.find_opt widths name with Some w -> w | None -> 1
  in
  List.fold_left
    (fun acc item ->
      match item with
      | Wire_decl _ | Comment _ -> acc
      | Reg_decl { width; _ } -> acc ++ ffs width
      | Mem_decl { width; depth; style; _ } -> acc ++ mem_cost ~width ~depth style
      | Assign { expr; _ } -> acc ++ expr_cost ~signal_width expr
      | Always_ff stmts ->
        List.fold_left (fun acc s -> acc ++ stmt_cost ~signal_width s) acc stmts
      | Instance { module_name; _ } -> acc ++ instance_usage module_name)
    zero m.items

(* Resource usage of the whole design: the top module's inclusive
   usage, with instances resolved in-design (memoized). *)
let design_usage (design : design) =
  let table : (string, usage) Hashtbl.t = Hashtbl.create 8 in
  let module_of name = List.find (fun m -> m.mod_name = name) design.modules in
  let rec usage_of m =
    match Hashtbl.find_opt table m.mod_name with
    | Some u -> u
    | None ->
      let u = module_usage ~instance_usage:(fun name -> usage_of (module_of name)) m in
      Hashtbl.replace table m.mod_name u;
      u
  in
  usage_of (module_of design.top)

(* ------------------------------------------------------------------ *)
(* Hierarchy-aware accounting                                           *)

(* [design_usage] above is *inclusive*: every instance is charged its
   full cost, so N instances of one definition cost N× — the flat
   numbers, what the hardware actually consumes.  The hierarchical
   emitter makes a second view meaningful: per distinct definition, the
   cost of the definition body alone (instances excluded) and how many
   times the elaborated design stamps it out — "one definition + N
   instantiations".  [sr_unique] sums each reachable definition once;
   [sr_total] is the inclusive figure (identical to [design_usage],
   which the `--no-share` toggle falls back to). *)

type shared_entry = {
  se_module : string;
  se_count : int;  (* elaborated instantiation count (top counts as 1) *)
  se_exclusive : usage;  (* the definition body, instances excluded *)
}

type shared_report = {
  sr_entries : shared_entry list;  (* in design order, reachable only *)
  sr_unique : usage;  (* Σ exclusive, each definition once *)
  sr_total : usage;  (* inclusive (= design_usage = flat) *)
}

let exclusive_usage m = module_usage ~instance_usage:(fun _ -> zero) m

let shared_report (design : design) =
  (* Elaborated instantiation counts.  Emitted designs list every
     module before its users (definitions before instantiating modules,
     callees before callers), so one reverse sweep propagates each
     module's count into its children. *)
  let counts = Hashtbl.create 16 in
  Hashtbl.replace counts design.top 1;
  List.iter
    (fun m ->
      match Hashtbl.find_opt counts m.mod_name with
      | None | Some 0 -> ()
      | Some c ->
        List.iter
          (fun item ->
            match item with
            | Instance { module_name; _ } ->
              let prev = Option.value ~default:0 (Hashtbl.find_opt counts module_name) in
              Hashtbl.replace counts module_name (prev + c)
            | _ -> ())
          m.items)
    (List.rev design.modules);
  let entries =
    List.filter_map
      (fun m ->
        match Hashtbl.find_opt counts m.mod_name with
        | None | Some 0 -> None
        | Some c ->
          Some { se_module = m.mod_name; se_count = c; se_exclusive = exclusive_usage m })
      design.modules
  in
  {
    sr_entries = entries;
    sr_unique = List.fold_left (fun acc e -> acc ++ e.se_exclusive) zero entries;
    sr_total = design_usage design;
  }

let pp fmt u =
  Format.fprintf fmt "LUT=%d FF=%d DSP=%d BRAM=%d" u.lut u.ff u.dsp u.bram

let pp_shared fmt r =
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-32s x%-4d %a@\n" e.se_module e.se_count pp e.se_exclusive)
    r.sr_entries;
  Format.fprintf fmt "  unique logic: %a@\n" pp r.sr_unique;
  Format.fprintf fmt "  elaborated:   %a" pp r.sr_total
