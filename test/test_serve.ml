(* Tests for the service core's scheduler paths and the line-JSON
   server: saturation returns `Overloaded` instead of queueing
   unboundedly, cancellation frees the worker slot (running) or never
   occupies one (queued), fair-share keeps a greedy client from
   starving a light one, priorities override FIFO — all deterministic:
   a single worker plus explicit gates make completion order a pure
   function of the scheduler's pick rule.  The socket-level tests run
   a real [Server] on a Unix socket in-process, including the
   early-closing-client regression for the SIGPIPE/EPIPE path. *)

module Service = Hir_driver.Service
module Server = Hir_driver.Server
module Protocol = Hir_driver.Protocol
module Driver = Hir_driver.Driver
module Guard = Hir_driver.Guard
module Pipeline = Hir_driver.Pipeline
module Journal = Hir_driver.Journal
module Faults = Hir_driver.Faults

let () = Hir_dialect.Ops.register ()

(* Mirror hirc's process-wide ignore: the in-process server tests
   write to sockets the test deliberately closes. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Harness: a 1-worker pool running string jobs, where jobs named in
   [gated] busy-wait until the gate opens (or their cancel flag is
   set), and every completion is recorded in arrival order. *)

type harness = {
  svc : (string, string) Service.t;
  completions : (string * string * bool) list ref;  (* job, result, queued-cancel *)
  mu : Mutex.t;
  gate : bool Atomic.t;
  ran : (string, int) Hashtbl.t;  (* job -> times the run fn saw it *)
  ran_mu : Mutex.t;
}

let make_harness ?(max_depth = max_int) ?(gated = fun _ -> false) () =
  let mu = Mutex.create () in
  let completions = ref [] in
  let gate = Atomic.make false in
  let ran = Hashtbl.create 8 in
  let ran_mu = Mutex.create () in
  let svc =
    Service.create ~workers:1 ~max_depth
      ~run:(fun h ->
        let job = Service.data h in
        Mutex.lock ran_mu;
        Hashtbl.replace ran job (1 + Option.value ~default:0 (Hashtbl.find_opt ran job));
        Mutex.unlock ran_mu;
        if gated job then begin
          let cancel = Service.cancel_flag h in
          while not (Atomic.get gate) && not (Atomic.get cancel) do
            Domain.cpu_relax ()
          done;
          if Atomic.get cancel then "cancelled" else "done"
        end
        else "done")
      ~cancelled:(fun _ -> "cancelled")
      ~crashed:(fun _ e -> "crashed: " ^ Printexc.to_string e)
      ~on_complete:(fun c ->
        Mutex.lock mu;
        completions :=
          (Service.data c.Service.c_handle, c.Service.c_result,
           c.Service.c_cancelled_queued)
          :: !completions;
        Mutex.unlock mu)
      ()
  in
  { svc; completions; mu; gate; ran; ran_mu }

let completion_order h =
  Mutex.lock h.mu;
  let l = List.rev_map (fun (job, _, _) -> job) !(h.completions) in
  Mutex.unlock h.mu;
  l

let submit_ok h ~client ~priority job =
  match Service.submit h.svc ~client ~priority job with
  | Service.Accepted handle -> handle
  | Service.Overloaded -> Alcotest.failf "unexpected Overloaded for %s" job
  | Service.Stopped -> Alcotest.failf "unexpected Stopped for %s" job

(* Spin until the pool reports [n] running jobs (the gated job has
   actually occupied the worker), bounded so a bug fails, not hangs. *)
let wait_running h n =
  let rec go i =
    if i = 0 then Alcotest.failf "worker never reached running=%d" n;
    if (Service.stats h.svc).Service.st_running <> n then begin
      Unix.sleepf 0.001;
      go (i - 1)
    end
  in
  go 10_000

let times_ran h job =
  Mutex.lock h.ran_mu;
  let n = Option.value ~default:0 (Hashtbl.find_opt h.ran job) in
  Mutex.unlock h.ran_mu;
  n

(* ------------------------------------------------------------------ *)
(* Scheduler-path tests                                                *)

let test_saturation_overloaded () =
  let h = make_harness ~max_depth:2 ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "B" in
  let _ = submit_ok h ~client:0 ~priority:0 "C" in
  (* Depth 2 reached: admission must push back, not queue unboundedly. *)
  (match Service.submit h.svc ~client:0 ~priority:0 "D" with
  | Service.Overloaded -> ()
  | Service.Accepted _ -> Alcotest.fail "D admitted past max_depth"
  | Service.Stopped -> Alcotest.fail "pool stopped unexpectedly");
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check (list string))
    "admitted jobs all completed, D never entered" [ "A"; "B"; "C" ]
    (completion_order h);
  (* After shutdown, admission reports Stopped. *)
  match Service.submit h.svc ~client:0 ~priority:0 "E" with
  | Service.Stopped -> ()
  | _ -> Alcotest.fail "submit after shutdown must report Stopped"

let test_cancel_running_frees_slot () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let ha = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "B" in
  (* A is mid-"compile": cancel sets the flag; the job observes it at
     its next checkpoint, returns, and the slot frees for B. *)
  (match Service.cancel h.svc ha with
  | `Cancelling -> ()
  | `Cancelled -> Alcotest.fail "A was running, not queued"
  | `Finished -> Alcotest.fail "A cannot have finished: gate is closed");
  Service.shutdown h.svc;
  Alcotest.(check (list string)) "A unblocked first, then B ran" [ "A"; "B" ]
    (completion_order h);
  Mutex.lock h.mu;
  let a_result = List.assoc "A" (List.map (fun (j, r, _) -> (j, r)) !(h.completions)) in
  Mutex.unlock h.mu;
  Alcotest.(check string) "A observed its cancellation" "cancelled" a_result

let test_cancel_queued_never_runs () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let hb = submit_ok h ~client:0 ~priority:0 "B" in
  (match Service.cancel h.svc hb with
  | `Cancelled -> ()
  | `Cancelling | `Finished -> Alcotest.fail "B was queued; cancel must withdraw it");
  (* The synthesized completion is delivered immediately, before the
     worker ever sees B. *)
  Mutex.lock h.mu;
  let b = List.find (fun (j, _, _) -> j = "B") !(h.completions) in
  Mutex.unlock h.mu;
  (match b with
  | _, "cancelled", true -> ()
  | _, r, q -> Alcotest.failf "B completion (%s, queued-cancel=%b) wrong" r q);
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check int) "B never occupied a worker" 0 (times_ran h "B");
  (* Cancelling an already-finished job is reported as such. *)
  match Service.cancel h.svc hb with
  | `Finished -> ()
  | _ -> Alcotest.fail "second cancel must report Finished"

let test_fair_share_prevents_starvation () =
  let h = make_harness ~gated:(fun j -> j = "A1") () in
  let _ = submit_ok h ~client:1 ~priority:0 "A1" in
  wait_running h 1;
  (* Greedy client 1 floods; light client 2 wants two jobs. *)
  List.iter (fun j -> ignore (submit_ok h ~client:1 ~priority:0 j))
    [ "A2"; "A3"; "A4"; "A5"; "A6" ];
  List.iter (fun j -> ignore (submit_ok h ~client:2 ~priority:0 j)) [ "B1"; "B2" ];
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  (* Deficit fairness: the client with fewer served jobs wins ties, so
     B1/B2 interleave instead of waiting behind all six A's. *)
  Alcotest.(check (list string)) "light client interleaves with the flood"
    [ "A1"; "B1"; "A2"; "B2"; "A3"; "A4"; "A5"; "A6" ]
    (completion_order h)

let test_priority_overrides_fifo () =
  let h = make_harness ~gated:(fun j -> j = "A") () in
  let _ = submit_ok h ~client:0 ~priority:0 "A" in
  wait_running h 1;
  let _ = submit_ok h ~client:0 ~priority:0 "x" in
  let _ = submit_ok h ~client:0 ~priority:0 "y" in
  let _ = submit_ok h ~client:0 ~priority:5 "z" in
  Atomic.set h.gate true;
  Service.shutdown h.svc;
  Alcotest.(check (list string)) "high priority jumps the same client's queue"
    [ "A"; "z"; "x"; "y" ]
    (completion_order h)

let test_crashed_run_still_completes () =
  let completions = ref [] in
  let mu = Mutex.create () in
  let svc =
    Service.create ~workers:1
      ~run:(fun h ->
        if Service.data h = "boom" then failwith "kaboom" else "done")
      ~cancelled:(fun _ -> "cancelled")
      ~crashed:(fun _ e -> "crashed: " ^ Printexc.to_string e)
      ~on_complete:(fun c ->
        Mutex.lock mu;
        completions := (Service.data c.Service.c_handle, c.Service.c_result) :: !completions;
        Mutex.unlock mu)
      ()
  in
  ignore (Service.submit svc ~client:0 ~priority:0 "boom");
  ignore (Service.submit svc ~client:0 ~priority:0 "fine");
  Service.shutdown svc;
  let l = List.rev !completions in
  Alcotest.(check int) "both jobs completed" 2 (List.length l);
  (match List.assoc_opt "boom" l with
  | Some r when String.length r >= 7 && String.sub r 0 7 = "crashed" -> ()
  | r -> Alcotest.failf "boom completion wrong: %s" (Option.value ~default:"missing" r));
  Alcotest.(check (option string)) "worker survived the crash" (Some "done")
    (List.assoc_opt "fine" l)

(* ------------------------------------------------------------------ *)
(* Driver-level cancellation                                           *)

let test_driver_cancel_flag () =
  let cancel = Atomic.make true in
  let job =
    Driver.job_of_builder ~pipeline:(Pipeline.default ~optimize:true) ~name:"fifo"
      Hir_kernels.Fifo.build
  in
  match Driver.compile_job ~cancel job with
  | Error e ->
    Alcotest.(check bool) "classified as cancelled" true
      (e.Driver.err_class = Driver.Cancelled)
  | Ok _ -> Alcotest.fail "a pre-cancelled job must not produce output"

(* ------------------------------------------------------------------ *)
(* Latency histogram                                                   *)

let test_histogram_percentiles () =
  let h = Service.Histogram.create () in
  (* 100 samples: 90 at ~1ms, 9 at ~10ms, 1 at ~100ms. *)
  for _ = 1 to 90 do Service.Histogram.record h 0.001 done;
  for _ = 1 to 9 do Service.Histogram.record h 0.010 done;
  Service.Histogram.record h 0.100;
  let s = Service.Histogram.summarize h in
  Alcotest.(check int) "count" 100 s.Service.Histogram.count;
  let close ~what ~actual v =
    (* Log buckets have ~30% resolution; accept a factor of 1.5. *)
    if actual < v /. 1.5 || actual > v *. 1.5 then
      Alcotest.failf "%s: %g not within 1.5x of %g" what actual v
  in
  close ~what:"p50" ~actual:s.Service.Histogram.p50 0.001;
  (* Rank 99 of 100 lands on the 10ms cohort; only max sees the outlier. *)
  close ~what:"p99" ~actual:s.Service.Histogram.p99 0.010;
  close ~what:"max" ~actual:s.Service.Histogram.max 0.100

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)

let test_json_roundtrip () =
  let j =
    Protocol.Json.Obj
      [
        ("op", Protocol.Json.Str "compile");
        ("id", Protocol.Json.Str "j\"1\"\n");
        ("priority", Protocol.Json.Num 3.);
        ("deadline", Protocol.Json.Num 0.25);
        ("verilog", Protocol.Json.Bool true);
        ("tags", Protocol.Json.Arr [ Protocol.Json.Null; Protocol.Json.Num 42. ]);
      ]
  in
  match Protocol.Json.parse (Protocol.Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_request_parsing () =
  (match Protocol.request_of_line {|{"op":"compile","id":"a","kernel":"gemm","priority":2}|} with
  | Ok (Protocol.Compile r) ->
    Alcotest.(check string) "id" "a" r.Protocol.cr_id;
    Alcotest.(check (option string)) "kernel" (Some "gemm") r.Protocol.cr_kernel;
    Alcotest.(check int) "priority" 2 r.Protocol.cr_priority
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Protocol.request_of_line {|{"op":"cancel","id":"a"}|} with
  | Ok (Protocol.Cancel "a") -> ()
  | _ -> Alcotest.fail "cancel frame");
  (match Protocol.request_of_line {|{"op":"compile","kernel":"gemm"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without id must be rejected");
  match Protocol.request_of_line "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

(* ------------------------------------------------------------------ *)
(* Protocol codec properties (qcheck)                                  *)

(* A generator restricted to values the printer reproduces exactly:
   integral and half-integral numbers (the %.0f / %.9g forms), strings
   over the full byte range (escapes, control bytes, raw high bytes),
   bounded nesting. *)
let json_gen =
  let open QCheck.Gen in
  let num =
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map (fun n -> float_of_int n /. 2.) (int_range (-1_000_000) 1_000_000);
      ]
  in
  let any_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12) in
  let scalar =
    oneof
      [
        map (fun s -> Protocol.Json.Str s) any_string;
        map (fun f -> Protocol.Json.Num f) num;
        map (fun b -> Protocol.Json.Bool b) bool;
        return Protocol.Json.Null;
      ]
  in
  let rec value depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map (fun l -> Protocol.Json.Arr l)
              (list_size (int_range 0 4) (value (depth - 1))) );
          ( 1,
            map (fun fields -> Protocol.Json.Obj fields)
              (list_size (int_range 0 4)
                 (pair any_string (value (depth - 1)))) );
        ]
  in
  value 3

let codec_roundtrip_prop =
  QCheck.Test.make ~count:2000 ~name:"line-JSON codec round-trips"
    (QCheck.make json_gen) (fun j ->
      match Protocol.Json.parse (Protocol.Json.to_string j) with
      | Ok j' -> j = j'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

let test_json_depth_limit () =
  let rec nest n j = if n = 0 then j else Protocol.Json.Arr [ nest (n - 1) j ] in
  (* 64 nested arrays parse (the innermost value sits at the depth
     limit); 65 must be an error, not a stack overflow. *)
  (match Protocol.Json.parse (Protocol.Json.to_string (nest 64 Protocol.Json.Null)) with
  | Ok j -> Alcotest.(check bool) "64 deep round-trips" true (j = nest 64 Protocol.Json.Null)
  | Error e -> Alcotest.failf "64 deep must parse: %s" e);
  match Protocol.Json.parse (Protocol.Json.to_string (nest 65 Protocol.Json.Null)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "65 deep must exceed the depth limit"

let test_json_unicode_escapes () =
  let parse_str s =
    match Protocol.Json.parse (Printf.sprintf "{\"s\":\"%s\"}" s) with
    | Ok j -> Protocol.Json.field_str j "s"
    | Error _ -> None
  in
  Alcotest.(check (option string)) "ascii escape" (Some "A") (parse_str "\\u0041");
  Alcotest.(check (option string)) "2-byte UTF-8" (Some "\xc3\xa9") (parse_str "\\u00e9");
  Alcotest.(check (option string)) "3-byte UTF-8" (Some "\xe2\x82\xac") (parse_str "\\u20ac");
  Alcotest.(check (option string)) "bad hex is an error" None (parse_str "\\uZZZZ")

let test_poll_request_parsing () =
  (match Protocol.request_of_line {|{"op":"poll","client":"alice","id":"j1"}|} with
  | Ok (Protocol.Poll p) ->
    Alcotest.(check (option string)) "client" (Some "alice") p.Protocol.pl_client;
    Alcotest.(check (option string)) "id" (Some "j1") p.Protocol.pl_id
  | _ -> Alcotest.fail "poll frame must parse");
  match Protocol.request_of_line {|{"op":"poll"}|} with
  | Ok (Protocol.Poll { Protocol.pl_client = None; pl_id = None }) -> ()
  | _ -> Alcotest.fail "bare poll must parse with both fields absent"

let test_torn_frame_at_eof () =
  (* A peer that dies mid-frame: the reader must yield the complete
     frames and then None — never an exception, never the fragment. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let whole = Protocol.Json.to_line (Protocol.Json.Obj [ ("op", Protocol.Json.Str "health") ]) in
  let torn = {|{"op":"compile","id":"tru|} in
  let data = Bytes.of_string (whole ^ torn) in
  ignore (Unix.write a data 0 (Bytes.length data));
  Unix.close a;
  let c = Protocol.Client.of_fd b in
  (match Protocol.Client.recv c with
  | Some j ->
    Alcotest.(check (option string)) "complete frame delivered" (Some "health")
      (Protocol.Json.field_str j "op")
  | None -> Alcotest.fail "complete frame lost");
  (match Protocol.Client.recv c with
  | None -> ()
  | Some j -> Alcotest.failf "torn frame surfaced: %s" (Protocol.Json.to_string j));
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-test-%s-%d-%d" name (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let mk_admit ?(client = "alice") ?(digest = "d0") id kernel =
  {
    Journal.a_client = client;
    a_id = id;
    a_digest = digest;
    a_kernel = Some kernel;
    a_name = None;
    a_source = None;
    a_top = None;
    a_passes = None;
    a_priority = 1;
    a_deadline = Some 2.5;
    a_want_verilog = true;
  }

let append_ok j a =
  match Journal.append_admit j a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "append failed: %s" e

let test_journal_roundtrip () =
  let dir = fresh_dir "journal" in
  let j = Journal.open_journal ~dir in
  append_ok j (mk_admit "j1" "fifo");
  append_ok j (mk_admit "j2" "transpose");
  append_ok j (mk_admit ~client:"bob" "j1" "gemm");
  (match Journal.append_done j ~client:"alice" ~id:"j1" ~status:"ok" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mark failed: %s" e);
  Journal.close j;
  let r = Journal.replay ~dir in
  Alcotest.(check int) "records" 4 r.Journal.rr_records;
  Alcotest.(check int) "done marks" 1 r.Journal.rr_completed;
  Alcotest.(check int) "quarantined" 0 r.Journal.rr_quarantined;
  Alcotest.(check bool) "no torn tail" false r.Journal.rr_torn_tail;
  (* Pending = admitted minus done, in file order, all fields intact. *)
  match r.Journal.rr_pending with
  | [ a; b ] ->
    Alcotest.(check string) "first pending" "j2" a.Journal.a_id;
    Alcotest.(check (option string)) "kernel survives" (Some "transpose")
      a.Journal.a_kernel;
    Alcotest.(check int) "priority survives" 1 a.Journal.a_priority;
    Alcotest.(check (option (float 1e-9))) "deadline survives" (Some 2.5)
      a.Journal.a_deadline;
    Alcotest.(check bool) "verilog flag survives" true a.Journal.a_want_verilog;
    Alcotest.(check string) "second pending is bob's" "bob" b.Journal.a_client
  | l -> Alcotest.failf "expected 2 pending, got %d" (List.length l)

let test_journal_torn_tail_tolerated () =
  let dir = fresh_dir "journal-torn" in
  let j = Journal.open_journal ~dir in
  append_ok j (mk_admit "j1" "fifo");
  Journal.close j;
  (* Simulate a crash mid-append: a trailing fragment with no newline. *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "journal.log")
  in
  output_string oc "deadbeef {\"t\":\"admit\",\"client\":\"tr";
  close_out oc;
  let r = Journal.replay ~dir in
  Alcotest.(check bool) "torn tail detected" true r.Journal.rr_torn_tail;
  Alcotest.(check int) "complete record survives" 1 (List.length r.Journal.rr_pending);
  Alcotest.(check int) "nothing quarantined" 0 r.Journal.rr_quarantined

let test_journal_corruption_quarantined () =
  let dir = fresh_dir "journal-corrupt" in
  let j = Journal.open_journal ~dir in
  append_ok j (mk_admit "j1" "fifo");
  append_ok j (mk_admit "j2" "transpose");
  Journal.close j;
  (* Flip one payload byte of the first record: same length, bad CRC. *)
  let path = Filename.concat dir "journal.log" in
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string text in
  Bytes.set b 20 (if Bytes.get b 20 = 'x' then 'y' else 'x');
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let r = Journal.replay ~dir in
  Alcotest.(check int) "one record quarantined" 1 r.Journal.rr_quarantined;
  (match r.Journal.rr_pending with
  | [ a ] -> Alcotest.(check string) "undamaged record survives" "j2" a.Journal.a_id
  | l -> Alcotest.failf "expected 1 pending, got %d" (List.length l));
  (* Whole-line garbage is quarantined the same way, not fatal. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "this is not a journal record at all\n";
  close_out oc;
  let r = Journal.replay ~dir in
  Alcotest.(check int) "garbage line quarantined too" 2 r.Journal.rr_quarantined

let test_journal_compact () =
  let dir = fresh_dir "journal-compact" in
  let j = Journal.open_journal ~dir in
  append_ok j (mk_admit "j1" "fifo");
  append_ok j (mk_admit "j2" "transpose");
  append_ok j (mk_admit "j3" "gemm");
  (match Journal.append_done j ~client:"alice" ~id:"j2" ~status:"cancelled" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mark failed: %s" e);
  Journal.close j;
  (match Journal.compact ~dir () with
  | Ok kept -> Alcotest.(check int) "compaction keeps the pending set" 2 kept
  | Error e -> Alcotest.failf "compact failed: %s" e);
  let r = Journal.replay ~dir in
  Alcotest.(check int) "log now holds exactly the pending admits" 2
    r.Journal.rr_records;
  Alcotest.(check int) "no done marks left" 0 r.Journal.rr_completed;
  Alcotest.(check (list string)) "order preserved" [ "j1"; "j3" ]
    (List.map (fun a -> a.Journal.a_id) r.Journal.rr_pending)

let test_journal_append_fault () =
  let dir = fresh_dir "journal-fault" in
  let j = Journal.open_journal ~dir in
  Faults.with_config
    { Faults.rules = [ ("journal.append", Faults.Nth 1) ]; seed = 7 }
    (fun () ->
      (match Journal.append_admit j (mk_admit "j1" "fifo") with
      | Error _ -> ()  (* the faulted append reports, never raises *)
      | Ok () -> Alcotest.fail "first append must hit the injected fault");
      append_ok j (mk_admit "j2" "transpose"));
  Journal.close j;
  let r = Journal.replay ~dir in
  Alcotest.(check (list string)) "only the durable record replays" [ "j2" ]
    (List.map (fun a -> a.Journal.a_id) r.Journal.rr_pending);
  (* Replay faults quarantine records instead of raising. *)
  Faults.with_config
    { Faults.rules = [ ("journal.replay", Faults.Nth 1) ]; seed = 7 }
    (fun () ->
      let r = Journal.replay ~dir in
      Alcotest.(check int) "faulted record quarantined" 1 r.Journal.rr_quarantined;
      Alcotest.(check int) "nothing pending" 0 (List.length r.Journal.rr_pending))

let test_request_digest_stability () =
  let d1 = Journal.digest_of_request ~kernel:(Some "gemm") ~name:None ~source:None ~top:None ~passes:None in
  let d2 = Journal.digest_of_request ~kernel:(Some "gemm") ~name:None ~source:None ~top:None ~passes:None in
  let d3 = Journal.digest_of_request ~kernel:(Some "fifo") ~name:None ~source:None ~top:None ~passes:None in
  let d4 = Journal.digest_of_request ~kernel:None ~name:(Some "gemm") ~source:None ~top:None ~passes:None in
  Alcotest.(check string) "same request, same digest" d1 d2;
  Alcotest.(check bool) "kernel matters" true (d1 <> d3);
  Alcotest.(check bool) "field position matters" true (d1 <> d4)

(* ------------------------------------------------------------------ *)
(* Socket-level server tests                                           *)

let with_server ?(workers = 2) ?(max_depth = 16) ?(tweak = fun c -> c) f =
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-test-serve-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir tmp 0o755;
  let sock = Filename.concat tmp "s.sock" in
  let cfg =
    tweak
      {
        (Server.default_config ~listen:(Server.Unix_path sock) ()) with
        Server.cfg_workers = workers;
        cfg_max_depth = max_depth;
      }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket never appeared";
    if not (Sys.file_exists sock) then begin
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let finally () =
    (* Best-effort shutdown if the test didn't already. *)
    (try
       let c = Protocol.Client.connect_unix sock in
       Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "shutdown") ]);
       ignore (Protocol.Client.recv c);
       Protocol.Client.close c
     with _ -> ());
    Alcotest.(check int) "server exited cleanly" 0 (Domain.join server)
  in
  Fun.protect ~finally (fun () -> f sock)

let field = Protocol.Json.field_str

let test_server_compile_and_probes () =
  with_server (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "j1");
             ("kernel", Protocol.Json.Str "transpose");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "result for j1" (Some "j1") (field j "id");
        Alcotest.(check (option string)) "ok" (Some "ok") (field j "status")
      | None -> Alcotest.fail "no result");
      (* Bad input is a failed result, not a rejection or a hang. *)
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "j2");
             ("name", Protocol.Json.Str "bad.hir");
             ("source", Protocol.Json.Str "func is not hir {");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "failed" (Some "failed") (field j "status")
      | None -> Alcotest.fail "no result for bad source");
      Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
      (match Protocol.Client.recv c with
      | Some j -> (
        Alcotest.(check (option string)) "metrics event" (Some "metrics")
          (field j "event");
        match Protocol.Json.mem "jobs" j with
        | Some jobs ->
          Alcotest.(check (option int)) "two jobs submitted" (Some 2)
            (Protocol.Json.field_int jobs "submitted")
        | None -> Alcotest.fail "metrics lacks jobs")
      | None -> Alcotest.fail "no metrics");
      Protocol.Client.close c)

let test_server_survives_early_close () =
  with_server (fun sock ->
      (* The rude client: asks for multi-MB output, hangs up unread. *)
      let rude = Protocol.Client.connect_unix sock in
      Protocol.Client.send rude
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "rude");
             ("kernel", Protocol.Json.Str "gemm");
             ("verilog", Protocol.Json.Bool true);
           ]);
      Unix.sleepf 1.0;
      Protocol.Client.close rude;
      (* A polite client must be unaffected. *)
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "ok1");
             ("kernel", Protocol.Json.Str "fifo");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "server still serving" (Some "ok")
          (field j "status")
      | None -> Alcotest.fail "server died after client hangup");
      Protocol.Client.close c)

let test_server_disconnect_cancels_queued () =
  (* One worker and a burst of slow jobs from a client that vanishes:
     the disconnect must withdraw its queued jobs (freeing the queue)
     and the server must stay healthy.  Every admitted job still gets
     a completion internally — observable as a clean shutdown (the
     pool drains) rather than a hang. *)
  with_server ~workers:1 (fun sock ->
      let rude = Protocol.Client.connect_unix sock in
      for i = 1 to 6 do
        Protocol.Client.send rude
          (Protocol.Json.Obj
             [
               ("op", Protocol.Json.Str "compile");
               ("id", Protocol.Json.Str (Printf.sprintf "g%d" i));
               ("kernel", Protocol.Json.Str "gemm");
             ])
      done;
      Protocol.Client.close rude;
      let c = Protocol.Client.connect_unix sock in
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("id", Protocol.Json.Str "after");
             ("kernel", Protocol.Json.Str "fifo");
           ]);
      (match Protocol.Client.recv c with
      | Some j ->
        Alcotest.(check (option string)) "post-disconnect job ok" (Some "ok")
          (field j "status")
      | None -> Alcotest.fail "no result after disconnect");
      Protocol.Client.close c)

let send_compile ?client ?deadline c ~id ~kernel =
  Protocol.Client.send c
    (Protocol.Json.Obj
       ([ ("op", Protocol.Json.Str "compile"); ("id", Protocol.Json.Str id);
          ("kernel", Protocol.Json.Str kernel) ]
       @ (match client with
         | Some cl -> [ ("client", Protocol.Json.Str cl) ]
         | None -> [])
       @
       match deadline with
       | Some d -> [ ("deadline", Protocol.Json.Num d) ]
       | None -> []))

let send_poll ?client ?id c =
  Protocol.Client.send c
    (Protocol.Json.Obj
       ([ ("op", Protocol.Json.Str "poll") ]
       @ (match client with
         | Some cl -> [ ("client", Protocol.Json.Str cl) ]
         | None -> [])
       @ match id with Some i -> [ ("id", Protocol.Json.Str i) ] | None -> []))

let recv_or_fail c what =
  match Protocol.Client.recv c with
  | Some j -> j
  | None -> Alcotest.failf "server hung up while waiting for %s" what

let test_server_poll_and_idempotency () =
  with_server (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      send_compile c ~client:"alice" ~id:"p1" ~kernel:"fifo";
      let r1 = recv_or_fail c "first result" in
      Alcotest.(check (option string)) "first compile ok" (Some "ok")
        (field r1 "status");
      (* Poll for the finished id: the retained result frame comes back. *)
      send_poll c ~client:"alice" ~id:"p1";
      let r2 = recv_or_fail c "poll result" in
      Alcotest.(check (option string)) "poll resends the result" (Some "result")
        (field r2 "event");
      Alcotest.(check (option string)) "same id" (Some "p1") (field r2 "id");
      (* Resubmitting the identical request is idempotent: the cached
         frame again, not duplicate-id, not a recompile. *)
      send_compile c ~client:"alice" ~id:"p1" ~kernel:"fifo";
      let r3 = recv_or_fail c "idempotent result" in
      Alcotest.(check (option string)) "idempotent resubmission answers" (Some "ok")
        (field r3 "status");
      (* Same id, *different* request: an id is a promise about content. *)
      send_compile c ~client:"alice" ~id:"p1" ~kernel:"transpose";
      let r4 = recv_or_fail c "conflicting resubmission" in
      Alcotest.(check (option string)) "conflicting digest rejected"
        (Some "duplicate-id") (field r4 "reason");
      (* Unknown ids are reported as such, not invented. *)
      send_poll c ~client:"alice" ~id:"ghost";
      let r5 = recv_or_fail c "poll unknown" in
      Alcotest.(check (option string)) "unknown id" (Some "unknown")
        (field r5 "state");
      (* A bare poll lists the client's jobs. *)
      send_poll c ~client:"alice";
      let r6 = recv_or_fail c "poll listing" in
      (match Protocol.Json.mem "jobs" r6 with
      | Some (Protocol.Json.Arr [ job ]) ->
        Alcotest.(check (option string)) "listing has p1" (Some "p1")
          (field job "id");
        Alcotest.(check (option string)) "listed as done" (Some "done")
          (field job "state")
      | _ -> Alcotest.failf "bad poll listing: %s" (Protocol.Json.to_string r6));
      (* The idempotency counter is visible in metrics. *)
      Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
      let m = recv_or_fail c "metrics" in
      (match Protocol.Json.mem "jobs" m with
      | Some jobs ->
        Alcotest.(check (option int)) "idempotent hit counted" (Some 1)
          (Protocol.Json.field_int jobs "idempotent")
      | None -> Alcotest.fail "metrics lacks jobs");
      Protocol.Client.close c)

let test_server_named_client_survives_disconnect () =
  with_server (fun sock ->
      (* A *named* client's job must survive its connection: that is
         the point of the name.  Submit a slow compile, vanish, then
         recover the result from a fresh connection via poll. *)
      let c1 = Protocol.Client.connect_unix sock in
      send_compile c1 ~client:"alice" ~id:"slow1" ~kernel:"gemm";
      Protocol.Client.close c1;
      let c2 = Protocol.Client.connect_unix sock in
      let deadline = Unix.gettimeofday () +. 60. in
      let rec await () =
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "slow1 never resolved after reconnect";
        send_poll c2 ~client:"alice" ~id:"slow1";
        let j = recv_or_fail c2 "poll" in
        match (field j "event", field j "state") with
        | Some "result", _ ->
          Alcotest.(check (option string)) "job finished, not cancelled" (Some "ok")
            (field j "status")
        | Some "poll", Some "pending" ->
          Unix.sleepf 0.05;
          await ()
        | Some "poll", Some "unknown" ->
          Alcotest.fail "named job vanished on disconnect"
        | _ -> await ()
      in
      await ();
      Protocol.Client.close c2)

let test_server_sigterm_drains () =
  (* The EINTR/drain regression: SIGTERM while the server sits in its
     idle select must not raise — it must drain and exit 0 (which
     with_server's finally asserts via Domain.join). *)
  with_server
    ~tweak:(fun cfg -> { cfg with Server.cfg_tick = 0.05 })
    (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      send_compile c ~id:"pre" ~kernel:"fifo";
      ignore (recv_or_fail c "pre-SIGTERM result");
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* The server must notice, drain (nothing in flight) and exit;
         the socket file disappears on its way out. *)
      let rec wait n =
        if n = 0 then Alcotest.fail "server did not exit after SIGTERM";
        if Sys.file_exists sock then begin
          Unix.sleepf 0.05;
          wait (n - 1)
        end
      in
      wait 200;
      try Protocol.Client.close c with _ -> ())

let test_server_watchdog_cancels_stuck () =
  (* A generous deadline the guard will never enforce, but a watchdog
     factor that makes k x deadline pass almost immediately: the scan
     must cancel the running job through the cooperative path and
     count it. *)
  with_server ~workers:1
    ~tweak:(fun cfg ->
      { cfg with Server.cfg_tick = 0.02; cfg_watchdog_factor = 0.00001 })
    (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      send_compile c ~id:"stuck" ~kernel:"gemm" ~deadline:1000.;
      let r = recv_or_fail c "watchdog result" in
      Alcotest.(check (option string)) "watchdog cancelled the job"
        (Some "cancelled") (field r "status");
      Protocol.Client.send c (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
      let m = recv_or_fail c "metrics" in
      (match Protocol.Json.mem "jobs" m with
      | Some jobs ->
        Alcotest.(check (option int)) "watchdog counter" (Some 1)
          (Protocol.Json.field_int jobs "watchdog")
      | None -> Alcotest.fail "metrics lacks jobs");
      Protocol.Client.close c)

let test_server_journal_replays_on_restart () =
  (* In-process end-to-end: journal a job on one server, shut it down
     with the done mark suppressed by a fault, restart on the same
     journal — the job must be re-run and its result pollable. *)
  let dir = fresh_dir "serve-journal" in
  Faults.with_config
    { Faults.rules = [ ("journal.mark", Faults.Prob 1.0) ]; seed = 3 }
    (fun () ->
      with_server
        ~tweak:(fun cfg -> { cfg with Server.cfg_journal = Some dir })
        (fun sock ->
          let c = Protocol.Client.connect_unix sock in
          send_compile c ~client:"alice" ~id:"r1" ~kernel:"fifo";
          ignore (recv_or_fail c "first run result");
          Protocol.Client.close c));
  (* Every done mark was faulted away: the admit replays as pending. *)
  let r = Journal.replay ~dir in
  Alcotest.(check int) "admit survived without its mark" 1
    (List.length r.Journal.rr_pending);
  with_server
    ~tweak:(fun cfg -> { cfg with Server.cfg_journal = Some dir; cfg_tick = 0.05 })
    (fun sock ->
      let c = Protocol.Client.connect_unix sock in
      let deadline = Unix.gettimeofday () +. 60. in
      let rec await () =
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "replayed job never resolved";
        send_poll c ~client:"alice" ~id:"r1";
        let j = recv_or_fail c "poll" in
        match (field j "event", field j "state") with
        | Some "result", _ ->
          Alcotest.(check (option string)) "replayed job completed" (Some "ok")
            (field j "status")
        | Some "poll", Some "pending" ->
          Unix.sleepf 0.05;
          await ()
        | Some "poll", Some "unknown" ->
          Alcotest.fail "replayed job lost"
        | _ -> await ()
      in
      await ();
      Protocol.Client.close c);
  let r = Journal.replay ~dir in
  Alcotest.(check int) "journal clean after the replay run" 0
    (List.length r.Journal.rr_pending)

let () =
  Alcotest.run "serve"
    [
      ( "scheduler",
        [
          Alcotest.test_case "saturation returns overloaded" `Quick
            test_saturation_overloaded;
          Alcotest.test_case "cancel running frees the slot" `Quick
            test_cancel_running_frees_slot;
          Alcotest.test_case "cancel queued never runs" `Quick
            test_cancel_queued_never_runs;
          Alcotest.test_case "fair share prevents starvation" `Quick
            test_fair_share_prevents_starvation;
          Alcotest.test_case "priority overrides fifo" `Quick
            test_priority_overrides_fifo;
          Alcotest.test_case "crashed run still completes" `Quick
            test_crashed_run_still_completes;
        ] );
      ( "driver",
        [ Alcotest.test_case "cancel flag pre-set" `Quick test_driver_cancel_flag ] );
      ( "histogram",
        [ Alcotest.test_case "log-bucket percentiles" `Quick test_histogram_percentiles ]
      );
      ( "protocol",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "request parsing" `Quick test_request_parsing;
          QCheck_alcotest.to_alcotest codec_roundtrip_prop;
          Alcotest.test_case "depth limit boundary" `Quick test_json_depth_limit;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "poll request parsing" `Quick test_poll_request_parsing;
          Alcotest.test_case "torn frame at eof" `Quick test_torn_frame_at_eof;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append/replay roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_journal_torn_tail_tolerated;
          Alcotest.test_case "corruption quarantined" `Quick
            test_journal_corruption_quarantined;
          Alcotest.test_case "compaction" `Quick test_journal_compact;
          Alcotest.test_case "append/replay faults" `Quick test_journal_append_fault;
          Alcotest.test_case "request digest stability" `Quick
            test_request_digest_stability;
        ] );
      ( "server",
        [
          Alcotest.test_case "compile and probes" `Quick test_server_compile_and_probes;
          Alcotest.test_case "survives early close" `Quick
            test_server_survives_early_close;
          Alcotest.test_case "disconnect cancels queued" `Quick
            test_server_disconnect_cancels_queued;
          Alcotest.test_case "poll and idempotency" `Quick
            test_server_poll_and_idempotency;
          Alcotest.test_case "named client survives disconnect" `Quick
            test_server_named_client_survives_disconnect;
          Alcotest.test_case "sigterm drains cleanly" `Quick
            test_server_sigterm_drains;
          Alcotest.test_case "watchdog cancels stuck job" `Quick
            test_server_watchdog_cancels_stuck;
          Alcotest.test_case "journal replays on restart" `Quick
            test_server_journal_replays_on_restart;
        ] );
    ]
