(* Content-addressed compilation cache.

   A cache entry is keyed on

     Digest(driver version ⊕ pipeline spec ⊕ top selector ⊕ source text)

   so editing the source, changing the pass pipeline, picking another
   top function, or bumping [driver_version] (do this whenever codegen
   output changes) each invalidate the entry.  An entry persists the
   emitted Verilog ([<key>.v]) plus a small metadata sidecar
   ([<key>.meta]: chosen top module, the modeled resource usage, and a
   content digest of the Verilog payload), so a warm hit needs no
   parsing, verification, passes or codegen at all.

   Integrity: the cache trusts nothing it reads back.  Every hit
   re-digests the payload against the digest recorded in the sidecar;
   a truncated, bit-flipped or unparseable entry is *quarantined*
   (moved to [<dir>/quarantine/]) and reported as [Corrupt], which the
   driver treats as a miss-plus-recompile — a damaged cache can cost
   time, never wrong Verilog.  `hirc cache --verify` runs the same
   check over every entry offline, and `--prune` empties the
   quarantine and removes stale temp files.

   Writes go through a unique temp file followed by [Sys.rename], which
   is atomic on POSIX: concurrent workers (or concurrent hirc
   processes) racing to fill the same entry simply last-write-win with
   identical content, and readers never observe a partial entry.  A
   write that fails midway unlinks its temp file.  Counters are atomics
   for the same reason.

   Layout: entries are sharded into 256 subdirectories by the first two
   hex digits of the key ([<dir>/ab/<key>.v]) — a flat directory with
   thousands of entries makes every lookup and readdir pay for the
   whole population.  Entries at the root are the pre-shard layout;
   [verify] retires them to the quarantine. *)

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;  (* entries successfully written *)
  corrupt : int Atomic.t;  (* entries quarantined by lookups *)
  faults : int Atomic.t;  (* read/write IO failures survived *)
}

(* Bump whenever the emitted Verilog or the meta format changes.
   (v2: digest line in the sidecar; v3: sharded directory layout.) *)
let driver_version = "hir-driver/3"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  {
    dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    corrupt = Atomic.make 0;
    faults = Atomic.make 0;
  }

let key ~pipeline ~top ~source =
  let material =
    String.concat "\x00"
      [ driver_version; pipeline; Option.value ~default:"" top; source ]
  in
  Digest.to_hex (Digest.string material)

type entry = {
  e_verilog : string;
  e_top : string;
  e_usage : Hir_resources.Model.usage;
}

(* The shard a key lives in: its first two hex digits.  Keys are hex
   digests, so this spreads entries uniformly over 256 directories. *)
let shard_dir t k =
  Filename.concat t.dir (if String.length k >= 2 then String.sub k 0 2 else k)

let verilog_path t k = Filename.concat (shard_dir t k) (k ^ ".v")
let meta_path t k = Filename.concat (shard_dir t k) (k ^ ".meta")
let quarantine_dir t = Filename.concat t.dir "quarantine"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publish via temp file + rename.  The temp file is unlinked on
   *any* failure (short write, injected fault, rename onto a squatted
   path), so failed stores cannot litter the cache directory. *)
let write_file_atomic ~dir path content =
  let tmp = Filename.temp_file ~temp_dir:dir ".cache" ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc content;
          close_out oc);
      Faults.point "cache.write";
      Sys.rename tmp path)

let content_digest verilog = Digest.to_hex (Digest.string verilog)

let meta_to_string ~top ~digest (u : Hir_resources.Model.usage) =
  Printf.sprintf "top %s\ndigest %s\nlut %d\nff %d\ndsp %d\nbram %d\n" top digest
    u.lut u.ff u.dsp u.bram

let meta_of_string s =
  let fields =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           match String.index_opt line ' ' with
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) )
           | None -> None)
  in
  let int k = Option.bind (List.assoc_opt k fields) int_of_string_opt in
  match
    ( List.assoc_opt "top" fields,
      List.assoc_opt "digest" fields,
      int "lut",
      int "ff",
      int "dsp",
      int "bram" )
  with
  | Some top, Some digest, Some lut, Some ff, Some dsp, Some bram ->
    Some (top, digest, { Hir_resources.Model.lut; ff; dsp; bram })
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Quarantine                                                          *)

(* Move a damaged entry's files out of the lookup path.  Best-effort
   throughout: a concurrent worker may have quarantined (or rewritten)
   the entry already, and quarantining must never fail the compile that
   discovered the damage. *)
let quarantine_entry t k =
  mkdir_p (quarantine_dir t);
  List.iter
    (fun path ->
      if Sys.file_exists path then
        let dst = Filename.concat (quarantine_dir t) (Filename.basename path) in
        try Sys.rename path dst
        with Sys_error _ | Unix.Unix_error _ -> (
          try Sys.remove path with Sys_error _ -> ()))
    [ verilog_path t k; meta_path t k ]

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

type verdict =
  | Hit of entry
  | Miss  (* no entry *)
  | Read_fault of string  (* transient IO failure; entry left alone *)
  | Corrupt of string  (* integrity failure; entry quarantined *)

let consult t k =
  let vp = verilog_path t k and mp = meta_path t k in
  let verdict =
    (* The entry can be evicted (or be unreadable) between the existence
       check and the reads — a classic TOCTOU.  Per the contract above,
       IO failures degrade to misses, so neither [Sys_error] nor
       [Unix_error] from the reads may escape to the caller. *)
    try
      Faults.point "cache.read";
      if not (Sys.file_exists vp && Sys.file_exists mp) then Miss
      else
        match meta_of_string (read_file mp) with
        | None ->
          quarantine_entry t k;
          Corrupt (Printf.sprintf "%s: unparseable metadata" (k ^ ".meta"))
        | Some (top, digest, usage) ->
          let verilog = read_file vp in
          if not (String.equal (content_digest verilog) digest) then begin
            quarantine_entry t k;
            Corrupt (Printf.sprintf "%s: content digest mismatch" (k ^ ".v"))
          end
          else Hit { e_verilog = verilog; e_top = top; e_usage = usage }
    with
    | Faults.Injected p -> Read_fault ("injected fault at " ^ p)
    | Sys_error msg -> Read_fault msg
    | Unix.Unix_error (e, _, _) -> Read_fault (Unix.error_message e)
  in
  (match verdict with
  | Hit _ -> Atomic.incr t.hits
  | Miss -> Atomic.incr t.misses
  | Read_fault _ ->
    Atomic.incr t.misses;
    Atomic.incr t.faults
  | Corrupt _ ->
    Atomic.incr t.misses;
    Atomic.incr t.corrupt);
  verdict

let lookup t k = match consult t k with Hit e -> Some e | _ -> None

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let store t k entry =
  (* Filling the cache is best-effort: a full disk, revoked permissions
     or a squatter at the entry path must not fail a compile that
     already succeeded.  The next lookup simply misses again. *)
  try
    let shard = shard_dir t k in
    mkdir_p shard;
    write_file_atomic ~dir:shard (verilog_path t k) entry.e_verilog;
    write_file_atomic ~dir:shard (meta_path t k)
      (meta_to_string ~top:entry.e_top ~digest:(content_digest entry.e_verilog)
         entry.e_usage);
    Atomic.incr t.stores;
    Ok ()
  with
  | Faults.Injected p ->
    Atomic.incr t.faults;
    Error ("injected fault at " ^ p)
  | Sys_error msg ->
    Atomic.incr t.faults;
    Error msg
  | Unix.Unix_error (e, _, _) ->
    Atomic.incr t.faults;
    Error (Unix.error_message e)

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let store_count t = Atomic.get t.stores
let corrupt_count t = Atomic.get t.corrupt
let fault_count t = Atomic.get t.faults

(* ------------------------------------------------------------------ *)
(* Offline maintenance: `hirc cache --verify | --prune`                *)

type verify_report = {
  vr_scanned : int;  (* entries examined (one per .meta) *)
  vr_ok : int;
  vr_quarantined : (string * string) list;  (* key, reason *)
}

(* The 2-hex shard subdirectories that actually exist. *)
let shards t =
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f = 2
         && is_hex f.[0] && is_hex f.[1]
         && Sys.is_directory (Filename.concat t.dir f))
  |> List.sort compare

(* Run the hit-path integrity check over every entry on disk.  Damaged
   entries are quarantined exactly as a lookup would have done, so a
   verify pass leaves only entries that will actually hit. *)
let verify t =
  let shard_files =
    List.concat_map
      (fun s ->
        Sys.readdir (Filename.concat t.dir s)
        |> Array.to_list
        |> List.map (fun f -> (s, f)))
      (shards t)
  in
  let entries =
    List.filter_map
      (fun (_, f) ->
        if Filename.check_suffix f ".meta" then Some (Filename.remove_extension f)
        else None)
      shard_files
    |> List.sort compare
  in
  let orphans =
    (* payloads with no sidecar can never hit; quarantine them too *)
    List.filter_map
      (fun (_, f) ->
        if
          Filename.check_suffix f ".v"
          && not (Sys.file_exists (meta_path t (Filename.remove_extension f)))
        then Some (Filename.remove_extension f)
        else None)
      shard_files
    |> List.sort compare
  in
  (* Pre-shard flat entries at the root can never hit again; retire
     them rather than leaving dead weight in the directory. *)
  let legacy =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".meta" || Filename.check_suffix f ".v")
    |> List.sort compare
  in
  let quarantined = ref [] in
  let ok = ref 0 in
  List.iter
    (fun k ->
      match consult t k with
      | Hit _ -> incr ok
      | Miss ->
        quarantine_entry t k;
        quarantined := (k, "missing payload") :: !quarantined
      | Corrupt reason -> quarantined := (k, reason) :: !quarantined
      | Read_fault reason -> quarantined := (k, "unreadable: " ^ reason) :: !quarantined)
    entries;
  List.iter
    (fun k ->
      quarantine_entry t k;
      quarantined := (k, "orphan payload (no metadata)") :: !quarantined)
    orphans;
  List.iter
    (fun f ->
      mkdir_p (quarantine_dir t);
      let src = Filename.concat t.dir f in
      let dst = Filename.concat (quarantine_dir t) f in
      (try Sys.rename src dst
       with Sys_error _ | Unix.Unix_error _ -> (
         try Sys.remove src with Sys_error _ -> ()));
      quarantined := (f, "legacy flat entry (pre-shard layout)") :: !quarantined)
    legacy;
  {
    vr_scanned = List.length entries + List.length orphans + List.length legacy;
    vr_ok = !ok;
    vr_quarantined = List.rev !quarantined;
  }

type prune_report = { pr_removed : int; pr_bytes : int }

(* Delete quarantined entries and any stale temp files left by killed
   processes (the in-process writer cleans its own). *)
let prune t =
  let removed = ref 0 and bytes = ref 0 in
  let rm path =
    (try
       bytes := !bytes + (Unix.stat path).Unix.st_size;
       Sys.remove path;
       incr removed
     with Sys_error _ | Unix.Unix_error _ -> ())
  in
  let qdir = quarantine_dir t in
  if Sys.file_exists qdir && Sys.is_directory qdir then begin
    Array.iter (fun f -> rm (Filename.concat qdir f)) (Sys.readdir qdir);
    (try Unix.rmdir qdir with Unix.Unix_error _ -> ())
  end;
  let sweep_tmp dir =
    Array.iter
      (fun f -> if Filename.check_suffix f ".tmp" then rm (Filename.concat dir f))
      (Sys.readdir dir)
  in
  sweep_tmp t.dir;
  List.iter (fun s -> sweep_tmp (Filename.concat t.dir s)) (shards t);
  { pr_removed = !removed; pr_bytes = !bytes }
