(* A minimal process-wide domain pool for the partitioned simulator.

   The partitioned opcode engine settles each netlist partition on its
   own domain with a per-settle barrier.  Settles are microseconds, so
   the pool must not spawn domains per call: worker domains are spawned
   lazily on first use and then live for the process (they are plain
   system threads, torn down by process exit), blocking on a condition
   variable between batches — no busy-waiting between settles.

   [run tasks] executes every task, running the first on the calling
   domain (hiding the hand-off latency for one partition) and the rest
   on pool workers, and returns when all are done.  Any exception
   raised by a task is re-raised on the caller after the barrier, so a
   partitioned settle fails like a sequential one.  Concurrent [run]
   calls from different domains are safe: each batch tracks its own
   completion count under the shared lock.

   This deliberately does not reuse the driver's [Service] pool:
   lib/rtl must not depend on lib/driver (the dependency points the
   other way), and the service pool is built for jobs measured in
   milliseconds with admission control, not for a barrier crossed
   thousands of times per simulation. *)

type batch = { mutable remaining : int; mutable failed : exn option }

let mutex = Mutex.create ()
let work_cond = Condition.create ()
let done_cond = Condition.create ()
let queue : ((unit -> unit) * batch) Queue.t = Queue.create ()
let spawned = ref 0

(* At least one worker even on a single-core host, so the cross-domain
   execution path (and the memory-model assumptions behind it) is
   exercised everywhere, not only on big machines. *)
let max_workers = max 1 (Domain.recommended_domain_count () - 1)

let record_failure b e =
  Mutex.lock mutex;
  if b.failed = None then b.failed <- Some e;
  Mutex.unlock mutex

let rec worker_loop () =
  Mutex.lock mutex;
  let rec next () =
    match Queue.take_opt queue with
    | Some tb -> tb
    | None ->
      Condition.wait work_cond mutex;
      next ()
  in
  let task, b = next () in
  Mutex.unlock mutex;
  (try task () with e -> record_failure b e);
  Mutex.lock mutex;
  b.remaining <- b.remaining - 1;
  if b.remaining = 0 then Condition.broadcast done_cond;
  Mutex.unlock mutex;
  worker_loop ()

let ensure_workers wanted =
  let wanted = min wanted max_workers in
  while !spawned < wanted do
    incr spawned;
    ignore (Domain.spawn worker_loop : unit Domain.t)
  done

(* Number of workers the pool would use — callers size partition
   counts with this ([+ 1] for the calling domain). *)
let parallelism () = max_workers + 1

(* Default partition count for auto-sizing: the machine's real core
   count.  On a single-core host this is 1 — a partitioned settle pays
   two condition-variable round-trips per barrier, which is pure
   overhead when the domains cannot actually run in parallel.
   [parallelism] deliberately stays >= 2 everywhere so explicitly
   requested partition counts still exercise the cross-domain path. *)
let auto_partitions () = Domain.recommended_domain_count ()

let run tasks =
  match tasks with
  | [] -> ()
  | [ t ] -> t ()
  | first :: rest ->
    ensure_workers (List.length rest);
    let b = { remaining = List.length rest; failed = None } in
    Mutex.lock mutex;
    List.iter (fun t -> Queue.add (t, b) queue) rest;
    Condition.broadcast work_cond;
    Mutex.unlock mutex;
    (try first () with e -> record_failure b e);
    Mutex.lock mutex;
    while b.remaining > 0 do
      Condition.wait done_cond mutex
    done;
    let failed = b.failed in
    Mutex.unlock mutex;
    (match failed with Some e -> raise e | None -> ())
