(* Generic textual form, MLIR style:

     %v0 = "hir.add"(%a, %b) {attrs} : (i32, i32) -> i32

   The output round-trips through [Parser].  Value names prefer the
   hint recorded on the value, uniquified with a numeric suffix. *)

open Ir

type namer = {
  names : (int, string) Hashtbl.t;  (* value id -> printed name *)
  used : (string, int) Hashtbl.t;  (* base name -> next suffix *)
  canonical : bool;  (* sequential names, ignore hints and ids *)
  mutable next_seq : int;
}

let create_namer ?(canonical = false) () =
  { names = Hashtbl.create 64; used = Hashtbl.create 64; canonical; next_seq = 0 }

let name_value namer v =
  match Hashtbl.find_opt namer.names v.v_id with
  | Some n -> n
  | None when namer.canonical ->
    (* Canonical mode names values 0, 1, 2, … in order of first
       appearance, so two structurally identical modules print the same
       text regardless of the hints and ids their construction history
       left behind. *)
    let n = Printf.sprintf "%d" namer.next_seq in
    namer.next_seq <- namer.next_seq + 1;
    Hashtbl.replace namer.names v.v_id n;
    n
  | None ->
    let base =
      match v.v_hint with Some h -> h | None -> Printf.sprintf "v%d" v.v_id
    in
    let rec unique candidate k =
      if Hashtbl.mem namer.used candidate then
        unique (Printf.sprintf "%s_%d" base k) (k + 1)
      else candidate
    in
    let n = unique base 1 in
    Hashtbl.replace namer.used n 0;
    Hashtbl.replace namer.names v.v_id n;
    n

let pp_value namer fmt v = Format.fprintf fmt "%%%s" (name_value namer v)

let pp_attrs fmt attrs =
  match attrs with
  | [] -> ()
  | _ ->
    let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
    let pp_entry fmt (k, v) = Format.fprintf fmt "%s = %a" k Attribute.pp v in
    Format.fprintf fmt " {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_entry)
      attrs

(* Locations are printed in the parseable quoted form, unlike the bare
   form [Location.pp] uses in diagnostics. *)
let pp_loc fmt = function
  | Location.Unknown -> ()
  | Location.File { file; line; col } ->
    Format.fprintf fmt " loc(%S:%d:%d)" file line col
  | Location.Name { name; _ } -> Format.fprintf fmt " loc(%S)" name

let rec pp_op ?(indent = 0) namer fmt op =
  (* results *)
  (match Array.to_list op.results with
  | [] -> ()
  | rs ->
    Format.fprintf fmt "%a = "
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         (pp_value namer))
      rs);
  Format.fprintf fmt "%S(%a)" op.op_name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (pp_value namer))
    (Array.to_list op.operands);
  (* regions *)
  (match op.regions with
  | [] -> ()
  | regions ->
    Format.fprintf fmt " (";
    List.iteri
      (fun i r ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_region ~indent namer fmt r)
      regions;
    Format.fprintf fmt ")");
  pp_attrs fmt op.attrs;
  (* type signature *)
  Format.fprintf fmt " : (%a) -> (%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Typ.pp)
    (List.map (fun v -> v.v_type) (Array.to_list op.operands))
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Typ.pp)
    (List.map (fun v -> v.v_type) (Array.to_list op.results));
  pp_loc fmt op.loc

and pp_region ~indent namer fmt r =
  let pad = String.make (indent + 2) ' ' in
  Format.fprintf fmt "{";
  List.iter
    (fun b ->
      Format.fprintf fmt "\n%s^bb(%a):" pad
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt a -> Format.fprintf fmt "%a: %a" (pp_value namer) a Typ.pp a.v_type))
        (Block.args b);
      List.iter
        (fun op ->
          Format.fprintf fmt "\n%s" pad;
          pp_op ~indent:(indent + 2) namer fmt op)
        (Block.ops b))
    r.blocks;
  Format.fprintf fmt "\n%s}" (String.make indent ' ')

let op_to_string op =
  let namer = create_namer () in
  Format.asprintf "%a" (pp_op ~indent:0 namer) op

(* Canonical text: identical for structurally identical modules even
   when value ids / hints differ (e.g. comparing the output of two
   different optimization pipelines).  Not intended to be parsed back. *)
let op_to_canonical_string op =
  let namer = create_namer ~canonical:true () in
  Format.asprintf "%a" (pp_op ~indent:0 namer) op

let pp fmt op =
  let namer = create_namer () in
  pp_op ~indent:0 namer fmt op
