examples/scheduling_errors.mli:
