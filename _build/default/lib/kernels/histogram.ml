(* Histogram of an 8-bit image using a local block-RAM buffer (paper
   Section 8: "data dependent memory accesses").

   Three phases: clear the 256 bins (II = 1), accumulate over the
   pixels (II = 2, covering the read-modify-write latency on the BRAM),
   and copy the bins to the output interface (II = 1). *)

open Hir_ir
open Hir_dialect

let name = "histogram"
let pixels = 256
let bins = 256

let build_into m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "img" (Types.memref ~dims:[ pixels ] ~elem:Typ.i8 ~port:Types.Read ());
        Builder.arg "histo"
          (Types.memref ~dims:[ bins ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ img; out ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cbins = Builder.constant b bins in
        let cpixels = Builder.constant b pixels in
        let ports =
          Builder.alloc b ~kind:Ops.Block_ram ~dims:[ bins ] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let hist_r, hist_w =
          match ports with [ r; w ] -> (r, w) | _ -> assert false
        in
        (* Phase 1: clear the bins. *)
        let tf_clear =
          Builder.for_loop b ~iv_hint:"bc" ~lb:c0 ~ub:cbins ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv ~ti ->
              Builder.mem_write b c0 hist_w [ iv ] ~at:Builder.(ti @>> 0);
              Builder.yield b ~at:Builder.(ti @>> 1))
        in
        (* Phase 2: accumulate; II = 2 covers the BRAM
           read-increment-write recurrence. *)
        let tf_acc =
          Builder.for_loop b ~iv_hint:"p" ~lb:c0 ~ub:cpixels ~step:c1
            ~at:Builder.(tf_clear @>> 1)
            (fun b ~iv:p ~ti ->
              let pix = Builder.mem_read b img [ p ] ~at:Builder.(ti @>> 0) in
              let cnt = Builder.mem_read b hist_r [ pix ] ~at:Builder.(ti @>> 1) in
              let cnt1 = Builder.add b cnt c1 in
              let pix2 = Builder.delay b pix ~by:1 ~at:Builder.(ti @>> 1) in
              Builder.mem_write b cnt1 hist_w [ pix2 ] ~at:Builder.(ti @>> 2);
              Builder.yield b ~at:Builder.(ti @>> 2))
        in
        (* Phase 3: write the final histogram out. *)
        let _tf =
          Builder.for_loop b ~iv_hint:"bo" ~lb:c0 ~ub:cbins ~step:c1
            ~at:Builder.(tf_acc @>> 1)
            (fun b ~iv ~ti ->
              let h = Builder.mem_read b hist_r [ iv ] ~at:Builder.(ti @>> 0) in
              let iv1 = Builder.delay b iv ~by:1 ~at:Builder.(ti @>> 0) in
              Builder.mem_write b h out [ iv1 ] ~at:Builder.(ti @>> 1);
              Builder.yield b ~at:Builder.(ti @>> 1))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input =
  let counts = Array.make bins 0 in
  Array.iter (fun v -> counts.(Bitvec.to_int v) <- counts.(Bitvec.to_int v) + 1) input;
  Array.map (Bitvec.of_int ~width:32) counts

let make_input ~seed = Util.test_data ~seed ~n:pixels ~width:8

let check_interp ?(seed = 3) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "histogram output mismatch"
