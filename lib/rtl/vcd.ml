(* VCD (Value Change Dump) waveform writer for the RTL simulator, so
   generated designs can be inspected in GTKWave & co.

     let vcd = Vcd.create ~path:"trace.vcd" sim in
     (* each cycle, after settling: *)
     Vcd.sample vcd sim;
     ...
     Vcd.close vcd *)

type t = {
  oc : out_channel;
  ids : (string * string * int * (unit -> Bitvec.t)) array;
      (* signal, vcd id, width, pre-resolved reader — resolving the
         slot once at [create] keeps sampling free of per-signal name
         lookups *)
  last : Bitvec.t option array;  (* previous sample, parallel to [ids] *)
  mutable time : int;
}

(* VCD identifiers: printable ASCII, shortest-first. *)
let id_of_index i =
  let alphabet = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod alphabet)) in
    let acc = String.make 1 c ^ acc in
    if i < alphabet then acc else go ((i / alphabet) - 1) acc
  in
  go i ""

let create ?signals ~path sim =
  let oc = open_out path in
  let all = Sim.signal_names sim in
  let selected =
    match signals with
    | None -> all
    | Some wanted -> List.filter (fun (n, _) -> List.mem n wanted) all
  in
  let ids =
    Array.of_list
      (List.mapi
         (fun i (name, width) -> (name, id_of_index i, width, Sim.reader sim name))
         selected)
  in
  output_string oc "$timescale 1ns $end\n";
  output_string oc "$scope module top $end\n";
  Array.iter
    (fun (name, id, width, _) ->
      Printf.fprintf oc "$var wire %d %s %s $end\n" width id name)
    ids;
  output_string oc "$upscope $end\n$enddefinitions $end\n";
  { oc; ids; last = Array.make (Array.length ids) None; time = 0 }

let emit_value t id width v =
  if width = 1 then
    Printf.fprintf t.oc "%s%s\n" (if Bitvec.is_zero v then "0" else "1") id
  else begin
    (* VCD convention: leading zeros trimmed. *)
    let bits = Bitvec.to_bin_string v in
    let rec first_one i =
      if i >= String.length bits - 1 then String.length bits - 1
      else if bits.[i] = '1' then i
      else first_one (i + 1)
    in
    let trimmed = String.sub bits (first_one 0) (String.length bits - first_one 0) in
    Printf.fprintf t.oc "b%s %s\n" trimmed id
  end

(* Record the current settled state as one timestep; only changed
   signals are written, per the VCD format. *)
let sample t _sim =
  let any = ref false in
  Array.iteri
    (fun i (_name, id, width, read) ->
      let v = read () in
      let changed =
        match t.last.(i) with Some prev -> not (Bitvec.equal prev v) | None -> true
      in
      if changed then begin
        t.last.(i) <- Some v;
        if not !any then begin
          Printf.fprintf t.oc "#%d\n" t.time;
          any := true
        end;
        emit_value t id width v
      end)
    t.ids;
  if (not !any) && t.time = 0 then Printf.fprintf t.oc "#%d\n" t.time;
  t.time <- t.time + 1

let close t =
  Printf.fprintf t.oc "#%d\n" t.time;
  close_out t.oc
