lib/hir/pretty.ml: Buffer Format Hir_ir Ir List Ops Printer Printf String Typ
