(* The structural core of the IR: SSA values, operations, blocks and
   regions, with the same containment model as MLIR:

     op -> regions -> blocks -> ops

   Everything is mutable so that passes can rewrite in place; the
   [Builder] module provides the safe construction API and [Verify]
   checks structural invariants after surgery. *)

type value = {
  v_id : int;
  mutable v_type : Typ.t;
  mutable v_hint : string option;  (* preferred printed name, e.g. "ti" *)
  mutable v_def : def;
}

and def =
  | Op_result of op * int
  | Block_arg of block * int

and op = {
  op_id : int;
  mutable op_name : string;  (* fully qualified, e.g. "hir.mem_read" *)
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : (string * Attribute.t) list;
  mutable regions : region list;
  mutable loc : Location.t;
  mutable op_parent : block option;
}

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_ops : op list;  (* program order *)
  mutable b_parent : region option;
}

and region = {
  r_id : int;
  mutable blocks : block list;
  mutable r_parent : op option;
}

(* Id allocation is domain-local: each OCaml 5 domain owns an
   independent counter, so concurrent compilation jobs (lib/driver's
   batch scheduler) never race on it.  Ids are only required to be
   unique within one IR tree — every compile job builds its module from
   scratch inside [with_isolated_ids], which also makes the id stream
   (and therefore the id-derived names in the emitted Verilog)
   deterministic per job regardless of what ran before or concurrently. *)
let next_id = Domain.DLS.new_key (fun () -> 0)

let fresh_id () =
  let v = Domain.DLS.get next_id + 1 in
  Domain.DLS.set next_id v;
  v

(* Run [f] with a fresh id counter, restoring the previous counter
   afterwards.  IR created inside the scope must not be mixed into IR
   trees created outside it (ids could collide). *)
let with_isolated_ids f =
  let saved = Domain.DLS.get next_id in
  Domain.DLS.set next_id 0;
  Fun.protect ~finally:(fun () -> Domain.DLS.set next_id saved) f

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

module Value = struct
  type t = value

  let create ?hint typ def = { v_id = fresh_id (); v_type = typ; v_hint = hint; v_def = def }

  let typ v = v.v_type
  let hint v = v.v_hint
  let set_hint v h = v.v_hint <- Some h
  let id v = v.v_id
  let equal a b = a.v_id = b.v_id
  let compare a b = Int.compare a.v_id b.v_id
  let hash v = v.v_id

  let defining_op v =
    match v.v_def with Op_result (op, _) -> Some op | Block_arg _ -> None

  let result_index v =
    match v.v_def with Op_result (_, i) -> Some i | Block_arg _ -> None

  let defining_block v =
    match v.v_def with Block_arg (b, _) -> Some b | Op_result _ -> None

  let is_block_arg v =
    match v.v_def with Block_arg _ -> true | Op_result _ -> false
end

module Value_map = Map.Make (struct
  type t = value

  let compare = Value.compare
end)

module Value_set = Set.Make (struct
  type t = value

  let compare = Value.compare
end)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

module Op = struct
  type t = op

  let name op = op.op_name
  let operands op = Array.to_list op.operands
  let operand op i = op.operands.(i)
  let num_operands op = Array.length op.operands
  let results op = Array.to_list op.results
  let result op i = op.results.(i)
  let num_results op = Array.length op.results
  let regions op = op.regions
  let region op i = List.nth op.regions i
  let loc op = op.loc
  let parent op = op.op_parent
  let equal a b = a.op_id = b.op_id

  let attr op key = List.assoc_opt key op.attrs
  let has_attr op key = List.mem_assoc key op.attrs

  let set_attr op key value =
    op.attrs <- (key, value) :: List.remove_assoc key op.attrs

  let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

  let int_attr op key =
    match attr op key with Some a -> Attribute.as_int a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let int_attr_opt op key = Option.map Attribute.as_int (attr op key)

  let string_attr op key =
    match attr op key with Some a -> Attribute.as_string a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let symbol_attr op key =
    match attr op key with Some a -> Attribute.as_symbol a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let set_operand op i v = op.operands.(i) <- v
  let set_operands op vs = op.operands <- Array.of_list vs

  (* Create a detached op.  Result values are created from the given
     result types. *)
  let create ?(attrs = []) ?(regions = []) ?(loc = Location.unknown)
      ?(result_hints = []) name ~operands ~result_types =
    let rec hint_at i = function
      | [] -> None
      | h :: _ when i = 0 -> h
      | _ :: rest -> hint_at (i - 1) rest
    in
    let op =
      {
        op_id = fresh_id ();
        op_name = name;
        operands = Array.of_list operands;
        results = [||];
        attrs;
        regions;
        loc;
        op_parent = None;
      }
    in
    op.results <-
      Array.of_list
        (List.mapi
           (fun i ty -> Value.create ?hint:(hint_at i result_hints) ty (Op_result (op, i)))
           result_types);
    List.iter (fun r -> r.r_parent <- Some op) regions;
    op

  (* The region (if any) that encloses this op transitively at the
     given nesting distance of 1. *)
  let parent_region op = Option.bind op.op_parent (fun b -> b.b_parent)
  let parent_op op = Option.bind (parent_region op) (fun r -> r.r_parent)

  let rec ancestors op =
    match parent_op op with None -> [] | Some p -> p :: ancestors p
end

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

module Block = struct
  type t = block

  let create ?(arg_hints = []) arg_types =
    let b = { b_id = fresh_id (); b_args = [||]; b_ops = []; b_parent = None } in
    let rec hint_at i = function
      | [] -> None
      | h :: _ when i = 0 -> h
      | _ :: rest -> hint_at (i - 1) rest
    in
    b.b_args <-
      Array.of_list
        (List.mapi
           (fun i ty -> Value.create ?hint:(hint_at i arg_hints) ty (Block_arg (b, i)))
           arg_types);
    b

  let args b = Array.to_list b.b_args
  let arg b i = b.b_args.(i)
  let num_args b = Array.length b.b_args
  let ops b = b.b_ops
  let parent b = b.b_parent
  let equal a b = a.b_id = b.b_id

  let append b op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    b.b_ops <- b.b_ops @ [ op ]

  let insert_before b ~anchor op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    let rec go = function
      | [] -> [ op ]  (* anchor not found: append *)
      | o :: rest when Op.equal o anchor -> op :: o :: rest
      | o :: rest -> o :: go rest
    in
    b.b_ops <- go b.b_ops

  let insert_after b ~anchor op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    let rec go = function
      | [] -> [ op ]
      | o :: rest when Op.equal o anchor -> o :: op :: rest
      | o :: rest -> o :: go rest
    in
    b.b_ops <- go b.b_ops

  let remove b op =
    b.b_ops <- List.filter (fun o -> not (Op.equal o op)) b.b_ops;
    op.op_parent <- None

  let terminator b =
    match List.rev b.b_ops with [] -> None | last :: _ -> Some last
end

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)

module Region = struct
  type t = region

  let create ?(blocks = []) () =
    let r = { r_id = fresh_id (); blocks; r_parent = None } in
    List.iter (fun b -> b.b_parent <- Some r) blocks;
    r

  let blocks r = r.blocks
  let parent r = r.r_parent
  let equal a b = a.r_id = b.r_id

  let append_block r b =
    assert (b.b_parent = None);
    b.b_parent <- Some r;
    r.blocks <- r.blocks @ [ b ]

  let entry_block r =
    match r.blocks with [] -> None | b :: _ -> Some b

  let rec ancestor_ops r =
    match r.r_parent with
    | None -> []
    | Some op -> (
      op :: (match Op.parent_region op with None -> [] | Some r' -> ancestor_ops r'))

  (* Is [inner] nested within (or equal to) [outer]? *)
  let rec is_nested_in ~outer inner =
    if equal inner outer then true
    else
      match inner.r_parent with
      | None -> false
      | Some op -> (
        match Op.parent_region op with
        | None -> false
        | Some r -> is_nested_in ~outer r)
end

(* ------------------------------------------------------------------ *)
(* Traversal and rewriting utilities                                   *)

module Walk = struct
  (* Pre-order walk over every op nested under [op], including [op]. *)
  let rec ops_pre op ~f =
    f op;
    List.iter (fun r -> List.iter (fun b -> List.iter (fun o -> ops_pre o ~f) b.b_ops) r.blocks) op.regions

  (* Post-order: children first. *)
  let rec ops_post op ~f =
    List.iter (fun r -> List.iter (fun b -> List.iter (fun o -> ops_post o ~f) b.b_ops) r.blocks) op.regions;
    f op

  let collect op ~pred =
    let acc = ref [] in
    ops_pre op ~f:(fun o -> if pred o then acc := o :: !acc);
    List.rev !acc

  let find_all op name = collect op ~pred:(fun o -> o.op_name = name)
end

module Rewrite = struct
  (* Replace every use of [old_v] with [new_v] in ops nested under
     [root] (operand lists only; block args and results are defs, not
     uses). *)
  let replace_uses ~root ~old_v ~new_v =
    Walk.ops_pre root ~f:(fun op ->
        Array.iteri
          (fun i v -> if Value.equal v old_v then op.operands.(i) <- new_v)
          op.operands)

  let replace_op_with_value ~root op new_v =
    assert (Array.length op.results = 1);
    replace_uses ~root ~old_v:op.results.(0) ~new_v;
    match op.op_parent with Some b -> Block.remove b op | None -> ()

  (* Erase an op (must have no remaining uses; not checked here). *)
  let erase op =
    match op.op_parent with Some b -> Block.remove b op | None -> ()

  (* Count uses of [v] under [root]. *)
  let count_uses ~root v =
    let n = ref 0 in
    Walk.ops_pre root ~f:(fun op ->
        Array.iter (fun u -> if Value.equal u v then incr n) op.operands);
    !n

  let has_uses ~root v = count_uses ~root v > 0
end

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)

module Clone = struct
  (* Deep-clone an op.  [mapping] seeds value substitutions (e.g. to
     substitute a block arg with a constant when unrolling); the
     returned table includes mappings for all cloned results and block
     args. *)
  let rec clone_op ?(mapping = Hashtbl.create 16) op =
    let map_value v =
      match Hashtbl.find_opt mapping v.v_id with Some v' -> v' | None -> v
    in
    let operands = Array.to_list (Array.map map_value op.operands) in
    let regions = List.map (clone_region ~mapping) op.regions in
    let cloned =
      Op.create ~attrs:op.attrs ~regions ~loc:op.loc op.op_name ~operands
        ~result_types:(List.map (fun r -> r.v_type) (Array.to_list op.results))
    in
    Array.iteri
      (fun i r ->
        cloned.results.(i).v_hint <- r.v_hint;
        Hashtbl.replace mapping r.v_id cloned.results.(i))
      op.results;
    cloned

  and clone_region ~mapping r =
    let blocks = List.map (clone_block ~mapping) r.blocks in
    Region.create ~blocks ()

  and clone_block ~mapping b =
    let nb = Block.create (List.map (fun a -> a.v_type) (Block.args b)) in
    Array.iteri
      (fun i a ->
        nb.b_args.(i).v_hint <- a.v_hint;
        (* Respect substitutions seeded by the caller (e.g. an unroll
           pass mapping the induction variable to a constant). *)
        if not (Hashtbl.mem mapping a.v_id) then
          Hashtbl.replace mapping a.v_id nb.b_args.(i))
      b.b_args;
    List.iter (fun op -> Block.append nb (clone_op ~mapping op)) b.b_ops;
    nb
end
