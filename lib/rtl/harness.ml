(* Testbench harness: runs a compiled HIR design in the RTL simulator
   with behavioural memory agents standing in for the external memory
   interfaces (the paper's "input/output memory interface").

   Each external memref port is served with 1-cycle read latency:
   addresses presented with rd_en at cycle T return data at T+1; writes
   presented at T are visible to reads from T+1 on — the same semantics
   as the HIR interpreter's memory model, which is what makes the
   codegen-vs-interpreter equivalence tests meaningful. *)

open Hir_dialect
module Emit = Hir_codegen.Emit

type input =
  | Scalar of Bitvec.t
  | Tensor of Bitvec.t array
  | Out_tensor

(* Per-bank port accessors, resolved against the simulator once at
   agent construction ([Sim.reader]/[Sim.writer]) so the per-cycle
   observe/drive loop does no name lookups. *)
type agent_bank = {
  b_rd : ((unit -> Bitvec.t) * (unit -> Bitvec.t) * (Bitvec.t -> unit)) option;
      (* en, addr, drive-data *)
  b_wr : ((unit -> Bitvec.t) * (unit -> Bitvec.t) * (unit -> Bitvec.t)) option;
      (* en, addr, data *)
}

type agent = {
  ag_elem_width : int;
  ag_tensor : Bitvec.t option array;  (* linear row-major; None = uninitialized *)
  ag_linear : (int * int) -> int option;  (* (bank, addr) -> linear index *)
  ag_banks : agent_bank array;
  mutable ag_pending : ((Bitvec.t -> unit) * Bitvec.t) list;
      (* data-port writers to drive next cycle *)
}

let build_agent sim (mi : Emit.mem_iface) init =
  let info = mi.Emit.mi_info in
  let n = Hir_dialect.Types.num_elements info in
  let depth = Hir_dialect.Types.bank_depth info in
  let table = Hashtbl.create n in
  List.iter
    (fun (idx, bank, addr) ->
      let linear =
        List.fold_left2 (fun acc d i -> (acc * d.Types.size) + i) 0 info.Types.dims idx
      in
      Hashtbl.replace table ((bank * depth) + addr) linear)
    (Types.layout info);
  let resolve_bank (names : Emit.bank_names) =
    {
      b_rd =
        Option.map
          (fun (en, addr, data) -> (Sim.reader sim en, Sim.reader sim addr, Sim.writer sim data))
          names.Emit.bn_rd;
      b_wr =
        Option.map
          (fun (en, addr, data) -> (Sim.reader sim en, Sim.reader sim addr, Sim.reader sim data))
          names.Emit.bn_wr;
    }
  in
  {
    ag_elem_width = mi.Emit.mi_elem_width;
    ag_tensor =
      (match init with
      | Some values -> Array.map Option.some values
      | None -> Array.make n None);
    ag_linear = (fun (bank, addr) -> Hashtbl.find_opt table ((bank * depth) + addr));
    ag_banks = Array.map resolve_bank mi.Emit.mi_banks;
    ag_pending = [];
  }

let agent_tensor ag = ag.ag_tensor

(* Drive data inputs captured last cycle. *)
let agent_drive ag =
  List.iter (fun (drive, v) -> drive v) ag.ag_pending;
  ag.ag_pending <- []

(* Observe settled outputs: capture reads (respond next cycle), apply
   writes (visible next cycle). *)
let agent_observe ag =
  let tensor = ag.ag_tensor in
  Array.iteri
    (fun b bank ->
      (match bank.b_rd with
      | Some (en, addr, drive) ->
        if not (Bitvec.is_zero (en ())) then begin
          let a = Bitvec.to_int (addr ()) in
          let value =
            match ag.ag_linear (b, a) with
            | Some linear -> (
              match tensor.(linear) with
              | Some v -> v
              | None -> Bitvec.zero ag.ag_elem_width
                (* uninitialized read: UB in HIR; the interpreter
                   rejects it, the RTL agent returns zeros *))
            | None -> Bitvec.zero ag.ag_elem_width
          in
          ag.ag_pending <- (drive, value) :: ag.ag_pending
        end
      | None -> ());
      match bank.b_wr with
      | Some (en, addr, data) ->
        if not (Bitvec.is_zero (en ())) then begin
          let a = Bitvec.to_int (addr ()) in
          match ag.ag_linear (b, a) with
          | Some linear -> tensor.(linear) <- Some (data ())
          | None -> ()
        end
      | None -> ())
    ag.ag_banks

type run_result = {
  failures : Sim.assertion_failure list;
  cycles_run : int;
  output_values : (string * Bitvec.t) list;  (* scalar results at the end *)
  engine_used : Sim.engine;
      (* the engine that actually produced this result — [`Reference]
         with a compiled engine requested means the degradation ladder
         fired *)
  sim_stats : Sim.stats;
}

(* Drive scalar arguments and build one memory agent per memref
   argument of [sim]. *)
let setup_agents sim ~(emitted : Emit.emitted) ~inputs =
  let args = emitted.Emit.top_iface.Emit.ifc_args in
  if List.length args <> List.length inputs then
    failwith "harness: input count mismatch";
  let agents =
    List.map2
      (fun arg input ->
        match (arg, input) with
        | Emit.Ifc_scalar (name, w, _), Scalar v ->
          Sim.set_input sim name (Bitvec.resize ~width:w v);
          None
        | Emit.Ifc_mem mi, Tensor init -> Some (build_agent sim mi (Some init))
        | Emit.Ifc_mem mi, Out_tensor -> Some (build_agent sim mi None)
        | _ -> failwith "harness: input does not match the interface")
      args inputs
  in
  List.filter_map (fun x -> x) agents

(* One simulation cycle: drive, settle, optionally sample the VCD,
   observe memory traffic against the settled state, clock.  [start]
   is the pre-resolved writer for the t_start pulse. *)
let cycle_once sim ~start agents vcd ~is_first =
  start (Bitvec.of_bool is_first);
  List.iter agent_drive agents;
  Sim.settle_only sim;
  Option.iter (fun v -> Vcd.sample v sim) vcd;
  List.iter agent_observe agents;
  Sim.clock sim

(* Final settle, scalar outputs, stats. *)
let finish_run sim ~(emitted : Emit.emitted) ~total =
  Sim.settle_only sim;
  let output_values =
    List.map
      (fun (name, _, _) -> (name, Sim.peek sim name))
      emitted.Emit.top_iface.Emit.ifc_results
  in
  Sim.record_stats sim;
  {
    failures = Sim.failures sim;
    cycles_run = total;
    output_values;
    engine_used = Sim.engine sim;
    sim_stats = Sim.stats sim;
  }

let run_once ?(extra_cycles = 8) ~engine ?(partitions = 0) ?vcd_path
    ~(emitted : Emit.emitted) ~inputs ~cycles () =
  let flat = Flatten.flatten emitted.Emit.design in
  let sim = Sim.create ~engine ~partitions flat in
  let vcd = Option.map (fun path -> Vcd.create ~path sim) vcd_path in
  let agents = setup_agents sim ~emitted ~inputs in
  let start = Sim.writer sim "t_start" in
  let total = cycles + extra_cycles in
  for c = 0 to total - 1 do
    cycle_once sim ~start agents vcd ~is_first:(c = 0)
  done;
  let result = finish_run sim ~emitted ~total in
  Option.iter Vcd.close vcd;
  (result, agents)

(* Degradation ladder: an internal [Sim_error] from a compiled engine
   (a compilation bug, or an injected "sim.settle" fault) falls back to
   a full re-run on the reference tree walker — slower, but the
   executable specification.  Both compiled engines (opcode and
   closure-based) sit on the same rung; the fallback is recorded
   through [Pass.record_counter], so `hirc sim --stats` and Chrome
   traces show "sim.fallback_reference" instead of degrading silently.
   A [Sim_error] from the reference engine itself propagates: there is
   no lower rung. *)
let run ?extra_cycles ?(engine = `Opcode) ?partitions ?vcd_path ~emitted ~inputs
    ~cycles () =
  match run_once ?extra_cycles ~engine ?partitions ?vcd_path ~emitted ~inputs ~cycles () with
  | result -> result
  | exception Sim.Sim_error _ when engine <> `Reference ->
    Hir_ir.Pass.record_counter "sim.fallback_reference";
    run_once ?extra_cycles ~engine:`Reference ?vcd_path ~emitted ~inputs ~cycles ()

(* Batched multi-stimulus execution: flatten and compile once, then run
   one simulator per stimulus — [Sim.fork] shares the opcode engine's
   compiled program, so each extra stimulus costs only fresh register
   files.  The K simulations advance in lockstep, interleaved cycle by
   cycle.  Returns one [(result, agents)] per stimulus, in order.  The
   degradation ladder applies to the batch as a whole: any [Sim_error]
   re-runs every stimulus on the reference walker. *)
let run_batch ?(extra_cycles = 8) ?(engine = `Opcode) ?(partitions = 0) ~emitted
    ~stimuli ~cycles () =
  let attempt engine =
    let flat = Flatten.flatten (emitted : Emit.emitted).Emit.design in
    let proto = Sim.create ~engine ~partitions flat in
    let runs =
      List.mapi
        (fun i inputs ->
          let sim = if i = 0 then proto else Sim.fork proto in
          (sim, Sim.writer sim "t_start", setup_agents sim ~emitted ~inputs))
        stimuli
    in
    let total = cycles + extra_cycles in
    for c = 0 to total - 1 do
      List.iter
        (fun (sim, start, agents) -> cycle_once sim ~start agents None ~is_first:(c = 0))
        runs
    done;
    List.map (fun (sim, _, agents) -> (finish_run sim ~emitted ~total, agents)) runs
  in
  match attempt engine with
  | results -> results
  | exception Sim.Sim_error _ when engine <> `Reference ->
    Hir_ir.Pass.record_counter "sim.fallback_reference";
    attempt `Reference

(* Snapshot of the [i]-th memref argument after a run (memref args
   only, in interface order). *)
let nth_tensor agents i = agent_tensor (List.nth agents i)
