(* The fuzzing oracle and run loop.

   The frontend contract under test: for ANY input bytes, the compiler
   either succeeds or reports located diagnostics ([Lex_error],
   [Parse_error], verifier diagnostics, [Codegen_error]).  Any other
   exception — [Failure], [Invalid_argument], [Stack_overflow], … — is
   a crash, and each crash is reported with the input that triggered
   it.

   Unlike [Driver.compile_job] (whose catch-all backstop exists so a
   service never dies), this module drives the stages directly, so
   bugs the backstop would paper over still surface here as crashes. *)

open Hir_ir
open Hir_dialect

type mode =
  | Frontend  (* parse + structural & schedule verification *)
  | Full  (* Frontend + default pass pipeline + emit + print *)

type verdict =
  | Reject_lex
  | Reject_parse
  | Reject_verify  (* verifier or pass-pipeline diagnostics *)
  | Reject_backend  (* located Codegen_error *)
  | Compiled_ok

type crash = {
  crash_iteration : int;  (* 1-based fuzz iteration *)
  crash_input : string;
  crash_exn : string;  (* Printexc rendering of the escaped exception *)
}

type stats = {
  iterations : int;
  lex_rejects : int;
  parse_rejects : int;
  verify_rejects : int;
  backend_rejects : int;
  compiled_ok : int;
  crashes : crash list;  (* in discovery order *)
}

let verdict_to_string = function
  | Reject_lex -> "lex-reject"
  | Reject_parse -> "parse-reject"
  | Reject_verify -> "verify-reject"
  | Reject_backend -> "backend-reject"
  | Compiled_ok -> "ok"

(* Structural verification gates schedule verification, exactly as the
   driver does: the schedule verifier's accessors assume a structurally
   sound module. *)
let verifier_diags module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  engine

let classify ~mode input =
  match Parser.parse_string ~file:"<fuzz>" input with
  | exception Lexer.Lex_error _ -> Reject_lex
  | exception Parser.Parse_error _ -> Reject_parse
  | module_op -> (
    if Diagnostic.Engine.has_errors (verifier_diags module_op) then Reject_verify
    else
      match mode with
      | Frontend -> Compiled_ok
      | Full -> (
        match
          List.filter (fun f -> not (Ops.is_extern_func f)) (Ops.module_funcs module_op)
        with
        | [] -> Reject_verify
        | funcs -> (
          let top = List.nth funcs (List.length funcs - 1) in
          let mgr =
            Pass.Manager.create
              (Hir_driver.Pipeline.to_passes (Hir_driver.Pipeline.default ~optimize:true))
          in
          let result = Pass.Manager.run mgr module_op in
          if not result.Pass.succeeded then Reject_verify
          else
            match Hir_codegen.Emit.emit ~module_op ~top () with
            | exception Hir_codegen.Emit.Codegen_error _ -> Reject_backend
            | emitted ->
              ignore
                (Hir_verilog.Pretty.design_to_string emitted.Hir_codegen.Emit.design);
              Compiled_ok)))

(* One oracle call: a verdict, or the crash payload. *)
let run_one ~mode input =
  match Ir.with_isolated_ids (fun () -> classify ~mode input) with
  | verdict -> Ok verdict
  | exception exn -> Error (Printexc.to_string exn)

let empty_stats =
  {
    iterations = 0;
    lex_rejects = 0;
    parse_rejects = 0;
    verify_rejects = 0;
    backend_rejects = 0;
    compiled_ok = 0;
    crashes = [];
  }

let count stats = function
  | Reject_lex -> { stats with lex_rejects = stats.lex_rejects + 1 }
  | Reject_parse -> { stats with parse_rejects = stats.parse_rejects + 1 }
  | Reject_verify -> { stats with verify_rejects = stats.verify_rejects + 1 }
  | Reject_backend -> { stats with backend_rejects = stats.backend_rejects + 1 }
  | Compiled_ok -> { stats with compiled_ok = stats.compiled_ok + 1 }

(* Run [iterations] fuzz cases.  Deterministic: (seed, mode, corpus)
   fully determine every generated input and therefore the stats.
   [on_crash] fires as crashes are found (e.g. to save the input);
   [on_input] fires before each case runs — its main use is persisting
   the current input somewhere so that a *hanging* case (which never
   reaches [on_crash]) can still be recovered. *)
let run ?(mode = Frontend) ?(seed = 1) ?(on_crash = fun _ -> ())
    ?(on_input = fun ~iteration:_ _ -> ()) ~iterations corpus =
  if corpus = [] then invalid_arg "Fuzz.run: empty corpus";
  let corpus = Array.of_list corpus in
  let rng = Rng.create ~seed in
  let stats = ref { empty_stats with iterations } in
  for i = 1 to iterations do
    let input = Mutate.generate rng corpus in
    on_input ~iteration:i input;
    match run_one ~mode input with
    | Ok verdict -> stats := count !stats verdict
    | Error exn_str ->
      let crash = { crash_iteration = i; crash_input = input; crash_exn = exn_str } in
      on_crash crash;
      stats := { !stats with crashes = !stats.crashes @ [ crash ] }
  done;
  !stats

let stats_to_string s =
  Printf.sprintf
    "%d iterations: %d lex-rejects, %d parse-rejects, %d verify-rejects, %d \
     backend-rejects, %d compiled ok, %d crashes"
    s.iterations s.lex_rejects s.parse_rejects s.verify_rejects s.backend_rejects
    s.compiled_ok (List.length s.crashes)
