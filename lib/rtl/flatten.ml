(* Hierarchical elaboration: inline every module instance into a single
   flat module, prefixing instance-local signals with the instance
   path.  Input ports become assigns from the (parent-scope) connection
   expressions; output ports become assigns from the child signal into
   the parent signal. *)

open Hir_verilog.Ast

exception Elab_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Elab_error s)) fmt

let rec rename_expr f = function
  | Const _ as e -> e
  | Ref name -> Ref (f name)
  | Index (name, a) -> Index (f name, rename_expr f a)
  | Slice (e, hi, lo) -> Slice (rename_expr f e, hi, lo)
  | Unop (op, e) -> Unop (op, rename_expr f e)
  | Binop (op, a, b) -> Binop (op, rename_expr f a, rename_expr f b)
  | Ternary (c, a, b) -> Ternary (rename_expr f c, rename_expr f a, rename_expr f b)
  | Concat es -> Concat (List.map (rename_expr f) es)

let rename_lvalue f = function
  | Lref name -> Lref (f name)
  | Lindex (name, a) -> Lindex (f name, rename_expr f a)

let rec rename_stmt f = function
  | Nonblocking (lv, e) -> Nonblocking (rename_lvalue f lv, rename_expr f e)
  | If (c, t, e) -> If (rename_expr f c, List.map (rename_stmt f) t, List.map (rename_stmt f) e)
  | Assert_stmt { cond; message } -> Assert_stmt { cond = rename_expr f cond; message }

type flat = {
  flat_items : item list;
  flat_inputs : string list;  (* top-level input ports (clk excluded) *)
  flat_outputs : string list;
}

let flatten (design : design) =
  (* Index modules and their ports by name once (first declaration
     wins, as with the assoc-list lookups this replaces). *)
  let modules = Hashtbl.create 16 in
  let port_tbls = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem modules m.mod_name) then begin
        Hashtbl.add modules m.mod_name m;
        let ports = Hashtbl.create 8 in
        List.iter
          (fun p ->
            if not (Hashtbl.mem ports p.port_name) then Hashtbl.add ports p.port_name p)
          m.ports;
        Hashtbl.add port_tbls m.mod_name ports
      end)
    design.modules;
  let top =
    match Hashtbl.find_opt modules design.top with
    | Some m -> m
    | None -> fail "top module %s not found" design.top
  in
  let out_items = ref [] in
  let emit i = out_items := i :: !out_items in
  (* [prefix] maps local names to global ones; ports of the instance
     are bound via [port_map] to parent-scope global expressions. *)
  let rec inline ~path ~port_map m =
    let local name =
      match Hashtbl.find_opt port_map name with
      | Some (`Alias global) -> global
      | Some (`Expr _) ->
        (* Input ports bound to non-trivial expressions get their own
           prefixed wire, assigned below. *)
        path ^ name
      | None -> if path = "" then name else path ^ name
    in
    (* Declare wires for ports bound to expressions and emit the
       binding assigns. *)
    List.iter
      (fun p ->
        match Hashtbl.find_opt port_map p.port_name with
        | Some (`Expr e) ->
          (match p.dir with
          | Input ->
            emit (Wire_decl { name = path ^ p.port_name; width = p.width });
            emit (Assign { target = path ^ p.port_name; expr = e })
          | Output -> fail "output port %s bound to a non-wire expression" p.port_name)
        | Some (`Alias _) -> ()
        | None ->
          (* Unconnected port: dangling wire (reads as 0). *)
          emit (Wire_decl { name = path ^ p.port_name; width = p.width }))
      m.ports;
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } -> emit (Wire_decl { name = local name; width })
        | Reg_decl { name; width } -> emit (Reg_decl { name = local name; width })
        | Mem_decl { name; width; depth; style } ->
          emit (Mem_decl { name = local name; width; depth; style })
        | Assign { target; expr } ->
          emit (Assign { target = local target; expr = rename_expr local expr })
        | Always_ff stmts -> emit (Always_ff (List.map (rename_stmt local) stmts))
        | Comment c -> emit (Comment c)
        | Instance { module_name; instance_name; connections } -> (
          match Hashtbl.find_opt modules module_name with
          | None -> fail "instance of unknown module %s" module_name
          | Some child ->
            let child_path = path ^ instance_name ^ "__" in
            let child_ports = Hashtbl.find port_tbls module_name in
            let port_map = Hashtbl.create (List.length connections) in
            List.iter
              (fun (port, actual) ->
                let dir =
                  match Hashtbl.find_opt child_ports port with
                  | Some p -> p.dir
                  | None -> fail "module %s has no port %s" module_name port
                in
                let actual = rename_expr local actual in
                let binding =
                  match (dir, actual) with
                  | _, Ref global -> `Alias global
                  | Input, e -> `Expr e
                  | Output, _ -> fail "output port %s needs a plain wire" port
                in
                if not (Hashtbl.mem port_map port) then Hashtbl.add port_map port binding)
              connections;
            inline ~path:child_path ~port_map child))
      m.items
  in
  inline ~path:"" ~port_map:(Hashtbl.create 1) top;
  let inputs =
    List.filter_map
      (fun p -> if p.dir = Input then Some p.port_name else None)
      top.ports
  in
  let outputs =
    List.filter_map
      (fun p -> if p.dir = Output then Some p.port_name else None)
      top.ports
  in
  (* Top ports were declared by the unconnected-port case of [inline]
     (the top runs with an empty port map). *)
  { flat_items = List.rev !out_items; flat_inputs = inputs; flat_outputs = outputs }
