(* Type parsing, shared by the op parser and dialect hooks.

   Builtin types are [iN], [fN] and [none].  Dialect types are written
   [!dialect.mnemonic] optionally followed by a [<...>] body; dialects
   register a hook that receives the mnemonic and the lexer and returns
   the parsed type. *)

let hooks : (string, string -> Lexer.t -> Typ.t) Hashtbl.t = Hashtbl.create 8

let register_dialect ~dialect f = Hashtbl.replace hooks dialect f

(* Widths are bounded so a literal like [i99999999999999999999] is a
   located diagnostic, not an [int_of_string] failure (or an absurd
   allocation downstream). *)
let max_type_width = 65536

let parse_builtin_ident loc s =
  let len = String.length s in
  let is_num_suffix () =
    len > 1
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (len - 1))
  in
  let num_suffix () =
    match int_of_string_opt (String.sub s 1 (len - 1)) with
    | Some n when n >= 1 && n <= max_type_width -> n
    | _ ->
      raise
        (Lexer.Lex_error
           ( loc,
             Printf.sprintf "type width in '%s' must be between 1 and %d" s
               max_type_width ))
  in
  match s.[0] with
  | 'i' when is_num_suffix () -> Typ.Int (num_suffix ())
  | 'f' when is_num_suffix () -> Typ.Float (num_suffix ())
  | _ when s = "none" -> Typ.None_type
  | _ -> raise (Lexer.Lex_error (loc, "unknown builtin type '" ^ s ^ "'"))

let parse lex =
  match Lexer.next lex with
  | Lexer.IDENT s, loc -> parse_builtin_ident loc s
  | Lexer.BANG, loc ->
    let dialect = Lexer.expect_ident lex in
    Lexer.expect lex Lexer.DOT;
    let mnemonic = Lexer.expect_ident lex in
    (match Hashtbl.find_opt hooks dialect with
    | Some f -> f mnemonic lex
    | None ->
      raise (Lexer.Lex_error (loc, "no registered dialect type parser for '" ^ dialect ^ "'")))
  | got, loc ->
    raise
      (Lexer.Lex_error (loc, "expected a type, found " ^ Lexer.token_to_string got))
