(* Generalized matrix-matrix multiplication on a 16x16 array of
   processing elements (paper Section 8: "reads two 16x16 matrices into
   buffers, multiplies them using a systolic array design, and writes
   back the output"; local buffers live in distributed RAM).

   Structure:
   - load phase: one column of A (resp. row of B) per cycle is copied
     from the banked input interfaces into banked local buffers —
     A banked by row, B banked by column;
   - compute phase: a 16x16 grid of PEs created by two nested
     unroll_for loops; every PE runs a pipelined (II = 1) reduction
     loop over k, multiply-accumulating into its own accumulator
     register (a fully distributed 16x16 register file);
   - drain phase: the accumulators are written to the output interface
     one per cycle, staggered by the unroll_for yield offsets.

   The 256 PEs x one 32-bit multiplier each give the 768 DSPs of
   Table 5 (3 DSP48s per 32x32 multiply). *)

open Hir_ir
open Hir_dialect

let name = "gemm"
let n = 16

(* Parameterized builder: the evaluation uses n = 16 (256 PEs); the
   scaling bench sweeps smaller grids. *)
let build_into ?(n = n) m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "Ai"
          (Types.memref ~packing:(Some [ 1 ]) ~dims:[ n; n ] ~elem:Typ.i32
             ~port:Types.Read ());
        (* B indexed [k][j], banked by column j. *)
        Builder.arg "Bi"
          (Types.memref ~packing:(Some [ 0 ]) ~dims:[ n; n ] ~elem:Typ.i32
             ~port:Types.Read ());
        Builder.arg "Co" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ a_in; b_in; c_out ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cn = Builder.constant b n in
        let a_ports =
          Builder.alloc b ~kind:Ops.Lut_ram ~dims:[ n; n ] ~packing:[ 1 ]
            ~elem:Typ.i32 ~ports:[ Types.Read; Types.Write ]
        in
        let ab_r, ab_w = match a_ports with [ r; w ] -> (r, w) | _ -> assert false in
        let b_ports =
          Builder.alloc b ~kind:Ops.Lut_ram ~dims:[ n; n ] ~packing:[ 0 ]
            ~elem:Typ.i32 ~ports:[ Types.Read; Types.Write ]
        in
        let bb_r, bb_w = match b_ports with [ r; w ] -> (r, w) | _ -> assert false in
        let acc_ports =
          Builder.alloc b ~kind:Ops.Reg ~dims:[ n; n ] ~packing:[] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let acc_r, acc_w =
          match acc_ports with [ r; w ] -> (r, w) | _ -> assert false
        in
        (* Load phase: cycle k moves A[*][k] and B[k][*] into the local
           banks, all 16 banks of each in parallel. *)
        let tf_load =
          Builder.for_loop b ~iv_hint:"k" ~lb:c0 ~ub:cn ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:k ~ti ->
              Builder.yield b ~at:Builder.(ti @>> 1);
              let _ =
                Builder.unroll_for b ~iv_hint:"li" ~lb:0 ~ub:n ~step:1
                  ~at:Builder.(ti @>> 0)
                  (fun b ~iv:i ~ti:tu ->
                    Builder.yield b ~at:Builder.(tu @>> 0);
                    let a = Builder.mem_read b a_in [ i; k ] ~at:Builder.(tu @>> 0) in
                    let k1 = Builder.delay b k ~by:1 ~at:Builder.(tu @>> 0) in
                    Builder.mem_write b a ab_w [ i; k1 ] ~at:Builder.(tu @>> 1);
                    let bv = Builder.mem_read b b_in [ k; i ] ~at:Builder.(tu @>> 0) in
                    Builder.mem_write b bv bb_w [ k1; i ] ~at:Builder.(tu @>> 1))
              in
              ())
        in
        (* Compute phase: the PE grid. *)
        let tf_compute =
          Builder.unroll_for b ~iv_hint:"pi" ~lb:0 ~ub:n ~step:1
            ~at:Builder.(tf_load @>> 1)
            (fun b ~iv:i ~ti:tpi ->
              Builder.yield b ~at:Builder.(tpi @>> 0);
              let _ =
                Builder.unroll_for b ~iv_hint:"pj" ~lb:0 ~ub:n ~step:1
                  ~at:Builder.(tpi @>> 0)
                  (fun b ~iv:j ~ti:tpj ->
                    Builder.yield b ~at:Builder.(tpj @>> 0);
                    Builder.mem_write b c0 acc_w [ i; j ] ~at:Builder.(tpj @>> 0);
                    let _tk =
                      Builder.for_loop b ~iv_hint:"k" ~lb:c0 ~ub:cn ~step:c1
                        ~at:Builder.(tpj @>> 1)
                        (fun b ~iv:k ~ti:tk ->
                          Builder.yield b ~at:Builder.(tk @>> 1);
                          let a = Builder.mem_read b ab_r [ i; k ] ~at:Builder.(tk @>> 0) in
                          let bv = Builder.mem_read b bb_r [ k; j ] ~at:Builder.(tk @>> 0) in
                          let p = Builder.mult b a bv in
                          let acc = Builder.mem_read b acc_r [ i; j ] ~at:Builder.(tk @>> 1) in
                          let s = Builder.add b p acc in
                          Builder.mem_write b s acc_w [ i; j ] ~at:Builder.(tk @>> 1))
                    in
                    ())
              in
              ())
        in
        (* Drain phase: one result per cycle, staggered by the yield
           offsets of the two unrolled loops.  The PE grid fires all
           its reduction loops in parallel at tf_compute; with the
           static trip count of 16 the last accumulator commits 19
           cycles later, so the drain is scheduled at that constant
           offset — schedules in HIR are exact, not handshaken. *)
        let drain_start = n + 3 in
        let _tf_drain =
          Builder.unroll_for b ~iv_hint:"di" ~lb:0 ~ub:n ~step:1
            ~at:Builder.(tf_compute @>> drain_start)
            (fun b ~iv:i ~ti:tdi ->
              Builder.yield b ~at:Builder.(tdi @>> n);
              let _ =
                Builder.unroll_for b ~iv_hint:"dj" ~lb:0 ~ub:n ~step:1
                  ~at:Builder.(tdi @>> 0)
                  (fun b ~iv:j ~ti:tdj ->
                    Builder.yield b ~at:Builder.(tdj @>> 1);
                    let v = Builder.mem_read b acc_r [ i; j ] ~at:Builder.(tdj @>> 0) in
                    Builder.mem_write b v c_out [ i; j ] ~at:Builder.(tdj @>> 0))
              in
              ())
        in
        Builder.return_ b []
      | _ -> assert false)

let build ?n () =
  let m = Builder.create_module () in
  let f = build_into ?n m in
  (m, f)

let reference a bm =
  Array.init (n * n) (fun idx ->
      let i = idx / n and j = idx mod n in
      let acc = ref (Bitvec.zero 32) in
      for k = 0 to n - 1 do
        acc := Bitvec.add !acc (Bitvec.mul a.((i * n) + k) bm.((k * n) + j))
      done;
      !acc)

let make_inputs ~seed =
  ( Util.test_data ~seed ~n:(n * n) ~width:32,
    Util.test_data ~seed:(seed + 17) ~n:(n * n) ~width:32 )

let check_interp ?(seed = 4) () =
  let m, f = build () in
  let a, bm = make_inputs ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor a; Interp.Tensor bm; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 2) ~cycle:max_int in
  let expected = reference a bm in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "gemm output mismatch"
