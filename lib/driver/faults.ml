(* Deterministic fault injection for the compilation service.

   The service's failure paths — cache IO errors, worker-spawn
   failures, mid-compile crashes, simulator faults — are exactly the
   paths ordinary test runs never take.  This module makes them
   reachable on demand: code under test declares named *injection
   points* ([point "cache.read"] etc.), and a test or `hirc batch
   --inject SPEC --inject-seed N` installs a configuration that makes
   some of those points raise [Injected].

   Determinism is the whole game: a fired fault must be reproducible
   from (spec, seed) alone, independent of how many domains ran the
   batch or which worker picked up which job.  Decisions are therefore
   a pure hash of (seed, scope, point, hit-count), where the *scope* is
   the job name ([Driver.compile_job] wraps each job in [with_scope])
   and the hit-count is tracked per (domain, scope).  A job's fault
   schedule is then a function of its own name and its own actions —
   scheduling order and worker count cannot perturb it.

   When no configuration is installed, [point] is one atomic load and a
   branch — cheap enough to leave the probes in production code. *)

exception Injected of string  (* the point that fired *)

(* The injection points wired into the service.  [parse_spec] rejects
   unknown names so a typo in --inject fails fast. *)
let known_points =
  [
    "cache.read"; "cache.write"; "worker.spawn"; "job.compile"; "sim.settle";
    "journal.append"; "journal.mark"; "journal.replay";
  ]

type trigger =
  | Prob of float  (* fire each hit with this probability *)
  | Nth of int  (* fire on exactly the nth hit (1-based) per scope *)

type config = {
  rules : (string * trigger) list;  (* point name or "*"; first match wins *)
  seed : int;
}

(* ------------------------------------------------------------------ *)
(* Spec parsing:  SPEC ::= item (',' item)*                            *)
(*                item ::= point '=' prob | point '@' nth              *)
(* where point is a known point name or '*' (all points).              *)

let parse_item s =
  let s = String.trim s in
  let split c =
    Option.map
      (fun i ->
        ( String.trim (String.sub s 0 i),
          String.trim (String.sub s (i + 1) (String.length s - i - 1)) ))
      (String.index_opt s c)
  in
  let check_name name k =
    if name = "*" || List.mem name known_points then k ()
    else
      Error
        (Printf.sprintf "unknown injection point '%s' (known: %s, or *)" name
           (String.concat ", " known_points))
  in
  match split '=' with
  | Some (name, v) ->
    check_name name (fun () ->
        match float_of_string_opt v with
        | Some p when p >= 0. && p <= 1. -> Ok (name, Prob p)
        | _ -> Error (Printf.sprintf "'%s=%s': probability must be a float in [0,1]" name v))
  | None -> (
    match split '@' with
    | Some (name, v) ->
      check_name name (fun () ->
          match int_of_string_opt v with
          | Some n when n >= 1 -> Ok (name, Nth n)
          | _ -> Error (Printf.sprintf "'%s@%s': trigger count must be a positive integer" name v))
    | None ->
      Error
        (Printf.sprintf
           "'%s' is not of the form point=probability or point@count" s))

let parse_spec s =
  if String.trim s = "" then Error "empty injection spec"
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc item ->
           match acc with
           | Error _ as e -> e
           | Ok rules -> (
             match parse_item item with
             | Ok r -> Ok (r :: rules)
             | Error e -> Error e))
         (Ok [])
    |> Result.map List.rev

let rules_to_string rules =
  String.concat ","
    (List.map
       (function
         | name, Prob p -> Printf.sprintf "%s=%g" name p
         | name, Nth n -> Printf.sprintf "%s@%d" name n)
       rules)

(* ------------------------------------------------------------------ *)
(* Seeded decisions                                                    *)

(* splitmix64 finalizer: a well-mixed bijection on 64-bit ints. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* A uniform float in [0,1) from (seed, key, index) — pure, so every
   domain computes the same value.  Also used by the batch retry loop
   for backoff jitter. *)
let uniform ~seed ~key ~index =
  let open Int64 in
  let h = of_int (Hashtbl.hash key) in
  let z =
    mix64
      (add (of_int seed)
         (mul 0x9e3779b97f4a7c15L (add (mul 0x10001L h) (of_int index))))
  in
  to_float (shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

(* ------------------------------------------------------------------ *)
(* Installation and per-domain scope state                             *)

(* The active configuration, plus an epoch that invalidates every
   domain's hit counters on (re)install — without it, two consecutive
   batches in one process would see different counter phases and lose
   determinism. *)
let current : config option Atomic.t = Atomic.make None
let epoch : int Atomic.t = Atomic.make 0

type dstate = {
  mutable ds_epoch : int;
  mutable ds_scope : string;
  (* scope -> point -> hits *)
  ds_tables : (string, (string, int) Hashtbl.t) Hashtbl.t;
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { ds_epoch = -1; ds_scope = ""; ds_tables = Hashtbl.create 8 })

(* Forward reference to [point], needed by the sim hook installed
   before [point] is defined. *)
let point_ref = ref (fun (_ : string) -> ())

(* The RTL simulator cannot raise this module's exception across its
   own API boundary (lib/rtl must not depend on lib/driver), so its
   injection point is a hook: when faults are installed we translate
   [Injected "sim.settle"] into the simulator's native [Sim_error],
   which the harness's degradation ladder already handles. *)
let wire_sim_hook on =
  Hir_rtl.Sim.settle_fault_hook :=
    if on then (fun () ->
      try !point_ref "sim.settle"
      with Injected p -> raise (Hir_rtl.Sim.Sim_error ("injected fault at " ^ p)))
    else fun () -> ()

let install cfg =
  Atomic.set current (Some cfg);
  Atomic.incr epoch;
  wire_sim_hook true

let uninstall () =
  Atomic.set current None;
  Atomic.incr epoch;
  wire_sim_hook false

let active () = Atomic.get current <> None

let with_config cfg f =
  install cfg;
  Fun.protect ~finally:uninstall f

(* Scope the fault schedule to a named unit of work (a compile job).
   Nested scopes replace, not stack — a job is the natural granularity. *)
let with_scope name f =
  let st = Domain.DLS.get dls in
  let saved = st.ds_scope in
  st.ds_scope <- name;
  Fun.protect ~finally:(fun () -> st.ds_scope <- saved) f

let rule_for cfg name =
  match List.assoc_opt name cfg.rules with
  | Some _ as r -> r
  | None -> List.assoc_opt "*" cfg.rules

let point name =
  match Atomic.get current with
  | None -> ()
  | Some cfg -> (
    match rule_for cfg name with
    | None -> ()
    | Some trig ->
      let st = Domain.DLS.get dls in
      let e = Atomic.get epoch in
      if st.ds_epoch <> e then begin
        Hashtbl.reset st.ds_tables;
        st.ds_epoch <- e
      end;
      let counts =
        match Hashtbl.find_opt st.ds_tables st.ds_scope with
        | Some t -> t
        | None ->
          let t = Hashtbl.create 8 in
          Hashtbl.add st.ds_tables st.ds_scope t;
          t
      in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts name) in
      Hashtbl.replace counts name c;
      let fire =
        match trig with
        | Nth n -> c = n
        | Prob p ->
          uniform ~seed:cfg.seed ~key:(st.ds_scope ^ "\x00" ^ name) ~index:c < p
      in
      if fire then raise (Injected name))

let () = point_ref := point
