(* Seed corpus for the mutation fuzzer.

   Seeds are *valid* textual modules — the printed form of every
   built-in kernel plus a few handwritten designs covering syntax the
   kernels do not exercise (extern functions, unroll_for with negative
   bounds, multi-function modules).  Mutation then walks outward from
   the valid language into near-miss inputs, which is where frontend
   crashes live. *)

open Hir_ir

let handwritten =
  [
    (* Smallest complete module. *)
    {|"builtin.module"() ({
  ^bb():
  "hir.func"() ({
    ^bb(%t: !hir.time):
    "hir.return"() : () -> ()
  }) {arg_delays = [], arg_names = [], arg_types = [], result_delays = [], result_types = [], sym_name = @nop} : () -> ()
}) : () -> ()|};
    (* Extern function (no body) next to a caller. *)
    {|"builtin.module"() ({
  ^bb():
  "hir.func"() {arg_delays = [0, 0], arg_names = ["a", "b"], arg_types = [!ty<i16>, !ty<i16>], extern = true, result_delays = [2], result_types = [!ty<i32>], sym_name = @mul2stage} : () -> ()
  "hir.func"() ({
    ^bb(%x: i16, %t: !hir.time):
    %y = "hir.call"(%x, %x, %t) {arg_delays = [0, 0], callee = @mul2stage, offset = 0, result_delays = [2]} : (i16, i16, !hir.time) -> (i32)
    "hir.return"(%y) : (i32) -> ()
  }) {arg_delays = [0], arg_names = ["x"], arg_types = [!ty<i16>], result_delays = [2], result_types = [!ty<i32>], sym_name = @square} : () -> ()
}) : () -> ()|};
    (* unroll_for with a negative step, string escapes in a loc. *)
    {|"builtin.module"() ({
  ^bb():
  "hir.func"() ({
    ^bb(%t: !hir.time):
    %tu = "hir.unroll_for"(%t) ({
      ^bb(%i: !hir.const, %ti: !hir.time):
      "hir.yield"(%ti) {offset = 0} : (!hir.time) -> ()
    }) {lb = 4, offset = 0, step = -1, ub = 0} : (!hir.time) -> (!hir.time)
    "hir.return"() : () -> () loc("count\ndown":1:2)
  }) {arg_delays = [], arg_names = [], arg_types = [], result_delays = [], result_types = [], sym_name = @countdown} : () -> ()
}) : () -> ()|};
  ]

(* Printed form of every built-in kernel.  [with_isolated_ids] keeps the
   id-derived value names (and therefore the seed bytes) independent of
   whatever the host program allocated before. *)
let kernel_seeds () =
  List.map
    (fun k ->
      Ir.with_isolated_ids (fun () ->
          let m, _ = k.Hir_kernels.Kernels.build () in
          Printer.op_to_string m))
    Hir_kernels.Kernels.all

let default () = handwritten @ kernel_seeds ()

(* Extra seeds from a directory of .hir files (sorted, so the corpus
   order — and hence the fuzz run — is deterministic). *)
let load_dir dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.to_list entries
  |> List.filter (fun f -> Filename.check_suffix f ".hir")
  |> List.map (fun f ->
         let path = Filename.concat dir f in
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic)))
