(* The compilation service: one place that owns the end-to-end compile
   flow (parse/build → verify → pass pipeline → emit → print), shared
   by hirc, the benchmark harness and the tests.

   On top of the single-job flow it layers
     - a content-addressed cache (module [Cache]) consulted before any
       work is done and filled after a successful compile;
     - a multicore batch mode (module [Scheduler]) that compiles many
       jobs concurrently on OCaml 5 domains, with results returned in
       input order and byte-identical to a sequential run (each job
       compiles under [Ir.with_isolated_ids], so the id-derived names
       in the Verilog do not depend on scheduling);
     - per-stage timing spans and counters (module [Trace]) exportable
       as Chrome trace JSON. *)

open Hir_ir
open Hir_dialect

type source =
  | Text of { src_name : string; text : string }
  | Builder of { src_name : string; build : unit -> Ir.op * Ir.op }

type job = {
  src : source;
  pipeline : Pipeline.spec;
  top : string option;  (* ignored for [Builder] sources *)
}

type output = {
  job_name : string;
  top_name : string;  (* name of the chosen top-level function *)
  verilog : string;
  usage : Hir_resources.Model.usage;
  from_cache : bool;
  note : string option;  (* e.g. implicit top-function choice *)
  pass_stats : Pass.stat list;  (* empty on a cache hit *)
  seconds : float;  (* total job wall time *)
}

(* A failed job: every failure mode — lex/parse errors, verifier
   rejections, pass failures, codegen errors, even unexpected exceptions
   — is normalized to a list of located [Diagnostic]s, so callers (and
   the batch scheduler's domains) never see an exception escape
   [compile_job]. *)
type error = {
  err_job : string;  (* the job's source name *)
  err_diags : Diagnostic.t list;  (* at least one *)
}

type outcome = (output, error) result

let error_to_string e =
  String.concat "\n" (List.map Diagnostic.to_string e.err_diags)

let source_name = function
  | Text { src_name; _ } -> src_name
  | Builder { src_name; _ } -> src_name

let job_of_text ?top ~pipeline ~name text =
  { src = Text { src_name = name; text }; pipeline; top }

let job_of_file ?top ~pipeline path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  job_of_text ?top ~pipeline ~name:path text

let job_of_builder ~pipeline ~name build =
  { src = Builder { src_name = name; build }; pipeline; top = None }

(* ------------------------------------------------------------------ *)
(* Single-job flow                                                     *)

exception Compile_failed of Diagnostic.t list

let fail_msg msg = raise (Compile_failed [ Diagnostic.error Location.unknown msg ])

let run_verifiers module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  if Diagnostic.Engine.has_errors engine then
    raise (Compile_failed (Diagnostic.Engine.to_list engine))

(* Top-function selection, with a note when the choice is implicit:
   with no [--top] and several functions we keep the historical
   behaviour (the last, i.e. textually final, function) but say so
   instead of picking silently. *)
let pick_top module_op top =
  (* Extern declarations have no body, so they are never an implicit
     top choice (naming one explicitly is reported by codegen). *)
  let funcs =
    List.filter (fun f -> not (Ops.is_extern_func f)) (Ops.module_funcs module_op)
  in
  match (top, funcs) with
  | Some name, _ -> (
    match Ops.lookup_func module_op name with
    | Some f -> (f, None)
    | None -> fail_msg (Printf.sprintf "no function @%s in the module" name))
  | None, [] -> fail_msg "module contains no (non-extern) functions"
  | None, [ f ] -> (f, None)
  | None, funcs ->
    let f = List.nth funcs (List.length funcs - 1) in
    let note =
      Printf.sprintf
        "--top not given; choosing the last of %d functions, @%s (candidates: %s)"
        (List.length funcs)
        (Ops.func_name f)
        (String.concat ", " (List.map (fun g -> "@" ^ Ops.func_name g) funcs))
    in
    (f, Some note)

let run_pipeline ~trace spec module_op =
  let instrument = function
    | Pass.Pass_begin _ -> ()
    | Pass.Pass_end { pass_name; seconds; changed; counters; _ } ->
      let stop = Trace.now () in
      (* Pattern/fold application counts ride on the pass span, so the
         Chrome trace shows which rewrites fired and how often. *)
      let counter_args = List.map (fun (k, n) -> (k, string_of_int n)) counters in
      Trace.add_span trace ~cat:"pass"
        ~args:(("changed", string_of_bool changed) :: counter_args)
        ~name:("pass:" ^ pass_name) ~start:(stop -. seconds) ~stop ()
  in
  let mgr = Pass.Manager.create ~instrument (Pipeline.to_passes spec) in
  let result = Pass.Manager.run mgr module_op in
  if not result.Pass.succeeded then begin
    match Diagnostic.Engine.to_list result.Pass.engine with
    | [] -> fail_msg "pass pipeline failed"
    | diags -> raise (Compile_failed diags)
  end;
  result.Pass.stats

let compile_job ?cache ?trace job =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  let name = source_name job.src in
  let started = Trace.now () in
  try
    Ir.with_isolated_ids (fun () ->
        (* Materialize the source text the cache key is computed from;
           builder sources print their module so the key tracks the
           actual IR content. *)
        let text, built =
          match job.src with
          | Text { text; _ } -> (text, None)
          | Builder { build; _ } ->
            Trace.span trace ~cat:"frontend" "build" (fun () ->
                let m, f = build () in
                (Printer.op_to_string m, Some (m, f)))
        in
        let key = Cache.key ~pipeline:(Pipeline.to_string job.pipeline) ~top:job.top ~source:text in
        let cached =
          match cache with
          | None -> None
          | Some c ->
            Trace.span trace ~cat:"cache" "cache-lookup" (fun () -> Cache.lookup c key)
        in
        match cached with
        | Some entry ->
          Trace.incr trace "cache-hit";
          Ok
            {
              job_name = name;
              top_name = entry.Cache.e_top;
              verilog = entry.Cache.e_verilog;
              usage = entry.Cache.e_usage;
              from_cache = true;
              note = None;
              pass_stats = [];
              seconds = Trace.now () -. started;
            }
        | None ->
          if cache <> None then Trace.incr trace "cache-miss";
          let module_op, top_func, note =
            match built with
            | Some (m, f) -> (m, f, None)
            | None ->
              let m =
                Trace.span trace ~cat:"frontend" "parse" (fun () ->
                    Parser.parse_string ~file:name text)
              in
              let f, note = pick_top m job.top in
              (m, f, note)
          in
          Trace.span trace ~cat:"verify" "verify" (fun () -> run_verifiers module_op);
          let pass_stats = run_pipeline ~trace job.pipeline module_op in
          let emitted =
            Trace.span trace ~cat:"backend" "emit" (fun () ->
                Hir_codegen.Emit.emit ~module_op ~top:top_func)
          in
          let verilog =
            Trace.span trace ~cat:"backend" "print" (fun () ->
                Hir_verilog.Pretty.design_to_string emitted.Hir_codegen.Emit.design)
          in
          let usage =
            Trace.span trace ~cat:"backend" "resource-model" (fun () ->
                Hir_resources.Model.design_usage emitted.Hir_codegen.Emit.design)
          in
          let top_name = Ops.func_name top_func in
          (match cache with
          | Some c ->
            Trace.span trace ~cat:"cache" "cache-store" (fun () ->
                Cache.store c key
                  { Cache.e_verilog = verilog; e_top = top_name; e_usage = usage })
          | None -> ());
          Ok
            {
              job_name = name;
              top_name;
              verilog;
              usage;
              from_cache = false;
              note;
              pass_stats;
              seconds = Trace.now () -. started;
            })
  with
  | Compile_failed diags ->
    (* Diagnostics with no location of their own are attributed to the
       job, so batch output still says which input failed. *)
    let diags =
      List.map
        (fun (d : Diagnostic.t) ->
          if Location.is_unknown d.Diagnostic.loc then
            { d with Diagnostic.loc = Location.name name }
          else d)
        diags
    in
    Error { err_job = name; err_diags = diags }
  | Parser.Parse_error (loc, msg) ->
    Error { err_job = name; err_diags = [ Diagnostic.error loc ("parse error: " ^ msg) ] }
  | Lexer.Lex_error (loc, msg) ->
    Error { err_job = name; err_diags = [ Diagnostic.error loc ("lex error: " ^ msg) ] }
  | Hir_codegen.Emit.Codegen_error msg ->
    Error
      { err_job = name;
        err_diags = [ Diagnostic.error (Location.name name) ("codegen: " ^ msg) ] }
  | Sys_error msg ->
    Error { err_job = name; err_diags = [ Diagnostic.error (Location.name name) msg ] }
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | exn ->
    (* Backstop: a bug anywhere in the stack (an uncaught [Failure], an
       [Invalid_argument], …) must not escape across the scheduler's
       domains; surface it as an internal-error diagnostic instead.
       `hirc fuzz` bypasses this by driving the stages directly, so the
       fuzzer still sees such bugs as crashes. *)
    Error
      { err_job = name;
        err_diags =
          [ Diagnostic.error (Location.name name)
              ("internal error: " ^ Printexc.to_string exn) ] }

(* ------------------------------------------------------------------ *)
(* Batch mode                                                          *)

type batch_result = {
  outcomes : outcome array;  (* in job order *)
  traces : Trace.t list;  (* one per job, tid = job index + 1 *)
  wall_seconds : float;
}

let batch ?cache ?(workers = 1) (jobs : job array) =
  let epoch = Trace.now () in
  let traces =
    Array.init (Array.length jobs) (fun i ->
        let t = Trace.create ~epoch () in
        Trace.set_tid t (i + 1);
        t)
  in
  let outcomes =
    Scheduler.map_ordered ~workers
      ~f:(fun i job -> compile_job ?cache ~trace:traces.(i) job)
      jobs
  in
  { outcomes; traces = Array.to_list traces; wall_seconds = Trace.now () -. epoch }

(* Per-stage wall-time totals across a set of traces, for compile-time
   breakdown tables (the shape of the paper's Table 6). *)
let stage_totals traces =
  let stages = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (s : Trace.span) ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt stages s.Trace.sp_name) in
          Hashtbl.replace stages s.Trace.sp_name (prev +. (s.Trace.sp_dur_us /. 1e6)))
        (Trace.spans t))
    traces;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) stages [] |> List.sort compare
