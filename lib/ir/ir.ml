(* The structural core of the IR: SSA values, operations, blocks and
   regions, with the same containment model as MLIR:

     op -> regions -> blocks -> ops

   Everything is mutable so that passes can rewrite in place; the
   [Builder] module provides the safe construction API and [Verify]
   checks structural invariants after surgery.

   Use-def chains: every operand slot of an op is a [use] node linked
   into the defining value's intrusive doubly-linked use list, exactly
   as in MLIR's IROperand.  [Value.replace_all_uses], [Value.has_uses]
   and [Value.users] are therefore O(uses of the value), not O(module)
   — the property the worklist rewrite driver ([Rewrite]) is built on.

   Linking discipline: an op's operand slots are linked while the op is
   *live* — from [Op.create] until it is erased.  [Block.remove]
   detaches an op and unlinks its slots; re-inserting it links them
   again.  Moving ops wholesale between blocks ([Block.transfer_before])
   keeps the links, since a use node does not care which block its
   owner sits in. *)

type value = {
  v_id : int;
  mutable v_type : Typ.t;
  mutable v_hint : string option;  (* preferred printed name, e.g. "ti" *)
  mutable v_def : def;
  mutable v_first_use : use option;  (* head of the intrusive use list *)
}

and def =
  | Op_result of op * int
  | Block_arg of block * int

(* One operand slot of [u_owner]: slot [u_index] currently reads
   [u_owner.operands.(u_index)], and when linked this node sits in that
   value's use chain. *)
and use = {
  u_owner : op;
  u_index : int;
  mutable u_prev : use option;  (* None: head of the chain *)
  mutable u_next : use option;
}

and op = {
  op_id : int;
  mutable op_name : string;  (* fully qualified, e.g. "hir.mem_read" *)
  mutable operands : value array;
  mutable op_slots : use array;  (* parallel to [operands] *)
  mutable op_linked : bool;  (* are the slots in their values' chains? *)
  mutable results : value array;
  mutable attrs : (string * Attribute.t) list;
  mutable regions : region list;
  mutable loc : Location.t;
  mutable op_parent : block option;
}

(* Blocks keep their ops as a normalized prefix plus a reversed suffix
   of recent appends, so [append] is O(1) amortized (block construction
   by the parser, the builder and [Clone] used to be quadratic).  Any
   operation that needs the full program order first folds the suffix
   back in. *)
and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_front : op list;  (* program-order prefix *)
  mutable b_back_rev : op list;  (* appended suffix, most recent first *)
  mutable b_parent : region option;
}

and region = {
  r_id : int;
  mutable blocks : block list;
  mutable r_parent : op option;
}

(* Id allocation is domain-local: each OCaml 5 domain owns an
   independent counter, so concurrent compilation jobs (lib/driver's
   batch scheduler) never race on it.  Ids are only required to be
   unique within one IR tree — every compile job builds its module from
   scratch inside [with_isolated_ids], which also makes the id stream
   (and therefore the id-derived names in the emitted Verilog)
   deterministic per job regardless of what ran before or concurrently. *)
let next_id = Domain.DLS.new_key (fun () -> 0)

let fresh_id () =
  let v = Domain.DLS.get next_id + 1 in
  Domain.DLS.set next_id v;
  v

(* Run [f] with a fresh id counter, restoring the previous counter
   afterwards.  IR created inside the scope must not be mixed into IR
   trees created outside it (ids could collide). *)
let with_isolated_ids f =
  let saved = Domain.DLS.get next_id in
  Domain.DLS.set next_id 0;
  Fun.protect ~finally:(fun () -> Domain.DLS.set next_id saved) f

(* ------------------------------------------------------------------ *)
(* Use-list plumbing.  All comparisons on use nodes are physical: the
   structure is cyclic, so structural equality must never be used. *)

let link_slot node =
  let v = node.u_owner.operands.(node.u_index) in
  node.u_prev <- None;
  node.u_next <- v.v_first_use;
  (match v.v_first_use with Some h -> h.u_prev <- Some node | None -> ());
  v.v_first_use <- Some node

let unlink_slot node =
  let v = node.u_owner.operands.(node.u_index) in
  (match node.u_prev with
  | Some p -> p.u_next <- node.u_next
  | None -> v.v_first_use <- node.u_next);
  (match node.u_next with Some n -> n.u_prev <- node.u_prev | None -> ());
  node.u_prev <- None;
  node.u_next <- None

let link_op op =
  if not op.op_linked then begin
    op.op_linked <- true;
    Array.iter link_slot op.op_slots
  end

let unlink_op op =
  if op.op_linked then begin
    Array.iter unlink_slot op.op_slots;
    op.op_linked <- false
  end

(* ------------------------------------------------------------------ *)
(* Values                                                              *)

module Value = struct
  type t = value

  let create ?hint typ def =
    { v_id = fresh_id (); v_type = typ; v_hint = hint; v_def = def; v_first_use = None }

  let typ v = v.v_type
  let set_type v t = v.v_type <- t
  let hint v = v.v_hint
  let set_hint v h = v.v_hint <- Some h
  let id v = v.v_id
  let equal a b = a.v_id = b.v_id
  let compare a b = Int.compare a.v_id b.v_id
  let hash v = v.v_id

  let defining_op v =
    match v.v_def with Op_result (op, _) -> Some op | Block_arg _ -> None

  let result_index v =
    match v.v_def with Op_result (_, i) -> Some i | Block_arg _ -> None

  let defining_block v =
    match v.v_def with Block_arg (b, _) -> Some b | Op_result _ -> None

  let is_block_arg v =
    match v.v_def with Block_arg _ -> true | Op_result _ -> false

  (* O(uses) queries over the intrusive chain.  The (op, operand index)
     pairs are live slots of live ops; a detached-but-not-erased op
     (mid-splice) is not in any chain. *)

  let fold_uses v ~init ~f =
    let rec go acc = function
      | None -> acc
      | Some node -> go (f acc node.u_owner node.u_index) node.u_next
    in
    go init v.v_first_use

  (* Snapshot of the use slots, in chain order (most recently linked
     first).  Safe to mutate the IR while iterating the snapshot. *)
  let uses v = List.rev (fold_uses v ~init:[] ~f:(fun acc op i -> (op, i) :: acc))

  (* Distinct ops reading [v], deduplicated. *)
  let users v =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (op, _) ->
        if Hashtbl.mem seen op.op_id then None
        else begin
          Hashtbl.add seen op.op_id ();
          Some op
        end)
      (uses v)

  let num_uses v = fold_uses v ~init:0 ~f:(fun n _ _ -> n + 1)
  let has_uses v = match v.v_first_use with Some _ -> true | None -> false

  let has_one_use v =
    match v.v_first_use with
    | Some node -> node.u_next = None
    | None -> false

  (* The single use slot of [v], if there is exactly one. *)
  let single_use v =
    match v.v_first_use with
    | Some node when node.u_next = None -> Some (node.u_owner, node.u_index)
    | _ -> None

  (* Redirect every linked use of [old_v] to [new_v]: O(uses of old_v).
     The whole chain is spliced onto [new_v]'s in one pass. *)
  let replace_all_uses old_v new_v =
    if not (equal old_v new_v) then begin
      match old_v.v_first_use with
      | None -> ()
      | Some first ->
        let rec retarget node =
          node.u_owner.operands.(node.u_index) <- new_v;
          match node.u_next with None -> node | Some next -> retarget next
        in
        let last = retarget first in
        last.u_next <- new_v.v_first_use;
        (match new_v.v_first_use with Some h -> h.u_prev <- Some last | None -> ());
        new_v.v_first_use <- Some first;
        old_v.v_first_use <- None
    end
end

module Value_map = Map.Make (struct
  type t = value

  let compare = Value.compare
end)

module Value_set = Set.Make (struct
  type t = value

  let compare = Value.compare
end)

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

module Op = struct
  type t = op

  let name op = op.op_name
  let operands op = Array.to_list op.operands
  let operand op i = op.operands.(i)
  let num_operands op = Array.length op.operands
  let results op = Array.to_list op.results
  let result op i = op.results.(i)
  let num_results op = Array.length op.results
  let regions op = op.regions
  let region op i = List.nth op.regions i
  let loc op = op.loc
  let parent op = op.op_parent
  let equal a b = a.op_id = b.op_id

  let attr op key = List.assoc_opt key op.attrs
  let has_attr op key = List.mem_assoc key op.attrs

  let set_attr op key value =
    op.attrs <- (key, value) :: List.remove_assoc key op.attrs

  let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

  let int_attr op key =
    match attr op key with Some a -> Attribute.as_int a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let int_attr_opt op key = Option.map Attribute.as_int (attr op key)

  let string_attr op key =
    match attr op key with Some a -> Attribute.as_string a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let symbol_attr op key =
    match attr op key with Some a -> Attribute.as_symbol a | None -> failwith (op.op_name ^ ": missing attr " ^ key)

  let set_operand op i v =
    if op.op_linked then begin
      unlink_slot op.op_slots.(i);
      op.operands.(i) <- v;
      link_slot op.op_slots.(i)
    end
    else op.operands.(i) <- v

  let make_slots op =
    Array.init (Array.length op.operands) (fun i ->
        { u_owner = op; u_index = i; u_prev = None; u_next = None })

  let set_operands op vs =
    let was_linked = op.op_linked in
    unlink_op op;
    op.operands <- Array.of_list vs;
    op.op_slots <- make_slots op;
    if was_linked then link_op op

  (* Create a detached op.  Result values are created from the given
     result types; operand slots are linked into their values' use
     chains immediately (a detached-but-live op is still a user). *)
  let create ?(attrs = []) ?(regions = []) ?(loc = Location.unknown)
      ?(result_hints = []) name ~operands ~result_types =
    let rec hint_at i = function
      | [] -> None
      | h :: _ when i = 0 -> h
      | _ :: rest -> hint_at (i - 1) rest
    in
    let op =
      {
        op_id = fresh_id ();
        op_name = name;
        operands = Array.of_list operands;
        op_slots = [||];
        op_linked = false;
        results = [||];
        attrs;
        regions;
        loc;
        op_parent = None;
      }
    in
    op.op_slots <- make_slots op;
    link_op op;
    op.results <-
      Array.of_list
        (List.mapi
           (fun i ty -> Value.create ?hint:(hint_at i result_hints) ty (Op_result (op, i)))
           result_types);
    List.iter (fun r -> r.r_parent <- Some op) regions;
    op

  (* The region (if any) that encloses this op transitively at the
     given nesting distance of 1. *)
  let parent_region op = Option.bind op.op_parent (fun b -> b.b_parent)
  let parent_op op = Option.bind (parent_region op) (fun r -> r.r_parent)

  let rec ancestors op =
    match parent_op op with None -> [] | Some p -> p :: ancestors p
end

(* ------------------------------------------------------------------ *)
(* Blocks                                                              *)

module Block = struct
  type t = block

  let create ?(arg_hints = []) arg_types =
    let b =
      { b_id = fresh_id (); b_args = [||]; b_front = []; b_back_rev = []; b_parent = None }
    in
    let rec hint_at i = function
      | [] -> None
      | h :: _ when i = 0 -> h
      | _ :: rest -> hint_at (i - 1) rest
    in
    b.b_args <-
      Array.of_list
        (List.mapi
           (fun i ty -> Value.create ?hint:(hint_at i arg_hints) ty (Block_arg (b, i)))
           arg_types);
    b

  let args b = Array.to_list b.b_args
  let arg b i = b.b_args.(i)
  let num_args b = Array.length b.b_args

  (* Fold the append suffix back into the program-order prefix. *)
  let normalize b =
    match b.b_back_rev with
    | [] -> ()
    | back ->
      b.b_front <- b.b_front @ List.rev back;
      b.b_back_rev <- []

  let ops b =
    normalize b;
    b.b_front

  let parent b = b.b_parent
  let equal a b = a.b_id = b.b_id

  let append b op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    link_op op;
    b.b_back_rev <- op :: b.b_back_rev

  let insert_before b ~anchor op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    link_op op;
    normalize b;
    let rec go = function
      | [] -> [ op ]  (* anchor not found: append *)
      | o :: rest when Op.equal o anchor -> op :: o :: rest
      | o :: rest -> o :: go rest
    in
    b.b_front <- go b.b_front

  let insert_after b ~anchor op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    link_op op;
    normalize b;
    let rec go = function
      | [] -> [ op ]
      | o :: rest when Op.equal o anchor -> o :: op :: rest
      | o :: rest -> o :: go rest
    in
    b.b_front <- go b.b_front

  (* Detach [op]: its operand slots leave their use chains (an erased
     or parked op must not hold other values alive).  Re-inserting the
     op links them again. *)
  let remove b op =
    normalize b;
    b.b_front <- List.filter (fun o -> not (Op.equal o op)) b.b_front;
    op.op_parent <- None;
    unlink_op op

  (* Move every op of [src] into [dst] before [anchor], preserving
     order, in one splice (O(dst + src), not O(dst * src)).  The moved
     ops keep their use links — only their parent changes.  Returns the
     moved ops in order. *)
  let transfer_before dst ~anchor src =
    normalize src;
    let moved = src.b_front in
    src.b_front <- [];
    src.b_back_rev <- [];
    List.iter (fun o -> o.op_parent <- Some dst) moved;
    normalize dst;
    let rec go = function
      | [] -> moved
      | o :: rest when Op.equal o anchor -> moved @ (o :: rest)
      | o :: rest -> o :: go rest
    in
    dst.b_front <- go dst.b_front;
    moved

  let terminator b =
    match b.b_back_rev with
    | last :: _ -> Some last
    | [] -> ( match List.rev b.b_front with [] -> None | last :: _ -> Some last)
end

(* Erase [op] for good: detach it from its block and unlink every
   operand slot in its whole subtree (ops nested in its regions would
   otherwise leave stale use nodes on live values). *)
let erase_op op =
  let rec unlink_tree o =
    unlink_op o;
    List.iter
      (fun r -> List.iter (fun b -> List.iter unlink_tree (Block.ops b)) r.blocks)
      o.regions
  in
  (match op.op_parent with Some b -> Block.remove b op | None -> ());
  unlink_tree op

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)

module Region = struct
  type t = region

  let create ?(blocks = []) () =
    let r = { r_id = fresh_id (); blocks; r_parent = None } in
    List.iter (fun b -> b.b_parent <- Some r) blocks;
    r

  let blocks r = r.blocks
  let parent r = r.r_parent
  let equal a b = a.r_id = b.r_id

  let append_block r b =
    assert (b.b_parent = None);
    b.b_parent <- Some r;
    r.blocks <- r.blocks @ [ b ]

  let entry_block r =
    match r.blocks with [] -> None | b :: _ -> Some b

  let rec ancestor_ops r =
    match r.r_parent with
    | None -> []
    | Some op -> (
      op :: (match Op.parent_region op with None -> [] | Some r' -> ancestor_ops r'))

  (* Is [inner] nested within (or equal to) [outer]? *)
  let rec is_nested_in ~outer inner =
    if equal inner outer then true
    else
      match inner.r_parent with
      | None -> false
      | Some op -> (
        match Op.parent_region op with
        | None -> false
        | Some r -> is_nested_in ~outer r)
end

(* ------------------------------------------------------------------ *)
(* Traversal utilities                                                 *)

module Walk = struct
  (* Pre-order walk over every op nested under [op], including [op]. *)
  let rec ops_pre op ~f =
    f op;
    List.iter
      (fun r -> List.iter (fun b -> List.iter (fun o -> ops_pre o ~f) (Block.ops b)) r.blocks)
      op.regions

  (* Post-order: children first. *)
  let rec ops_post op ~f =
    List.iter
      (fun r -> List.iter (fun b -> List.iter (fun o -> ops_post o ~f) (Block.ops b)) r.blocks)
      op.regions;
    f op

  let collect op ~pred =
    let acc = ref [] in
    ops_pre op ~f:(fun o -> if pred o then acc := o :: !acc);
    List.rev !acc

  let find_all op name = collect op ~pred:(fun o -> o.op_name = name)
end

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)

module Clone = struct
  (* Deep-clone an op.  [mapping] seeds value substitutions (e.g. to
     substitute a block arg with a constant when unrolling); the
     returned table includes mappings for all cloned results and block
     args.  Cloned ops link their operand slots as they are created, so
     the clone's use lists are consistent from the start. *)
  let rec clone_op ?(mapping = Hashtbl.create 16) op =
    let map_value v =
      match Hashtbl.find_opt mapping v.v_id with Some v' -> v' | None -> v
    in
    let operands = Array.to_list (Array.map map_value op.operands) in
    let regions = List.map (clone_region ~mapping) op.regions in
    let cloned =
      Op.create ~attrs:op.attrs ~regions ~loc:op.loc op.op_name ~operands
        ~result_types:(List.map (fun r -> r.v_type) (Array.to_list op.results))
    in
    Array.iteri
      (fun i r ->
        cloned.results.(i).v_hint <- r.v_hint;
        Hashtbl.replace mapping r.v_id cloned.results.(i))
      op.results;
    cloned

  and clone_region ~mapping r =
    let blocks = List.map (clone_block ~mapping) r.blocks in
    Region.create ~blocks ()

  and clone_block ~mapping b =
    let nb = Block.create (List.map (fun a -> a.v_type) (Block.args b)) in
    Array.iteri
      (fun i a ->
        nb.b_args.(i).v_hint <- a.v_hint;
        (* Respect substitutions seeded by the caller (e.g. an unroll
           pass mapping the induction variable to a constant). *)
        if not (Hashtbl.mem mapping a.v_id) then
          Hashtbl.replace mapping a.v_id nb.b_args.(i))
      b.b_args;
    List.iter (fun op -> Block.append nb (clone_op ~mapping op)) (Block.ops b);
    nb
end
