lib/ir/attribute.ml: Format Typ
