lib/ir/location.ml: Format
