(* Hierarchical elaboration: inline every module instance into a single
   flat module, prefixing instance-local signals with the instance
   path.  Input ports become assigns from the (parent-scope) connection
   expressions; output ports become assigns from the child signal into
   the parent signal.

   Elaboration is skeleton-driven: everything about a module that does
   not depend on where it is instantiated — its port table and the
   names its items declare — is computed once per module definition and
   shared by every instance, so a design that instantiates one
   definition N times (the hierarchical emitter's normal output) does
   the per-module analysis once, not N times.  Within one instance the
   local→global rename is memoized per distinct name, so renaming costs
   one concatenation per name rather than one per reference. *)

open Hir_verilog.Ast

exception Elab_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Elab_error s)) fmt

let rec rename_expr f = function
  | Const _ as e -> e
  | Ref name -> Ref (f name)
  | Index (name, a) -> Index (f name, rename_expr f a)
  | Slice (e, hi, lo) -> Slice (rename_expr f e, hi, lo)
  | Unop (op, e) -> Unop (op, rename_expr f e)
  | Binop (op, a, b) -> Binop (op, rename_expr f a, rename_expr f b)
  | Ternary (c, a, b) -> Ternary (rename_expr f c, rename_expr f a, rename_expr f b)
  | Concat es -> Concat (List.map (rename_expr f) es)

let rename_lvalue f = function
  | Lref name -> Lref (f name)
  | Lindex (name, a) -> Lindex (f name, rename_expr f a)

let rec rename_stmt f = function
  | Nonblocking (lv, e) -> Nonblocking (rename_lvalue f lv, rename_expr f e)
  | If (c, t, e) -> If (rename_expr f c, List.map (rename_stmt f) t, List.map (rename_stmt f) e)
  | Assert_stmt { cond; message } -> Assert_stmt { cond = rename_expr f cond; message }

type flat = {
  flat_items : item list;
  flat_inputs : string list;  (* top-level input ports (clk excluded) *)
  flat_outputs : string list;
}

(* Per-module skeleton: the instance-independent part of elaboration. *)
type skeleton = {
  sk_module : module_def;
  sk_ports : (string, port) Hashtbl.t;
}

let skeleton_of m =
  let ports = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem ports p.port_name) then Hashtbl.add ports p.port_name p)
    m.ports;
  { sk_module = m; sk_ports = ports }

let flatten (design : design) =
  (* Index module skeletons by name once.  Two definitions with the
     same name would make instance resolution ambiguous; refuse rather
     than silently letting the first declaration win. *)
  let skeletons = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if Hashtbl.mem skeletons m.mod_name then
        fail "duplicate definition of module %s" m.mod_name;
      Hashtbl.add skeletons m.mod_name (skeleton_of m))
    design.modules;
  let top =
    match Hashtbl.find_opt skeletons design.top with
    | Some sk -> sk
    | None -> fail "top module %s not found" design.top
  in
  let out_items = ref [] in
  let emit i = out_items := i :: !out_items in
  (* Instance-path prefixing ([path ^ name]) is injective only while no
     signal name embeds the "__" separator ambiguously: instance [a]
     signal [b] and a sibling wire [a__b] both flatten to "a__b".
     Track every flattened declaration and fail on the first clash
     instead of silently merging two nets. *)
  let declared = Hashtbl.create 64 in
  let where path = if path = "" then "the top module" else "instance path " ^ path in
  let declare ~path ~name global =
    match Hashtbl.find_opt declared global with
    | Some (path0, name0) ->
      fail
        "flattened signal name %s collides: %s declared in %s vs %s declared in %s \
         (instance-path prefixing joins names with \"__\"; rename one of them)"
        global name (where path) name0 (where path0)
    | None -> Hashtbl.add declared global (path, name)
  in
  (* [local] maps local names to global ones; ports of the instance are
     bound via [port_map] to parent-scope global expressions. *)
  let rec inline ~path ~port_map sk =
    let m = sk.sk_module in
    let local_cache = Hashtbl.create 16 in
    let local name =
      match Hashtbl.find_opt local_cache name with
      | Some g -> g
      | None ->
        let g =
          match Hashtbl.find_opt port_map name with
          | Some (`Alias global) -> global
          | Some (`Expr _) ->
            (* Input ports bound to non-trivial expressions get their
               own prefixed wire, assigned below. *)
            path ^ name
          | None -> if path = "" then name else path ^ name
        in
        Hashtbl.add local_cache name g;
        g
    in
    (* Declare wires for ports bound to expressions and emit the
       binding assigns. *)
    List.iter
      (fun p ->
        match Hashtbl.find_opt port_map p.port_name with
        | Some (`Expr e) ->
          (match p.dir with
          | Input ->
            declare ~path ~name:p.port_name (path ^ p.port_name);
            emit (Wire_decl { name = path ^ p.port_name; width = p.width });
            emit (Assign { target = path ^ p.port_name; expr = e })
          | Output -> fail "output port %s bound to a non-wire expression" p.port_name)
        | Some (`Alias _) -> ()
        | None ->
          (* Unconnected port: dangling wire (reads as 0). *)
          declare ~path ~name:p.port_name (path ^ p.port_name);
          emit (Wire_decl { name = path ^ p.port_name; width = p.width }))
      m.ports;
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } ->
          let g = local name in
          declare ~path ~name g;
          emit (Wire_decl { name = g; width })
        | Reg_decl { name; width } ->
          let g = local name in
          declare ~path ~name g;
          emit (Reg_decl { name = g; width })
        | Mem_decl { name; width; depth; style } ->
          let g = local name in
          declare ~path ~name g;
          emit (Mem_decl { name = g; width; depth; style })
        | Assign { target; expr } ->
          emit (Assign { target = local target; expr = rename_expr local expr })
        | Always_ff stmts -> emit (Always_ff (List.map (rename_stmt local) stmts))
        | Comment c -> emit (Comment c)
        | Instance { module_name; instance_name; connections } -> (
          match Hashtbl.find_opt skeletons module_name with
          | None -> fail "instance of unknown module %s" module_name
          | Some child ->
            let child_path = path ^ instance_name ^ "__" in
            let port_map = Hashtbl.create (List.length connections) in
            List.iter
              (fun (port, actual) ->
                let dir =
                  match Hashtbl.find_opt child.sk_ports port with
                  | Some p -> p.dir
                  | None -> fail "module %s has no port %s" module_name port
                in
                let actual = rename_expr local actual in
                let binding =
                  match (dir, actual) with
                  | _, Ref global -> `Alias global
                  | Input, e -> `Expr e
                  | Output, _ -> fail "output port %s needs a plain wire" port
                in
                if not (Hashtbl.mem port_map port) then Hashtbl.add port_map port binding)
              connections;
            inline ~path:child_path ~port_map child))
      m.items
  in
  inline ~path:"" ~port_map:(Hashtbl.create 1) top;
  let inputs =
    List.filter_map
      (fun p -> if p.dir = Input then Some p.port_name else None)
      top.sk_module.ports
  in
  let outputs =
    List.filter_map
      (fun p -> if p.dir = Output then Some p.port_name else None)
      top.sk_module.ports
  in
  (* Top ports were declared by the unconnected-port case of [inline]
     (the top runs with an empty port map). *)
  { flat_items = List.rev !out_items; flat_inputs = inputs; flat_outputs = outputs }
