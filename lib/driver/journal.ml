(* The write-ahead job journal behind crash-safe `hirc serve`.

   The server's durability contract is small and explicit: every
   *admitted* compile job is recorded before it runs, and marked done
   when its (exactly-one) completion is delivered.  A server that dies
   — kill -9, OOM, power loss — can then replay the journal on
   restart, re-enqueue every admitted-but-incomplete job, and finish
   them with byte-identical Verilog (the content-addressed cache makes
   the replayed work cheap; [Ir.with_isolated_ids] makes it
   deterministic).

   Record format: one record per line,

       <crc32-hex-8> SP <json> NL

   where the CRC-32 is computed over the JSON bytes.  Two record
   shapes:

       {"t":"admit","client":C,"id":I,"digest":D, <request fields>}
       {"t":"done","client":C,"id":I,"status":S}

   Appends are write + fsync on an O_APPEND descriptor — a record is
   durable before the caller proceeds.  Torn-write tolerance on
   replay: a final line with no terminating newline is a truncated
   tail (the crash interrupted an append) and is dropped without
   complaint; a *complete* line that fails its CRC or does not parse
   is quarantined (counted and skipped) — corruption is never fatal
   and never silently trusted.

   Compaction rewrites the log to just the still-pending admit
   records via the same temp + fsync + rename + dir-fsync discipline
   the cache uses, so a long-lived journal does not grow without
   bound.  All failure paths are exercised by the "journal.append" /
   "journal.mark" / "journal.replay" fault points. *)

type admit = {
  a_client : string;  (* stable client identity *)
  a_id : string;  (* client-chosen job id *)
  a_digest : string;  (* request digest: the idempotency key *)
  a_kernel : string option;
  a_name : string option;
  a_source : string option;
  a_top : string option;
  a_passes : string option;
  a_priority : int;
  a_deadline : float option;
  a_want_verilog : bool;
}

(* The compile-relevant fields only: a resubmission with a different
   deadline or priority is still the *same request* for idempotency. *)
let digest_of_request ~kernel ~name ~source ~top ~passes =
  let part = function None -> "\x00" | Some s -> "\x01" ^ s in
  Digest.to_hex
    (Digest.string
       (String.concat "\x02" [ part kernel; part name; part source; part top; part passes ]))

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                   *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      c :=
        Int32.logxor
          (Int32.shift_right_logical !c 8)
          table.(Int32.to_int
                   (Int32.logand
                      (Int32.logxor !c (Int32.of_int (Char.code ch)))
                      0xFFl)))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Record codec                                                        *)

module Json = Protocol.Json

let admit_to_json a =
  let opt k = function None -> [] | Some v -> [ (k, Json.Str v) ] in
  Json.Obj
    ([
       ("t", Json.Str "admit");
       ("client", Json.Str a.a_client);
       ("id", Json.Str a.a_id);
       ("digest", Json.Str a.a_digest);
     ]
    @ opt "kernel" a.a_kernel @ opt "name" a.a_name @ opt "source" a.a_source
    @ opt "top" a.a_top @ opt "passes" a.a_passes
    @ [ ("priority", Json.Num (float_of_int a.a_priority)) ]
    @ (match a.a_deadline with None -> [] | Some d -> [ ("deadline", Json.Num d) ])
    @ [ ("verilog", Json.Bool a.a_want_verilog) ])

let admit_of_json j =
  match (Json.field_str j "client", Json.field_str j "id", Json.field_str j "digest") with
  | Some client, Some id, Some digest ->
    Some
      {
        a_client = client;
        a_id = id;
        a_digest = digest;
        a_kernel = Json.field_str j "kernel";
        a_name = Json.field_str j "name";
        a_source = Json.field_str j "source";
        a_top = Json.field_str j "top";
        a_passes = Json.field_str j "passes";
        a_priority = Option.value ~default:0 (Json.field_int j "priority");
        a_deadline = Json.field_num j "deadline";
        a_want_verilog = Option.value ~default:false (Json.field_bool j "verilog");
      }
  | _ -> None

let record_line j =
  let payload = Json.to_string j in
  Printf.sprintf "%08lx %s\n" (crc32 payload) payload

(* A complete line back to its JSON, CRC-checked. *)
let parse_record line =
  let n = String.length line in
  if n < 10 || line.[8] <> ' ' then Error "malformed record"
  else
    let crc_hex = String.sub line 0 8 in
    let payload = String.sub line 9 (n - 9) in
    match Int32.of_string_opt ("0x" ^ crc_hex) with
    | None -> Error "malformed CRC"
    | Some crc ->
      if crc <> crc32 payload then Error "CRC mismatch"
      else (
        match Json.parse payload with
        | Ok j -> Ok j
        | Error e -> Error ("bad JSON: " ^ e))

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing                                                 *)

let log_path dir = Filename.concat dir "journal.log"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Make a rename durable: fsync the containing directory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type t = { j_dir : string; j_fd : Unix.file_descr }

let open_journal ~dir =
  mkdir_p dir;
  let fd =
    Unix.openfile (log_path dir) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { j_dir = dir; j_fd = fd }

let close t = try Unix.close t.j_fd with Unix.Unix_error _ -> ()

let rec write_all fd data off len =
  if len > 0 then
    match Unix.write fd data off len with
    | n -> write_all fd data (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd data off len

(* Journal IO failure is *degraded durability*, not a failed job: the
   caller counts it and keeps serving (clients recover the hole via
   idempotent resubmission). *)
let append t ~fault_point j =
  try
    Faults.point fault_point;
    let line = record_line j in
    let data = Bytes.of_string line in
    write_all t.j_fd data 0 (Bytes.length data);
    Unix.fsync t.j_fd;
    Ok ()
  with
  | Faults.Injected p -> Error ("injected fault at " ^ p)
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Sys_error msg -> Error msg

let append_admit t a = append t ~fault_point:"journal.append" (admit_to_json a)

let append_done t ~client ~id ~status =
  append t ~fault_point:"journal.mark"
    (Json.Obj
       [
         ("t", Json.Str "done");
         ("client", Json.Str client);
         ("id", Json.Str id);
         ("status", Json.Str status);
       ])

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_result = {
  rr_pending : admit list;  (* admitted, never marked done; file order *)
  rr_records : int;  (* records seen (complete lines) *)
  rr_completed : int;  (* done marks *)
  rr_quarantined : int;  (* CRC/parse failures and faulted records *)
  rr_torn_tail : bool;  (* unterminated final line was dropped *)
}

let empty_replay =
  { rr_pending = []; rr_records = 0; rr_completed = 0; rr_quarantined = 0; rr_torn_tail = false }

(* Split into complete lines; an unterminated tail is reported, not
   parsed — it is the expected signature of a crash mid-append. *)
let complete_lines text =
  let n = String.length text in
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if text.[i] = '\n' then begin
      lines := String.sub text !start (i - !start) :: !lines;
      start := i + 1
    end
  done;
  (List.rev !lines, !start < n)

let replay ~dir =
  let path = log_path dir in
  if not (Sys.file_exists path) then empty_replay
  else begin
    let lines, torn = complete_lines (read_file path) in
    let pending : (string * string, admit) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in  (* newest first *)
    let records = ref 0 and completed = ref 0 and quarantined = ref 0 in
    List.iter
      (fun line ->
        if String.trim line <> "" then begin
          incr records;
          match Faults.point "journal.replay" with
          | exception Faults.Injected _ -> incr quarantined
          | () -> (
            match parse_record line with
            | Error _ -> incr quarantined
            | Ok j -> (
              match Json.field_str j "t" with
              | Some "admit" -> (
                match admit_of_json j with
                | Some a ->
                  let key = (a.a_client, a.a_id) in
                  if not (Hashtbl.mem pending key) then order := key :: !order;
                  Hashtbl.replace pending key a
                | None -> incr quarantined)
              | Some "done" -> (
                incr completed;
                match (Json.field_str j "client", Json.field_str j "id") with
                | Some client, Some id -> Hashtbl.remove pending (client, id)
                | _ -> ())
              | _ -> incr quarantined))
        end)
      lines;
    (* File order, deduplicated, still-pending only. *)
    let seen = Hashtbl.create 16 in
    let pending_list =
      List.rev !order
      |> List.filter_map (fun key ->
             if Hashtbl.mem seen key then None
             else begin
               Hashtbl.replace seen key ();
               Hashtbl.find_opt pending key
             end)
    in
    {
      rr_pending = pending_list;
      rr_records = !records;
      rr_completed = !completed;
      rr_quarantined = !quarantined;
      rr_torn_tail = torn;
    }
  end

let verify = replay

(* Rewrite the log down to its pending admits.  Crash-safe: the new
   log is complete and fsynced before the rename publishes it.
   Callers that just replayed pass [?result] so the rewritten log and
   the re-enqueued set agree exactly (a second replay under fault
   injection could disagree with the first). *)
let compact ?result ~dir () =
  try
    let r = match result with Some r -> r | None -> replay ~dir in
    mkdir_p dir;
    let tmp = log_path dir ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        List.iter
          (fun a ->
            let data = Bytes.of_string (record_line (admit_to_json a)) in
            write_all fd data 0 (Bytes.length data))
          r.rr_pending;
        Unix.fsync fd);
    Sys.rename tmp (log_path dir);
    fsync_dir dir;
    Ok (List.length r.rr_pending)
  with
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | Sys_error msg -> Error msg
