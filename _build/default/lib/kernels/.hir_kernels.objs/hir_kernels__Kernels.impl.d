lib/kernels/kernels.ml: Convolution Elementwise_max Fifo Gemm Hir_dialect Hir_ir Histogram Ir List Stencil1d Taskparallel Transpose
