(* Source locations, in the style of MLIR's Location attribute. *)

type t =
  | Unknown
  | File of { file : string; line : int; col : int }
  | Name of { name : string; child : t }
      (* A named location, e.g. the label a builder attaches to an op. *)

let unknown = Unknown
let file ~file ~line ~col = File { file; line; col }
let name ?(child = Unknown) n = Name { name = n; child }

let rec pp fmt = function
  | Unknown -> Format.pp_print_string fmt "loc(unknown)"
  | File { file; line; col } -> Format.fprintf fmt "%s:%d:%d" file line col
  | Name { name; child = Unknown } -> Format.fprintf fmt "%S" name
  | Name { name; child } -> Format.fprintf fmt "%S(%a)" name pp child

let to_string t = Format.asprintf "%a" pp t

let is_unknown = function Unknown -> true | File _ | Name _ -> false
