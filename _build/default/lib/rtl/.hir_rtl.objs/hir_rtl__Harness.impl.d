lib/rtl/harness.ml: Array Bitvec Flatten Hashtbl Hir_codegen Hir_dialect List Option Sim Types Vcd
