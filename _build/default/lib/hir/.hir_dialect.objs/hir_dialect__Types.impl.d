lib/hir/types.ml: Format Hir_ir List String
