(* A fixed-size multicore worker pool on OCaml 5 domains.

   [map_ordered ~workers ~f jobs] applies [f] to every job and returns
   the results *in input order*, regardless of which worker finished
   first: workers pull indices from a shared atomic counter and write
   into their own slot of a pre-sized results array (each slot has
   exactly one writer, so no further synchronization is needed).

   [workers = 1] runs inline in the calling domain — this is the
   reference sequential schedule the batch tests compare parallel runs
   against.  Exceptions escaping [f] are captured per job and re-raised
   in the caller after all workers have joined, so one poisoned job
   cannot leave domains running unjoined. *)

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

type 'b slot = Empty | Value of 'b | Raised of exn

let map_ordered ?(workers = 1) ~f jobs =
  let n = Array.length jobs in
  let results = Array.make n Empty in
  let run_one i =
    results.(i) <- (try Value (f i jobs.(i)) with e -> Raised e)
  in
  if workers <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      run_one i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_one i;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min workers n) (fun _ -> Domain.spawn worker)
    in
    List.iter Domain.join domains
  end;
  Array.map
    (function
      | Value v -> v
      | Raised e -> raise e
      | Empty -> assert false)
    results
