(* HIR → Verilog code generation (paper Section 4.6, Table 3).

   Mapping:
     hir.func        -> Verilog module (clk + t_start pulse + data ports)
     schedules       -> pulse networks: one wire per time root, shift
                        registers for constant offsets
     hir.for         -> a small controller (counter + pulse logic)
     hir.delay       -> shift registers
     hir.memref      -> per-bank address/enable/data buses; local
                        allocs instantiate block/distributed RAM or
                        registers, argument memrefs become module ports
     hir.call        -> module instantiation wired by the caller pulse
     UB rules (§4.5) -> automatically inserted $error assertions

   Designs must pass the structural and schedule verifiers and have
   unroll_for expanded (Unroll pass) before code generation. *)

open Hir_ir
open Hir_dialect
module V = Hir_verilog.Ast

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let clog2 n =
  if n <= 1 then 0
  else
    let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
    go 0 1

let bits_for n = if n <= 0 then 1 else max 1 (clog2 (n + 1))

(* ------------------------------------------------------------------ *)
(* Module interfaces                                                   *)

type bank_names = {
  bn_rd : (string * string * string) option;  (* en, addr, data *)
  bn_wr : (string * string * string) option;  (* en, addr, data *)
}

type mem_iface = {
  mi_base : string;
  mi_info : Types.memref_info;
  mi_banks : bank_names array;
  mi_addr_width : int;
  mi_elem_width : int;
}

type arg_iface = Ifc_scalar of string * int * int  (* name, width, delay *)
               | Ifc_mem of mem_iface

type iface = {
  ifc_module : string;
  ifc_args : arg_iface list;
  ifc_results : (string * int * int) list;  (* name, width, delay *)
}

let elem_width info =
  match Typ.bit_width info.Types.elem with
  | Some w when w > 0 -> w
  | _ -> fail "memref element type has no width"

let mem_iface_of ~base info =
  let banks = Types.num_banks info in
  let depth = Types.bank_depth info in
  let aw = max 1 (clog2 depth) in
  let ew = elem_width info in
  let bank b =
    let readable = info.Types.port <> Types.Write in
    let writable = info.Types.port <> Types.Read in
    {
      bn_rd =
        (if readable then
           Some
             ( Printf.sprintf "%s_rd_en_%d" base b,
               Printf.sprintf "%s_rd_addr_%d" base b,
               Printf.sprintf "%s_rd_data_%d" base b )
         else None);
      bn_wr =
        (if writable then
           Some
             ( Printf.sprintf "%s_wr_en_%d" base b,
               Printf.sprintf "%s_wr_addr_%d" base b,
               Printf.sprintf "%s_wr_data_%d" base b )
         else None);
    }
  in
  {
    mi_base = base;
    mi_info = info;
    mi_banks = Array.init banks bank;
    mi_addr_width = aw;
    mi_elem_width = ew;
  }

(* The deterministic external interface of a function, used both when
   emitting the function's own module and when instantiating it at call
   sites. *)
let interface_of func =
  let name = Names.sanitize (Ops.func_name func) in
  let arg_names =
    match Ir.Op.attr func "arg_names" with
    | Some (Attribute.Array l) -> List.map Attribute.as_string l
    | _ -> List.mapi (fun i _ -> Printf.sprintf "arg%d" i) (Ops.func_arg_types func)
  in
  let arg_delays = Ops.func_arg_delays func in
  let args =
    List.mapi
      (fun i t ->
        let base =
          (* Default positionally if arg_names is shorter than the
             signature (the verifier flags this, but interfaces are
             also built for extern declarations it may not have seen). *)
          match List.nth_opt arg_names i with
          | Some n -> Names.sanitize n
          | None -> Printf.sprintf "arg%d" i
        in
        let delay = List.nth_opt arg_delays i |> Option.value ~default:0 in
        match t with
        | Types.Memref info -> Ifc_mem (mem_iface_of ~base info)
        | t -> (
          match Typ.bit_width t with
          | Some w when w > 0 -> Ifc_scalar (base, w, delay)
          | _ -> fail "unsupported argument type %s" (Typ.to_string t)))
      (Ops.func_arg_types func)
  in
  let results =
    List.mapi
      (fun i t ->
        let delay = List.nth_opt (Ops.func_result_delays func) i |> Option.value ~default:0 in
        match Typ.bit_width t with
        | Some w when w > 0 -> (Printf.sprintf "result_%d" i, w, delay)
        | _ -> fail "unsupported result type %s" (Typ.to_string t))
      (Ops.func_result_types func)
  in
  { ifc_module = name; ifc_args = args; ifc_results = results }

(* ------------------------------------------------------------------ *)
(* Per-module emission context                                         *)

type mem_binding = {
  mb_iface : mem_iface;
  mb_latency : int;
  mb_external : bool;
  mutable mb_call_bound : bool;  (* passed to a hir.call *)
  mutable mb_readers : (int * V.expr * V.expr) list;  (* bank, pulse, addr *)
  mutable mb_writers : (int * V.expr * V.expr * V.expr) list;  (* bank, pulse, addr, data *)
  mb_read_result : string option;  (* shared data wire per bank: see finalize *)
}

type vbind =
  | Vconst of int
  | Vwire of string * int
  | Vmem of mem_binding
  | Vtime of string  (* delta-0 pulse wire *)

type chain = {
  ch_base : string;
  mutable ch_regs : string list;  (* delta 1.. in order *)
}

type ctx = {
  names : Names.t;
  module_op : Ir.op;
  hier : bool;  (* hierarchy-preserving emission (outlining + arbiter chains) *)
  registry : Outline.registry;  (* shared module definitions of this emission *)
  mutable ports : V.port list;  (* reverse *)
  mutable items : (int option * V.item) list;  (* reverse; tagged by emission group *)
  mutable ff : (int option * V.stmt) list;  (* reverse; body of the single always block *)
  mutable group_stack : int list;  (* innermost emission group first *)
  mutable force_shared : bool;  (* route items to the shared (None) group *)
  binds : (int, vbind) Hashtbl.t;
  chains : (int, chain) Hashtbl.t;
  mutable instance_count : int;
  mutable emitted_callees : string list;
}

let cur_group ctx =
  if ctx.force_shared then None
  else match ctx.group_stack with [] -> None | g :: _ -> Some g

let add_port ctx p = ctx.ports <- p :: ctx.ports
let add_item ctx i = ctx.items <- (cur_group ctx, i) :: ctx.items
let add_ff ctx s = ctx.ff <- (cur_group ctx, s) :: ctx.ff

(* Run [f] with items routed to the shared group: infrastructure that
   is lazily extended across group boundaries (pulse chains) or cannot
   move into a definition (storage arrays) must not be captured by the
   group being emitted. *)
let shared ctx f =
  let saved = ctx.force_shared in
  ctx.force_shared <- true;
  Fun.protect ~finally:(fun () -> ctx.force_shared <- saved) f

let bind ctx v b = Hashtbl.replace ctx.binds (Ir.Value.id v) b

let lookup ctx v =
  match Hashtbl.find_opt ctx.binds (Ir.Value.id v) with
  | Some b -> b
  | None ->
    fail "value %%%s has no codegen binding"
      (Option.value ~default:(string_of_int (Ir.Value.id v)) (Ir.Value.hint v))

let value_width v =
  match Typ.bit_width (Ir.Value.typ v) with
  | Some w when w > 0 -> w
  | _ -> fail "value has no bit width: %s" (Typ.to_string (Ir.Value.typ v))

(* Data operand as an expression; constants are sized at [width]. *)
let operand ctx ~width v =
  match lookup ctx v with
  | Vconst n -> V.Const (Bitvec.of_int ~width n)
  | Vwire (name, _) -> V.Ref name
  | Vmem _ -> fail "memref used as data"
  | Vtime _ -> fail "time variable used as data"

(* For self-determined contexts (comparisons): constants sized at their
   own minimum width, at least [at_least] bits. *)
let operand_self ctx ~at_least v =
  match lookup ctx v with
  | Vconst n ->
    let w = max at_least (bits_for (abs n) + if n < 0 then 1 else 0) in
    V.Const (Bitvec.of_int ~width:w n)
  | Vwire (name, _) -> V.Ref name
  | _ -> fail "bad operand"

let operand_natural_width ctx v =
  match lookup ctx v with
  | Vconst n -> bits_for (abs n)
  | Vwire (_, w) -> w
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Pulse networks                                                      *)

(* The pulse wire for time value [tv] at constant delta [d]; creates
   the shift-register chain on demand. *)
let max_pulse_stages = 1 lsl 16

let pulse ctx tv d =
  let chain =
    match Hashtbl.find_opt ctx.chains (Ir.Value.id tv) with
    | Some c -> c
    | None ->
      (match lookup ctx tv with
      | Vtime base ->
        let c = { ch_base = base; ch_regs = [] } in
        Hashtbl.replace ctx.chains (Ir.Value.id tv) c;
        c
      | _ -> fail "expected a time value")
  in
  if d < 0 then fail "negative pulse delta";
  (* Each delta stage is one register; the verifier bounds per-op
     offsets, but unrolling accumulates them, so re-check the total
     here or a mutated schedule can demand millions of registers. *)
  if d > max_pulse_stages then
    fail "schedule offset of %d stages exceeds the limit of %d" d max_pulse_stages;
  if d = 0 then V.Ref chain.ch_base
  else begin
    let rec extend have =
      if have < d then begin
        let prev =
          match chain.ch_regs with [] -> chain.ch_base | last :: _ -> last
        in
        let name = Names.fresh ctx.names (Printf.sprintf "%s_d%d" chain.ch_base (have + 1)) in
        add_item ctx (V.Reg_decl { name; width = 1 });
        add_ff ctx (V.Nonblocking (V.Lref name, V.Ref prev));
        chain.ch_regs <- name :: chain.ch_regs;
        extend (have + 1)
      end
    in
    (* Chains are extended lazily by whichever op first demands a
       stage and reused by every later one, so their registers belong
       to the shared group, never to the group that happened to demand
       them first. *)
    shared ctx (fun () -> extend (List.length chain.ch_regs));
    V.Ref (List.nth chain.ch_regs (List.length chain.ch_regs - d))
  end

(* Start pulse of a scheduled op: time operand's root + offset. *)
let sched_pulse ctx ~time ~offset = pulse ctx time offset

(* ------------------------------------------------------------------ *)
(* Memory helpers                                                      *)

let static_indices info indices =
  (* Split indices into (bank, packed address expr builder input). *)
  List.map2 (fun d idx -> (d, idx)) info.Types.dims indices

let bank_of ctx info indices =
  let dist =
    List.filter_map
      (fun (d, idx) ->
        if d.Types.packed then None
        else
          match lookup ctx idx with
          | Vconst n ->
            (* Unrolling can materialize any constant (e.g. from a
               negative loop bound); an out-of-range one must be a
               codegen diagnostic, not an array-index crash below. *)
            if n < 0 || n >= d.Types.size then
              fail "constant index %d out of range for distributed dimension of size %d"
                n d.Types.size
            else Some (d.Types.size, n)
          | _ -> fail "distributed dimension indexed by a non-constant")
      (static_indices info indices)
  in
  List.fold_left (fun acc (size, n) -> (acc * size) + n) 0 dist

(* Packed linear address expression at [aw] bits; strides of the
   row-major packed layout are powers of two in all our designs, but
   general strides fall back to shifts+adds via multiply-by-constant
   decomposition (here: a plain constant multiply, strength-reduced
   when the stride is a power of two). *)
let packed_addr ctx ~aw info indices =
  let packed =
    List.filter_map
      (fun (d, idx) -> if d.Types.packed then Some (d.Types.size, idx) else None)
      (static_indices info indices)
  in
  let expr =
    List.fold_left
      (fun acc (size, idx) ->
        let idx_e = operand ctx ~width:aw idx in
        let term =
          match acc with
          | None -> idx_e
          | Some acc ->
            let scaled =
              match clog2 size with
              | k when 1 lsl k = size ->
                V.Binop (V.Shl, acc, V.const_int ~width:(max 1 (bits_for k)) k)
              | _ -> V.Binop (V.Mul, acc, V.const_int ~width:aw size)
            in
            V.Binop (V.Add, scaled, idx_e)
        in
        Some term)
      None packed
  in
  match expr with None -> V.const_int ~width:aw 0 | Some e -> e

(* ------------------------------------------------------------------ *)
(* Op emission                                                         *)

let binop_table =
  [
    ("hir.add", V.Add); ("hir.sub", V.Sub); ("hir.mult", V.Mul);
    ("hir.and", V.And); ("hir.or", V.Or); ("hir.xor", V.Xor);
    ("hir.shl", V.Shl); ("hir.shrl", V.Shr);
  ]

let cmp_table =
  [
    ("hir.lt", V.Lt); ("hir.le", V.Le); ("hir.gt", V.Gt);
    ("hir.ge", V.Ge); ("hir.eq", V.Eq); ("hir.ne", V.Ne);
  ]

let fresh_wire ctx base width =
  let name = Names.fresh ctx.names base in
  add_item ctx (V.Wire_decl { name; width });
  name

let loc_comment ctx op =
  let loc = Ir.Op.loc op in
  if not (Location.is_unknown loc) then
    add_item ctx (V.Comment (Printf.sprintf "%s from %s" (Ir.Op.name op) (Location.to_string loc)))

let rec emit_block ctx block = List.iter (emit_op ctx) (Ir.Block.ops block)

(* Ops tagged with an emission group (by [Unroll] or [Builder.group])
   push it for the duration of their emission, so nested untagged ops
   (loop bodies, generator helpers) inherit the innermost group. *)
and emit_op ctx op =
  match Ir.Op.int_attr_opt op Unroll.group_attr with
  | Some g when cur_group ctx <> Some g && not ctx.force_shared ->
    ctx.group_stack <- g :: ctx.group_stack;
    Fun.protect
      ~finally:(fun () -> ctx.group_stack <- List.tl ctx.group_stack)
      (fun () -> emit_op_inner ctx op)
  | _ -> emit_op_inner ctx op

and emit_op_inner ctx op =
  match Ir.Op.name op with
  | "hir.constant" -> bind ctx (Ir.Op.result op 0) (Vconst (Ops.constant_value op))
  | "hir.alloc" -> emit_alloc ctx op
  | "hir.delay" -> emit_delay ctx op
  | "hir.mem_read" -> emit_mem_read ctx op
  | "hir.mem_write" -> emit_mem_write ctx op
  | "hir.for" -> emit_for ctx op
  | "hir.call" -> emit_call ctx op
  | "hir.yield" -> ()  (* folded into the loop controller *)
  | "hir.return" -> ()  (* handled at module level *)
  | "hir.select" ->
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let name = fresh_wire ctx (Names.value_base res) w in
    let cond = operand ctx ~width:1 (Ir.Op.operand op 0) in
    let a = operand ctx ~width:w (Ir.Op.operand op 1) in
    let b = operand ctx ~width:w (Ir.Op.operand op 2) in
    add_item ctx (V.Assign { target = name; expr = V.Ternary (cond, a, b) });
    bind ctx res (Vwire (name, w))
  | "hir.not" ->
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let name = fresh_wire ctx (Names.value_base res) w in
    add_item ctx
      (V.Assign { target = name; expr = V.Unop (V.Not, operand ctx ~width:w (Ir.Op.operand op 0)) });
    bind ctx res (Vwire (name, w))
  | "hir.zext" | "hir.trunc" ->
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let name = fresh_wire ctx (Names.value_base res) w in
    add_item ctx (V.Assign { target = name; expr = operand ctx ~width:w (Ir.Op.operand op 0) });
    bind ctx res (Vwire (name, w))
  | "hir.sext" ->
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let x = Ir.Op.operand op 0 in
    let xw = operand_natural_width ctx x in
    let name = fresh_wire ctx (Names.value_base res) w in
    let xe = operand ctx ~width:xw x in
    let expr =
      if xw >= w then xe
      else
        let sign = V.Slice (xe, xw - 1, xw - 1) in
        let fill =
          V.Ternary (sign, V.Const (Bitvec.ones (w - xw)), V.Const (Bitvec.zero (w - xw)))
        in
        V.Concat [ fill; xe ]
    in
    add_item ctx (V.Assign { target = name; expr });
    bind ctx res (Vwire (name, w))
  | "hir.shra" ->
    (* Arithmetic shift of an unsigned-typed wire: sign-extend manually
       then shift. *)
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let name = fresh_wire ctx (Names.value_base res) w in
    let a = operand ctx ~width:w (Ir.Op.operand op 0) in
    let b = operand ctx ~width:w (Ir.Op.operand op 1) in
    (* Emulate via: (a >> b) | (sign ? ~(~0 >> b) : 0) *)
    let sign = V.Slice (a, w - 1, w - 1) in
    let ones = V.Const (Bitvec.ones w) in
    let fill = V.Ternary (sign, V.Unop (V.Not, V.Binop (V.Shr, ones, b)), V.Const (Bitvec.zero w)) in
    add_item ctx
      (V.Assign { target = name; expr = V.Binop (V.Or, V.Binop (V.Shr, a, b), fill) });
    bind ctx res (Vwire (name, w))
  | name when List.mem_assoc name binop_table ->
    let res = Ir.Op.result op 0 in
    let w = value_width res in
    let name_w = fresh_wire ctx (Names.value_base res) w in
    let a = operand ctx ~width:w (Ir.Op.operand op 0) in
    let b = operand ctx ~width:w (Ir.Op.operand op 1) in
    add_item ctx
      (V.Assign { target = name_w; expr = V.Binop (List.assoc name binop_table, a, b) });
    bind ctx res (Vwire (name_w, w))
  | name when List.mem_assoc name cmp_table ->
    let res = Ir.Op.result op 0 in
    let name_w = fresh_wire ctx (Names.value_base res) 1 in
    let wa = operand_natural_width ctx (Ir.Op.operand op 0) in
    let wb = operand_natural_width ctx (Ir.Op.operand op 1) in
    let w = max 1 (max wa wb) in
    let a = operand_self ctx ~at_least:w (Ir.Op.operand op 0) in
    let b = operand_self ctx ~at_least:w (Ir.Op.operand op 1) in
    add_item ctx
      (V.Assign { target = name_w; expr = V.Binop (List.assoc name cmp_table, a, b) });
    bind ctx res (Vwire (name_w, 1))
  | name -> fail "codegen: unsupported op %s (run the unroll pass first?)" name

and emit_delay ctx op =
  let res = Ir.Op.result op 0 in
  let w = value_width res in
  let by = Ops.delay_by op in
  let input = operand ctx ~width:w (Ops.delay_input op) in
  if by = 0 then begin
    (* Pure alias. *)
    let name = fresh_wire ctx (Names.value_base res) w in
    add_item ctx (V.Assign { target = name; expr = input });
    bind ctx res (Vwire (name, w))
  end
  else begin
    loc_comment ctx op;
    let base = Names.value_base res in
    let rec stage k prev =
      if k > by then prev
      else begin
        let name = Names.fresh ctx.names (Printf.sprintf "%s_sr%d" base k) in
        add_item ctx (V.Reg_decl { name; width = w });
        add_ff ctx (V.Nonblocking (V.Lref name, prev));
        stage (k + 1) (V.Ref name)
      end
    in
    let final = stage 1 input in
    match final with
    | V.Ref name -> bind ctx res (Vwire (name, w))
    | _ -> assert false
  end

(* Storage arrays and their port buses stay in the shared group: a
   [Mem_decl] cannot move into an outlined definition, and the bus
   wires are driven by the shared finalization pass. *)
and emit_alloc ctx op = shared ctx (fun () -> emit_alloc_inner ctx op)

and emit_alloc_inner ctx op =
  let kind = Ops.alloc_kind op in
  let latency = Ops.mem_kind_latency kind in
  let first_info = Types.memref_info (Ir.Value.typ (Ir.Op.result op 0)) in
  let banks = Types.num_banks first_info in
  let depth = Types.bank_depth first_info in
  let ew = elem_width first_info in
  let style =
    match kind with
    | Ops.Block_ram -> V.Style_bram
    | Ops.Lut_ram -> V.Style_lutram
    | Ops.Reg -> V.Style_reg
  in
  (* One storage array per bank, shared by all ports. *)
  let mem_names =
    Array.init banks (fun b ->
        let name = Names.fresh ctx.names (Printf.sprintf "mem%d_bank%d" op.Ir.op_id b) in
        add_item ctx (V.Mem_decl { name; width = ew; depth; style });
        name)
  in
  (* Per port: buses + binding. *)
  List.iter
    (fun port_v ->
      let info = Types.memref_info (Ir.Value.typ port_v) in
      let base = Names.fresh ctx.names (Names.value_base port_v) in
      let iface = mem_iface_of ~base info in
      let mb =
        {
          mb_iface = iface;
          mb_latency = latency;
          mb_external = false;
          mb_call_bound = false;
          mb_readers = [];
          mb_writers = [];
          mb_read_result = None;
        }
      in
      bind ctx port_v (Vmem mb);
      (* Wire declarations + storage connection per bank. *)
      Array.iteri
        (fun b names ->
          let aw = iface.mi_addr_width in
          let mem = mem_names.(b) in
          (match names.bn_rd with
          | Some (en, addr, data) ->
            add_item ctx (V.Wire_decl { name = en; width = 1 });
            add_item ctx (V.Wire_decl { name = addr; width = aw });
            if latency = 0 then begin
              add_item ctx (V.Wire_decl { name = data; width = ew });
              add_item ctx (V.Assign { target = data; expr = V.Index (mem, V.Ref addr) })
            end
            else begin
              add_item ctx (V.Reg_decl { name = data; width = ew });
              add_ff ctx
                (V.If
                   ( V.Ref en,
                     [ V.Nonblocking (V.Lref data, V.Index (mem, V.Ref addr)) ],
                     [] ))
            end
          | None -> ());
          match names.bn_wr with
          | Some (en, addr, data) ->
            add_item ctx (V.Wire_decl { name = en; width = 1 });
            add_item ctx (V.Wire_decl { name = addr; width = aw });
            add_item ctx (V.Wire_decl { name = data; width = ew });
            add_ff ctx
              (V.If
                 ( V.Ref en,
                   [ V.Nonblocking (V.Lindex (mem, V.Ref addr), V.Ref data) ],
                   [] ))
          | None -> ())
        iface.mi_banks)
    (Ir.Op.results op)

and emit_mem_read ctx op =
  loc_comment ctx op;
  let mem = Ops.mem_read_mem op in
  let mb = match lookup ctx mem with Vmem mb -> mb | _ -> fail "mem_read on non-memref" in
  if mb.mb_call_bound then fail "memref port is both call-bound and locally accessed";
  let info = mb.mb_iface.mi_info in
  let indices = Ops.mem_read_indices op in
  let bank = bank_of ctx info indices in
  let p = sched_pulse ctx ~time:(Ops.mem_read_time op) ~offset:(Ops.mem_read_offset op) in
  let addr = packed_addr ctx ~aw:mb.mb_iface.mi_addr_width info indices in
  mb.mb_readers <- (bank, p, addr) :: mb.mb_readers;
  (* The result value aliases the bank's data bus. *)
  let res = Ir.Op.result op 0 in
  (match mb.mb_iface.mi_banks.(bank).bn_rd with
  | Some (_, _, data) -> bind ctx res (Vwire (data, mb.mb_iface.mi_elem_width))
  | None -> fail "read through a write-only port")

and emit_mem_write ctx op =
  loc_comment ctx op;
  let mem = Ops.mem_write_mem op in
  let mb = match lookup ctx mem with Vmem mb -> mb | _ -> fail "mem_write on non-memref" in
  if mb.mb_call_bound then fail "memref port is both call-bound and locally accessed";
  let info = mb.mb_iface.mi_info in
  let indices = Ops.mem_write_indices op in
  let bank = bank_of ctx info indices in
  let p = sched_pulse ctx ~time:(Ops.mem_write_time op) ~offset:(Ops.mem_write_offset op) in
  let addr = packed_addr ctx ~aw:mb.mb_iface.mi_addr_width info indices in
  let data = operand ctx ~width:mb.mb_iface.mi_elem_width (Ops.mem_write_value op) in
  mb.mb_writers <- (bank, p, addr, data) :: mb.mb_writers

and emit_for ctx op =
  loc_comment ctx op;
  let iv = Ops.loop_induction_var op in
  let ti = Ops.loop_iter_time op in
  let tf = Ir.Op.result op 0 in
  let wiv = value_width iv in
  let offset = Ops.for_offset op in
  if offset < 1 then fail "hir.for requires offset >= 1 for hardware generation";
  let prefix = Printf.sprintf "loop%d" op.Ir.op_id in
  (* One cycle before the first iteration. *)
  let start_m1 = sched_pulse ctx ~time:(Ops.for_time op) ~offset:(offset - 1) in
  let lb = operand ctx ~width:wiv (Ops.for_lb op) in
  let step = operand ctx ~width:(wiv + 1) (Ops.for_step op) in
  (* iv register and wires. *)
  let iv_name = Names.fresh ctx.names (prefix ^ "_" ^ Names.value_base iv) in
  add_item ctx (V.Reg_decl { name = iv_name; width = wiv });
  bind ctx iv (Vwire (iv_name, wiv));
  let next = Names.fresh ctx.names (prefix ^ "_next") in
  add_item ctx (V.Wire_decl { name = next; width = wiv + 1 });
  add_item ctx
    (V.Assign { target = next; expr = V.Binop (V.Add, V.Ref iv_name, step) });
  let last = Names.fresh ctx.names (prefix ^ "_last") in
  add_item ctx (V.Wire_decl { name = last; width = 1 });
  let ub_self = operand_self ctx ~at_least:(wiv + 1) (Ops.for_ub op) in
  add_item ctx
    (V.Assign { target = last; expr = V.Binop (V.Ge, V.Ref next, ub_self) });
  (* first-iteration pulse: registered start. *)
  let first = Names.fresh ctx.names (prefix ^ "_first") in
  add_item ctx (V.Reg_decl { name = first; width = 1 });
  add_ff ctx (V.Nonblocking (V.Lref first, start_m1));
  (* Iteration pulse is the root of the ti chain; its recurrence needs
     the yield pulse one cycle early, so declare then define. *)
  let iter = Names.fresh ctx.names (prefix ^ "_iter") in
  add_item ctx (V.Wire_decl { name = iter; width = 1 });
  bind ctx ti (Vtime iter);
  (* Completion pulse. *)
  let tf_name = Names.fresh ctx.names (prefix ^ "_tf") in
  add_item ctx (V.Reg_decl { name = tf_name; width = 1 });
  bind ctx tf (Vtime tf_name);
  (* Emit the body: defines everything the yield references. *)
  emit_block ctx (Ops.loop_body op);
  (* The yield decides when the next iteration starts. *)
  let yield_op = Ops.loop_yield op in
  let y_off = Ops.yield_offset yield_op in
  if y_off < 1 then
    fail "hir.yield must fire at least one cycle after its time root for hardware generation";
  let yield_pre = sched_pulse ctx ~time:(Ops.yield_time yield_op) ~offset:(y_off - 1) in
  let fire = Names.fresh ctx.names (prefix ^ "_fire") in
  add_item ctx (V.Wire_decl { name = fire; width = 1 });
  add_item ctx
    (V.Assign { target = fire; expr = V.band yield_pre (V.bnot (V.Ref last)) });
  let fire_q = Names.fresh ctx.names (prefix ^ "_fire_q") in
  add_item ctx (V.Reg_decl { name = fire_q; width = 1 });
  add_ff ctx (V.Nonblocking (V.Lref fire_q, V.Ref fire));
  add_item ctx
    (V.Assign { target = iter; expr = V.bor (V.Ref first) (V.Ref fire_q) });
  add_ff ctx (V.Nonblocking (V.Lref tf_name, V.band yield_pre (V.Ref last)));
  (* iv update. *)
  add_ff ctx
    (V.If
       ( start_m1,
         [ V.Nonblocking (V.Lref iv_name, lb) ],
         [
           V.If
             ( V.Ref fire,
               [ V.Nonblocking (V.Lref iv_name, V.Ref next) ],
               [] );
         ] ))

and emit_call ctx op =
  loc_comment ctx op;
  let callee_name = Ops.call_callee op in
  let callee =
    match Ops.lookup_func ctx.module_op callee_name with
    | Some f -> f
    | None -> fail "call to unknown function @%s" callee_name
  in
  let ifc = interface_of callee in
  let p = sched_pulse ctx ~time:(Ops.call_time op) ~offset:(Ops.call_offset op) in
  ctx.instance_count <- ctx.instance_count + 1;
  let inst = Printf.sprintf "call_%s_%d" ifc.ifc_module ctx.instance_count in
  let connections = ref [ ("clk", V.Ref "clk"); ("t_start", p) ] in
  let add_conn c = connections := c :: !connections in
  List.iter2
    (fun arg_ifc actual ->
      match arg_ifc with
      | Ifc_scalar (pname, w, _) -> add_conn (pname, operand ctx ~width:w actual)
      | Ifc_mem callee_mi -> (
        match lookup ctx actual with
        | Vmem mb ->
          if mb.mb_readers <> [] || mb.mb_writers <> [] then
            fail "memref port %s is both call-bound and locally accessed"
              mb.mb_iface.mi_base;
          if mb.mb_call_bound then
            fail "memref port %s passed to more than one call" mb.mb_iface.mi_base;
          if (not mb.mb_external) && mb.mb_latency <> 1 then
            fail "only 1-cycle-latency storage can cross a call boundary";
          mb.mb_call_bound <- true;
          Array.iteri
            (fun b callee_names ->
              let caller_names = mb.mb_iface.mi_banks.(b) in
              (match (callee_names.bn_rd, caller_names.bn_rd) with
              | Some (c_en, c_addr, c_data), Some (p_en, p_addr, p_data) ->
                (* Callee drives en/addr (its outputs), consumes data. *)
                add_conn (c_en, V.Ref p_en);
                add_conn (c_addr, V.Ref p_addr);
                add_conn (c_data, V.Ref p_data)
              | None, None -> ()
              | _ -> fail "call memref port capability mismatch");
              match (callee_names.bn_wr, caller_names.bn_wr) with
              | Some (c_en, c_addr, c_data), Some (p_en, p_addr, p_data) ->
                add_conn (c_en, V.Ref p_en);
                add_conn (c_addr, V.Ref p_addr);
                add_conn (c_data, V.Ref p_data)
              | None, None -> ()
              | _ -> fail "call memref port capability mismatch")
            callee_mi.mi_banks
        | _ -> fail "call memref argument is not a memref"))
    ifc.ifc_args (Ops.call_args op);
  (* Results: fresh wires driven by callee outputs. *)
  List.iteri
    (fun i (pname, w, _) ->
      let res = Ir.Op.result op i in
      let wire = fresh_wire ctx (Names.value_base res) w in
      add_conn (pname, V.Ref wire);
      bind ctx res (Vwire (wire, w)))
    ifc.ifc_results;
  add_item ctx
    (V.Instance
       {
         module_name = ifc.ifc_module;
         instance_name = inst;
         connections = List.rev !connections;
       })

(* ------------------------------------------------------------------ *)
(* Memref finalization: bus muxes, tie-offs, UB assertions             *)

(* Above this many accessors on one bank port, hierarchical emission
   replaces the flat or-tree + priority mux + O(n^2) pairwise conflict
   assertions with a linear chain of structurally identical arbiter
   stages (one shared definition, n instances).  Each stage overrides
   the accumulated grant when its own accessor fires, so the chain is
   folded from the end of the accessor list: the final outputs carry
   the FIRST enabled accessor — exactly the priority-mux semantics of
   the flat form.  Each stage asserts that it agrees with the winner
   among the later accessors; equality is transitive, so any pairwise
   conflict among enabled accessors trips some stage. *)
let arb_threshold = 8

(* The stage definition, shared via the definition registry.  [dw] = 0
   omits the data channel (read ports arbitrate en/addr only). *)
let arb_stage_def ~aw ~dw =
  let inp n w = { V.port_name = n; dir = V.Input; width = w } in
  let outp n w = { V.port_name = n; dir = V.Output; width = w } in
  let data l = if dw > 0 then l else [] in
  let ports =
    [ inp "clk" 1; inp "sel" 1; inp "addr" aw ]
    @ data [ inp "data" dw ]
    @ [ inp "busy_in" 1; inp "addr_in" aw ]
    @ data [ inp "data_in" dw ]
    @ [ outp "busy_out" 1; outp "addr_out" aw ]
    @ data [ outp "data_out" dw ]
  in
  let items =
    [
      V.Assign { target = "busy_out"; expr = V.bor (V.Ref "busy_in") (V.Ref "sel") };
      V.Assign
        { target = "addr_out"; expr = V.Ternary (V.Ref "sel", V.Ref "addr", V.Ref "addr_in") };
    ]
    @ data
        [
          V.Assign
            {
              target = "data_out";
              expr = V.Ternary (V.Ref "sel", V.Ref "data", V.Ref "data_in");
            };
        ]
    @ [
        V.Always_ff
          [
            V.Assert_stmt
              {
                cond =
                  V.bor
                    (V.bnot (V.band (V.Ref "busy_in") (V.Ref "sel")))
                    (V.Binop (V.Eq, V.Ref "addr_in", V.Ref "addr"));
                message = "conflicting accesses on a shared memory port";
              };
          ];
      ]
  in
  { V.mod_name = Outline.placeholder; ports; items }

(* Fold the accessor list (first = highest priority) into a stage
   chain; returns the final (busy, addr, data) grant expressions. *)
let emit_arb_chain ctx ~base ~aw ~dw accessors =
  let def_name = Outline.register ctx.registry (arb_stage_def ~aw ~dw) in
  let rec build = function
    | [] ->
      ( V.zero1,
        V.const_int ~width:aw 0,
        if dw > 0 then V.const_int ~width:dw 0 else V.zero1 )
    | (sel, a, d) :: rest ->
      let b_in, a_in, d_in = build rest in
      let busy = fresh_wire ctx (base ^ "_arb_busy") 1 in
      let addr_w = fresh_wire ctx (base ^ "_arb_addr") aw in
      let data_w = if dw > 0 then fresh_wire ctx (base ^ "_arb_data") dw else "" in
      let dconn l = if dw > 0 then l else [] in
      let connections =
        [ ("clk", V.Ref "clk"); ("sel", sel); ("addr", a) ]
        @ dconn [ ("data", d) ]
        @ [ ("busy_in", b_in); ("addr_in", a_in) ]
        @ dconn [ ("data_in", d_in) ]
        @ [ ("busy_out", V.Ref busy); ("addr_out", V.Ref addr_w) ]
        @ dconn [ ("data_out", V.Ref data_w) ]
      in
      let inst = Names.fresh ctx.names (base ^ "_arb") in
      add_item ctx
        (V.Instance { module_name = def_name; instance_name = inst; connections });
      (V.Ref busy, V.Ref addr_w, if dw > 0 then V.Ref data_w else V.zero1)
  in
  build accessors

let finalize_mem ctx mb =
  let iface = mb.mb_iface in
  let aw = iface.mi_addr_width in
  let depth = Types.bank_depth iface.mi_info in
  Array.iteri
    (fun b names ->
      let readers = List.filter (fun (bk, _, _) -> bk = b) mb.mb_readers in
      let writers = List.filter (fun (bk, _, _, _) -> bk = b) mb.mb_writers in
      (match names.bn_rd with
      | Some (en, addr, _data) when not mb.mb_call_bound ->
        if ctx.hier && List.length readers >= arb_threshold then begin
          let busy, grant_addr, _ =
            emit_arb_chain ctx ~base:en ~aw ~dw:0
              (List.map (fun (_, p, a) -> (p, a, V.zero1)) readers)
          in
          add_item ctx (V.Assign { target = en; expr = busy });
          add_item ctx (V.Assign { target = addr; expr = grant_addr })
        end
        else begin
          let pulses = List.map (fun (_, p, _) -> p) readers in
          add_item ctx (V.Assign { target = en; expr = V.or_list pulses });
          add_item ctx
            (V.Assign
               {
                 target = addr;
                 expr =
                   V.priority_mux
                     ~default:(V.const_int ~width:aw 0)
                     (List.map (fun (_, p, a) -> (p, a)) readers);
               });
          (* UB §4.5: concurrent reads on one port must agree on the
             address. *)
          let rec pairs = function
            | [] -> ()
            | (_, p1, a1) :: rest ->
              List.iter
                (fun (_, p2, a2) ->
                  add_ff ctx
                    (V.Assert_stmt
                       {
                         cond =
                           V.bor
                             (V.bnot (V.band p1 p2))
                             (V.Binop (V.Eq, a1, a2));
                         message =
                           Printf.sprintf
                             "conflicting reads on port %s bank %d" iface.mi_base b;
                       }))
                rest;
              pairs rest
          in
          pairs readers
        end;
        (* Bounds assertion when the depth is not a power of two. *)
        if depth < 1 lsl aw then
          add_ff ctx
            (V.Assert_stmt
               {
                 cond =
                   V.bor (V.bnot (V.Ref en))
                     (V.Binop (V.Lt, V.Ref addr, V.const_int ~width:(aw + 1) depth));
                 message = Printf.sprintf "read out of bounds on %s bank %d" iface.mi_base b;
               })
      | _ -> ());
      match names.bn_wr with
      | Some (en, addr, data) when not mb.mb_call_bound ->
        if ctx.hier && List.length writers >= arb_threshold then begin
          let busy, grant_addr, grant_data =
            emit_arb_chain ctx ~base:en ~aw ~dw:iface.mi_elem_width
              (List.map (fun (_, p, a, d) -> (p, a, d)) writers)
          in
          add_item ctx (V.Assign { target = en; expr = busy });
          add_item ctx (V.Assign { target = addr; expr = grant_addr });
          add_item ctx (V.Assign { target = data; expr = grant_data })
        end
        else begin
          let pulses = List.map (fun (_, p, _, _) -> p) writers in
          add_item ctx (V.Assign { target = en; expr = V.or_list pulses });
          add_item ctx
            (V.Assign
               {
                 target = addr;
                 expr =
                   V.priority_mux
                     ~default:(V.const_int ~width:aw 0)
                     (List.map (fun (_, p, a, _) -> (p, a)) writers);
               });
          add_item ctx
            (V.Assign
               {
                 target = data;
                 expr =
                   V.priority_mux
                     ~default:(V.const_int ~width:iface.mi_elem_width 0)
                     (List.map (fun (_, p, _, d) -> (p, d)) writers);
               });
          let rec pairs = function
            | [] -> ()
            | (_, p1, a1, _) :: rest ->
              List.iter
                (fun (_, p2, a2, _) ->
                  add_ff ctx
                    (V.Assert_stmt
                       {
                         cond =
                           V.bor (V.bnot (V.band p1 p2)) (V.Binop (V.Eq, a1, a2));
                         message =
                           Printf.sprintf
                             "conflicting writes on port %s bank %d" iface.mi_base b;
                       }))
                rest;
              pairs rest
          in
          pairs writers
        end;
        if depth < 1 lsl aw then
          add_ff ctx
            (V.Assert_stmt
               {
                 cond =
                   V.bor (V.bnot (V.Ref en))
                     (V.Binop (V.Lt, V.Ref addr, V.const_int ~width:(aw + 1) depth));
                 message = Printf.sprintf "write out of bounds on %s bank %d" iface.mi_base b;
               })
      | _ -> ())
    iface.mi_banks

(* ------------------------------------------------------------------ *)
(* Function-level emission                                             *)

let emit_func ctx func =
  let ifc = interface_of func in
  add_port ctx { V.port_name = "clk"; dir = V.Input; width = 1 };
  add_port ctx { V.port_name = "t_start"; dir = V.Input; width = 1 };
  (* Bind arguments. *)
  let body = Ops.func_body func in
  let data_args = Ops.func_data_args func in
  List.iter2
    (fun arg_ifc formal ->
      match arg_ifc with
      | Ifc_scalar (name, w, _) ->
        add_port ctx { V.port_name = name; dir = V.Input; width = w };
        bind ctx formal (Vwire (name, w))
      | Ifc_mem mi ->
        (* The bank buses are module ports: en/addr(/wr data) are
           outputs, read data is an input. *)
        Array.iter
          (fun names ->
            (match names.bn_rd with
            | Some (en, addr, data) ->
              add_port ctx { V.port_name = en; dir = V.Output; width = 1 };
              add_port ctx { V.port_name = addr; dir = V.Output; width = mi.mi_addr_width };
              add_port ctx { V.port_name = data; dir = V.Input; width = mi.mi_elem_width }
            | None -> ());
            match names.bn_wr with
            | Some (en, addr, data) ->
              add_port ctx { V.port_name = en; dir = V.Output; width = 1 };
              add_port ctx { V.port_name = addr; dir = V.Output; width = mi.mi_addr_width };
              add_port ctx { V.port_name = data; dir = V.Output; width = mi.mi_elem_width }
            | None -> ())
          mi.mi_banks;
        bind ctx formal
          (Vmem
             {
               mb_iface = mi;
               mb_latency = 1;
               mb_external = true;
               mb_call_bound = false;
               mb_readers = [];
               mb_writers = [];
               mb_read_result = None;
             }))
    ifc.ifc_args data_args;
  (* Result ports. *)
  List.iter
    (fun (name, w, _) -> add_port ctx { V.port_name = name; dir = V.Output; width = w })
    ifc.ifc_results;
  (* Time root. *)
  bind ctx (Ops.func_time_arg func) (Vtime "t_start");
  (* Body. *)
  emit_block ctx body;
  (* Returns drive the result ports. *)
  let return_op =
    List.find (fun o -> Ir.Op.name o = "hir.return") (Ir.Block.ops body)
  in
  List.iteri
    (fun i (name, w, _) ->
      add_item ctx
        (V.Assign { target = name; expr = operand ctx ~width:w (Ir.Op.operand return_op i) }))
    ifc.ifc_results;
  (* Finalize memref buses. *)
  Hashtbl.iter
    (fun _ b -> match b with Vmem mb -> finalize_mem ctx mb | _ -> ())
    ctx.binds;
  ifc

(* External modules: a registered pipeline around a combinational
   binary operator, matching the behavioural models in
   [Hir_dialect.Extern]. *)
let extern_binops = [ ("mult", V.Mul); ("mult3", V.Mul) ]

let emit_extern_module func =
  let ifc = interface_of func in
  let name = ifc.ifc_module in
  let op =
    match List.assoc_opt (Ops.func_name func) extern_binops with
    | Some op -> op
    | None -> fail "no Verilog template registered for extern module '%s'" (Ops.func_name func)
  in
  let args =
    List.filter_map
      (function Ifc_scalar (n, w, _) -> Some (n, w) | Ifc_mem _ -> None)
      ifc.ifc_args
  in
  let result_name, rw, latency =
    match ifc.ifc_results with
    | [ (n, w, d) ] -> (n, w, d)
    | _ -> fail "extern modules must have exactly one result"
  in
  let a, b =
    match args with [ (a, _); (b, _) ] -> (a, b) | _ -> fail "extern arity"
  in
  let items = ref [] in
  let stages = ref [] in
  let prev = ref (V.Binop (op, V.Ref a, V.Ref b)) in
  for k = 1 to latency do
    let r = Printf.sprintf "stage%d" k in
    items := V.Reg_decl { name = r; width = rw } :: !items;
    stages := V.Nonblocking (V.Lref r, !prev) :: !stages;
    prev := V.Ref r
  done;
  let items =
    List.rev !items
    @ [ V.Always_ff (List.rev !stages); V.Assign { target = result_name; expr = !prev } ]
  in
  {
    V.mod_name = name;
    ports =
      [
        { V.port_name = "clk"; dir = V.Input; width = 1 };
        { V.port_name = "t_start"; dir = V.Input; width = 1 };
      ]
      @ List.map (fun (n, w) -> { V.port_name = n; dir = V.Input; width = w }) args
      @ [ { V.port_name = result_name; dir = V.Output; width = rw } ];
    items;
  }

(* ------------------------------------------------------------------ *)
(* Design-level driver                                                 *)

type emitted = {
  design : V.design;
  top_iface : iface;
  module_ifaces : (string * iface) list;
}

(* Emit one function as a Verilog module.  With [hier] (the default)
   the tagged item stream is outlined against a definition cache:
   repeated emission groups become shared [hirdef_*] modules, returned
   in first-use order alongside the function's own module.  With
   [hier = false] the flat item stream is returned byte-for-byte as
   before, and the definition list is empty. *)
let emit_module_for ?(hier = true) ~module_op func =
  let ctx =
    {
      names = Names.create ();
      module_op;
      hier;
      registry = Outline.create_registry ();
      ports = [];
      items = [];
      ff = [];
      group_stack = [];
      force_shared = false;
      binds = Hashtbl.create 128;
      chains = Hashtbl.create 32;
      instance_count = 0;
      emitted_callees = [];
    }
  in
  let ifc = emit_func ctx func in
  let tagged_items = List.rev ctx.items in
  let tagged_ff = List.rev ctx.ff in
  let ports = List.rev ctx.ports in
  let items, ff =
    if hier then
      Outline.run ~names:ctx.names ~registry:ctx.registry ~ports ~items:tagged_items
        ~ff:tagged_ff
    else (List.map snd tagged_items, List.map snd tagged_ff)
  in
  let items = items @ (if ff = [] then [] else [ V.Always_ff ff ]) in
  ( { V.mod_name = ifc.ifc_module; ports; items },
    Outline.defs ctx.registry,
    ifc )

let rec callees_of ~module_op func acc =
  let calls = Ir.Walk.find_all func "hir.call" in
  List.fold_left
    (fun acc call ->
      let name = Ops.call_callee call in
      if List.mem_assoc name acc then acc
      else
        match Ops.lookup_func module_op name with
        | None -> fail "call to unknown function @%s" name
        | Some callee ->
          let acc = (name, callee) :: acc in
          if Ops.is_extern_func callee then acc else callees_of ~module_op callee acc)
    acc calls

let emit ?(hier = true) ~module_op ~top () =
  if Ops.is_extern_func top then
    fail "top function @%s is extern (it has no body to emit)" (Ops.func_name top);
  let callees = callees_of ~module_op top [] in
  let modules = ref [] in
  let ifaces = ref [] in
  (* Shared definitions are deduplicated design-wide by name (the name
     is content-addressed) and placed before the first module that
     instantiates them. *)
  let seen_defs = Hashtbl.create 16 in
  let add_defs defs =
    List.iter
      (fun (d : V.module_def) ->
        if not (Hashtbl.mem seen_defs d.V.mod_name) then begin
          Hashtbl.replace seen_defs d.V.mod_name ();
          modules := d :: !modules
        end)
      defs
  in
  List.iter
    (fun (_, callee) ->
      if Ops.is_extern_func callee then
        modules := emit_extern_module callee :: !modules
      else begin
        let m, defs, ifc = emit_module_for ~hier ~module_op callee in
        add_defs defs;
        modules := m :: !modules;
        ifaces := (ifc.ifc_module, ifc) :: !ifaces
      end)
    (List.rev callees);
  let top_module, top_defs, top_ifc = emit_module_for ~hier ~module_op top in
  add_defs top_defs;
  modules := top_module :: !modules;
  {
    design = { V.modules = List.rev !modules; top = top_ifc.ifc_module };
    top_iface = top_ifc;
    module_ifaces = (top_ifc.ifc_module, top_ifc) :: !ifaces;
  }

(* Convenience: run the mandatory lowering pipeline then emit.  The
   scalar optimizations run before unrolling (cheaper on the compact
   design and inherited by every clone); delay elimination runs after,
   where it can share the shift registers of replicated bodies. *)
let compile ?(optimize = false) ?(hier = true) ~module_op ~top () =
  if optimize then begin
    ignore (Passes.run_canonicalize module_op);
    ignore (Precision_opt.run module_op)
  end;
  ignore (Unroll.run module_op);
  if optimize then ignore (Passes.run_delay_elim module_op);
  emit ~hier ~module_op ~top ()
