(* A flow-through FIFO: a depth-256 block-RAM circular buffer with
   concurrent push and pop every cycle (II = 1).  Each element is
   pushed at cycle ti+1 and popped two cycles later, once the BRAM
   write has committed, giving a constant occupancy of two.

   The paper's Table 5 compares an HIR FIFO against a hand-written
   Verilog FIFO; the hand-written baseline lives in
   [Hir_resources.Baselines]. *)

open Hir_ir
open Hir_dialect

let name = "fifo"
let depth = 256
let stream_len = 64

let build_into m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "in_stream"
          (Types.memref ~dims:[ stream_len ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "out_stream"
          (Types.memref ~dims:[ stream_len ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ input; output ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let clen = Builder.constant b stream_len in
        let buf_ports =
          Builder.alloc b ~kind:Ops.Block_ram ~dims:[ depth ] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let buf_r, buf_w =
          match buf_ports with [ r; w ] -> (r, w) | _ -> assert false
        in
        let _tf =
          Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:clen ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:i ~ti ->
              Builder.yield b ~at:Builder.(ti @>> 1);
              (* Push: read the input stream, enqueue at the write
                 pointer (== i, the buffer is deeper than the burst). *)
              let v = Builder.mem_read b input [ i ] ~at:Builder.(ti @>> 0) in
              let i1 = Builder.delay b i ~by:1 ~at:Builder.(ti @>> 0) in
              Builder.mem_write b v buf_w [ i1 ] ~at:Builder.(ti @>> 1);
              (* Pop: dequeue the element pushed this iteration after
                 its write has committed, and emit it. *)
              let i2 = Builder.delay b i1 ~by:1 ~at:Builder.(ti @>> 1) in
              let out_v = Builder.mem_read b buf_r [ i2 ] ~at:Builder.(ti @>> 2) in
              let i4 = Builder.delay b i2 ~by:1 ~at:Builder.(ti @>> 2) in
              Builder.mem_write b out_v output [ i4 ] ~at:Builder.(ti @>> 3))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input = Array.copy input

let make_input ~seed = Util.test_data ~seed ~n:stream_len ~width:32

let check_interp ?(seed = 6) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "fifo output mismatch"
