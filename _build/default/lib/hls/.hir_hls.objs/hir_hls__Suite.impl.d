lib/hls/suite.ml: Array Ast List Option Printf
