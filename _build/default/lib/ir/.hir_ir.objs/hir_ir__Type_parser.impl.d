lib/ir/type_parser.ml: Hashtbl Lexer String Typ
