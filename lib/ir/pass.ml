(* Passes and the pass manager.

   A pass transforms the IR rooted at an op (usually a module or a
   function) and reports whether it changed anything.  The manager runs
   a pipeline, optionally re-verifying between passes, and records
   wall-clock statistics per pass — the infrastructure behind the
   compile-time evaluation in Table 6.

   Instrumentation: the manager emits a [Pass_begin]/[Pass_end] event
   around every pass.  The per-pass stats list handed back in [result]
   is built from the very same events, so an external tracer (see
   lib/driver) and [pp_stats] observe identical timings.

   Counters: while a pass runs it may call [record_counter] (directly
   or through the rewrite driver) to report named application counts —
   e.g. how often each rewrite pattern fired.  The counts ride on
   [Pass_end] and [stat], so they reach both the textual stats and the
   Chrome traces. *)

type t = {
  name : string;
  description : string;
  run : Ir.op -> Diagnostic.Engine.t -> bool;
}

let make ~name ~description run = { name; description; run }

type stat = {
  pass_name : string;
  seconds : float;
  changed : bool;
  counters : (string * int) list;  (* sorted by name *)
}

type event =
  | Pass_begin of { pass_name : string; index : int }
  | Pass_end of {
      pass_name : string;
      index : int;
      seconds : float;
      changed : bool;
      counters : (string * int) list;
    }

type result = {
  stats : stat list;
  engine : Diagnostic.Engine.t;
  succeeded : bool;
}

(* Domain-local stack of counter collectors: the manager pushes a fresh
   table around each pass; [record_counter] adds to the innermost one
   and is a no-op outside any pass (so passes stay runnable standalone).
   Domain-local because compile jobs run concurrently on domains. *)
let collector_stack : (string, int) Hashtbl.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let record_counter ?(n = 1) name =
  match !(Domain.DLS.get collector_stack) with
  | [] -> ()
  | tbl :: _ ->
    Hashtbl.replace tbl name (n + Option.value ~default:0 (Hashtbl.find_opt tbl name))

let with_counters f =
  let stack = Domain.DLS.get collector_stack in
  let tbl = Hashtbl.create 16 in
  stack := tbl :: !stack;
  let pop () =
    (match !stack with _ :: rest -> stack := rest | [] -> ());
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match f () with
  | v -> (v, pop ())
  | exception e ->
    ignore (pop ());
    raise e

module Manager = struct
  type manager = {
    passes : t list;
    verify_each : bool;
    instrument : event -> unit;
  }

  let create ?(verify_each = false) ?(instrument = fun _ -> ()) passes =
    { passes; verify_each; instrument }

  let run mgr root =
    let engine = Diagnostic.Engine.create () in
    (* Stats are collected by listening to the same event stream the
       external instrumentation callback sees. *)
    let collected = ref [] in
    let emit_event ev =
      (match ev with
      | Pass_end { pass_name; seconds; changed; counters; _ } ->
        collected := { pass_name; seconds; changed; counters } :: !collected
      | Pass_begin _ -> ());
      mgr.instrument ev
    in
    let finish succeeded =
      { stats = List.rev !collected; engine; succeeded }
    in
    let rec go index = function
      | [] -> finish true
      | pass :: rest ->
        emit_event (Pass_begin { pass_name = pass.name; index });
        let t0 = Unix.gettimeofday () in
        let changed, counters = with_counters (fun () -> pass.run root engine) in
        let seconds = Unix.gettimeofday () -. t0 in
        emit_event
          (Pass_end { pass_name = pass.name; index; seconds; changed; counters });
        if Diagnostic.Engine.has_errors engine then finish false
        else if mgr.verify_each then begin
          match Verify.verify root with
          | Ok () -> go (index + 1) rest
          | Error verify_engine ->
            Diagnostic.Engine.errorf engine (Ir.Op.loc root)
              "IR verification failed after pass '%s':\n%s" pass.name
              (Diagnostic.Engine.to_string verify_engine);
            finish false
        end
        else go (index + 1) rest
    in
    go 0 mgr.passes

  let pp_stats fmt result =
    List.iter
      (fun s ->
        Format.fprintf fmt "%-28s %8.3f ms %s@\n" s.pass_name (s.seconds *. 1000.)
          (if s.changed then "(changed)" else "");
        List.iter
          (fun (name, n) -> Format.fprintf fmt "    %-32s %6d@\n" name n)
          s.counters)
      result.stats
end
