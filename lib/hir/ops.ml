(* HIR operation definitions: registration with the dialect registry,
   structural verifiers, and typed accessors used by passes, the
   interpreter and the code generator.

   Operand layout conventions:
   - scheduled ops take their time variable as the LAST operand and
     carry an integer "offset" attribute (the paper's [at %t offset k]);
   - compute ops are combinational and carry no schedule of their own.

   (See Table 2 of the paper for the op inventory.) *)

open Hir_ir

let is_time v = Typ.equal (Ir.Value.typ v) Types.Time
let is_const v = Typ.equal (Ir.Value.typ v) Types.Const
let is_memref v = match Ir.Value.typ v with Types.Memref _ -> true | _ -> false
let is_int v = match Ir.Value.typ v with Typ.Int _ -> true | _ -> false
let is_int_or_const v = is_int v || is_const v

let err engine op fmt =
  Diagnostic.Engine.errorf engine (Ir.Op.loc op) fmt

let constant_value op =
  match Ir.Op.attr op "value" with
  | Some (Attribute.Int n) -> n
  | _ -> failwith "hir.constant: missing value"

(* If [v] is produced by hir.constant, its integer value.  Total even
   on a malformed constant (missing or non-integer 'value'): verifiers
   walk sibling ops before the constant's own verifier has rejected
   it, so this must not raise. *)
let as_constant v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = "hir.constant" -> (
    match Ir.Op.attr op "value" with Some (Attribute.Int n) -> Some n | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Structural verifiers                                                *)

(* The parser accepts any attribute value for any key, so verifiers must
   pin down attribute *kinds* before the schedule verifier, the passes
   or codegen read them through [Attribute.as_*] — otherwise a textual
   module with, say, [{offset = "x"}] verifies structurally and then
   kills the compiler with an uncaught [Failure]. *)
let verify_attr_kind ?(required = true) ~kind ~describe op key engine =
  match Ir.Op.attr op key with
  | Some a ->
    if not (kind a) then
      err engine op "'%s' attribute '%s' must be %s, got %s" (Ir.Op.name op) key
        describe (Attribute.to_string a)
  | None ->
    if required then
      err engine op "'%s' requires '%s' (%s)" (Ir.Op.name op) key describe

let is_int_a = function Attribute.Int _ -> true | _ -> false
let is_array_of p = function Attribute.Array l -> List.for_all p l | _ -> false

let verify_int_attr ?required op key engine =
  verify_attr_kind ?required ~kind:is_int_a ~describe:"an integer" op key engine

(* Codegen materializes one pulse register per schedule-offset stage,
   so an unbounded "offset" attribute is a resource explosion reachable
   straight from parsed text (and unrolling multiplies it further —
   emit has its own accumulated-stage backstop). *)
let max_schedule_offset = 4096

let verify_offset_attr op key engine =
  verify_int_attr op key engine;
  match Ir.Op.attr op key with
  | Some (Attribute.Int n) when n < 0 || n > max_schedule_offset ->
    err engine op "'%s' attribute '%s' must be in 0..%d, got %d" (Ir.Op.name op)
      key max_schedule_offset n
  | _ -> ()

let verify_symbol_attr ?required op key engine =
  verify_attr_kind ?required
    ~kind:(function Attribute.Symbol _ -> true | _ -> false)
    ~describe:"a @symbol" op key engine

let verify_int_array_attr ?required op key engine =
  verify_attr_kind ?required ~kind:(is_array_of is_int_a)
    ~describe:"an array of integers" op key engine

let verify_type_array_attr ?required op key engine =
  verify_attr_kind ?required
    ~kind:(is_array_of (function Attribute.Type _ -> true | _ -> false))
    ~describe:"an array of !ty<..> types" op key engine

let verify_string_array_attr ?required op key engine =
  verify_attr_kind ?required
    ~kind:(is_array_of (function Attribute.String _ -> true | _ -> false))
    ~describe:"an array of strings" op key engine

let verify_operand_count ~n op engine =
  if Ir.Op.num_operands op <> n then
    err engine op "'%s' expects %d operands, got %d" (Ir.Op.name op) n
      (Ir.Op.num_operands op)

let verify_time_last op engine =
  let n = Ir.Op.num_operands op in
  if n = 0 || not (is_time (Ir.Op.operand op (n - 1))) then
    err engine op "'%s' expects its last operand to be a !hir.time value"
      (Ir.Op.name op)
  else verify_offset_attr op "offset" engine

let single_block_region op engine =
  match Ir.Op.regions op with
  | [ r ] -> (
    match Ir.Region.blocks r with
    | [ b ] -> Some b
    | blocks ->
      err engine op "'%s' expects a single-block region, got %d blocks"
        (Ir.Op.name op) (List.length blocks);
      None)
  | rs ->
    err engine op "'%s' expects exactly one region, got %d" (Ir.Op.name op)
      (List.length rs);
    None

let verify_module op engine =
  verify_operand_count ~n:0 op engine;
  match single_block_region op engine with
  | None -> ()
  | Some b ->
    if Ir.Block.num_args b <> 0 then
      err engine op "module block takes no arguments";
    List.iter
      (fun o ->
        if Ir.Op.name o <> "hir.func" then
          err engine op "module may only contain hir.func ops, found '%s'"
            (Ir.Op.name o))
      (Ir.Block.ops b)

let is_extern_func op =
  match Ir.Op.attr op "extern" with
  | Some (Attribute.Bool true) -> true
  | _ -> false

let func_arg_types op =
  match Ir.Op.attr op "arg_types" with
  | Some (Attribute.Array l) -> List.map Attribute.as_type l
  | _ -> failwith "hir.func: missing arg_types attribute"

let func_result_types op =
  match Ir.Op.attr op "result_types" with
  | Some (Attribute.Array l) -> List.map Attribute.as_type l
  | _ -> []

let func_arg_delays op =
  match Ir.Op.attr op "arg_delays" with
  | Some (Attribute.Array l) -> List.map Attribute.as_int l
  | _ -> List.map (fun _ -> 0) (func_arg_types op)

let func_result_delays op =
  match Ir.Op.attr op "result_delays" with
  | Some (Attribute.Array l) -> List.map Attribute.as_int l
  | _ -> List.map (fun _ -> 0) (func_result_types op)

let func_name op = Ir.Op.symbol_attr op "sym_name"

(* The function body's block: args are the data args followed by the
   function start-time %t. *)
let func_body op =
  match Ir.Op.regions op with
  | [ r ] -> (
    match Ir.Region.blocks r with [ b ] -> b | _ -> failwith "hir.func: malformed body")
  | _ -> failwith "hir.func: malformed body"

let func_time_arg op =
  let b = func_body op in
  Ir.Block.arg b (Ir.Block.num_args b - 1)

let func_data_args op =
  let b = func_body op in
  let n = Ir.Block.num_args b in
  List.filteri (fun i _ -> i < n - 1) (Ir.Block.args b)

let verify_func op engine =
  verify_operand_count ~n:0 op engine;
  verify_symbol_attr op "sym_name" engine;
  verify_type_array_attr op "arg_types" engine;
  verify_type_array_attr ~required:false op "result_types" engine;
  verify_string_array_attr ~required:false op "arg_names" engine;
  verify_int_array_attr ~required:false op "arg_delays" engine;
  verify_int_array_attr ~required:false op "result_delays" engine;
  (* Only read the typed accessors once the kinds above hold — they
     [failwith] on malformed attributes. *)
  let arg_types_ok =
    match Ir.Op.attr op "arg_types" with
    | Some (Attribute.Array l) ->
      List.for_all (function Attribute.Type _ -> true | _ -> false) l
    | _ -> false
  in
  (* Sibling attribute arrays must be as long as the signature they
     annotate — codegen indexes them positionally. *)
  let attr_len key =
    match Ir.Op.attr op key with Some (Attribute.Array l) -> Some (List.length l) | _ -> None
  in
  let check_len key ~against =
    match (attr_len key, attr_len against) with
    | Some n, Some m when n <> m ->
      err engine op "hir.func '%s' has %d entries but '%s' has %d" key n against m
    | _ -> ()
  in
  check_len "arg_names" ~against:"arg_types";
  check_len "arg_delays" ~against:"arg_types";
  check_len "result_delays" ~against:"result_types";
  if is_extern_func op then begin
    if Ir.Op.regions op <> [] && single_block_region op engine <> None then ()
  end
  else
    match single_block_region op engine with
    | None -> ()
    | Some b ->
      let n = Ir.Block.num_args b in
      if n = 0 || not (is_time (Ir.Block.arg b (n - 1))) then
        err engine op "hir.func body's last block argument must be !hir.time";
      if arg_types_ok then begin
        let arg_types = func_arg_types op in
        if List.length arg_types <> n - 1 then
          err engine op "hir.func arg_types length (%d) does not match body args (%d)"
            (List.length arg_types) (n - 1)
      end;
      let returns =
        List.filter (fun o -> Ir.Op.name o = "hir.return") (Ir.Block.ops b)
      in
      if List.length returns <> 1 then
        err engine op "hir.func body must contain exactly one hir.return"

let verify_constant op engine =
  verify_operand_count ~n:0 op engine;
  if Ir.Op.num_results op <> 1 || not (is_const (Ir.Op.result op 0)) then
    err engine op "hir.constant produces a single !hir.const result";
  verify_int_attr op "value" engine

let for_lb op = Ir.Op.operand op 0
let for_ub op = Ir.Op.operand op 1
let for_step op = Ir.Op.operand op 2
let for_time op = Ir.Op.operand op 3
let for_offset op = Ir.Op.int_attr op "offset"

let loop_body op =
  match Ir.Op.regions op with
  | [ r ] -> (
    match Ir.Region.blocks r with [ b ] -> b | _ -> failwith "hir.for: malformed body")
  | _ -> failwith "hir.for: malformed body"

let loop_induction_var op = Ir.Block.arg (loop_body op) 0
let loop_iter_time op = Ir.Block.arg (loop_body op) 1

let loop_yield op =
  match List.filter (fun o -> Ir.Op.name o = "hir.yield") (Ir.Block.ops (loop_body op)) with
  | [ y ] -> y
  | _ -> failwith "loop body must contain exactly one hir.yield"

let verify_for op engine =
  verify_operand_count ~n:4 op engine;
  if Ir.Op.num_operands op = 4 then begin
    List.iteri
      (fun i v ->
        if not (is_int_or_const v) then
          err engine op "hir.for bound/step operand %d must be integer or !hir.const" i)
      [ for_lb op; for_ub op; for_step op ];
    if not (is_time (for_time op)) then
      err engine op "hir.for operand 3 must be the start !hir.time"
  end;
  verify_offset_attr op "offset" engine;
  if Ir.Op.num_results op <> 1 || not (is_time (Ir.Op.result op 0)) then
    err engine op "hir.for produces a single !hir.time result";
  match single_block_region op engine with
  | None -> ()
  | Some b ->
    if Ir.Block.num_args b <> 2 then
      err engine op "hir.for body takes (%%iv, %%t_iter) arguments"
    else begin
      if not (is_int (Ir.Block.arg b 0)) then
        err engine op "hir.for induction variable must have integer type";
      if not (is_time (Ir.Block.arg b 1)) then
        err engine op "hir.for iteration time must be !hir.time"
    end;
    let yields = List.filter (fun o -> Ir.Op.name o = "hir.yield") (Ir.Block.ops b) in
    if List.length yields <> 1 then
      err engine op "hir.for body must contain exactly one hir.yield"

let max_unroll_trips = 4096

let unroll_for_lb op = Ir.Op.int_attr op "lb"
let unroll_for_ub op = Ir.Op.int_attr op "ub"
let unroll_for_step op = Ir.Op.int_attr op "step"
let unroll_for_time op = Ir.Op.operand op 0
let unroll_for_offset op = Ir.Op.int_attr op "offset"

let verify_unroll_for op engine =
  verify_operand_count ~n:1 op engine;
  if Ir.Op.num_operands op = 1 && not (is_time (unroll_for_time op)) then
    err engine op "hir.unroll_for operand must be the start !hir.time";
  List.iter (fun key -> verify_int_attr op key engine) [ "lb"; "ub"; "step" ];
  verify_offset_attr op "offset" engine;
  (* The unroll pass replicates the body per iteration ([while k < ub;
     k += step]), so the verifier must reject bound/step combinations
     that never terminate or that would expand into an absurd number of
     ops.  Trip count is computed in float: [ub - lb] can overflow int
     for fuzzer-supplied extremes. *)
  (match (Ir.Op.attr op "lb", Ir.Op.attr op "ub", Ir.Op.attr op "step") with
  | _, _, Some (Attribute.Int 0) -> err engine op "hir.unroll_for step must be nonzero"
  | Some (Attribute.Int lb), Some (Attribute.Int ub), Some (Attribute.Int step) ->
    if lb < ub && step < 0 then
      err engine op "hir.unroll_for with lb < ub and a negative step never terminates"
    else begin
      let trips = ceil ((float_of_int ub -. float_of_int lb) /. float_of_int step) in
      if trips > float_of_int max_unroll_trips then
        err engine op "hir.unroll_for trip count exceeds the limit of %d"
          max_unroll_trips
    end
  | _ -> ());
  if Ir.Op.num_results op <> 1 || not (is_time (Ir.Op.result op 0)) then
    err engine op "hir.unroll_for produces a single !hir.time result";
  match single_block_region op engine with
  | None -> ()
  | Some b ->
    if Ir.Block.num_args b <> 2
       || not (is_const (Ir.Block.arg b 0))
       || not (is_time (Ir.Block.arg b 1))
    then err engine op "hir.unroll_for body takes (%%iv: !hir.const, %%t: !hir.time)";
    let yields = List.filter (fun o -> Ir.Op.name o = "hir.yield") (Ir.Block.ops b) in
    if List.length yields <> 1 then
      err engine op "hir.unroll_for body must contain exactly one hir.yield"

let yield_time op = Ir.Op.operand op 0
let yield_offset op = Ir.Op.int_attr op "offset"

let verify_yield op engine =
  verify_operand_count ~n:1 op engine;
  if Ir.Op.num_operands op = 1 && not (is_time (yield_time op)) then
    err engine op "hir.yield operand must be a !hir.time value";
  verify_offset_attr op "offset" engine

let verify_return op engine =
  List.iteri
    (fun i v ->
      if is_time v || is_memref v then
        err engine op "hir.return operand %d must be a data value" i)
    (Ir.Op.operands op)

let call_callee op = Ir.Op.symbol_attr op "callee"
let call_offset op = Ir.Op.int_attr op "offset"

let call_time op = Ir.Op.operand op (Ir.Op.num_operands op - 1)

let call_args op =
  let n = Ir.Op.num_operands op in
  List.filteri (fun i _ -> i < n - 1) (Ir.Op.operands op)

let call_arg_delays op =
  match Ir.Op.attr op "arg_delays" with
  | Some (Attribute.Array l) -> List.map Attribute.as_int l
  | _ -> List.map (fun _ -> 0) (call_args op)

let call_result_delays op =
  match Ir.Op.attr op "result_delays" with
  | Some (Attribute.Array l) -> List.map Attribute.as_int l
  | _ -> List.map (fun _ -> 0) (Ir.Op.results op)

let verify_call op engine =
  verify_symbol_attr op "callee" engine;
  verify_int_array_attr ~required:false op "arg_delays" engine;
  verify_int_array_attr ~required:false op "result_delays" engine;
  verify_time_last op engine

let max_delay_stages = 4096

let delay_input op = Ir.Op.operand op 0
let delay_time op = Ir.Op.operand op 1
let delay_by op = Ir.Op.int_attr op "by"
let delay_offset op = Ir.Op.int_attr op "offset"

let verify_delay op engine =
  verify_operand_count ~n:2 op engine;
  verify_time_last op engine;
  verify_int_attr op "by" engine;
  (match Ir.Op.attr op "by" with
  | Some (Attribute.Int n) when n < 0 ->
    err engine op "hir.delay 'by' must be non-negative"
  | Some (Attribute.Int n) when n > max_delay_stages ->
    (* Codegen materializes one register per stage. *)
    err engine op "hir.delay 'by' exceeds the limit of %d stages" max_delay_stages
  | _ -> ());
  if Ir.Op.num_results op = 1 && Ir.Op.num_operands op = 2 then begin
    if not (Typ.equal (Ir.Value.typ (delay_input op)) (Ir.Value.typ (Ir.Op.result op 0)))
    then err engine op "hir.delay result type must match its input"
  end

let mem_read_mem op = Ir.Op.operand op 0
let mem_read_indices op =
  let n = Ir.Op.num_operands op in
  List.filteri (fun i _ -> i > 0 && i < n - 1) (Ir.Op.operands op)
let mem_read_time op = Ir.Op.operand op (Ir.Op.num_operands op - 1)
let mem_read_offset op = Ir.Op.int_attr op "offset"
let mem_read_latency op =
  match Ir.Op.int_attr_opt op "latency" with Some l -> l | None -> 1

let verify_mem_access ~is_read op engine =
  let name = Ir.Op.name op in
  let mem_pos = if is_read then 0 else 1 in
  let min_operands = mem_pos + 2 in
  if Ir.Op.num_operands op < min_operands then
    err engine op "'%s' is missing operands" name
  else begin
    verify_time_last op engine;
    if is_read then verify_int_attr ~required:false op "latency" engine;
    let mem = Ir.Op.operand op mem_pos in
    match Ir.Value.typ mem with
    | Types.Memref info ->
      let n_indices = Ir.Op.num_operands op - min_operands in
      if n_indices <> List.length info.dims then
        err engine op "'%s' has %d indices for a rank-%d memref" name n_indices
          (List.length info.dims);
      (* Distributed dims may only be indexed by compile-time consts.
         When an index is a literal constant, check its range too — a
         mutated or hand-written module indexing bank -1 must die here,
         not inside codegen's bank arrays. *)
      List.iteri
        (fun i d ->
          if i < n_indices then begin
            let idx = Ir.Op.operand op (mem_pos + 1 + i) in
            if (not d.Types.packed) && not (is_const idx) then
              err engine op
                "'%s': distributed dimension %d must be indexed by a !hir.const" name i;
            match as_constant idx with
            | Some v when v < 0 || v >= d.Types.size ->
              err engine op "'%s': constant index %d out of range for dimension %d (size %d)"
                name v i d.Types.size
            | _ -> ()
          end)
        info.dims;
      (match info.port with
      | Types.Read when not is_read ->
        err engine op "'%s' writes through a read-only memref port" name
      | Types.Write when is_read ->
        err engine op "'%s' reads through a write-only memref port" name
      | _ -> ());
      if is_read then begin
        if Ir.Op.num_results op <> 1
           || not (Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) info.elem)
        then err engine op "hir.mem_read result must have the memref element type"
      end
      else if
        (* A !hir.const coerces to any element width, as a constant
           wire does in hardware. *)
        (not (Typ.equal (Ir.Value.typ (Ir.Op.operand op 0)) info.elem))
        && not (is_const (Ir.Op.operand op 0))
      then err engine op "hir.mem_write value must have the memref element type"
    | _ -> err engine op "'%s' operand %d must be a memref" name mem_pos
  end

let mem_write_value op = Ir.Op.operand op 0
let mem_write_mem op = Ir.Op.operand op 1
let mem_write_indices op =
  let n = Ir.Op.num_operands op in
  List.filteri (fun i _ -> i > 1 && i < n - 1) (Ir.Op.operands op)
let mem_write_time op = Ir.Op.operand op (Ir.Op.num_operands op - 1)
let mem_write_offset op = Ir.Op.int_attr op "offset"

type mem_kind = Reg | Lut_ram | Block_ram

let mem_kind_to_string = function
  | Reg -> "reg"
  | Lut_ram -> "lutram"
  | Block_ram -> "bram"

let mem_kind_of_string = function
  | "reg" -> Reg
  | "lutram" -> Lut_ram
  | "bram" -> Block_ram
  | s -> failwith ("unknown mem_kind: " ^ s)

let alloc_kind op = mem_kind_of_string (Ir.Op.string_attr op "mem_kind")

(* Read latency implied by the storage kind (paper §4.1: register reads
   are combinational, RAM reads take one cycle). *)
let mem_kind_latency = function Reg -> 0 | Lut_ram | Block_ram -> 1

let verify_alloc op engine =
  verify_operand_count ~n:0 op engine;
  verify_attr_kind
    ~kind:(function
      | Attribute.String ("reg" | "lutram" | "bram") -> true
      | _ -> false)
    ~describe:"one of \"reg\", \"lutram\", \"bram\"" op "mem_kind" engine;
  let results = Ir.Op.results op in
  if results = [] then err engine op "hir.alloc must produce at least one memref port";
  let infos =
    List.filter_map
      (fun v ->
        match Ir.Value.typ v with
        | Types.Memref i -> Some i
        | _ ->
          err engine op "hir.alloc results must be memrefs";
          None)
      results
  in
  match infos with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun i ->
        if not (Types.same_tensor_shape first i) then
          err engine op "hir.alloc ports must agree on tensor shape and element type")
      rest

let binary_compute_ops =
  [ "hir.add"; "hir.sub"; "hir.mult"; "hir.and"; "hir.or"; "hir.xor";
    "hir.shl"; "hir.shrl"; "hir.shra" ]

let comparison_ops = [ "hir.lt"; "hir.le"; "hir.gt"; "hir.ge"; "hir.eq"; "hir.ne" ]

(* ------------------------------------------------------------------ *)
(* Folding                                                             *)

(* Evaluate a binary op on constant operands.  Shift counts outside
   [0, Sys.int_size) are unspecified in OCaml (and disagree with the
   interpreter/RTL semantics, which see fixed-width vectors), so those
   shifts are not folded. *)
let fold_binary name a b =
  let shift_ok = 0 <= b && b < Sys.int_size in
  match name with
  | "hir.add" -> Some (a + b)
  | "hir.sub" -> Some (a - b)
  | "hir.mult" -> Some (a * b)
  | "hir.and" -> Some (a land b)
  | "hir.or" -> Some (a lor b)
  | "hir.xor" -> Some (a lxor b)
  | "hir.shl" -> if shift_ok then Some (a lsl b) else None
  | "hir.shrl" -> if shift_ok then Some (a lsr b) else None
  | "hir.shra" -> if shift_ok then Some (a asr b) else None
  | "hir.lt" -> Some (if a < b then 1 else 0)
  | "hir.le" -> Some (if a <= b then 1 else 0)
  | "hir.gt" -> Some (if a > b then 1 else 0)
  | "hir.ge" -> Some (if a >= b then 1 else 0)
  | "hir.eq" -> Some (if a = b then 1 else 0)
  | "hir.ne" -> Some (if a <> b then 1 else 0)
  | _ -> None

(* Fold hook shared by all pure compute ops: with all-constant operands
   the op folds to a constant attribute, which the rewrite driver
   materializes through the dialect's constant materializer.  Folding
   is exact (OCaml int arithmetic): constants are width-polymorphic
   until they meet a typed wire. *)
let fold_compute op =
  let const_operands = List.map as_constant (Ir.Op.operands op) in
  if List.for_all Option.is_some const_operands then begin
    let vals = List.map (Option.value ~default:0) const_operands in
    let folded =
      match (Ir.Op.name op, vals) with
      | name, [ a; b ] -> fold_binary name a b
      | "hir.not", [ a ] -> Some (lnot a)
      | ("hir.zext" | "hir.sext" | "hir.trunc"), [ a ] -> Some a
      | "hir.select", [ c; x; y ] -> Some (if c <> 0 then x else y)
      | _ -> None
    in
    Option.map (fun v -> Dialect.Fold_attr (Attribute.Int v)) folded
  end
  else None

let log2_exact n =
  if n <= 0 then None
  else
    let rec go k v =
      if v = 1 then Some k else if v land 1 = 1 then None else go (k + 1) (v / 2)
    in
    go 0 n

(* ------------------------------------------------------------------ *)
(* Rewrite patterns (strength reduction, Section 6.2)                  *)

let materialize_const rw ~anchor value =
  let c =
    Ir.Op.create ~loc:(Ir.Op.loc anchor)
      ~attrs:[ ("value", Attribute.Int value) ]
      "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
  in
  Rewrite.Rewriter.insert_op_before rw ~anchor c;
  Ir.Op.result c 0

(* Keep the IR typed: only forward a value with the same type as the
   replaced result. *)
let forward_if_typed rw op v =
  if Typ.equal (Ir.Value.typ v) (Ir.Value.typ (Ir.Op.result op 0)) then begin
    Rewrite.Rewriter.replace_op_with_value rw op v;
    true
  end
  else false

(* Multiplications by power-of-two constants become shifts; x*1 -> x;
   x*0 -> 0 (only when the result is itself !hir.const — forwarding a
   width-polymorphic zero into a typed wire would untie the types, and
   materializing a dead constant anyway once kept the legacy fixpoint
   loop spinning forever).  A multiplier costs DSPs or many LUTs, a
   constant shift costs wires. *)
let pat_mult_strength rw op =
  let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
  let with_const x c =
    match c with
    | 0 ->
      if Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) Types.Const then
        forward_if_typed rw op (materialize_const rw ~anchor:op 0)
      else false
    | 1 -> forward_if_typed rw op x
    | c -> (
      match log2_exact c with
      | Some k when 0 <= k && k < Sys.int_size ->
        let shift = materialize_const rw ~anchor:op k in
        let shl =
          Ir.Op.create ~loc:(Ir.Op.loc op) "hir.shl" ~operands:[ x; shift ]
            ~result_types:[ Ir.Value.typ (Ir.Op.result op 0) ]
        in
        Rewrite.Rewriter.replace_op_with_op rw op shl;
        true
      | _ -> false)
  in
  match (as_constant x, as_constant y) with
  | _, Some c -> with_const x c
  | Some c, _ -> with_const y c
  | None, None -> false

(* x+0 -> x, 0+x -> x, x-0 -> x. *)
let pat_add_sub_identity rw op =
  let x = Ir.Op.operand op 0 and y = Ir.Op.operand op 1 in
  match as_constant y with
  | Some 0 -> forward_if_typed rw op x
  | _ ->
    if Ir.Op.name op = "hir.add" then
      match as_constant x with Some 0 -> forward_if_typed rw op y | _ -> false
    else false

let verify_binary op engine =
  (* Mixed operand widths are legal, as in Verilog: operands are
     implicitly zero-extended to the result width (the precision
     optimization pass of Section 6.3 relies on this). *)
  verify_operand_count ~n:2 op engine;
  if Ir.Op.num_operands op = 2 then
    List.iteri
      (fun i v ->
        if not (is_int_or_const v) then
          err engine op "'%s' operand %d must be integer or !hir.const" (Ir.Op.name op) i)
      (Ir.Op.operands op);
  if Ir.Op.num_results op <> 1 then
    err engine op "'%s' produces a single result" (Ir.Op.name op)

let verify_comparison op engine =
  verify_binary op engine;
  if Ir.Op.num_results op = 1
     && not (Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) Typ.i1)
  then err engine op "'%s' produces an i1 result" (Ir.Op.name op)

let verify_not op engine =
  verify_operand_count ~n:1 op engine

let verify_select op engine =
  verify_operand_count ~n:3 op engine;
  if Ir.Op.num_operands op = 3 then begin
    if not (Typ.equal (Ir.Value.typ (Ir.Op.operand op 0)) Typ.i1) then
      err engine op "hir.select condition must be i1"
  end

let verify_resize op engine = verify_operand_count ~n:1 op engine

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Types.register ();
    let open Dialect in
    register_dialect ~name:"builtin" ~description:"Builtin module container";
    register_dialect ~name:"hir"
      ~description:"Hardware IR with explicitly scheduled operations";
    register_op "builtin.module" ~summary:"Top-level container of hir.func ops"
      ~verify:verify_module;
    register_op "hir.func"
      ~summary:"Hardware function; lowers to a Verilog module" ~verify:verify_func;
    register_op "hir.constant" ~summary:"Compile-time integer constant"
      ~traits:[ Pure ] ~verify:verify_constant;
    register_op "hir.for"
      ~summary:"Sequential/pipelined loop; lowers to a state machine"
      ~traits:[ Scheduled ] ~verify:verify_for;
    register_op "hir.unroll_for"
      ~summary:"Fully unrolled loop; replicates its body in hardware"
      ~traits:[ Scheduled ] ~verify:verify_unroll_for;
    register_op "hir.yield" ~summary:"Schedules the next loop iteration"
      ~traits:[ Terminator; Scheduled ] ~verify:verify_yield;
    register_op "hir.return" ~summary:"Terminates a function body"
      ~traits:[ Terminator ] ~verify:verify_return;
    register_op "hir.call"
      ~summary:"Invoke another HIR function or an external Verilog module"
      ~traits:[ Scheduled ] ~verify:verify_call;
    register_op "hir.delay" ~summary:"Delay a value; lowers to a shift register"
      ~traits:[ Scheduled ] ~verify:verify_delay;
    register_op "hir.mem_read" ~summary:"Read one element through a memref port"
      ~traits:[ Scheduled ] ~verify:(verify_mem_access ~is_read:true);
    register_op "hir.mem_write" ~summary:"Write one element through a memref port"
      ~traits:[ Scheduled ] ~verify:(verify_mem_access ~is_read:false);
    register_op "hir.alloc" ~summary:"Instantiate on-chip storage and its ports"
      ~verify:verify_alloc;
    List.iter
      (fun name ->
        register_op name ~summary:"Combinational arithmetic/logic"
          ~traits:[ Pure ] ~verify:verify_binary ~fold:fold_compute)
      binary_compute_ops;
    List.iter
      (fun name ->
        register_op name ~summary:"Combinational comparison" ~traits:[ Pure ]
          ~verify:verify_comparison ~fold:fold_compute)
      comparison_ops;
    register_op "hir.not" ~summary:"Combinational bitwise negation"
      ~traits:[ Pure ] ~verify:verify_not ~fold:fold_compute;
    register_op "hir.select" ~summary:"Combinational 2:1 multiplexer"
      ~traits:[ Pure ] ~verify:verify_select ~fold:fold_compute;
    register_op "hir.zext" ~summary:"Zero-extend to a wider integer"
      ~traits:[ Pure ] ~verify:verify_resize ~fold:fold_compute;
    register_op "hir.sext" ~summary:"Sign-extend to a wider integer"
      ~traits:[ Pure ] ~verify:verify_resize ~fold:fold_compute;
    register_op "hir.trunc" ~summary:"Truncate to a narrower integer"
      ~traits:[ Pure ] ~verify:verify_resize ~fold:fold_compute;
    (* Constants materialized by the rewrite driver for Fold_attr
       results are always !hir.const: width-polymorphic until they meet
       a typed wire, exactly like hand-written constants. *)
    register_constant_materializer ~dialect:"hir" (fun attr _typ loc ->
        match attr with
        | Attribute.Int _ ->
          Some
            (Ir.Op.create ~loc
               ~attrs:[ ("value", attr) ]
               "hir.constant" ~operands:[] ~result_types:[ Types.Const ])
        | _ -> None);
    (* Strength-reduction rewrite patterns for the greedy driver. *)
    Rewrite.register_pattern ~op:"hir.mult" ~name:"sr.mult-to-shift"
      pat_mult_strength;
    Rewrite.register_pattern ~op:"hir.add" ~name:"sr.add-identity"
      pat_add_sub_identity;
    Rewrite.register_pattern ~op:"hir.sub" ~name:"sr.sub-identity"
      pat_add_sub_identity;
    (* Behavioural models for the stock extern modules (pipelined
       multipliers), so designs using them are interpretable. *)
    Extern.register_standard ()
  end

(* ------------------------------------------------------------------ *)
(* Module-level helpers                                                *)

let module_funcs module_op =
  match Ir.Op.regions module_op with
  | [ r ] -> (
    match Ir.Region.blocks r with
    | [ b ] -> List.filter (fun o -> Ir.Op.name o = "hir.func") (Ir.Block.ops b)
    | _ -> [])
  | _ -> []

let lookup_func module_op name =
  List.find_opt (fun f -> func_name f = name) (module_funcs module_op)
