(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8).

     --table 2    op inventory (Table 2)
     --table 4    matrix-transpose resource usage (Table 4)
     --table 5    resource usage of all kernels, HLS vs HIR (Table 5)
     --table 6    compile times and speedups (Table 6)
     --figure 1   schedule-error diagnostic (Figure 1)
     --figure 2   pipeline-imbalance diagnostic (Figure 2)
     --figure 3   memref banking layout (Figure 3)
     --check      functional verification of every generated design
     --bechamel   Bechamel micro-benchmarks backing Table 6
     --sim-scaling  compiled RTL simulator vs reference tree-walker
     --incremental  edit-1-of-8-kernels warm recompile vs cold batch
     --emit-scaling flat vs shared-definition emission, bytes + time
     --stages     per-stage compile-time breakdown through lib/driver
     --serve-swarm  client-swarm stress test of `hirc serve` (explicit
                  only: not part of the no-argument run)
     --json PATH  additionally dump all recorded numbers as JSON

   With no arguments, everything runs.  Absolute resource numbers come
   from the analytical model in [Hir_resources.Model], not Vivado; the
   paper's numbers are printed alongside so the reproduced *shape* can
   be judged (see EXPERIMENTS.md). *)

open Hir_ir
open Hir_dialect
module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness
module Model = Hir_resources.Model
module Hls = Hir_hls
module Driver = Hir_driver.Driver
module Pipeline = Hir_driver.Pipeline
module Trace = Hir_driver.Trace

let () = Ops.register ()

(* Machine-readable results: every section [record]s its numbers and
   --json PATH writes them all out, so future PRs can track the perf
   trajectory without scraping the tables. *)
let json_results : (string * string * (string * float) list) list ref = ref []

let record ~section ~name fields = json_results := (section, name, fields) :: !json_results

let write_json path =
  let oc = open_out path in
  let entry (section, name, fields) =
    Printf.sprintf "    {\"section\":\"%s\",\"name\":\"%s\",%s}" section name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%.6f" k v) fields))
  in
  Printf.fprintf oc "{\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.rev !json_results)));
  close_out oc;
  Printf.eprintf "wrote %s\n" path

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Compilation helpers                                                 *)

let hir_design ~optimize build =
  let m, f = build () in
  Emit.compile ~optimize ~module_op:m ~top:f ()

let hir_usage ~optimize build =
  Model.design_usage (hir_design ~optimize build).Emit.design

let hls_design ?(iv_width = 32) source_of =
  let source =
    match iv_width with 32 -> source_of () | _ -> Hls.Suite.transpose ~iv_width ()
  in
  let c = Hls.Compiler.compile source in
  Emit.compile ~module_op:c.Hls.Compiler.hls_module ~top:c.Hls.Compiler.hls_func ()

let hls_usage ?iv_width source_of =
  Model.design_usage (hls_design ?iv_width source_of).Emit.design

(* Full HIR compile pipeline, as timed for Table 6: construct the
   design (standing in for parsing), verify it, generate and print
   Verilog.  Both flows use the identical backend; the HLS flow
   additionally pays for dependence analysis and its scheduling
   search, which is the gap Table 6 measures. *)
let hir_compile_once build =
  let m, f = build () in
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  assert (not (Diagnostic.Engine.has_errors engine));
  let emitted = Emit.compile ~optimize:false ~module_op:m ~top:f () in
  Sys.opaque_identity (Hir_verilog.Pretty.design_to_string emitted.Emit.design)

(* Full HLS compile pipeline: frontend, allocation, scheduling,
   lowering, then the same backend. *)
let hls_compile_once source_of =
  let c = Hls.Compiler.compile (source_of ()) in
  let emitted =
    Emit.compile ~module_op:c.Hls.Compiler.hls_module ~top:c.Hls.Compiler.hls_func ()
  in
  Sys.opaque_identity (Hir_verilog.Pretty.design_to_string emitted.Emit.design)

let median_seconds ?(runs = 7) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  List.nth (List.sort compare samples) (runs / 2)

(* Minimum-of-runs: the standard noise-robust estimator for ratio
   gates — background load only ever slows a run down, so the fastest
   sample is the best estimate of the true cost.  Used for the
   sim-scaling budget checks, where a median on a loaded box flaps. *)
let best_seconds ?(runs = 5) f =
  let best = ref infinity in
  for _ = 1 to runs do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let table2 () =
  header "Table 2: data types and operations of the HIR dialect";
  Printf.printf "Data types: i1/i8/i32/... (arbitrary-width ints), f32, !hir.const,\n";
  Printf.printf "            !hir.time, !hir.memref<dims*elem, packing, port>\n\n";
  Printf.printf "%-18s %-10s %s\n" "Operation" "Traits" "Summary";
  List.iter
    (fun (def : Dialect.op_def) ->
      let traits =
        def.Dialect.od_traits
        |> List.map (function
             | Dialect.Terminator -> "term"
             | Dialect.Pure -> "pure"
             | Dialect.Commutative -> "comm"
             | Dialect.Scheduled -> "sched")
        |> String.concat ","
      in
      Printf.printf "%-18s %-10s %s\n" def.Dialect.od_name traits def.Dialect.od_summary)
    (Dialect.registered_ops ())

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)

let table4 () =
  header "Table 4: resource usage of matrix transpose (model) vs paper (Vivado)";
  let rows =
    [
      ( "Vivado HLS",
        (fun () -> hls_usage Hls.Suite.transpose),
        (41, 92) );
      ( "Vivado HLS (manual opt)",
        (fun () -> hls_usage ~iv_width:5 Hls.Suite.transpose),
        (7, 51) );
      ( "HIR (no opt)",
        (fun () -> hir_usage ~optimize:false Hir_kernels.Transpose.build),
        (32, 72) );
      ( "HIR (auto opt)",
        (fun () -> hir_usage ~optimize:true Hir_kernels.Transpose.build),
        (8, 18) );
    ]
  in
  Printf.printf "%-26s %10s %10s    %12s %10s\n" "" "LUT(model)" "FF(model)"
    "LUT(paper)" "FF(paper)";
  List.iter
    (fun (name, usage, (plut, pff)) ->
      let u = usage () in
      Printf.printf "%-26s %10d %10d    %12d %10d\n" name u.Model.lut u.Model.ff plut pff)
    rows

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)

let table5 () =
  header "Table 5: FPGA resource usage, baseline (HLS/Verilog) vs HIR";
  let paper =
    [
      ("transpose", (7, 51, 0, 0), (8, 18, 0, 0));
      ("stencil_1d", (152, 237, 6, 0), (114, 147, 6, 0));
      ("histogram", (130, 107, 0, 1), (101, 146, 0, 1));
      ("gemm", (14495, 24538, 768, 0), (12645, 29062, 768, 0));
      ("convolution", (1517, 2490, 0, 0), (289, 661, 0, 0));
      ("fifo", (34, 36, 0, 1), (43, 140, 0, 1));
    ]
  in
  let baseline_usage name =
    match name with
    | "transpose" -> hls_usage ~iv_width:5 Hls.Suite.transpose
    | "stencil_1d" -> hls_usage Hls.Suite.stencil
    | "histogram" -> hls_usage Hls.Suite.histogram
    | "gemm" -> hls_usage Hls.Suite.gemm
    | "convolution" -> hls_usage Hls.Suite.convolution
    | "fifo" -> Model.design_usage (Hir_resources.Baselines.sync_fifo_design ())
    | _ -> assert false
  in
  let hir_build name =
    match name with
    | "transpose" -> Hir_kernels.Transpose.build
    | "stencil_1d" -> Hir_kernels.Stencil1d.build
    | "histogram" -> Hir_kernels.Histogram.build
    | "gemm" -> (fun () -> Hir_kernels.Gemm.build ())
    | "convolution" -> Hir_kernels.Convolution.build
    | "fifo" -> Hir_kernels.Fifo.build
    | _ -> assert false
  in
  Printf.printf "%-12s | %-28s | %-28s\n" ""
    "baseline model (paper)" "HIR model (paper)";
  Printf.printf "%-12s | %6s %6s %4s %4s | %6s %6s %4s %4s\n" "benchmark" "LUT" "FF"
    "DSP" "BRAM" "LUT" "FF" "DSP" "BRAM";
  List.iter
    (fun (name, (bl, bf, bd, bb), (hl, hf, hd, hb)) ->
      let bu = baseline_usage name in
      let hu = hir_usage ~optimize:true (hir_build name) in
      Printf.printf "%-12s | %6d %6d %4d %4d | %6d %6d %4d %4d   <- model\n" name
        bu.Model.lut bu.Model.ff bu.Model.dsp bu.Model.bram hu.Model.lut hu.Model.ff
        hu.Model.dsp hu.Model.bram;
      Printf.printf "%-12s | %6d %6d %4d %4d | %6d %6d %4d %4d   <- paper\n" "" bl bf
        bd bb hl hf hd hb)
    paper

(* ------------------------------------------------------------------ *)
(* Table 6                                                             *)

let kernels_for_timing =
  [
    ("transpose", Hir_kernels.Transpose.build, (fun () -> Hls.Suite.transpose ()));
    ("stencil_1d", Hir_kernels.Stencil1d.build, (fun () -> Hls.Suite.stencil ()));
    ("histogram", Hir_kernels.Histogram.build, (fun () -> Hls.Suite.histogram ()));
    ("gemm", (fun () -> Hir_kernels.Gemm.build ()), (fun () -> Hls.Suite.gemm ()));
    ("convolution", Hir_kernels.Convolution.build, (fun () -> Hls.Suite.convolution ()));
  ]

let paper_times =
  [
    ("transpose", (0.006, 13.0));
    ("stencil_1d", (0.007, 8.0));
    ("histogram", (0.007, 13.0));
    ("gemm", (0.099, 33.0));
    ("convolution", (0.013, 14.0));
  ]

let table6 () =
  header "Table 6: compile times (seconds) and speedup of HIR over the HLS flow";
  Printf.printf "%-12s %10s %10s %10s %9s   %s\n" "benchmark" "HIR(s)" "HLS(s)"
    "sched(s)" "speedup" "(paper: HIR / Vivado HLS / speedup)";
  List.iter
    (fun (name, hir_build, hls_src) ->
      let hir_t =
        median_seconds (fun () -> hir_compile_once (fun () -> hir_build ()))
      in
      let hls_t = median_seconds ~runs:5 (fun () -> hls_compile_once hls_src) in
      let sched_t =
        let c = Hls.Compiler.compile (hls_src ()) in
        List.assoc "scheduling" c.Hls.Compiler.phase_seconds
      in
      let p_hir, p_hls = List.assoc name paper_times in
      record ~section:"table6" ~name
        [
          ("hir_s", hir_t); ("hls_s", hls_t); ("sched_s", sched_t);
          ("speedup", hls_t /. hir_t);
        ];
      Printf.printf "%-12s %10.4f %10.4f %10.4f %8.1fx   (%.3f / %.0f / %.0fx)\n" name
        hir_t hls_t sched_t (hls_t /. hir_t) p_hir p_hls (p_hls /. p_hir))
    kernels_for_timing;
  Printf.printf
    "\nNote: the baseline here is this repo's HLS compiler, not Vivado HLS;\n\
     the reproduced claim is the ordering and the origin of the gap (the\n\
     scheduling search the HLS flow performs and HIR does not need).\n"

(* Per-stage compile-time breakdown of the HIR flow, measured through
   the driver's tracing instrumentation — where the totals of Table 6
   actually go (IR construction, verification, each pass, codegen,
   printing). *)
let stages () =
  header "Table 6 (breakdown): per-stage HIR compile time through lib/driver (ms)";
  let stage_names = [ "build"; "verify"; "passes"; "emit"; "print" ] in
  Printf.printf "%-12s %9s %9s %9s %9s %9s %10s\n" "benchmark" "build" "verify"
    "passes" "emit" "print" "total";
  List.iter
    (fun (name, hir_build, _) ->
      let trace = Trace.create () in
      let job =
        Driver.job_of_builder
          ~pipeline:(Pipeline.default ~optimize:true)
          ~name
          (fun () -> hir_build ())
      in
      match Driver.compile_job ~trace job with
      | Error e -> Printf.printf "%-12s FAILED: %s\n" name (Driver.error_to_string e)
      | Ok o ->
        let pass_total =
          List.fold_left (fun acc (s : Pass.stat) -> acc +. s.Pass.seconds) 0.
            o.Driver.pass_stats
        in
        let stage n = if n = "passes" then pass_total else Trace.total_seconds trace n in
        record ~section:"stages" ~name
          (List.map (fun n -> (n ^ "_s", stage n)) stage_names
          @ [ ("total_s", o.Driver.seconds) ]);
        Printf.printf "%-12s %9.3f %9.3f %9.3f %9.3f %9.3f %10.3f\n" name
          (stage "build" *. 1000.) (stage "verify" *. 1000.) (pass_total *. 1000.)
          (stage "emit" *. 1000.) (stage "print" *. 1000.) (o.Driver.seconds *. 1000.))
    kernels_for_timing

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let loc_at file line col = Location.file ~file ~line ~col

let figure1 () =
  header "Figure 1: schedule verifier diagnostic for a mis-scheduled array add";
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"Array_Add"
      ~args:
        [
          Builder.arg "A" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "B" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "C" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c128 = Builder.constant b 128 in
          let _ =
            Builder.for_loop b ~iv_width:8 ~iv_hint:"i" ~lb:c0 ~ub:c128 ~step:c1
              ~at:Builder.(t @>> 1)
              ~loc:(loc_at "test/HIR/err_add.mlir" 8 3)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
                let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
                let vc = Builder.add b va vb in
                Builder.mem_write b vc c [ i ] ~at:Builder.(ti @>> 1)
                  ~loc:(loc_at "test/HIR/err_add.mlir" 13 5))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  print_endline (Diagnostic.Engine.to_string engine)

let figure2 () =
  header "Figure 2: pipeline-imbalance diagnostic for a multiply-accumulate";
  let m = Builder.create_module () in
  let mult =
    Builder.extern_func m ~name:"mult3"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
      ~results:[ (Typ.i32, 3) ]
  in
  let _ =
    Builder.func m ~name:"mac"
      ~args:
        [ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32; Builder.arg "c" Typ.i32 ]
      ~results:[ (Typ.i32, 3) ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let p = List.hd (Builder.call b ~callee:mult [ a; bb ] ~at:Builder.(t @>> 0)) in
          let c2 =
            Builder.delay b c ~by:2 ~at:Builder.(t @>> 0)
              ~loc:(loc_at "test/HIR/mac.mlir" 8 8)
          in
          let r = Builder.add b p c2 ~loc:(loc_at "test/HIR/mac.mlir" 9 10) in
          Builder.return_ b [ r ]
        | _ -> assert false)
  in
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  print_endline (Diagnostic.Engine.to_string engine)

let figure3 () =
  header "Figure 3: memory banking of A : !hir.memref<3*2*i32, packing=[1], r>";
  let t =
    Types.memref ~packing:(Some [ 1 ]) ~dims:[ 3; 2 ] ~elem:Typ.i32 ~port:Types.Read ()
  in
  let info = Types.memref_info t in
  Printf.printf "banks = %d, elements per bank = %d\n\n" (Types.num_banks info)
    (Types.bank_depth info);
  List.iter
    (fun (idx, bank, addr) ->
      Printf.printf "  A[%s] -> bank %d, address %d\n"
        (String.concat "][" (List.map string_of_int idx))
        bank addr)
    (Types.layout info)

(* ------------------------------------------------------------------ *)
(* Functional check                                                    *)

let check () =
  header "Functional check: every design vs its software reference";
  List.iter
    (fun k ->
      match k.Hir_kernels.Kernels.check () with
      | Ok r ->
        Printf.printf "  %-14s PASS (interp)  latency=%d cycles, %d reads, %d writes\n"
          k.Hir_kernels.Kernels.name r.Interp.cycles r.Interp.reads r.Interp.writes
      | Error e -> Printf.printf "  %-14s FAIL: %s\n" k.Hir_kernels.Kernels.name e)
    Hir_kernels.Kernels.all;
  let overlapped, single = Hir_kernels.Taskparallel.overlap_summary () in
  Printf.printf
    "\n  Listing 3 overlap: two chained stencils take %d cycles overlapped vs\n\
    \  %d for one stencil alone (sequential execution would need ~%d).\n"
    overlapped single (2 * single)

(* ------------------------------------------------------------------ *)
(* Scaling (backs the Table 6 discussion)                              *)

(* How compile time scales with the PE grid: the HLS flow's dependence
   analysis is quadratic in the unrolled body and its modulo scheduling
   must search, while HIR's codegen only grows with the output size —
   the structural reason behind the paper's compile-time gap. *)
let scaling () =
  header "Scaling: GEMM PE grid size vs compile time (seconds)";
  Printf.printf "%-8s %12s %12s %14s\n" "n (PEs)" "HIR total" "HLS total" "HLS scheduling";
  List.iter
    (fun n ->
      let hir_t =
        median_seconds ~runs:3 (fun () ->
            hir_compile_once (fun () -> Hir_kernels.Gemm.build ~n ()))
      in
      let hls_t =
        median_seconds ~runs:3 (fun () -> hls_compile_once (fun () -> Hls.Suite.gemm ~n ()))
      in
      let sched_t =
        let c = Hls.Compiler.compile (Hls.Suite.gemm ~n ()) in
        List.assoc "scheduling" c.Hls.Compiler.phase_seconds
      in
      Printf.printf "%-8s %12.4f %12.4f %14.4f\n"
        (Printf.sprintf "%dx%d" n n)
        hir_t hls_t sched_t)
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Canonicalize scaling: greedy worklist driver vs the legacy loop     *)

(* The legacy canonicalizer re-scans the whole module every round
   (use-counting is itself a module walk, so each round is quadratic in
   the op count); the worklist driver touches an op only when it or one
   of its operands changed.  Fully-unrolled GEMM grids give a family of
   inputs whose size grows with n², making the asymptotic gap visible.
   Each sample rebuilds and re-unrolls a fresh module (untimed) so both
   canonicalizers start from identical IR. *)

let count_all_ops m =
  let n = ref 0 in
  Ir.Walk.ops_pre m ~f:(fun _ -> incr n);
  !n

let median_of samples = List.nth (List.sort compare samples) (List.length samples / 2)

let time_fresh ~runs ~prepare f =
  median_of
    (List.init runs (fun _ ->
         let m = prepare () in
         let t0 = Unix.gettimeofday () in
         ignore (Sys.opaque_identity (f m));
         Unix.gettimeofday () -. t0))

(* Generous wall-clock ceiling for the driver on the fully-unrolled
   default GEMM (n=16, ~10k ops): far above any healthy run, so the
   make-check guard only fires on a real complexity regression. *)
let gemm16_budget_s = 2.0

let canonicalize_scaling () =
  header "Canonicalize scaling: worklist driver vs legacy pass loop (unrolled GEMM)";
  Printf.printf "%-8s %8s %12s %12s %9s %10s %7s\n" "n (PEs)" "ops" "driver(s)"
    "legacy(s)" "speedup" "processed" "rounds";
  let violation = ref None in
  List.iter
    (fun n ->
      let prepare () =
        let m, _ = Hir_kernels.Gemm.build ~n () in
        ignore (Unroll.run m);
        m
      in
      let ops = count_all_ops (prepare ()) in
      let processed = ref 0 and rounds = ref 0 in
      let driver_t =
        time_fresh ~runs:3 ~prepare (fun m ->
            let stats = Passes.run_canonicalize_stats m in
            processed := stats.Rewrite.ds_processed;
            rounds := stats.Rewrite.ds_rounds;
            stats.Rewrite.ds_changed)
      in
      let legacy_t = time_fresh ~runs:3 ~prepare Passes.Legacy.run_canonicalize in
      let speedup = legacy_t /. driver_t in
      record ~section:"canonicalize-scaling"
        ~name:(Printf.sprintf "gemm-%dx%d" n n)
        [
          ("ops", float_of_int ops);
          ("driver_s", driver_t);
          ("legacy_s", legacy_t);
          ("speedup", speedup);
          ("ops_processed", float_of_int !processed);
          ("rounds", float_of_int !rounds);
        ];
      Printf.printf "%-8s %8d %12.4f %12.4f %8.1fx %10d %7d\n"
        (Printf.sprintf "%dx%d" n n)
        ops driver_t legacy_t speedup !processed !rounds;
      if n = 16 && driver_t > gemm16_budget_s then
        violation :=
          Some
            (Printf.sprintf
               "driver canonicalize on unrolled 16x16 GEMM took %.3fs (budget %.1fs)"
               driver_t gemm16_budget_s))
    [ 4; 8; 12; 16 ];
  match !violation with
  | None -> Printf.printf "\ntime budget OK (16x16 driver within %.1fs)\n" gemm16_budget_s
  | Some msg ->
    Printf.eprintf "\nTIME BUDGET VIOLATION: %s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* Sim scaling: opcode buffer vs compiled closures vs reference        *)

(* Three engines: the reference simulator re-walks every expression
   tree per settle; the PR 4 compiled engine lowers to slot-indexed
   closures; the opcode engine lowers one step further, to a flat
   int-array opcode program interpreted by a single match loop, with
   the netlist partitioned across domains at register boundaries and
   batched multi-stimulus runs sharing one compiled program.

   End-to-end cycles/sec charges each engine its own elaboration
   (flatten + Sim.create, i.e. the opcode engine pays for its
   compiler); steady-state cycles/sec elaborates once and times only
   what repeats per stimulus — a [Sim.fork], agent setup, and the
   cycle loop — which is what a long-running simulation sees.
   (Subtracting a separately measured elaboration time from the
   end-to-end figure gives the same quantity in expectation, but as
   the difference of two noisy measurements it is far too jittery to
   gate on.)  make check requires on GEMM 16x16: the opcode engine's
   steady-state rate at least 10x the compiled engine's end-to-end
   rate (the PR 4 headline metric), the compiled engine keeping its
   own 10x lead over the reference walker, a wall budget — and, on the
   small designs, an end-to-end no-regression budget for opcode vs
   compiled. *)

let sim_gemm_budget_s = 2.0
let sim_gemm_min_speedup = 10.0
let sim_small_regression = 0.8
let sim_batch_k = 4

let sim_scaling () =
  let module Sim = Hir_rtl.Sim in
  let module Flatten = Hir_rtl.Flatten in
  header "Sim scaling: opcode / compiled / reference engines (cycles/second)";
  Printf.printf "%-12s %6s %9s %9s %9s %9s %10s %10s %8s\n" "benchmark" "cycles"
    "ref(c/s)" "comp(c/s)" "op/1(c/s)" "op/N(c/s)" "steady c/s" "batch4 c/s" "speedup";
  let gemm_inputs =
    let a, b = Hir_kernels.Gemm.make_inputs ~seed:34 in
    [ Harness.Tensor a; Harness.Tensor b; Harness.Out_tensor ]
  in
  let conv_inputs =
    let input = Hir_kernels.Convolution.make_input ~seed:35 in
    [ Harness.Tensor input; Harness.Out_tensor ]
  in
  let transpose_inputs =
    [ Harness.Tensor (Hir_kernels.Transpose.make_input ~seed:31); Harness.Out_tensor ]
  in
  let histogram_inputs =
    [ Harness.Tensor (Hir_kernels.Histogram.make_input ~seed:33); Harness.Out_tensor ]
  in
  let interp_cycles ~m ~f inputs =
    let result, _ =
      Interp.run ~module_op:m ~func:f
        (List.map
           (function
             | Harness.Scalar v -> Interp.Scalar v
             | Harness.Tensor a -> Interp.Tensor a
             | Harness.Out_tensor -> Interp.Out_tensor)
           inputs)
    in
    result.Interp.cycles
  in
  let violation = ref None in
  let violate fmt = Printf.ksprintf (fun m -> if !violation = None then violation := Some m) fmt in
  List.iter
    (fun (name, build, inputs, small) ->
      let m, f = build () in
      let cycles = interp_cycles ~m ~f inputs in
      (* compile mutates the module (unroll etc.), so rebuild fresh. *)
      let m, f = build () in
      let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
      let run ~engine ?partitions () =
        Harness.run ~engine ?partitions ~emitted ~inputs ~cycles ()
      in
      let elab ~engine ?partitions () =
        best_seconds ~runs:3 (fun () ->
            Sys.opaque_identity
              (Sim.create ~engine ?partitions (Flatten.flatten emitted.Emit.design)))
      in
      (* Steady-state: elaborate once, then time per-stimulus work only
         (fork, agents, cycle loop) on forks of the shared program. *)
      let steady_run ~engine ?partitions ~runs () =
        let proto = Sim.create ~engine ?partitions (Flatten.flatten emitted.Emit.design) in
        let total = cycles + 8 in
        best_seconds ~runs (fun () ->
            let sim = Sim.fork proto in
            let agents = Harness.setup_agents sim ~emitted ~inputs in
            let start = Sim.writer sim "t_start" in
            for c = 0 to total - 1 do
              Harness.cycle_once sim ~start agents None ~is_first:(c = 0)
            done;
            Sys.opaque_identity (Harness.finish_run sim ~emitted ~total))
      in
      let last_stats = ref None in
      let npart = ref 1 in
      let reference_t = best_seconds ~runs:3 (fun () -> run ~engine:`Reference ()) in
      let compiled_t = best_seconds ~runs:5 (fun () -> run ~engine:`Compiled ()) in
      let opcode1_t =
        best_seconds ~runs:5 (fun () -> run ~engine:`Opcode ~partitions:1 ())
      in
      let opcode_t =
        best_seconds ~runs:5 (fun () ->
            let result, _ = run ~engine:`Opcode () in
            last_stats := Some result.Harness.sim_stats;
            result)
      in
      let batch_t =
        best_seconds ~runs:3 (fun () ->
            Harness.run_batch ~engine:`Opcode ~emitted
              ~stimuli:(List.init sim_batch_k (fun _ -> inputs))
              ~cycles ())
      in
      let compiled_elab_t = elab ~engine:`Compiled () in
      let opcode_elab_t = elab ~engine:`Opcode () in
      let compiled_steady_t = steady_run ~engine:`Compiled ~runs:5 () in
      let opcode_steady_t = steady_run ~engine:`Opcode ~runs:5 () in
      let stats = match !last_stats with Some s -> s | None -> assert false in
      (let sim = Sim.create ~engine:`Opcode (Flatten.flatten emitted.Emit.design) in
       npart := Sim.partitions sim);
      let total_cycles = float_of_int stats.Sim.st_cycles in
      let cps t = total_cycles /. t in
      let reference_cps = cps reference_t in
      let compiled_cps = cps compiled_t in
      let opcode1_cps = cps opcode1_t in
      let opcode_cps = cps opcode_t in
      let compiled_steady_cps = cps compiled_steady_t in
      let opcode_steady_cps = cps opcode_steady_t in
      let batch_cps = float_of_int sim_batch_k *. total_cycles /. batch_t in
      (* The headline: opcode steady-state over the PR 4 end-to-end
         compiled rate. *)
      let speedup = opcode_steady_cps /. compiled_cps in
      let evaluated = stats.Sim.st_assigns_evaluated in
      let skipped = stats.Sim.st_assigns_skipped in
      let fast_rate =
        if evaluated = 0 then 0.
        else float_of_int stats.Sim.st_fastpath_evaluated /. float_of_int evaluated
      in
      let skip_rate =
        if evaluated + skipped = 0 then 0.
        else float_of_int skipped /. float_of_int (evaluated + skipped)
      in
      record ~section:"sim-scaling" ~name
        [
          ("cycles", total_cycles);
          ("reference_s", reference_t);
          ("compiled_s", compiled_t);
          ("opcode_p1_s", opcode1_t);
          ("opcode_s", opcode_t);
          ("batch_s", batch_t);
          ("reference_cps", reference_cps);
          ("compiled_cps", compiled_cps);
          ("opcode_p1_cps", opcode1_cps);
          ("opcode_cps", opcode_cps);
          ("compiled_elab_s", compiled_elab_t);
          ("opcode_elab_s", opcode_elab_t);
          ("compiled_steady_cps", compiled_steady_cps);
          ("opcode_steady_cps", opcode_steady_cps);
          ("batch_cps", batch_cps);
          ("partitions", float_of_int !npart);
          ("batch_k", float_of_int sim_batch_k);
          ("speedup_steady_vs_compiled", speedup);
          ("fastpath_rate", fast_rate);
          ("skip_rate", skip_rate);
        ];
      Printf.printf "%-12s %6d %9.0f %9.0f %9.0f %9.0f %10.0f %10.0f %7.1fx\n" name
        stats.Sim.st_cycles reference_cps compiled_cps opcode1_cps opcode_cps
        opcode_steady_cps batch_cps speedup;
      if name = "gemm" then begin
        if speedup < sim_gemm_min_speedup then
          violate
            "opcode steady-state only %.1fx over compiled end-to-end on GEMM (need %.0fx)"
            speedup sim_gemm_min_speedup;
        if reference_t /. compiled_t < sim_gemm_min_speedup then
          violate "compiled simulator only %.1fx over reference on GEMM (need %.0fx)"
            (reference_t /. compiled_t) sim_gemm_min_speedup;
        if opcode_t > sim_gemm_budget_s then
          violate "opcode GEMM simulation took %.3fs (budget %.1fs)" opcode_t
            sim_gemm_budget_s
      end;
      if small && opcode_cps < sim_small_regression *. compiled_cps then
        violate "opcode end-to-end %.0f c/s < %.1fx compiled %.0f c/s on %s" opcode_cps
          sim_small_regression compiled_cps name)
    [
      ("gemm", (fun () -> Hir_kernels.Gemm.build ()), gemm_inputs, false);
      ("convolution", Hir_kernels.Convolution.build, conv_inputs, true);
      ("transpose", Hir_kernels.Transpose.build, transpose_inputs, true);
      ("histogram", Hir_kernels.Histogram.build, histogram_inputs, true);
    ];
  match !violation with
  | None ->
    Printf.printf
      "\nsim budget OK (GEMM opcode steady >= %.0fx compiled end-to-end, compiled >= \
       %.0fx reference, within %.1fs; small designs within %.1fx)\n"
      sim_gemm_min_speedup sim_gemm_min_speedup sim_gemm_budget_s sim_small_regression
  | Some msg ->
    Printf.eprintf "\nSIM BUDGET VIOLATION: %s\n" msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

(* Matrix transpose with a configurable inner-loop initiation interval:
   the II=1 pipeline of Listing 1 against slower schedules, showing
   what explicit loop pipelining (Section 7.1) buys. *)
let transpose_with_ii ii =
  let n = 16 in
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"transpose_ii"
      ~args:
        [
          Builder.arg "Ai" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "Co" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ ai; co ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let cn = Builder.constant b n in
          let _ =
            Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:cn ~step:c1 ~at:Builder.(t @>> 1)
              (fun b ~iv:i ~ti ->
                let tf_j =
                  Builder.for_loop b ~iv_hint:"j" ~lb:c0 ~ub:cn ~step:c1
                    ~at:Builder.(ti @>> 1)
                    (fun b ~iv:j ~ti:tj ->
                      let v = Builder.mem_read b ai [ i; j ] ~at:Builder.(tj @>> 0) in
                      let j1 = Builder.delay b j ~by:1 ~at:Builder.(tj @>> 0) in
                      Builder.mem_write b v co [ j1; i ] ~at:Builder.(tj @>> 1);
                      Builder.yield b ~at:Builder.(tj @>> ii))
                in
                Builder.yield b ~at:Builder.(tf_j @>> 1))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, f)

let ablation () =
  header "Ablation 1: loop pipelining (Section 7.1) — transpose inner-loop II";
  let input = Hir_kernels.Transpose.make_input ~seed:77 in
  List.iter
    (fun ii ->
      let m, f = transpose_with_ii ii in
      let result, _ =
        Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
      in
      Printf.printf "  II=%d: %4d cycles\n" ii result.Interp.cycles)
    [ 1; 2; 4 ];

  header "Ablation 2: precision optimization (Section 6.3) per kernel";
  Printf.printf "  %-14s %18s %18s\n" "kernel" "no-opt LUT/FF" "auto-opt LUT/FF";
  List.iter
    (fun (name, build) ->
      let a = hir_usage ~optimize:false build in
      let b = hir_usage ~optimize:true build in
      Printf.printf "  %-14s %11d/%-6d %11d/%-6d\n" name a.Model.lut a.Model.ff
        b.Model.lut b.Model.ff)
    [
      ("transpose", Hir_kernels.Transpose.build);
      ("stencil_1d", Hir_kernels.Stencil1d.build);
      ("histogram", Hir_kernels.Histogram.build);
      ("convolution", Hir_kernels.Convolution.build);
      ("fifo", Hir_kernels.Fifo.build);
    ];

  header "Ablation 3: delay elimination (Section 6.4) — shared shift registers";
  let delay_bits m =
    List.fold_left
      (fun acc d ->
        match Typ.bit_width (Ir.Value.typ (Ir.Op.result d 0)) with
        | Some w -> acc + (w * Ops.delay_by d)
        | None -> acc)
      0
      (Ir.Walk.find_all m "hir.delay")
  in
  List.iter
    (fun (name, build) ->
      let m, _ = build () in
      ignore (Unroll.run m);
      let before = delay_bits m in
      ignore (Passes.run_delay_elim m);
      let after = delay_bits m in
      Printf.printf "  %-14s shift-register bits: %6d -> %6d\n" name before after)
    [
      ("gemm", fun () -> Hir_kernels.Gemm.build ());
      ("convolution", Hir_kernels.Convolution.build);
      ("fifo", Hir_kernels.Fifo.build);
    ];

  header "Ablation 4: retiming (Section 7.4) on a 2-stage dual-input pipeline";
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"retime_demo"
      ~args:[ Builder.arg "x" Typ.i32; Builder.arg "y" Typ.i32 ]
      ~results:[ (Typ.i32, 2) ]
      (fun b args t ->
        match args with
        | [ x; y ] ->
          let dx = Builder.delay b x ~by:2 ~at:Builder.(t @>> 0) in
          let dy = Builder.delay b y ~by:2 ~at:Builder.(t @>> 0) in
          Builder.return_ b [ Builder.add b dx dy ]
        | _ -> assert false)
  in
  Printf.printf "  register bits before retiming: %d\n" (delay_bits m);
  ignore (Retime.run m);
  Printf.printf "  register bits after  retiming: %d\n" (delay_bits m)

(* ------------------------------------------------------------------ *)
(* Serve swarm: stress the compilation server                          *)

module Server = Hir_driver.Server
module Protocol = Hir_driver.Protocol
module Cache = Hir_driver.Cache
module Faults = Hir_driver.Faults
module Scheduler = Hir_driver.Scheduler

(* N concurrent clients hammer one `hirc serve` instance (run
   in-process on its own domain) over a Unix socket with mixed kernel
   sizes, mixed priorities, a sprinkling of explicit cancels and 10%
   injected faults on the cache and compile paths.  The invariant under
   test is the server's zero-lost-jobs contract: every admitted job
   produces exactly one terminal response (ok / degraded / failed /
   cancelled), rejections are explicit, and client-observed p99 latency
   stays bounded.  The cache is warmed first (`hirc cache --warm`
   machinery), so steady-state traffic exercises the hit path — and,
   under injection, the read-fault recompile path. *)

let swarm_clients = 8
let swarm_jobs_per_client = 12
let swarm_fault_spec = "cache.read=0.1,cache.write=0.1,job.compile=0.1"
let swarm_seed = 11

let serve_swarm () =
  header
    (Printf.sprintf
       "Serve swarm: %d clients x %d jobs, mixed kernels, faults %s (seed %d)"
       swarm_clients swarm_jobs_per_client swarm_fault_spec swarm_seed);
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-swarm-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists tmp) then Unix.mkdir tmp 0o755;
  let sock = Filename.concat tmp "serve.sock" in
  let trace_path = Filename.concat tmp "serve-trace.json" in
  let cache_dir = Filename.concat tmp "cache" in
  let cache = Cache.create ~dir:cache_dir () in
  (* Warm the cache (cleanly, before faults are installed) with every
     built-in kernel, the same priming a production deploy would do. *)
  let kernel_names =
    List.map (fun k -> k.Hir_kernels.Kernels.name) Hir_kernels.Kernels.all
  in
  let warm_jobs =
    List.map
      (fun k ->
        Driver.job_of_builder
          ~pipeline:(Pipeline.default ~optimize:true)
          ~name:k.Hir_kernels.Kernels.name k.Hir_kernels.Kernels.build)
      Hir_kernels.Kernels.all
    |> Array.of_list
  in
  let stored, hits, warm_failures =
    Driver.warm_cache ~cache ~workers:(Scheduler.default_workers ()) warm_jobs
  in
  Printf.printf "warm: %d kernels -> %d stored, %d already cached, %d failed\n%!"
    (Array.length warm_jobs) stored hits warm_failures;
  let rules =
    match Faults.parse_spec swarm_fault_spec with
    | Ok r -> r
    | Error e -> failwith ("bad swarm fault spec: " ^ e)
  in
  let cfg =
    {
      (Server.default_config ~listen:(Server.Unix_path sock) ()) with
      Server.cfg_workers = max 2 (Scheduler.default_workers ());
      cfg_max_depth = 48;
      cfg_cache = Some (Cache.create ~dir:cache_dir ());
      cfg_trace_path = Some trace_path;
    }
  in
  Faults.with_config { Faults.rules; seed = swarm_seed } (fun () ->
      let server =
        Domain.spawn (fun () -> Server.run cfg)
      in
      (* Wait for the socket to come up. *)
      let rec wait_sock n =
        if n = 0 then failwith "server socket never appeared";
        if not (Sys.file_exists sock) then begin
          Unix.sleepf 0.05;
          wait_sock (n - 1)
        end
      in
      wait_sock 200;
      let client_run idx () =
        let c = Protocol.Client.connect_unix sock in
        let terminal = Hashtbl.create 16 in  (* id -> (status, latency) *)
        let submitted = Hashtbl.create 16 in  (* id -> submit time *)
        let n = swarm_jobs_per_client in
        for i = 0 to n - 1 do
          let id = Printf.sprintf "c%d-j%d" idx i in
          let kernel = List.nth kernel_names ((idx + (3 * i)) mod List.length kernel_names) in
          let priority = i mod 3 in
          Hashtbl.replace submitted id (Unix.gettimeofday ());
          Protocol.Client.send c
            (Protocol.Json.Obj
               [
                 ("op", Protocol.Json.Str "compile");
                 ("id", Protocol.Json.Str id);
                 ("kernel", Protocol.Json.Str kernel);
                 ("priority", Protocol.Json.Num (float_of_int priority));
               ]);
          (* ~10% explicit cancels, racing the compile: any of
             cancelled / finished is legal, but the job must still get
             exactly one terminal response. *)
          if i mod 10 = 9 then
            Protocol.Client.send c
              (Protocol.Json.Obj
                 [
                   ("op", Protocol.Json.Str "cancel"); ("id", Protocol.Json.Str id);
                 ])
        done;
        (* Read until every id has its terminal response. *)
        let rec pump () =
          if Hashtbl.length terminal < n then
            match Protocol.Client.recv c with
            | None -> failwith (Printf.sprintf "client %d: server hung up early" idx)
            | Some j -> (
              match (Protocol.Json.field_str j "event", Protocol.Json.field_str j "id") with
              | Some "result", Some id ->
                if Hashtbl.mem terminal id then
                  failwith (Printf.sprintf "client %d: duplicate response for %s" idx id);
                let status =
                  Option.value ~default:"?" (Protocol.Json.field_str j "status")
                in
                let latency =
                  Unix.gettimeofday () -. Hashtbl.find submitted id
                in
                Hashtbl.replace terminal id (status, latency);
                pump ()
              | _ -> pump () (* cancel acks, etc. *))
        in
        pump ();
        Protocol.Client.close c;
        Hashtbl.fold (fun id sl acc -> (id, sl) :: acc) terminal []
      in
      let clients =
        List.init swarm_clients (fun idx -> Domain.spawn (client_run idx))
      in
      let per_client = List.map Domain.join clients in
      let all = List.concat per_client in
      (* One more client for the probes, then shutdown. *)
      let probe = Protocol.Client.connect_unix sock in
      Protocol.Client.send probe
        (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
      let metrics = Protocol.Client.recv probe in
      Protocol.Client.send probe
        (Protocol.Json.Obj [ ("op", Protocol.Json.Str "shutdown") ]);
      ignore (Protocol.Client.recv probe);
      Protocol.Client.close probe;
      let server_exit = Domain.join server in
      (* ---- verdicts ---- *)
      let expected = swarm_clients * swarm_jobs_per_client in
      let count st =
        List.length (List.filter (fun (_, (s, _)) -> s = st) all)
      in
      let ok = count "ok" and degraded = count "degraded" in
      let failed = count "failed" and cancelled = count "cancelled" in
      let rejected = count "rejected" in
      let latencies =
        List.filter_map
          (fun (_, (s, l)) -> if s = "rejected" then None else Some l)
          all
        |> List.sort compare
      in
      let pct q =
        match latencies with
        | [] -> 0.
        | l ->
          let n = List.length l in
          List.nth l (min (n - 1) (int_of_float (q *. float_of_int n)))
      in
      Printf.printf
        "swarm: %d responses / %d jobs: %d ok, %d degraded, %d failed, %d \
         cancelled, %d rejected\n"
        (List.length all) expected ok degraded failed cancelled rejected;
      Printf.printf "swarm: latency p50 %.1f ms, p90 %.1f ms, p99 %.1f ms (n=%d)\n"
        (pct 0.50 *. 1000.) (pct 0.90 *. 1000.) (pct 0.99 *. 1000.)
        (List.length latencies);
      (match metrics with
      | Some m -> Printf.printf "swarm: server metrics: %s\n" (Protocol.Json.to_string m)
      | None -> ());
      Printf.printf "swarm: server exit code %d, lifetime trace %s (%d bytes)\n"
        server_exit trace_path
        (try (Unix.stat trace_path).Unix.st_size with Unix.Unix_error _ -> 0);
      record ~section:"serve-swarm" ~name:"swarm"
        [
          ("clients", float_of_int swarm_clients);
          ("jobs", float_of_int expected);
          ("responses", float_of_int (List.length all));
          ("ok", float_of_int ok);
          ("degraded", float_of_int degraded);
          ("failed", float_of_int failed);
          ("cancelled", float_of_int cancelled);
          ("rejected", float_of_int rejected);
          ("p50_s", pct 0.50);
          ("p99_s", pct 0.99);
        ];
      (* Hard verdicts, enforced by make check: zero lost jobs (exactly
         one terminal response each), a working trace export, a clean
         server exit, and a bounded p99. *)
      let trace_ok =
        try (Unix.stat trace_path).Unix.st_size > 0 with Unix.Unix_error _ -> false
      in
      let p99_budget_s = 30.0 in
      let violations =
        (if List.length all <> expected then
           [ Printf.sprintf "%d responses for %d jobs" (List.length all) expected ]
         else [])
        @ (if server_exit <> 0 then
             [ Printf.sprintf "server exited %d" server_exit ]
           else [])
        @ (if not trace_ok then [ "lifetime Chrome trace missing/empty" ] else [])
        @
        if pct 0.99 > p99_budget_s then
          [ Printf.sprintf "p99 %.1fs over %.1fs budget" (pct 0.99) p99_budget_s ]
        else []
      in
      match violations with
      | [] ->
        Printf.printf
          "swarm OK: zero lost jobs, p99 within %.0fs, trace exported, clean exit\n"
          p99_budget_s
      | v ->
        Printf.eprintf "SWARM VIOLATION: %s\n" (String.concat "; " v);
        exit 1)

(* ------------------------------------------------------------------ *)
(* Serve crash: kill -9 recovery through the write-ahead journal       *)

module Journal = Hir_driver.Journal

(* The durability contract end to end, against the real binary: an
   8-client swarm hammers a journaled `hirc serve` (with 10% injected
   faults on every journal.* point), the server is SIGKILLed mid-swarm,
   restarted on the same journal, and every client recovers every job
   through the poll/resubmit protocol.  Verdicts: 100% of jobs reach a
   terminal result with Verilog byte-identical to a fault-free direct
   compile, the restarted server drains to a clean exit 0, and a
   separate unfaulted SIGTERM phase proves the drain contract (late
   compiles rejected "shutting-down", exit 0, journal replay finds
   zero incomplete jobs). *)

let crash_clients = 8
let crash_jobs_per_client = 12
let crash_fault_spec = "journal.append=0.1,journal.mark=0.1,journal.replay=0.1"

let serve_crash ~seed ~hirc () =
  header
    (Printf.sprintf
       "Serve crash: %d clients x %d jobs, kill -9 + journal replay, faults %s \
        (seed %d)"
       crash_clients crash_jobs_per_client crash_fault_spec seed);
  if not (Sys.file_exists hirc) then
    failwith (Printf.sprintf "hirc binary not found at %s (pass --hirc PATH)" hirc);
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-crash-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists tmp) then Unix.mkdir tmp 0o755;
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* The fault-free reference: a direct in-process compile of each
     kernel.  Byte-identity of every served result against this is the
     determinism half of the recovery contract.  The multi-megabyte
     kernels are left out to keep 96 Verilog-bearing responses cheap. *)
  let baseline =
    List.filter_map
      (fun k ->
        let name = k.Hir_kernels.Kernels.name in
        let job =
          Driver.job_of_builder
            ~pipeline:(Pipeline.default ~optimize:true)
            ~name k.Hir_kernels.Kernels.build
        in
        match Driver.compile_job job with
        | Ok o when String.length o.Driver.verilog <= 400_000 ->
          Some (name, o.Driver.verilog)
        | _ -> None)
      Hir_kernels.Kernels.all
  in
  if baseline = [] then failwith "no small kernels for the crash swarm";
  let kernel_names = List.map fst baseline in
  Printf.printf "baseline: %d kernel(s) compiled fault-free for byte comparison\n%!"
    (List.length kernel_names);
  let kernel_of idx i =
    List.nth kernel_names ((idx + (3 * i)) mod List.length kernel_names)
  in
  let client_name idx = Printf.sprintf "c%d" idx in
  let job_id idx i = Printf.sprintf "c%d-j%d" idx i in
  let sock = Filename.concat tmp "crash.sock" in
  let journal_dir = Filename.concat tmp "journal" in
  let cache_dir = Filename.concat tmp "cache" in
  let spawn_server extra =
    if Sys.file_exists sock then Unix.unlink sock;
    let argv =
      [ hirc; "serve"; "--socket"; sock; "-j"; "2"; "--queue-depth"; "256" ] @ extra
    in
    Unix.create_process hirc (Array.of_list argv) Unix.stdin Unix.stdout Unix.stderr
  in
  let wait_sock () =
    let rec go n =
      if n = 0 then failwith "server socket never appeared";
      if not (Sys.file_exists sock) then begin
        Unix.sleepf 0.05;
        go (n - 1)
      end
    in
    go 400
  in
  let rec connect_retry n =
    match Protocol.Client.connect_unix sock with
    | c -> c
    | exception (Unix.Unix_error _ | Sys_error _) when n > 0 ->
      Unix.sleepf 0.05;
      connect_retry (n - 1)
  in
  let send_compile c ~client ~id ~kernel =
    Protocol.Client.send c
      (Protocol.Json.Obj
         [
           ("op", Protocol.Json.Str "compile");
           ("client", Protocol.Json.Str client);
           ("id", Protocol.Json.Str id);
           ("kernel", Protocol.Json.Str kernel);
           ("verilog", Protocol.Json.Bool true);
         ])
  in
  (* (client, id) -> (status, verilog option); both phases fill it. *)
  let results : (string * string, string * string option) Hashtbl.t =
    Hashtbl.create 128
  in
  let results_mu = Mutex.create () in
  let record_result key v =
    Mutex.lock results_mu;
    if not (Hashtbl.mem results key) then Hashtbl.replace results key v;
    Mutex.unlock results_mu
  in
  let faulted_args =
    [
      "--journal"; journal_dir; "--cache-dir"; cache_dir; "--inject";
      crash_fault_spec; "--inject-seed"; string_of_int seed;
    ]
  in

  (* ---- phase A: swarm, then kill -9 mid-flight ---- *)
  let pid = spawn_server faulted_args in
  wait_sock ();
  let client_a idx () =
    match connect_retry 20 with
    | exception _ -> ()
    | c ->
      (try
         for i = 0 to crash_jobs_per_client - 1 do
           send_compile c ~client:(client_name idx) ~id:(job_id idx i)
             ~kernel:(kernel_of idx i)
         done;
         let remaining = ref crash_jobs_per_client in
         while !remaining > 0 do
           match Protocol.Client.recv c with
           | None -> remaining := 0  (* server died: phase B recovers *)
           | Some j -> (
             match
               ( Protocol.Json.field_str j "event",
                 Protocol.Json.field_str j "id",
                 Protocol.Json.field_str j "reason" )
             with
             | Some "result", Some id, None ->
               let status =
                 Option.value ~default:"?" (Protocol.Json.field_str j "status")
               in
               record_result (client_name idx, id)
                 (status, Protocol.Json.field_str j "verilog");
               decr remaining
             | _ -> ())
         done
       with _ -> ());
      (try Protocol.Client.close c with _ -> ())
  in
  let swarm = List.init crash_clients (fun idx -> Domain.spawn (client_a idx)) in
  (* Kill once a slice of the swarm has completed: late enough that the
     journal holds both done marks and in-flight admits, early enough
     that plenty of admitted work is still pending. *)
  let completed_now () =
    match connect_retry 1 with
    | exception _ -> None
    | p ->
      let r =
        try
          Protocol.Client.send p
            (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
          match Protocol.Client.recv p with
          | Some m ->
            Option.bind (Protocol.Json.mem "jobs" m) (fun jobs ->
                Protocol.Json.field_int jobs "completed")
          | None -> None
        with _ -> None
      in
      (try Protocol.Client.close p with _ -> ());
      r
  in
  let kill_after = (crash_clients * crash_jobs_per_client) / 8 in
  let rec kill_watch n =
    if n = 0 then ()  (* kill regardless: recovery must cope either way *)
    else
      match completed_now () with
      | Some c when c >= kill_after -> ()
      | _ ->
        Unix.sleepf 0.05;
        kill_watch (n - 1)
  in
  kill_watch 1200;
  Unix.kill pid Sys.sigkill;
  (match Unix.waitpid [] pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, st ->
    violate "phase A: expected SIGKILL death, got %s"
      (match st with
      | Unix.WEXITED n -> Printf.sprintf "exit %d" n
      | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
      | Unix.WSTOPPED n -> Printf.sprintf "stop %d" n));
  List.iter Domain.join swarm;
  let phase_a = Hashtbl.length results in
  Printf.printf "phase A: killed server (pid %d) with %d/%d responses delivered\n%!"
    pid phase_a
    (crash_clients * crash_jobs_per_client);

  (* ---- phase B: restart on the same journal, recover everything ---- *)
  let pid = spawn_server faulted_args in
  wait_sock ();
  (* Per job: poll until a terminal result; "unknown" means the admit
     never reached the journal (or its record was faulted away), so
     resubmit — idempotency makes over-resubmission safe. *)
  let recover_client idx =
    let c = connect_retry 40 in
    let client = client_name idx in
    for i = 0 to crash_jobs_per_client - 1 do
      let id = job_id idx i in
      if not (Hashtbl.mem results (client, id)) then begin
        let deadline = Unix.gettimeofday () +. 90. in
        let send_poll () =
          Protocol.Client.send c
            (Protocol.Json.Obj
               [
                 ("op", Protocol.Json.Str "poll");
                 ("client", Protocol.Json.Str client);
                 ("id", Protocol.Json.Str id);
               ])
        in
        let rec await () =
          if Unix.gettimeofday () > deadline then
            violate "phase B: %s/%s never resolved" client id
          else begin
            send_poll ();
            match Protocol.Client.recv c with
            | None -> violate "phase B: server hung up on %s" client
            | Some j -> (
              match
                ( Protocol.Json.field_str j "event",
                  Protocol.Json.field_str j "id",
                  Protocol.Json.field_str j "reason",
                  Protocol.Json.field_str j "state" )
              with
              | Some "result", Some rid, None, _ when rid = id ->
                let status =
                  Option.value ~default:"?" (Protocol.Json.field_str j "status")
                in
                record_result (client, id) (status, Protocol.Json.field_str j "verilog")
              | Some "poll", Some rid, _, Some "pending" when rid = id ->
                Unix.sleepf 0.05;
                await ()
              | Some "poll", Some rid, _, Some "unknown" when rid = id ->
                send_compile c ~client ~id ~kernel:(kernel_of idx i);
                Unix.sleepf 0.05;
                await ()
              | _ -> await ()  (* duplicate-id races, stray frames *))
          end
        in
        await ()
      end
    done;
    Protocol.Client.close c
  in
  for idx = 0 to crash_clients - 1 do
    recover_client idx
  done;
  (* Metrics for the log, then a graceful shutdown. *)
  let probe = connect_retry 40 in
  Protocol.Client.send probe (Protocol.Json.Obj [ ("op", Protocol.Json.Str "metrics") ]);
  (match Protocol.Client.recv probe with
  | Some m -> Printf.printf "phase B: server metrics: %s\n%!" (Protocol.Json.to_string m)
  | None -> ());
  Protocol.Client.send probe (Protocol.Json.Obj [ ("op", Protocol.Json.Str "shutdown") ]);
  ignore (try Protocol.Client.recv probe with _ -> None);
  (try Protocol.Client.close probe with _ -> ());
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> violate "phase B: restarted server exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
    violate "phase B: restarted server killed by signal %d" n);
  (* ---- verdicts: zero lost jobs, byte-identical output ---- *)
  let expected = crash_clients * crash_jobs_per_client in
  let got = Hashtbl.length results in
  if got <> expected then violate "recovered %d of %d jobs" got expected;
  let mismatches = ref 0 and compared = ref 0 in
  for idx = 0 to crash_clients - 1 do
    for i = 0 to crash_jobs_per_client - 1 do
      match Hashtbl.find_opt results (client_name idx, job_id idx i) with
      | None -> ()
      | Some (status, verilog) -> (
        if status <> "ok" && status <> "degraded" then
          violate "%s: terminal status %s" (job_id idx i) status;
        match verilog with
        | None -> violate "%s: result carried no Verilog" (job_id idx i)
        | Some v ->
          incr compared;
          if v <> List.assoc (kernel_of idx i) baseline then begin
            incr mismatches;
            violate "%s: Verilog differs from fault-free baseline" (job_id idx i)
          end)
    done
  done;
  let r = Journal.replay ~dir:journal_dir in
  Printf.printf
    "phase B: %d/%d jobs terminal, %d byte-compared, %d mismatches; journal: %d \
     record(s), %d quarantined, %d still pending (lost done-marks are re-done, \
     not lost)\n%!"
    got expected !compared !mismatches r.Journal.rr_records r.Journal.rr_quarantined
    (List.length r.Journal.rr_pending);

  (* ---- phase C: SIGTERM drain, no faults ---- *)
  let sock2 = Filename.concat tmp "drain.sock" in
  let journal2 = Filename.concat tmp "journal-drain" in
  let cache2 = Filename.concat tmp "cache-drain" in
  if Sys.file_exists sock2 then Unix.unlink sock2;
  let argv =
    [
      hirc; "serve"; "--socket"; sock2; "-j"; "2"; "--journal"; journal2;
      "--cache-dir"; cache2; "--drain-deadline"; "60";
    ]
  in
  let pid = Unix.create_process hirc (Array.of_list argv) Unix.stdin Unix.stdout Unix.stderr in
  let rec wait_sock2 n =
    if n = 0 then failwith "drain server socket never appeared";
    if not (Sys.file_exists sock2) then begin
      Unix.sleepf 0.05;
      wait_sock2 (n - 1)
    end
  in
  wait_sock2 400;
  let c = Protocol.Client.connect_unix sock2 in
  (* gemm is the slowest cold compile by far; one per worker pins the
     whole pool, so the SIGTERM is guaranteed to land with the pool
     genuinely mid-flight and the drain window stays open long enough
     for the late-client rejection. *)
  let drain_kernels =
    "gemm" :: "gemm" :: List.filteri (fun i _ -> i < 4) kernel_names
  in
  let drain_jobs = List.length drain_kernels in
  List.iteri
    (fun i kernel ->
      Protocol.Client.send c
        (Protocol.Json.Obj
           [
             ("op", Protocol.Json.Str "compile");
             ("client", Protocol.Json.Str "d0");
             ("id", Protocol.Json.Str (Printf.sprintf "d0-j%d" i));
             ("kernel", Protocol.Json.Str kernel);
           ]))
    drain_kernels;
  Unix.sleepf 0.1;  (* cold compiles: the pool is mid-flight now *)
  Unix.kill pid Sys.sigterm;
  Unix.sleepf 0.1;
  (* A late client must get an explicit shutting-down rejection (the
     listener stays open during the drain precisely for this). *)
  (match Protocol.Client.connect_unix sock2 with
  | exception _ -> violate "phase C: could not connect during drain"
  | late ->
    Protocol.Client.send late
      (Protocol.Json.Obj
         [
           ("op", Protocol.Json.Str "compile");
           ("id", Protocol.Json.Str "late");
           ("kernel", Protocol.Json.Str (List.hd kernel_names));
         ]);
    (match try Protocol.Client.recv late with _ -> None with
    | Some j
      when Protocol.Json.field_str j "status" = Some "rejected"
           && Protocol.Json.field_str j "reason" = Some "shutting-down" ->
      ()
    | Some j ->
      violate "phase C: late compile got %s, wanted shutting-down"
        (Protocol.Json.to_string j)
    | None -> violate "phase C: no response to the late compile");
    try Protocol.Client.close late with _ -> ());
  (* The in-flight jobs must still finish (or be cancelled at the drain
     deadline — with 60s to spare they finish). *)
  let terminal = ref 0 in
  (try
     while !terminal < drain_jobs do
       match Protocol.Client.recv c with
       | None -> raise Exit
       | Some j ->
         if
           Protocol.Json.field_str j "event" = Some "result"
           && Protocol.Json.field_str j "reason" = None
         then incr terminal
     done
   with _ -> ());
  if !terminal <> drain_jobs then
    violate "phase C: %d of %d in-flight jobs finished before exit" !terminal
      drain_jobs;
  (try Protocol.Client.close c with _ -> ());
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> violate "phase C: drained server exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
    violate "phase C: drained server killed by signal %d" n);
  let r2 = Journal.replay ~dir:journal2 in
  if r2.Journal.rr_pending <> [] then
    violate "phase C: %d incomplete job(s) in the journal after drain"
      (List.length r2.Journal.rr_pending);
  Printf.printf "phase C: drain: %d in-flight finished, journal pending %d\n%!"
    !terminal
    (List.length r2.Journal.rr_pending);
  record ~section:"serve-crash" ~name:(Printf.sprintf "crash-seed%d" seed)
    [
      ("jobs", float_of_int expected);
      ("phase_a_responses", float_of_int phase_a);
      ("recovered", float_of_int got);
      ("byte_compared", float_of_int !compared);
      ("mismatches", float_of_int !mismatches);
      ("journal_pending_after_drain", float_of_int (List.length r2.Journal.rr_pending));
    ];
  match List.rev !violations with
  | [] ->
    Printf.printf
      "crash OK: kill -9 lost nothing (%d/%d jobs, %d byte-identical), SIGTERM \
       drained cleanly\n"
      got expected !compared
  | v ->
    Printf.eprintf "CRASH VIOLATION: %s\n" (String.concat "; " v);
    exit 1

(* ------------------------------------------------------------------ *)
(* Incremental recompilation: edit 1 of 8 kernels                      *)

(* The headline scenario for the keyed fingerprint chain (DESIGN.md):
   every benchmark kernel's functions linked into ONE source module,
   compiled as eight jobs (one per top), then a single kernel's loop
   bound edited and the batch re-run against the warm cache.  The seven
   untouched kernels must re-link from their per-function entries — the
   warm batch is budgeted at [incremental_budget] of the cold one
   (expected shape ~1/8) and its outputs must be byte-identical to a
   cache-less compile of the edited source.  Structural reuse (7 link
   hits, exactly 1 re-optimized function) is checked too, so a timing
   fluke can't mask a cache regression. *)
let incremental_budget = 0.25

let incremental () =
  header "Incremental recompile: edit 1 of 8 kernels, warm batch vs cold batch";
  (* A fixed 8-kernel workload: the budget and the structural
     expectations (7 link hits, 1 re-optimized function) are calibrated
     against this set.  Every job parses the whole combined source, a
     per-job cost no cache can avoid, so adding kernels to the registry
     (e.g. the large systolic design) would shift the warm/cold balance
     of a timing gate that is about cache reuse, not suite size. *)
  let workload =
    List.filter
      (fun k -> k.Hir_kernels.Kernels.name <> "systolic")
      Hir_kernels.Kernels.all
  in
  let tops, texts =
    List.fold_left
      (fun (tops, texts) k ->
        let m, f = k.Hir_kernels.Kernels.build () in
        let fns =
          List.map
            (fun f -> (Ops.func_name f, Printer.op_to_string f))
            (Ir.Walk.find_all m "hir.func")
        in
        (tops @ [ Ops.func_name f ], texts @ fns))
      ([], []) workload
  in
  let combined texts = Hir_driver.Incr.module_of_texts texts Printer.op_to_string in
  let replace_first ~needle ~by s =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> failwith ("incremental: needle not found: " ^ needle)
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
  in
  (* The edit: shrink elementwise_max's loop bound 64 -> 48, a real
     semantic change confined to one function. *)
  let edited = "elementwise_max" in
  let texts_edited =
    List.map
      (fun (n, t) ->
        if n = edited then (n, replace_first ~needle:"{value = 64}" ~by:"{value = 48}" t)
        else (n, t))
      texts
  in
  let src_cold = combined texts and src_warm = combined texts_edited in
  let pipeline = Pipeline.default ~optimize:true in
  let jobs src =
    Array.of_list
      (List.map
         (fun top -> Driver.job_of_text ~top ~pipeline ~name:("incr-" ^ top) src)
         tops)
  in
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-incr-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists tmp) then Unix.mkdir tmp 0o755;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let verilogs label (result : Driver.batch_result) =
    Array.to_list result.Driver.outcomes
    |> List.map (function
         | Ok (o : Driver.output) -> (o.Driver.top_name, o.Driver.verilog)
         | Error e ->
           failwith
             (Printf.sprintf "incremental: %s compile failed: %s" label
                (Driver.error_to_string e)))
  in
  (* One run of the scenario against a fresh cache.  The structural
     checks (byte-identity, 7 link hits, 1 re-optimized function) are
     load-independent and must hold on EVERY attempt; only the timing
     ratio is allowed a retry below. *)
  let attempt n =
    let cache = Cache.create ~dir:(Filename.concat tmp (Printf.sprintf "cache%d" n)) () in
    let cold, cold_s = time (fun () -> Driver.batch ~cache ~workers:1 (jobs src_cold)) in
    ignore (verilogs "cold" cold);
    let before = Cache.kind_stats cache in
    let warm, warm_s = time (fun () -> Driver.batch ~cache ~workers:1 (jobs src_warm)) in
    let warm_vs = verilogs "warm" warm in
    let base_vs = verilogs "baseline" (Driver.batch ~workers:1 (jobs src_warm)) in
    let delta kind field =
      let stat l = List.assoc kind l in
      field (stat (Cache.kind_stats cache)) - field (stat before)
    in
    let link_hits = delta Cache.Link (fun s -> s.Cache.k_hits) in
    let fn_stores = delta Cache.Fn (fun s -> s.Cache.k_stores) in
    let structural =
      (if warm_vs <> base_vs then
         [ "warm outputs differ from cache-less compile of the edited source" ]
       else [])
      @ (if link_hits < 7 then
           [ Printf.sprintf "expected 7 link hits on the warm batch, saw %d" link_hits ]
         else [])
      @
      if fn_stores <> 1 then
        [ Printf.sprintf "expected exactly 1 function re-optimized, saw %d" fn_stores ]
      else []
    in
    if structural <> [] then begin
      Printf.eprintf "INCREMENTAL VIOLATION: %s\n" (String.concat "; " structural);
      exit 1
    end;
    (cold_s, warm_s, link_hits, fn_stores)
  in
  (* The ratio gate is a timing measurement on a possibly-loaded
     machine: take the best of up to 3 attempts before declaring a
     perf regression. *)
  let rec measure n best =
    let (cold_s, warm_s, _, _) as r = attempt n in
    let best =
      match best with
      | Some ((bc, bw, _, _) as b) when bw /. bc <= warm_s /. cold_s -> b
      | _ -> r
    in
    let bc, bw, _, _ = best in
    if bw /. bc <= incremental_budget || n >= 3 then (best, n)
    else measure (n + 1) (Some best)
  in
  let (cold_s, warm_s, link_hits, fn_stores), attempts = measure 1 None in
  let ratio = warm_s /. cold_s in
  Printf.printf "cold batch (8 kernels, 1 worker)   %8.1f ms\n" (cold_s *. 1e3);
  Printf.printf "warm batch (1 kernel edited)       %8.1f ms   ratio %.3f (budget %.2f, %d attempt%s)\n"
    (warm_s *. 1e3) ratio incremental_budget attempts
    (if attempts = 1 then "" else "s");
  Printf.printf "reuse: %d link hits, %d function re-optimized\n" link_hits fn_stores;
  record ~section:"incremental" ~name:"edit-1-of-8"
    [ ("cold_s", cold_s); ("warm_s", warm_s); ("ratio", ratio) ];
  if ratio > incremental_budget then begin
    Printf.eprintf "INCREMENTAL VIOLATION: warm/cold ratio %.3f over %.2f budget\n"
      ratio incremental_budget;
    exit 1
  end;
  Printf.printf "incremental OK: byte-identical, %.1f%% of cold\n" (ratio *. 100.)

(* ------------------------------------------------------------------ *)
(* Hierarchical emission scaling: flat vs shared-definition codegen.

   The definition cache outlines the N structurally identical PE bodies
   of an unrolled design into one shared module instantiated N times,
   so emitted bytes should grow ~O(n) on an n x n grid where the flat
   emitter grows ~O(n^2).  The gate is on bytes, which are
   deterministic: GEMM 16x16 must come out at least [emit_hier_floor]
   times smaller than the flat emission.  Wall-times are recorded for
   the trajectory but not gated (machine-load dependent). *)

let emit_hier_floor = 5.0

let emit_scaling () =
  header "Hierarchical emission: flat vs shared-definition codegen (bytes, ms)";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure ~hier build =
    Ir.with_isolated_ids (fun () ->
        let module_op, top = build () in
        let (emitted, text), s =
          time (fun () ->
              let emitted = Emit.compile ~optimize:true ~hier ~module_op ~top () in
              (emitted, Hir_verilog.Pretty.design_to_string emitted.Emit.design))
        in
        ( String.length text,
          List.length emitted.Emit.design.Hir_verilog.Ast.modules,
          s ))
  in
  Printf.printf "%-10s %4s  %12s %9s   %12s %9s %8s  %7s\n" "kernel" "n"
    "flat bytes" "flat ms" "hier bytes" "hier ms" "modules" "ratio";
  let row kernel n build =
    let fb, _, fs = measure ~hier:false build in
    let hb, hm, hs = measure ~hier:true build in
    let ratio = float_of_int fb /. float_of_int hb in
    Printf.printf "%-10s %4d  %12d %9.1f   %12d %9.1f %8d  %6.2fx\n" kernel n fb
      (fs *. 1e3) hb (hs *. 1e3) hm ratio;
    record ~section:"emit-scaling"
      ~name:(Printf.sprintf "%s-%d" kernel n)
      [
        ("flat_bytes", float_of_int fb);
        ("hier_bytes", float_of_int hb);
        ("flat_s", fs);
        ("hier_s", hs);
        ("modules", float_of_int hm);
        ("ratio", ratio);
      ];
    ratio
  in
  let sizes = [ 4; 8; 16 ] in
  let gemm_ratios =
    List.map (fun n -> (n, row "gemm" n (fun () -> Hir_kernels.Gemm.build ~n ()))) sizes
  in
  List.iter
    (fun n -> ignore (row "systolic" n (fun () -> Hir_kernels.Systolic.build ~n ())))
    sizes;
  let gate = List.assoc 16 gemm_ratios in
  if gate < emit_hier_floor then begin
    Printf.eprintf
      "EMIT-SCALING VIOLATION: GEMM 16x16 hier/flat byte ratio %.2fx under the %.1fx floor\n"
      gate emit_hier_floor;
    exit 1
  end;
  Printf.printf "emit-scaling OK: GEMM 16x16 %.2fx smaller (floor %.1fx)\n" gate
    emit_hier_floor

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let bechamel () =
  header "Bechamel micro-benchmarks (one test per table)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      (* Table 4: the optimization pipeline on the transpose design. *)
      Test.make ~name:"table4/precision-pipeline"
        (Staged.stage (fun () ->
             let m, _ = Hir_kernels.Transpose.build () in
             ignore (Unroll.run m);
             ignore (Passes.run_canonicalize m);
             ignore (Precision_opt.run m)));
      (* Table 5: resource estimation of a compiled design. *)
      Test.make ~name:"table5/resource-model"
        (Staged.stage (fun () ->
             ignore (hir_usage ~optimize:true Hir_kernels.Transpose.build)));
      (* Table 6: the two compile pipelines. *)
      Test.make ~name:"table6/hir-compile"
        (Staged.stage (fun () -> ignore (hir_compile_once Hir_kernels.Transpose.build)));
      Test.make ~name:"table6/hls-compile"
        (Staged.stage (fun () -> ignore (hls_compile_once Hls.Suite.transpose)));
      (* Figures 1-2: the schedule verifier. *)
      Test.make ~name:"figures/schedule-verifier"
        (Staged.stage (fun () ->
             let m, _ = Hir_kernels.Stencil1d.build () in
             let engine = Diagnostic.Engine.create () in
             Verify_schedule.verify_module engine m));
    ]
  in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "  %-32s %12.1f ns/run\n" name ns
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let () =
  let args = Array.to_list Sys.argv in
  let has flag value =
    let rec go = function
      | f :: v :: _ when f = flag && v = value -> true
      | _ :: rest -> go rest
      | [] -> false
    in
    go args
  in
  let json_path =
    let rec go = function
      | "--json" :: path :: _ -> Some path
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let all = List.length args = 1 || (List.length args = 3 && json_path <> None) in
  if all || has "--table" "2" then table2 ();
  if all || has "--figure" "1" then figure1 ();
  if all || has "--figure" "2" then figure2 ();
  if all || has "--figure" "3" then figure3 ();
  if all || List.mem "--check" args then check ();
  if all || List.mem "--ablation" args then ablation ();
  if all || List.mem "--scaling" args then scaling ();
  if all || List.mem "--canonicalize-scaling" args then canonicalize_scaling ();
  if all || List.mem "--sim-scaling" args then sim_scaling ();
  if all || List.mem "--incremental" args then incremental ();
  if all || List.mem "--emit-scaling" args then emit_scaling ();
  if all || has "--table" "4" then table4 ();
  if all || has "--table" "5" then table5 ();
  if all || has "--table" "6" then table6 ();
  if all || has "--table" "6" || List.mem "--stages" args then stages ();
  if List.mem "--serve-swarm" args then serve_swarm ();
  (if List.mem "--serve-crash" args then
     let opt_val flag default =
       let rec go = function
         | f :: v :: _ when f = flag -> v
         | _ :: rest -> go rest
         | [] -> default
       in
       go args
     in
     serve_crash
       ~seed:(int_of_string (opt_val "--crash-seed" "1"))
       ~hirc:(opt_val "--hirc" "_build/default/bin/hirc.exe")
       ());
  if all || List.mem "--bechamel" args then bechamel ();
  Option.iter write_json json_path;
  line ()
