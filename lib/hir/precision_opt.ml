(* Automatic precision (bit-width) optimization — paper Section 6.3 and
   Table 4.

   A forward value-range analysis infers, for every integer SSA value,
   an interval from constant loop bounds and constant operands; any
   value whose interval is non-negative and fits in fewer bits than its
   declared type is narrowed in place.  HIR's Verilog-like mixed-width
   semantics (operands zero-extend to the consumer's width, comparisons
   are unsigned) make the narrowing a pure type change: no coercion ops
   are inserted, and the code generator simply emits narrower wires,
   registers and counters. *)

open Hir_ir

type range = { lo : int; hi : int }

let bits_for n =
  if n <= 0 then 1
  else
    let rec go k v = if v = 0 then k else go (k + 1) (v lsr 1) in
    go 0 n

(* Clamp to avoid OCaml int overflow corrupting the analysis: ranges
   wider than 2^40 are treated as unknown. *)
let big = 1 lsl 40

let valid r = r.lo >= -big && r.hi <= big && r.lo <= r.hi

let combine f a b =
  match (a, b) with
  | Some a, Some b ->
    let candidates = [ f a.lo b.lo; f a.lo b.hi; f a.hi b.lo; f a.hi b.hi ] in
    let r =
      {
        lo = List.fold_left min max_int candidates;
        hi = List.fold_left max min_int candidates;
      }
    in
    if valid r then Some r else None
  | _ -> None

let analyze_ranges func =
  let ranges : (int, range) Hashtbl.t = Hashtbl.create 64 in
  let get v = Hashtbl.find_opt ranges (Ir.Value.id v) in
  let set v r = match r with Some r when valid r -> Hashtbl.replace ranges (Ir.Value.id v) r | _ -> () in
  let const_range v =
    match Ops.as_constant v with Some c -> Some { lo = c; hi = c } | None -> get v
  in
  let rec walk_block block = List.iter walk_op (Ir.Block.ops block)
  and walk_op op =
    (match Ir.Op.name op with
    | "hir.constant" ->
      let c = Ops.constant_value op in
      set (Ir.Op.result op 0) (Some { lo = c; hi = c })
    | "hir.for" -> (
      let iv = Ops.loop_induction_var op in
      match (const_range (Ops.for_lb op), const_range (Ops.for_ub op)) with
      | Some lb, Some ub when lb.lo >= 0 && ub.hi >= lb.lo ->
        set iv (Some { lo = lb.lo; hi = max lb.lo (ub.hi - 1) })
      | _ -> ())
    | "hir.delay" -> set (Ir.Op.result op 0) (const_range (Ops.delay_input op))
    | "hir.add" ->
      set (Ir.Op.result op 0)
        (combine ( + ) (const_range (Ir.Op.operand op 0)) (const_range (Ir.Op.operand op 1)))
    | "hir.sub" ->
      set (Ir.Op.result op 0)
        (combine ( - ) (const_range (Ir.Op.operand op 0)) (const_range (Ir.Op.operand op 1)))
    | "hir.mult" ->
      set (Ir.Op.result op 0)
        (combine ( * ) (const_range (Ir.Op.operand op 0)) (const_range (Ir.Op.operand op 1)))
    | "hir.and" -> (
      (* x & mask is bounded by the mask when the mask is a
         non-negative constant. *)
      let mask a b =
        match const_range b with
        | Some { lo; hi } when lo = hi && lo >= 0 -> Some { lo = 0; hi = lo }
        | _ -> (
          match const_range a with
          | Some { lo; hi } when lo = hi && lo >= 0 -> Some { lo = 0; hi = lo }
          | _ -> None)
      in
      set (Ir.Op.result op 0) (mask (Ir.Op.operand op 0) (Ir.Op.operand op 1)))
    | "hir.shl" -> (
      match (const_range (Ir.Op.operand op 0), const_range (Ir.Op.operand op 1)) with
      | Some a, Some { lo = k; hi = k' } when k = k' && k >= 0 && k < 40 && a.lo >= 0 ->
        let r = { lo = a.lo lsl k; hi = a.hi lsl k } in
        set (Ir.Op.result op 0) (if valid r then Some r else None)
      | _ -> ())
    | "hir.shrl" | "hir.shra" -> (
      match (const_range (Ir.Op.operand op 0), const_range (Ir.Op.operand op 1)) with
      | Some a, Some { lo = k; hi = k' } when k = k' && k >= 0 && a.lo >= 0 ->
        set (Ir.Op.result op 0) (Some { lo = a.lo asr k; hi = a.hi asr k })
      | _ -> ())
    | "hir.select" ->
      (match
         (const_range (Ir.Op.operand op 1), const_range (Ir.Op.operand op 2))
       with
      | Some a, Some b ->
        set (Ir.Op.result op 0) (Some { lo = min a.lo b.lo; hi = max a.hi b.hi })
      | _ -> ())
    | name when List.mem name Ops.comparison_ops ->
      set (Ir.Op.result op 0) (Some { lo = 0; hi = 1 })
    | _ -> ());
    List.iter
      (fun r -> List.iter walk_block (Ir.Region.blocks r))
      (Ir.Op.regions op)
  in
  walk_block (Ops.func_body func);
  ranges

(* ------------------------------------------------------------------ *)
(* Narrowing                                                           *)

let narrow_func rw func =
  let ranges = analyze_ranges func in
  let narrow v =
    match (Ir.Value.typ v, Hashtbl.find_opt ranges (Ir.Value.id v)) with
    | Typ.Int w, Some { lo; hi } when lo >= 0 ->
      let needed = bits_for hi in
      if needed < w then begin
        Rewrite.Rewriter.set_value_type rw v (Typ.Int needed);
        Rewrite.Rewriter.bump rw "precision.narrow"
      end
    | _ -> ()
  in
  let rec walk_block block =
    (* Loop induction variables are block args. *)
    List.iter walk_op (Ir.Block.ops block)
  and walk_op op =
    (match Ir.Op.name op with
    | "hir.for" -> narrow (Ops.loop_induction_var op)
    | "hir.delay" ->
      (* A delay result always mirrors its (possibly narrowed) input
         type: it is the same wires, later. *)
      let input_t = Ir.Value.typ (Ops.delay_input op) in
      if not (Typ.equal (Ir.Value.typ (Ir.Op.result op 0)) input_t) then begin
        Rewrite.Rewriter.set_value_type rw (Ir.Op.result op 0) input_t;
        Rewrite.Rewriter.bump rw "precision.delay-mirror"
      end
    | name
      when List.mem name Ops.binary_compute_ops
           || name = "hir.select" ->
      narrow (Ir.Op.result op 0)
    | _ -> ());
    List.iter (fun r -> List.iter walk_block (Ir.Region.blocks r)) (Ir.Op.regions op)
  in
  walk_block (Ops.func_body func)

let run_rw rw =
  List.iter
    (fun f -> if not (Ops.is_extern_func f) then narrow_func rw f)
    (Ops.module_funcs (Rewrite.Rewriter.root rw));
  Rewrite.Rewriter.changed rw

let run module_op = run_rw (Rewrite.Rewriter.create ~root:module_op ())

let pass =
  Pass.make ~name:"precision-opt"
    ~description:"Narrow integer widths from value ranges (Section 6.3)"
    (fun module_op _engine ->
      let rw = Rewrite.Rewriter.create ~root:module_op () in
      let changed = run_rw rw in
      List.iter
        (fun (name, n) -> Pass.record_counter ~n name)
        (Rewrite.Rewriter.counters rw);
      changed)
