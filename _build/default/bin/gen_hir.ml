(* Regenerates the sample textual designs in examples/designs/. *)

open Hir_ir
open Hir_dialect

let () = Ops.register ()

let write path m =
  let oc = open_out path in
  output_string oc (Printer.op_to_string m);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

(* The broken array-add of Figure 1a, for demoing `hirc verify`. *)
let err_add () =
  let m = Builder.create_module () in
  let memref port = Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port () in
  let _ =
    Builder.func m ~name:"Array_Add"
      ~args:
        [
          Builder.arg "A" (memref Types.Read);
          Builder.arg "B" (memref Types.Read);
          Builder.arg "C" (memref Types.Write);
        ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c128 = Builder.constant b 128 in
          let _ =
            Builder.for_loop b ~iv_width:8 ~iv_hint:"i" ~lb:c0 ~ub:c128 ~step:c1
              ~at:Builder.(t @>> 1)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
                let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
                let vc = Builder.add b va vb in
                Builder.mem_write b vc c [ i ] ~at:Builder.(ti @>> 1))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  m

let () =
  write "examples/designs/transpose.hir" (fst (Hir_kernels.Transpose.build ()));
  write "examples/designs/stencil_1d.hir" (fst (Hir_kernels.Stencil1d.build ()));
  write "examples/designs/fifo.hir" (fst (Hir_kernels.Fifo.build ()));
  write "examples/designs/err_add.hir" (err_add ())
