lib/ir/printer.ml: Array Attribute Block Format Hashtbl Ir List Location Printf String Typ
