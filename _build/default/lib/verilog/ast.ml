(* AST for the synthesizable Verilog subset emitted by the HIR code
   generator and consumed by the RTL simulator and the resource model.

   Width semantics follow Verilog-2001's context-determined rules,
   restricted to what the code generator produces:
   - an assignment evaluates its RHS at the width of the LHS;
   - arithmetic/bitwise operands extend to the context width;
   - comparisons are unsigned and self-determined at the wider operand;
   - concatenation and slices are self-determined. *)

type unop =
  | Not  (* bitwise ~ *)
  | Red_or  (* |x *)
  | Red_and  (* &x *)

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Log_and
  | Log_or

type expr =
  | Const of Bitvec.t
  | Ref of string
  | Index of string * expr  (* memory read: mem[addr] *)
  | Slice of expr * int * int  (* e[hi:lo] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Concat of expr list

type lvalue =
  | Lref of string
  | Lindex of string * expr

type stmt =
  | Nonblocking of lvalue * expr  (* q <= e, inside always @(posedge clk) *)
  | If of expr * stmt list * stmt list
  | Assert_stmt of { cond : expr; message : string }
      (* if (!(cond)) $error(message); — simulation-only check *)

(* Storage style, used by the resource model (and printed as a
   comment + RAM_STYLE attribute). *)
type mem_style = Style_bram | Style_lutram | Style_reg

type item =
  | Wire_decl of { name : string; width : int }
  | Reg_decl of { name : string; width : int }
  | Mem_decl of { name : string; width : int; depth : int; style : mem_style }
  | Assign of { target : string; expr : expr }
  | Always_ff of stmt list  (* always @(posedge clk) *)
  | Instance of {
      module_name : string;
      instance_name : string;
      connections : (string * expr) list;  (* port -> actual *)
    }
  | Comment of string

type direction = Input | Output

type port = { port_name : string; dir : direction; width : int }

type module_def = {
  mod_name : string;
  ports : port list;
  items : item list;
}

type design = { modules : module_def list; top : string }

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)

let const_int ~width n = Const (Bitvec.of_int ~width n)
let zero1 = const_int ~width:1 0
let one1 = const_int ~width:1 1

let band a b = Binop (And, a, b)
let bor a b = Binop (Or, a, b)
let bnot a = Unop (Not, a)

let rec or_list = function
  | [] -> zero1
  | [ e ] -> e
  | e :: rest -> Binop (Or, e, or_list rest)

(* Priority mux: first enabled source wins. *)
let rec priority_mux ~default = function
  | [] -> default
  | (en, v) :: rest -> Ternary (en, v, priority_mux ~default rest)

(* Natural (self-determined) width of an expression given a resolver
   for signal widths. *)
let rec natural_width ~signal_width expr =
  match expr with
  | Const b -> Bitvec.width b
  | Ref name -> signal_width name
  | Index (name, _) -> signal_width name
  | Slice (_, hi, lo) -> hi - lo + 1
  | Unop (Not, e) -> natural_width ~signal_width e
  | Unop ((Red_or | Red_and), _) -> 1
  | Binop ((Add | Sub | Mul | And | Or | Xor), a, b) ->
    max (natural_width ~signal_width a) (natural_width ~signal_width b)
  | Binop ((Shl | Shr), a, _) -> natural_width ~signal_width a
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | Log_and | Log_or), _, _) -> 1
  | Ternary (_, a, b) ->
    max (natural_width ~signal_width a) (natural_width ~signal_width b)
  | Concat es -> List.fold_left (fun acc e -> acc + natural_width ~signal_width e) 0 es
