(* `hirc serve` — a persistent compilation server on the service core.

   Architecture: one main-loop thread (the calling domain) owns every
   socket and does all protocol IO; compile work runs on the service
   core's worker domains.  The two meet through a completion queue and
   a self-pipe: [Service]'s on_complete callback (which runs on a
   worker) enqueues the completion and writes one byte into the pipe,
   which wakes the main loop's [select] so it can write the response
   frame from its own thread.  No socket is ever touched from two
   domains.

   Admission is continuous: a compile frame is submitted to the pool
   the moment it parses, and starts the moment a worker frees — there
   are no batch boundaries.  The pool's bounded queue turns saturation
   into an immediate `status:"rejected", reason:"overloaded"` frame
   (the client backs off and retries; nothing is silently queued or
   dropped).  Fair-share scheduling uses the client identity (the
   "client" field, or the connection for anonymous frames) as the
   service client id, so one greedy client cannot starve others.

   Durability ([cfg_journal]): every admitted job is recorded in a
   write-ahead journal before it runs and marked done on completion.
   On startup the journal is replayed — torn/corrupt records
   quarantined, admitted-but-incomplete jobs re-enqueued — so a
   kill -9 loses no admitted work; the content-addressed cache makes
   the redo cheap and [Ir.with_isolated_ids] makes it byte-identical.
   Completed results are retained (bounded by [cfg_max_finished]) so
   a finished id resubmitted with the same request digest returns the
   cached result (idempotent resubmission) and a reconnecting client
   can fetch results it missed via the `poll` op.  A resubmission of
   a finished id with a *different* digest is a `duplicate-id`
   rejection — an id is a promise about content.

   Graceful drain: SIGTERM or a `shutdown` frame stops admission
   (`shutting-down` rejections), finishes the in-flight jobs, and
   exits cleanly; jobs still unfinished at [cfg_drain_deadline] are
   cancelled through the cooperative-cancel path, so their journal
   records are marked (status "cancelled") and a replay after drain
   finds zero incomplete jobs.  A stuck-job watchdog cancels any
   running job that exceeds [cfg_watchdog_factor] x its deadline
   without reaching a guard checkpoint.

   Cancellation: an explicit cancel frame or a client disconnect
   cancels that connection's *anonymous* jobs — named-client jobs
   survive the disconnect (that is the point of the name) and their
   results wait in the finished table for a poll.  Every admitted job
   still produces exactly one completion (delivered, or retained if
   its connection is gone), which is the zero-lost-jobs invariant the
   swarm and crash benches pin.

   Probes: line-JSON {"op":"health"} / {"op":"metrics"} frames, or
   plain HTTP `GET /health` / `GET /metrics` on the same socket for
   curl-style monitoring.  Metrics surface queue depth, worker and
   cache counters, journal and watchdog counters, aggregated per-pass
   trace counters, and log-bucket latency histograms.  A Chrome trace
   of every job's spans over the whole server lifetime (bounded by
   [cfg_max_traces]) is written on shutdown. *)

type listen = Unix_path of string | Tcp of string * int

type config = {
  cfg_listen : listen;
  cfg_workers : int;
  cfg_max_depth : int;  (* bounded queue: admission limit *)
  cfg_cache : Cache.t option;
  cfg_default_deadline : float option;  (* per-job, unless the frame says *)
  cfg_retry : Driver.retry_policy;
  cfg_trace_path : string option;
  cfg_max_traces : int;  (* retain at most this many job traces *)
  cfg_journal : string option;  (* write-ahead job journal directory *)
  cfg_drain_deadline : float;  (* seconds before a drain cancels stragglers *)
  cfg_watchdog_factor : float;  (* cancel at factor x deadline; <=0 disables *)
  cfg_max_finished : int;  (* retained results for poll / idempotency *)
  cfg_tick : float;  (* select timeout: drain/watchdog scan period *)
  cfg_verbose : bool;
}

let default_config ~listen () =
  {
    cfg_listen = listen;
    cfg_workers = Scheduler.default_workers ();
    cfg_max_depth = 64;
    cfg_cache = None;
    cfg_default_deadline = None;
    cfg_retry = Driver.default_retry;
    cfg_trace_path = None;
    cfg_max_traces = 10_000;
    cfg_journal = None;
    cfg_drain_deadline = 30.0;
    cfg_watchdog_factor = 3.0;
    cfg_max_finished = 4096;
    cfg_tick = 1.0;
    cfg_verbose = false;
  }

(* What a worker needs to run one admitted job. *)
type job_ctx = {
  jc_conn : int;  (* submitting connection; -1 for journal replays *)
  jc_client : string;  (* resolved client identity *)
  jc_ephemeral : bool;  (* identity is the connection: dies with it *)
  jc_id : string;  (* the client's correlation id *)
  jc_digest : string;  (* request digest: the idempotency key *)
  jc_want_verilog : bool;
  jc_job : Driver.job;
  jc_limits : Guard.limits;
  jc_trace : Trace.t;
}

type conn = {
  co_id : int;
  co_fd : Unix.file_descr;
  co_buf : Buffer.t;  (* bytes read, not yet split into lines *)
  co_jobs : (string, job_ctx Service.handle) Hashtbl.t;  (* in flight *)
  mutable co_closed : bool;
}

(* One in-flight job, keyed by (client, id). *)
type pending_job = {
  pj_handle : job_ctx Service.handle;
  mutable pj_watchdog : bool;  (* already cancelled by the watchdog *)
}

(* One retained completion, for poll and idempotent resubmission. *)
type finished_job = {
  fj_digest : string;
  fj_status : string;  (* ok | degraded | failed | cancelled *)
  fj_frame : Protocol.Json.t;  (* the full result frame, as delivered *)
}

type t = {
  cfg : config;
  svc : (job_ctx, Driver.report) Service.t;
  epoch : float;  (* server start; all traces share it *)
  conns : (int, conn) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  cq_mu : Mutex.t;
  cq : (job_ctx, Driver.report) Service.completion Queue.t;
  client_ids : (string, int) Hashtbl.t;  (* identity -> service client *)
  pending : (string * string, pending_job) Hashtbl.t;  (* (client,id) *)
  finished : (string * string, finished_job) Hashtbl.t;
  finished_order : (string * string) Queue.t;  (* eviction, oldest first *)
  mutable journal : Journal.t option;
  mutable backlog : Journal.admit list;  (* replays awaiting queue space *)
  mutable listen_fd : Unix.file_descr option;
  mutable stopping : bool;
  mutable draining : bool;
  mutable drain_until : float;
  mutable drain_cancelled : bool;  (* stragglers already cancelled *)
  mutable next_conn : int;
  mutable next_tid : int;
  (* metrics *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable n_ok : int;
  mutable n_degraded : int;
  mutable n_failed : int;
  mutable n_cancelled : int;
  mutable watchdog_fired : int;
  mutable idempotent_hits : int;
  mutable journal_appends : int;
  mutable journal_marks : int;
  mutable journal_faults : int;
  mutable journal_replayed : int;
  queue_hist : Service.Histogram.t;  (* admission -> start *)
  total_hist : Service.Histogram.t;  (* admission -> completion *)
  agg_counters : (string, int) Hashtbl.t;  (* trace counters, all jobs *)
  mutable traces : Trace.t list;  (* newest first, capped *)
  mutable n_traces : int;
}

let logf t fmt =
  if t.cfg.cfg_verbose then Printf.eprintf ("serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* SIGTERM lands here (possibly on another domain): the main loop polls
   the flag every tick and starts a graceful drain. *)
let sigterm_drain = Atomic.make false

(* Signals can interrupt any blocking syscall now that a SIGTERM
   handler is installed: retry them all. *)
let rec no_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> no_eintr f

(* ------------------------------------------------------------------ *)
(* Worker-side: runs on pool domains                                   *)

let wake t =
  (* Nonblocking: a full pipe already guarantees a pending wakeup. *)
  try ignore (no_eintr (fun () -> Unix.write t.wake_w (Bytes.make 1 '!') 0 1))
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let on_complete t c =
  Mutex.lock t.cq_mu;
  Queue.push c t.cq;
  Mutex.unlock t.cq_mu;
  wake t

(* ------------------------------------------------------------------ *)
(* Frame IO (main loop only)                                           *)

let disconnect t conn =
  if not conn.co_closed then begin
    conn.co_closed <- true;
    Hashtbl.remove t.conns conn.co_id;
    (* A gone *anonymous* client no longer wants its jobs: free the
       slots.  Named-client jobs keep running — their results are
       retained for a poll after reconnect.  Completions (synthesized
       or real) still arrive and are counted either way. *)
    let cancelled = ref 0 in
    Hashtbl.iter
      (fun _ h ->
        if (Service.data h).jc_ephemeral then begin
          incr cancelled;
          ignore (Service.cancel t.svc h)
        end)
      conn.co_jobs;
    (try Unix.close conn.co_fd with Unix.Unix_error _ -> ());
    logf t "conn %d closed (%d of %d in-flight jobs cancelled)" conn.co_id
      !cancelled
      (Hashtbl.length conn.co_jobs)
  end

let write_all fd s =
  let data = Bytes.of_string s in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + no_eintr (fun () -> Unix.write fd data !off (len - !off))
  done

(* SIGPIPE is ignored process-wide, so a hung-up client surfaces here
   as EPIPE/ECONNRESET: a per-connection error, not a dead server. *)
let send_frame t conn j =
  if not conn.co_closed then
    try write_all conn.co_fd (Protocol.Json.to_line j)
    with Unix.Unix_error _ -> disconnect t conn

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)

let health_json t =
  let s = Service.stats t.svc in
  let status =
    if t.stopping then "stopping" else if t.draining then "draining" else "ok"
  in
  Protocol.Json.Obj
    [
      ("event", Protocol.Json.Str "health");
      ("status", Protocol.Json.Str status);
      ("uptime_seconds", Protocol.Json.Num (Unix.gettimeofday () -. t.epoch));
      ("workers", Protocol.Json.Num (float_of_int s.Service.st_workers));
      ("queue_depth", Protocol.Json.Num (float_of_int s.Service.st_depth));
      ("running", Protocol.Json.Num (float_of_int s.Service.st_running));
      ("connections", Protocol.Json.Num (float_of_int (Hashtbl.length t.conns)));
    ]

let hist_json h =
  let s = Service.Histogram.summarize h in
  Protocol.Json.Obj
    [
      ("count", Protocol.Json.Num (float_of_int s.Service.Histogram.count));
      ("mean_s", Protocol.Json.Num s.Service.Histogram.mean);
      ("p50_s", Protocol.Json.Num s.Service.Histogram.p50);
      ("p90_s", Protocol.Json.Num s.Service.Histogram.p90);
      ("p99_s", Protocol.Json.Num s.Service.Histogram.p99);
      ("max_s", Protocol.Json.Num s.Service.Histogram.max);
    ]

let metrics_json t =
  let s = Service.stats t.svc in
  let num n = Protocol.Json.Num (float_of_int n) in
  let jobs =
    Protocol.Json.Obj
      [
        ("submitted", num t.submitted);
        ("rejected", num t.rejected);
        ("completed", num t.completed);
        ("ok", num t.n_ok);
        ("degraded", num t.n_degraded);
        ("failed", num t.n_failed);
        ("cancelled", num t.n_cancelled);
        ("watchdog", num t.watchdog_fired);
        ("idempotent", num t.idempotent_hits);
        ("queue_depth", num s.Service.st_depth);
        ("running", num s.Service.st_running);
        ("workers", num s.Service.st_workers);
        ("spawn_failures", num (Service.spawn_failure_count t.svc));
      ]
  in
  let cache =
    match t.cfg.cfg_cache with
    | None -> []
    | Some c ->
      [
        ( "cache",
          Protocol.Json.Obj
            [
              ("hits", num (Cache.hits c));
              ("misses", num (Cache.misses c));
              ("stores", num (Cache.store_count c));
              ("corrupt", num (Cache.corrupt_count c));
              ("faults", num (Cache.fault_count c));
            ] );
      ]
  in
  let journal =
    match t.journal with
    | None -> []
    | Some _ ->
      [
        ( "journal",
          Protocol.Json.Obj
            [
              ("appends", num t.journal_appends);
              ("marks", num t.journal_marks);
              ("faults", num t.journal_faults);
              ("replayed", num t.journal_replayed);
              ("backlog", num (List.length t.backlog));
            ] );
      ]
  in
  (* Aggregated trace counters: pass/pattern/cache/retry/degradation
     counts summed over every completed job. *)
  let counters =
    Hashtbl.fold (fun k v acc -> (k, num v) :: acc) t.agg_counters []
    |> List.sort compare
  in
  Protocol.Json.Obj
    ([ ("event", Protocol.Json.Str "metrics"); ("jobs", jobs) ]
    @ cache @ journal
    @ [
        ("counters", Protocol.Json.Obj counters);
        ( "latency",
          Protocol.Json.Obj
            [ ("queue", hist_json t.queue_hist); ("total", hist_json t.total_hist) ]
        );
      ])

(* One-shot HTTP for curl-style probes on the same socket. *)
let http_response t conn path =
  let status, body =
    match path with
    | "/health" -> ("200 OK", Protocol.Json.to_string (health_json t) ^ "\n")
    | "/metrics" -> ("200 OK", Protocol.Json.to_string (metrics_json t) ^ "\n")
    | _ -> ("404 Not Found", "{\"event\":\"error\",\"message\":\"unknown path\"}\n")
  in
  let resp =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: application/json\r\nContent-Length: \
       %d\r\nConnection: close\r\n\r\n%s"
      status (String.length body) body
  in
  (try write_all conn.co_fd resp with Unix.Unix_error _ -> ());
  disconnect t conn

(* ------------------------------------------------------------------ *)
(* Compile admission                                                   *)

let next_tid t =
  t.next_tid <- t.next_tid + 1;
  t.next_tid

(* The service core schedules by integer client id; map every distinct
   client identity (named or per-connection) to one. *)
let resolve_client t name =
  match Hashtbl.find_opt t.client_ids name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length t.client_ids in
    Hashtbl.replace t.client_ids name i;
    i

let conn_client_name conn = Printf.sprintf "conn-%d" conn.co_id

(* Resolve a compile frame into a driver job, or the diagnostics that
   explain why it never will be one.  Bad input is a *failed* result
   (the job is at fault), not a rejection (admission was fine). *)
let job_of_req (req : Protocol.compile_req) =
  let pipeline_r =
    match req.Protocol.cr_passes with
    | None -> Ok (Pipeline.default ~optimize:true)
    | Some spec -> (
      match Pipeline.parse_located ~file:"passes" spec with
      | Ok p -> Ok p
      | Error d -> Error (Printf.sprintf "invalid pipeline spec: %s" (Hir_ir.Diagnostic.to_string d)))
  in
  match pipeline_r with
  | Error e -> Error e
  | Ok pipeline -> (
    match (req.Protocol.cr_kernel, req.Protocol.cr_source) with
    | Some k, _ -> (
      match Hir_kernels.Kernels.find k with
      | Some kernel ->
        Ok
          (Driver.job_of_builder ~pipeline ~name:kernel.Hir_kernels.Kernels.name
             kernel.Hir_kernels.Kernels.build)
      | None -> Error (Printf.sprintf "unknown kernel %s" k))
    | None, Some source ->
      let name = Option.value ~default:"<inline>" req.Protocol.cr_name in
      Ok (Driver.job_of_text ?top:req.Protocol.cr_top ~pipeline ~name source)
    | None, None -> Error "compile: needs \"kernel\" or \"source\"")

let failed_frame ~id msg =
  Protocol.Json.Obj
    [
      ("event", Protocol.Json.Str "result");
      ("id", Protocol.Json.Str id);
      ("status", Protocol.Json.Str "failed");
      ("diagnostics", Protocol.Json.Arr [ Protocol.Json.Str msg ]);
    ]

let request_digest (req : Protocol.compile_req) =
  Journal.digest_of_request ~kernel:req.Protocol.cr_kernel ~name:req.Protocol.cr_name
    ~source:req.Protocol.cr_source ~top:req.Protocol.cr_top
    ~passes:req.Protocol.cr_passes

let admit_of_req ~client ~digest (req : Protocol.compile_req) =
  {
    Journal.a_client = client;
    a_id = req.Protocol.cr_id;
    a_digest = digest;
    a_kernel = req.Protocol.cr_kernel;
    a_name = req.Protocol.cr_name;
    a_source = req.Protocol.cr_source;
    a_top = req.Protocol.cr_top;
    a_passes = req.Protocol.cr_passes;
    a_priority = req.Protocol.cr_priority;
    a_deadline = req.Protocol.cr_deadline;
    a_want_verilog = req.Protocol.cr_want_verilog;
  }

let req_of_admit (a : Journal.admit) : Protocol.compile_req =
  {
    Protocol.cr_id = a.Journal.a_id;
    cr_client = Some a.Journal.a_client;
    cr_kernel = a.Journal.a_kernel;
    cr_name = a.Journal.a_name;
    cr_source = a.Journal.a_source;
    cr_top = a.Journal.a_top;
    cr_passes = a.Journal.a_passes;
    cr_priority = a.Journal.a_priority;
    cr_deadline = a.Journal.a_deadline;
    cr_want_verilog = a.Journal.a_want_verilog;
  }

(* Journal IO failure is degraded durability, never a failed job. *)
let journal_admit t admit =
  match t.journal with
  | None -> ()
  | Some j -> (
    match Journal.append_admit j admit with
    | Ok () -> t.journal_appends <- t.journal_appends + 1
    | Error e ->
      t.journal_faults <- t.journal_faults + 1;
      logf t "journal append failed: %s" e)

let journal_done t ~client ~id ~status =
  match t.journal with
  | None -> ()
  | Some j -> (
    match Journal.append_done j ~client ~id ~status with
    | Ok () -> t.journal_marks <- t.journal_marks + 1
    | Error e ->
      t.journal_faults <- t.journal_faults + 1;
      logf t "journal mark failed: %s" e)

(* Submit one resolved request to the pool.  [journal_new] is false for
   journal replays, whose admit records are already on disk. *)
let admit_request t ~conn_id ~client ~ephemeral ~digest ~journal_new
    (req : Protocol.compile_req) =
  match job_of_req req with
  | Error msg -> `Failed (failed_frame ~id:req.Protocol.cr_id msg)
  | Ok job -> (
    let trace = Trace.create ~epoch:t.epoch () in
    Trace.set_tid trace (next_tid t);
    let limits =
      {
        Guard.deadline_s =
          (match req.Protocol.cr_deadline with
          | Some _ as d -> d
          | None -> t.cfg.cfg_default_deadline);
        work_budget = None;
      }
    in
    let ctx =
      {
        jc_conn = conn_id;
        jc_client = client;
        jc_ephemeral = ephemeral;
        jc_id = req.Protocol.cr_id;
        jc_digest = digest;
        jc_want_verilog = req.Protocol.cr_want_verilog;
        jc_job = job;
        jc_limits = limits;
        jc_trace = trace;
      }
    in
    match
      Service.submit t.svc ~client:(resolve_client t client)
        ~priority:req.Protocol.cr_priority ctx
    with
    | Service.Accepted h ->
      t.submitted <- t.submitted + 1;
      if journal_new then journal_admit t (admit_of_req ~client ~digest req);
      Hashtbl.replace t.pending (client, req.Protocol.cr_id)
        { pj_handle = h; pj_watchdog = false };
      `Admitted h
    | Service.Overloaded -> `Overloaded
    | Service.Stopped -> `Stopped)

let handle_compile t conn (req : Protocol.compile_req) =
  let id = req.Protocol.cr_id in
  let ephemeral = req.Protocol.cr_client = None in
  let client =
    match req.Protocol.cr_client with Some c -> c | None -> conn_client_name conn
  in
  let digest = request_digest req in
  let key = (client, id) in
  let reject reason =
    t.rejected <- t.rejected + 1;
    send_frame t conn (Protocol.rejected_frame ~id reason)
  in
  if t.draining || t.stopping then reject "shutting-down"
  else if Hashtbl.mem t.pending key then reject "duplicate-id"
  else
    let finished_entry = Hashtbl.find_opt t.finished key in
    match finished_entry with
    | Some fj when fj.fj_status <> "cancelled" && fj.fj_digest = digest ->
      (* Idempotent resubmission: same id, same request — replay the
         retained result instead of recompiling or rejecting. *)
      t.idempotent_hits <- t.idempotent_hits + 1;
      logf t "conn %d: idempotent resubmission of %s/%s" conn.co_id client id;
      send_frame t conn fj.fj_frame
    | Some fj when fj.fj_status <> "cancelled" -> reject "duplicate-id"
    | _ -> (
      (* Fresh, or a cancelled result being retried: admit. *)
      if finished_entry <> None then Hashtbl.remove t.finished key;
      match
        admit_request t ~conn_id:conn.co_id ~client ~ephemeral ~digest
          ~journal_new:true req
      with
      | `Failed frame -> send_frame t conn frame
      | `Overloaded -> reject "overloaded"
      | `Stopped -> reject "shutting-down"
      | `Admitted h ->
        Hashtbl.replace conn.co_jobs id h;
        logf t "conn %d: admitted %s/%s (priority %d)" conn.co_id client id
          req.Protocol.cr_priority)

let handle_cancel t conn id =
  match Hashtbl.find_opt conn.co_jobs id with
  | None -> send_frame t conn (Protocol.cancel_frame ~id "unknown")
  | Some h ->
    let state =
      match Service.cancel t.svc h with
      | `Cancelled -> "cancelled"  (* withdrawn from the queue *)
      | `Cancelling -> "cancelling"  (* mid-compile; flag set *)
      | `Finished -> "finished"  (* too late: real result racing in *)
    in
    send_frame t conn (Protocol.cancel_frame ~id state)

(* ------------------------------------------------------------------ *)
(* Poll: reconnecting clients fetch results they missed                 *)

let poll_state_frame ~id state =
  Protocol.Json.Obj
    [
      ("event", Protocol.Json.Str "poll");
      ("id", Protocol.Json.Str id);
      ("state", Protocol.Json.Str state);
    ]

let handle_poll t conn (p : Protocol.poll_req) =
  let client =
    match p.Protocol.pl_client with Some c -> c | None -> conn_client_name conn
  in
  match p.Protocol.pl_id with
  | Some id -> (
    let key = (client, id) in
    match Hashtbl.find_opt t.finished key with
    | Some fj -> send_frame t conn fj.fj_frame  (* done: resend the result *)
    | None ->
      if Hashtbl.mem t.pending key then
        send_frame t conn (poll_state_frame ~id "pending")
      else send_frame t conn (poll_state_frame ~id "unknown"))
  | None ->
    (* No id: list this client's known jobs and their states. *)
    let jobs = ref [] in
    Hashtbl.iter
      (fun (c, id) _ ->
        if c = client then
          jobs :=
            Protocol.Json.Obj
              [ ("id", Protocol.Json.Str id); ("state", Protocol.Json.Str "pending") ]
            :: !jobs)
      t.pending;
    Hashtbl.iter
      (fun (c, id) fj ->
        if c = client then
          jobs :=
            Protocol.Json.Obj
              [
                ("id", Protocol.Json.Str id);
                ("state", Protocol.Json.Str "done");
                ("status", Protocol.Json.Str fj.fj_status);
              ]
            :: !jobs)
      t.finished;
    let jobs = List.sort compare !jobs in
    send_frame t conn
      (Protocol.Json.Obj
         [
           ("event", Protocol.Json.Str "poll");
           ("client", Protocol.Json.Str client);
           ("jobs", Protocol.Json.Arr jobs);
         ])

(* ------------------------------------------------------------------ *)
(* Completion delivery (main loop)                                     *)

let add_finished t key fj =
  Hashtbl.replace t.finished key fj;
  Queue.push key t.finished_order;
  while Hashtbl.length t.finished > t.cfg.cfg_max_finished do
    match Queue.take_opt t.finished_order with
    | None -> Hashtbl.reset t.finished  (* unreachable; belt and braces *)
    | Some victim -> Hashtbl.remove t.finished victim
  done

let record_completion t (c : (job_ctx, Driver.report) Service.completion) =
  let ctx = Service.data c.Service.c_handle in
  let r = c.Service.c_result in
  let status = Driver.status_to_string (Driver.report_status r) in
  t.completed <- t.completed + 1;
  (match Driver.report_status r with
  | `Ok -> t.n_ok <- t.n_ok + 1
  | `Degraded -> t.n_degraded <- t.n_degraded + 1
  | `Failed -> t.n_failed <- t.n_failed + 1
  | `Cancelled -> t.n_cancelled <- t.n_cancelled + 1);
  Service.Histogram.record t.queue_hist c.Service.c_queue_seconds;
  Service.Histogram.record t.total_hist
    (c.Service.c_queue_seconds +. c.Service.c_run_seconds);
  let bump k n =
    Hashtbl.replace t.agg_counters k
      (n + Option.value ~default:0 (Hashtbl.find_opt t.agg_counters k))
  in
  List.iter (fun (k, n) -> bump k n) (Trace.counters ctx.jc_trace);
  (* Pass counters (pattern/fold application counts) ride on the pass
     spans as stringified args; lift the numeric ones into the
     server-lifetime aggregate so /metrics surfaces them. *)
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.sp_cat = "pass" then
        List.iter
          (fun (k, v) ->
            match int_of_string_opt v with
            | Some n -> bump (s.Trace.sp_name ^ "/" ^ k) n
            | None -> ())
          s.Trace.sp_args)
    (Trace.spans ctx.jc_trace);
  if t.n_traces < t.cfg.cfg_max_traces then begin
    t.traces <- ctx.jc_trace :: t.traces;
    t.n_traces <- t.n_traces + 1
  end;
  (* Durability: the done mark, then the retained result. *)
  let key = (ctx.jc_client, ctx.jc_id) in
  journal_done t ~client:ctx.jc_client ~id:ctx.jc_id ~status;
  Hashtbl.remove t.pending key;
  let frame =
    Protocol.result_frame ~id:ctx.jc_id ~want_verilog:ctx.jc_want_verilog r
  in
  add_finished t key { fj_digest = ctx.jc_digest; fj_status = status; fj_frame = frame };
  (* Deliver, unless the client is gone (a poll will find it). *)
  match Hashtbl.find_opt t.conns ctx.jc_conn with
  | None -> ()
  | Some conn ->
    Hashtbl.remove conn.co_jobs ctx.jc_id;
    send_frame t conn frame

let drain_completions t =
  let rec pop () =
    Mutex.lock t.cq_mu;
    let c = Queue.take_opt t.cq in
    Mutex.unlock t.cq_mu;
    match c with
    | None -> ()
    | Some c ->
      record_completion t c;
      pop ()
  in
  pop ()

(* ------------------------------------------------------------------ *)
(* Journal recovery and drain                                          *)

(* Re-enqueue one journal replay.  Replays whose request can no longer
   resolve (a kernel renamed across versions, say) are marked done
   "failed" so they do not haunt every future startup. *)
let admit_replayed t (a : Journal.admit) =
  let req = req_of_admit a in
  match
    admit_request t ~conn_id:(-1) ~client:a.Journal.a_client ~ephemeral:false
      ~digest:a.Journal.a_digest ~journal_new:false req
  with
  | `Admitted _ ->
    t.journal_replayed <- t.journal_replayed + 1;
    `Done
  | `Failed frame ->
    journal_done t ~client:a.Journal.a_client ~id:a.Journal.a_id ~status:"failed";
    add_finished t
      (a.Journal.a_client, a.Journal.a_id)
      { fj_digest = a.Journal.a_digest; fj_status = "failed"; fj_frame = frame };
    logf t "replay of %s/%s failed to resolve" a.Journal.a_client a.Journal.a_id;
    `Done
  | `Overloaded -> `Overloaded
  | `Stopped -> `Done

(* Admit as much of the replay backlog as the queue will take; the
   rest waits for completions to free depth. *)
let retry_backlog t =
  let rec go = function
    | [] -> []
    | a :: rest -> (
      match admit_replayed t a with
      | `Done -> go rest
      | `Overloaded -> a :: rest)
  in
  if t.backlog <> [] then t.backlog <- go t.backlog

let start_drain t reason =
  if not (t.draining || t.stopping) then begin
    t.draining <- true;
    t.drain_until <- Unix.gettimeofday () +. t.cfg.cfg_drain_deadline;
    logf t "draining (%s): %d in-flight job(s), deadline %.1fs" reason
      (Hashtbl.length t.pending)
      t.cfg.cfg_drain_deadline
  end

(* One drain step per tick: past the deadline, cancel the stragglers
   (cooperatively — their completions arrive journal-marked as
   "cancelled"); once nothing is in flight, stop. *)
let drain_step t =
  if t.draining then begin
    if (not t.drain_cancelled) && Unix.gettimeofday () > t.drain_until then begin
      t.drain_cancelled <- true;
      logf t "drain deadline passed: cancelling %d straggler(s)"
        (Hashtbl.length t.pending);
      Hashtbl.iter (fun _ pj -> ignore (Service.cancel t.svc pj.pj_handle)) t.pending;
      (* Queued-job cancels synthesize completions synchronously. *)
      drain_completions t
    end;
    if Hashtbl.length t.pending = 0 && t.backlog = [] then t.stopping <- true
  end

(* The stuck-job watchdog: a running job that has blown through
   [factor] x its deadline without a guard checkpoint observing the
   deadline gets cancelled through the same cooperative path. *)
let watchdog_step t =
  let factor = t.cfg.cfg_watchdog_factor in
  if factor > 0. then begin
    let now = Unix.gettimeofday () in
    Hashtbl.iter
      (fun _ pj ->
        if not pj.pj_watchdog then
          let ctx = Service.data pj.pj_handle in
          match ctx.jc_limits.Guard.deadline_s with
          | None -> ()
          | Some d -> (
            match Service.running_since t.svc pj.pj_handle with
            | Some started when now -. started > factor *. d ->
              pj.pj_watchdog <- true;
              t.watchdog_fired <- t.watchdog_fired + 1;
              logf t "watchdog: cancelling %s/%s (ran %.1fs, deadline %.1fs)"
                ctx.jc_client ctx.jc_id (now -. started) d;
              ignore (Service.cancel t.svc pj.pj_handle)
            | _ -> ()))
      t.pending
  end

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)

let bind_listener = function
  | Unix_path path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, "unix:" ^ path)
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Printf.sprintf "tcp:%s:%d" host actual)

let handle_line t conn line =
  let line = String.trim line in
  if line = "" then ()
  else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
    (* HTTP probe: "GET /path HTTP/1.x". *)
    let path =
      match String.split_on_char ' ' line with _ :: p :: _ -> p | _ -> "/"
    in
    http_response t conn path
  end
  else
    match Protocol.request_of_line line with
    | Error msg -> send_frame t conn (Protocol.error_frame msg)
    | Ok (Protocol.Compile req) -> handle_compile t conn req
    | Ok (Protocol.Cancel id) -> handle_cancel t conn id
    | Ok (Protocol.Poll p) -> handle_poll t conn p
    | Ok Protocol.Health -> send_frame t conn (health_json t)
    | Ok Protocol.Metrics -> send_frame t conn (metrics_json t)
    | Ok Protocol.Shutdown ->
      send_frame t conn (Protocol.Json.Obj [ ("event", Protocol.Json.Str "shutdown") ]);
      start_drain t "shutdown frame"

let handle_readable t conn =
  let chunk = Bytes.create 65536 in
  match no_eintr (fun () -> Unix.read conn.co_fd chunk 0 (Bytes.length chunk)) with
  | 0 -> disconnect t conn
  | got ->
    Buffer.add_subbytes conn.co_buf chunk 0 got;
    (* Split off complete lines; a partial tail stays buffered. *)
    let rec split () =
      let contents = Buffer.contents conn.co_buf in
      match String.index_opt contents '\n' with
      | None -> ()
      | Some i ->
        let line = String.sub contents 0 i in
        Buffer.clear conn.co_buf;
        Buffer.add_string conn.co_buf
          (String.sub contents (i + 1) (String.length contents - i - 1));
        handle_line t conn line;
        if not conn.co_closed then split ()
    in
    split ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    disconnect t conn

let accept_conn t listen_fd =
  match no_eintr (fun () -> Unix.accept listen_fd) with
  | fd, _ ->
    let conn =
      {
        co_id = t.next_conn;
        co_fd = fd;
        co_buf = Buffer.create 1024;
        co_jobs = Hashtbl.create 8;
        co_closed = false;
      }
    in
    t.next_conn <- t.next_conn + 1;
    Hashtbl.replace t.conns conn.co_id conn;
    logf t "conn %d accepted" conn.co_id
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create cfg =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let rec t =
    lazy
      (let svc =
         Service.create ~workers:cfg.cfg_workers ~max_depth:cfg.cfg_max_depth
           ~run:(fun h ->
             let ctx = Service.data h in
             Driver.run_with_retry ?cache:cfg.cfg_cache
               ~cancel:(Service.cancel_flag h)
               ~trace:ctx.jc_trace ~limits:ctx.jc_limits ~retry:cfg.cfg_retry
               ctx.jc_job)
           ~cancelled:(fun h ->
             Driver.cancelled_report
               ~job:(Driver.source_name (Service.data h).jc_job.Driver.src))
           ~crashed:(fun h exn ->
             Driver.crashed_report
               ~job:(Driver.source_name (Service.data h).jc_job.Driver.src)
               exn)
           ~on_complete:(fun c -> on_complete (Lazy.force t) c)
           ()
       in
       {
         cfg;
         svc;
         epoch = Trace.now ();
         conns = Hashtbl.create 16;
         wake_r;
         wake_w;
         cq_mu = Mutex.create ();
         cq = Queue.create ();
         client_ids = Hashtbl.create 16;
         pending = Hashtbl.create 64;
         finished = Hashtbl.create 64;
         finished_order = Queue.create ();
         journal = None;
         backlog = [];
         listen_fd = None;
         stopping = false;
         draining = false;
         drain_until = 0.;
         drain_cancelled = false;
         next_conn = 0;
         next_tid = 0;
         submitted = 0;
         rejected = 0;
         completed = 0;
         n_ok = 0;
         n_degraded = 0;
         n_failed = 0;
         n_cancelled = 0;
         watchdog_fired = 0;
         idempotent_hits = 0;
         journal_appends = 0;
         journal_marks = 0;
         journal_faults = 0;
         journal_replayed = 0;
         queue_hist = Service.Histogram.create ();
         total_hist = Service.Histogram.create ();
         agg_counters = Hashtbl.create 32;
         traces = [];
         n_traces = 0;
       })
  in
  Lazy.force t

let drain_wake t =
  let chunk = Bytes.create 256 in
  let rec go () =
    match no_eintr (fun () -> Unix.read t.wake_r chunk 0 (Bytes.length chunk)) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* Replay + compact the journal: quarantine what is damaged, re-enqueue
   what never finished, rewrite the log down to exactly that set (the
   same replay result drives both, so the log and the queue agree). *)
let recover_journal t dir =
  let r = Journal.replay ~dir in
  (match Journal.compact ~result:r ~dir () with
  | Ok _ -> ()
  | Error e -> Printf.eprintf "hirc serve: journal compaction failed: %s\n%!" e);
  t.journal <- Some (Journal.open_journal ~dir);
  t.backlog <- r.Journal.rr_pending;
  if r.Journal.rr_records > 0 || r.Journal.rr_torn_tail then
    Printf.printf
      "hirc serve: journal: %d record(s) (%d done), %d incomplete job(s) \
       re-enqueued, %d quarantined%s\n%!"
      r.Journal.rr_records r.Journal.rr_completed
      (List.length r.Journal.rr_pending)
      r.Journal.rr_quarantined
      (if r.Journal.rr_torn_tail then ", torn tail dropped" else "");
  retry_backlog t

(* Run to completion: bind, announce, serve until a drain finishes
   (shutdown frame or SIGTERM), then drain the pool, deliver the tail
   of completions, write the lifetime Chrome trace, and report.
   Returns the exit code. *)
let run cfg =
  let t = create cfg in
  Atomic.set sigterm_drain false;
  let old_sigterm =
    try
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set sigterm_drain true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  (match cfg.cfg_journal with None -> () | Some dir -> recover_journal t dir);
  let listen_fd, where = bind_listener cfg.cfg_listen in
  t.listen_fd <- Some listen_fd;
  (* The announce line is the startup contract: clients (and the smoke
     test) wait for it before connecting. *)
  Printf.printf "hirc serve: listening on %s (%d workers, queue depth %d)\n%!"
    where
    (Service.worker_count t.svc)
    cfg.cfg_max_depth;
  (if Service.spawn_failure_count t.svc > 0 then
     Printf.eprintf
       "hirc serve: %d worker spawn(s) failed; continuing with %d worker(s)\n%!"
       (Service.spawn_failure_count t.svc)
       (Service.worker_count t.svc));
  while not t.stopping do
    let conn_fds = Hashtbl.fold (fun _ c acc -> c.co_fd :: acc) t.conns [] in
    let read_fds = (listen_fd :: t.wake_r :: conn_fds) in
    (match Unix.select read_fds [] [] cfg.cfg_tick with
    | readable, _, _ ->
      if List.mem t.wake_r readable then drain_wake t;
      drain_completions t;
      (* Snapshot: a conn may be disconnected while handling another. *)
      let by_fd = Hashtbl.fold (fun _ c acc -> (c.co_fd, c) :: acc) t.conns [] in
      List.iter
        (fun fd ->
          if fd <> listen_fd && fd <> t.wake_r then
            match List.assoc_opt fd by_fd with
            | Some conn when not conn.co_closed -> handle_readable t conn
            | _ -> ())
        readable;
      if List.mem listen_fd readable && not t.stopping then accept_conn t listen_fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    if Atomic.get sigterm_drain then begin
      Atomic.set sigterm_drain false;
      start_drain t "SIGTERM"
    end;
    retry_backlog t;
    watchdog_step t;
    drain_completions t;
    drain_step t
  done;
  (* Shutdown: stop accepting, drain the pool (with zero live workers
     the queue drains inline right here), deliver the tail. *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match cfg.cfg_listen with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ());
  Service.shutdown t.svc;
  drain_completions t;
  Hashtbl.iter (fun _ conn -> disconnect t conn) (Hashtbl.copy t.conns);
  Option.iter Journal.close t.journal;
  (match cfg.cfg_trace_path with
  | Some path ->
    Trace.write_chrome_json path (List.rev t.traces);
    Printf.eprintf "wrote %s\n%!" path
  | None -> ());
  (try
     Unix.close t.wake_r;
     Unix.close t.wake_w
   with Unix.Unix_error _ -> ());
  Option.iter (Sys.set_signal Sys.sigterm) old_sigterm;
  let tot = Service.Histogram.summarize t.total_hist in
  Printf.printf
    "hirc serve: done: %d submitted, %d completed (%d ok, %d degraded, %d failed, \
     %d cancelled), %d rejected, p99 %.1f ms\n%!"
    t.submitted t.completed t.n_ok t.n_degraded t.n_failed t.n_cancelled t.rejected
    (tot.Service.Histogram.p99 *. 1000.);
  if t.completed = t.submitted then 0 else 1
