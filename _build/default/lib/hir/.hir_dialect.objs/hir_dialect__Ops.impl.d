lib/hir/ops.ml: Attribute Diagnostic Dialect Extern Hir_ir Ir List Typ Types
