examples/systolic_gemm.mli:
