(* Element-wise maximum of two arrays — a small branching datapath
   (compare + select, i.e. hir.lt/hir.gt and hir.select lowering to a
   comparator and a mux) in a pipelined II=1 loop.  ReLU-style
   selection logic is ubiquitous in the ML workloads the paper's
   introduction motivates. *)

open Hir_ir
open Hir_dialect

let name = "elementwise_max"
let n = 64

let build_into m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "A" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "B" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "M" (Types.memref ~dims:[ n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ a; bb; out ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cn = Builder.constant b n in
        let _tf =
          Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:cn ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:i ~ti ->
              Builder.yield b ~at:Builder.(ti @>> 1);
              let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
              let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
              let gt = Builder.gt b va vb in
              let vmax = Builder.select b gt va vb in
              let i1 = Builder.delay b i ~by:1 ~at:Builder.(ti @>> 0) in
              Builder.mem_write b vmax out [ i1 ] ~at:Builder.(ti @>> 1))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

(* HIR comparisons are unsigned (see Interp), so the reference compares
   unsigned too. *)
let reference a b =
  Array.init n (fun i -> if Bitvec.compare a.(i) b.(i) > 0 then a.(i) else b.(i))

let make_inputs ~seed =
  (Util.test_data ~seed ~n ~width:32, Util.test_data ~seed:(seed + 31) ~n ~width:32)

let check_interp ?(seed = 9) () =
  let m, f = build () in
  let a, b = make_inputs ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f
      [ Interp.Tensor a; Interp.Tensor b; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 2) ~cycle:max_int in
  let expected = reference a b in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "elementwise_max output mismatch"
