(* Paper-style custom assembly format for HIR (the syntax of Listings
   1-4), used for human consumption; the generic form printed by
   [Hir_ir.Printer] remains the parseable round-trip format.

     hir.func @transpose at %t (%Ai : !hir.memref<16*16*i32, r>, ...) {
       %c0 = hir.constant 0
       hir.for %i : i32 = %c0 to %c16 step %c1 iter_time(%ti = %t offset 1) {
         %v = hir.mem_read %Ai[%i, %j] at %tj : i32
         hir.mem_write %v to %Co[%j1, %i] at %tj offset 1
         hir.yield at %tj offset 1
       }
       hir.return
     } *)

open Hir_ir

let buf_add = Buffer.add_string

let value_name namer v = "%" ^ Printer.name_value namer v

let pp_at namer buf ~time ~offset =
  buf_add buf (Printf.sprintf " at %s" (value_name namer time));
  if offset <> 0 then buf_add buf (Printf.sprintf " offset %d" offset)

let pp_indices namer buf indices =
  buf_add buf "[";
  buf_add buf (String.concat ", " (List.map (value_name namer) indices));
  buf_add buf "]"

let rec pp_op namer buf ~indent op =
  let pad = String.make indent ' ' in
  buf_add buf pad;
  let name v = value_name namer v in
  (match Ir.Op.name op with
  | "hir.constant" ->
    buf_add buf
      (Printf.sprintf "%s = hir.constant %d" (name (Ir.Op.result op 0))
         (Ops.constant_value op))
  | "hir.for" ->
    let iv = Ops.loop_induction_var op in
    let ti = Ops.loop_iter_time op in
    buf_add buf
      (Printf.sprintf "%s = hir.for %s : %s = %s to %s step %s iter_time(%s = %s offset %d) {"
         (name (Ir.Op.result op 0))
         (name iv)
         (Typ.to_string (Ir.Value.typ iv))
         (name (Ops.for_lb op)) (name (Ops.for_ub op)) (name (Ops.for_step op))
         (name ti) (name (Ops.for_time op)) (Ops.for_offset op));
    buf_add buf "\n";
    List.iter (pp_op namer buf ~indent:(indent + 2)) (Ir.Block.ops (Ops.loop_body op));
    buf_add buf (pad ^ "}")
  | "hir.unroll_for" ->
    let body = Ops.loop_body op in
    buf_add buf
      (Printf.sprintf "%s = hir.unroll_for %s = %d to %d step %d iter_time(%s = %s offset %d) {"
         (name (Ir.Op.result op 0))
         (name (Ir.Block.arg body 0))
         (Ops.unroll_for_lb op) (Ops.unroll_for_ub op) (Ops.unroll_for_step op)
         (name (Ir.Block.arg body 1))
         (name (Ops.unroll_for_time op))
         (Ops.unroll_for_offset op));
    buf_add buf "\n";
    List.iter (pp_op namer buf ~indent:(indent + 2)) (Ir.Block.ops body);
    buf_add buf (pad ^ "}")
  | "hir.yield" ->
    buf_add buf "hir.yield";
    pp_at namer buf ~time:(Ops.yield_time op) ~offset:(Ops.yield_offset op)
  | "hir.return" ->
    buf_add buf "hir.return";
    (match Ir.Op.operands op with
    | [] -> ()
    | vs -> buf_add buf (" " ^ String.concat ", " (List.map name vs)))
  | "hir.mem_read" ->
    buf_add buf (Printf.sprintf "%s = hir.mem_read %s" (name (Ir.Op.result op 0))
                   (name (Ops.mem_read_mem op)));
    pp_indices namer buf (Ops.mem_read_indices op);
    pp_at namer buf ~time:(Ops.mem_read_time op) ~offset:(Ops.mem_read_offset op);
    buf_add buf
      (Printf.sprintf " : %s" (Typ.to_string (Ir.Value.typ (Ir.Op.result op 0))))
  | "hir.mem_write" ->
    buf_add buf
      (Printf.sprintf "hir.mem_write %s to %s" (name (Ops.mem_write_value op))
         (name (Ops.mem_write_mem op)));
    pp_indices namer buf (Ops.mem_write_indices op);
    pp_at namer buf ~time:(Ops.mem_write_time op) ~offset:(Ops.mem_write_offset op)
  | "hir.delay" ->
    buf_add buf
      (Printf.sprintf "%s = hir.delay %s by %d" (name (Ir.Op.result op 0))
         (name (Ops.delay_input op)) (Ops.delay_by op));
    pp_at namer buf ~time:(Ops.delay_time op) ~offset:(Ops.delay_offset op);
    buf_add buf
      (Printf.sprintf " : %s" (Typ.to_string (Ir.Value.typ (Ir.Op.result op 0))))
  | "hir.call" ->
    (match Ir.Op.results op with
    | [] -> ()
    | rs ->
      buf_add buf (String.concat ", " (List.map name rs));
      buf_add buf " = ");
    buf_add buf (Printf.sprintf "hir.call @%s(" (Ops.call_callee op));
    buf_add buf (String.concat ", " (List.map name (Ops.call_args op)));
    buf_add buf ")";
    pp_at namer buf ~time:(Ops.call_time op) ~offset:(Ops.call_offset op);
    let delays = Ops.call_result_delays op in
    (match (Ir.Op.results op, delays) with
    | [ r ], [ d ] ->
      buf_add buf
        (Printf.sprintf " : (%s delay %d)" (Typ.to_string (Ir.Value.typ r)) d)
    | _ -> ())
  | "hir.alloc" ->
    buf_add buf
      (String.concat ", " (List.map name (Ir.Op.results op)));
    buf_add buf
      (Printf.sprintf " = hir.alloc() {%s} : %s"
         (Ops.mem_kind_to_string (Ops.alloc_kind op))
         (String.concat ", "
            (List.map (fun r -> Typ.to_string (Ir.Value.typ r)) (Ir.Op.results op))))
  | "hir.select" ->
    buf_add buf
      (Printf.sprintf "%s = hir.select %s, %s, %s" (name (Ir.Op.result op 0))
         (name (Ir.Op.operand op 0)) (name (Ir.Op.operand op 1))
         (name (Ir.Op.operand op 2)))
  | op_name
    when List.mem op_name Ops.binary_compute_ops || List.mem op_name Ops.comparison_ops
    ->
    buf_add buf
      (Printf.sprintf "%s = %s (%s, %s) : (%s, %s) -> (%s)"
         (name (Ir.Op.result op 0))
         op_name
         (name (Ir.Op.operand op 0))
         (name (Ir.Op.operand op 1))
         (Typ.to_string (Ir.Value.typ (Ir.Op.operand op 0)))
         (Typ.to_string (Ir.Value.typ (Ir.Op.operand op 1)))
         (Typ.to_string (Ir.Value.typ (Ir.Op.result op 0))))
  | _ ->
    (* Fallback: generic syntax for anything without a custom form. *)
    buf_add buf (Format.asprintf "%a" (Printer.pp_op ~indent namer) op));
  buf_add buf "\n"

let pp_func namer buf func =
  if Ops.is_extern_func func then begin
    buf_add buf (Printf.sprintf "hir.func extern @%s" (Ops.func_name func));
    buf_add buf "\n"
  end
  else begin
    let time = Ops.func_time_arg func in
    buf_add buf
      (Printf.sprintf "hir.func @%s at %s (" (Ops.func_name func)
         (value_name namer time));
    buf_add buf
      (String.concat ", "
         (List.map
            (fun a ->
              Printf.sprintf "%s : %s" (value_name namer a)
                (Typ.to_string (Ir.Value.typ a)))
            (Ops.func_data_args func)));
    buf_add buf ") {\n";
    List.iter (pp_op namer buf ~indent:2) (Ir.Block.ops (Ops.func_body func));
    buf_add buf "}\n"
  end

let module_to_string module_op =
  let namer = Printer.create_namer () in
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i f ->
      if i > 0 then buf_add buf "\n";
      pp_func namer buf f)
    (Ops.module_funcs module_op);
  Buffer.contents buf

let func_to_string func =
  let namer = Printer.create_namer () in
  let buf = Buffer.create 1024 in
  pp_func namer buf func;
  Buffer.contents buf
