examples/scheduling_errors.ml: Builder Diagnostic Hir_dialect Hir_ir List Location Ops Printf Typ Types Verify_schedule
