(* Tests for the generic IR core: construction, traversal, cloning,
   rewriting, printing/parsing round-trips and structural
   verification. *)

open Hir_ir

let () = Hir_dialect.Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A tiny well-formed design used by several tests. *)
let build_add_func () =
  let module_op = Hir_dialect.Builder.create_module () in
  let func =
    Hir_dialect.Builder.func module_op ~name:"adder"
      ~args:
        [
          Hir_dialect.Builder.arg "x" Typ.i32;
          Hir_dialect.Builder.arg "y" Typ.i32;
        ]
      ~results:[ (Typ.i32, 0) ]
      (fun b args _t ->
        match args with
        | [ x; y ] ->
          let s = Hir_dialect.Builder.add b x y in
          Hir_dialect.Builder.return_ b [ s ]
        | _ -> assert false)
  in
  (module_op, func)

let test_construction () =
  let module_op, func = build_add_func () in
  check_string "module name" "builtin.module" (Ir.Op.name module_op);
  check_string "func name" "hir.func" (Ir.Op.name func);
  check_string "sym name" "adder" (Hir_dialect.Ops.func_name func);
  let body = Hir_dialect.Ops.func_body func in
  check_int "body args (2 data + time)" 3 (Ir.Block.num_args body);
  check_int "ops in body" 2 (List.length (Ir.Block.ops body));
  let funcs = Hir_dialect.Ops.module_funcs module_op in
  check_int "module funcs" 1 (List.length funcs);
  check_bool "lookup finds" true
    (Option.is_some (Hir_dialect.Ops.lookup_func module_op "adder"));
  check_bool "lookup missing" true
    (Option.is_none (Hir_dialect.Ops.lookup_func module_op "nope"))

let test_walk () =
  let module_op, _ = build_add_func () in
  let count = ref 0 in
  Ir.Walk.ops_pre module_op ~f:(fun _ -> incr count);
  check_int "pre-order count" 4 !count;
  (* module + func + add + return *)
  let names = ref [] in
  Ir.Walk.ops_post module_op ~f:(fun o -> names := Ir.Op.name o :: !names);
  check_string "post-order last is module" "builtin.module" (List.hd !names);
  let adds = Ir.Walk.find_all module_op "hir.add" in
  check_int "find_all" 1 (List.length adds)

let test_rewrite () =
  let module_op, func = build_add_func () in
  let body = Hir_dialect.Ops.func_body func in
  let x = Ir.Block.arg body 0 in
  let y = Ir.Block.arg body 1 in
  let add_op = List.hd (Ir.Walk.find_all module_op "hir.add") in
  check_int "uses of x" 1 (Ir.Value.num_uses x);
  check_bool "x has one use" true (Ir.Value.has_one_use x);
  check_bool "x users is the add" true
    (match Ir.Value.users x with [ u ] -> Ir.Op.equal u add_op | _ -> false);
  Ir.Value.replace_all_uses x y;
  check_int "uses of x after replace" 0 (Ir.Value.num_uses x);
  check_bool "x unused after replace" false (Ir.Value.has_uses x);
  check_int "uses of y after replace" 2 (Ir.Value.num_uses y);
  check_bool "y users dedup to the add" true
    (match Ir.Value.users y with [ u ] -> Ir.Op.equal u add_op | _ -> false);
  check_bool "add operands now equal" true
    (Ir.Value.equal (Ir.Op.operand add_op 0) (Ir.Op.operand add_op 1))

let test_clone () =
  let module_op, func = build_add_func () in
  let cloned = Ir.Clone.clone_op func in
  (* The clone is structurally identical but shares no values. *)
  let orig_add = List.hd (Ir.Walk.find_all func "hir.add") in
  let cloned_add = List.hd (Ir.Walk.find_all cloned "hir.add") in
  check_bool "distinct ops" false (Ir.Op.equal orig_add cloned_add);
  check_bool "distinct values" false
    (Ir.Value.equal (Ir.Op.result orig_add 0) (Ir.Op.result cloned_add 0));
  (* Cloned add's operands are the cloned block's args, not the
     original's. *)
  let cloned_body = Hir_dialect.Ops.func_body cloned in
  check_bool "operand remapped" true
    (Ir.Value.equal (Ir.Op.operand cloned_add 0) (Ir.Block.arg cloned_body 0));
  ignore module_op

let test_clone_with_mapping () =
  let module_op, func = build_add_func () in
  ignore module_op;
  let body = Hir_dialect.Ops.func_body func in
  let x = Ir.Block.arg body 0 in
  (* Substitute x by y while cloning the add op. *)
  let y = Ir.Block.arg body 1 in
  let add_op = List.hd (Ir.Walk.find_all func "hir.add") in
  let mapping = Hashtbl.create 4 in
  Hashtbl.replace mapping (Ir.Value.id x) y;
  let cloned = Ir.Clone.clone_op ~mapping add_op in
  check_bool "mapped operand" true (Ir.Value.equal (Ir.Op.operand cloned 0) y)

let test_attributes () =
  let op =
    Ir.Op.create "hir.constant"
      ~attrs:[ ("value", Attribute.Int 42) ]
      ~operands:[] ~result_types:[ Hir_dialect.Types.Const ]
  in
  check_int "int attr" 42 (Ir.Op.int_attr op "value");
  Ir.Op.set_attr op "value" (Attribute.Int 7);
  check_int "set_attr replaces" 7 (Ir.Op.int_attr op "value");
  check_int "attr count stable" 1 (List.length op.Ir.attrs);
  Ir.Op.remove_attr op "value";
  check_bool "removed" true (Ir.Op.attr op "value" = None)

let test_verify_ok () =
  let module_op, _ = build_add_func () in
  match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected clean verify, got:\n%s" (Diagnostic.Engine.to_string e)

let test_verify_dominance () =
  (* Manually build a block where an op uses a value defined after it. *)
  let module_op = Hir_dialect.Builder.create_module () in
  let _func =
    Hir_dialect.Builder.func module_op ~name:"bad"
      ~args:[ Hir_dialect.Builder.arg "x" Typ.i32 ]
      (fun b args _t ->
        match args with
        | [ x ] ->
          (* Build y = add x c, then move the constant after it. *)
          let c = Hir_dialect.Builder.constant b 1 in
          let _y = Hir_dialect.Builder.add b x c in
          Hir_dialect.Builder.return_ b [];
          let block = b.Hir_dialect.Builder.block in
          let const_op = Option.get (Ir.Value.defining_op c) in
          Ir.Block.remove block const_op;
          Ir.Block.append block const_op
        | _ -> assert false)
  in
  match Verify.verify module_op with
  | Ok () -> Alcotest.fail "expected dominance violation"
  | Error e ->
    let s = Diagnostic.Engine.to_string e in
    let contains sub =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check_bool "mentions dominance" true (contains "dominate")

let test_verify_unregistered () =
  let module_op = Hir_dialect.Builder.create_module () in
  let block = Hir_dialect.Builder.module_block module_op in
  let bogus = Ir.Op.create "hir.func" ~operands:[] ~result_types:[] in
  Ir.Block.append block bogus;
  (* missing sym_name and body: dialect verifier must complain *)
  match Verify.verify module_op with
  | Ok () -> Alcotest.fail "expected dialect verifier error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Printing and parsing                                                *)

let test_print_parse_roundtrip () =
  let module_op, _ = build_add_func () in
  let text1 = Printer.op_to_string module_op in
  let reparsed =
    try Parser.parse_string text1
    with
    | Parser.Parse_error (loc, msg) ->
      Alcotest.failf "parse error at %s: %s\nin:\n%s" (Location.to_string loc) msg text1
    | Lexer.Lex_error (loc, msg) ->
      Alcotest.failf "lex error at %s: %s\nin:\n%s" (Location.to_string loc) msg text1
  in
  let text2 = Printer.op_to_string reparsed in
  check_string "round-trip fixpoint" text1 text2;
  match Verify.verify reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reparsed IR fails verify:\n%s" (Diagnostic.Engine.to_string e)

let test_parse_types () =
  List.iter
    (fun (text, expect) ->
      let lex = Lexer.create text in
      let t = Type_parser.parse lex in
      check_string ("type " ^ text) expect (Typ.to_string t))
    [
      ("i32", "i32");
      ("i1", "i1");
      ("f32", "f32");
      ("none", "none");
      ("!hir.const", "!hir.const");
      ("!hir.time", "!hir.time");
      ("!hir.memref<16*16*i32, r>", "!hir.memref<16*16*i32, r>");
      ("!hir.memref<2*i32, packing=[], w>", "!hir.memref<2*i32, packing=[], w>");
      ("!hir.memref<4*8*i32, packing=[1], rw>", "!hir.memref<4*8*i32, packing=[1], rw>");
    ]

let test_parse_errors () =
  let expect_fail text =
    match Parser.parse_string text with
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) -> ()
    | _ -> Alcotest.failf "expected parse failure for: %s" text
  in
  expect_fail "\"hir.constant\"(";
  expect_fail "%x = \"hir.add\"(%undefined, %undefined) : (i32, i32) -> (i32)";
  expect_fail "\"hir.constant\"() : () -> (!hir.bogus)";
  expect_fail ""

(* Regressions from the fuzzing campaign: each case crashed (or
   silently misbehaved) before the frontend hardening. *)

let wrap_op body =
  Printf.sprintf "\"builtin.module\"() ({\n  ^bb():\n%s\n}) : () -> ()" body

let test_lexer_int_literals () =
  (* "123abc" used to reach int_of_string and crash with [Failure]. *)
  (match Parser.parse_string (wrap_op "  \"hir.nop\"() {value = 123abc} : () -> ()") with
  | exception Lexer.Lex_error (loc, _) ->
    Alcotest.(check bool) "lex error has a location" false (Location.is_unknown loc)
  | exception exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected a lex error for 123abc");
  (* An out-of-range literal is a lex error, not a [Failure]. *)
  (match
     Parser.parse_string
       (wrap_op "  \"hir.nop\"() {value = 99999999999999999999} : () -> ()")
   with
  | exception Lexer.Lex_error _ -> ()
  | exception exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected a lex error for an out-of-range literal");
  (* min_int has no positive counterpart, so "-4611686018427387904"
     must parse as one (negative) literal, not overflow. *)
  let m =
    Parser.parse_string
      (wrap_op
         (Printf.sprintf "  \"hir.nop\"() {value = %d} : () -> ()" min_int))
  in
  let nop = List.hd (Ir.Block.ops (Hir_dialect.Builder.module_block m)) in
  (match Ir.Op.attr nop "value" with
  | Some (Attribute.Int n) -> Alcotest.(check bool) "min_int survives" true (n = min_int)
  | _ -> Alcotest.fail "min_int literal lost")

let test_lexer_string_newlines () =
  (* Newlines inside string literals must advance the line counter so
     later locations stay accurate. *)
  let text =
    "\"builtin.module\"() ({\n\
    \  ^bb():\n\
    \  \"hir.nop\"() {tag = \"a\nb\"} : () -> ()\n\
    \  %x = \"hir.oops\"(\n\
     }) : () -> ()"
  in
  match Parser.parse_string ~file:"t.hir" text with
  | exception Parser.Parse_error (Location.File { line; _ }, _) ->
    (* The parser trips on the closing '}' of line 6 once the embedded
       newline is counted (line 5 if the string's newline were lost). *)
    Alcotest.(check int) "line tracks string newlines" 6 line
  | exception exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected a parse error"

let test_duplicate_ssa_definition () =
  let text =
    wrap_op
      "  %c = \"hir.constant\"() {value = 1} : () -> (!hir.const)\n\
      \  %c = \"hir.constant\"() {value = 2} : () -> (!hir.const)"
  in
  let contains hay needle =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  match Parser.parse_string ~file:"dup.hir" text with
  | exception Parser.Parse_error (loc, msg) ->
    Alcotest.(check bool) "error is located" false (Location.is_unknown loc);
    Alcotest.(check bool) "message names the value" true (contains msg "%c")
  | exception exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected duplicate-definition error"

let test_nesting_depth_limit () =
  (* Deeply nested attribute brackets used to exhaust the OCaml stack;
     now the parser reports a diagnostic at its depth limit. *)
  let deep = String.concat "" (List.init 300 (fun _ -> "[")) in
  let text = wrap_op ("  \"hir.nop\"() {v = " ^ deep ^ "} : () -> ()") in
  match Parser.parse_string text with
  | exception Parser.Parse_error (_, msg) ->
    Alcotest.(check bool)
      "mentions nesting" true
      (String.length msg > 0
      && (let lower = String.lowercase_ascii msg in
          let has_sub needle =
            let n = String.length needle and l = String.length lower in
            let rec go i = i + n <= l && (String.sub lower i n = needle || go (i + 1)) in
            go 0
          in
          has_sub "nest" || has_sub "deep"))
  | exception Stack_overflow -> Alcotest.fail "stack overflow: depth limit missing"
  | exception exn -> Alcotest.failf "wrong exception: %s" (Printexc.to_string exn)
  | _ -> Alcotest.fail "expected a depth-limit error"

let test_diagnostics_format () =
  let loc = Location.file ~file:"test/HIR/err_add.mlir" ~line:13 ~col:5 in
  let note_loc = Location.file ~file:"test/HIR/err_add.mlir" ~line:8 ~col:3 in
  let d =
    Diagnostic.error loc
      ~notes:[ Diagnostic.note ~loc:note_loc "Prior definition here." ]
      "Schedule error: mismatched delay (0 vs 1) in address 0!"
  in
  check_string "rendering"
    "test/HIR/err_add.mlir:13:5: error: Schedule error: mismatched delay (0 vs 1) \
     in address 0!\n\
     test/HIR/err_add.mlir:8:3: note: Prior definition here."
    (Diagnostic.to_string d)

let test_pass_manager () =
  let module_op, _ = build_add_func () in
  let ran = ref [] in
  let mk name =
    Pass.make ~name ~description:"test pass" (fun _ _ ->
        ran := name :: !ran;
        false)
  in
  let mgr = Pass.Manager.create ~verify_each:true [ mk "a"; mk "b" ] in
  let result = Pass.Manager.run mgr module_op in
  check_bool "succeeded" true result.Pass.succeeded;
  check_int "both passes ran" 2 (List.length !ran);
  check_int "stats recorded" 2 (List.length result.Pass.stats);
  (* A pass that reports an error halts the pipeline. *)
  let failing =
    Pass.make ~name:"fail" ~description:"fails" (fun op engine ->
        Diagnostic.Engine.error engine (Ir.Op.loc op) "boom";
        false)
  in
  let mgr = Pass.Manager.create [ mk "a"; failing; mk "c" ] in
  ran := [];
  let result = Pass.Manager.run mgr module_op in
  check_bool "failed" false result.Pass.succeeded;
  check_bool "later pass skipped" false (List.mem "c" !ran)

let test_dialect_registry () =
  check_bool "hir.for registered" true (Dialect.lookup_op "hir.for" <> None);
  check_bool "terminator trait" true (Dialect.op_has_trait "hir.yield" Dialect.Terminator);
  check_bool "pure trait" true (Dialect.op_has_trait "hir.add" Dialect.Pure);
  check_bool "not pure" false (Dialect.op_has_trait "hir.mem_write" Dialect.Pure);
  let ops = Dialect.registered_ops () in
  check_bool "table 2 inventory has >= 25 ops" true (List.length ops >= 25);
  check_bool "sorted" true
    (let names = List.map (fun d -> d.Dialect.od_name) ops in
     names = List.sort String.compare names)

let () =
  Alcotest.run "ir"
    [
      ( "core",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "walk" `Quick test_walk;
          Alcotest.test_case "rewrite" `Quick test_rewrite;
          Alcotest.test_case "clone" `Quick test_clone;
          Alcotest.test_case "clone with mapping" `Quick test_clone_with_mapping;
          Alcotest.test_case "attributes" `Quick test_attributes;
        ] );
      ( "verify",
        [
          Alcotest.test_case "well-formed" `Quick test_verify_ok;
          Alcotest.test_case "dominance" `Quick test_verify_dominance;
          Alcotest.test_case "dialect verifier" `Quick test_verify_unregistered;
        ] );
      ( "text",
        [
          Alcotest.test_case "print/parse round-trip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "type parsing" `Quick test_parse_types;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "lexer int literals" `Quick test_lexer_int_literals;
          Alcotest.test_case "string newline tracking" `Quick test_lexer_string_newlines;
          Alcotest.test_case "duplicate SSA definition" `Quick test_duplicate_ssa_definition;
          Alcotest.test_case "nesting depth limit" `Quick test_nesting_depth_limit;
          Alcotest.test_case "diagnostic format" `Quick test_diagnostics_format;
        ] );
      ( "infra",
        [
          Alcotest.test_case "pass manager" `Quick test_pass_manager;
          Alcotest.test_case "dialect registry" `Quick test_dialect_registry;
        ] );
    ]
