(* 2-D convolution of an 8x8 image with a constant 3x3 kernel, using
   line buffers and a register window, pipelined at II = 1 over the
   pixel stream.

   The kernel weights are the binomial 1 2 1 / 2 4 2 / 1 2 1, so every
   multiply strength-reduces to a shift: the design consumes no DSP
   blocks, matching the Convolution row of Table 5.

   The design writes one (causal) output per pixel:
     out[r*W + c] = sum_{dr,dc} w[dr][dc] * img[(r-2+dr)*W + (c-2+dc)]
   valid for r >= 2 && c >= 2; border positions hold garbage, as in any
   un-predicated streaming convolution. *)

open Hir_ir
open Hir_dialect

let name = "convolution"
let w = 8
let h = 8
let weights = [| [| 1; 2; 1 |]; [| 2; 4; 2 |]; [| 1; 2; 1 |] |]

let build_into m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "img" (Types.memref ~dims:[ w * h ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "out" (Types.memref ~dims:[ w * h ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ img; out ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cnpix = Builder.constant b (w * h) in
        let cmask = Builder.constant b (w - 1) in
        (* Two line buffers, one bank per row so both are read and
           written every cycle. *)
        let lb_ports =
          Builder.alloc b ~kind:Ops.Lut_ram ~dims:[ 2; w ] ~packing:[ 1 ]
            ~elem:Typ.i32 ~ports:[ Types.Read; Types.Write ]
        in
        let lb_r, lb_w = match lb_ports with [ r; wp ] -> (r, wp) | _ -> assert false in
        (* Window registers: 3 rows x 2 columns of past samples; the
           third column of the window is the live stream. *)
        let win_ports =
          Builder.alloc b ~kind:Ops.Reg ~dims:[ 3; 2 ] ~packing:[] ~elem:Typ.i32
            ~ports:[ Types.Read; Types.Write ]
        in
        let win_r, win_w =
          match win_ports with [ r; wp ] -> (r, wp) | _ -> assert false
        in
        (* Clear the window registers and line buffers first: every
           cell is read before the corresponding pixel has flowed in,
           and reads of uninitialized memory are UB (Section 4.5). *)
        List.iter
          (fun (r, k) ->
            let cr = Builder.constant b r and ck = Builder.constant b k in
            Builder.mem_write b c0 win_w [ cr; ck ] ~at:Builder.(t @>> 0))
          [ (0, 0); (0, 1); (1, 0); (1, 1); (2, 0); (2, 1) ];
        let tf_clear =
          Builder.for_loop b ~iv_hint:"cc" ~lb:c0 ~ub:(Builder.constant b w) ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:cc ~ti ->
              Builder.mem_write b c0 lb_w [ c0; cc ] ~at:Builder.(ti @>> 0);
              Builder.mem_write b c0 lb_w [ c1; cc ] ~at:Builder.(ti @>> 0);
              Builder.yield b ~at:Builder.(ti @>> 1))
        in
        let _tf =
          Builder.for_loop b ~iv_hint:"p" ~lb:c0 ~ub:cnpix ~step:c1
            ~at:Builder.(tf_clear @>> 1)
            (fun b ~iv:p ~ti ->
              Builder.yield b ~at:Builder.(ti @>> 1);
              let col = Builder.logand b p cmask ~hint:"col" in
              (* Row streams: two line-buffer taps plus the live pixel,
                 all valid at ti+1. *)
              let top = Builder.mem_read b lb_r [ c0; col ] ~at:Builder.(ti @>> 0) in
              let mid = Builder.mem_read b lb_r [ c1; col ] ~at:Builder.(ti @>> 0) in
              let bot = Builder.mem_read b img [ p ] ~at:Builder.(ti @>> 0) in
              let col1 = Builder.delay b col ~by:1 ~at:Builder.(ti @>> 0) in
              (* Shift the line buffers up. *)
              Builder.mem_write b mid lb_w [ c0; col1 ] ~at:Builder.(ti @>> 1);
              Builder.mem_write b bot lb_w [ c1; col1 ] ~at:Builder.(ti @>> 1);
              let streams = [ top; mid; bot ] in
              (* Window taps for each row r: win[r][0] (oldest),
                 win[r][1], stream (newest); then shift the window. *)
              let taps =
                List.mapi
                  (fun r stream ->
                    let cr = Builder.constant b r in
                    let t0 = Builder.mem_read b win_r [ cr; c0 ] ~at:Builder.(ti @>> 1) in
                    let t1 = Builder.mem_read b win_r [ cr; c1 ] ~at:Builder.(ti @>> 1) in
                    Builder.mem_write b t1 win_w [ cr; c0 ] ~at:Builder.(ti @>> 1);
                    Builder.mem_write b stream win_w [ cr; c1 ] ~at:Builder.(ti @>> 1);
                    [ t0; t1; stream ])
                  streams
              in
              (* Weighted sum; weights are powers of two, so shifts. *)
              let terms =
                List.concat
                  (List.mapi
                     (fun r row ->
                       List.mapi
                         (fun k tap ->
                           match weights.(r).(k) with
                           | 1 -> tap
                           | 2 -> Builder.shl b tap c1
                           | 4 -> Builder.shl b tap (Builder.constant b 2)
                           | wgt ->
                             Builder.mult b tap (Builder.constant b wgt))
                         row)
                     taps)
              in
              let sum =
                match terms with
                | first :: rest -> List.fold_left (fun acc x -> Builder.add b acc x) first rest
                | [] -> assert false
              in
              let p1 = Builder.delay b p ~by:1 ~at:Builder.(ti @>> 0) in
              Builder.mem_write b sum out [ p1 ] ~at:Builder.(ti @>> 1))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input =
  Array.init (w * h) (fun idx ->
      let r = idx / w and c = idx mod w in
      if r >= 2 && c >= 2 then begin
        let acc = ref (Bitvec.zero 32) in
        for dr = 0 to 2 do
          for dc = 0 to 2 do
            let pix = input.(((r - 2 + dr) * w) + (c - 2 + dc)) in
            acc :=
              Bitvec.add !acc (Bitvec.mul pix (Util.bv32 weights.(dr).(dc)))
          done
        done;
        !acc
      end
      else Bitvec.zero 32)

let is_valid_index idx =
  let r = idx / w and c = idx mod w in
  r >= 2 && c >= 2

let make_input ~seed =
  (* Small pixel values keep sums readable; correctness is width-exact
     regardless. *)
  Array.map
    (fun v -> Bitvec.of_int ~width:32 (Bitvec.to_int v land 0xFF))
    (Util.test_data ~seed ~n:(w * h) ~width:32)

let check_interp ?(seed = 5) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let outv = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      if is_valid_index i then
        match v with
        | Some got when Bitvec.equal got expected.(i) -> ()
        | _ -> ok := false)
    outv;
  if !ok then Ok result else Error "convolution output mismatch"
