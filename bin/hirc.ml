(* hirc — the HIR compiler driver.

     hirc compile design.hir [-o out.v] [--top f] [--no-opt]
         parse (generic textual form), verify, optimize, emit Verilog
     hirc verify design.hir
         run the structural and schedule verifiers, print diagnostics
     hirc print design.hir
         parse and re-print (round-trip check)
     hirc kernels
         list the built-in benchmark kernels
     hirc demo <kernel> [-o out.v] [--no-opt] [--stats] [--no-share]
         compile a built-in kernel and report resources (--stats shows
         the per-definition hierarchy breakdown; --no-share flattens it)
     hirc pipeline --passes "<spec>" design.hir [-o out.v] [--stats]
         compile with an explicit textual pass pipeline (--list shows
         the available passes)
     hirc batch <files-or-kernels…> [-j N] [--cache-dir D] [--trace t.json]
               [--deadline S] [--retries N] [--json OUT.json]
               [--inject SPEC] [--inject-seed N]
         compile many designs concurrently through the compilation
         service, with optional persistent caching, Chrome tracing,
         per-job deadlines, retry of transient failures and seeded
         fault injection; exits 0 when every job succeeded (possibly
         degraded), 2 when the batch completed but some jobs failed
     hirc cache <dir> [--verify] [--prune]
         check every cache entry against its content digest
         (quarantining damaged ones) and/or empty the quarantine
     hirc sim <kernel> [--cycles N] [--engine opcode|compiled|reference]
              [--partitions auto|N] [--batch K] [--stats] [--vcd out.vcd]
              [--hls] [--inject SPEC]
         compile a built-in kernel and run it in the RTL simulator with
         generic inputs; --partitions controls the opcode engine's
         parallel settle, --batch runs K interleaved stimuli through
         one compiled program, --stats reports the simulator's own
         counters (settles, assigns evaluated vs skipped, fast-path hit
         rate, partitions)

   The end-to-end flow (parse → verify → passes → emit) lives in
   [Hir_driver.Driver]; this file is only the command-line surface. *)

open Hir_ir
open Hir_dialect
open Hir_driver
open Cmdliner

let () = Ops.register ()

(* Ignore SIGPIPE process-wide: a client that hangs up mid-response (or
   a broken pipe on batch stdout) must surface as an [EPIPE]
   [Unix.Unix_error] on the offending write — a per-connection error the
   server handles — not kill the process.  Windows has no SIGPIPE. *)
let () =
  match Sys.os_type with
  | "Unix" | "Cygwin" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ()

let load_module path =
  try Ok (Parser.parse_file path) with
  | Parser.Parse_error (loc, msg) ->
    Error (Printf.sprintf "%s: parse error: %s" (Location.to_string loc) msg)
  | Lexer.Lex_error (loc, msg) ->
    Error (Printf.sprintf "%s: lex error: %s" (Location.to_string loc) msg)
  | Sys_error e -> Error e

let run_verifiers module_op =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify module_op with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  if not (Diagnostic.Engine.has_errors engine) then
    Verify_schedule.verify_module engine module_op;
  engine

let output_text out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.eprintf "wrote %s (%d bytes)\n" path (String.length text)

(* Run one job through the compilation service and write its output. *)
let run_job ?cache ?stats ~out job =
  match Driver.compile_job ?cache job with
  | Error e ->
    prerr_endline (Driver.error_to_string e);
    1
  | Ok o ->
    Option.iter (Printf.eprintf "note: %s\n") o.Driver.note;
    (match stats with
    | Some true ->
      List.iter
        (fun (s : Pass.stat) ->
          Printf.eprintf "%-28s %8.3f ms %s\n" s.Pass.pass_name (s.Pass.seconds *. 1000.)
            (if s.Pass.changed then "(changed)" else "");
          List.iter
            (fun (name, n) -> Printf.eprintf "    %-32s %6d\n" name n)
            s.Pass.counters)
        o.Driver.pass_stats
    | _ -> ());
    (match (stats, cache) with
    | Some true, Some c ->
      Printf.eprintf "cache: %d hits / %d misses / %d stores\n" (Cache.hits c)
        (Cache.misses c) (Cache.store_count c)
    | _ -> ());
    output_text out o.Driver.verilog;
    0

(* ----------------------------- commands --------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hir file")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file")

let top_arg =
  Arg.(value & opt (some string) None & info [ "top" ] ~docv:"FUNC" ~doc:"Top-level function")

let no_opt_arg =
  Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the optimization pipeline")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Persist compiled output in a content-addressed cache under $(docv)")

(* "512K" / "64M" / "2G" -> bytes; bare numbers are bytes. *)
let parse_size s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error (`Msg "empty size")
  else
    let mult, digits =
      match Char.uppercase_ascii s.[n - 1] with
      | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v > 0 -> Ok (v * mult)
    | _ ->
      Error (`Msg (Printf.sprintf "invalid size '%s' (expected e.g. 512K, 64M, 1G)" s))

let size_conv = Arg.conv (parse_size, fun ppf n -> Format.fprintf ppf "%d" n)

let cache_budget_arg =
  Arg.(
    value
    & opt (some size_conv) None
    & info [ "cache-budget" ] ~docv:"SIZE"
        ~doc:
          "Keep the cache under $(docv) bytes (suffixes K, M, G) by evicting \
           least-recently-used entries after each store")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:"Write per-stage timing spans as Chrome trace JSON to $(docv)")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection: comma-separated rules \
           $(i,point)=$(i,prob) (fire each hit with that probability) or \
           $(i,point)@$(i,n) (fire on exactly the n-th hit per job). Points: \
           cache.read, cache.write, worker.spawn, job.compile, sim.settle, or \
           $(b,*) for all.")

let inject_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "inject-seed" ] ~docv:"N"
        ~doc:"Seed for --inject decisions; the same seed reproduces the same faults")

(* Parse --inject/--inject-seed into a [Faults.config], or None when
   injection is off.  Shared by `hirc batch` and `hirc sim`. *)
let fault_config_of inject inject_seed =
  match inject with
  | None -> Ok None
  | Some spec -> (
    match Faults.parse_spec spec with
    | Error e -> Error (Printf.sprintf "invalid --inject spec: %s" e)
    | Ok rules -> Ok (Some { Faults.rules; seed = inject_seed }))

let with_faults cfg f =
  match cfg with None -> f () | Some cfg -> Faults.with_config cfg f

let compile_cmd =
  let run file out top no_opt =
    let pipeline = Pipeline.default ~optimize:(not no_opt) in
    run_job ~out (Driver.job_of_file ?top ~pipeline file)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile textual HIR to Verilog")
    Term.(const run $ file_arg $ out_arg $ top_arg $ no_opt_arg)

let verify_cmd =
  let run file =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      let engine = run_verifiers m in
      if Diagnostic.Engine.has_errors engine then begin
        prerr_endline (Diagnostic.Engine.to_string engine);
        1
      end
      else begin
        Printf.printf "%s: all functions verify\n" file;
        0
      end
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a textual HIR design") Term.(const run $ file_arg)

let print_cmd =
  let pretty_arg =
    Arg.(value & flag & info [ "pretty" ] ~doc:"Use the paper-style custom syntax")
  in
  let run file out pretty =
    match load_module file with
    | Error e ->
      prerr_endline e;
      1
    | Ok m ->
      if pretty then output_text out (Pretty.module_to_string m)
      else output_text out (Printer.op_to_string m ^ "\n");
      0
  in
  Cmd.v
    (Cmd.info "print" ~doc:"Parse and re-print (round-trip, or --pretty)")
    Term.(const run $ file_arg $ out_arg $ pretty_arg)

let kernels_cmd =
  let run () =
    List.iter
      (fun k ->
        Printf.printf "%-14s %s\n" k.Hir_kernels.Kernels.name
          k.Hir_kernels.Kernels.description)
      Hir_kernels.Kernels.all;
    0
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List the built-in benchmark kernels")
    Term.(const run $ const ())

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print per-pass statistics / resource estimates")

(* " (did you mean transpose?)" — or "" when nothing is close. *)
let did_you_mean candidates =
  match candidates with
  | [] -> ""
  | l -> Printf.sprintf " (did you mean %s?)" (String.concat " or " l)

let unknown_kernel name =
  Printf.sprintf "unknown kernel %s%s (try `hirc kernels`)" name
    (did_you_mean (Hir_kernels.Kernels.suggest name))

let no_share_arg =
  Arg.(
    value & flag
    & info [ "no-share" ]
        ~doc:
          "With --stats, report flat (inclusive) resource numbers instead of the \
           hierarchy-aware per-definition breakdown")

let demo_cmd =
  let kernel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel name")
  in
  let run name out no_opt stats no_share =
    match Hir_kernels.Kernels.find name with
    | None ->
      Printf.eprintf "%s\n" (unknown_kernel name);
      1
    | Some k ->
      let pipeline = Pipeline.default ~optimize:(not no_opt) in
      let job = Driver.job_of_builder ~pipeline ~name k.Hir_kernels.Kernels.build in
      (match Driver.compile_job job with
      | Error e ->
        prerr_endline (Driver.error_to_string e);
        1
      | Ok o ->
        if stats then begin
          List.iter
            (fun (s : Pass.stat) ->
              Printf.eprintf "%-28s %8.3f ms %s\n" s.Pass.pass_name
                (s.Pass.seconds *. 1000.)
                (if s.Pass.changed then "(changed)" else "");
              List.iter
                (fun (cname, n) -> Printf.eprintf "    %-32s %6d\n" cname n)
                s.Pass.counters)
            o.Driver.pass_stats;
          if no_share then
            (* Flat accounting: every instance charged in full. *)
            Printf.eprintf "%s: %s\n" name
              (Format.asprintf "%a" Hir_resources.Model.pp o.Driver.usage)
          else begin
            (* Hierarchy-aware accounting needs the design AST, which
               the driver's cached text path does not keep; re-emit. *)
            let module_op, top = k.Hir_kernels.Kernels.build () in
            let emitted =
              Hir_codegen.Emit.compile ~optimize:(not no_opt) ~module_op ~top ()
            in
            let report =
              Hir_resources.Model.shared_report emitted.Hir_codegen.Emit.design
            in
            Printf.eprintf "%s:\n%s\n" name
              (Format.asprintf "%a" Hir_resources.Model.pp_shared report)
          end
        end;
        output_text out o.Driver.verilog;
        0)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Compile a built-in kernel")
    Term.(const run $ kernel_arg $ out_arg $ no_opt_arg $ stats_arg $ no_share_arg)

(* ------------------------------------------------------------------ *)
(* hirc pipeline                                                       *)

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"SPEC"
        ~doc:
          "Comma-separated pass pipeline, e.g. \
           'canonicalize,precision-opt,unroll,delay-elim'. Stages take options in \
           braces: 'retime{repeat=2}'.")

let pipeline_cmd =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List the available passes and exit")
  in
  let file_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .hir file")
  in
  let run passes file out top stats cache_dir cache_budget list =
    if list then begin
      List.iter
        (fun (name, descr) -> Printf.printf "%-20s %s\n" name descr)
        (Pipeline.available_passes ());
      0
    end
    else
      match (passes, file) with
      | None, _ ->
        prerr_endline "pipeline: --passes SPEC is required (or --list)";
        1
      | _, None ->
        prerr_endline "pipeline: an input FILE is required (or --list)";
        1
      | Some spec_src, Some file -> (
        match Pipeline.parse_located spec_src with
        | Error d ->
          Printf.eprintf "%s\n" (Diagnostic.to_string d);
          1
        | Ok pipeline ->
          Printf.eprintf "pipeline: %s\n" (Pipeline.to_string pipeline);
          let cache =
            Option.map
              (fun dir -> Cache.create ?budget_bytes:cache_budget ~dir ())
              cache_dir
          in
          run_job ?cache ~stats ~out (Driver.job_of_file ?top ~pipeline file))
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Compile with an explicit textual pass pipeline")
    Term.(
      const run $ passes_arg $ file_opt_arg $ out_arg $ top_arg $ stats_arg
      $ cache_dir_arg $ cache_budget_arg $ list_arg)

(* ------------------------------------------------------------------ *)
(* hirc fuzz                                                           *)

let fuzz_cmd =
  let iterations_arg =
    Arg.(
      value & pos 0 int 10000
      & info [] ~docv:"N" ~doc:"Number of fuzz iterations (default 10000)")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed (default 1)")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Also run the pass pipeline, codegen and the Verilog printer on inputs \
             that verify (slower; default fuzzes parse + verify only)")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Add every .hir file under $(docv) to the seed corpus")
  in
  let crash_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-dir" ] ~docv:"DIR"
          ~doc:"Write each crashing input to $(docv)/crash-<i>.hir")
  in
  let dump_last_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-last" ] ~docv:"FILE"
          ~doc:
            "Before each iteration, overwrite $(docv) with the input about to run — \
             if the fuzzer hangs or is killed, $(docv) holds the offending input")
  in
  let run iterations seed full corpus_dir crash_dir dump_last =
    let corpus =
      Hir_fuzz.Corpus.default ()
      @ (match corpus_dir with Some d -> Hir_fuzz.Corpus.load_dir d | None -> [])
    in
    let mode = if full then Hir_fuzz.Fuzz.Full else Hir_fuzz.Fuzz.Frontend in
    let on_crash (c : Hir_fuzz.Fuzz.crash) =
      Printf.eprintf "CRASH at iteration %d: %s\n" c.Hir_fuzz.Fuzz.crash_iteration
        c.Hir_fuzz.Fuzz.crash_exn;
      match crash_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        let path =
          Filename.concat dir
            (Printf.sprintf "crash-%d.hir" c.Hir_fuzz.Fuzz.crash_iteration)
        in
        let oc = open_out_bin path in
        output_string oc c.Hir_fuzz.Fuzz.crash_input;
        close_out oc;
        Printf.eprintf "  input saved to %s\n" path
    in
    let on_input ~iteration:_ input =
      match dump_last with
      | None -> ()
      | Some path ->
        let oc = open_out_bin path in
        output_string oc input;
        close_out oc
    in
    let stats = Hir_fuzz.Fuzz.run ~mode ~seed ~on_crash ~on_input ~iterations corpus in
    Printf.printf "fuzz (%s, seed %d): %s\n"
      (if full then "full" else "frontend")
      seed
      (Hir_fuzz.Fuzz.stats_to_string stats);
    if stats.Hir_fuzz.Fuzz.crashes = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mutation-fuzz the textual frontend; any input that produces a \
          non-diagnostic crash is reported (and the run exits 1)")
    Term.(
      const run $ iterations_arg $ seed_arg $ full_arg $ corpus_arg $ crash_dir_arg
      $ dump_last_arg)

(* ------------------------------------------------------------------ *)
(* hirc sim                                                            *)

module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

(* Located diagnostics for `hirc sim` argument validation: the flag
   name doubles as the pseudo-file, so a bad value renders like the
   pass parser's errors ("--engine:1:1: ...") and can carry a
   "did you mean" suggestion, instead of cmdliner's bare failure. *)
let arg_diag ~flag msg = Diagnostic.error (Location.file ~file:flag ~line:1 ~col:1) msg

let parse_engine s =
  match Hir_rtl.Sim.engine_of_string s with
  | Some e -> Ok e
  | None ->
    Error
      (arg_diag ~flag:"--engine"
         (Printf.sprintf "unknown engine %s%s (one of: %s)" s
            (did_you_mean
               (Hir_kernels.Kernels.suggest_from ~candidates:Hir_rtl.Sim.engine_names s))
            (String.concat ", " Hir_rtl.Sim.engine_names)))

(* "auto" (0: size to the machine) or an explicit count >= 1. *)
let parse_partitions s =
  if s = "auto" then Ok 0
  else
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n ->
      Error
        (arg_diag ~flag:"--partitions"
           (Printf.sprintf "partition count must be >= 1 (got %d)" n))
    | None ->
      Error
        (arg_diag ~flag:"--partitions"
           (Printf.sprintf "invalid partition count %s%s (expected a positive integer or auto)"
              s
              (did_you_mean (Hir_kernels.Kernels.suggest_from ~candidates:[ "auto" ] s))))

let parse_batch s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | Some n ->
    Error (arg_diag ~flag:"--batch" (Printf.sprintf "batch size must be >= 1 (got %d)" n))
  | None ->
    Error
      (arg_diag ~flag:"--batch"
         (Printf.sprintf "invalid batch size %s (expected a positive integer)" s))

let sim_cmd =
  let kernel_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"KERNEL" ~doc:"Kernel name (see `hirc kernels`)")
  in
  let cycles_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cycles" ] ~docv:"N"
          ~doc:"Clock cycles to run (default: the interpreter's latency)")
  in
  let engine_arg =
    Arg.(
      value & opt string "opcode"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Simulation engine: $(b,opcode) (default), $(b,compiled) or \
             $(b,reference)")
  in
  let partitions_arg =
    Arg.(
      value & opt string "auto"
      & info [ "partitions" ] ~docv:"P"
          ~doc:
            "Partitions for the opcode engine's parallel settle: $(b,auto) \
             (default, sized to the machine) or an explicit count >= 1")
  in
  let batch_arg =
    Arg.(
      value & opt string "1"
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Run $(docv) interleaved copies of the stimulus through one \
             compiled program (elaboration is paid once)")
  in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"OUT.vcd" ~doc:"Dump a VCD waveform to $(docv)")
  in
  let hls_arg =
    Arg.(
      value & flag
      & info [ "hls" ]
          ~doc:
            "Simulate the HLS-compiled variant from the evaluation suite instead of \
             the native HIR kernel")
  in
  let run name cycles engine_s partitions_s batch_s stats vcd_path use_hls inject
      inject_seed =
    let ( let* ) r f =
      match r with
      | Error d ->
        Printf.eprintf "%s\n" (Diagnostic.to_string d);
        1
      | Ok v -> f v
    in
    let* engine = parse_engine engine_s in
    let* partitions = parse_partitions partitions_s in
    let* batch = parse_batch batch_s in
    match fault_config_of inject inject_seed with
    | Error e ->
      prerr_endline e;
      1
    | Ok fault_cfg ->
    let build_r =
      if use_hls then
        match Hir_hls.Suite.find name with
        | None ->
          let names = List.map fst (Hir_hls.Suite.all ()) in
          Error
            (Printf.sprintf "unknown HLS suite kernel %s%s (one of: %s)" name
               (did_you_mean (Hir_kernels.Kernels.suggest_from ~candidates:names name))
               (String.concat ", " names))
        | Some source ->
          Ok
            (fun () ->
              let c = Hir_hls.Compiler.compile source in
              (c.Hir_hls.Compiler.hls_module, c.Hir_hls.Compiler.hls_func))
      else
        match Hir_kernels.Kernels.find name with
        | None -> Error (unknown_kernel name)
        | Some k -> Ok k.Hir_kernels.Kernels.build
    in
    match build_r with
    | Error e ->
      prerr_endline e;
      1
    | Ok build ->
      (* Generic inputs derived from the compiled interface: zeroed
         scalars, zero-filled tensors on readable memref ports, a
         capture buffer on write-only ports. *)
      let emitted =
        let m, f = build () in
        if use_hls then Emit.compile ~module_op:m ~top:f ()
        else Emit.compile ~optimize:true ~module_op:m ~top:f ()
      in
      let inputs =
        List.map
          (fun arg ->
            match arg with
            | Emit.Ifc_scalar (_, w, _) -> (Harness.Scalar (Bitvec.zero w), Interp.Scalar (Bitvec.zero w))
            | Emit.Ifc_mem mi -> (
              let info = mi.Emit.mi_info in
              match info.Types.port with
              | Types.Write -> (Harness.Out_tensor, Interp.Out_tensor)
              | _ ->
                let n = Types.num_elements info in
                let zeros = Array.init n (fun _ -> Bitvec.zero mi.Emit.mi_elem_width) in
                (Harness.Tensor zeros, Interp.Tensor (Array.copy zeros))))
          emitted.Emit.top_iface.Emit.ifc_args
      in
      let harness_inputs = List.map fst inputs in
      let cycles =
        match cycles with
        | Some n -> n
        | None ->
          (* compile mutated the module, so rebuild for the interpreter. *)
          let m, f = build () in
          let r, _ = Interp.run ~module_op:m ~func:f (List.map snd inputs) in
          r.Interp.cycles
      in
      let results, counters =
        Pass.with_counters (fun () ->
            with_faults fault_cfg (fun () ->
                if batch = 1 then
                  [ Harness.run ~engine ~partitions ?vcd_path ~emitted
                      ~inputs:harness_inputs ~cycles () ]
                else
                  (* --vcd samples a single simulation; batched runs
                     skip waveform dumping. *)
                  Harness.run_batch ~engine ~partitions ~emitted
                    ~stimuli:(List.init batch (fun _ -> harness_inputs))
                    ~cycles ()))
      in
      let result, _agents = List.hd results in
      let total_failures =
        List.fold_left (fun acc (r, _) -> acc + List.length r.Harness.failures) 0 results
      in
      Printf.printf "%s: %d cycles%s on the %s engine%s, %d assertion failure(s)\n" name
        result.Harness.cycles_run
        (if batch > 1 then Printf.sprintf " x %d stimuli" batch else "")
        (Hir_rtl.Sim.engine_name result.Harness.engine_used)
        (if result.Harness.engine_used <> engine then
           Printf.sprintf " (degraded from %s)" (Hir_rtl.Sim.engine_name engine)
         else "")
        total_failures;
      List.iter
        (fun (fl : Hir_rtl.Sim.assertion_failure) ->
          Printf.printf "  assertion at cycle %d: %s\n" fl.Hir_rtl.Sim.at_cycle
            fl.Hir_rtl.Sim.message)
        result.Harness.failures;
      List.iter
        (fun (rname, v) -> Printf.printf "  result %s = %s\n" rname (Bitvec.to_string v))
        result.Harness.output_values;
      if stats then
        List.iter (fun (cname, n) -> Printf.printf "  %-28s %10d\n" cname n) counters;
      if total_failures = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Run a built-in kernel in the RTL simulator")
    Term.(
      const run $ kernel_arg $ cycles_arg $ engine_arg $ partitions_arg $ batch_arg
      $ stats_arg $ vcd_arg $ hls_arg $ inject_arg $ inject_seed_arg)

(* ------------------------------------------------------------------ *)
(* hirc cache                                                          *)

let cache_cmd =
  let dir_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Cache directory (as passed to --cache-dir)")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Check every entry against its content digest; damaged entries are \
             moved to $(i,DIR)/quarantine")
  in
  let prune_arg =
    Arg.(
      value & flag
      & info [ "prune" ] ~doc:"Delete quarantined entries and stale temp files")
  in
  let warm_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm" ] ~docv:"KERNELS"
          ~doc:
            "Precompile a comma-separated list of built-in kernels (or $(b,all)) \
             into the cache, priming it for a server or batch run")
  in
  let warm_jobs_arg =
    Arg.(
      value
      & opt int (Scheduler.default_workers ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for --warm")
  in
  let cache_stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print on-disk population and size by entry kind (whole-job, linked \
             design, normalized source, per-function IR, per-function Verilog)")
  in
  let warm c spec workers =
    let names =
      if spec = "all" then List.map (fun k -> k.Hir_kernels.Kernels.name) Hir_kernels.Kernels.all
      else
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
    in
    let jobs_r =
      List.fold_left
        (fun acc name ->
          match (acc, Hir_kernels.Kernels.find name) with
          | Error e, _ -> Error e
          | _, None -> Error (unknown_kernel name)
          | Ok jobs, Some k ->
            Ok
              (Driver.job_of_builder
                 ~pipeline:(Pipeline.default ~optimize:true)
                 ~name k.Hir_kernels.Kernels.build
              :: jobs))
        (Ok []) names
      |> Result.map List.rev
    in
    match jobs_r with
    | Error e ->
      prerr_endline e;
      1
    | Ok jobs ->
      let stored, hits, failures =
        Driver.warm_cache ~cache:c ~workers (Array.of_list jobs)
      in
      Printf.printf "warm: %d kernel%s -> %d stored, %d already cached, %d failed\n"
        (List.length jobs)
        (if List.length jobs = 1 then "" else "s")
        stored hits failures;
      if failures > 0 then 1 else 0
  in
  let run dir verify prune warm_spec warm_workers stats budget =
    if not (verify || prune || stats || warm_spec <> None) then begin
      prerr_endline "cache: nothing to do (pass --verify, --prune, --stats and/or --warm)";
      1
    end
    else begin
      let c = Cache.create ?budget_bytes:budget ~dir () in
      if verify then begin
        let r = Cache.verify c in
        Printf.printf "verify: %d entries scanned, %d ok, %d quarantined\n"
          r.Cache.vr_scanned r.Cache.vr_ok
          (List.length r.Cache.vr_quarantined);
        List.iter
          (fun (k, reason) -> Printf.printf "  quarantined %s: %s\n" k reason)
          r.Cache.vr_quarantined
      end;
      if prune then begin
        let r = Cache.prune c in
        Printf.printf "prune: removed %d file%s, %d bytes\n" r.Cache.pr_removed
          (if r.Cache.pr_removed = 1 then "" else "s")
          r.Cache.pr_bytes
      end;
      if stats then begin
        let by_kind = Cache.stats_by_kind c in
        let entries = List.fold_left (fun a (_, n, _) -> a + n) 0 by_kind in
        let bytes = List.fold_left (fun a (_, _, b) -> a + b) 0 by_kind in
        Printf.printf "stats: %d entr%s, %d bytes\n" entries
          (if entries = 1 then "y" else "ies")
          bytes;
        List.iter
          (fun (kind, n, b) ->
            Printf.printf "  %-5s %6d entr%s %10d bytes\n" (Cache.kind_to_string kind)
              n
              (if n = 1 then "y  " else "ies")
              b)
          by_kind
      end;
      match warm_spec with Some spec -> warm c spec warm_workers | None -> 0
    end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Verify the integrity of a compilation cache, prune its quarantine, report \
          its per-kind population, or warm it by precompiling built-in kernels")
    Term.(
      const run $ dir_arg $ verify_arg $ prune_arg $ warm_arg $ warm_jobs_arg
      $ cache_stats_arg $ cache_budget_arg)

(* ------------------------------------------------------------------ *)
(* hirc batch                                                          *)

(* Machine-readable per-job outcome summary, the contract scripted
   consumers rely on (see README): one object per job plus aggregate
   counts.  Kept deliberately flat — no nested trace data. *)
let write_batch_json path ~workers (result : Driver.batch_result) =
  let str s = "\"" ^ Trace.json_escape s ^ "\"" in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
  in
  let ok = ref 0 and degraded = ref 0 and failed = ref 0 in
  let jobs =
    Array.to_list result.Driver.reports
    |> List.map (fun (r : Driver.report) ->
           let status = Driver.report_status r in
           (match status with
           | `Ok -> incr ok
           | `Degraded -> incr degraded
           | `Failed | `Cancelled -> incr failed);
           let common =
             [
               ("name", str r.Driver.rp_job);
               ("status", str (Driver.status_to_string status));
               ("attempts", string_of_int r.Driver.rp_attempts);
             ]
           in
           let rest =
             match r.Driver.rp_outcome with
             | Ok o ->
               [
                 ("from_cache", string_of_bool o.Driver.from_cache);
                 ("seconds", Printf.sprintf "%.6f" o.Driver.seconds);
                 ("degradations", arr (List.map str o.Driver.degradations));
               ]
             | Error e ->
               [
                 ( "diagnostics",
                   arr
                     (List.map
                        (fun d -> str (Diagnostic.to_string d))
                        e.Driver.err_diags) );
               ]
           in
           obj (common @ rest))
  in
  let summary =
    obj
      [
        ("total", string_of_int (Array.length result.Driver.reports));
        ("ok", string_of_int !ok);
        ("degraded", string_of_int !degraded);
        ("failed", string_of_int !failed);
        ("wall_seconds", Printf.sprintf "%.6f" result.Driver.wall_seconds);
        ("workers", string_of_int workers);
        ("notes", arr (List.map str result.Driver.batch_notes));
      ]
  in
  let oc = open_out path in
  output_string oc (obj [ ("jobs", arr jobs); ("summary", summary) ]);
  output_string oc "\n";
  close_out oc

let batch_cmd =
  let inputs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"INPUT"
          ~doc:"A .hir file or the name of a built-in kernel (see `hirc kernels`)")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Scheduler.default_workers ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let all_kernels_arg =
    Arg.(value & flag & info [ "kernels" ] ~doc:"Also compile every built-in kernel")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-dir" ] ~docv:"DIR" ~doc:"Write one $(docv)/<name>.v per input")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Per-job wall-clock deadline; a job that exceeds it fails with a \
             job-timeout diagnostic, the rest of the batch is unaffected")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Driver.default_retry.Driver.max_attempts
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Total attempts per job for transient failures (default 3); \
             parse/verify errors and timeouts are never retried")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT.json"
          ~doc:"Write a machine-readable per-job outcome summary to $(docv)")
  in
  let run inputs workers all_kernels out_dir cache_dir cache_budget trace_out no_opt
      passes inject inject_seed deadline retries json_out =
    let pipeline_r =
      match passes with
      | None -> Ok (Pipeline.default ~optimize:(not no_opt))
      | Some src -> Pipeline.parse_located src
    in
    match (pipeline_r, fault_config_of inject inject_seed) with
    | Error d, _ ->
      Printf.eprintf "%s\n" (Diagnostic.to_string d);
      1
    | _, Error e ->
      prerr_endline e;
      1
    | Ok pipeline, Ok fault_cfg -> (
      let kernel_job k =
        Driver.job_of_builder ~pipeline ~name:k.Hir_kernels.Kernels.name
          k.Hir_kernels.Kernels.build
      in
      let job_of_input input =
        if Sys.file_exists input then Ok (Driver.job_of_file ~pipeline input)
        else
          match Hir_kernels.Kernels.find input with
          | Some k -> Ok (kernel_job k)
          | None ->
            Error
              (Printf.sprintf "%s: neither a file nor a built-in kernel%s" input
                 (did_you_mean (Hir_kernels.Kernels.suggest input)))
      in
      let jobs_r =
        List.fold_left
          (fun acc input ->
            match (acc, job_of_input input) with
            | Error e, _ | _, Error e -> Error e
            | Ok jobs, Ok j -> Ok (j :: jobs))
          (Ok []) inputs
        |> Result.map List.rev
      in
      match jobs_r with
      | Error e ->
        prerr_endline e;
        1
      | Ok file_jobs ->
        let jobs =
          file_jobs
          @ (if all_kernels then List.map kernel_job Hir_kernels.Kernels.all else [])
        in
        if jobs = [] then begin
          prerr_endline "batch: nothing to compile (give files, kernel names or --kernels)";
          1
        end
        else begin
          let cache =
            Option.map
              (fun dir -> Cache.create ?budget_bytes:cache_budget ~dir ())
              cache_dir
          in
          let limits = { Guard.deadline_s = deadline; work_budget = None } in
          let retry = { Driver.default_retry with Driver.max_attempts = max 1 retries } in
          let result =
            with_faults fault_cfg (fun () ->
                Driver.batch ?cache ~workers ~limits ~retry (Array.of_list jobs))
          in
          let ok = ref 0 and degraded = ref 0 and failed = ref 0 in
          Array.iter
            (fun (r : Driver.report) ->
              let status = Driver.report_status r in
              (match status with
              | `Ok -> incr ok
              | `Degraded -> incr degraded
              | `Failed | `Cancelled -> incr failed);
              let attempts =
                if r.Driver.rp_attempts > 1 then
                  Printf.sprintf "  (%d attempts)" r.Driver.rp_attempts
                else ""
              in
              match r.Driver.rp_outcome with
              | Error e ->
                Printf.printf "FAIL %s%s\n%s\n" e.Driver.err_job attempts
                  (Driver.error_to_string e)
              | Ok o ->
                Option.iter (Printf.eprintf "note: %s: %s\n" o.Driver.job_name) o.Driver.note;
                (match out_dir with
                | Some dir ->
                  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
                  let base =
                    Filename.remove_extension (Filename.basename o.Driver.job_name)
                  in
                  let path = Filename.concat dir (base ^ ".v") in
                  let oc = open_out path in
                  output_string oc o.Driver.verilog;
                  close_out oc
                | None -> ());
                Printf.printf "%-8s %-24s top=%-18s %8.2f ms%s%s\n"
                  (Driver.status_to_string status)
                  o.Driver.job_name o.Driver.top_name (o.Driver.seconds *. 1000.)
                  (if o.Driver.from_cache then "  (cached)" else "")
                  attempts;
                List.iter (fun d -> Printf.printf "    - %s\n" d) o.Driver.degradations)
            result.Driver.reports;
          List.iter (fun n -> Printf.printf "note: %s\n" n) result.Driver.batch_notes;
          let cache_line =
            match cache with
            | None -> ""
            | Some c ->
              Printf.sprintf ", cache %d hits / %d misses" (Cache.hits c) (Cache.misses c)
              ^ (match (Cache.corrupt_count c, Cache.fault_count c) with
                | 0, 0 -> ""
                | corrupt, faults ->
                  Printf.sprintf " / %d corrupt / %d faults" corrupt faults)
          in
          Printf.printf
            "batch: %d jobs (%d ok, %d degraded, %d failed), %d workers, %.2f ms wall%s\n"
            (Array.length result.Driver.reports)
            !ok !degraded !failed workers
            (result.Driver.wall_seconds *. 1000.)
            cache_line;
          (match trace_out with
          | Some path ->
            Trace.write_chrome_json path result.Driver.traces;
            Printf.eprintf "wrote %s\n" path
          | None -> ());
          (match json_out with
          | Some path ->
            write_batch_json path ~workers result;
            Printf.eprintf "wrote %s\n" path
          | None -> ());
          (* Exit contract: 0 = every job produced output (possibly
             degraded), 2 = the batch completed but some jobs failed.
             Exit 1 is reserved for not running at all (bad spec). *)
          if !failed > 0 then 2 else 0
        end)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Compile many designs concurrently through the compilation service")
    Term.(
      const run $ inputs_arg $ jobs_arg $ all_kernels_arg $ out_dir_arg $ cache_dir_arg
      $ cache_budget_arg $ trace_arg $ no_opt_arg $ passes_arg $ inject_arg
      $ inject_seed_arg $ deadline_arg $ retries_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* hirc serve                                                          *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix domain socket at $(docv)")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on TCP 127.0.0.1:$(docv) (0 picks a free port)")
  in
  let workers_arg =
    Arg.(
      value
      & opt int (Scheduler.default_workers ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Number of worker domains")
  in
  let depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission limit: compile frames beyond $(docv) queued jobs are \
             rejected with status $(b,rejected), reason $(b,overloaded)")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Default per-job wall-clock deadline (a frame's own wins)")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Driver.default_retry.Driver.max_attempts
      & info [ "retries" ] ~docv:"N" ~doc:"Total attempts per job for transient failures")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log connections and admissions to stderr")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Write-ahead job journal: every admitted job is recorded (and fsynced) \
             in $(docv) before it runs and marked on completion; on startup the \
             journal is replayed and admitted-but-incomplete jobs are re-enqueued, \
             so a crashed server loses no admitted work")
  in
  let drain_arg =
    Arg.(
      value & opt float 30.0
      & info [ "drain-deadline" ] ~docv:"SECS"
          ~doc:
            "On SIGTERM or a shutdown frame, finish in-flight jobs for up to \
             $(docv) seconds before cancelling the stragglers and exiting")
  in
  let watchdog_arg =
    Arg.(
      value & opt float 3.0
      & info [ "watchdog-factor" ] ~docv:"K"
          ~doc:
            "Cancel a running job once it exceeds $(docv) x its deadline without \
             finishing (0 disables the watchdog)")
  in
  let run socket port workers depth cache_dir cache_budget trace_out deadline retries
      verbose journal drain_deadline watchdog inject inject_seed =
    match fault_config_of inject inject_seed with
    | Error e ->
      prerr_endline e;
      1
    | Ok fault_cfg -> (
      let listen =
        match (socket, port) with
        | Some path, None -> Ok (Server.Unix_path path)
        | None, Some port -> Ok (Server.Tcp ("127.0.0.1", port))
        | None, None -> Error "serve: pass --socket PATH or --port N"
        | Some _, Some _ -> Error "serve: --socket and --port are exclusive"
      in
      match listen with
      | Error e ->
        prerr_endline e;
        1
      | Ok listen ->
        let cfg =
          {
            (Server.default_config ~listen ()) with
            Server.cfg_workers = workers;
            cfg_max_depth = max 1 depth;
            cfg_cache =
              Option.map
                (fun dir -> Cache.create ?budget_bytes:cache_budget ~dir ())
                cache_dir;
            cfg_default_deadline = deadline;
            cfg_retry =
              { Driver.default_retry with Driver.max_attempts = max 1 retries };
            cfg_trace_path = trace_out;
            cfg_journal = journal;
            cfg_drain_deadline = max 0. drain_deadline;
            cfg_watchdog_factor = watchdog;
            cfg_verbose = verbose;
          }
        in
        with_faults fault_cfg (fun () -> Server.run cfg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a persistent compilation server: line-JSON compile/cancel/poll \
          frames and health/metrics probes over a Unix or TCP socket, with \
          continuous admission onto the worker pool, an optional write-ahead job \
          journal for crash recovery, and graceful drain on SIGTERM (see README \
          for the protocol)")
    Term.(
      const run $ socket_arg $ port_arg $ workers_arg $ depth_arg $ cache_dir_arg
      $ cache_budget_arg $ trace_arg $ deadline_arg $ retries_arg $ verbose_arg
      $ journal_arg $ drain_arg $ watchdog_arg $ inject_arg $ inject_seed_arg)

(* ------------------------------------------------------------------ *)
(* hirc journal                                                        *)

let journal_cmd =
  let dir_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Journal directory (as passed to serve --journal)")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Replay the journal and report record, completion, pending and \
             quarantine counts (torn tails and CRC failures are tolerated, \
             counted, and skipped)")
  in
  let compact_arg =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Rewrite the log down to its still-pending admit records (temp + \
             fsync + rename, crash-safe)")
  in
  let run dir verify compact =
    if not (verify || compact) then begin
      prerr_endline "journal: nothing to do (pass --verify and/or --compact)";
      1
    end
    else begin
      let code = ref 0 in
      if verify then begin
        let r = Journal.verify ~dir in
        Printf.printf
          "verify: %d record(s), %d done mark(s), %d pending job(s), %d \
           quarantined%s\n"
          r.Journal.rr_records r.Journal.rr_completed
          (List.length r.Journal.rr_pending)
          r.Journal.rr_quarantined
          (if r.Journal.rr_torn_tail then ", torn tail dropped" else "");
        List.iter
          (fun (a : Journal.admit) ->
            Printf.printf "  pending %s/%s (digest %s)\n" a.Journal.a_client
              a.Journal.a_id a.Journal.a_digest)
          r.Journal.rr_pending
      end;
      if compact then begin
        match Journal.compact ~dir () with
        | Ok kept -> Printf.printf "compact: kept %d pending record(s)\n" kept
        | Error e ->
          Printf.printf "compact: failed: %s\n" e;
          code := 1
      end;
      !code
    end
  in
  Cmd.v
    (Cmd.info "journal"
       ~doc:
         "Inspect or compact a serve write-ahead job journal: replay it, report \
          pending and quarantined records, or rewrite it down to its pending set")
    Term.(const run $ dir_arg $ verify_arg $ compact_arg)

let () =
  let doc = "HIR: an MLIR-style IR for hardware accelerator description" in
  let info = Cmd.info "hirc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd; verify_cmd; print_cmd; kernels_cmd; demo_cmd; pipeline_cmd;
            fuzz_cmd; sim_cmd; batch_cmd; cache_cmd; serve_cmd; journal_cmd;
          ]))
