(* End-to-end backend tests: every kernel is lowered to Verilog, the
   generated design is elaborated and simulated cycle-by-cycle with
   external memory agents, and the outputs must match the software
   reference model.  The automatically inserted UB assertions (§4.5)
   must stay silent on correct designs.

   Both the unoptimized and the fully optimized (canonicalize +
   precision + delay-elimination) pipelines are exercised. *)

open Hir_ir
open Hir_dialect
module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

let () = Ops.register ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compare_tensors ~name ?(valid = fun _ -> true) expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: tensor size mismatch" name;
  Array.iteri
    (fun i e ->
      if valid i then
        match actual.(i) with
        | Some got when Bitvec.equal got e -> ()
        | Some got ->
          Alcotest.failf "%s[%d]: expected %s, got %s" name i (Bitvec.to_string e)
            (Bitvec.to_string got)
        | None -> Alcotest.failf "%s[%d]: never written" name i)
    expected

let no_failures (result : Harness.run_result) =
  match result.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "assertion failed at cycle %d: %s" f.Hir_rtl.Sim.at_cycle
      f.Hir_rtl.Sim.message

(* Interpreter gives us the cycle budget for the RTL run. *)
let interp_cycles ~m ~f inputs =
  let result, _ =
    Interp.run ~module_op:m ~func:f
      (List.map
         (function
           | Harness.Scalar v -> Interp.Scalar v
           | Harness.Tensor a -> Interp.Tensor a
           | Harness.Out_tensor -> Interp.Out_tensor)
         inputs)
  in
  result.Interp.cycles

let run_kernel_rtl ~optimize ~build inputs =
  let m, f = build () in
  let cycles = interp_cycles ~m ~f inputs in
  (* compile mutates the module (unroll etc.), so rebuild fresh. *)
  let m, f = build () in
  let emitted = Emit.compile ~optimize ~module_op:m ~top:f () in
  let result, agents = Harness.run ~emitted ~inputs ~cycles () in
  no_failures result;
  (result, agents)

let rtl_case ~optimize kernel_name build inputs ~expected ?valid ~out_arg () =
  let _result, agents = run_kernel_rtl ~optimize ~build inputs in
  let actual = Harness.nth_tensor agents out_arg in
  compare_tensors ~name:kernel_name ?valid expected actual

(* ------------------------------------------------------------------ *)
(* Per-kernel cases                                                    *)

let transpose_case ~optimize () =
  let input = Hir_kernels.Transpose.make_input ~seed:31 in
  rtl_case ~optimize "transpose" Hir_kernels.Transpose.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Transpose.reference input)
    ~out_arg:1 ()

let stencil_case ~optimize () =
  let input = Hir_kernels.Stencil1d.make_input ~seed:32 in
  let lo, hi = Hir_kernels.Stencil1d.valid_range in
  rtl_case ~optimize "stencil" Hir_kernels.Stencil1d.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Stencil1d.reference input)
    ~valid:(fun i -> i >= lo && i <= hi)
    ~out_arg:1 ()

let histogram_case ~optimize () =
  let input = Hir_kernels.Histogram.make_input ~seed:33 in
  rtl_case ~optimize "histogram" Hir_kernels.Histogram.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Histogram.reference input)
    ~out_arg:1 ()

let gemm_case ~optimize () =
  let a, b = Hir_kernels.Gemm.make_inputs ~seed:34 in
  rtl_case ~optimize "gemm" (fun () -> Hir_kernels.Gemm.build ())
    [ Harness.Tensor a; Harness.Tensor b; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Gemm.reference a b)
    ~out_arg:2 ()

let convolution_case ~optimize () =
  let input = Hir_kernels.Convolution.make_input ~seed:35 in
  rtl_case ~optimize "convolution" Hir_kernels.Convolution.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Convolution.reference input)
    ~valid:Hir_kernels.Convolution.is_valid_index ~out_arg:1 ()

let fifo_case ~optimize () =
  let input = Hir_kernels.Fifo.make_input ~seed:36 in
  rtl_case ~optimize "fifo" Hir_kernels.Fifo.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Fifo.reference input)
    ~out_arg:1 ()

let elementwise_max_case ~optimize () =
  let a, b = Hir_kernels.Elementwise_max.make_inputs ~seed:38 in
  rtl_case ~optimize "elementwise_max" Hir_kernels.Elementwise_max.build
    [ Harness.Tensor a; Harness.Tensor b; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Elementwise_max.reference a b)
    ~out_arg:2 ()

let task_parallel_case ~optimize () =
  let input = Hir_kernels.Taskparallel.make_input ~seed:37 in
  let lo, hi = Hir_kernels.Taskparallel.valid_range in
  rtl_case ~optimize "task_parallel" Hir_kernels.Taskparallel.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Taskparallel.reference input)
    ~valid:(fun i -> i >= lo && i <= hi)
    ~out_arg:1 ()

(* ------------------------------------------------------------------ *)
(* Structure and assertion behaviour                                   *)

let test_verilog_text () =
  let m, f = Hir_kernels.Transpose.build () in
  let emitted = Emit.compile ~module_op:m ~top:f () in
  let text = Hir_verilog.Pretty.design_to_string emitted.Emit.design in
  let contains needle =
    let n = String.length needle and mlen = String.length text in
    let rec go i = i + n <= mlen && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "module declared" true (contains "module transpose");
  check_bool "has clock" true (contains "posedge clk");
  check_bool "memref bank buses" true (contains "Ai_rd_en_0");
  check_bool "location comments present" true (contains "//");
  check_bool "instantiable text nonempty" true (String.length text > 500)

let test_assertion_fires_on_conflict () =
  (* Two reads on the same port, same cycle, different addresses: the
     generated assertion must fire in simulation.  (The schedule
     verifier would reject this; we bypass it deliberately, as a
     designer using raw Verilog would.) *)
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"conflict"
      ~args:
        [
          Builder.arg "A" (Types.memref ~dims:[ 8 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "O" (Types.memref ~dims:[ 8 ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ a; o ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let x = Builder.mem_read b a [ c0 ] ~at:Builder.(t @>> 0) in
          let y = Builder.mem_read b a [ c1 ] ~at:Builder.(t @>> 0) in
          let s = Builder.add b x y in
          Builder.mem_write b s o [ c0 ] ~at:Builder.(t @>> 1);
          Builder.return_ b []
        | _ -> assert false)
  in
  let emitted = Emit.emit ~module_op:m ~top:f () in
  let input = Hir_kernels.Util.test_data ~seed:1 ~n:8 ~width:32 in
  let result, _ =
    Harness.run ~emitted
      ~inputs:[ Harness.Tensor input; Harness.Out_tensor ]
      ~cycles:4 ()
  in
  check_bool "assertion fired" true (result.Harness.failures <> []);
  let msg = (List.hd result.Harness.failures).Hir_rtl.Sim.message in
  check_bool "mentions conflicting reads" true
    (let n = String.length "conflicting reads" in
     let rec go i =
       i + n <= String.length msg && (String.sub msg i n = "conflicting reads" || go (i + 1))
     in
     go 0)

let test_scalar_results () =
  (* A function with scalar results: the MAC from Figure 2 with
     balanced delays, checked against direct evaluation. *)
  let build () =
    let m = Builder.create_module () in
    let mult =
      Builder.extern_func m ~name:"mult"
        ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
        ~results:[ (Typ.i32, 2) ]
    in
    let f =
      Builder.func m ~name:"mac"
        ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32; Builder.arg "c" Typ.i32 ]
        ~results:[ (Typ.i32, 2) ]
        (fun bld args t ->
          match args with
          | [ a; b; c ] ->
            let p = List.hd (Builder.call bld ~callee:mult [ a; b ] ~at:Builder.(t @>> 0)) in
            let c2 = Builder.delay bld c ~by:2 ~at:Builder.(t @>> 0) in
            let r = Builder.add bld p c2 in
            Builder.return_ bld [ r ]
          | _ -> assert false)
    in
    (m, f)
  in
  let m, f = build () in
  let emitted = Emit.emit ~module_op:m ~top:f () in
  let bv = Bitvec.of_int ~width:32 in
  let result, _ =
    Harness.run ~emitted
      ~inputs:[ Harness.Scalar (bv 7); Harness.Scalar (bv 6); Harness.Scalar (bv 100) ]
      ~cycles:4 ()
  in
  no_failures result;
  (match result.Harness.output_values with
  | [ (_, v) ] -> check_int "7*6+100" 142 (Bitvec.to_int v)
  | _ -> Alcotest.fail "expected one result")

let suite ~optimize =
  let tag name = if optimize then name ^ " (optimized)" else name in
  [
    Alcotest.test_case (tag "transpose") `Quick (transpose_case ~optimize);
    Alcotest.test_case (tag "stencil") `Quick (stencil_case ~optimize);
    Alcotest.test_case (tag "histogram") `Quick (histogram_case ~optimize);
    Alcotest.test_case (tag "gemm") `Slow (gemm_case ~optimize);
    Alcotest.test_case (tag "convolution") `Quick (convolution_case ~optimize);
    Alcotest.test_case (tag "fifo") `Quick (fifo_case ~optimize);
    Alcotest.test_case (tag "task parallel") `Quick (task_parallel_case ~optimize);
    Alcotest.test_case (tag "elementwise max") `Quick (elementwise_max_case ~optimize);
  ]

let () =
  Alcotest.run "codegen"
    [
      ("rtl equivalence", suite ~optimize:false);
      ("rtl equivalence optimized", suite ~optimize:true);
      ( "structure",
        [
          Alcotest.test_case "verilog text" `Quick test_verilog_text;
          Alcotest.test_case "UB assertion fires" `Quick test_assertion_fires_on_conflict;
          Alcotest.test_case "scalar results (MAC)" `Quick test_scalar_results;
        ] );
    ]
