lib/hir/retime.ml: Array Attribute Dialect Hir_ir Ir List Ops Option Pass
