(* Construction DSL for HIR designs.

   A [t] is an insertion point (a block being appended to).  Scheduled
   ops take an [at:(time, offset)] pair mirroring the paper's
   [at %t offset k] syntax. *)

open Hir_ir

type t = {
  mutable block : Ir.block;
  module_op : Ir.op option;
  (* When set, ops built through [insert] are stamped with this
     "emit_group" id — the same tag [Unroll] puts on expanded loop
     bodies — so generator-style kernels built in plain OCaml (e.g. the
     systolic array's PE grid) can mark their replicated cones for the
     code generator's outliner.  See [group]. *)
  mutable current_group : int option;
}

type time_point = Ir.value * int

let ( @>> ) time offset : time_point = (time, offset)

let insert b op =
  (match b.current_group with
  | Some gid when Ir.Op.int_attr_opt op Unroll.group_attr = None ->
    Ir.Op.set_attr op Unroll.group_attr (Attribute.Int gid)
  | _ -> ());
  Ir.Block.append b.block op

let at_block ?module_op block = { block; module_op; current_group = None }

(* Build [f]'s ops as one fresh emission group: structurally identical
   groups are deduplicated into a shared module definition at codegen
   time.  Nested [group] calls stack — the inner group's ops carry the
   inner id (the emitter's group stack restores the nesting). *)
let group b f =
  let saved = b.current_group in
  b.current_group <- Some (Unroll.fresh_group ());
  Fun.protect ~finally:(fun () -> b.current_group <- saved) (fun () -> f ())

(* ------------------------------------------------------------------ *)
(* Module and functions                                                *)

let create_module ?(loc = Location.unknown) () =
  Ops.register ();
  let block = Ir.Block.create [] in
  let region = Ir.Region.create ~blocks:[ block ] () in
  Ir.Op.create ~regions:[ region ] ~loc "builtin.module" ~operands:[]
    ~result_types:[]

let module_block module_op =
  match Ir.Op.regions module_op with
  | [ r ] -> (
    match Ir.Region.blocks r with [ b ] -> b | _ -> failwith "malformed module")
  | _ -> failwith "malformed module"

type arg_spec = { arg_name : string; arg_type : Typ.t; arg_delay : int }

let arg ?(delay = 0) name typ = { arg_name = name; arg_type = typ; arg_delay = delay }

let func ?(loc = Location.unknown) ?(results = []) ~name ~args module_op body =
  let arg_types = List.map (fun a -> a.arg_type) args in
  let block =
    Ir.Block.create
      ~arg_hints:(List.map (fun a -> Some a.arg_name) args @ [ Some "t" ])
      (arg_types @ [ Types.Time ])
  in
  let region = Ir.Region.create ~blocks:[ block ] () in
  let attrs =
    [
      ("sym_name", Attribute.Symbol name);
      ("arg_types", Attribute.Array (List.map (fun a -> Attribute.Type a.arg_type) args));
      ("arg_names", Attribute.Array (List.map (fun a -> Attribute.String a.arg_name) args));
      ("arg_delays", Attribute.Array (List.map (fun a -> Attribute.Int a.arg_delay) args));
      ("result_types", Attribute.Array (List.map (fun (t, _) -> Attribute.Type t) results));
      ("result_delays", Attribute.Array (List.map (fun (_, d) -> Attribute.Int d) results));
    ]
  in
  let func_op =
    Ir.Op.create ~attrs ~regions:[ region ] ~loc "hir.func" ~operands:[]
      ~result_types:[]
  in
  Ir.Block.append (module_block module_op) func_op;
  let builder = { block; module_op = Some module_op; current_group = None } in
  let data_args = List.filteri (fun i _ -> i < List.length args) (Ir.Block.args block) in
  let time = Ir.Block.arg block (List.length args) in
  body builder data_args time;
  func_op

(* An external function: a blackbox Verilog module with a known
   schedule signature (paper Section 5.4).  [verilog_name] is the
   module to instantiate; the RTL behaviour used in simulation is
   registered separately in [Extern]. *)
let extern_func ?(loc = Location.unknown) ?(results = []) ~name ~args module_op =
  let attrs =
    [
      ("sym_name", Attribute.Symbol name);
      ("extern", Attribute.Bool true);
      ("arg_types", Attribute.Array (List.map (fun a -> Attribute.Type a.arg_type) args));
      ("arg_names", Attribute.Array (List.map (fun a -> Attribute.String a.arg_name) args));
      ("arg_delays", Attribute.Array (List.map (fun a -> Attribute.Int a.arg_delay) args));
      ("result_types", Attribute.Array (List.map (fun (t, _) -> Attribute.Type t) results));
      ("result_delays", Attribute.Array (List.map (fun (_, d) -> Attribute.Int d) results));
    ]
  in
  let func_op =
    Ir.Op.create ~attrs ~loc "hir.func" ~operands:[] ~result_types:[]
  in
  Ir.Block.append (module_block module_op) func_op;
  func_op

(* ------------------------------------------------------------------ *)
(* Leaf ops                                                            *)

let constant ?(loc = Location.unknown) ?hint b value =
  let hint = match hint with Some h -> Some h | None -> Some (Printf.sprintf "c%d" (abs value)) in
  let op =
    Ir.Op.create ~loc
      ~attrs:[ ("value", Attribute.Int value) ]
      ~result_hints:[ hint ] "hir.constant" ~operands:[] ~result_types:[ Types.Const ]
  in
  insert b op;
  Ir.Op.result op 0

let value_width v =
  match Ir.Value.typ v with
  | Typ.Int n -> Some n
  | Types.Const -> None
  | t -> failwith ("value_width: not an integer value: " ^ Typ.to_string t)

let binary_result_type a b =
  match (value_width a, value_width b) with
  | Some n, Some m when n = m -> Typ.Int n
  | Some n, None | None, Some n -> Typ.Int n
  | None, None -> Types.Const
  | Some n, Some m ->
    failwith (Printf.sprintf "binary op: operand widths differ (%d vs %d)" n m)

let binop ?(loc = Location.unknown) ?hint name b x y =
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ] name ~operands:[ x; y ]
      ~result_types:[ binary_result_type x y ]
  in
  insert b op;
  Ir.Op.result op 0

let add ?loc ?hint b x y = binop ?loc ?hint "hir.add" b x y
let sub ?loc ?hint b x y = binop ?loc ?hint "hir.sub" b x y
let mult ?loc ?hint b x y = binop ?loc ?hint "hir.mult" b x y
let logand ?loc ?hint b x y = binop ?loc ?hint "hir.and" b x y
let logor ?loc ?hint b x y = binop ?loc ?hint "hir.or" b x y
let logxor ?loc ?hint b x y = binop ?loc ?hint "hir.xor" b x y
let shl ?loc ?hint b x y = binop ?loc ?hint "hir.shl" b x y
let shrl ?loc ?hint b x y = binop ?loc ?hint "hir.shrl" b x y
let shra ?loc ?hint b x y = binop ?loc ?hint "hir.shra" b x y

let cmp ?(loc = Location.unknown) ?hint name b x y =
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ] name ~operands:[ x; y ]
      ~result_types:[ Typ.i1 ]
  in
  insert b op;
  Ir.Op.result op 0

let lt ?loc ?hint b x y = cmp ?loc ?hint "hir.lt" b x y
let le ?loc ?hint b x y = cmp ?loc ?hint "hir.le" b x y
let gt ?loc ?hint b x y = cmp ?loc ?hint "hir.gt" b x y
let ge ?loc ?hint b x y = cmp ?loc ?hint "hir.ge" b x y
let eq ?loc ?hint b x y = cmp ?loc ?hint "hir.eq" b x y
let ne ?loc ?hint b x y = cmp ?loc ?hint "hir.ne" b x y

let select ?(loc = Location.unknown) ?hint b cond x y =
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ] "hir.select" ~operands:[ cond; x; y ]
      ~result_types:[ binary_result_type x y ]
  in
  insert b op;
  Ir.Op.result op 0

let resize_op name ?(loc = Location.unknown) ?hint b x ~width =
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ] name ~operands:[ x ]
      ~result_types:[ Typ.Int width ]
  in
  insert b op;
  Ir.Op.result op 0

let zext ?loc ?hint b x ~width = resize_op "hir.zext" ?loc ?hint b x ~width
let sext ?loc ?hint b x ~width = resize_op "hir.sext" ?loc ?hint b x ~width
let trunc ?loc ?hint b x ~width = resize_op "hir.trunc" ?loc ?hint b x ~width

let delay ?(loc = Location.unknown) ?hint b x ~by ~at:(time, offset) =
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ]
      ~attrs:[ ("by", Attribute.Int by); ("offset", Attribute.Int offset) ]
      "hir.delay" ~operands:[ x; time ]
      ~result_types:[ Ir.Value.typ x ]
  in
  insert b op;
  Ir.Op.result op 0

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

let alloc ?(loc = Location.unknown) ?packing ~kind ~dims ~elem ~ports b =
  let result_types =
    List.map (fun port -> Types.memref ~packing ~dims ~elem ~port ()) ports
  in
  let op =
    Ir.Op.create ~loc
      ~attrs:[ ("mem_kind", Attribute.String (Ops.mem_kind_to_string kind)) ]
      "hir.alloc" ~operands:[] ~result_types
  in
  insert b op;
  Ir.Op.results op

(* Read latency: the storage kind if the port comes from a local alloc,
   otherwise the interface default of 1 cycle. *)
let port_latency mem =
  match Ir.Value.defining_op mem with
  | Some op when Ir.Op.name op = "hir.alloc" ->
    Ops.mem_kind_latency (Ops.alloc_kind op)
  | _ -> 1

let mem_read ?(loc = Location.unknown) ?hint ?latency b mem indices ~at:(time, offset) =
  let info = Types.memref_info (Ir.Value.typ mem) in
  let latency = match latency with Some l -> l | None -> port_latency mem in
  let op =
    Ir.Op.create ~loc ~result_hints:[ hint ]
      ~attrs:[ ("offset", Attribute.Int offset); ("latency", Attribute.Int latency) ]
      "hir.mem_read"
      ~operands:((mem :: indices) @ [ time ])
      ~result_types:[ info.elem ]
  in
  insert b op;
  Ir.Op.result op 0

let mem_write ?(loc = Location.unknown) b value mem indices ~at:(time, offset) =
  let op =
    Ir.Op.create ~loc
      ~attrs:[ ("offset", Attribute.Int offset) ]
      "hir.mem_write"
      ~operands:((value :: mem :: indices) @ [ time ])
      ~result_types:[]
  in
  insert b op

(* ------------------------------------------------------------------ *)
(* Control flow                                                        *)

let yield ?(loc = Location.unknown) b ~at:(time, offset) =
  let op =
    Ir.Op.create ~loc
      ~attrs:[ ("offset", Attribute.Int offset) ]
      "hir.yield" ~operands:[ time ] ~result_types:[]
  in
  insert b op

let return_ ?(loc = Location.unknown) b values =
  let op = Ir.Op.create ~loc "hir.return" ~operands:values ~result_types:[] in
  insert b op

let for_loop ?(loc = Location.unknown) ?(iv_width = 32) ?(iv_hint = "i") b ~lb ~ub
    ~step ~at:(time, offset) body =
  let block =
    Ir.Block.create
      ~arg_hints:[ Some iv_hint; Some ("t" ^ iv_hint) ]
      [ Typ.Int iv_width; Types.Time ]
  in
  let region = Ir.Region.create ~blocks:[ block ] () in
  let op =
    Ir.Op.create ~loc
      ~attrs:[ ("offset", Attribute.Int offset) ]
      ~regions:[ region ] ~result_hints:[ Some ("tf_" ^ iv_hint) ] "hir.for"
      ~operands:[ lb; ub; step; time ]
      ~result_types:[ Types.Time ]
  in
  insert b op;
  let inner = { block; module_op = b.module_op; current_group = b.current_group } in
  body inner ~iv:(Ir.Block.arg block 0) ~ti:(Ir.Block.arg block 1);
  Ir.Op.result op 0

let unroll_for ?(loc = Location.unknown) ?(iv_hint = "u") b ~lb ~ub ~step
    ~at:(time, offset) body =
  let block =
    Ir.Block.create
      ~arg_hints:[ Some iv_hint; Some ("t" ^ iv_hint) ]
      [ Types.Const; Types.Time ]
  in
  let region = Ir.Region.create ~blocks:[ block ] () in
  let op =
    Ir.Op.create ~loc
      ~attrs:
        [
          ("lb", Attribute.Int lb);
          ("ub", Attribute.Int ub);
          ("step", Attribute.Int step);
          ("offset", Attribute.Int offset);
        ]
      ~regions:[ region ]
      ~result_hints:[ Some ("tf_" ^ iv_hint) ]
      "hir.unroll_for" ~operands:[ time ] ~result_types:[ Types.Time ]
  in
  insert b op;
  let inner = { block; module_op = b.module_op; current_group = b.current_group } in
  body inner ~iv:(Ir.Block.arg block 0) ~ti:(Ir.Block.arg block 1);
  Ir.Op.result op 0

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)

let call ?(loc = Location.unknown) b ~callee args ~at:(time, offset) =
  let name = Ops.func_name callee in
  let result_types = Ops.func_result_types callee in
  let attrs =
    [
      ("callee", Attribute.Symbol name);
      ("offset", Attribute.Int offset);
      ( "arg_delays",
        Attribute.Array (List.map (fun d -> Attribute.Int d) (Ops.func_arg_delays callee)) );
      ( "result_delays",
        Attribute.Array
          (List.map (fun d -> Attribute.Int d) (Ops.func_result_delays callee)) );
    ]
  in
  let op =
    Ir.Op.create ~loc ~attrs "hir.call"
      ~operands:(args @ [ time ])
      ~result_types
  in
  insert b op;
  Ir.Op.results op
