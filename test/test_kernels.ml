(* Integration tests: every evaluation kernel must pass structural
   verification, schedule verification, and produce output matching its
   software reference model under the cycle-accurate interpreter. *)

open Hir_ir
open Hir_dialect

let () = Ops.register ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let verify_all m =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  Verify_schedule.verify_module engine m;
  engine

let verification_case kernel () =
  let m, _f = kernel.Hir_kernels.Kernels.build () in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "%s fails verification:\n%s" kernel.Hir_kernels.Kernels.name
      (Diagnostic.Engine.to_string engine)

let interp_case kernel () =
  match kernel.Hir_kernels.Kernels.check () with
  | Ok result ->
    check_bool "ran some cycles" true (result.Interp.cycles > 0);
    check_bool "performed memory traffic" true (result.Interp.reads > 0)
  | Error msg -> Alcotest.failf "%s: %s" kernel.Hir_kernels.Kernels.name msg

let roundtrip_case kernel () =
  let m, _ = kernel.Hir_kernels.Kernels.build () in
  let text1 = Printer.op_to_string m in
  let reparsed = Parser.parse_string text1 in
  let text2 = Printer.op_to_string reparsed in
  Alcotest.(check string) "print/parse fixpoint" text1 text2

(* Latency/II expectations from the explicit schedules. *)

let test_transpose_latency () =
  match Hir_kernels.Transpose.check_interp () with
  | Error e -> Alcotest.fail e
  | Ok result ->
    (* 16 outer iterations, each ~ 16 inner II=1 iterations + loop
       overhead: latency must be in the low 300s, not ~16*16*2. *)
    check_bool "pipelined latency" true
      (result.Interp.cycles > 256 && result.Interp.cycles < 350)

let test_histogram_ii2 () =
  match Hir_kernels.Histogram.check_interp () with
  | Error e -> Alcotest.fail e
  | Ok result ->
    (* 256 (clear) + 2*256 (II=2 accumulate) + 256 (drain) ≈ 1024. *)
    check_bool "II=2 accumulate phase" true
      (result.Interp.cycles >= 1024 && result.Interp.cycles < 1100)

let test_gemm_parallelism () =
  match Hir_kernels.Gemm.check_interp () with
  | Error e -> Alcotest.fail e
  | Ok result ->
    (* Load 16 + compute ~20 + drain 256: far below the sequential
       16^3 = 4096 multiply-accumulate count. *)
    (* 256 loads + 256 PEs x (16 a-reads + 16 b-reads + 16 acc-reads)
       + 256 drain reads. *)
    check_int "read count" (512 + (256 * 48) + 256) result.Interp.reads;
    check_bool "parallel latency" true (result.Interp.cycles < 350)

let test_task_parallel_overlap () =
  let overlapped, single = Hir_kernels.Taskparallel.overlap_summary () in
  (* Two dependent stencils in lock-step cost barely more than one. *)
  check_bool "overlap saves latency" true (overlapped < (2 * single) - 20);
  check_bool "overlap close to single" true (overlapped <= single + 16)

let test_fifo_occupancy () =
  match Hir_kernels.Fifo.check_interp () with
  | Error e -> Alcotest.fail e
  | Ok result ->
    (* 64 pushes at II=1 with a 3-cycle flow-through latency. *)
    check_bool "flow-through latency" true
      (result.Interp.cycles >= 64 && result.Interp.cycles < 80)

(* The "did you mean?" helper behind `hirc sim <typo>` and friends:
   close typos surface the intended kernel, garbage surfaces nothing,
   and an exact name is its own best suggestion. *)
let test_suggest () =
  let open Hir_kernels.Kernels in
  Alcotest.(check (list string)) "one-letter typo" [ "transpose" ] (suggest "transposee");
  Alcotest.(check (list string)) "dropped letter" [ "gemm" ] (suggest "gem");
  Alcotest.(check (list string)) "garbage suggests nothing" [] (suggest "qzxv");
  Alcotest.(check (list string)) "exact name ranks first" [ "fifo" ]
    (List.filteri (fun i _ -> i < 1) (suggest "fifo"));
  (* the helper generalizes to any candidate list, e.g. the HLS suite *)
  Alcotest.(check (list string))
    "suite names via suggest_from" [ "stencil_1d" ]
    (suggest_from
       ~candidates:(List.map fst (Hir_hls.Suite.all ()))
       "stencil1d")

let () =
  let kernels = Hir_kernels.Kernels.all in
  Alcotest.run "kernels"
    [
      ("suggest", [ Alcotest.test_case "typo suggestions" `Quick test_suggest ]);
      ( "verify",
        List.map
          (fun k ->
            Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (verification_case k))
          kernels );
      ( "interp vs reference",
        List.map
          (fun k ->
            Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (interp_case k))
          kernels );
      ( "text round-trip",
        List.map
          (fun k ->
            Alcotest.test_case k.Hir_kernels.Kernels.name `Quick (roundtrip_case k))
          kernels );
      ( "schedule shape",
        [
          Alcotest.test_case "systolic parameterized" `Quick
            (fun () ->
              List.iter
                (fun (n, mac) ->
                  match Hir_kernels.Systolic.check_interp ~n ~mac_stages:mac () with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "systolic n=%d mac=%d: %s" n mac e)
                [ (2, 0); (4, 1); (6, 2) ]);
          Alcotest.test_case "transpose pipelined latency" `Quick test_transpose_latency;
          Alcotest.test_case "histogram II=2" `Quick test_histogram_ii2;
          Alcotest.test_case "gemm PE parallelism" `Quick test_gemm_parallelism;
          Alcotest.test_case "task overlap (Listing 3)" `Quick test_task_parallel_overlap;
          Alcotest.test_case "fifo flow-through" `Quick test_fifo_occupancy;
        ] );
    ]
