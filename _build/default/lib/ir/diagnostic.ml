(* Diagnostics with attached notes, rendered in the style of MLIR:

     file.mlir:13:5: error: Schedule error: mismatched delay (0 vs 1) ...
     file.mlir:8:3: note: Prior definition here.

   An [Engine.t] collects diagnostics during verification or a pass
   pipeline; callers inspect [has_errors] / [to_list] afterwards. *)

type severity = Error | Warning | Remark

type note = { note_loc : Location.t; note_msg : string }

type t = {
  severity : severity;
  loc : Location.t;
  msg : string;
  notes : note list;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Remark -> "remark"

let make ?(notes = []) severity loc msg = { severity; loc; msg; notes }

let error ?notes loc msg = make ?notes Error loc msg
let warning ?notes loc msg = make ?notes Warning loc msg

let note ~loc msg = { note_loc = loc; note_msg = msg }

let pp fmt d =
  Format.fprintf fmt "%a: %s: %s" Location.pp d.loc
    (severity_to_string d.severity)
    d.msg;
  List.iter
    (fun n ->
      Format.fprintf fmt "@\n%a: note: %s" Location.pp n.note_loc n.note_msg)
    d.notes

let to_string d = Format.asprintf "%a" pp d

module Engine = struct
  type diagnostic = t

  type t = { mutable diags : diagnostic list (* reverse order *) }

  let create () = { diags = [] }

  let emit t d = t.diags <- d :: t.diags

  let error t ?notes loc msg = emit t (error ?notes loc msg)
  let warning t ?notes loc msg = emit t (warning ?notes loc msg)

  let errorf t ?notes loc fmt =
    Format.kasprintf (fun msg -> error t ?notes loc msg) fmt

  let to_list t = List.rev t.diags

  let has_errors t = List.exists (fun d -> d.severity = Error) t.diags

  let error_count t =
    List.length (List.filter (fun d -> d.severity = Error) t.diags)

  let pp fmt t =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
      pp fmt (to_list t)

  let to_string t = Format.asprintf "%a" pp t
end
