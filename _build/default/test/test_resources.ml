(* Tests for the analytical FPGA resource model and the hand-written
   Verilog baselines: per-construct costs, hierarchy accounting, and
   the structural invariants Table 5 relies on (DSP and BRAM counts are
   exact, assertions are free). *)

module V = Hir_verilog.Ast
module Model = Hir_resources.Model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let module_of items =
  {
    V.mod_name = "m";
    ports = [ { V.port_name = "clk"; dir = V.Input; width = 1 } ];
    items;
  }

let usage items = Model.design_usage { V.modules = [ module_of items ]; top = "m" }

let wire name width = V.Wire_decl { name; width }

let test_registers () =
  let u = usage [ V.Reg_decl { name = "r"; width = 32 } ] in
  check_int "32 FFs" 32 u.Model.ff;
  check_int "no LUTs" 0 u.Model.lut

let test_adder () =
  let u =
    usage
      [
        wire "a" 16; wire "b" 16; wire "s" 16;
        V.Assign { target = "s"; expr = V.Binop (V.Add, V.Ref "a", V.Ref "b") };
      ]
  in
  check_int "16-bit adder = 16 LUTs" 16 u.Model.lut

let test_multiplier_dsps () =
  let mul w =
    (usage
       [
         wire "a" w; wire "b" w; wire "p" w;
         V.Assign { target = "p"; expr = V.Binop (V.Mul, V.Ref "a", V.Ref "b") };
       ])
      .Model.dsp
  in
  check_int "18x18 -> 1 DSP" 1 (mul 18);
  check_int "25x25 -> 2 DSPs" 2 (mul 25);
  check_int "32x32 -> 3 DSPs" 3 (mul 32)

let test_shift_costs () =
  let shift b =
    (usage
       [
         wire "a" 32; wire "s" 32; wire "k" 5;
         V.Assign { target = "s"; expr = V.Binop (V.Shl, V.Ref "a", b) };
       ])
      .Model.lut
  in
  check_int "constant shift is wiring" 0 (shift (V.const_int ~width:5 3));
  check_bool "dynamic shift costs a barrel" true (shift (V.Ref "k") > 0)

let test_memories () =
  let mem style width depth =
    usage [ V.Mem_decl { name = "mem"; width; depth; style } ]
  in
  check_int "8Kib -> 1 BRAM" 1 (mem V.Style_bram 32 256).Model.bram;
  check_int "40Kib -> 3 BRAM18" 3 (mem V.Style_bram 32 1600).Model.bram;
  check_int "lutram 16x32" 32 (mem V.Style_lutram 32 16).Model.lut;
  check_int "register file = FFs" (32 * 4) (mem V.Style_reg 32 4).Model.ff

let test_assertions_free () =
  let u =
    usage
      [
        wire "x" 8;
        V.Always_ff
          [ V.Assert_stmt { cond = V.Binop (V.Lt, V.Ref "x", V.const_int ~width:8 5); message = "m" } ];
      ]
  in
  check_int "assertions are simulation-only" 0 u.Model.lut

let test_hierarchy_counts_instances () =
  let child =
    {
      V.mod_name = "leaf";
      ports = [ { V.port_name = "clk"; dir = V.Input; width = 1 } ];
      items = [ V.Reg_decl { name = "r"; width = 8 } ];
    }
  in
  let top =
    module_of
      [
        V.Instance { module_name = "leaf"; instance_name = "u1"; connections = [] };
        V.Instance { module_name = "leaf"; instance_name = "u2"; connections = [] };
      ]
  in
  let u = Model.design_usage { V.modules = [ child; top ]; top = "m" } in
  check_int "two instances = 16 FFs" 16 u.Model.ff

(* Structural facts behind Table 5. *)

let kernel_usage build =
  let m, f = build () in
  let emitted = Hir_codegen.Emit.compile ~optimize:true ~module_op:m ~top:f () in
  Model.design_usage emitted.Hir_codegen.Emit.design

let test_table5_dsp_invariants () =
  check_int "transpose has no multipliers" 0
    (kernel_usage Hir_kernels.Transpose.build).Model.dsp;
  check_int "stencil = 2 x 3 DSPs" 6 (kernel_usage Hir_kernels.Stencil1d.build).Model.dsp;
  check_int "gemm = 256 x 3 DSPs" 768 (kernel_usage (fun () -> Hir_kernels.Gemm.build ())).Model.dsp;
  check_int "convolution shifts only" 0
    (kernel_usage Hir_kernels.Convolution.build).Model.dsp

let test_table5_bram_invariants () =
  check_int "histogram 1 BRAM" 1 (kernel_usage Hir_kernels.Histogram.build).Model.bram;
  check_int "fifo 1 BRAM" 1 (kernel_usage Hir_kernels.Fifo.build).Model.bram;
  check_int "transpose 0 BRAM" 0 (kernel_usage Hir_kernels.Transpose.build).Model.bram

let test_precision_opt_reduces () =
  let at optimize =
    let m, f = Hir_kernels.Transpose.build () in
    let e = Hir_codegen.Emit.compile ~optimize ~module_op:m ~top:f () in
    Model.design_usage e.Hir_codegen.Emit.design
  in
  let before = at false and after = at true in
  check_bool "LUTs shrink" true (after.Model.lut < before.Model.lut);
  check_bool "FFs shrink" true (after.Model.ff < before.Model.ff);
  (* Table 4's headline: roughly a 4x reduction. *)
  check_bool "at least 2x" true (2 * after.Model.ff <= before.Model.ff)

(* The hand-written FIFO baseline (Table 5's last row). *)

let test_fifo_baseline () =
  let u = Model.design_usage (Hir_resources.Baselines.sync_fifo_design ()) in
  check_int "1 BRAM" 1 u.Model.bram;
  check_bool "pointer logic is small" true (u.Model.lut < 64);
  let hir = kernel_usage Hir_kernels.Fifo.build in
  check_bool "HIR FIFO uses more FFs than hand-written Verilog (Table 5)" true
    (hir.Model.ff > u.Model.ff)

let () =
  Alcotest.run "resources"
    [
      ( "construct costs",
        [
          Alcotest.test_case "registers" `Quick test_registers;
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "multiplier DSPs" `Quick test_multiplier_dsps;
          Alcotest.test_case "shifts" `Quick test_shift_costs;
          Alcotest.test_case "memories" `Quick test_memories;
          Alcotest.test_case "assertions free" `Quick test_assertions_free;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy_counts_instances;
        ] );
      ( "table 5 invariants",
        [
          Alcotest.test_case "DSP counts" `Quick test_table5_dsp_invariants;
          Alcotest.test_case "BRAM counts" `Quick test_table5_bram_invariants;
          Alcotest.test_case "precision opt reduces" `Quick test_precision_opt_reduces;
          Alcotest.test_case "fifo baseline" `Quick test_fifo_baseline;
        ] );
    ]
