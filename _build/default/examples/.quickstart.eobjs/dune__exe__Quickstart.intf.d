examples/quickstart.mli:
