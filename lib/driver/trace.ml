(* Observability for the compilation service: per-stage timing spans,
   named counters, and a Chrome-trace-format JSON exporter (load the
   file in chrome://tracing or https://ui.perfetto.dev).

   A [t] is a single-threaded collector: the batch scheduler gives each
   compile job its own trace (one Chrome "thread" per job) and merges
   them in the coordinating domain afterwards, so no locking is needed
   on the hot path.  All timestamps are relative to a shared [epoch] so
   merged traces share one timeline. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;  (* relative to the trace epoch *)
  sp_dur_us : float;
  sp_args : (string * string) list;
}

(* A zero-duration mark on the timeline (Chrome "i"-phase): fault
   injections, degradations and retries are recorded as instants so a
   trace shows *when* the service deviated from the happy path, not
   just that it did. *)
type instant = {
  in_name : string;
  in_cat : string;
  in_ts_us : float;  (* relative to the trace epoch *)
  in_args : (string * string) list;
}

type t = {
  epoch : float;  (* Unix.gettimeofday at timeline origin *)
  mutable tid : int;  (* Chrome trace "thread" id *)
  mutable spans : span list;  (* reverse chronological *)
  mutable instants : instant list;  (* reverse chronological *)
  counters : (string, int) Hashtbl.t;
}

let now () = Unix.gettimeofday ()

let create ?epoch () =
  let epoch = match epoch with Some e -> e | None -> now () in
  { epoch; tid = 0; spans = []; instants = []; counters = Hashtbl.create 8 }

let epoch t = t.epoch
let set_tid t tid = t.tid <- tid

let add_span t ?(cat = "compile") ?(args = []) ~name ~start ~stop () =
  t.spans <-
    {
      sp_name = name;
      sp_cat = cat;
      sp_start_us = (start -. t.epoch) *. 1e6;
      sp_dur_us = (stop -. start) *. 1e6;
      sp_args = args;
    }
    :: t.spans

(* Time [f] and record the span; the span is recorded even when [f]
   raises, so a failing stage still shows up in the trace. *)
let span t ?cat ?args name f =
  let start = now () in
  Fun.protect ~finally:(fun () -> add_span t ?cat ?args ~name ~start ~stop:(now ()) ())
    f

let instant t ?(cat = "fault") ?(args = []) name =
  t.instants <-
    {
      in_name = name;
      in_cat = cat;
      in_ts_us = (now () -. t.epoch) *. 1e6;
      in_args = args;
    }
    :: t.instants

let instants t = List.rev t.instants

let incr t ?(by = 1) name =
  Hashtbl.replace t.counters name
    (by + Option.value ~default:0 (Hashtbl.find_opt t.counters name))

let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)

let spans t = List.rev t.spans

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort compare

(* Total duration in seconds of all spans with the given name. *)
let total_seconds t name =
  List.fold_left
    (fun acc s -> if s.sp_name = name then acc +. (s.sp_dur_us /. 1e6) else acc)
    0. (spans t)

(* Merge [src] into [dst] (spans and counters); [src]'s timestamps are
   rebased onto [dst]'s epoch. *)
let merge ~into:dst src =
  let shift_us = (src.epoch -. dst.epoch) *. 1e6 in
  List.iter
    (fun s -> dst.spans <- { s with sp_start_us = s.sp_start_us +. shift_us } :: dst.spans)
    src.spans;
  List.iter
    (fun i -> dst.instants <- { i with in_ts_us = i.in_ts_us +. shift_us } :: dst.instants)
    src.instants;
  List.iter (fun (k, v) -> incr dst ~by:v k) (counters src)

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON                                                   *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json ~tid s =
  let args =
    s.sp_args
    |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
    (json_escape s.sp_name) (json_escape s.sp_cat) s.sp_start_us s.sp_dur_us tid args

(* Export one or more traces as a complete Chrome trace document.  Each
   trace keeps its own tid so concurrent jobs render as parallel rows;
   counters are summed across traces and attached as Chrome counter
   ("C"-phase) events at the end of the timeline. *)
let to_chrome_json traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  let end_ts = ref 0. in
  List.iter
    (fun t ->
      List.iter
        (fun s ->
          end_ts := Float.max !end_ts (s.sp_start_us +. s.sp_dur_us);
          emit (span_json ~tid:t.tid s))
        (spans t);
      List.iter
        (fun i ->
          end_ts := Float.max !end_ts i.in_ts_us;
          let args =
            i.in_args
            |> List.map (fun (k, v) ->
                   Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
            |> String.concat ","
          in
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.1f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
               (json_escape i.in_name) (json_escape i.in_cat) i.in_ts_us t.tid args))
        (instants t))
    traces;
  let totals = Hashtbl.create 8 in
  List.iter
    (fun t ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace totals k (v + Option.value ~default:0 (Hashtbl.find_opt totals k)))
        (counters t))
    traces;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort compare
  |> List.iter (fun (k, v) ->
         emit
           (Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.1f,\"pid\":1,\"args\":{\"value\":%d}}"
              (json_escape k) !end_ts v));
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json path traces =
  let oc = open_out path in
  output_string oc (to_chrome_json traces);
  output_char oc '\n';
  close_out oc
