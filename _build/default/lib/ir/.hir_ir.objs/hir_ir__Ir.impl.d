lib/ir/ir.ml: Array Attribute Hashtbl Int List Location Map Option Set Typ
