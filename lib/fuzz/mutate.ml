(* Mutators over textual HIR modules.

   Two families, stacked 1–4 deep per generated input:

   - byte-level: flip / insert / delete / duplicate spans, truncate,
     splice two corpus entries.  These explore the lexer: unterminated
     strings, stray bytes, token boundaries.
   - token-level: splice dialect keywords, attribute keys, extreme
     integer literals and malformed type spellings from a dictionary;
     delete, duplicate or swap whole lines.  These keep enough
     structure to get past the lexer and stress the parser and the
     verifiers.

   Inputs are capped at [max_len] so a run of duplicating mutations
   cannot grow an input without bound across iterations. *)

let max_len = 1 lsl 14

(* Tokens chosen to hit known-delicate spots: attribute keys the
   verifiers read through typed accessors, extreme and malformed
   integer literals, type spellings with oversized widths, strings
   with embedded newlines and escapes. *)
let dictionary =
  [|
    "%"; "@"; "^"; "!"; "\""; "{"; "}"; "("; ")"; "["; "]"; "<"; ">"; ":";
    ","; "="; "->"; "*"; "hir.func"; "hir.for"; "hir.unroll_for"; "hir.yield";
    "hir.return"; "hir.call"; "hir.constant"; "hir.delay"; "hir.mem_read";
    "hir.mem_write"; "hir.alloc"; "hir.add"; "builtin.module"; "!hir.time";
    "!hir.const"; "!hir.memref<4*i32, r>"; "!hir.memref<2*2*i8, packing=[0], rw>";
    "i32"; "i1"; "i0"; "i99999999999999999999"; "f16"; "none"; "offset";
    "value"; "latency"; "by"; "mem_kind"; "sym_name"; "callee"; "arg_types";
    "arg_names"; "arg_delays"; "result_types"; "result_delays"; "extern";
    "lb"; "ub"; "step"; "packing"; "loc("; "unit"; "true"; "false";
    "\"reg\""; "\"lutram\""; "\"bogus\""; "!ty<i32>"; "0"; "1"; "-1";
    "123abc"; "9223372036854775807"; "-9223372036854775808";
    "9223372036854775808"; "99999999999999999999999"; "4194305";
    "\"a\nb\""; "\"\\\"\""; "^bb():";
  |]

let insert_at s pos frag =
  String.sub s 0 pos ^ frag ^ String.sub s pos (String.length s - pos)

(* ---------------------------- byte level --------------------------- *)

let byte_flip rng s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    Bytes.to_string b
  end

let byte_insert rng s =
  let c = Char.chr (Rng.int rng 256) in
  insert_at s (Rng.int rng (String.length s + 1)) (String.make 1 c)

let span rng s =
  let len = String.length s in
  let start = Rng.int rng len in
  let n = 1 + Rng.int rng (min 64 (len - start)) in
  (start, n)

let delete_span rng s =
  if s = "" then s
  else begin
    let start, n = span rng s in
    String.sub s 0 start ^ String.sub s (start + n) (String.length s - start - n)
  end

let duplicate_span rng s =
  if s = "" then s
  else begin
    let start, n = span rng s in
    insert_at s (start + n) (String.sub s start n)
  end

let truncate rng s = if s = "" then s else String.sub s 0 (Rng.int rng (String.length s))

let splice rng corpus s =
  match corpus with
  | [||] -> s
  | _ ->
    let other = Rng.choose rng corpus in
    if s = "" || other = "" then s ^ other
    else begin
      let cut1 = Rng.int rng (String.length s) in
      let cut2 = Rng.int rng (String.length other) in
      String.sub s 0 cut1 ^ String.sub other cut2 (String.length other - cut2)
    end

(* --------------------------- token level --------------------------- *)

let insert_token rng s =
  insert_at s (Rng.int rng (String.length s + 1)) (Rng.choose rng dictionary)

(* Replace one run of digits with an extreme literal — the cheapest way
   to reach integer-overflow paths in the lexer and the verifiers. *)
let extreme_ints =
  [| "9223372036854775808"; "-9223372036854775808"; "123abc"; "0"; "-1";
     "4611686018427387904"; "65537"; "99999999999999999999" |]

let replace_int rng s =
  let digit_runs = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] >= '0' && s.[!i] <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      digit_runs := (start, !i - start) :: !digit_runs
    end
    else incr i
  done;
  match !digit_runs with
  | [] -> s
  | runs ->
    let runs = Array.of_list runs in
    let start, len = Rng.choose rng runs in
    String.sub s 0 start
    ^ Rng.choose rng extreme_ints
    ^ String.sub s (start + len) (n - start - len)

let lines s = String.split_on_char '\n' s

let on_lines rng s f =
  let ls = Array.of_list (lines s) in
  if Array.length ls < 2 then s else String.concat "\n" (f rng ls)

let delete_line rng s =
  on_lines rng s (fun rng ls ->
      let i = Rng.int rng (Array.length ls) in
      Array.to_list ls |> List.filteri (fun j _ -> j <> i))

let duplicate_line rng s =
  on_lines rng s (fun rng ls ->
      let i = Rng.int rng (Array.length ls) in
      Array.to_list ls
      |> List.mapi (fun j l -> if j = i then [ l; l ] else [ l ])
      |> List.concat)

let swap_lines rng s =
  on_lines rng s (fun rng ls ->
      let i = Rng.int rng (Array.length ls) and j = Rng.int rng (Array.length ls) in
      let tmp = ls.(i) in
      ls.(i) <- ls.(j);
      ls.(j) <- tmp;
      Array.to_list ls)

(* ------------------------------ driver ----------------------------- *)

let mutators =
  [|
    byte_flip; byte_insert; delete_span; duplicate_span; truncate; insert_token;
    replace_int; delete_line; duplicate_line; swap_lines;
  |]

let cap s = if String.length s > max_len then String.sub s 0 max_len else s

(* One fuzz input: a corpus seed with 1–4 stacked mutations (or, one
   time in eight, a splice of two seeds plus one mutation). *)
let generate rng corpus =
  let base = Rng.choose rng corpus in
  let s =
    if Rng.int rng 8 = 0 then splice rng corpus base else base
  in
  let rounds = 1 + Rng.int rng 4 in
  let s = ref s in
  for _ = 1 to rounds do
    s := cap ((Rng.choose rng mutators) rng !s)
  done;
  !s
