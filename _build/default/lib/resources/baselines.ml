(* Hand-written Verilog baselines.

   The FIFO row of Table 5 compares HIR's FIFO against a classic
   hand-coded synchronous FIFO (binary pointers, registered BRAM
   output, combinational full/empty).  This is that baseline, built
   directly as a Verilog AST. *)

open Hir_verilog.Ast

let sync_fifo ?(depth = 256) ?(width = 32) () =
  let aw =
    let rec go k v = if v >= depth then k else go (k + 1) (v * 2) in
    if depth <= 1 then 1 else go 0 1
  in
  let items =
    [
      Mem_decl { name = "mem"; width; depth; style = Style_bram };
      Reg_decl { name = "wr_ptr"; width = aw + 1 };
      Reg_decl { name = "rd_ptr"; width = aw + 1 };
      Reg_decl { name = "dout_r"; width };
      Wire_decl { name = "empty_w"; width = 1 };
      Wire_decl { name = "full_w"; width = 1 };
      Assign
        {
          target = "empty_w";
          expr = Binop (Eq, Ref "wr_ptr", Ref "rd_ptr");
        };
      Assign
        {
          target = "full_w";
          expr =
            Binop
              ( Eq,
                Binop (Sub, Ref "wr_ptr", Ref "rd_ptr"),
                const_int ~width:(aw + 1) depth );
        };
      Assign { target = "empty"; expr = Ref "empty_w" };
      Assign { target = "full"; expr = Ref "full_w" };
      Assign { target = "dout"; expr = Ref "dout_r" };
      Always_ff
        [
          If
            ( Binop (Log_and, Ref "wr_en", Unop (Not, Ref "full_w")),
              [
                Nonblocking
                  (Lindex ("mem", Slice (Ref "wr_ptr", aw - 1, 0)), Ref "din");
                Nonblocking
                  (Lref "wr_ptr", Binop (Add, Ref "wr_ptr", const_int ~width:(aw + 1) 1));
              ],
              [] );
          If
            ( Binop (Log_and, Ref "rd_en", Unop (Not, Ref "empty_w")),
              [
                Nonblocking
                  (Lref "dout_r", Index ("mem", Slice (Ref "rd_ptr", aw - 1, 0)));
                Nonblocking
                  (Lref "rd_ptr", Binop (Add, Ref "rd_ptr", const_int ~width:(aw + 1) 1));
              ],
              [] );
        ];
    ]
  in
  {
    mod_name = "fifo_verilog_baseline";
    ports =
      [
        { port_name = "clk"; dir = Input; width = 1 };
        { port_name = "wr_en"; dir = Input; width = 1 };
        { port_name = "din"; dir = Input; width };
        { port_name = "rd_en"; dir = Input; width = 1 };
        { port_name = "dout"; dir = Output; width };
        { port_name = "empty"; dir = Output; width = 1 };
        { port_name = "full"; dir = Output; width = 1 };
      ];
    items;
  }

let sync_fifo_design ?depth ?width () =
  let m = sync_fifo ?depth ?width () in
  { modules = [ m ]; top = m.mod_name }
