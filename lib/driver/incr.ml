(* Per-function incremental compilation: the pure machinery behind the
   driver's staged cache chain (see [Cache] for the entry kinds).

   The whole scheme rests on one invariant: every per-function artifact
   is a *pure function of printed text*.  The module is first
   normalized to the print∘parse fixed point; each function's
   normalized printed form (plus the recursive hashes of its callees
   and the pass-pipeline spec) is its *cone hash*; optimizing or
   emitting a function happens in a fresh mini-module rebuilt from
   those texts under an isolated id counter.  Cold compiles and warm
   recompiles therefore run the exact same construction from the exact
   same bytes, which is what makes an incremental recompile
   byte-identical to a cold one — the property the qcheck suite pins.

   Modules that this textual decomposition cannot represent — a
   function whose printed form does not re-parse standalone (e.g. an
   SSA value referenced across function boundaries), or a cyclic call
   graph — raise [Fallback]; the driver then compiles the module
   monolithically (the pre-incremental whole-module path), which is
   equally deterministic, just not function-cacheable. *)

open Hir_ir
open Hir_dialect

(* The staged path cannot decompose this module; compile it whole. *)
exception Fallback of string

(* A pass pipeline rejected a mini-module: an input failure, not a
   reason to fall back (the monolithic path would reject it too). *)
exception Pass_failed of Diagnostic.t list

type fn_info = {
  fi_func : Ir.op;  (* the function inside [pl_module] *)
  fi_text : string;  (* normalized per-function printed form *)
  fi_callees : string list;  (* direct callees, deduped, discovery order *)
  fi_extern : bool;
}

type plan = {
  pl_module : Ir.op;  (* the normalized module *)
  pl_text : string;  (* its printed form (the print∘parse fixed point) *)
  pl_fns : (string * fn_info) list;  (* in module order *)
}

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)

let direct_callees func =
  let seen = Hashtbl.create 8 in
  Ir.Walk.find_all func "hir.call"
  |> List.filter_map (fun call ->
         let name = Ops.call_callee call in
         if Hashtbl.mem seen name then None
         else begin
           Hashtbl.replace seen name ();
           Some name
         end)

let plan_of_module module_op =
  let fns =
    List.map
      (fun f ->
        let name = Ops.func_name f in
        ( name,
          {
            fi_func = f;
            fi_text = Printer.op_to_string f;
            fi_callees = direct_callees f;
            fi_extern = Ops.is_extern_func f;
          } ))
      (Ops.module_funcs module_op)
  in
  { pl_module = module_op; pl_text = Printer.op_to_string module_op; pl_fns = fns }

(* Normalize a parsed module to the print∘parse fixed point.  Printing
   then re-parsing assigns every value a hint equal to its printed name
   (module-wide uniquified), after which printing is the identity — so
   all per-function texts derived from the result agree with each
   other, whichever parse produced them.  One round suffices; if the
   module's own print fails to re-parse, the printed form is not a
   faithful serialization of this IR and the staged path must not be
   trusted with it. *)
let normalize ~file ~text module_op =
  let printed = Printer.op_to_string module_op in
  if String.equal printed text then plan_of_module module_op
  else
    match Parser.parse_string ~file printed with
    | m -> plan_of_module m
    | exception (Parser.Parse_error _ | Lexer.Lex_error _) ->
      raise (Fallback "module print does not re-parse")

let fn_info plan name =
  match List.assoc_opt name plan.pl_fns with
  | Some fi -> fi
  | None -> raise (Fallback (Printf.sprintf "call to unknown function @%s" name))

(* ------------------------------------------------------------------ *)
(* Cone hashes                                                         *)

(* h(f) = Digest(pipeline ⊕ text(f) ⊕ sorted (callee, h(callee))):
   changing a function's body, its pipeline, or anything any transitive
   callee's hash covers changes h(f); editing a sibling function does
   not.  The version salt lives in [Cache.stage_key], not here.  Call
   cycles cannot be hashed this way; they fall back. *)
let cone_hashes plan ~pipeline =
  let memo = Hashtbl.create 16 in
  let visiting = Hashtbl.create 8 in
  let rec hash name =
    match Hashtbl.find_opt memo name with
    | Some h -> h
    | None ->
      if Hashtbl.mem visiting name then
        raise (Fallback (Printf.sprintf "call cycle through @%s" name));
      Hashtbl.replace visiting name ();
      let fi = fn_info plan name in
      let callee_part =
        fi.fi_callees
        |> List.map (fun c -> (c, hash c))
        |> List.sort compare
        |> List.map (fun (c, h) -> c ^ "=" ^ h)
        |> String.concat ","
      in
      let h =
        Digest.to_hex
          (Digest.string (String.concat "\x00" [ pipeline; fi.fi_text; callee_part ]))
      in
      Hashtbl.remove visiting name;
      Hashtbl.replace memo name h;
      h
  in
  hash

(* ------------------------------------------------------------------ *)
(* Cone orders                                                         *)

(* Transitive callees of [top] in the discovery order [Emit.callees_of]
   uses, so the staged design concatenates its modules in the same
   order the monolithic emitter would list them: callees first (reverse
   discovery), top last. *)
let emit_order plan ~top =
  let acc = ref [] in
  let rec go name =
    let fi = fn_info plan name in
    List.iter
      (fun callee ->
        if not (List.mem callee !acc) then begin
          acc := callee :: !acc;
          let cfi = fn_info plan callee in
          if not cfi.fi_extern then go callee
        end)
      fi.fi_callees
  in
  go top;
  List.rev !acc @ [ top ]

(* The same cone in dependency order (every callee before its callers),
   so inclusive usages can be computed bottom-up. *)
let usage_order plan ~top =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      let fi = fn_info plan name in
      List.iter go fi.fi_callees;
      acc := name :: !acc
    end
  in
  go top;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Mini-modules                                                        *)

(* Parse one function's printed text back into an op.  Each text is a
   single "hir.func" op, so [Parser.parse_string] consumes it whole;
   a text that does not re-parse (a value captured across function
   boundaries, a printer/parser asymmetry) aborts the staged path. *)
let parse_fn_text ~what text =
  match Parser.parse_string ~file:what text with
  | op when Ir.Op.name op = "hir.func" -> op
  | _ -> raise (Fallback (Printf.sprintf "%s: not a standalone function" what))
  | exception (Parser.Parse_error _ | Lexer.Lex_error _) ->
    raise (Fallback (Printf.sprintf "%s does not re-parse standalone" what))

(* A fresh module holding the given function texts, in order, built
   under an isolated id counter: ids run 0..n in text order, so the
   construction is a pure function of the texts. *)
let module_of_texts texts f =
  Ir.with_isolated_ids (fun () ->
      let m = Builder.create_module () in
      let block = Builder.module_block m in
      List.iter
        (fun (name, text) ->
          Ir.Block.append block (parse_fn_text ~what:("@" ^ name) text))
        texts;
      f m)

(* The pre-optimization cone texts of [name]: its transitive callees in
   dependency order, itself last.  This is the mini-module layout both
   the optimizer and (for interface lookups) the emitter rebuild. *)
let cone_texts plan name =
  List.map (fun n -> (n, (fn_info plan n).fi_text)) (usage_order plan ~top:name)

(* ------------------------------------------------------------------ *)
(* Per-function optimize                                               *)

(* Optimize [name] in a fresh mini-module holding its pre-opt cone and
   return its optimized printed form plus the pass statistics.  The
   result depends only on the cone texts and the pipeline — exactly
   what the cone hash covers. *)
let optimize_fn plan ~passes ~instrument name =
  module_of_texts (cone_texts plan name) (fun mini ->
      let mgr = Pass.Manager.create ~instrument passes in
      let result = Pass.Manager.run mgr mini in
      if not result.Pass.succeeded then begin
        match Diagnostic.Engine.to_list result.Pass.engine with
        | [] ->
          raise
            (Pass_failed [ Diagnostic.error Location.unknown "pass pipeline failed" ])
        | diags -> raise (Pass_failed diags)
      end;
      let f =
        match Ops.lookup_func mini name with
        | Some f -> f
        | None -> raise (Fallback (Printf.sprintf "@%s vanished during optimization" name))
      in
      (Printer.op_to_string f, result.Pass.stats))

(* ------------------------------------------------------------------ *)
(* Per-function emit                                                    *)

(* Emit one function's Verilog module from its optimized printed form.
   The mini-module holds the *pre-opt* texts of the direct callees
   (instantiation only reads their interfaces, which optimization
   never changes) and the optimized text of the function itself —
   re-parsed even when the in-memory op is at hand, so the emitter
   always runs on the same bytes the Fn snapshot would reproduce. *)
let emit_fn plan ~opt_text name =
  let fi = fn_info plan name in
  if fi.fi_extern then
    module_of_texts [ (name, fi.fi_text) ] (fun mini ->
        let f =
          match Ops.lookup_func mini name with Some f -> f | None -> assert false
        in
        ignore mini;
        (Hir_codegen.Emit.emit_extern_module f, []))
  else
    let texts =
      List.map (fun c -> (c, (fn_info plan c).fi_text)) fi.fi_callees
      @ [ (name, opt_text) ]
    in
    module_of_texts texts (fun mini ->
        let f =
          match Ops.lookup_func mini name with Some f -> f | None -> assert false
        in
        let vmodule, defs, _iface =
          Hir_codegen.Emit.emit_module_for ~module_op:mini f
        in
        (vmodule, defs))

(* The Verilog module name [name] emits as — the key instances use. *)
let emitted_module_name name = Hir_codegen.Names.sanitize name

(* ------------------------------------------------------------------ *)
(* Definition manifests                                                 *)

(* A cached function-Verilog entry leads with a manifest line naming
   the shared definitions ([hirdef_*] modules) its module instantiates,
   in first-registration order.  Each definition is its own [Vmod]
   entry (keyed by its content-addressed name, so a definition shared
   by several functions is stored once); a warm link reads the manifest
   to pull those entries and place each definition before the first
   module that uses it — reproducing [Emit.emit]'s design-wide
   ordering byte for byte.  The manifest is stripped before linking. *)

let manifest_prefix = "//hirdefs:"

let with_manifest ~def_names text =
  match def_names with
  | [] -> text
  | names -> manifest_prefix ^ " " ^ String.concat " " names ^ "\n" ^ text

let split_manifest text =
  let plen = String.length manifest_prefix in
  if String.length text >= plen && String.sub text 0 plen = manifest_prefix then
    match String.index_opt text '\n' with
    | None -> ([], text)
    | Some nl ->
      let names =
        String.sub text plen (nl - plen)
        |> String.split_on_char ' '
        |> List.filter (fun s -> s <> "")
      in
      (names, String.sub text (nl + 1) (String.length text - nl - 1))
  else ([], text)

(* Assemble the final design text from per-module texts in emit order,
   byte-identical to [Hir_verilog.Pretty.design_to_string] of the same
   modules (pinned by a unit test). *)
let link_design module_texts =
  "// Generated by the HIR compiler\n\n" ^ String.concat "\n" module_texts
