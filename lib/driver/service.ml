(* The service core: a continuously-admitting job scheduler on a fixed
   pool of OCaml 5 domains, shared by `hirc batch` (submit everything,
   drain, exit) and `hirc serve` (admit jobs from live connections for
   the lifetime of the process).

   Continuous batching: workers pull the next job the instant they
   finish the previous one — there are no batch boundaries, so a job
   submitted while the pool is busy starts the moment any slot frees.

   Scheduling is priority-first, then fair-share: every job belongs to
   a *client* (a connection for the server, a single bucket for batch)
   and carries an integer priority.  Within a client, jobs run in
   priority order (FIFO among equals); across clients, the head jobs
   compete on (priority desc, jobs-already-served asc, client id asc).
   The served-count tiebreak is deficit-style fairness: a client that
   has consumed fewer slots wins ties, so one greedy connection cannot
   starve a light one, while an idle pool still runs anything
   immediately.  The pick is deterministic — no hashing, no clocks —
   which is what makes the scheduler unit-testable.

   Admission control: the queue is bounded ([max_depth]); a submit
   against a full queue returns [`Overloaded] immediately instead of
   queueing unboundedly.  Backpressure is therefore explicit and the
   caller (the server) turns it into a `rejected: overloaded` response.

   Cancellation: a queued job is withdrawn without ever occupying a
   worker (its completion is synthesized via [cancelled]); a running
   job has its cancel flag set, which [Guard] checkpoints observe at
   stage/pass boundaries — the worker slot frees at the next tick.

   Fault tolerance mirrors the batch scheduler it replaces: worker
   spawns go through the "worker.spawn" injection point and a failed
   spawn degrades the pool to the survivors; with no survivors the
   caller drains inline ([shutdown] does this automatically).  A job
   runner that *raises* (a bug past the driver's own backstop) is
   converted to a completion via [crashed] — the pool never loses a
   job and never leaves a domain unjoined. *)

type state = Queued | Running | Finished

type 'a handle = {
  h_seq : int;  (* submission sequence number, unique per pool *)
  h_client : int;
  h_priority : int;
  h_data : 'a;
  h_cancel : bool Atomic.t;
  h_submitted : float;
  mutable h_state : state;  (* protected by the pool mutex *)
  mutable h_started : float;
}

let seq h = h.h_seq
let data h = h.h_data
let cancel_flag h = h.h_cancel

type ('a, 'r) completion = {
  c_handle : 'a handle;
  c_result : 'r;
  c_cancelled_queued : bool;  (* true: synthesized, never ran *)
  c_queue_seconds : float;
  c_run_seconds : float;
}

type ('a, 'r) t = {
  mu : Mutex.t;
  work : Condition.t;  (* new work, or stop *)
  idle : Condition.t;  (* a job left the system (finished or withdrawn) *)
  run : 'a handle -> 'r;
  cancelled : 'a handle -> 'r;  (* result for a queued job withdrawn *)
  crashed : 'a handle -> exn -> 'r;  (* result when [run] raises *)
  on_complete : ('a, 'r) completion -> unit;
  max_depth : int;
  mutable next_seq : int;
  (* Per-client queues, each priority-sorted (FIFO among equals), the
     list itself sorted by client id so every scan is deterministic. *)
  mutable pending : (int * 'a handle list ref) list;
  served : (int, int) Hashtbl.t;  (* client -> jobs dequeued *)
  mutable depth : int;  (* queued (not yet running) jobs *)
  mutable running : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable spawn_failures : int;
}

let now () = Unix.gettimeofday ()

let served_count t client = Option.value ~default:0 (Hashtbl.find_opt t.served client)

(* ------------------------------------------------------------------ *)
(* Queue operations (pool mutex held)                                  *)

let client_queue t client =
  match List.assoc_opt client t.pending with
  | Some q -> q
  | None ->
    let q = ref [] in
    t.pending <-
      List.merge
        (fun (a, _) (b, _) -> compare a b)
        t.pending [ (client, q) ];
    q

(* Insert after every job of >= priority: priority order, FIFO among
   equals. *)
let enqueue q h =
  let rec go = function
    | x :: rest when x.h_priority >= h.h_priority -> x :: go rest
    | rest -> h :: rest
  in
  q := go !q

(* The deterministic pick described in the header comment. *)
let pick_next t =
  let best = ref None in
  List.iter
    (fun (client, q) ->
      match !q with
      | [] -> ()
      | h :: _ ->
        let sc = served_count t client in
        let better =
          match !best with
          | None -> true
          | Some (bh, bsc, _) ->
            h.h_priority > bh.h_priority
            || (h.h_priority = bh.h_priority
               && (sc < bsc || (sc = bsc && client < bh.h_client)))
        in
        if better then best := Some (h, sc, q))
    t.pending;
  match !best with
  | None -> None
  | Some (h, _, q) ->
    q := List.tl !q;
    t.depth <- t.depth - 1;
    Hashtbl.replace t.served h.h_client (served_count t h.h_client + 1);
    Some h

let remove_queued t h =
  match List.assoc_opt h.h_client t.pending with
  | None -> ()
  | Some q -> q := List.filter (fun x -> x.h_seq <> h.h_seq) !q

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)

let complete t ?(cancelled_queued = false) ?(run_seconds = 0.) ~started h result =
  let c =
    {
      c_handle = h;
      c_result = result;
      c_cancelled_queued = cancelled_queued;
      c_queue_seconds = started -. h.h_submitted;
      c_run_seconds = run_seconds;
    }
  in
  (* A raising completion callback would kill the worker domain and
     hang [shutdown]; the callback owns its own error handling. *)
  try t.on_complete c with _ -> ()

(* Take and run one job.  [block] = wait for work (worker domains);
   non-blocking mode is the inline-drain ladder.  Returns [false] when
   there is nothing left to do (and, when blocking, the pool stopped). *)
let try_run_next t ~block =
  Mutex.lock t.mu;
  let rec get () =
    match pick_next t with
    | Some h -> Some h
    | None ->
      if t.stop || not block then None
      else begin
        Condition.wait t.work t.mu;
        get ()
      end
  in
  match get () with
  | None ->
    Mutex.unlock t.mu;
    false
  | Some h ->
    h.h_state <- Running;
    h.h_started <- now ();
    t.running <- t.running + 1;
    Mutex.unlock t.mu;
    let result =
      if Atomic.get h.h_cancel then t.cancelled h
      else match t.run h with r -> r | exception e -> t.crashed h e
    in
    let finished = now () in
    Mutex.lock t.mu;
    t.running <- t.running - 1;
    h.h_state <- Finished;
    Condition.broadcast t.idle;
    Mutex.unlock t.mu;
    complete t ~run_seconds:(finished -. h.h_started) ~started:h.h_started h result;
    true

let worker t () = while try_run_next t ~block:true do () done

(* ------------------------------------------------------------------ *)
(* API                                                                 *)

let create ?(max_depth = max_int) ?(on_spawn_failure = fun (_ : exn) -> ())
    ~workers ~run ~cancelled ~crashed ~on_complete () =
  let t =
    {
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      run;
      cancelled;
      crashed;
      on_complete;
      max_depth;
      next_seq = 0;
      pending = [];
      served = Hashtbl.create 8;
      depth = 0;
      running = 0;
      stop = false;
      domains = [];
      spawn_failures = 0;
    }
  in
  t.domains <-
    List.filter_map
      (fun _ ->
        match
          Faults.point "worker.spawn";
          Domain.spawn (worker t)
        with
        | d -> Some d
        | exception e ->
          t.spawn_failures <- t.spawn_failures + 1;
          on_spawn_failure e;
          None)
      (List.init (max 0 workers) Fun.id);
  t

let worker_count t = List.length t.domains
let spawn_failure_count t = t.spawn_failures

type stats = { st_depth : int; st_running : int; st_workers : int }

let stats t =
  Mutex.lock t.mu;
  let s = { st_depth = t.depth; st_running = t.running; st_workers = worker_count t } in
  Mutex.unlock t.mu;
  s

type 'a admission = Accepted of 'a handle | Overloaded | Stopped

let submit t ~client ~priority data =
  Mutex.lock t.mu;
  if t.stop then begin
    Mutex.unlock t.mu;
    Stopped
  end
  else if t.depth >= t.max_depth then begin
    Mutex.unlock t.mu;
    Overloaded
  end
  else begin
    let h =
      {
        h_seq = t.next_seq;
        h_client = client;
        h_priority = priority;
        h_data = data;
        h_cancel = Atomic.make false;
        h_submitted = now ();
        h_state = Queued;
        h_started = 0.;
      }
    in
    t.next_seq <- t.next_seq + 1;
    enqueue (client_queue t client) h;
    t.depth <- t.depth + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    Accepted h
  end

(* How long has this job been occupying a worker?  [None] unless it is
   currently running.  The stuck-job watchdog uses this to spot jobs
   that sailed past k x their deadline without reaching a guard
   checkpoint. *)
let running_since t h =
  Mutex.lock t.mu;
  let r = match h.h_state with Running -> Some h.h_started | _ -> None in
  Mutex.unlock t.mu;
  r

(* Withdraw a job.  [`Cancelled]: it was still queued and its
   (synthesized) completion has been delivered; [`Cancelling]: it is
   mid-compile, the flag is set and the real completion will report the
   cancellation when a guard checkpoint observes it; [`Finished]: too
   late, the completion was (or is being) delivered with its real
   result. *)
let cancel t h =
  Mutex.lock t.mu;
  match h.h_state with
  | Queued ->
    remove_queued t h;
    t.depth <- t.depth - 1;
    h.h_state <- Finished;
    Condition.broadcast t.idle;
    Mutex.unlock t.mu;
    complete t ~cancelled_queued:true ~started:(now ()) h (t.cancelled h);
    `Cancelled
  | Running ->
    Atomic.set h.h_cancel true;
    Mutex.unlock t.mu;
    `Cancelling
  | Finished ->
    Mutex.unlock t.mu;
    `Finished

(* Run queued jobs in the calling domain until the queue is empty: the
   last rung of the spawn-failure ladder, and the batch path when no
   worker could start. *)
let drain_inline t = while try_run_next t ~block:false do () done

(* Stop accepting, let the workers drain the queue and finish what is
   running, then join them.  With no workers the caller's domain drains
   the queue itself — jobs are never lost to spawn failures. *)
let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  if t.domains = [] then drain_inline t;
  Mutex.lock t.mu;
  while t.depth > 0 || t.running > 0 do
    Condition.wait t.idle t.mu
  done;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains;
  t.domains <- []

(* ------------------------------------------------------------------ *)
(* Latency histogram                                                   *)

(* Fixed log-scale buckets (≈30% resolution) from 10µs up: cheap to
   record from any domain, and good enough for p50/p90/p99 over a
   server lifetime without retaining per-job samples. *)
module Histogram = struct
  let buckets = 80
  let lo = 1e-5
  let ratio = 1.3
  let log_ratio = Float.log ratio

  type t = {
    mu : Mutex.t;
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable max : float;
  }

  let create () =
    { mu = Mutex.create (); counts = Array.make buckets 0; n = 0; sum = 0.; max = 0. }

  let bucket_of v =
    if v <= lo then 0
    else min (buckets - 1) (1 + int_of_float (Float.log (v /. lo) /. log_ratio))

  (* Upper bound of a bucket: the value reported for percentiles. *)
  let bound i = lo *. (ratio ** float_of_int i)

  let record t v =
    Mutex.lock t.mu;
    let i = bucket_of v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v;
    Mutex.unlock t.mu

  type summary = {
    count : int;
    mean : float;
    p50 : float;
    p90 : float;
    p99 : float;
    max : float;
  }

  let summarize t =
    Mutex.lock t.mu;
    let n = t.n in
    let percentile q =
      if n = 0 then 0.
      else begin
        let target = int_of_float (Float.ceil (q *. float_of_int n)) in
        let target = max 1 (min n target) in
        let rec go i acc =
          if i >= buckets then t.max
          else
            let acc = acc + t.counts.(i) in
            if acc >= target then Float.min (bound i) t.max else go (i + 1) acc
        in
        go 0 0
      end
    in
    let s =
      {
        count = n;
        mean = (if n = 0 then 0. else t.sum /. float_of_int n);
        p50 = percentile 0.50;
        p90 = percentile 0.90;
        p99 = percentile 0.99;
        max = t.max;
      }
    in
    Mutex.unlock t.mu;
    s
end
