(* Deterministic, synchronization-free task-level parallelism (paper
   Listing 3, Section 5.3): two dependent stencil stages run overlapped
   in lock-step through a shared buffer with no FIFOs and no
   handshakes, and the total latency barely exceeds one stage's.

     dune exec examples/task_parallelism.exe *)

open Hir_dialect

let () =
  Ops.register ();
  let overlapped, single = Hir_kernels.Taskparallel.overlap_summary () in
  Printf.printf "one stencil stage alone:          %4d cycles\n" single;
  Printf.printf "two stages, sequential estimate:  %4d cycles\n" (2 * single);
  Printf.printf "two stages, overlapped (HIR):     %4d cycles\n\n" overlapped;

  (* The overlapped design still computes the right answer: check the
     pipeline against composing the reference model twice. *)
  (match Hir_kernels.Taskparallel.check_interp () with
  | Ok result ->
    Printf.printf "functional check: PASS (%d reads, %d writes)\n" result.Interp.reads
      result.Interp.writes
  | Error e -> Printf.printf "functional check: FAIL (%s)\n" e);

  (* How it works: stencilB is called a fixed 6 cycles after stencilA;
     from then on both run one element per cycle.  The offset is part
     of the schedule, so no synchronization hardware exists at all. *)
  let m, _ = Hir_kernels.Taskparallel.build () in
  let calls = Hir_ir.Ir.Walk.find_all m "hir.call" in
  List.iter
    (fun call ->
      Printf.printf "  call @%-10s at %%t offset %d\n"
        (Ops.call_callee call) (Ops.call_offset call))
    calls
