(* Property-based differential testing of the whole backend.

   Two generators produce random *well-scheduled* HIR designs: one
   emits straight-line code (reads, combinational arithmetic, delays,
   writes — with all operand births kept aligned by construction), the
   other scheduled [hir.for] loops pipelined at initiation intervals
   1..3 with a random combinational chain and extra pipeline stages in
   the body.  For each design we check three properties:

     1. the structural and schedule verifiers accept it;
     2. the textual round-trip is a fixpoint;
     3. the cycle-accurate interpreter and the RTL simulation of the
        generated Verilog agree on every output element.

   This hunts for disagreements between the four independent
   implementations of HIR semantics (verifier, interpreter, code
   generator, RTL simulator). *)

open Hir_ir
open Hir_dialect
module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

let () = Ops.register ()

let input_size = 16
let max_outputs = 8

(* A recipe is a pure description of a design, so QCheck can print and
   shrink it. *)
type step =
  | S_read of int * int  (* input index, issue delta *)
  | S_bin of string * int * int  (* op, operand a, operand b (pool indices) *)
  | S_bin_const of string * int * int  (* op, operand, constant *)
  | S_delay of int * int  (* pool index, by *)

type recipe = { steps : step list; outputs : int list (* pool indices *) }

let step_to_string = function
  | S_read (i, d) -> Printf.sprintf "read[%d]@%d" i d
  | S_bin (op, a, b) -> Printf.sprintf "%s(#%d,#%d)" op a b
  | S_bin_const (op, a, c) -> Printf.sprintf "%s(#%d,%d)" op a c
  | S_delay (a, by) -> Printf.sprintf "delay(#%d,by %d)" a by

let recipe_to_string r =
  Printf.sprintf "steps=[%s] outputs=[%s]"
    (String.concat "; " (List.map step_to_string r.steps))
    (String.concat "," (List.map string_of_int r.outputs))

let ops_pool = [ "hir.add"; "hir.sub"; "hir.mult"; "hir.and"; "hir.or"; "hir.xor" ]

let gen_recipe : recipe QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_steps = int_range 2 24 in
  (* Pool entry 0 always exists: a read of input[0] at delta 0. *)
  let rec build k pool_size acc =
    if k = 0 then return (List.rev acc)
    else
      let* choice = int_range 0 99 in
      let* s =
        if choice < 30 || pool_size = 0 then
          let* i = int_range 0 (input_size - 1) in
          let* d = int_range 0 4 in
          return (S_read (i, d))
        else if choice < 60 then
          let* a = int_range 0 (pool_size - 1) in
          let* b = int_range 0 (pool_size - 1) in
          let* op = oneofl ops_pool in
          return (S_bin (op, a, b))
        else if choice < 80 then
          let* a = int_range 0 (pool_size - 1) in
          let* c = int_range (-100) 1000 in
          let* op = oneofl ops_pool in
          return (S_bin_const (op, a, c))
        else
          let* a = int_range 0 (pool_size - 1) in
          let* by = int_range 1 3 in
          return (S_delay (a, by))
      in
      build (k - 1) (pool_size + 1) (s :: acc)
  in
  let* steps = build n_steps 1 [] in
  let pool_size = 1 + List.length steps in
  let* n_out = int_range 1 (min max_outputs pool_size) in
  let* outputs = list_repeat n_out (int_range 0 (pool_size - 1)) in
  return { steps = S_read (0, 0) :: steps; outputs }

(* Build the HIR design from a recipe.  The pool tracks (value, birth
   delta); binary operands are aligned by delaying the earlier one. *)
let build_design recipe =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"fuzz"
      ~args:
        [
          Builder.arg "inp"
            (Types.memref ~dims:[ input_size ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "out"
            (Types.memref ~packing:(Some []) ~dims:[ max_outputs ] ~elem:Typ.i32
               ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ inp; out ] ->
          let pool = ref [] in
          let push v d = pool := !pool @ [ (v, d) ] in
          let nth i = List.nth !pool (i mod List.length !pool) in
          let align (v, d) target =
            if d = target then v
            else Builder.delay b v ~by:(target - d) ~at:Builder.(t @>> d)
          in
          List.iter
            (fun step ->
              match step with
              | S_read (i, d) ->
                let idx = Builder.constant b i in
                let v = Builder.mem_read b inp [ idx ] ~at:Builder.(t @>> d) in
                push v (d + 1)
              | S_bin (op, a_i, b_i) ->
                let va, da = nth a_i and vb, db = nth b_i in
                let target = max da db in
                let va = align (va, da) target and vb = align (vb, db) target in
                push (Builder.binop op b va vb) target
              | S_bin_const (op, a_i, c) ->
                let va, da = nth a_i in
                let vc = Builder.constant b c in
                push (Builder.binop op b va vc) da
              | S_delay (a_i, by) ->
                let va, da = nth a_i in
                push (Builder.delay b va ~by ~at:Builder.(t @>> da)) (da + by))
            recipe.steps;
          List.iteri
            (fun slot pool_idx ->
              let v, d = nth pool_idx in
              let idx = Builder.constant b slot in
              Builder.mem_write b v out [ idx ] ~at:Builder.(t @>> d))
            recipe.outputs;
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, f)

(* The read port sees several reads; reads that share a cycle must
   share an address (§4.5).  The generator does not guarantee that, so
   recipes with read conflicts are filtered out by the verifier — the
   property only requires agreement on *accepted* designs. *)
let verifier_accepts m =
  let e = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error err -> List.iter (Diagnostic.Engine.emit e) (Diagnostic.Engine.to_list err));
  Verify_schedule.verify_module e m;
  not (Diagnostic.Engine.has_errors e)

let input_data =
  Array.init input_size (fun i -> Bitvec.of_int ~width:32 ((i * 2654435761) land 0xFFFFFF))

let interp_outputs m f =
  let _, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input_data; Interp.Out_tensor ]
  in
  Interp.tensor_snapshot (tensors 1) ~cycle:max_int

let rtl_outputs m f =
  let emitted = Emit.emit ~module_op:m ~top:f () in
  let result, agents =
    Harness.run ~emitted
      ~inputs:[ Harness.Tensor input_data; Harness.Out_tensor ]
      ~cycles:40 ()
  in
  (result.Harness.failures, Harness.nth_tensor agents 1)

let agree a b =
  Array.for_all2
    (fun x y ->
      match (x, y) with
      | Some x, Some y -> Bitvec.equal x y
      | None, None -> true
      | _ -> false)
    a b

let arb_recipe = QCheck.make ~print:recipe_to_string gen_recipe

(* ------------------------------------------------------------------ *)
(* Loop recipes: a pipelined hir.for at a chosen initiation interval.

   Body shape: read inp[i] (1-cycle latency), feed it through a random
   chain of constant binops, optionally add [lr_extra] pipeline stages
   of delay, and write to out[i] at the matching stage.  The yield
   offset IS the initiation interval, so II ∈ 1..3 pipelines iterations
   at different overlaps against the multi-stage body. *)

type loop_recipe = {
  lr_ii : int;  (* initiation interval, 1..3 *)
  lr_chain : (string * int) list;  (* constant binop chain on the read value *)
  lr_extra : int;  (* extra delay stages before the write, 0..2 *)
}

let loop_recipe_to_string r =
  Printf.sprintf "ii=%d chain=[%s] extra=%d" r.lr_ii
    (String.concat "; " (List.map (fun (op, c) -> Printf.sprintf "%s %d" op c) r.lr_chain))
    r.lr_extra

let gen_loop_recipe : loop_recipe QCheck.Gen.t =
  let open QCheck.Gen in
  let* lr_ii = int_range 1 3 in
  let* n_chain = int_range 0 4 in
  let* lr_chain = list_repeat n_chain (pair (oneofl ops_pool) (int_range (-100) 1000)) in
  let* lr_extra = int_range 0 2 in
  return { lr_ii; lr_chain; lr_extra }

let build_loop_design r =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"loopfuzz"
      ~args:
        [
          Builder.arg "inp"
            (Types.memref ~dims:[ input_size ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "out"
            (Types.memref ~dims:[ input_size ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ inp; out ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let cn = Builder.constant b input_size in
          let _tf =
            Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:cn ~step:c1
              ~at:Builder.(t @>> 1)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> r.lr_ii);
                (* The read value is born at ti@1 (1-cycle latency). *)
                let v = Builder.mem_read b inp [ i ] ~at:Builder.(ti @>> 0) in
                let v =
                  List.fold_left
                    (fun v (op, c) -> Builder.binop op b v (Builder.constant b c))
                    v r.lr_chain
                in
                let stage = 1 + r.lr_extra in
                let v =
                  if r.lr_extra = 0 then v
                  else Builder.delay b v ~by:r.lr_extra ~at:Builder.(ti @>> 1)
                in
                let addr = Builder.delay b i ~by:stage ~at:Builder.(ti @>> 0) in
                Builder.mem_write b v out [ addr ] ~at:Builder.(ti @>> stage))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, f)

let arb_loop_recipe = QCheck.make ~print:loop_recipe_to_string gen_loop_recipe

let prop_differential =
  QCheck.Test.make ~count:120 ~name:"interp == RTL on random scheduled designs"
    arb_recipe (fun recipe ->
      let m, f = build_design recipe in
      QCheck.assume (verifier_accepts m);
      (* Round-trip property comes free on the same design. *)
      let text1 = Printer.op_to_string m in
      let reparsed = Parser.parse_string text1 in
      let text2 = Printer.op_to_string reparsed in
      if text1 <> text2 then QCheck.Test.fail_report "print/parse not a fixpoint";
      let expected = interp_outputs m f in
      let m2, f2 = build_design recipe in
      let failures, actual = rtl_outputs m2 f2 in
      if failures <> [] then
        QCheck.Test.fail_report
          ("UB assertion fired: " ^ (List.hd failures).Hir_rtl.Sim.message);
      if not (agree expected actual) then QCheck.Test.fail_report "interp != RTL"
      else true)

let prop_optimizer_preserves =
  QCheck.Test.make ~count:60 ~name:"optimizer preserves random designs" arb_recipe
    (fun recipe ->
      let m, f = build_design recipe in
      QCheck.assume (verifier_accepts m);
      let expected = interp_outputs m f in
      let m2, f2 = build_design recipe in
      ignore (Passes.run_canonicalize m2);
      ignore (Precision_opt.run m2);
      ignore (Passes.run_delay_elim m2);
      ignore (Retime.run m2);
      QCheck.assume (verifier_accepts m2);
      let after = interp_outputs m2 f2 in
      agree expected after)

let rtl_loop_outputs r m f =
  let emitted = Emit.emit ~module_op:m ~top:f () in
  let result, agents =
    Harness.run ~emitted
      ~inputs:[ Harness.Tensor input_data; Harness.Out_tensor ]
      ~cycles:((r.lr_ii * input_size) + r.lr_extra + 16)
      ()
  in
  (result.Harness.failures, Harness.nth_tensor agents 1)

let prop_loop_differential =
  QCheck.Test.make ~count:60 ~name:"interp == RTL on pipelined loops (II 1..3)"
    arb_loop_recipe (fun recipe ->
      let m, f = build_loop_design recipe in
      (* Loop designs are well-scheduled by construction: the verifier
         must accept every one, so a rejection is itself a bug. *)
      if not (verifier_accepts m) then
        QCheck.Test.fail_report "verifier rejected a well-scheduled loop design";
      let text1 = Printer.op_to_string m in
      let reparsed = Parser.parse_string text1 in
      let text2 = Printer.op_to_string reparsed in
      if text1 <> text2 then QCheck.Test.fail_report "print/parse not a fixpoint";
      let expected = interp_outputs m f in
      let m2, f2 = build_loop_design recipe in
      let failures, actual = rtl_loop_outputs recipe m2 f2 in
      if failures <> [] then
        QCheck.Test.fail_report
          ("UB assertion fired: " ^ (List.hd failures).Hir_rtl.Sim.message);
      if not (agree expected actual) then QCheck.Test.fail_report "interp != RTL"
      else true)

let prop_loop_optimizer_preserves =
  QCheck.Test.make ~count:40 ~name:"optimizer preserves pipelined loops"
    arb_loop_recipe (fun recipe ->
      let m, f = build_loop_design recipe in
      QCheck.assume (verifier_accepts m);
      let expected = interp_outputs m f in
      let m2, f2 = build_loop_design recipe in
      ignore (Passes.run_canonicalize m2);
      ignore (Precision_opt.run m2);
      ignore (Passes.run_delay_elim m2);
      ignore (Retime.run m2);
      QCheck.assume (verifier_accepts m2);
      let after = interp_outputs m2 f2 in
      agree expected after)

(* ------------------------------------------------------------------ *)
(* Hierarchical emission: flat vs. outlined designs in lockstep.

   The outliner must be behaviorally invisible: a design emitted with
   the definition cache on (structurally identical unrolled clones
   shared as module definitions, wide port arbitration lowered to
   chains of shared stages) must produce the same outputs and the same
   assertion failures as the flat emission of the same IR.  Pinned two
   ways: a qcheck property over random unrolled bodies (the shape the
   outliner exists for), and full kernel runs (gemm, systolic) against
   their reference models. *)

type unroll_recipe = {
  ur_iters : int;  (* unrolled trip count, 2..6 *)
  ur_chain : (string * int) list;  (* per-clone binop chain *)
  ur_stages : int;  (* extra delay stages before the write, 0..2 *)
}

let unroll_recipe_to_string r =
  Printf.sprintf "iters=%d chain=[%s] stages=%d" r.ur_iters
    (String.concat "; " (List.map (fun (op, c) -> Printf.sprintf "%s %d" op c) r.ur_chain))
    r.ur_stages

let gen_unroll_recipe : unroll_recipe QCheck.Gen.t =
  let open QCheck.Gen in
  let* ur_iters = int_range 2 6 in
  let* n_chain = int_range 1 5 in
  let* ur_chain = list_repeat n_chain (pair (oneofl ops_pool) (int_range (-100) 1000)) in
  let* ur_stages = int_range 0 2 in
  return { ur_iters; ur_chain; ur_stages }

(* out[u] = chain(inp[u]), one unroll_for clone per u, iterations
   serialized by the yield offset so the shared memory ports see one
   access per cycle.  Every clone has the same shape, so the emitter's
   grouping marks [ur_iters] structurally identical sites. *)
let build_unroll_design r =
  let m = Builder.create_module () in
  let f =
    Builder.func m ~name:"unrollfuzz"
      ~args:
        [
          Builder.arg "inp"
            (Types.memref ~dims:[ input_size ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "out"
            (Types.memref ~dims:[ input_size ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ inp; out ] ->
          let _tf =
            Builder.unroll_for b ~iv_hint:"u" ~lb:0 ~ub:r.ur_iters ~step:1
              ~at:Builder.(t @>> 1)
              (fun b ~iv:u ~ti:tu ->
                Builder.yield b ~at:Builder.(tu @>> 1);
                let v = Builder.mem_read b inp [ u ] ~at:Builder.(tu @>> 0) in
                let v =
                  List.fold_left
                    (fun v (op, c) -> Builder.binop op b v (Builder.constant b c))
                    v r.ur_chain
                in
                let v =
                  if r.ur_stages = 0 then v
                  else Builder.delay b v ~by:r.ur_stages ~at:Builder.(tu @>> 1)
                in
                Builder.mem_write b v out [ u ] ~at:Builder.(tu @>> (1 + r.ur_stages)))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, f)

let arb_unroll_recipe = QCheck.make ~print:unroll_recipe_to_string gen_unroll_recipe

let harness_outputs ~hier (m, f) =
  let emitted = Emit.compile ~hier ~module_op:m ~top:f () in
  let result, agents =
    Harness.run ~emitted
      ~inputs:[ Harness.Tensor input_data; Harness.Out_tensor ]
      ~cycles:60 ()
  in
  (result.Harness.failures, Harness.nth_tensor agents 1)

let prop_hier_lockstep =
  QCheck.Test.make ~count:80 ~name:"flat == hierarchical on unrolled designs"
    arb_unroll_recipe (fun recipe ->
      let expected =
        let m, f = build_unroll_design recipe in
        interp_outputs m f
      in
      let flat_failures, flat_out = harness_outputs ~hier:false (build_unroll_design recipe) in
      let hier_failures, hier_out = harness_outputs ~hier:true (build_unroll_design recipe) in
      if List.length flat_failures <> List.length hier_failures then
        QCheck.Test.fail_report "flat and hierarchical failure counts differ";
      if not (agree flat_out hier_out) then
        QCheck.Test.fail_report "flat != hierarchical outputs";
      if not (agree expected hier_out) then
        QCheck.Test.fail_report "interp != hierarchical outputs"
      else true)

(* Full kernels, flat vs. hierarchical vs. reference model — the
   RTL-vs-reference differential check for the systolic generator, and
   the same for gemm (whose PE grid is the outliner's original
   target).  Runs both unoptimized and under the full pass pipeline. *)
let kernel_lockstep ~build ~inputs ~expected ~out_slot ~cycles () =
  let run ~hier ~optimize =
    let m, f = build () in
    let emitted = Emit.compile ~optimize ~hier ~module_op:m ~top:f () in
    let result, agents = Harness.run ~emitted ~inputs ~cycles () in
    (result.Harness.failures, Harness.nth_tensor agents out_slot, emitted)
  in
  List.iter
    (fun optimize ->
      let flat_failures, flat_out, _ = run ~hier:false ~optimize in
      let hier_failures, hier_out, hier_emitted = run ~hier:true ~optimize in
      Alcotest.(check int)
        (Printf.sprintf "failure counts agree (optimize=%b)" optimize)
        (List.length flat_failures) (List.length hier_failures);
      Alcotest.(check bool)
        (Printf.sprintf "no assertion failures (optimize=%b)" optimize)
        true (hier_failures = []);
      Alcotest.(check bool)
        (Printf.sprintf "flat == hierarchical (optimize=%b)" optimize)
        true (agree flat_out hier_out);
      Array.iteri
        (fun i v ->
          match v with
          | Some got when Bitvec.equal got expected.(i) -> ()
          | _ ->
            Alcotest.failf "output %d disagrees with the reference (optimize=%b)" i
              optimize)
        hier_out;
      (* The definition cache must actually fire on these kernels:
         hierarchy, not just equivalence. *)
      Alcotest.(check bool)
        (Printf.sprintf "design is hierarchical (optimize=%b)" optimize)
        true
        (List.length hier_emitted.Emit.design.Hir_verilog.Ast.modules > 1))
    [ false; true ]

let test_gemm_lockstep () =
  let n = 4 in
  let a, bm = Hir_kernels.Systolic.make_inputs ~n ~seed:11 () in
  kernel_lockstep
    ~build:(fun () -> Hir_kernels.Gemm.build ~n ())
    ~inputs:[ Harness.Tensor a; Harness.Tensor bm; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Systolic.reference ~n a bm)
    ~out_slot:2
    ~cycles:((6 * n * n) + 60)
    ()

let test_systolic_lockstep () =
  let n = 4 in
  let a, bm = Hir_kernels.Systolic.make_inputs ~n ~seed:7 () in
  kernel_lockstep
    ~build:(fun () -> Hir_kernels.Systolic.build ~n ())
    ~inputs:[ Harness.Tensor a; Harness.Tensor bm; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Systolic.reference ~n a bm)
    ~out_slot:2
    ~cycles:((6 * n * n) + 60)
    ()

let test_systolic_deep_mac_lockstep () =
  let n = 5 in
  let a, bm = Hir_kernels.Systolic.make_inputs ~n ~seed:3 () in
  kernel_lockstep
    ~build:(fun () -> Hir_kernels.Systolic.build ~n ~mac_stages:3 ())
    ~inputs:[ Harness.Tensor a; Harness.Tensor bm; Harness.Out_tensor ]
    ~expected:(Hir_kernels.Systolic.reference ~n a bm)
    ~out_slot:2
    ~cycles:((6 * n * n) + 60)
    ()

(* The greedy worklist driver and the legacy whole-module-scan pass
   loop are two independent implementations of canonicalize; on every
   accepted random design they must produce IR that prints identically
   (canonical printing ignores value ids, so two separately-built
   modules compare structurally), and the driver must converge by
   draining its worklist, never via the round backstop. *)

let driver_vs_legacy build recipe =
  let m1, _ = build recipe in
  QCheck.assume (verifier_accepts m1);
  let m2, _ = build recipe in
  let stats = Passes.run_canonicalize_stats m1 in
  if stats.Rewrite.ds_backstop then
    QCheck.Test.fail_report "driver hit the round backstop";
  ignore (Passes.Legacy.run_canonicalize m2);
  let a = Printer.op_to_canonical_string m1 in
  let b = Printer.op_to_canonical_string m2 in
  if a <> b then
    QCheck.Test.fail_report
      (Printf.sprintf "driver/legacy diverge:\n--- driver ---\n%s\n--- legacy ---\n%s" a b)
  else true

let prop_driver_matches_legacy =
  QCheck.Test.make ~count:80 ~name:"greedy driver == legacy canonicalize"
    arb_recipe
    (driver_vs_legacy build_design)

let prop_loop_driver_matches_legacy =
  QCheck.Test.make ~count:40 ~name:"greedy driver == legacy canonicalize (loops)"
    arb_loop_recipe
    (driver_vs_legacy build_loop_design)

(* Guard against vacuous properties: a healthy fraction of generated
   recipes must actually reach the differential check. *)
let test_acceptance_rate () =
  let recipes = QCheck.Gen.generate ~n:200 gen_recipe in
  let accepted =
    List.length
      (List.filter (fun r -> verifier_accepts (fst (build_design r))) recipes)
  in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance rate reasonable (%d/200)" accepted)
    true
    (accepted >= 40);
  (* And the §4.5 read-port-conflict filter does reject some designs,
     i.e. the verifier is doing real work on this generator. *)
  Alcotest.(check bool) "some designs rejected" true (accepted < 200)

let () =
  Alcotest.run "differential"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_optimizer_preserves;
          QCheck_alcotest.to_alcotest prop_loop_differential;
          QCheck_alcotest.to_alcotest prop_loop_optimizer_preserves;
          QCheck_alcotest.to_alcotest prop_driver_matches_legacy;
          QCheck_alcotest.to_alcotest prop_loop_driver_matches_legacy;
          Alcotest.test_case "generator acceptance rate" `Quick test_acceptance_rate;
        ] );
      ( "hierarchy",
        [
          QCheck_alcotest.to_alcotest prop_hier_lockstep;
          Alcotest.test_case "gemm flat == hierarchical == reference" `Quick
            test_gemm_lockstep;
          Alcotest.test_case "systolic flat == hierarchical == reference" `Quick
            test_systolic_lockstep;
          Alcotest.test_case "systolic deep MAC lockstep" `Quick
            test_systolic_deep_mac_lockstep;
        ] );
    ]
