(* The baseline HLS compiler: classic high-level-synthesis phases over
   the C-like [Ast], emitting HIR with the discovered schedule made
   explicit (the integration path of paper Section 9.2), which then
   reuses the HIR Verilog backend.

   Phases, mirroring a Vivado-HLS-style flow:
     1. frontend     full unrolling, repeated constant folding
     2. allocation   array storage/port/latency selection
     3. scheduling   dependence analysis + list scheduling per block;
                     iterative modulo scheduling for PIPELINE loops
     4. binding      operator/register usage accounting
     5. codegen      HIR emission (schedules explicit), then the shared
                     HIR → Verilog backend

   Unlike the HIR flow, the widths are whatever the C source declared
   (32-bit by default) and every value crossing a cycle boundary gets
   its own alignment registers — which is exactly where the LUT/FF gap
   of Tables 4 and 5 comes from. *)

open Ast
module Builder = Hir_dialect.Builder
module Types = Hir_dialect.Types
module Ops = Hir_dialect.Ops
module Typ = Hir_ir.Typ

exception Hls_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Hls_error s)) fmt

type config = {
  mul_latency : int;  (* extra pipeline stages on multipliers *)
  fold_iterations : int;  (* middle-end cleanup repetitions *)
}

let default_config = { mul_latency = 0; fold_iterations = 8 }

(* ------------------------------------------------------------------ *)
(* Allocation: arrays                                                  *)

type array_info = {
  ai_decl : array_decl;
  ai_local : bool;
  ai_dir : direction option;
  ai_kind : Ops.mem_kind;  (* for locals *)
  ai_latency : int;
  ai_banks : int;
  ai_packing : int list;  (* packed (non-partitioned) dim indices *)
}

let allocate_array ~local ~dir (decl : array_decl) =
  let ndims = List.length decl.dims in
  let packing =
    List.filter (fun i -> not (List.mem i decl.partition)) (List.init ndims (fun i -> i))
  in
  let banks =
    List.fold_left ( * ) 1 (List.filteri (fun i _ -> List.mem i decl.partition) decl.dims)
  in
  let depth_per_bank =
    List.fold_left ( * ) 1 (List.filteri (fun i _ -> not (List.mem i decl.partition)) decl.dims)
  in
  let kind =
    match decl.storage with
    | Bram -> Ops.Block_ram
    | Lutram -> Ops.Lut_ram
    | Reg_file -> Ops.Reg
    | Auto ->
      if depth_per_bank = 1 then Ops.Reg
      else if depth_per_bank * decl.elem_width >= 4096 then Ops.Block_ram
      else Ops.Lut_ram
  in
  let latency = if local then Ops.mem_kind_latency kind else 1 in
  {
    ai_decl = decl;
    ai_local = local;
    ai_dir = dir;
    ai_kind = kind;
    ai_latency = latency;
    ai_banks = banks;
    ai_packing = packing;
  }

(* ------------------------------------------------------------------ *)
(* Normalization: hoist loads out of expressions                       *)

type node = {
  n_id : int;
  n_kind : nkind;
  mutable n_cycle : int;
}

and nkind =
  | N_load of { array : string; indices : expr list; temp : string; lat : int }
  | N_temp of { temp : string; nty : ty; value : expr; lat : int }
  | N_store of { array : string; indices : expr list; value : expr }

type seg_item = Straight of node list | Subloop of for_loop

let node_counter = ref 0

let new_node kind =
  incr node_counter;
  { n_id = !node_counter; n_kind = kind; n_cycle = 0 }

let rec expr_has_mul = function
  | Int _ | Var _ -> false
  | Load _ -> true  (* never after normalization *)
  | Binop (Mul, _, _) -> true
  | Binop (_, a, b) -> expr_has_mul a || expr_has_mul b

(* Hoist loads: returns (expr without loads, load nodes in order).
   Syntactically identical loads are shared through [load_cache]
   (Vivado-style redundant-load elimination), which is what lets an
   unrolled PE row broadcast one read to many consumers; the cache is
   invalidated on stores to the same array. *)
let normalize_expr ~arrays ~load_cache e =
  let fresh =
    let c = ref 0 in
    fun () ->
      incr c;
      Printf.sprintf "_ld%d_%d" !node_counter !c
  in
  let nodes = ref [] in
  let rec go = function
    | Int _ as e -> e
    | Var _ as e -> e
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Load (arr, idx) ->
      let idx = List.map go idx in
      (match Hashtbl.find_opt load_cache (arr, idx) with
      | Some temp -> Var temp
      | None ->
        let temp = fresh () in
        let lat =
          match List.assoc_opt arr arrays with
          | Some ai -> ai.ai_latency
          | None -> fail "unknown array %s" arr
        in
        nodes := new_node (N_load { array = arr; indices = idx; temp; lat }) :: !nodes;
        Hashtbl.replace load_cache (arr, idx) temp;
        Var temp)
  in
  let e' = go e in
  (e', List.rev !nodes)

let normalize_stmts ~arrays ~config stmts =
  let load_cache = Hashtbl.create 32 in
  let invalidate arr =
    let stale =
      Hashtbl.fold (fun (a, i) _ acc -> if a = arr then (a, i) :: acc else acc)
        load_cache []
    in
    List.iter (Hashtbl.remove load_cache) stale
  in
  let rec seg acc current = function
    | [] -> List.rev (if current = [] then acc else Straight (List.rev current) :: acc)
    | Let (n, t, e) :: rest ->
      let e', loads = normalize_expr ~arrays ~load_cache e in
      let lat = if expr_has_mul e' then config.mul_latency else 0 in
      let node = new_node (N_temp { temp = n; nty = t; value = e'; lat }) in
      seg acc (node :: List.rev_append (List.rev loads) current) rest
    | Store (arr, idx, e) :: rest ->
      let e', loads1 = normalize_expr ~arrays ~load_cache e in
      let idx_pairs = List.map (normalize_expr ~arrays ~load_cache) idx in
      let idx' = List.map fst idx_pairs in
      let loads2 = List.concat_map snd idx_pairs in
      invalidate arr;
      let node = new_node (N_store { array = arr; indices = idx'; value = e' }) in
      seg acc
        (node :: List.rev_append (List.rev (loads1 @ loads2)) current)
        rest
    | For f :: rest ->
      let acc = if current = [] then acc else Straight (List.rev current) :: acc in
      Hashtbl.reset load_cache;
      seg (Subloop f :: acc) [] rest
  in
  seg [] [] stmts

(* ------------------------------------------------------------------ *)
(* Dependence analysis                                                 *)

(* Bank of an access when all partitioned-dim indices are constants
   (guaranteed after unrolling for legal designs). *)
let access_bank ~arrays array indices =
  let ai = List.assoc array arrays in
  let partitioned = ai.ai_decl.partition in
  let banked =
    List.filteri (fun i _ -> List.mem i partitioned)
      (List.combine indices ai.ai_decl.dims)
  in
  let rec go acc = function
    | [] -> Some acc
    | (Int n, size) :: rest -> go ((acc * size) + n) rest
    | _ -> None
  in
  go 0 banked

(* May two index vectors refer to the same element? *)
let same_address_maybe a b =
  let rec definitely_eq x y =
    match (x, y) with
    | Int m, Int n -> m = n
    | Var m, Var n -> m = n
    | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && definitely_eq a1 a2 && definitely_eq b1 b2
    | _ -> false
  in
  let definitely_ne x y = match (x, y) with Int m, Int n -> m <> n | _ -> false in
  if List.for_all2 definitely_eq a b then `Same
  else if List.exists2 definitely_ne a b then `Different
  else `Unknown

type dep = { dep_from : node; dep_to : node; dep_min : int; dep_distance : int }

(* Memory dependences among the nodes of one straight-line segment.
   [pipelined] additionally yields distance-1 cross-iteration edges. *)
let memory_deps ~arrays ~pipelined ?(dep_free = []) nodes =
  let accesses =
    List.filter_map
      (fun n ->
        match n.n_kind with
        | N_load { array; indices; _ } -> Some (n, array, indices, `R)
        | N_store { array; indices; _ } -> Some (n, array, indices, `W)
        | N_temp _ -> None)
      nodes
  in
  let deps = ref [] in
  let add dep = deps := dep :: !deps in
  let rec pairs = function
    | [] -> ()
    | (n1, arr1, idx1, rw1) :: rest ->
      List.iter
        (fun (n2, arr2, idx2, rw2) ->
          if arr1 = arr2 then begin
            let bank1 = access_bank ~arrays arr1 idx1 in
            let bank2 = access_bank ~arrays arr2 idx2 in
            let same_bank =
              match (bank1, bank2) with Some a, Some b -> a = b | _ -> true
            in
            let addr = same_address_maybe idx1 idx2 in
            if same_bank && addr <> `Different then begin
              (* Intra-iteration edge n1 -> n2 (textual order). *)
              (match (rw1, rw2) with
              | `W, `R -> add { dep_from = n1; dep_to = n2; dep_min = 1; dep_distance = 0 }
              | `R, `W -> add { dep_from = n1; dep_to = n2; dep_min = 0; dep_distance = 0 }
              | `W, `W -> add { dep_from = n1; dep_to = n2; dep_min = 1; dep_distance = 0 }
              | `R, `R -> ());
              (* Cross-iteration edges for pipelining: the later
                 iteration's access must respect this iteration's
                 store. *)
              if pipelined && not (List.mem arr1 dep_free) then begin
                match (rw1, rw2) with
                | `W, `R | `W, `W ->
                  add { dep_from = n1; dep_to = n2; dep_min = 1; dep_distance = 1 }
                | `R, `W | `R, `R -> ()
              end
            end;
            (* Cross-iteration store-after-anything in the reverse
               textual direction (e.g. load early, store late: next
               iteration's load vs this store). *)
            if pipelined && same_bank && addr <> `Different
               && not (List.mem arr1 dep_free)
            then begin
              match (rw2, rw1) with
              | `W, `R | `W, `W ->
                add { dep_from = n2; dep_to = n1; dep_min = 1; dep_distance = 1 }
              | _ -> ()
            end
          end)
        rest;
      pairs rest
  in
  pairs accesses;
  !deps

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)

(* Ready time of the leaf values of an expression. *)
let expr_ready ~ready e =
  let rec go = function
    | Int _ -> 0
    | Var n -> ready n
    | Load _ -> fail "unnormalized load during scheduling"
    | Binop (_, a, b) -> max (go a) (go b)
  in
  go e

type port_use = { pu : (string * int * int * [ `R | `W ], int) Hashtbl.t }
(* key: array, bank, cycle (mod II for pipelined), direction *)

let port_free ports ~modulus ~arrays array indices ~cycle ~dir =
  let ai = List.assoc array arrays in
  ignore ai;
  let bank = match access_bank ~arrays array indices with Some b -> b | None -> 0 in
  let c = match modulus with Some ii -> cycle mod ii | None -> cycle in
  let key = (array, bank, c, dir) in
  match Hashtbl.find_opt ports.pu key with Some n -> n < 1 | None -> true

let port_take ports ~modulus ~arrays array indices ~cycle ~dir =
  let bank = match access_bank ~arrays array indices with Some b -> b | None -> 0 in
  let c = match modulus with Some ii -> cycle mod ii | None -> cycle in
  let key = (array, bank, c, dir) in
  let n = Option.value ~default:0 (Hashtbl.find_opt ports.pu key) in
  Hashtbl.replace ports.pu key (n + 1)

(* Schedule one straight-line segment.  Returns the segment's
   completion latency.  [modulus] = Some II for pipelined bodies. *)
let schedule_segment ~arrays ~modulus ~outer_ready ?(extra = Hashtbl.create 0) nodes deps =
  let ready_tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let ready name =
    match Hashtbl.find_opt ready_tbl name with
    | Some c -> c
    | None -> outer_ready name
  in
  let ports = { pu = Hashtbl.create 32 } in
  let horizon = 4096 in
  let place node =
    let data_ready =
      match node.n_kind with
      | N_load { indices; _ } -> List.fold_left (fun acc e -> max acc (expr_ready ~ready e)) 0 indices
      | N_temp { value; _ } -> expr_ready ~ready value
      | N_store { indices; value; _ } ->
        List.fold_left (fun acc e -> max acc (expr_ready ~ready e)) (expr_ready ~ready value) indices
    in
    let dep_ready =
      List.fold_left
        (fun acc d ->
          if d.dep_to == node && d.dep_distance = 0 then
            max acc (d.dep_from.n_cycle + d.dep_min)
          else acc)
        0 deps
    in
    let earliest = max data_ready dep_ready in
    let earliest =
      max earliest (Option.value ~default:0 (Hashtbl.find_opt extra node.n_id))
    in
    let cycle =
      match node.n_kind with
      | N_temp _ -> earliest
      | N_load { array; indices; _ } ->
        let rec find c tries =
          if tries > horizon then fail "scheduling horizon exceeded"
          else if port_free ports ~modulus ~arrays array indices ~cycle:c ~dir:`R then c
          else find (c + 1) (tries + 1)
        in
        let c = find earliest 0 in
        port_take ports ~modulus ~arrays array indices ~cycle:c ~dir:`R;
        c
      | N_store { array; indices; _ } ->
        let rec find c tries =
          if tries > horizon then fail "scheduling horizon exceeded"
          else if port_free ports ~modulus ~arrays array indices ~cycle:c ~dir:`W then c
          else find (c + 1) (tries + 1)
        in
        let c = find earliest 0 in
        port_take ports ~modulus ~arrays array indices ~cycle:c ~dir:`W;
        c
    in
    node.n_cycle <- cycle;
    (match node.n_kind with
    | N_load { temp; lat; _ } -> Hashtbl.replace ready_tbl temp (cycle + lat)
    | N_temp { temp; lat; _ } -> Hashtbl.replace ready_tbl temp (cycle + lat)
    | N_store _ -> ())
  in
  List.iter place nodes;
  (* Lifetime compaction (non-pipelined blocks): loads placed ASAP can
     sit hundreds of cycles before their single consumer (e.g. a
     register-file drain serialized on one output port), which would
     cost huge alignment-register chains.  Re-place each load as late
     as its consumers and dependence edges allow, if its port is free
     there — the standard register-pressure step of an HLS scheduler. *)
  (match modulus with
  | Some _ -> ()
  | None ->
    let rec expr_vars acc = function
      | Int _ -> acc
      | Var n -> n :: acc
      | Load _ -> acc
      | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
    in
    let node_reads n =
      match n.n_kind with
      | N_load { indices; _ } -> List.fold_left expr_vars [] indices
      | N_temp { value; _ } -> expr_vars [] value
      | N_store { indices; value; _ } ->
        List.fold_left expr_vars (expr_vars [] value) indices
    in
    let consumer_bound temp =
      List.fold_left
        (fun acc n -> if List.mem temp (node_reads n) then min acc n.n_cycle else acc)
        max_int nodes
    in
    let release array indices ~cycle ~dir =
      let bank = match access_bank ~arrays array indices with Some b -> b | None -> 0 in
      let key = (array, bank, cycle, dir) in
      let n = Option.value ~default:1 (Hashtbl.find_opt ports.pu key) in
      Hashtbl.replace ports.pu key (n - 1)
    in
    List.iter
      (fun node ->
        match node.n_kind with
        | N_load { array; indices; temp; lat } ->
          let use_bound = consumer_bound temp in
          let dep_bound =
            List.fold_left
              (fun acc d ->
                if d.dep_from == node && d.dep_distance = 0 then
                  min acc (d.dep_to.n_cycle - d.dep_min)
                else acc)
              max_int deps
          in
          let target = min (use_bound - lat) dep_bound in
          if target > node.n_cycle && target < max_int then begin
            (* walk down from the target to the first free port slot
               that is still later than the current placement *)
            let rec try_at c =
              if c <= node.n_cycle then ()
              else if port_free ports ~modulus ~arrays array indices ~cycle:c ~dir:`R
              then begin
                release array indices ~cycle:node.n_cycle ~dir:`R;
                port_take ports ~modulus ~arrays array indices ~cycle:c ~dir:`R;
                node.n_cycle <- c;
                Hashtbl.replace ready_tbl temp (c + lat)
              end
              else try_at (c - 1)
            in
            try_at target
          end
        | N_temp _ | N_store _ -> ())
      (List.rev nodes));
  (* Cross-iteration constraint check (pipelined only). *)
  let ok =
    match modulus with
    | None -> true
    | Some ii ->
      List.for_all
        (fun d ->
          if d.dep_distance = 0 then true
          else d.dep_to.n_cycle + (ii * d.dep_distance) >= d.dep_from.n_cycle + d.dep_min)
        deps
  in
  let latency =
    List.fold_left
      (fun acc n ->
        match n.n_kind with
        | N_load { lat; _ } -> max acc (n.n_cycle + lat)
        | N_temp { lat; _ } -> max acc (n.n_cycle + lat)
        | N_store _ -> max acc (n.n_cycle + 1))
      0 nodes
  in
  (ok, latency)

(* Resource-constrained minimum II. *)
let res_mii ~arrays nodes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let bump array indices dir =
        let bank = match access_bank ~arrays array indices with Some b -> b | None -> 0 in
        let key = (array, bank, dir) in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      in
      match n.n_kind with
      | N_load { array; indices; _ } -> bump array indices `R
      | N_store { array; indices; _ } -> bump array indices `W
      | N_temp _ -> ())
    nodes;
  Hashtbl.fold (fun _ n acc -> max acc n) counts 1

(* Iterative modulo scheduling: raise II until a legal schedule is
   found (the expensive search that dominates HLS compile time). *)
let modulo_schedule ~arrays ~outer_ready ~target_ii nodes deps =
  let mii = max target_ii (res_mii ~arrays nodes) in
  let rec attempt ii =
    if ii > mii + 64 then fail "no feasible II found";
    (* Iterative repair: re-place with raised lower bounds on the
       sinks of violated cross-iteration edges before giving up on
       this II. *)
    let extra = Hashtbl.create 8 in
    let rec repair tries =
      let ok, latency =
        schedule_segment ~arrays ~modulus:(Some ii) ~outer_ready ~extra nodes deps
      in
      if ok then Some latency
      else if tries = 0 then None
      else begin
        let progressed = ref false in
        List.iter
          (fun d ->
            if d.dep_distance > 0
               && d.dep_to.n_cycle + (ii * d.dep_distance)
                  < d.dep_from.n_cycle + d.dep_min
            then begin
              let needed = d.dep_from.n_cycle + d.dep_min - (ii * d.dep_distance) in
              let current = Option.value ~default:0 (Hashtbl.find_opt extra d.dep_to.n_id) in
              if needed > current then begin
                Hashtbl.replace extra d.dep_to.n_id needed;
                progressed := true
              end
            end)
          deps;
        if !progressed then repair (tries - 1) else None
      end
    in
    match repair 8 with Some latency -> (ii, latency) | None -> attempt (ii + 1)
  in
  attempt mii

(* ------------------------------------------------------------------ *)
(* Lowering: scheduled nodes -> HIR with explicit schedules            *)

type binding = {
  bv : Hir_ir.Ir.value;
  b_root : Hir_ir.Ir.value;  (* time root the value is anchored to *)
  b_ready : int;  (* delta from root *)
  b_stable : bool;
}

type mem_ports = {
  mp_read : Hir_ir.Ir.value option;
  mp_write : Hir_ir.Ir.value option;
  mp_latency : int;
}

type lower_ctx = {
  lc_env : (string, binding) Hashtbl.t;
  lc_mems : (string, mem_ports) Hashtbl.t;
  lc_arrays : (string * array_info) list;
  lc_config : config;
  lc_consts : (int * int, Hir_ir.Ir.value) Hashtbl.t;
  (* delay cache: (block id, value id, target delta) -> delayed value *)
  lc_delays : (int * int * int, Hir_ir.Ir.value) Hashtbl.t;
  mutable lc_sched_time : float;
  mutable lc_iis : (string * int) list;
}

let block_id (b : Builder.t) = b.Builder.block.Hir_ir.Ir.b_id

let constant lc b n =
  let key = (block_id b, n) in
  match Hashtbl.find_opt lc.lc_consts key with
  | Some v -> v
  | None ->
    let v = Builder.constant b n in
    Hashtbl.replace lc.lc_consts key v;
    v

(* Align [v] (anchored at root/ready) to delta [target] of [root] by a
   shift register; stable values need no alignment. *)
let align lc b ~root v ~ready ~stable ~target =
  if stable || ready >= target then v
  else begin
    let key = (block_id b, Hir_ir.Ir.Value.id v, target) in
    match Hashtbl.find_opt lc.lc_delays key with
    | Some d -> d
    | None ->
      let d = Builder.delay b v ~by:(target - ready) ~at:(root, ready) in
      Hashtbl.replace lc.lc_delays key d;
      d
  end

let hls_binop_table =
  [
    (Add, `B "hir.add"); (Sub, `B "hir.sub"); (Mul, `B "hir.mult");
    (And, `B "hir.and"); (Or, `B "hir.or"); (Xor, `B "hir.xor");
    (Shl, `B "hir.shl"); (Shr, `B "hir.shrl");
    (Lt, `C "hir.lt"); (Le, `C "hir.le"); (Gt, `C "hir.gt");
    (Ge, `C "hir.ge"); (Eq, `C "hir.eq"); (Ne, `C "hir.ne");
  ]

(* Build the HIR value of a (load-free) expression; returns
   (value, ready delta, stable).  Operands are aligned to a common
   instant as required by HIR's combinational ops. *)
let rec lower_expr lc b ~root e =
  match e with
  | Int n -> (constant lc b n, 0, true)
  | Var name -> (
    match Hashtbl.find_opt lc.lc_env name with
    | None -> fail "use of undefined value %s" name
    | Some bind ->
      if Hir_ir.Ir.Value.equal bind.b_root root then
        (* Within its own time domain every value — the induction
           variable included — is valid at exactly one instant and
           must be realigned with shift registers for later use (the
           Figure 1 error class); stability only exempts uses from
           nested domains. *)
        (bind.bv, bind.b_ready, false)
      else if bind.b_stable then (bind.bv, 0, true)
      else
        fail "value %s crosses a loop boundary but is not held in a register" name)
  | Load _ -> fail "unnormalized load during lowering"
  | Binop (op, x, y) ->
    let vx, rx, sx = lower_expr lc b ~root x in
    let vy, ry, sy = lower_expr lc b ~root y in
    let r = max rx ry in
    let vx = align lc b ~root vx ~ready:rx ~stable:sx ~target:r in
    let vy = align lc b ~root vy ~ready:ry ~stable:sy ~target:r in
    let result =
      match List.assoc op hls_binop_table with
      | `B name -> Builder.binop name b vx vy
      | `C name -> Builder.cmp name b vx vy
    in
    (result, r, sx && sy)

let lower_node lc b ~root ~base node =
  match node.n_kind with
  | N_temp { temp; nty; value; lat } ->
    let v, r, stable = lower_expr lc b ~root value in
    (* Model pipelined operators (e.g. multi-stage multipliers) as a
       registered result. *)
    let v, r, stable =
      if lat > 0 then (align lc b ~root v ~ready:r ~stable:false ~target:(r + lat), r + lat, false)
      else (v, r, stable)
    in
    ignore nty;
    Hashtbl.replace lc.lc_env temp { bv = v; b_root = root; b_ready = r; b_stable = stable }
  | N_load { array; indices; temp; lat } ->
    let c = node.n_cycle + base in
    let ports =
      match Hashtbl.find_opt lc.lc_mems array with
      | Some p -> p
      | None -> fail "unknown array %s" array
    in
    let port = match ports.mp_read with Some p -> p | None -> fail "array %s is write-only" array in
    let idx_values =
      List.map
        (fun e ->
          let v, r, s = lower_expr lc b ~root e in
          align lc b ~root v ~ready:r ~stable:s ~target:c)
        indices
    in
    let v = Builder.mem_read b port idx_values ~latency:lat ~at:(root, c) in
    Hashtbl.replace lc.lc_env temp
      { bv = v; b_root = root; b_ready = c + lat; b_stable = false }
  | N_store { array; indices; value } ->
    let c = node.n_cycle + base in
    let ports = Hashtbl.find lc.lc_mems array in
    let port = match ports.mp_write with Some p -> p | None -> fail "array %s is read-only" array in
    let idx_values =
      List.map
        (fun e ->
          let v, r, s = lower_expr lc b ~root e in
          align lc b ~root v ~ready:r ~stable:s ~target:c)
        indices
    in
    let v, r, s = lower_expr lc b ~root value in
    let v = align lc b ~root v ~ready:r ~stable:s ~target:c in
    Builder.mem_write b v port idx_values ~at:(root, c)

(* Lower a statement block.  Returns (root, offset) of its completion
   point. *)
let rec lower_block lc b ~time stmts =
  let segments = normalize_stmts ~arrays:lc.lc_arrays ~config:lc.lc_config stmts in
  let root = ref time in
  let cursor = ref 0 in
  List.iter
    (fun segment ->
      match segment with
      | Straight nodes ->
        let deps = memory_deps ~arrays:lc.lc_arrays ~pipelined:false nodes in
        let outer_ready _name = 0 in
        let t0 = Unix.gettimeofday () in
        let _ok, latency =
          schedule_segment ~arrays:lc.lc_arrays ~modulus:None ~outer_ready nodes deps
        in
        lc.lc_sched_time <- lc.lc_sched_time +. (Unix.gettimeofday () -. t0);
        List.iter (lower_node lc b ~root:!root ~base:!cursor) nodes;
        cursor := !cursor + latency
      | Subloop f ->
        let nodes_probe = normalize_stmts ~arrays:lc.lc_arrays ~config:lc.lc_config f.body in
        let has_subloops =
          List.exists (function Subloop _ -> true | Straight _ -> false) nodes_probe
        in
        let lb = constant lc b f.lb in
        let ub = constant lc b f.ub in
        let step = constant lc b 1 in
        let tf =
          Builder.for_loop b ~iv_width:f.var_ty.width ~iv_hint:f.var ~lb ~ub ~step
            ~at:(!root, !cursor + 1)
            (fun body_b ~iv ~ti ->
              Hashtbl.replace lc.lc_env f.var
                { bv = iv; b_root = ti; b_ready = 0; b_stable = true };
              match f.pipeline with
              | Some target_ii when not has_subloops ->
                let nodes =
                  List.concat_map
                    (function Straight ns -> ns | Subloop _ -> [])
                    nodes_probe
                in
                let deps =
                  memory_deps ~arrays:lc.lc_arrays ~pipelined:true
                    ~dep_free:f.dep_free nodes
                in
                let t0 = Unix.gettimeofday () in
                let ii, latency =
                  modulo_schedule ~arrays:lc.lc_arrays
                    ~outer_ready:(fun _ -> 0)
                    ~target_ii nodes deps
                in
                lc.lc_sched_time <- lc.lc_sched_time +. (Unix.gettimeofday () -. t0);
                lc.lc_iis <- (f.var, ii) :: lc.lc_iis;
                List.iter (lower_node lc body_b ~root:ti ~base:0) nodes;
                Builder.yield body_b ~at:(ti, ii);
                (* Record drain for the epilogue of the enclosing
                   block: handled by the caller through latency. *)
                ignore latency
              | _ ->
                let end_root, end_off = lower_block lc body_b ~time:ti f.body in
                Builder.yield body_b ~at:(end_root, max 1 end_off))
        in
        (* Conservative drain after a pipelined loop: stores of the
           last iteration may still be in flight. *)
        let drain =
          match f.pipeline with
          | Some _ -> 4  (* small constant: latency - II is bounded by
                            the pipeline depth of our operator set *)
          | None -> 0
        in
        root := tf;
        cursor := drain)
    segments;
  (!root, !cursor)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

type compiled = {
  hls_module : Hir_ir.Ir.op;
  hls_func : Hir_ir.Ir.op;
  phase_seconds : (string * float) list;
  loop_iis : (string * int) list;
}

let compile ?(config = default_config) (f : func) =
  Hir_dialect.Ops.register ();
  let timer = Unix.gettimeofday in
  (* Phase 1: frontend. *)
  let t0 = timer () in
  let f = unroll_func f in
  let f = ref f in
  for _ = 1 to config.fold_iterations do
    f := fold_func !f
  done;
  let f = !f in
  let t_frontend = timer () -. t0 in
  (* Phase 2: allocation. *)
  let t0 = timer () in
  let arrays =
    List.filter_map
      (function
        | P_array (dir, decl) ->
          Some (decl.arr_name, allocate_array ~local:false ~dir:(Some dir) decl)
        | P_scalar _ -> None)
      f.params
    @ List.map
        (fun decl -> (decl.arr_name, allocate_array ~local:true ~dir:None decl))
        f.locals
  in
  let t_alloc = timer () -. t0 in
  (* Phases 3-5 happen during HIR construction; scheduling time is
     accounted separately inside the lowering context. *)
  let t0 = timer () in
  let m = Builder.create_module () in
  let lc =
    {
      lc_env = Hashtbl.create 64;
      lc_mems = Hashtbl.create 16;
      lc_arrays = arrays;
      lc_config = config;
      lc_consts = Hashtbl.create 16;
      lc_delays = Hashtbl.create 64;
      lc_sched_time = 0.;
      lc_iis = [];
    }
  in
  let args =
    List.map
      (fun p ->
        match p with
        | P_scalar (name, t) -> Builder.arg name (Typ.Int t.width)
        | P_array (dir, decl) ->
          let ai = List.assoc decl.arr_name arrays in
          let port = match dir with In -> Types.Read | Out -> Types.Write in
          Builder.arg decl.arr_name
            (Types.memref
               ~packing:(Some ai.ai_packing)
               ~dims:decl.dims
               ~elem:(Typ.Int decl.elem_width)
               ~port ()))
      f.params
  in
  let func_op =
    Builder.func m ~name:f.fn_name ~args (fun b actuals t ->
        List.iteri
          (fun i p ->
            let actual = List.nth actuals i in
            match p with
            | P_scalar (name, _) ->
              Hashtbl.replace lc.lc_env name
                { bv = actual; b_root = t; b_ready = 0; b_stable = true }
            | P_array (dir, decl) ->
              let ports =
                match dir with
                | In -> { mp_read = Some actual; mp_write = None; mp_latency = 1 }
                | Out -> { mp_read = None; mp_write = Some actual; mp_latency = 1 }
              in
              Hashtbl.replace lc.lc_mems decl.arr_name ports)
          f.params;
        (* Local arrays. *)
        List.iter
          (fun decl ->
            let ai = List.assoc decl.arr_name arrays in
            let ports =
              Builder.alloc b ~kind:ai.ai_kind
                ~packing:ai.ai_packing ~dims:decl.dims
                ~elem:(Typ.Int decl.elem_width)
                ~ports:[ Types.Read; Types.Write ]
            in
            match ports with
            | [ r; w ] ->
              Hashtbl.replace lc.lc_mems decl.arr_name
                { mp_read = Some r; mp_write = Some w; mp_latency = ai.ai_latency }
            | _ -> fail "alloc shape")
          f.locals;
        let _ = lower_block lc b ~time:t f.body in
        Builder.return_ b [])
  in
  let t_lower_total = timer () -. t0 in
  {
    hls_module = m;
    hls_func = func_op;
    phase_seconds =
      [
        ("frontend", t_frontend);
        ("allocation", t_alloc);
        ("scheduling", lc.lc_sched_time);
        ("rtl-lowering", t_lower_total -. lc.lc_sched_time);
      ];
    loop_iis = List.rev lc.lc_iis;
  }
