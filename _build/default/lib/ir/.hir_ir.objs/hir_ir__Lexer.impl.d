lib/ir/lexer.ml: Buffer Location Printf String
