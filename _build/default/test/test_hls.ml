(* Tests for the baseline HLS compiler: its scheduling decisions (list
   scheduling, iterative modulo scheduling discovering recurrence IIs),
   and full functional equivalence of the compiled designs against the
   same software references used for the HIR kernels — through the HIR
   interpreter and through generated-Verilog RTL simulation. *)

open Hir_ir
open Hir_dialect
module Hls = Hir_hls
module Emit = Hir_codegen.Emit
module Harness = Hir_rtl.Harness

let () = Ops.register ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let verify_clean m =
  let e = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error err -> List.iter (Diagnostic.Engine.emit e) (Diagnostic.Engine.to_list err));
  Verify_schedule.verify_module e m;
  if Diagnostic.Engine.has_errors e then
    Alcotest.failf "HLS-emitted HIR must verify:\n%s" (Diagnostic.Engine.to_string e)

let compile_fresh source = Hls.Compiler.compile source

(* ------------------------------------------------------------------ *)
(* Scheduling behaviour                                                *)

let test_histogram_ii_discovery () =
  let c = compile_fresh (Hls.Suite.histogram ()) in
  verify_clean c.Hls.Compiler.hls_module;
  (* The accumulate loop was asked for II=1 but carries a BRAM
     read-modify-write recurrence: the modulo scheduler must settle on
     II=2. *)
  let ii_of var = List.assoc var c.Hls.Compiler.loop_iis in
  check_int "clear loop II" 1 (ii_of "bc");
  check_int "accumulate loop II" 2 (ii_of "p");
  check_int "writeback loop II" 1 (ii_of "bo")

let test_pipeline_iis () =
  let c = compile_fresh (Hls.Suite.transpose ()) in
  check_int "transpose inner II" 1 (List.assoc "j" c.Hls.Compiler.loop_iis);
  let c = compile_fresh (Hls.Suite.stencil ()) in
  check_int "stencil II" 1 (List.assoc "i" c.Hls.Compiler.loop_iis);
  let c = compile_fresh (Hls.Suite.gemm ()) in
  check_int "gemm load II" 1 (List.assoc "k" c.Hls.Compiler.loop_iis);
  check_int "gemm compute II" 1 (List.assoc "kk" c.Hls.Compiler.loop_iis);
  let c = compile_fresh (Hls.Suite.convolution ()) in
  check_int "convolution II" 1 (List.assoc "p" c.Hls.Compiler.loop_iis)

let test_phase_report () =
  let c = compile_fresh (Hls.Suite.gemm ()) in
  let phases = List.map fst c.Hls.Compiler.phase_seconds in
  check_bool "has scheduling phase" true (List.mem "scheduling" phases);
  check_bool "times non-negative" true
    (List.for_all (fun (_, t) -> t >= 0.) c.Hls.Compiler.phase_seconds)

let test_manual_opt_widths () =
  (* The Table 4 manual-optimization variant narrows the loop
     variables in the source. *)
  let c = compile_fresh (Hls.Suite.transpose ~iv_width:5 ()) in
  verify_clean c.Hls.Compiler.hls_module;
  let fors = Ir.Walk.find_all c.Hls.Compiler.hls_func "hir.for" in
  List.iter
    (fun loop ->
      match Ir.Value.typ (Ops.loop_induction_var loop) with
      | Typ.Int w -> check_int "declared iv width" 5 w
      | _ -> Alcotest.fail "integer iv expected")
    fors

(* ------------------------------------------------------------------ *)
(* Functional equivalence                                              *)

let interp_outputs source inputs ~out_arg =
  let c = compile_fresh source in
  verify_clean c.Hls.Compiler.hls_module;
  let result, tensors =
    Interp.run ~module_op:c.Hls.Compiler.hls_module ~func:c.Hls.Compiler.hls_func inputs
  in
  (result, Interp.tensor_snapshot (tensors out_arg) ~cycle:max_int)

let compare_expected ~name ?(valid = fun _ -> true) expected actual =
  Array.iteri
    (fun i e ->
      if valid i then
        match actual.(i) with
        | Some got when Bitvec.equal got e -> ()
        | Some got ->
          Alcotest.failf "%s[%d]: expected %s got %s" name i (Bitvec.to_string e)
            (Bitvec.to_string got)
        | None -> Alcotest.failf "%s[%d] never written" name i)
    expected

let rtl_outputs source inputs ~out_arg =
  let c = compile_fresh source in
  (* Cycle budget from the interpreter. *)
  let interp_result, _ =
    Interp.run ~module_op:c.Hls.Compiler.hls_module ~func:c.Hls.Compiler.hls_func
      (List.map
         (function
           | Harness.Scalar v -> Interp.Scalar v
           | Harness.Tensor a -> Interp.Tensor a
           | Harness.Out_tensor -> Interp.Out_tensor)
         inputs)
  in
  let c = compile_fresh source in
  let emitted =
    Emit.compile ~module_op:c.Hls.Compiler.hls_module ~top:c.Hls.Compiler.hls_func ()
  in
  let result, agents =
    Harness.run ~emitted ~inputs ~cycles:interp_result.Interp.cycles ()
  in
  (match result.Harness.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "UB assertion at cycle %d: %s" f.Hir_rtl.Sim.at_cycle
      f.Hir_rtl.Sim.message);
  Harness.nth_tensor agents out_arg

let test_transpose_interp () =
  let input = Hir_kernels.Transpose.make_input ~seed:41 in
  let _, out =
    interp_outputs (Hls.Suite.transpose ()) [ Interp.Tensor input; Interp.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"transpose" (Hir_kernels.Transpose.reference input) out

let test_stencil_interp () =
  let input = Hir_kernels.Stencil1d.make_input ~seed:42 in
  let lo, hi = Hir_kernels.Stencil1d.valid_range in
  let _, out =
    interp_outputs (Hls.Suite.stencil ()) [ Interp.Tensor input; Interp.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"stencil" ~valid:(fun i -> i >= lo && i <= hi)
    (Hir_kernels.Stencil1d.reference input) out

let test_histogram_interp () =
  let input = Hir_kernels.Histogram.make_input ~seed:43 in
  let _, out =
    interp_outputs (Hls.Suite.histogram ()) [ Interp.Tensor input; Interp.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"histogram" (Hir_kernels.Histogram.reference input) out

let test_gemm_interp () =
  let a, b = Hir_kernels.Gemm.make_inputs ~seed:44 in
  let _, out =
    interp_outputs (Hls.Suite.gemm ())
      [ Interp.Tensor a; Interp.Tensor b; Interp.Out_tensor ]
      ~out_arg:2
  in
  compare_expected ~name:"gemm" (Hir_kernels.Gemm.reference a b) out

let test_convolution_interp () =
  let input = Hir_kernels.Convolution.make_input ~seed:45 in
  let _, out =
    interp_outputs (Hls.Suite.convolution ())
      [ Interp.Tensor input; Interp.Out_tensor ]
      ~out_arg:1
  in
  compare_expected ~name:"convolution" ~valid:Hir_kernels.Convolution.is_valid_index
    (Hir_kernels.Convolution.reference input) out

let test_transpose_rtl () =
  let input = Hir_kernels.Transpose.make_input ~seed:51 in
  let out =
    rtl_outputs (Hls.Suite.transpose ()) [ Harness.Tensor input; Harness.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"transpose-rtl" (Hir_kernels.Transpose.reference input) out

let test_stencil_rtl () =
  let input = Hir_kernels.Stencil1d.make_input ~seed:52 in
  let lo, hi = Hir_kernels.Stencil1d.valid_range in
  let out =
    rtl_outputs (Hls.Suite.stencil ()) [ Harness.Tensor input; Harness.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"stencil-rtl" ~valid:(fun i -> i >= lo && i <= hi)
    (Hir_kernels.Stencil1d.reference input) out

let test_histogram_rtl () =
  let input = Hir_kernels.Histogram.make_input ~seed:53 in
  let out =
    rtl_outputs (Hls.Suite.histogram ()) [ Harness.Tensor input; Harness.Out_tensor ] ~out_arg:1
  in
  compare_expected ~name:"histogram-rtl" (Hir_kernels.Histogram.reference input) out

let test_gemm_rtl () =
  let a, b = Hir_kernels.Gemm.make_inputs ~seed:54 in
  let out =
    rtl_outputs (Hls.Suite.gemm ())
      [ Harness.Tensor a; Harness.Tensor b; Harness.Out_tensor ]
      ~out_arg:2
  in
  compare_expected ~name:"gemm-rtl" (Hir_kernels.Gemm.reference a b) out

let test_convolution_rtl () =
  let input = Hir_kernels.Convolution.make_input ~seed:55 in
  let out =
    rtl_outputs (Hls.Suite.convolution ())
      [ Harness.Tensor input; Harness.Out_tensor ]
      ~out_arg:1
  in
  compare_expected ~name:"convolution-rtl" ~valid:Hir_kernels.Convolution.is_valid_index
    (Hir_kernels.Convolution.reference input) out

(* ------------------------------------------------------------------ *)
(* SDC cross-validation                                                *)

(* The exact recurrence-MII from the difference-constraint solver must
   match the II the iterative modulo scheduler settles on (no resource
   bottlenecks exist in these bodies beyond the recurrences). *)
let test_sdc_recmii_matches () =
  let case ~source ~loop_var ~expect =
    match Hls.Sdc.analyze_pipelined_loop ~func:source ~loop_var with
    | Some (mii, _) -> check_int (Printf.sprintf "RecMII of %s" loop_var) expect mii
    | None -> Alcotest.failf "SDC found no feasible II for %s" loop_var
  in
  case ~source:(Hls.Suite.histogram ()) ~loop_var:"p" ~expect:2;
  case ~source:(Hls.Suite.stencil ()) ~loop_var:"i" ~expect:1;
  case ~source:(Hls.Suite.transpose ()) ~loop_var:"j" ~expect:1;
  case ~source:(Hls.Suite.convolution ()) ~loop_var:"p" ~expect:1

let test_sdc_dependence_pragma_matters () =
  (* Without the DEPENDENCE inter false pragma on the line buffers, the
     conservative loop-carried ordering constraints stretch the
     pipeline (deeper schedule, more alignment registers) even though
     the recurrence-MII stays 1 — exactly what the pragma buys in
     Vivado too. *)
  let conv = Hls.Suite.convolution () in
  let strip_pragma =
    let rec go = function
      | Hls.Ast.For f ->
        Hls.Ast.For { f with dep_free = []; body = List.map go f.body }
      | s -> s
    in
    { conv with Hls.Ast.body = List.map go conv.Hls.Ast.body }
  in
  match
    ( Hls.Sdc.analyze_pipelined_loop ~func:conv ~loop_var:"p",
      Hls.Sdc.analyze_pipelined_loop ~func:strip_pragma ~loop_var:"p" )
  with
  | Some (mii_with, len_with), Some (mii_without, len_without) ->
    check_int "II=1 with the pragma" 1 mii_with;
    check_int "MII unchanged" mii_with mii_without;
    check_bool "conservative schedule is deeper" true (len_without > len_with)
  | _ -> Alcotest.fail "SDC analysis failed"

let test_sdc_feasibility_monotone () =
  (* If II is feasible, II+1 is feasible too. *)
  let func = Hls.Suite.histogram () in
  match Hls.Sdc.analyze_pipelined_loop ~func ~loop_var:"p" with
  | Some (mii, _) ->
    check_bool "mii >= 1" true (mii >= 1);
    (* Re-run the underlying solver at mii + 1 through the public API
       by lowering expectations: analyze returns the minimum, so just
       assert the scheduler's chosen II is not below it. *)
    let c = compile_fresh (Hls.Suite.histogram ()) in
    let chosen = List.assoc "p" c.Hls.Compiler.loop_iis in
    check_bool "modulo scheduler >= exact RecMII" true (chosen >= mii);
    check_int "and equal here" mii chosen
  | None -> Alcotest.fail "no feasible II"

(* ------------------------------------------------------------------ *)
(* AST utilities                                                       *)

let test_unroll_and_fold () =
  let open Hls.Ast in
  let f =
    {
      fn_name = "t";
      params = [ P_array (Out, array ~width:32 "O" [ 4 ]) ];
      locals = [];
      body =
        [ for_ ~unroll:true "i" ~lb:0 ~ub:4 [ store "O" [ v "i" ] (v "i" *: Int 2) ] ];
    }
  in
  let f = unroll_func f in
  check_int "4 stores" 4 (List.length f.body);
  let f = fold_func f in
  (match f.body with
  | Store (_, [ Int 2 ], Int 4) :: _ ->
    Alcotest.fail "statement order unexpected"
  | Store (_, [ Int 0 ], Int 0) :: Store (_, [ Int 1 ], Int 2) :: _ -> ()
  | _ -> Alcotest.fail "unroll+fold shape unexpected");
  (* Power-of-two strength reduction. *)
  match fold_expr (v "x" *: Int 8) with
  | Binop (Shl, Var "x", Int 3) -> ()
  | _ -> Alcotest.fail "expected shift"

let () =
  Alcotest.run "hls"
    [
      ( "scheduling",
        [
          Alcotest.test_case "histogram II discovery" `Quick test_histogram_ii_discovery;
          Alcotest.test_case "pipeline IIs" `Quick test_pipeline_iis;
          Alcotest.test_case "phase report" `Quick test_phase_report;
          Alcotest.test_case "manual-opt widths" `Quick test_manual_opt_widths;
        ] );
      ( "interp equivalence",
        [
          Alcotest.test_case "transpose" `Quick test_transpose_interp;
          Alcotest.test_case "stencil" `Quick test_stencil_interp;
          Alcotest.test_case "histogram" `Quick test_histogram_interp;
          Alcotest.test_case "gemm" `Quick test_gemm_interp;
          Alcotest.test_case "convolution" `Quick test_convolution_interp;
        ] );
      ( "rtl equivalence",
        [
          Alcotest.test_case "transpose" `Quick test_transpose_rtl;
          Alcotest.test_case "stencil" `Quick test_stencil_rtl;
          Alcotest.test_case "histogram" `Quick test_histogram_rtl;
          Alcotest.test_case "gemm" `Slow test_gemm_rtl;
          Alcotest.test_case "convolution" `Quick test_convolution_rtl;
        ] );
      ( "sdc",
        [
          Alcotest.test_case "RecMII cross-validation" `Quick test_sdc_recmii_matches;
          Alcotest.test_case "dependence pragma" `Quick test_sdc_dependence_pragma_matters;
          Alcotest.test_case "scheduler respects RecMII" `Quick test_sdc_feasibility_monotone;
        ] );
      ( "ast",
        [ Alcotest.test_case "unroll + fold" `Quick test_unroll_and_fold ] );
    ]
