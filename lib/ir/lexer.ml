(* Hand-written lexer for the generic textual IR format.  Also used by
   dialect type-parser hooks, which receive the token stream to consume
   the body of types like [!hir.memref<16*16*i32, r>]. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | PERCENT of string  (* %name: an SSA value use or definition *)
  | AT of string  (* @name: a symbol reference *)
  | CARET of string  (* ^name: a block label *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LANGLE
  | RANGLE
  | COMMA
  | EQUAL
  | COLON
  | STAR
  | ARROW
  | BANG
  | DOT
  | EOF

let token_to_string = function
  | IDENT s -> "identifier '" ^ s ^ "'"
  | INT n -> "integer " ^ string_of_int n
  | STRING s -> Printf.sprintf "string %S" s
  | PERCENT s -> "%" ^ s
  | AT s -> "@" ^ s
  | CARET s -> "^" ^ s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LANGLE -> "'<'"
  | RANGLE -> "'>'"
  | COMMA -> "','"
  | EQUAL -> "'='"
  | COLON -> "':'"
  | STAR -> "'*'"
  | ARROW -> "'->'"
  | BANG -> "'!'"
  | DOT -> "'.'"
  | EOF -> "end of input"

exception Lex_error of Location.t * string

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
  mutable peeked : (token * Location.t) option;
}

let create ?(file = "<input>") src =
  { src; file; pos = 0; line = 1; bol = 0; peeked = None }

let location t =
  Location.file ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let rec skip_ws t =
  if t.pos < String.length t.src then begin
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      t.bol <- t.pos;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_ws t
    | _ -> ()
  end

let read_ident t =
  let start = t.pos in
  while t.pos < String.length t.src && is_ident_char t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  String.sub t.src start (t.pos - start)

(* An integer literal is a maximal ident-char run that must be all
   digits and fit in an OCaml [int]; anything else ([123abc], a literal
   beyond max_int) is a lex error at the token's location — never an
   uncaught [Failure] from [int_of_string]. *)
let read_int t loc ~negative =
  let digits = read_ident t in
  let text = if negative then "-" ^ digits else digits in
  if not (String.for_all (fun c -> c >= '0' && c <= '9') digits) then
    raise (Lex_error (loc, Printf.sprintf "malformed integer literal '%s'" text));
  match int_of_string_opt text with
  | Some n -> n
  | None ->
    raise (Lex_error (loc, Printf.sprintf "integer literal '%s' out of range" text))

let read_token t =
  skip_ws t;
  let loc = location t in
  if t.pos >= String.length t.src then (EOF, loc)
  else begin
    let c = t.src.[t.pos] in
    let simple tok =
      t.pos <- t.pos + 1;
      (tok, loc)
    in
    match c with
    | '(' -> simple LPAREN
    | ')' -> simple RPAREN
    | '{' -> simple LBRACE
    | '}' -> simple RBRACE
    | '[' -> simple LBRACKET
    | ']' -> simple RBRACKET
    | '<' -> simple LANGLE
    | '>' -> simple RANGLE
    | ',' -> simple COMMA
    | '=' -> simple EQUAL
    | ':' -> simple COLON
    | '*' -> simple STAR
    | '!' -> simple BANG
    | '.' -> simple DOT
    | '-' ->
      if t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '>' then begin
        t.pos <- t.pos + 2;
        (ARROW, loc)
      end
      else if t.pos + 1 < String.length t.src
              && t.src.[t.pos + 1] >= '0'
              && t.src.[t.pos + 1] <= '9'
      then begin
        t.pos <- t.pos + 1;
        (INT (read_int t loc ~negative:true), loc)
      end
      else raise (Lex_error (loc, "unexpected '-'"))
    | '%' ->
      t.pos <- t.pos + 1;
      (PERCENT (read_ident t), loc)
    | '@' ->
      t.pos <- t.pos + 1;
      (AT (read_ident t), loc)
    | '^' ->
      t.pos <- t.pos + 1;
      (CARET (read_ident t), loc)
    | '"' ->
      t.pos <- t.pos + 1;
      let buf = Buffer.create 16 in
      (* Newlines inside the literal (raw or escaped) must advance the
         line counter, or every location after a multi-line string
         points at the wrong line. *)
      let saw_newline () =
        t.line <- t.line + 1;
        t.bol <- t.pos
      in
      let rec go () =
        if t.pos >= String.length t.src then
          raise (Lex_error (loc, "unterminated string literal"))
        else
          match t.src.[t.pos] with
          | '"' -> t.pos <- t.pos + 1
          | '\\' when t.pos + 1 < String.length t.src ->
            let c = t.src.[t.pos + 1] in
            (match c with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Buffer.add_char buf c);
            t.pos <- t.pos + 2;
            if c = '\n' then saw_newline ();
            go ()
          | c ->
            Buffer.add_char buf c;
            t.pos <- t.pos + 1;
            if c = '\n' then saw_newline ();
            go ()
      in
      go ();
      (STRING (Buffer.contents buf), loc)
    | '0' .. '9' -> (INT (read_int t loc ~negative:false), loc)
    | c when is_ident_char c -> (IDENT (read_ident t), loc)
    | c -> raise (Lex_error (loc, Printf.sprintf "unexpected character %C" c))
  end

let next t =
  match t.peeked with
  | Some tok ->
    t.peeked <- None;
    tok
  | None -> read_token t

let peek t =
  match t.peeked with
  | Some tok -> tok
  | None ->
    let tok = read_token t in
    t.peeked <- Some tok;
    tok

let peek_token t = fst (peek t)

let expect t tok =
  let got, loc = next t in
  if got <> tok then
    raise
      (Lex_error
         ( loc,
           Printf.sprintf "expected %s but found %s" (token_to_string tok)
             (token_to_string got) ))

let accept t tok = if peek_token t = tok then (ignore (next t); true) else false

let expect_int t =
  match next t with
  | INT n, _ -> n
  | got, loc ->
    raise (Lex_error (loc, "expected integer, found " ^ token_to_string got))

let expect_ident t =
  match next t with
  | IDENT s, _ -> s
  | got, loc ->
    raise (Lex_error (loc, "expected identifier, found " ^ token_to_string got))
