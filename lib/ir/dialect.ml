(* Dialect and operation registry.

   Dialects register their operations with a verifier and trait set;
   generic infrastructure (the verifier, the pass manager, Table 2 of
   the paper) consults the registry rather than hard-coding op names. *)

type trait =
  | Terminator  (** Op terminates its enclosing block (yield, return). *)
  | Pure  (** No side effects; eligible for CSE and DCE. *)
  | Commutative
  | Scheduled  (** Op carries an explicit (time, offset) schedule. *)

(* Result of an op's fold hook: either an existing value the op's
   single result should be replaced with, or a constant attribute the
   driver materializes through the dialect's constant materializer. *)
type fold_result =
  | Fold_value of Ir.value
  | Fold_attr of Attribute.t

type op_def = {
  od_name : string;  (* fully qualified, e.g. "hir.for" *)
  od_summary : string;
  od_traits : trait list;
  od_verify : Ir.op -> Diagnostic.Engine.t -> unit;
  od_fold : (Ir.op -> fold_result option) option;
}

type dialect = {
  d_name : string;
  d_description : string;
}

let dialects : (string, dialect) Hashtbl.t = Hashtbl.create 8
let op_defs : (string, op_def) Hashtbl.t = Hashtbl.create 64

let no_verify (_ : Ir.op) (_ : Diagnostic.Engine.t) = ()

let register_dialect ~name ~description =
  Hashtbl.replace dialects name { d_name = name; d_description = description }

let register_op ?(summary = "") ?(traits = []) ?(verify = no_verify) ?fold name =
  Hashtbl.replace op_defs name
    {
      od_name = name;
      od_summary = summary;
      od_traits = traits;
      od_verify = verify;
      od_fold = fold;
    }

let lookup_op name = Hashtbl.find_opt op_defs name

let op_fold name = Option.bind (lookup_op name) (fun def -> def.od_fold)

(* Per-dialect constant materializer: builds a detached constant op
   producing [attr] with the requested result type (the dialect may
   substitute its own constant type).  Used by the greedy driver to
   turn [Fold_attr] results into IR. *)
let materializers : (string, Attribute.t -> Typ.t -> Location.t -> Ir.op option) Hashtbl.t =
  Hashtbl.create 8

let register_constant_materializer ~dialect f = Hashtbl.replace materializers dialect f

let materialize_constant ~dialect attr typ loc =
  match Hashtbl.find_opt materializers dialect with
  | Some f -> f attr typ loc
  | None -> None

let op_has_trait name trait =
  match lookup_op name with
  | Some def -> List.mem trait def.od_traits
  | None -> false

let registered_ops () =
  Hashtbl.fold (fun _ def acc -> def :: acc) op_defs []
  |> List.sort (fun a b -> String.compare a.od_name b.od_name)

let registered_dialects () =
  Hashtbl.fold (fun _ d acc -> d :: acc) dialects []
  |> List.sort (fun a b -> String.compare a.d_name b.d_name)

let dialect_of_op_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> ""
