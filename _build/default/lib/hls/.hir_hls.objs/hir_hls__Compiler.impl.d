lib/hls/compiler.ml: Ast Format Hashtbl Hir_dialect Hir_ir List Option Printf Unix
