(* HIR dialect types (paper Section 4.3, 4.4):

   - [!hir.const]  compile-time integer constant
   - [!hir.time]   a time variable (an event in the schedule)
   - [!hir.memref<d0*d1*...*elem, packing=[..], port>]
        a port onto a multidimensional tensor; each dimension is packed
        (within one buffer) or distributed (across banks). *)

type port = Read | Write | Read_write

let port_to_string = function
  | Read -> "r"
  | Write -> "w"
  | Read_write -> "rw"

type dim = { size : int; packed : bool }

type memref_info = {
  dims : dim list;  (* leftmost dim first, as printed *)
  elem : Hir_ir.Typ.t;
  port : port;
}

type Hir_ir.Typ.t +=
  | Const
  | Time
  | Memref of memref_info

(* ------------------------------------------------------------------ *)
(* Memref structure queries                                            *)

let memref ?(packing = None) ~dims ~elem ~port () =
  let n = List.length dims in
  let packed_set =
    match packing with
    | None -> List.init n (fun _ -> true)
    | Some packed_dims -> List.init n (fun i -> List.mem i packed_dims)
  in
  Memref
    {
      dims = List.map2 (fun size packed -> { size; packed }) dims packed_set;
      elem;
      port;
    }

let memref_info = function
  | Memref i -> i
  | t -> failwith ("not a memref type: " ^ Hir_ir.Typ.to_string t)

let num_elements info =
  List.fold_left (fun acc d -> acc * d.size) 1 info.dims

(* Number of independent buffers (banks): product of distributed dims. *)
let num_banks info =
  List.fold_left (fun acc d -> if d.packed then acc else acc * d.size) 1 info.dims

(* Elements held in each bank: product of packed dims. *)
let bank_depth info =
  List.fold_left (fun acc d -> if d.packed then acc * d.size else acc) 1 info.dims

let is_fully_distributed info = List.for_all (fun d -> not d.packed) info.dims

(* Bank index for a full index vector: row-major over the distributed
   dims only.  Distributed dims are indexed by compile-time constants,
   so this is a static quantity at each access site. *)
let bank_of_indices info indices =
  let rec go dims indices acc =
    match (dims, indices) with
    | [], [] -> acc
    | d :: dims, i :: indices ->
      if d.packed then go dims indices acc else go dims indices ((acc * d.size) + i)
    | _ -> invalid_arg "bank_of_indices: rank mismatch"
  in
  go info.dims indices 0

(* Linear address within a bank: row-major over the packed dims only. *)
let packed_address_of_indices info indices =
  let rec go dims indices acc =
    match (dims, indices) with
    | [], [] -> acc
    | d :: dims, i :: indices ->
      if d.packed then go dims indices ((acc * d.size) + i) else go dims indices acc
    | _ -> invalid_arg "packed_address_of_indices: rank mismatch"
  in
  go info.dims indices 0

(* The layout map used by Figure 3: for each element (full index
   vector), which bank and which address within the bank. *)
let layout info =
  let rank = List.length info.dims in
  let sizes = List.map (fun d -> d.size) info.dims in
  let rec enumerate prefix = function
    | [] -> [ List.rev prefix ]
    | s :: rest ->
      List.concat_map
        (fun i -> enumerate (i :: prefix) rest)
        (List.init s (fun i -> i))
  in
  ignore rank;
  List.map
    (fun idx -> (idx, bank_of_indices info idx, packed_address_of_indices info idx))
    (enumerate [] sizes)

let same_tensor_shape a b =
  List.length a.dims = List.length b.dims
  && List.for_all2 (fun x y -> x.size = y.size && x.packed = y.packed) a.dims b.dims
  && Hir_ir.Typ.equal a.elem b.elem

(* ------------------------------------------------------------------ *)
(* Printing and parsing                                                *)

let pp_memref fmt info =
  Format.fprintf fmt "!hir.memref<";
  List.iter (fun d -> Format.fprintf fmt "%d*" d.size) info.dims;
  Format.fprintf fmt "%a" Hir_ir.Typ.pp info.elem;
  let all_packed = List.for_all (fun d -> d.packed) info.dims in
  if not all_packed then begin
    let indices =
      List.mapi (fun i d -> (i, d)) info.dims
      |> List.filter (fun (_, d) -> d.packed)
      |> List.map (fun (i, _) -> string_of_int i)
    in
    Format.fprintf fmt ", packing=[%s]" (String.concat "," indices)
  end;
  Format.fprintf fmt ", %s>" (port_to_string info.port)

let print_type fmt = function
  | Const ->
    Format.pp_print_string fmt "!hir.const";
    true
  | Time ->
    Format.pp_print_string fmt "!hir.time";
    true
  | Memref info ->
    pp_memref fmt info;
    true
  | _ -> false

let parse_type mnemonic lex =
  let module L = Hir_ir.Lexer in
  match mnemonic with
  | "const" -> Const
  | "time" -> Time
  | "memref" ->
    L.expect lex L.LANGLE;
    (* dims: INT STAR ... then element type.  Sizes must be positive and
       the tensor bounded: a parsed [!hir.memref<-3*i32>] or a
       billion-element dimension would otherwise crash or hang bank
       layout and codegen far from any source location. *)
    let max_elements = 1 lsl 22 in
    let rec dims acc =
      match L.peek lex with
      | L.INT n, dim_loc ->
        ignore (L.next lex);
        if n < 1 then
          raise (L.Lex_error (dim_loc, "memref dimension size must be positive"));
        L.expect lex L.STAR;
        let acc = n :: acc in
        (* Each accepted size is <= max_elements, so the running product
           of at most 22-bit factors cannot overflow before the check. *)
        if n > max_elements || List.fold_left ( * ) 1 acc > max_elements then
          raise
            (L.Lex_error
               ( dim_loc,
                 Printf.sprintf "memref has more than %d elements" max_elements ));
        dims acc
      | _ -> List.rev acc
    in
    let sizes = dims [] in
    let elem = Hir_ir.Type_parser.parse lex in
    let packing = ref None in
    let port = ref Read_write in
    let parse_tail () =
      while L.accept lex L.COMMA do
        match L.next lex with
        | L.IDENT "packing", _ ->
          L.expect lex L.EQUAL;
          L.expect lex L.LBRACKET;
          let rec ints acc =
            match L.peek_token lex with
            | L.INT n ->
              ignore (L.next lex);
              ignore (L.accept lex L.COMMA);
              ints (n :: acc)
            | _ ->
              L.expect lex L.RBRACKET;
              List.rev acc
          in
          packing := Some (ints [])
        | L.IDENT "r", _ -> port := Read
        | L.IDENT "w", _ -> port := Write
        | L.IDENT "rw", _ -> port := Read_write
        | got, loc ->
          raise (L.Lex_error (loc, "unexpected memref modifier " ^ L.token_to_string got))
      done;
      L.expect lex L.RANGLE
    in
    parse_tail ();
    let t = memref ~packing:!packing ~dims:sizes ~elem ~port:!port () in
    (* Every bank becomes its own storage block in codegen, so a parsed
       type whose packing leaves millions of dims distributed must be
       rejected here, with the other textual bounds. *)
    let max_banks = 4096 in
    (match t with
    | Memref info when num_banks info > max_banks ->
      raise
        (L.Lex_error
           ( Hir_ir.Location.unknown,
             Printf.sprintf "memref has more than %d banks" max_banks ))
    | _ -> ());
    t
  | m ->
    raise
      (L.Lex_error (Hir_ir.Location.unknown, "unknown hir type mnemonic '" ^ m ^ "'"))

let bit_width_hook = function
  | Const -> Some 32  (* materialized constants default to 32 bits *)
  | Time -> Some 1  (* a time variable is a 1-bit pulse in hardware *)
  | Memref _ -> None
  | _ -> None

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Hir_ir.Typ.register_printer print_type;
    Hir_ir.Type_parser.register_dialect ~dialect:"hir" parse_type;
    Hir_ir.Typ.register_width_hook bit_width_hook
  end
