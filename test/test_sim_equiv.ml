(* Equivalence of the three RTL simulation engines: the opcode engine
   (the default, across partition counts and batched forks) and the
   closure-compiled engine must produce bit-identical peek traces and
   assertion-failure lists to the [Sim.Reference] tree walker — the
   executable specification of the Verilog width semantics.

   Two layers:
   - a qcheck property over randomly generated flat netlists (every
     operator class, widths straddling the 63-bit unboxed fast path,
     registers, memories with out-of-range writes, assertions),
     driven for many cycles with per-stimulus random input streams
     through every engine × partitions {1,2,4} × batch {1,4};
   - lockstep runs of real compiled kernels (via the harness) on all
     engines, plus a batched multi-stimulus run, comparing scalar
     outputs, tensors, and failures. *)

open Hir_dialect
module V = Hir_verilog.Ast
module Flatten = Hir_rtl.Flatten
module Sim = Hir_rtl.Sim
module Harness = Hir_rtl.Harness
module Emit = Hir_codegen.Emit

let () = Ops.register ()

(* ------------------------------------------------------------------ *)
(* Random netlist generation                                           *)

(* Widths chosen to straddle the unboxed boundary. *)
let width_pool = [| 1; 2; 3; 5; 8; 16; 17; 31; 32; 33; 48; 62; 63; 64; 65; 80; 100 |]

let pick st arr = arr.(Random.State.int st (Array.length arr))
let pick_list st l = List.nth l (Random.State.int st (List.length l))

let random_bv st w =
  let rec go acc remaining =
    if remaining <= 0 then acc
    else
      let k = min 29 remaining in
      let c = Bitvec.of_int ~width:k (Random.State.int st (1 lsl k)) in
      go (Bitvec.concat acc c) (remaining - k)
  in
  let k = min 29 w in
  go (Bitvec.of_int ~width:k (Random.State.int st (1 lsl k))) (w - k)

(* [leaves] are all readable signals; [small] those of width <= 8, safe
   as shift amounts and memory addresses (the reference walker calls
   [Bitvec.to_int] on those and raises above 2^62, so the generator
   stays below that). *)
type genv = {
  st : Random.State.t;
  leaves : (string * int) list;
  small : (string * int) list;
  mems : string list;
}

let gen_leaf g =
  if Random.State.bool g.st && g.leaves <> [] then V.Ref (fst (pick_list g.st g.leaves))
  else V.Const (random_bv g.st (pick g.st width_pool))

let gen_amount g =
  if Random.State.bool g.st && g.small <> [] then V.Ref (fst (pick_list g.st g.small))
  else V.Const (Bitvec.of_int ~width:7 (Random.State.int g.st 80))

let rec gen_expr g ~depth =
  if depth = 0 || Random.State.int g.st 4 = 0 then gen_leaf g
  else
    let sub () = gen_expr g ~depth:(depth - 1) in
    match Random.State.int g.st 10 with
    | 0 -> V.Unop (pick g.st [| V.Not; V.Red_or; V.Red_and |], sub ())
    | 1 | 2 ->
      V.Binop
        (pick g.st [| V.Add; V.Sub; V.Mul; V.And; V.Or; V.Xor |], sub (), sub ())
    | 3 ->
      V.Binop (pick g.st [| V.Lt; V.Le; V.Gt; V.Ge; V.Eq; V.Ne |], sub (), sub ())
    | 4 -> V.Binop (pick g.st [| V.Log_and; V.Log_or |], sub (), sub ())
    | 5 -> V.Binop ((if Random.State.bool g.st then V.Shl else V.Shr), sub (), gen_amount g)
    | 6 -> V.Ternary (sub (), sub (), sub ())
    | 7 ->
      let lo = Random.State.int g.st 8 in
      let hi = lo + Random.State.int g.st 24 in
      V.Slice (sub (), hi, lo)
    | 8 when g.mems <> [] -> V.Index (pick_list g.st g.mems, gen_amount g)
    | _ ->
      let n = 1 + Random.State.int g.st 3 in
      V.Concat (List.init n (fun _ -> gen_expr g ~depth:(depth - 1)))

(* A random flat module: input ports, a chain of assigns (acyclic by
   construction — each wire reads only previously declared signals),
   registers updated in an always block with conditionals, a memory
   written through a 4-bit address against depth 8 (so out-of-range
   writes and their failure messages are exercised), and an assertion
   that fires data-dependently. *)
let gen_design seed =
  let st = Random.State.make [| seed; 0x9e3779b9 |] in
  let n_inputs = 2 + Random.State.int st 3 in
  let inputs = List.init n_inputs (fun i -> (Printf.sprintf "in%d" i, pick st width_pool)) in
  let ports =
    { V.port_name = "clk"; dir = V.Input; width = 1 }
    :: List.map (fun (n, w) -> { V.port_name = n; dir = V.Input; width = w }) inputs
  in
  let regs = List.init (1 + Random.State.int st 3) (fun i -> (Printf.sprintf "r%d" i, pick st width_pool)) in
  let mem_width = pick st width_pool in
  let base_leaves = inputs @ regs in
  let items = ref [] in
  let emit i = items := i :: !items in
  List.iter (fun (n, w) -> emit (V.Reg_decl { name = n; width = w })) regs;
  emit (V.Mem_decl { name = "m0"; width = mem_width; depth = 8; style = V.Style_bram });
  (* Assign chain; each new wire becomes a leaf for the next. *)
  let n_wires = 3 + Random.State.int st 6 in
  let leaves = ref base_leaves in
  for i = 0 to n_wires - 1 do
    let g =
      {
        st;
        leaves = !leaves;
        small = List.filter (fun (_, w) -> w <= 8) !leaves;
        mems = [ "m0" ];
      }
    in
    let w = pick st width_pool in
    let name = Printf.sprintf "w%d" i in
    emit (V.Wire_decl { name; width = w });
    emit (V.Assign { target = name; expr = gen_expr g ~depth:3 });
    leaves := (name, w) :: !leaves
  done;
  let g =
    {
      st;
      leaves = !leaves;
      small = List.filter (fun (_, w) -> w <= 8) !leaves;
      mems = [ "m0" ];
    }
  in
  let reg_stmts =
    List.concat_map
      (fun (rname, _) ->
        let s = V.Nonblocking (V.Lref rname, gen_expr g ~depth:3) in
        if Random.State.int st 3 = 0 then
          [ V.If (gen_expr g ~depth:2, [ s ], [ V.Nonblocking (V.Lref rname, gen_leaf g) ]) ]
        else [ s ])
      regs
  in
  let mem_stmt =
    V.If
      ( gen_expr g ~depth:2,
        [ V.Nonblocking (V.Lindex ("m0", gen_amount g), gen_expr g ~depth:2) ],
        [] )
  in
  let assert_stmt = V.Assert_stmt { cond = gen_expr g ~depth:2; message = "prop" } in
  emit (V.Always_ff (reg_stmts @ [ mem_stmt; assert_stmt ]));
  let m = { V.mod_name = "top"; ports; items = List.rev !items } in
  (Flatten.flatten { V.modules = [ m ]; top = "top" }, inputs)

(* ------------------------------------------------------------------ *)
(* Lockstep driving                                                    *)

let compare_failures ctx fc fr =
  if List.length fc <> List.length fr then
    QCheck.Test.fail_reportf "%s: %d compiled failures vs %d reference" ctx
      (List.length fc) (List.length fr);
  List.iter2
    (fun (a : Sim.assertion_failure) (b : Sim.assertion_failure) ->
      if a.Sim.at_cycle <> b.Sim.at_cycle || not (String.equal a.Sim.message b.Sim.message)
      then
        QCheck.Test.fail_reportf "%s: failure mismatch (%d,%s) vs (%d,%s)" ctx
          a.Sim.at_cycle a.Sim.message b.Sim.at_cycle b.Sim.message)
    fc fr

(* Every engine replays the same per-stimulus input streams and is
   compared peek-for-peek, cycle-for-cycle, against a reference-walker
   trace of the same stimulus — plus assertion/OOB failure ordering at
   the end.  Batched variants run their sims interleaved cycle by
   cycle through [Sim.fork], the same shape as [Harness.run_batch]. *)
let n_stimuli = 4
let n_cycles = 30

(* (engine, partitions, batch): partitions only affect the opcode
   engine; batch > 1 exercises [Sim.fork] on every engine. *)
let lockstep_grid : (Sim.engine * int * int) list =
  [
    (`Opcode, 1, 1);
    (`Opcode, 1, 4);
    (`Opcode, 2, 4);
    (`Opcode, 4, 4);
    (`Compiled, 1, 1);
    (`Compiled, 1, 4);
    (`Reference, 1, 4);
  ]

let lockstep_netlist (dseed, iseed) =
  let flat, inputs = gen_design dseed in
  let streams =
    Array.init n_stimuli (fun k ->
        let st = Random.State.make [| iseed; k; 0x51ed270b |] in
        Array.init n_cycles (fun _ ->
            List.map (fun (n, w) -> (n, random_bv st w)) inputs))
  in
  let names = ref [] in
  (* Run [sims] (sim [k] driven by stream [k]) interleaved, returning
     per-stimulus peek traces and failure lists. *)
  let run_sims sims =
    let n = Array.length sims in
    let traces = Array.init n (fun _ -> Array.make n_cycles []) in
    names := Sim.signal_names sims.(0);
    for cyc = 0 to n_cycles - 1 do
      Array.iteri
        (fun k sim ->
          List.iter (fun (n, v) -> Sim.set_input sim n v) streams.(k).(cyc);
          Sim.settle_only sim;
          traces.(k).(cyc) <- List.map (fun (n, _) -> (n, Sim.peek sim n)) !names;
          Sim.clock sim)
        sims
    done;
    (traces, Array.map Sim.failures sims)
  in
  let ref_traces, ref_failures =
    run_sims (Array.init n_stimuli (fun _ -> Sim.create ~engine:`Reference flat))
  in
  List.iter
    (fun (engine, partitions, batch) ->
      let proto = Sim.create ~engine ~partitions flat in
      let sims = Array.init batch (fun i -> if i = 0 then proto else Sim.fork proto) in
      let traces, failures = run_sims sims in
      let ctx k =
        Printf.sprintf "seed (%d,%d) engine %s p%d b%d stim %d" dseed iseed
          (Sim.engine_name engine) partitions batch k
      in
      for k = 0 to batch - 1 do
        for cyc = 0 to n_cycles - 1 do
          List.iter2
            (fun (name, v) (name', vr) ->
              assert (String.equal name name');
              if not (Bitvec.equal v vr) then
                QCheck.Test.fail_reportf "%s cycle %d signal %s: %s <> reference %s"
                  (ctx k) cyc name (Bitvec.to_hex_string v) (Bitvec.to_hex_string vr))
            traces.(k).(cyc) ref_traces.(k).(cyc)
        done;
        compare_failures (ctx k) failures.(k) ref_failures.(k)
      done)
    lockstep_grid;
  true

let netlist_equiv =
  QCheck.Test.make ~count:60
    ~name:"every engine x partitions x batch == reference on random netlists"
    QCheck.(pair small_nat small_nat)
    lockstep_netlist

(* ------------------------------------------------------------------ *)
(* Kernel-level lockstep through the harness                           *)

let interp_cycles ~m ~f inputs =
  let result, _ =
    Interp.run ~module_op:m ~func:f
      (List.map
         (function
           | Harness.Scalar v -> Interp.Scalar v
           | Harness.Tensor a -> Interp.Tensor a
           | Harness.Out_tensor -> Interp.Out_tensor)
         inputs)
  in
  result.Interp.cycles

let run_engine ~engine ~build inputs =
  let m, f = build () in
  let cycles = interp_cycles ~m ~f inputs in
  let m, f = build () in
  let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
  Harness.run ~engine ~emitted ~inputs ~cycles ()

let check_against_reference name ~(rr : Harness.run_result) ~ar
    ~(rc : Harness.run_result) ~ac ~out_arg =
  Alcotest.(check int) "same cycle count" rr.Harness.cycles_run rc.Harness.cycles_run;
  (match (rc.Harness.failures, rr.Harness.failures) with
  | [], [] -> ()
  | fc, fr ->
    Alcotest.(check int) "same failure count" (List.length fr) (List.length fc);
    List.iter2
      (fun (a : Sim.assertion_failure) (b : Sim.assertion_failure) ->
        Alcotest.(check int) "failure cycle" b.Sim.at_cycle a.Sim.at_cycle;
        Alcotest.(check string) "failure message" b.Sim.message a.Sim.message)
      fc fr);
  List.iter2
    (fun (n, vc) (n', vr) ->
      Alcotest.(check string) "output name" n' n;
      if not (Bitvec.equal vc vr) then
        Alcotest.failf "%s output %s: %s <> reference %s" name n
          (Bitvec.to_string vc) (Bitvec.to_string vr))
    rc.Harness.output_values rr.Harness.output_values;
  let tc = Harness.nth_tensor ac out_arg and tr = Harness.nth_tensor ar out_arg in
  Array.iteri
    (fun i vc ->
      match (vc, tr.(i)) with
      | None, None -> ()
      | Some a, Some b when Bitvec.equal a b -> ()
      | _ -> Alcotest.failf "%s tensor[%d] differs between engines" name i)
    tc

let kernel_lockstep name build inputs ~out_arg () =
  let rr, ar = run_engine ~engine:`Reference ~build inputs in
  List.iter
    (fun engine ->
      let rc, ac = run_engine ~engine ~build inputs in
      check_against_reference
        (Printf.sprintf "%s/%s" name (Sim.engine_name engine))
        ~rr ~ar ~rc ~ac ~out_arg)
    [ `Compiled; `Opcode ]

(* Batched multi-stimulus execution: four different input tensors
   through one compiled opcode program (partitioned settle, forked
   register files), each compared against an individual reference run
   of the same stimulus. *)
let batch_lockstep () =
  let build = Hir_kernels.Transpose.build in
  let stimuli =
    List.init 4 (fun k ->
        [
          Harness.Tensor (Hir_kernels.Transpose.make_input ~seed:(120 + k));
          Harness.Out_tensor;
        ])
  in
  let m, f = build () in
  let cycles = interp_cycles ~m ~f (List.hd stimuli) in
  let m, f = build () in
  let emitted = Emit.compile ~optimize:true ~module_op:m ~top:f () in
  let batched =
    Harness.run_batch ~engine:`Opcode ~partitions:2 ~emitted ~stimuli ~cycles ()
  in
  Alcotest.(check int) "batch size" (List.length stimuli) (List.length batched);
  List.iteri
    (fun k (rc, ac) ->
      let inputs = List.nth stimuli k in
      let rr, ar = Harness.run ~engine:`Reference ~emitted ~inputs ~cycles () in
      check_against_reference (Printf.sprintf "transpose/batch[%d]" k) ~rr ~ar ~rc ~ac
        ~out_arg:1)
    batched

let transpose_lockstep () =
  let input = Hir_kernels.Transpose.make_input ~seed:91 in
  kernel_lockstep "transpose" Hir_kernels.Transpose.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~out_arg:1 ()

let convolution_lockstep () =
  let input = Hir_kernels.Convolution.make_input ~seed:92 in
  kernel_lockstep "convolution" Hir_kernels.Convolution.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~out_arg:1 ()

let histogram_lockstep () =
  let input = Hir_kernels.Histogram.make_input ~seed:93 in
  kernel_lockstep "histogram" Hir_kernels.Histogram.build
    [ Harness.Tensor input; Harness.Out_tensor ]
    ~out_arg:1 ()

let () =
  Alcotest.run "sim_equiv"
    [
      ( "property",
        [ QCheck_alcotest.to_alcotest ~verbose:false netlist_equiv ] );
      ( "kernels",
        [
          Alcotest.test_case "transpose lockstep" `Quick transpose_lockstep;
          Alcotest.test_case "convolution lockstep" `Quick convolution_lockstep;
          Alcotest.test_case "histogram lockstep" `Quick histogram_lockstep;
          Alcotest.test_case "batched multi-stimulus lockstep" `Quick batch_lockstep;
        ] );
    ]
