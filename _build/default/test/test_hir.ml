(* Tests for the HIR dialect: the paper's example designs (Listings
   1-4), the schedule verifier diagnostics of Figures 1 and 2, memref
   port-conflict detection, and the Figure 3 banking layout. *)

open Hir_ir
open Hir_dialect

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let loc_at line col = Location.file ~file:"test.mlir" ~line ~col

(* ------------------------------------------------------------------ *)
(* Paper designs                                                       *)

(* Listing 1: matrix transpose with a pipelined inner loop. *)
let build_transpose () =
  let m = Builder.create_module () in
  let func =
    Builder.func m ~name:"transpose"
      ~args:
        [
          Builder.arg "Ai" (Types.memref ~dims:[ 16; 16 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "Co" (Types.memref ~dims:[ 16; 16 ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ ai; co ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c16 = Builder.constant b 16 in
          let _tf =
            Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:c16 ~step:c1
              ~at:Builder.(t @>> 1)
              (fun b ~iv:i ~ti ->
                let tf_j =
                  Builder.for_loop b ~iv_hint:"j" ~lb:c0 ~ub:c16 ~step:c1
                    ~at:Builder.(ti @>> 1)
                    (fun b ~iv:j ~ti:tj ->
                      let v = Builder.mem_read b ai [ i; j ] ~at:Builder.(tj @>> 0) in
                      let j1 = Builder.delay b j ~by:1 ~at:Builder.(tj @>> 0) in
                      Builder.mem_write b v co [ j1; i ] ~at:Builder.(tj @>> 1);
                      Builder.yield b ~at:Builder.(tj @>> 1))
                in
                Builder.yield b ~at:Builder.(tf_j @>> 1))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  (m, func)

let verify_all m =
  let engine = Diagnostic.Engine.create () in
  (match Verify.verify m with
  | Ok () -> ()
  | Error e ->
    List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
  Verify_schedule.verify_module engine m;
  engine

let test_transpose_verifies () =
  let m, func = build_transpose () in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "transpose should verify:\n%s" (Diagnostic.Engine.to_string engine);
  (* The inner loop is pipelined with II = 1. *)
  let analysis = Time_analysis.analyze func in
  let fors = Ir.Walk.find_all func "hir.for" in
  check_int "two loops" 2 (List.length fors);
  let inner = List.nth fors 1 in
  check_int "inner II" 1 (Option.get (Time_analysis.loop_ii analysis inner));
  let outer = List.nth fors 0 in
  check_bool "outer II not static" true (Time_analysis.loop_ii analysis outer = None)

(* Figure 1a: array-add with a mis-scheduled address. *)
let build_err_add () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"Array_Add"
      ~args:
        [
          Builder.arg "A" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "B" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Read ());
          Builder.arg "C" (Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port:Types.Write ());
        ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c128 = Builder.constant b 128 in
          let _tf =
            Builder.for_loop b ~iv_width:8 ~iv_hint:"i" ~lb:c0 ~ub:c128 ~step:c1
              ~at:Builder.(t @>> 1) ~loc:(loc_at 8 3)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
                let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
                let vc = Builder.add b va vb in
                (* BUG (intentional): %i is consumed one cycle late. *)
                Builder.mem_write b vc c [ i ] ~at:Builder.(ti @>> 1) ~loc:(loc_at 13 5))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  m

let test_figure1_diagnostic () =
  let m = build_err_add () in
  let engine = verify_all m in
  check_bool "has errors" true (Diagnostic.Engine.has_errors engine);
  let text = Diagnostic.Engine.to_string engine in
  check_bool "message matches paper" true
    (contains text "Schedule error: mismatched delay (0 vs 1) in address 0!");
  check_bool "note present" true (contains text "note: Prior definition here.");
  check_bool "error location" true (contains text "test.mlir:13:5: error");
  check_bool "note location points at the loop" true (contains text "test.mlir:8:3: note")

(* Figure 2a: multiply-accumulate with a pipeline imbalance.  The
   multiplier is an external module with a 3-cycle latency while the
   design delays the accumulator input by only 2. *)
let build_mac ~mult_latency ~delay_by =
  let m = Builder.create_module () in
  let mult =
    Builder.extern_func m ~name:"mult"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
      ~results:[ (Typ.i32, mult_latency) ]
  in
  let _ =
    Builder.func m ~name:"mac"
      ~args:
        [
          Builder.arg "a" Typ.i32;
          Builder.arg "b" Typ.i32;
          Builder.arg "c" Typ.i32;
        ]
      ~results:[ (Typ.i32, mult_latency) ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let ms = Builder.call b ~callee:mult [ a; bb ] ~at:Builder.(t @>> 0) in
          let m_res = List.hd ms in
          let c2 =
            Builder.delay b c ~by:delay_by ~at:Builder.(t @>> 0) ~loc:(loc_at 8 8)
          in
          let res = Builder.add b m_res c2 ~loc:(loc_at 9 10) in
          Builder.return_ b [ res ]
        | _ -> assert false)
  in
  m

let test_figure2_diagnostic () =
  let m = build_mac ~mult_latency:3 ~delay_by:2 in
  let engine = verify_all m in
  check_bool "has errors" true (Diagnostic.Engine.has_errors engine);
  let text = Diagnostic.Engine.to_string engine in
  check_bool "message matches paper" true
    (contains text "Schedule error: mismatched delay (2 vs 3) in right operand!");
  check_bool "error at the add" true (contains text "test.mlir:9:10: error");
  check_bool "note at the delay" true (contains text "test.mlir:8:8: note")

let test_mac_balanced_ok () =
  (* With matching delays the same design verifies (the paper's "two
     stage multiplier" original). *)
  let m = build_mac ~mult_latency:2 ~delay_by:2 in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "balanced MAC should verify:\n%s" (Diagnostic.Engine.to_string engine);
  let m = build_mac ~mult_latency:3 ~delay_by:3 in
  let engine = verify_all m in
  check_bool "3-stage with by=3 verifies" false (Diagnostic.Engine.has_errors engine)

(* ------------------------------------------------------------------ *)
(* More schedule-verifier behaviours                                   *)

let test_port_conflict () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"conflict"
      ~args:[ Builder.arg "A" (Types.memref ~dims:[ 8 ] ~elem:Typ.i32 ~port:Types.Read ()) ]
      (fun b args t ->
        match args with
        | [ a ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          (* Two reads on the same port in the same cycle: UB. *)
          let _ = Builder.mem_read b a [ c0 ] ~at:Builder.(t @>> 0) in
          let _ = Builder.mem_read b a [ c1 ] ~at:Builder.(t @>> 0) in
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = verify_all m in
  let text = Diagnostic.Engine.to_string engine in
  check_bool "port conflict detected" true
    (contains text "multiple accesses to the same memref port in the same cycle")

let test_banked_no_conflict () =
  (* The stencil pattern: one write port onto a fully-distributed
     2-element buffer, written twice per cycle at distinct constant
     banks — legal (Listing 2). *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"banked"
      ~args:[ Builder.arg "x" Typ.i32 ]
      (fun b args t ->
        match args with
        | [ x ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let ports =
            Builder.alloc b ~kind:Ops.Reg ~dims:[ 2 ] ~packing:[] ~elem:Typ.i32
              ~ports:[ Types.Write ]
          in
          let w = List.hd ports in
          Builder.mem_write b x w [ c0 ] ~at:Builder.(t @>> 0);
          Builder.mem_write b x w [ c1 ] ~at:Builder.(t @>> 0);
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "banked writes should verify:\n%s" (Diagnostic.Engine.to_string engine)

let test_bad_ii () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"bad_ii" ~args:[]
      (fun b _args t ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let c4 = Builder.constant b 4 in
        let _tf =
          Builder.for_loop b ~lb:c0 ~ub:c4 ~step:c1 ~at:Builder.(t @>> 1)
            (fun b ~iv:_ ~ti -> Builder.yield b ~at:Builder.(ti @>> 0))
        in
        Builder.return_ b [])
  in
  let engine = verify_all m in
  check_bool "II=0 rejected" true
    (contains (Diagnostic.Engine.to_string engine) "initiation interval")

let test_cross_task_stable_use () =
  (* A value born in the function scope may be used inside a loop
     (stable from an ancestor time domain), like %i inside the j-loop
     of the transpose. *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"stable"
      ~args:
        [ Builder.arg "O" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c4 = Builder.constant b 4 in
          let x = Builder.add b c1 c1 in
          (* x is Always (const): usable anywhere *)
          let _tf =
            Builder.for_loop b ~lb:c0 ~ub:c4 ~step:c1 ~at:Builder.(t @>> 1)
              (fun b ~iv ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                Builder.mem_write b x o [ iv ] ~at:Builder.(ti @>> 0))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "stable use should verify:\n%s" (Diagnostic.Engine.to_string engine)

let test_sibling_loop_iv_leak () =
  (* Using a loop's induction variable after the loop is a schedule
     error: it belongs to a dead time domain. *)
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"leak"
      ~args:
        [ Builder.arg "O" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Write ()) ]
      (fun b args t ->
        match args with
        | [ o ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c4 = Builder.constant b 4 in
          let leaked = ref None in
          let tf =
            Builder.for_loop b ~lb:c0 ~ub:c4 ~step:c1 ~at:Builder.(t @>> 1)
              (fun b ~iv ~ti ->
                leaked := Some iv;
                Builder.yield b ~at:Builder.(ti @>> 1))
          in
          (* SSA-dominance-wise this is ill-formed too, but the schedule
             verifier must flag the foreign time domain regardless. *)
          Builder.mem_write b (Option.get !leaked) o [ c0 ] ~at:Builder.(tf @>> 0);
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  check_bool "foreign domain flagged" true
    (contains (Diagnostic.Engine.to_string engine) "unrelated time domain")

(* ------------------------------------------------------------------ *)
(* Memref banking (Figure 3)                                           *)

let test_figure3_layout () =
  (* A : hir.memref<3*2*i32, packing=[1]> — dim 0 (size 3) distributed,
     dim 1 (size 2) packed: three banks of two elements. *)
  let t =
    Types.memref ~packing:(Some [ 1 ]) ~dims:[ 3; 2 ] ~elem:Typ.i32 ~port:Types.Read ()
  in
  let info = Types.memref_info t in
  check_int "banks" 3 (Types.num_banks info);
  check_int "bank depth" 2 (Types.bank_depth info);
  check_int "elements" 6 (Types.num_elements info);
  let layout = Types.layout info in
  check_int "layout entries" 6 (List.length layout);
  List.iter
    (fun (idx, bank, addr) ->
      match idx with
      | [ i; j ] ->
        check_int (Printf.sprintf "bank of [%d][%d]" i j) i bank;
        check_int (Printf.sprintf "addr of [%d][%d]" i j) j addr
      | _ -> Alcotest.fail "rank mismatch")
    layout

let test_memref_type_text () =
  let t =
    Types.memref ~packing:(Some [ 1 ]) ~dims:[ 3; 2 ] ~elem:Typ.i32 ~port:Types.Read ()
  in
  check_string "printed form" "!hir.memref<3*2*i32, packing=[1], r>" (Typ.to_string t);
  let plain = Types.memref ~dims:[ 16; 16 ] ~elem:Typ.i32 ~port:Types.Read_write () in
  check_string "fully packed omits packing" "!hir.memref<16*16*i32, rw>"
    (Typ.to_string plain)

(* ------------------------------------------------------------------ *)
(* unroll_for                                                          *)

let test_unroll_for_verifies () =
  let m = Builder.create_module () in
  let _ =
    Builder.func m ~name:"unrolled"
      ~args:
        [ Builder.arg "O" (Types.memref ~dims:[ 4 ] ~elem:Typ.i32 ~port:Types.Write ~packing:(Some []) ()) ]
      (fun b args t ->
        match args with
        | [ _o ] ->
          let _tf =
            Builder.unroll_for b ~lb:0 ~ub:4 ~step:1 ~at:Builder.(t @>> 0)
              (fun b ~iv:_ ~ti -> Builder.yield b ~at:Builder.(ti @>> 0))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  let engine = verify_all m in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "unroll_for should verify:\n%s" (Diagnostic.Engine.to_string engine)

let test_transpose_print_parse () =
  let m, _ = build_transpose () in
  let text1 = Printer.op_to_string m in
  let reparsed = Parser.parse_string text1 in
  let text2 = Printer.op_to_string reparsed in
  check_string "round-trip" text1 text2;
  let engine = verify_all reparsed in
  if Diagnostic.Engine.has_errors engine then
    Alcotest.failf "reparsed transpose fails verify:\n%s"
      (Diagnostic.Engine.to_string engine)

let () =
  Alcotest.run "hir"
    [
      ( "paper designs",
        [
          Alcotest.test_case "transpose verifies (Listing 1)" `Quick
            test_transpose_verifies;
          Alcotest.test_case "Figure 1 diagnostic" `Quick test_figure1_diagnostic;
          Alcotest.test_case "Figure 2 diagnostic" `Quick test_figure2_diagnostic;
          Alcotest.test_case "balanced MAC verifies" `Quick test_mac_balanced_ok;
          Alcotest.test_case "transpose text round-trip" `Quick
            test_transpose_print_parse;
        ] );
      ( "schedule verifier",
        [
          Alcotest.test_case "port conflict" `Quick test_port_conflict;
          Alcotest.test_case "banked accesses legal" `Quick test_banked_no_conflict;
          Alcotest.test_case "bad II" `Quick test_bad_ii;
          Alcotest.test_case "stable cross-scope use" `Quick test_cross_task_stable_use;
          Alcotest.test_case "iv leak across loops" `Quick test_sibling_loop_iv_leak;
        ] );
      ( "memref",
        [
          Alcotest.test_case "Figure 3 layout" `Quick test_figure3_layout;
          Alcotest.test_case "type text" `Quick test_memref_type_text;
        ] );
      ( "unroll",
        [ Alcotest.test_case "unroll_for verifies" `Quick test_unroll_for_verifies ] );
    ]
