(* Unit and property tests for the Bitvec value domain. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bv w n = Bitvec.of_int ~width:w n

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)

let test_construction () =
  check_int "width" 8 (Bitvec.width (bv 8 5));
  check_int "value" 5 (Bitvec.to_int (bv 8 5));
  check_int "zero" 0 (Bitvec.to_int (Bitvec.zero 16));
  check_int "one" 1 (Bitvec.to_int (Bitvec.one 16));
  check_int "ones 4" 15 (Bitvec.to_int (Bitvec.ones 4));
  check_int "truncation" 1 (Bitvec.to_int (bv 4 17));
  check_int "negative wraps" 255 (Bitvec.to_int (bv 8 (-1)));
  check_int "of_bool true" 1 (Bitvec.to_int (Bitvec.of_bool true))

let test_wide_values () =
  (* Widths above 64 exercise the multi-chunk paths. *)
  let v = Bitvec.shift_left (Bitvec.one 100) 80 in
  check_int "bit 80" 1 (if Bitvec.bit v 80 then 1 else 0);
  check_int "min_width" 81 (Bitvec.min_width v);
  let v2 = Bitvec.add v v in
  check_bool "shift vs add" true (Bitvec.equal v2 (Bitvec.shift_left (Bitvec.one 100) 81));
  let m = Bitvec.mul_full (Bitvec.ones 64) (Bitvec.ones 64) in
  check_int "mul_full width" 128 (Bitvec.width m);
  (* (2^64-1)^2 = 2^128 - 2^65 + 1 *)
  check_bool "mul_full bit 0" true (Bitvec.bit m 0);
  check_bool "mul_full bit 64" false (Bitvec.bit m 64);
  check_bool "mul_full bit 127" true (Bitvec.bit m 127)

let test_arith () =
  check_int "add" 12 (Bitvec.to_int (Bitvec.add (bv 8 5) (bv 8 7)));
  check_int "add wraps" 4 (Bitvec.to_int (Bitvec.add (bv 8 250) (bv 8 10)));
  check_int "sub" 3 (Bitvec.to_int (Bitvec.sub (bv 8 10) (bv 8 7)));
  check_int "sub wraps" 254 (Bitvec.to_int (Bitvec.sub (bv 8 4) (bv 8 6)));
  check_int "neg" 251 (Bitvec.to_int (Bitvec.neg (bv 8 5)));
  check_int "mul" 56 (Bitvec.to_int (Bitvec.mul (bv 8 7) (bv 8 8)));
  check_int "mul wraps" 144 (Bitvec.to_int (Bitvec.mul (bv 8 20) (bv 8 20)));
  check_int "udiv" 6 (Bitvec.to_int (Bitvec.udiv (bv 8 20) (bv 8 3)));
  check_int "urem" 2 (Bitvec.to_int (Bitvec.urem (bv 8 20) (bv 8 3)));
  check_int "div by zero = ones" 255 (Bitvec.to_int (Bitvec.udiv (bv 8 20) (bv 8 0)))

let test_signed () =
  check_int "to_signed -1" (-1) (Bitvec.to_signed_int (Bitvec.ones 8));
  check_int "to_signed 127" 127 (Bitvec.to_signed_int (bv 8 127));
  check_int "to_signed -128" (-128) (Bitvec.to_signed_int (bv 8 128));
  check_bool "compare_signed" true (Bitvec.compare_signed (bv 8 (-1)) (bv 8 1) < 0);
  check_bool "compare unsigned" true (Bitvec.compare (bv 8 (-1)) (bv 8 1) > 0)

let test_bitwise () =
  check_int "and" 0b1000 (Bitvec.to_int (Bitvec.logand (bv 4 0b1100) (bv 4 0b1010)));
  check_int "or" 0b1110 (Bitvec.to_int (Bitvec.logor (bv 4 0b1100) (bv 4 0b1010)));
  check_int "xor" 0b0110 (Bitvec.to_int (Bitvec.logxor (bv 4 0b1100) (bv 4 0b1010)));
  check_int "not" 0b0011 (Bitvec.to_int (Bitvec.lognot (bv 4 0b1100)));
  check_int "shl" 0b1000 (Bitvec.to_int (Bitvec.shift_left (bv 4 0b0001) 3));
  check_int "shrl" 0b0001 (Bitvec.to_int (Bitvec.shift_right_logical (bv 4 0b1000) 3));
  check_int "shra sign fill" 0b1111
    (Bitvec.to_int (Bitvec.shift_right_arith (bv 4 0b1000) 3));
  check_int "shra positive" 0b0001
    (Bitvec.to_int (Bitvec.shift_right_arith (bv 4 0b0100) 2))

let test_structure () =
  check_int "extract" 0b10 (Bitvec.to_int (Bitvec.extract ~hi:2 ~lo:1 (bv 4 0b0101)));
  check_int "extract full" 5 (Bitvec.to_int (Bitvec.extract ~hi:3 ~lo:0 (bv 4 5)));
  check_int "concat" 0b1011 (Bitvec.to_int (Bitvec.concat (bv 2 0b10) (bv 2 0b11)));
  check_int "concat width" 4 (Bitvec.width (Bitvec.concat (bv 2 0) (bv 2 0)));
  check_int "zext" 5 (Bitvec.to_int (Bitvec.zero_extend ~width:32 (bv 4 5)));
  check_int "sext neg" (-3) (Bitvec.to_signed_int (Bitvec.sign_extend ~width:32 (bv 4 13)));
  check_int "trunc" 1 (Bitvec.to_int (Bitvec.truncate ~width:2 (bv 8 5)));
  check_int "popcount" 3 (Bitvec.popcount (bv 8 0b10101000))

let test_strings () =
  check_string "bin" "0101" (Bitvec.to_bin_string (bv 4 5));
  check_string "hex" "ff" (Bitvec.to_hex_string (bv 8 255));
  check_string "hex padded" "0f" (Bitvec.to_hex_string (bv 8 15));
  check_string "decimal" "42" (Bitvec.to_string (bv 16 42));
  check_string "signed decimal" "-1" (Bitvec.to_signed_string (Bitvec.ones 8));
  check_int "of_bin" 5 (Bitvec.to_int (Bitvec.of_bin_string "0101"));
  check_int "of_bin width" 4 (Bitvec.width (Bitvec.of_bin_string "0101"));
  check_int "of_hex" 0xbeef (Bitvec.to_int (Bitvec.of_hex_string ~width:16 "beef"));
  (* Decimal printing of a >62-bit value goes through long division. *)
  check_string "wide decimal" "18446744073709551616"
    (Bitvec.to_string (Bitvec.shift_left (Bitvec.one 80) 64))

let test_errors () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitvec: width must be >= 1")
    (fun () -> ignore (Bitvec.zero 0));
  (try
     ignore (Bitvec.add (bv 4 1) (bv 8 1));
     Alcotest.fail "expected width mismatch"
   with Invalid_argument _ -> ());
  (try
     ignore (Bitvec.extract ~hi:8 ~lo:0 (bv 4 1));
     Alcotest.fail "expected range error"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)

let arb_width = QCheck.Gen.oneofl [ 1; 3; 8; 16; 31; 32; 33; 63; 64; 65; 100; 128 ]

let arb_bv : Bitvec.t QCheck.arbitrary =
  let gen =
    QCheck.Gen.(
      arb_width >>= fun w ->
      (* Random value: mix int64 chunks by repeated concat. *)
      let rec build remaining acc =
        if remaining <= 0 then QCheck.Gen.return acc
        else
          QCheck.Gen.(
            int64 >>= fun n ->
            let piece = Bitvec.of_int64 ~width:(min 64 remaining) n in
            build (remaining - 64) (match acc with
              | None -> Some piece
              | Some acc -> Some (Bitvec.concat piece acc)))
      in
      build w None >>= fun v -> QCheck.Gen.return (Option.get v))
  in
  QCheck.make ~print:(fun v ->
      Printf.sprintf "%d'h%s" (Bitvec.width v) (Bitvec.to_hex_string v))
    gen

let pair_same_width =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)" (Bitvec.to_hex_string a) (Bitvec.to_hex_string b))
    QCheck.Gen.(
      arb_width >>= fun w ->
      let g = QCheck.gen arb_bv in
      g >>= fun a ->
      g >>= fun b ->
      QCheck.Gen.return (Bitvec.resize ~width:w a, Bitvec.resize ~width:w b))

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

let properties =
  [
    prop "add commutative" pair_same_width (fun (a, b) ->
        Bitvec.equal (Bitvec.add a b) (Bitvec.add b a));
    prop "mul commutative" pair_same_width (fun (a, b) ->
        Bitvec.equal (Bitvec.mul a b) (Bitvec.mul b a));
    prop "add then sub round-trips" pair_same_width (fun (a, b) ->
        Bitvec.equal a (Bitvec.sub (Bitvec.add a b) b));
    prop "neg is sub from zero" arb_bv (fun a ->
        Bitvec.equal (Bitvec.neg a) (Bitvec.sub (Bitvec.zero (Bitvec.width a)) a));
    prop "not involutive" arb_bv (fun a -> Bitvec.equal a (Bitvec.lognot (Bitvec.lognot a)));
    prop "xor self is zero" arb_bv (fun a ->
        Bitvec.is_zero (Bitvec.logxor a a));
    prop "divmod reconstructs" pair_same_width (fun (a, b) ->
        QCheck.assume (not (Bitvec.is_zero b));
        let q = Bitvec.udiv a b and r = Bitvec.urem a b in
        Bitvec.equal a (Bitvec.add (Bitvec.mul q b) r)
        && Bitvec.compare r b < 0);
    prop "shift left then right" arb_bv (fun a ->
        let w = Bitvec.width a in
        let k = w / 2 in
        let masked = Bitvec.shift_right_logical (Bitvec.shift_left a k) k in
        (* The top k bits are lost; compare the surviving low bits. *)
        if w - k >= 1 then
          Bitvec.equal
            (Bitvec.truncate ~width:(w - k) masked)
            (Bitvec.truncate ~width:(w - k) a)
        else true);
    prop "bin string round-trips" arb_bv (fun a ->
        Bitvec.equal a (Bitvec.of_bin_string (Bitvec.to_bin_string a)));
    prop "hex string round-trips" arb_bv (fun a ->
        Bitvec.equal a (Bitvec.of_hex_string ~width:(Bitvec.width a) (Bitvec.to_hex_string a)));
    prop "concat then extract" pair_same_width (fun (a, b) ->
        let w = Bitvec.width a in
        let c = Bitvec.concat a b in
        Bitvec.equal a (Bitvec.extract ~hi:((2 * w) - 1) ~lo:w c)
        && Bitvec.equal b (Bitvec.extract ~hi:(w - 1) ~lo:0 c));
    prop "mul_full agrees with mul on low bits" pair_same_width (fun (a, b) ->
        let w = Bitvec.width a in
        Bitvec.equal (Bitvec.mul a b) (Bitvec.truncate ~width:w (Bitvec.mul_full a b)));
    prop "unsigned compare total order vs to_string" pair_same_width (fun (a, b) ->
        let c = Bitvec.compare a b in
        if c = 0 then Bitvec.equal a b || Bitvec.to_string a = Bitvec.to_string b
        else true);
    prop "sign extend preserves signed value" arb_bv (fun a ->
        QCheck.assume (Bitvec.width a <= 60);
        let w = Bitvec.width a + 4 in
        Bitvec.to_signed_int (Bitvec.sign_extend ~width:w a) = Bitvec.to_signed_int a);
    prop "popcount of concat adds" pair_same_width (fun (a, b) ->
        Bitvec.popcount (Bitvec.concat a b) = Bitvec.popcount a + Bitvec.popcount b);
  ]

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "wide values" `Quick test_wide_values;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "signed" `Quick test_signed;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("properties", properties);
    ]
