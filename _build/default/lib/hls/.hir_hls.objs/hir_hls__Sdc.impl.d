lib/hls/sdc.ml: Array Ast Compiler Hashtbl List
