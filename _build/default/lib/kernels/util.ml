(* Shared helpers for the benchmark kernels. *)

let bv32 n = Bitvec.of_int ~width:32 n

(* Deterministic pseudo-random input data (xorshift), so tests and
   benches are reproducible without Random state. *)
let test_data ~seed ~n ~width =
  let state = ref (seed * 2654435761 + 1) in
  Array.init n (fun _ ->
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x;
      Bitvec.of_int ~width (x land 0x3FFFFFFF))

let to_ints = Array.map Bitvec.to_int
let of_ints ~width a = Array.map (Bitvec.of_int ~width) a
