(* Tests for the sub-job incremental compilation chain (lib/driver):
   the correctness bar is byte-identity — a warm recompile after an
   edit must produce exactly the bytes a cold, cache-less compile of
   the edited source produces — plus structural reuse: editing one
   function re-optimizes only the functions whose cone hash changed,
   and every untouched top re-links from its cached entry.

   The scenarios compile several kernels' functions linked into ONE
   module, as one job per top against a shared cache, mirroring
   `bench --incremental` and the DESIGN.md fingerprint chain. *)

open Hir_ir
open Hir_dialect
open Hir_driver

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-incr-test-%d-%d" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* Source assembly                                                     *)

(* (top, [function name * printed text]) of one built-in kernel. *)
let kernel_parts name =
  let k = List.find (fun k -> k.Hir_kernels.Kernels.name = name) Hir_kernels.Kernels.all in
  let m, f = k.Hir_kernels.Kernels.build () in
  ( Ops.func_name f,
    List.map
      (fun f -> (Ops.func_name f, Printer.op_to_string f))
      (Ir.Walk.find_all m "hir.func") )

(* One module text holding every listed function, in order. *)
let combined texts = Incr.module_of_texts texts Printer.op_to_string

(* A real semantic edit confined to one function: decrement the
   function's largest constant — a loop bound in every kernel.
   Shrinking a bound keeps the schedule legal (each cycle's access set
   is a subset of the original's), where shifting a lower bound or
   growing an unrolled loop could re-align banked accesses into a port
   conflict. *)
let shrink_largest_constant text =
  let tag = "{value = " in
  let tl = String.length tag in
  let constants = ref [] in
  for i = 0 to String.length text - tl do
    if String.sub text i tl = tag then begin
      let j = ref (i + tl) in
      while !j < String.length text && text.[!j] >= '0' && text.[!j] <= '9' do
        incr j
      done;
      if !j > i + tl then
        constants := (int_of_string (String.sub text (i + tl) (!j - i - tl)), i + tl, !j) :: !constants
    end
  done;
  match List.sort (fun (a, _, _) (b, _, _) -> compare b a) !constants with
  | (n, i, j) :: _ when n >= 2 ->
    String.sub text 0 i ^ string_of_int (n - 1) ^ String.sub text j (String.length text - j)
  | _ -> Alcotest.failf "no constant to edit in %s..." (String.sub text 0 40)

let edit_fn target texts =
  List.map
    (fun (n, t) -> if n = target then (n, shrink_largest_constant t) else (n, t))
    texts

(* ------------------------------------------------------------------ *)
(* Batch plumbing                                                      *)

let pipeline = Pipeline.default ~optimize:true

let jobs_of ~tops src =
  Array.of_list
    (List.map
       (fun top -> Driver.job_of_text ~top ~pipeline ~name:("incr-" ^ top) src)
       tops)

(* (top * verilog) list, failing the test on any job error. *)
let compile_all ?cache ~tops src =
  let result = Driver.batch ?cache ~workers:1 (jobs_of ~tops src) in
  Array.to_list result.Driver.outcomes
  |> List.map (function
       | Ok (o : Driver.output) -> (o.Driver.top_name, o.Driver.verilog)
       | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e))

let kind_stat cache kind = List.assoc kind (Cache.kind_stats cache)

(* Cold batch, edit [target], warm batch; returns the warm outputs, the
   cache-less baseline of the edited source and the warm-phase deltas
   of (link hits, fn stores). *)
let edit_and_recompile ~kernels ~target =
  let parts = List.map kernel_parts kernels in
  let tops = List.map fst parts in
  let texts = List.concat_map snd parts in
  let cache = Cache.create ~dir:(fresh_dir ()) () in
  ignore (compile_all ~cache ~tops (combined texts));
  let before_link = kind_stat cache Cache.Link in
  let before_fn = kind_stat cache Cache.Fn in
  let edited_src = combined (edit_fn target texts) in
  let warm = compile_all ~cache ~tops edited_src in
  let baseline = compile_all ~tops edited_src in
  let link_hits = (kind_stat cache Cache.Link).Cache.k_hits - before_link.Cache.k_hits in
  let fn_stores = (kind_stat cache Cache.Fn).Cache.k_stores - before_fn.Cache.k_stores in
  (warm, baseline, link_hits, fn_stores)

(* ------------------------------------------------------------------ *)
(* Unit: the staged linker matches the monolithic printer              *)

let test_link_design_matches_pretty () =
  let _, parts = kernel_parts "transpose" in
  let _, parts2 = kernel_parts "elementwise_max" in
  Incr.module_of_texts (parts @ parts2) (fun m ->
      let top =
        match Ops.lookup_func m "transpose" with
        | Some f -> f
        | None -> Alcotest.fail "transpose vanished"
      in
      let emitted = Hir_codegen.Emit.emit ~module_op:m ~top () in
      let design = emitted.Hir_codegen.Emit.design in
      let whole = Hir_verilog.Pretty.design_to_string design in
      let relinked =
        Incr.link_design
          (List.map Hir_verilog.Pretty.module_to_string
             design.Hir_verilog.Ast.modules)
      in
      check_string "link_design = Pretty.design_to_string" whole relinked)

(* ------------------------------------------------------------------ *)
(* Deterministic: leaf edit and call-graph edit                        *)

(* Editing one leaf kernel among three: the two untouched tops re-link,
   exactly one function is re-optimized. *)
let test_leaf_edit_relinks_others () =
  let warm, baseline, link_hits, fn_stores =
    edit_and_recompile
      ~kernels:[ "transpose"; "fifo"; "elementwise_max" ]
      ~target:"elementwise_max"
  in
  check_bool "warm outputs byte-identical to a cache-less compile" true
    (warm = baseline);
  check_int "both untouched tops re-link" 2 link_hits;
  check_int "exactly the edited function re-optimizes" 1 fn_stores

(* Editing a callee inside task_parallel's call graph: the edit
   invalidates the callee's cone AND every caller cone containing it
   (stencilA -> task_parallel), while sibling subtrees (stencilB) and
   unrelated kernels keep their entries. *)
let test_callee_edit_invalidates_cone () =
  let warm, baseline, link_hits, fn_stores =
    edit_and_recompile
      ~kernels:[ "transpose"; "fifo"; "task_parallel" ]
      ~target:"stencilA"
  in
  check_bool "warm outputs byte-identical to a cache-less compile" true
    (warm = baseline);
  check_int "the two kernels outside the cone re-link" 2 link_hits;
  check_int "edited callee + its caller re-optimize, nothing else" 2 fn_stores

(* ------------------------------------------------------------------ *)
(* Property: byte-identity and minimal recompute on random edits       *)

(* Fast single-function kernels, so the property stays cheap. *)
let property_pool = [ "transpose"; "histogram"; "convolution"; "fifo"; "elementwise_max" ]

let incremental_reuse_prop =
  let gen =
    QCheck.(
      pair
        (int_bound (List.length property_pool - 1))  (* edited kernel *)
        (int_bound ((1 lsl List.length property_pool) - 1)) (* subset mask *))
  in
  QCheck.Test.make ~count:15
    ~name:"random single-function edit: byte-identical warm recompile, minimal recompute"
    gen
    (fun (edit_idx, mask) ->
      (* The chosen subset, forced to include the edited kernel. *)
      let kernels =
        List.filteri
          (fun i _ -> i = edit_idx || (mask lsr i) land 1 = 1)
          property_pool
      in
      let target = List.nth property_pool edit_idx in
      let warm, baseline, link_hits, fn_stores =
        edit_and_recompile ~kernels ~target
      in
      if warm <> baseline then
        QCheck.Test.fail_reportf "warm recompile differs from cold compile";
      if link_hits <> List.length kernels - 1 then
        QCheck.Test.fail_reportf "expected %d link hits, saw %d"
          (List.length kernels - 1) link_hits;
      if fn_stores <> 1 then
        QCheck.Test.fail_reportf "expected 1 fn store, saw %d" fn_stores;
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incremental"
    [
      ( "link",
        [ Alcotest.test_case "matches-monolithic-printer" `Quick
            test_link_design_matches_pretty ] );
      ( "edit",
        [
          Alcotest.test_case "leaf-edit-relinks-others" `Quick
            test_leaf_edit_relinks_others;
          Alcotest.test_case "callee-edit-invalidates-cone" `Quick
            test_callee_edit_invalidates_cone;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest ~verbose:false incremental_reuse_prop ] );
    ]
