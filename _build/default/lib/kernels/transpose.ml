(* Matrix transpose (paper Listing 1): reads a 16x16 matrix from an
   input memory interface and writes the transpose to an output memory
   interface, with a pipelined (II = 1) inner loop. *)

open Hir_ir
open Hir_dialect

let name = "transpose"
let n = 16

let build_into m =
  Builder.func m ~name
    ~args:
      [
        Builder.arg "Ai" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Read ());
        Builder.arg "Co" (Types.memref ~dims:[ n; n ] ~elem:Typ.i32 ~port:Types.Write ());
      ]
    (fun b args t ->
      match args with
      | [ ai; co ] ->
        let c0 = Builder.constant b 0 in
        let c1 = Builder.constant b 1 in
        let cn = Builder.constant b n in
        let _tf =
          Builder.for_loop b ~iv_hint:"i" ~lb:c0 ~ub:cn ~step:c1
            ~at:Builder.(t @>> 1)
            (fun b ~iv:i ~ti ->
              let tf_j =
                Builder.for_loop b ~iv_hint:"j" ~lb:c0 ~ub:cn ~step:c1
                  ~at:Builder.(ti @>> 1)
                  (fun b ~iv:j ~ti:tj ->
                    let v = Builder.mem_read b ai [ i; j ] ~at:Builder.(tj @>> 0) in
                    let j1 = Builder.delay b j ~by:1 ~at:Builder.(tj @>> 0) in
                    Builder.mem_write b v co [ j1; i ] ~at:Builder.(tj @>> 1);
                    Builder.yield b ~at:Builder.(tj @>> 1))
              in
              Builder.yield b ~at:Builder.(tf_j @>> 1))
        in
        Builder.return_ b []
      | _ -> assert false)

let build () =
  let m = Builder.create_module () in
  let f = build_into m in
  (m, f)

let reference input =
  Array.init (n * n) (fun idx ->
      let i = idx / n and j = idx mod n in
      input.((j * n) + i))

let make_input ~seed = Util.test_data ~seed ~n:(n * n) ~width:32

(* Run the HIR design through the interpreter and compare with the
   software model.  Returns the interpreter stats on success. *)
let check_interp ?(seed = 1) () =
  let m, f = build () in
  let input = make_input ~seed in
  let result, tensors =
    Interp.run ~module_op:m ~func:f [ Interp.Tensor input; Interp.Out_tensor ]
  in
  let out = Interp.tensor_snapshot (tensors 1) ~cycle:max_int in
  let expected = reference input in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some got when Bitvec.equal got expected.(i) -> ()
      | _ -> ok := false)
    out;
  if !ok then Ok result else Error "transpose output mismatch"
