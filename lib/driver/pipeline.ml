(* Textual pass-pipeline specifications: pipelines as data.

   Grammar (whitespace-insensitive):

     spec    ::= stage (',' stage)*
     stage   ::= name | name '{' options '}'
     options ::= option (',' option)*
     option  ::= key '=' value

   e.g.  "canonicalize,precision-opt,unroll,delay-elim"
         "cse,retime{repeat=2},precision-opt"

   A spec parses into a list of named stages resolved against the pass
   registry below, and prints back in normalized form ([parse] o
   [to_string] is the identity on normalized specs).  Every stage
   accepts the generic option [repeat=N] (run the pass N times); any
   other option is rejected at parse time so typos fail fast rather
   than silently doing nothing. *)

open Hir_ir
open Hir_dialect

type stage = {
  st_name : string;
  st_options : (string * string) list;  (* normalized: sorted by key *)
}

type spec = { stages : stage list }

(* ------------------------------------------------------------------ *)
(* Pass registry                                                       *)

(* The structural verifier as a pass, so "verify" can appear anywhere
   in a pipeline string. *)
let verify_pass =
  Pass.make ~name:"verify" ~description:"Check structural IR invariants"
    (fun root engine ->
      (match Verify.verify root with
      | Ok () -> ()
      | Error e -> List.iter (Diagnostic.Engine.emit engine) (Diagnostic.Engine.to_list e));
      false)

let registry : (string * Pass.t) list =
  [
    ("verify", verify_pass);
    ("verify-schedule", Verify_schedule.pass);
    ("dce", Passes.dce);
    ("const-fold", Passes.const_fold);
    ("cse", Passes.cse);
    ("strength-reduction", Passes.strength_reduction);
    ("delay-elim", Passes.delay_elim);
    ("canonicalize", Passes.canonicalize);
    ("precision-opt", Precision_opt.pass);
    ("retime", Retime.pass);
    ("unroll", Unroll.pass);
  ]

let available_passes () =
  List.map (fun (name, p) -> (name, p.Pass.description)) registry

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

(* A parse failure, with the 0-based character offset of the offending
   stage or option within the spec string — the raw material for the
   located diagnostic [parse_located] returns. *)
type parse_error = { pe_offset : int; pe_msg : string }

(* Split [s] on [sep] at brace depth 0, each part tagged with its
   character offset in [s]. *)
let split_top sep s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '{' then incr depth;
      if c = '}' then decr depth;
      if c = sep && !depth = 0 then begin
        parts := (!start, Buffer.contents buf) :: !parts;
        Buffer.clear buf;
        start := i + 1
      end
      else Buffer.add_char buf c)
    s;
  parts := (!start, Buffer.contents buf) :: !parts;
  List.rev !parts

(* The offset of [trimmed]'s first character, given the untrimmed
   part's offset. *)
let trim_offset offset part =
  let n = String.length part in
  let rec lead i = if i < n && (part.[i] = ' ' || part.[i] = '\t') then lead (i + 1) else i in
  offset + lead 0

let parse_option ~offset stage_name s =
  match String.index_opt s '=' with
  | None ->
    Error
      {
        pe_offset = offset;
        pe_msg =
          Printf.sprintf "stage '%s': option '%s' is not of the form key=value"
            stage_name s;
      }
  | Some i ->
    let key = String.trim (String.sub s 0 i) in
    let value = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
    if key = "" || value = "" then
      Error
        {
          pe_offset = offset;
          pe_msg =
            Printf.sprintf "stage '%s': empty option key or value in '%s'" stage_name s;
        }
    else Ok (key, value)

(* Each option arrives with the offset of its own key, so the error
   points at the offending option, not merely its stage. *)
let validate_options stage_name options =
  let rec go = function
    | [] -> Ok ()
    | (offset, ("repeat", v)) :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> go rest
      | _ ->
        Error
          {
            pe_offset = offset;
            pe_msg =
              Printf.sprintf "stage '%s': repeat=%s is not a positive integer"
                stage_name v;
          })
    | (offset, (k, _)) :: _ ->
      Error
        {
          pe_offset = offset;
          pe_msg =
            Printf.sprintf "stage '%s': unknown option '%s' (supported: repeat)"
              stage_name k;
        }
  in
  go options

let parse_stage ~offset part =
  let offset = trim_offset offset part in
  let s = String.trim part in
  if s = "" then Error { pe_offset = offset; pe_msg = "empty pipeline stage" }
  else
    let name, opts =
      match String.index_opt s '{' with
      | None -> (s, None)
      | Some i ->
        if String.length s = 0 || s.[String.length s - 1] <> '}' then (s, None)
        else
          ( String.trim (String.sub s 0 i),
            (* options start just past the '{' *)
            Some (offset + i + 1, String.sub s (i + 1) (String.length s - i - 2)) )
    in
    if String.contains name '{' || String.contains name '}' then
      Error
        {
          pe_offset = offset;
          pe_msg = Printf.sprintf "malformed stage '%s' (unbalanced braces?)" s;
        }
    else if not (List.mem_assoc name registry) then
      Error
        {
          pe_offset = offset;
          pe_msg =
            Printf.sprintf "unknown pass '%s' (available: %s)" name
              (String.concat ", " (List.map fst registry));
        }
    else
      let options =
        match opts with
        | None -> Ok []
        | Some (_, src) when String.trim src = "" -> Ok []
        | Some (opts_offset, src) ->
          List.fold_left
            (fun acc (po, part) ->
              match acc with
              | Error _ as e -> e
              | Ok parsed -> (
                let po = trim_offset (opts_offset + po) part in
                match parse_option ~offset:po name (String.trim part) with
                | Ok o -> Ok ((po, o) :: parsed)
                | Error e -> Error e))
            (Ok []) (split_top ',' src)
          |> Result.map List.rev
      in
      match options with
      | Error e -> Error e
      | Ok options -> (
        let options = List.sort (fun (_, a) (_, b) -> compare a b) options in
        match validate_options name options with
        | Error e -> Error e
        | Ok () -> Ok { st_name = name; st_options = List.map snd options })

let parse_result s =
  if String.trim s = "" then
    Error { pe_offset = 0; pe_msg = "empty pipeline specification" }
  else
    List.fold_left
      (fun acc (offset, part) ->
        match acc with
        | Error _ as e -> e
        | Ok stages -> (
          match parse_stage ~offset part with
          | Ok st -> Ok (st :: stages)
          | Error e -> Error e))
      (Ok []) (split_top ',' s)
    |> Result.map (fun stages -> { stages = List.rev stages })

let parse s = Result.map_error (fun e -> e.pe_msg) (parse_result s)

(* The located flavour of [parse], honouring the frontend's error
   contract: a malformed spec yields a [Diagnostic.t] whose location
   points into the (one-line) spec string at the offending stage or
   option, instead of a bare message — so `hirc --passes
   'unroll{repeat=x}'` reports where in the argument the typo is. *)
let parse_located ?(file = "--passes") s =
  Result.map_error
    (fun e ->
      Diagnostic.error
        (Location.file ~file ~line:1 ~col:(e.pe_offset + 1))
        ("pipeline: " ^ e.pe_msg))
    (parse_result s)

let stage_to_string st =
  match st.st_options with
  | [] -> st.st_name
  | opts ->
    Printf.sprintf "%s{%s}" st.st_name
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) opts))

let to_string spec = String.concat "," (List.map stage_to_string spec.stages)

(* ------------------------------------------------------------------ *)
(* Lowering a spec to passes                                           *)

(* Total by construction: [validate_options] rejects malformed repeat
   values at parse time, so a bad value can only reach here through a
   hand-built [stage] — run such a stage once rather than raising
   [Failure] from deep inside a pipeline lowering. *)
let repeat_of st =
  match Option.bind (List.assoc_opt "repeat" st.st_options) int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 1

let stage_passes st =
  let pass = List.assoc st.st_name registry in
  List.init (repeat_of st) (fun _ -> pass)

let to_passes spec = List.concat_map stage_passes spec.stages

(* ------------------------------------------------------------------ *)
(* Canned pipelines                                                    *)

(* The pipelines [Hir_codegen.Emit.compile] hard-codes, now as data.
   Scalar optimizations run before unrolling (cheaper on the compact
   design, inherited by every clone); delay elimination runs after,
   where it can share the shift registers of replicated bodies. *)
let default_optimized = "canonicalize,precision-opt,unroll,delay-elim"
let default_no_opt = "unroll"

let default ~optimize =
  match parse (if optimize then default_optimized else default_no_opt) with
  | Ok s -> s
  | Error e -> invalid_arg ("Pipeline.default: " ^ e)
