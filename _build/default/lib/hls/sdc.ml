(* SDC-style scheduling (Cong & Zhang's "system of difference
   constraints" formulation, the one production HLS tools use): start
   times are integer variables and every dependence becomes a
   constraint

       s(to) - s(from) >= minlat - II * distance

   Solving the system by longest path (Bellman-Ford from a virtual
   source) yields the ASAP schedule, and infeasibility — a positive
   cycle in the constraint graph — is exactly the statement that the
   recurrences do not fit in the candidate II.  This gives an *exact*
   recurrence-MII, used to cross-validate the list/modulo scheduler in
   [Compiler] (which additionally handles resource constraints). *)

open Ast

(* Data-dependence edges from SSA temps: def -> use with the def's
   result latency. *)
let data_deps (nodes : Compiler.node list) =
  let def_of : (string, Compiler.node * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (n : Compiler.node) ->
      match n.Compiler.n_kind with
      | Compiler.N_load { temp; lat; _ } -> Hashtbl.replace def_of temp (n, lat)
      | Compiler.N_temp { temp; lat; _ } -> Hashtbl.replace def_of temp (n, lat)
      | Compiler.N_store _ -> ())
    nodes;
  let rec expr_vars acc = function
    | Int _ -> acc
    | Var v -> v :: acc
    | Load (_, idx) -> List.fold_left expr_vars acc idx
    | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  in
  let reads (n : Compiler.node) =
    match n.Compiler.n_kind with
    | Compiler.N_load { indices; _ } -> List.fold_left expr_vars [] indices
    | Compiler.N_temp { value; _ } -> expr_vars [] value
    | Compiler.N_store { indices; value; _ } ->
      List.fold_left expr_vars (expr_vars [] value) indices
  in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun v ->
          match Hashtbl.find_opt def_of v with
          | Some (def, lat) when def != n ->
            Some
              {
                Compiler.dep_from = def;
                dep_to = n;
                dep_min = lat;
                dep_distance = 0;
              }
          | _ -> None)
        (reads n))
    nodes

(* Longest-path solve.  Returns the start times, or None if the
   constraint graph has a positive cycle (II infeasible). *)
let solve ~ii nodes deps =
  let all_deps = deps @ data_deps nodes in
  let index : (int, int) Hashtbl.t = Hashtbl.create 32 in
  List.iteri (fun i (n : Compiler.node) -> Hashtbl.replace index n.Compiler.n_id i) nodes;
  let n = List.length nodes in
  let dist = Array.make n 0 in
  let edges =
    List.filter_map
      (fun (d : Compiler.dep) ->
        match
          ( Hashtbl.find_opt index d.Compiler.dep_from.Compiler.n_id,
            Hashtbl.find_opt index d.Compiler.dep_to.Compiler.n_id )
        with
        | Some i, Some j ->
          Some (i, j, d.Compiler.dep_min - (ii * d.Compiler.dep_distance))
        | _ -> None)
      all_deps
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun (i, j, w) ->
        if dist.(i) + w > dist.(j) then begin
          dist.(j) <- dist.(i) + w;
          changed := true
        end)
      edges
  done;
  if !changed then None  (* still relaxing after n+1 rounds: positive cycle *)
  else Some dist

(* The exact recurrence-constrained minimum II of a pipelined body. *)
let recurrence_mii nodes deps =
  let rec go ii = if ii > 64 then None else
    match solve ~ii nodes deps with Some _ -> Some ii | None -> go (ii + 1)
  in
  go 1

(* Convenience: analyze one PIPELINE loop of an HLS function.  Returns
   (exact RecMII, schedule length at that II). *)
let analyze_pipelined_loop ~(func : func) ~loop_var =
  let cfg = Compiler.default_config in
  let f = unroll_func func in
  let arrays =
    List.filter_map
      (function
        | P_array (dir, decl) ->
          Some
            ( decl.arr_name,
              Compiler.allocate_array ~local:false ~dir:(Some dir) decl )
        | P_scalar _ -> None)
      f.params
    @ List.map
        (fun decl -> (decl.arr_name, Compiler.allocate_array ~local:true ~dir:None decl))
        f.locals
  in
  let rec find_loop stmts =
    List.find_map
      (function
        | For fl when fl.var = loop_var -> Some fl
        | For fl -> find_loop fl.body
        | _ -> None)
      stmts
  in
  match find_loop f.body with
  | None -> None
  | Some fl ->
    let segments = Compiler.normalize_stmts ~arrays ~config:cfg fl.body in
    let nodes =
      List.concat_map
        (function Compiler.Straight ns -> ns | Compiler.Subloop _ -> [])
        segments
    in
    let deps =
      Compiler.memory_deps ~arrays ~pipelined:true ~dep_free:fl.dep_free nodes
    in
    (match recurrence_mii nodes deps with
    | None -> None
    | Some mii ->
      let length =
        match solve ~ii:mii nodes deps with
        | Some dist -> Array.fold_left max 0 dist
        | None -> 0
      in
      Some (mii, length))
