(* Passes and the pass manager.

   A pass transforms the IR rooted at an op (usually a module or a
   function) and reports whether it changed anything.  The manager runs
   a pipeline, optionally re-verifying between passes, and records
   wall-clock statistics per pass — the infrastructure behind the
   compile-time evaluation in Table 6. *)

type t = {
  name : string;
  description : string;
  run : Ir.op -> Diagnostic.Engine.t -> bool;
}

let make ~name ~description run = { name; description; run }

type stat = { pass_name : string; seconds : float; changed : bool }

type result = {
  stats : stat list;
  engine : Diagnostic.Engine.t;
  succeeded : bool;
}

module Manager = struct
  type manager = {
    passes : t list;
    verify_each : bool;
  }

  let create ?(verify_each = false) passes = { passes; verify_each }

  let run mgr root =
    let engine = Diagnostic.Engine.create () in
    let rec go stats = function
      | [] -> { stats = List.rev stats; engine; succeeded = true }
      | pass :: rest ->
        let t0 = Unix.gettimeofday () in
        let changed = pass.run root engine in
        let seconds = Unix.gettimeofday () -. t0 in
        let stats = { pass_name = pass.name; seconds; changed } :: stats in
        if Diagnostic.Engine.has_errors engine then
          { stats = List.rev stats; engine; succeeded = false }
        else if mgr.verify_each then begin
          match Verify.verify root with
          | Ok () -> go stats rest
          | Error verify_engine ->
            Diagnostic.Engine.errorf engine (Ir.Op.loc root)
              "IR verification failed after pass '%s':\n%s" pass.name
              (Diagnostic.Engine.to_string verify_engine);
            { stats = List.rev stats; engine; succeeded = false }
        end
        else go stats rest
    in
    go [] mgr.passes

  let pp_stats fmt result =
    List.iter
      (fun s ->
        Format.fprintf fmt "%-28s %8.3f ms %s@\n" s.pass_name (s.seconds *. 1000.)
          (if s.changed then "(changed)" else ""))
      result.stats
end
