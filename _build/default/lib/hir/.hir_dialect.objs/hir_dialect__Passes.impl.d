lib/hir/passes.ml: Attribute Dialect Hashtbl Hir_ir Ir List Ops Option Pass Typ Types
