(* Tests for the lib/driver compilation service: pipeline-spec parsing
   (round-trip and error cases), the content-addressed cache (hit on
   identical input, invalidation on source/pipeline edits), the
   multicore batch scheduler (4-worker output byte-identical to
   sequential), pass-manager instrumentation and the Chrome trace
   exporter. *)

open Hir_ir
open Hir_dialect
open Hir_driver

let () = Ops.register ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse_ok spec =
  match Pipeline.parse spec with
  | Ok s -> s
  | Error e -> Alcotest.failf "expected %S to parse, got: %s" spec e

let parse_err spec =
  match Pipeline.parse spec with
  | Ok s -> Alcotest.failf "expected %S to be rejected, parsed as %S" spec (Pipeline.to_string s)
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Pipeline specs                                                      *)

let test_pipeline_roundtrip () =
  List.iter
    (fun spec -> check_string spec spec (Pipeline.to_string (parse_ok spec)))
    [
      "unroll";
      "canonicalize,precision-opt,unroll,delay-elim";
      "cse,retime{repeat=2},precision-opt";
      "verify,verify-schedule,dce";
    ]

let test_pipeline_normalization () =
  (* Whitespace and empty option braces normalize away. *)
  check_string "spaces" "cse,delay-elim"
    (Pipeline.to_string (parse_ok " cse , delay-elim "));
  check_string "empty-braces" "retime" (Pipeline.to_string (parse_ok "retime{}"));
  (* Normalized output re-parses to itself (idempotent). *)
  let s = Pipeline.to_string (parse_ok "retime{ repeat=3 }, cse") in
  check_string "fixpoint" s (Pipeline.to_string (parse_ok s))

let test_pipeline_errors () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect spec fragment =
    let e = parse_err spec in
    check_bool (Printf.sprintf "%S error mentions %S (got %S)" spec fragment e) true
      (contains e fragment)
  in
  expect "" "empty";
  expect "cse,,dce" "empty";
  expect "frobnicate" "unknown pass";
  expect "cse{bogus=1}" "unknown option";
  expect "cse{repeat=0}" "positive";
  expect "cse{repeat}" "key=value"

let test_pipeline_to_passes () =
  let passes = Pipeline.to_passes (parse_ok "cse,retime{repeat=3},dce") in
  check_int "repeat expansion" 5 (List.length passes);
  Alcotest.(check (list string))
    "pass order"
    [ "cse"; "retime"; "retime"; "retime"; "dce" ]
    (List.map (fun p -> p.Pass.name) passes)

(* ------------------------------------------------------------------ *)
(* Pass-manager instrumentation                                        *)

let test_instrumentation () =
  let m, _ = Hir_kernels.Transpose.build () in
  let events = ref [] in
  let mgr =
    Pass.Manager.create
      ~instrument:(fun ev -> events := ev :: !events)
      (Pipeline.to_passes (parse_ok "canonicalize,unroll"))
  in
  let result = Pass.Manager.run mgr m in
  check_bool "succeeded" true result.Pass.succeeded;
  let events = List.rev !events in
  check_int "begin/end pairs" 4 (List.length events);
  (* Stats and events report the same passes in the same order. *)
  let ended =
    List.filter_map
      (function
        | Pass.Pass_end { pass_name; seconds; changed; _ } -> Some (pass_name, seconds, changed)
        | Pass.Pass_begin _ -> None)
      events
  in
  List.iter2
    (fun (name, seconds, changed) (s : Pass.stat) ->
      check_string "event/stat name" s.Pass.pass_name name;
      check_bool "event/stat changed" s.Pass.changed changed;
      check_bool "event/stat seconds" true (s.Pass.seconds = seconds))
    ended result.Pass.stats

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hir-driver-test-%d-%d" (Unix.getpid ()) !counter)

let transpose_text () =
  Ir.with_isolated_ids (fun () ->
      let m, _ = Hir_kernels.Transpose.build () in
      Printer.op_to_string m)

let compile_text ?cache ~pipeline text =
  match Driver.compile_job ?cache (Driver.job_of_text ~pipeline ~name:"t.hir" text) with
  | Ok o -> o
  | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e)

let test_cache_hit_and_invalidation () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  check_bool "first compile misses" false cold.Driver.from_cache;
  let warm = compile_text ~cache ~pipeline text in
  check_bool "second compile hits" true warm.Driver.from_cache;
  check_string "hit returns identical Verilog" cold.Driver.verilog warm.Driver.verilog;
  check_bool "hit preserves usage" true (cold.Driver.usage = warm.Driver.usage);
  check_string "hit preserves top" cold.Driver.top_name warm.Driver.top_name;
  (* Editing the source invalidates. *)
  let edited = compile_text ~cache ~pipeline (text ^ "\n// edited\n") in
  check_bool "edited source misses" false edited.Driver.from_cache;
  (* Changing the pipeline invalidates. *)
  let other = compile_text ~cache ~pipeline:(Pipeline.default ~optimize:false) text in
  check_bool "different pipeline misses" false other.Driver.from_cache;
  check_int "cache hits" 1 (Cache.hits cache);
  check_int "cache misses" 3 (Cache.misses cache)

(* Regression: a cache entry whose .v payload is unreadable (here: a
   directory squatting on the path) degraded the whole compile with a
   [Sys_error]; it must instead count as a miss and recompile. *)
let test_cache_damaged_entry_degrades_to_miss () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir in
  let pipeline = Pipeline.default ~optimize:true in
  let text = transpose_text () in
  let cold = compile_text ~cache ~pipeline text in
  (* Smash every payload file into a directory of the same name. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".v" then begin
        let path = Filename.concat dir f in
        Sys.remove path;
        Unix.mkdir path 0o755
      end)
    (Sys.readdir dir);
  let again = compile_text ~cache ~pipeline text in
  check_bool "damaged entry is a miss" false again.Driver.from_cache;
  check_string "recompile still correct" cold.Driver.verilog again.Driver.verilog

(* Regression: [compile_job] must return [Error] with diagnostics for
   any bad input — exceptions crossing the scheduler's domain boundary
   killed the whole batch. *)
let test_compile_job_errors_are_diagnostics () =
  let pipeline = Pipeline.default ~optimize:true in
  let run text =
    match Driver.compile_job (Driver.job_of_text ~pipeline ~name:"bad.hir" text) with
    | Ok _ -> Alcotest.failf "expected a failure for:\n%s" text
    | Error e ->
      check_string "error names the job" "bad.hir" e.Driver.err_job;
      check_bool "has diagnostics" true (e.Driver.err_diags <> []);
      Driver.error_to_string e
  in
  (* Garbage input: a located parse diagnostic, not an exception. *)
  let msg = run "%%% not hir at all" in
  check_bool "parse error mentions location" true (String.length msg > 0);
  (* A wrong attribute kind ({value = "x"} on a constant) used to crash
     in an [Attribute.as_int] accessor; now it is a verifier error. *)
  let text =
    "\"builtin.module\"() ({\n\
    \  ^bb():\n\
    \  \"hir.func\"() ({\n\
    \    ^bb(%t: !hir.time):\n\
    \    %c = \"hir.constant\"() {value = \"x\"} : () -> (!hir.const)\n\
    \    \"hir.return\"() : () -> ()\n\
    \  }) {sym_name = @f, arg_types = [!ty<!hir.time>]} : () -> ()\n\
     }) : () -> ()"
  in
  ignore (run text);
  (* An empty module has no top function to choose. *)
  let msg = run "\"builtin.module\"() ({\n  ^bb():\n}) : () -> ()" in
  check_bool "no-function error is attributed to the job" true
    (let needle = "bad.hir" in
     let n = String.length needle and l = String.length msg in
     let rec go i = i + n <= l && (String.sub msg i n = needle || go (i + 1)) in
     go 0)

let test_cache_key () =
  let k ?(pipeline = "unroll") ?top ?(source = "src") () = Cache.key ~pipeline ~top ~source in
  check_bool "stable" true (k () = k ());
  check_bool "source-sensitive" false (k () = k ~source:"src2" ());
  check_bool "pipeline-sensitive" false (k () = k ~pipeline:"unroll,dce" ());
  check_bool "top-sensitive" false (k () = k ~top:"f" ())

(* ------------------------------------------------------------------ *)
(* Batch scheduler                                                     *)

let test_scheduler_order () =
  let jobs = Array.init 64 Fun.id in
  let out = Scheduler.map_ordered ~workers:4 ~f:(fun i x -> (i, x * 2)) jobs in
  Array.iteri
    (fun i (idx, doubled) ->
      check_int "index" i idx;
      check_int "value" (i * 2) doubled)
    out

let test_scheduler_exception () =
  let jobs = Array.init 8 Fun.id in
  match
    Scheduler.map_ordered ~workers:4 ~f:(fun _ x -> if x = 5 then failwith "boom" else x) jobs
  with
  | _ -> Alcotest.fail "expected the job exception to re-raise"
  | exception Failure msg -> check_string "payload" "boom" msg

let kernel_jobs pipeline =
  Hir_kernels.Kernels.all
  |> List.map (fun k ->
         Driver.job_of_builder ~pipeline ~name:k.Hir_kernels.Kernels.name
           k.Hir_kernels.Kernels.build)
  |> Array.of_list

let verilog_of = function
  | Ok o -> o.Driver.verilog
  | Error e -> Alcotest.failf "batch job failed: %s" (Driver.error_to_string e)

let test_batch_deterministic () =
  let pipeline = Pipeline.default ~optimize:true in
  let sequential = Driver.batch ~workers:1 (kernel_jobs pipeline) in
  let parallel = Driver.batch ~workers:4 (kernel_jobs pipeline) in
  check_int "job count" 8 (Array.length parallel.Driver.outcomes);
  Array.iteri
    (fun i seq_outcome ->
      let name = (List.nth Hir_kernels.Kernels.all i).Hir_kernels.Kernels.name in
      check_string
        (Printf.sprintf "%s: 4-worker output byte-identical to sequential" name)
        (verilog_of seq_outcome)
        (verilog_of parallel.Driver.outcomes.(i)))
    sequential.Driver.outcomes

let test_batch_warm_cache () =
  let cache = Cache.create ~dir:(fresh_dir ()) in
  let pipeline = Pipeline.default ~optimize:true in
  let cold = Driver.batch ~cache ~workers:4 (kernel_jobs pipeline) in
  let warm = Driver.batch ~cache ~workers:4 (kernel_jobs pipeline) in
  Array.iter
    (fun o ->
      match o with
      | Ok r -> check_bool "cold run misses" false r.Driver.from_cache
      | Error e -> Alcotest.failf "batch job failed: %s" (Driver.error_to_string e))
    cold.Driver.outcomes;
  Array.iteri
    (fun i o ->
      check_bool "warm run is a hit" true
        (match o with Ok r -> r.Driver.from_cache | Error _ -> false);
      check_string "warm output identical"
        (verilog_of cold.Driver.outcomes.(i))
        (verilog_of o))
    warm.Driver.outcomes;
  check_int "100% hits on the warm run" (Array.length warm.Driver.outcomes)
    (Cache.hits cache)

(* ------------------------------------------------------------------ *)
(* Top-function choice note                                            *)

let test_top_note () =
  (* task_parallel is a multi-function module; compiling its printed
     form without --top must succeed and say which function was chosen. *)
  let text =
    Ir.with_isolated_ids (fun () ->
        let m, _ = Hir_kernels.Taskparallel.build () in
        Printer.op_to_string m)
  in
  let o = compile_text ~pipeline:(Pipeline.default ~optimize:true) text in
  check_bool "note present" true (o.Driver.note <> None);
  check_string "chose the last function" "task_parallel" o.Driver.top_name

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)

let test_trace_spans_and_json () =
  let trace = Trace.create () in
  let pipeline = Pipeline.default ~optimize:true in
  (match
     Driver.compile_job ~trace
       (Driver.job_of_text ~pipeline ~name:"t.hir" (transpose_text ()))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compile failed: %s" (Driver.error_to_string e));
  let names = List.map (fun (s : Trace.span) -> s.Trace.sp_name) (Trace.spans trace) in
  List.iter
    (fun expected ->
      check_bool (Printf.sprintf "span %s present" expected) true (List.mem expected names))
    [ "parse"; "verify"; "pass:canonicalize"; "pass:unroll"; "emit"; "print" ];
  let json = Trace.to_chrome_json [ trace ] in
  let contains needle =
    let lh = String.length json and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "has traceEvents" true (contains "\"traceEvents\"");
  check_bool "has complete-span phase" true (contains "\"ph\":\"X\"");
  check_bool "has parse span" true (contains "\"name\":\"parse\"")

let () =
  Alcotest.run "driver"
    [
      ( "pipeline",
        [
          Alcotest.test_case "roundtrip" `Quick test_pipeline_roundtrip;
          Alcotest.test_case "normalization" `Quick test_pipeline_normalization;
          Alcotest.test_case "errors" `Quick test_pipeline_errors;
          Alcotest.test_case "to-passes" `Quick test_pipeline_to_passes;
        ] );
      ( "instrumentation",
        [ Alcotest.test_case "events-match-stats" `Quick test_instrumentation ] );
      ( "cache",
        [
          Alcotest.test_case "hit-and-invalidation" `Quick test_cache_hit_and_invalidation;
          Alcotest.test_case "key" `Quick test_cache_key;
          Alcotest.test_case "damaged-entry-degrades-to-miss" `Quick
            test_cache_damaged_entry_degrades_to_miss;
          Alcotest.test_case "errors-are-diagnostics" `Quick
            test_compile_job_errors_are_diagnostics;
        ] );
      ( "batch",
        [
          Alcotest.test_case "scheduler-order" `Quick test_scheduler_order;
          Alcotest.test_case "scheduler-exception" `Quick test_scheduler_exception;
          Alcotest.test_case "deterministic-4-workers" `Quick test_batch_deterministic;
          Alcotest.test_case "warm-cache" `Quick test_batch_warm_cache;
        ] );
      ("top", [ Alcotest.test_case "implicit-choice-note" `Quick test_top_note ]);
      ("trace", [ Alcotest.test_case "spans-and-json" `Quick test_trace_spans_and_json ]);
    ]
