(* Per-job guards: wall-clock deadlines and work budgets.

   OCaml domains cannot be interrupted asynchronously, so the guard is
   cooperative: the driver calls [tick] at stage boundaries (after
   parse, after each pass, after emit/print), and a job that overruns
   its limits raises [Exhausted] at the next checkpoint.  That turns a
   runaway compile into a structured [Job_timeout]-style diagnostic the
   batch scheduler can report per job, instead of a hung batch.

   Granularity: a single pass that never returns cannot be preempted —
   the rewrite driver's round/application backstops (lib/ir/rewrite)
   bound that layer, and the guard bounds everything stitched together
   above it.  Work budgets count checkpoints (≈ pipeline stages), a
   scheduling-independent measure for tests that want determinism
   without wall clocks. *)

type limits = {
  deadline_s : float option;  (* wall-clock budget for one attempt *)
  work_budget : int option;  (* max checkpoints for one attempt *)
}

let no_limits = { deadline_s = None; work_budget = None }

exception Exhausted of { job : string; reason : string }

(* Raised at a checkpoint when the job's cancellation flag was set
   (client disconnect, explicit cancel frame).  Distinct from
   [Exhausted] so the driver can report "cancelled" rather than
   "timeout" — the input was fine, the caller just stopped caring. *)
exception Cancelled of { job : string }

type t = {
  g_job : string;
  g_limits : limits;
  g_cancel : bool Atomic.t option;  (* set from another domain *)
  g_started : float;
  mutable g_work : int;
}

let create ~job ?cancel limits =
  {
    g_job = job;
    g_limits = limits;
    g_cancel = cancel;
    g_started = Unix.gettimeofday ();
    g_work = 0;
  }

let elapsed g = Unix.gettimeofday () -. g.g_started

let check g =
  (match g.g_cancel with
  | Some flag when Atomic.get flag -> raise (Cancelled { job = g.g_job })
  | _ -> ());
  (match g.g_limits.deadline_s with
  | Some limit when elapsed g > limit ->
    raise
      (Exhausted
         {
           job = g.g_job;
           reason =
             Printf.sprintf "deadline of %.3fs exceeded (%.3fs elapsed)" limit
               (elapsed g);
         })
  | _ -> ());
  match g.g_limits.work_budget with
  | Some budget when g.g_work > budget ->
    raise
      (Exhausted
         {
           job = g.g_job;
           reason =
             Printf.sprintf "work budget of %d checkpoints exceeded (%d spent)"
               budget g.g_work;
         })
  | _ -> ()

let tick ?(work = 1) g =
  g.g_work <- g.g_work + work;
  check g
