examples/precision_optimization.ml: Array Bitvec Diagnostic Format Hir_codegen Hir_dialect Hir_ir Hir_kernels Hir_resources Interp Ir List Ops Precision_opt Printf String Typ Verify_schedule
