lib/codegen/names.ml: Buffer Hashtbl Hir_ir List Printf String
