(* Registry of external ("blackbox") modules (paper Section 5.4).

   An external function in HIR is declared with an explicit schedule
   signature (argument and result delays) and no body.  For this repo's
   purposes each extern also carries a behavioural model so that the
   interpreter and the RTL simulator can execute designs that use it —
   standing in for the vendor IP the paper links against. *)

type impl = {
  latency : int;  (* result delay in cycles *)
  arg_widths : int list;
  result_width : int;
  eval : Bitvec.t list -> Bitvec.t;  (* combinational function of the inputs *)
}

let registry : (string, impl) Hashtbl.t = Hashtbl.create 8

let register ~name impl = Hashtbl.replace registry name impl

let lookup name = Hashtbl.find_opt registry name

let lookup_exn name =
  match lookup name with
  | Some impl -> impl
  | None -> failwith ("no behavioural model registered for extern module '" ^ name ^ "'")

(* A pipelined integer multiplier, the example of Figure 2. *)
let register_standard () =
  register ~name:"mult"
    {
      latency = 2;
      arg_widths = [ 32; 32 ];
      result_width = 32;
      eval = (function [ a; b ] -> Bitvec.mul a b | _ -> failwith "mult arity");
    };
  register ~name:"mult3"
    {
      latency = 3;
      arg_widths = [ 32; 32 ];
      result_width = 32;
      eval = (function [ a; b ] -> Bitvec.mul a b | _ -> failwith "mult3 arity");
    }
