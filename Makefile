# Convenience targets around dune; `make check` is the tier-1 gate
# plus a smoke run of the compilation service over examples/ and the
# built-in kernels.

SMOKE_DESIGNS := examples/designs/transpose.hir examples/designs/stencil_1d.hir \
                 examples/designs/fifo.hir

.PHONY: all build test check fuzz bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + an end-to-end `hirc batch` smoke over the textual
# example designs and every built-in kernel (4 workers, cached,
# traced), exercising parse -> verify -> passes -> emit for real,
# plus a bounded deterministic fuzz pass over the frontend.
check: build test
	dune exec bin/hirc.exe -- batch $(SMOKE_DESIGNS) --kernels -j 4 \
	  --cache-dir _build/.hirc-smoke-cache --trace _build/smoke.trace.json \
	  -o _build/smoke-verilog
	dune exec bin/hirc.exe -- fuzz 2000 --seed 1
	dune exec bench/main.exe -- --canonicalize-scaling
	dune exec bench/main.exe -- --sim-scaling
	@echo "make check: OK"

# The acceptance campaign from the never-crash contract: 10k mutated
# inputs through the frontend and 10k through the full pipeline, both
# seeded and deterministic.  Exits nonzero on any non-diagnostic crash.
fuzz: build
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1
	dune exec bin/hirc.exe -- fuzz 10000 --seed 1 --full

# Machine-readable benchmark results for tracking the perf trajectory.
bench-json:
	dune exec bench/main.exe -- --table 6 --json bench-results.json

clean:
	dune clean
