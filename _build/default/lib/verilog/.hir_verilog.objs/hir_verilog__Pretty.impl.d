lib/verilog/pretty.ml: Ast Bitvec Format List Printf String
