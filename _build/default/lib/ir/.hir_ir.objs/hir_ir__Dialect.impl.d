lib/ir/dialect.ml: Diagnostic Hashtbl Ir List String
