(* Schedule verification demo (paper Section 6.1, Figures 1 and 2):
   two intentionally broken designs and the compile-time diagnostics
   the schedule verifier produces for them.

     dune exec examples/scheduling_errors.exe *)

open Hir_ir
open Hir_dialect

let loc file line col = Location.file ~file ~line ~col

(* Figure 1a: an array add whose write consumes the induction variable
   one cycle after the pipelined loop has already incremented it. *)
let err_add () =
  let m = Builder.create_module () in
  let memref port = Types.memref ~dims:[ 128 ] ~elem:Typ.i32 ~port () in
  let _ =
    Builder.func m ~name:"Array_Add"
      ~args:
        [
          Builder.arg "A" (memref Types.Read);
          Builder.arg "B" (memref Types.Read);
          Builder.arg "C" (memref Types.Write);
        ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let c0 = Builder.constant b 0 in
          let c1 = Builder.constant b 1 in
          let c128 = Builder.constant b 128 in
          let _ =
            Builder.for_loop b ~iv_width:8 ~iv_hint:"i" ~lb:c0 ~ub:c128 ~step:c1
              ~at:Builder.(t @>> 1)
              ~loc:(loc "err_add.mlir" 8 3)
              (fun b ~iv:i ~ti ->
                Builder.yield b ~at:Builder.(ti @>> 1);
                let va = Builder.mem_read b a [ i ] ~at:Builder.(ti @>> 0) in
                let vb = Builder.mem_read b bb [ i ] ~at:Builder.(ti @>> 0) in
                let vc = Builder.add b va vb in
                (* BUG: address %i read at ti+1 in an II=1 loop. *)
                Builder.mem_write b vc c [ i ] ~at:Builder.(ti @>> 1)
                  ~loc:(loc "err_add.mlir" 13 5))
          in
          Builder.return_ b []
        | _ -> assert false)
  in
  m

(* Figure 2a: a multiply-accumulate where the multiplier was upgraded
   from two to three pipeline stages but the accumulator path still
   delays by two. *)
let mac_imbalance () =
  let m = Builder.create_module () in
  let mult =
    Builder.extern_func m ~name:"mult3"
      ~args:[ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32 ]
      ~results:[ (Typ.i32, 3) ]
  in
  let _ =
    Builder.func m ~name:"mac"
      ~args:
        [ Builder.arg "a" Typ.i32; Builder.arg "b" Typ.i32; Builder.arg "c" Typ.i32 ]
      ~results:[ (Typ.i32, 3) ]
      (fun b args t ->
        match args with
        | [ a; bb; c ] ->
          let p = List.hd (Builder.call b ~callee:mult [ a; bb ] ~at:Builder.(t @>> 0)) in
          let c2 =
            Builder.delay b c ~by:2 ~at:Builder.(t @>> 0) ~loc:(loc "mac.mlir" 8 8)
          in
          let r = Builder.add b p c2 ~loc:(loc "mac.mlir" 9 10) in
          Builder.return_ b [ r ]
        | _ -> assert false)
  in
  m

let report title m =
  Printf.printf "=== %s ===\n" title;
  let engine = Diagnostic.Engine.create () in
  Verify_schedule.verify_module engine m;
  if Diagnostic.Engine.has_errors engine then
    print_endline (Diagnostic.Engine.to_string engine)
  else print_endline "(verifies cleanly)";
  print_newline ()

let () =
  Ops.register ();
  report "Figure 1: mis-scheduled address in a pipelined loop" (err_add ());
  report "Figure 2: pipeline imbalance after upgrading the multiplier" (mac_imbalance ());
  print_endline
    "Both errors are caught at compile time; in a traditional HDL these\n\
     designs would silently compute wrong values in simulation."
