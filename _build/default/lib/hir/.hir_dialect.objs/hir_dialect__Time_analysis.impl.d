lib/hir/time_analysis.ml: Diagnostic Hashtbl Hir_ir Ir List Location Ops Option Printf Types
