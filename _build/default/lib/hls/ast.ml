(* Source language of the baseline HLS compiler: a small C-like
   language with arrays, static loops and Vivado-style pragmas
   (PIPELINE with a target II, UNROLL, ARRAY_PARTITION).

   This plays the role of the C++ kernels fed to Vivado HLS in the
   paper's evaluation; the compiler in [Compiler] performs the classic
   HLS phases (dependence analysis, allocation, list / iterative-modulo
   scheduling) and then emits HIR with the schedule made explicit —
   the integration path Section 9.2 of the paper proposes for HLS
   front-ends. *)

type ty = { width : int }

let i32 = { width = 32 }
let ty w = { width = w }

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type expr =
  | Int of int
  | Var of string  (* loop variable, temp, or scalar parameter *)
  | Load of string * expr list
  | Binop of binop * expr * expr

type stmt =
  | Let of string * ty * expr
  | Store of string * expr list * expr
  | For of for_loop

and for_loop = {
  var : string;
  var_ty : ty;
  lb : int;
  ub : int;  (* exclusive *)
  pipeline : int option;  (* PIPELINE pragma with target II *)
  unroll : bool;  (* UNROLL pragma (full) *)
  dep_free : string list;
      (* DEPENDENCE inter false pragma: arrays asserted to carry no
         loop-carried dependence *)
  body : stmt list;
}

type storage = Auto | Bram | Lutram | Reg_file

type array_decl = {
  arr_name : string;
  elem_width : int;
  dims : int list;
  partition : int list;  (* dims fully partitioned (ARRAY_PARTITION complete) *)
  storage : storage;
}

type direction = In | Out

type param =
  | P_array of direction * array_decl
  | P_scalar of string * ty

type func = {
  fn_name : string;
  params : param list;
  locals : array_decl list;
  body : stmt list;
}

(* ------------------------------------------------------------------ *)
(* Construction helpers (the "C source") *)

let v name = Var name
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( &: ) a b = Binop (And, a, b)
let load arr idx = Load (arr, idx)
let store arr idx value = Store (arr, idx, value)
let let_ ?(ty = i32) name e = Let (name, ty, e)

let for_ ?(var_ty = i32) ?pipeline ?(unroll = false) ?(dep_free = []) var ~lb ~ub body =
  For { var; var_ty; lb; ub; pipeline; unroll; dep_free; body }

let array ?(partition = []) ?(storage = Auto) ~width name dims =
  { arr_name = name; elem_width = width; dims; partition; storage }

(* ------------------------------------------------------------------ *)
(* Substitution (used by full unrolling) *)

let rec subst_expr name value = function
  | Int _ as e -> e
  | Var n when n = name -> Int value
  | Var _ as e -> e
  | Load (arr, idx) -> Load (arr, List.map (subst_expr name value) idx)
  | Binop (op, a, b) -> Binop (op, subst_expr name value a, subst_expr name value b)

let rec subst_stmt name value = function
  | Let (n, t, e) -> Let (n, t, subst_expr name value e)
  | Store (arr, idx, e) ->
    Store (arr, List.map (subst_expr name value) idx, subst_expr name value e)
  | For f ->
    For { f with body = List.map (subst_stmt name value) f.body }

(* Rename temporaries to keep SSA names unique after unrolling. *)
let rec rename_stmt suffix renamed = function
  | Let (n, t, e) ->
    let n' = n ^ suffix in
    (Let (n', t, rename_expr renamed e), (n, n') :: renamed)
  | Store (arr, idx, e) ->
    (Store (arr, List.map (rename_expr renamed) idx, rename_expr renamed e), renamed)
  | For f ->
    let body, _ =
      List.fold_left
        (fun (acc, ren) s ->
          let s', ren' = rename_stmt suffix ren s in
          (s' :: acc, ren'))
        ([], renamed) f.body
    in
    (For { f with body = List.rev body }, renamed)

and rename_expr renamed = function
  | Int _ as e -> e
  | Var n -> (
    match List.assoc_opt n renamed with Some n' -> Var n' | None -> Var n)
  | Load (arr, idx) -> Load (arr, List.map (rename_expr renamed) idx)
  | Binop (op, a, b) -> Binop (op, rename_expr renamed a, rename_expr renamed b)

(* Fully unroll every loop marked UNROLL. *)
let rec unroll_stmt s =
  match s with
  | Let _ | Store _ -> [ s ]
  | For f when f.unroll ->
    let body = List.concat_map unroll_stmt f.body in
    List.concat_map
      (fun k ->
        let suffix = Printf.sprintf "_%s%d" f.var k in
        let substituted = List.map (subst_stmt f.var k) body in
        let renamed, _ =
          List.fold_left
            (fun (acc, ren) s ->
              let s', ren' = rename_stmt suffix ren s in
              (s' :: acc, ren'))
            ([], []) substituted
        in
        List.rev renamed)
      (List.init (f.ub - f.lb) (fun i -> f.lb + i))
  | For f -> [ For { f with body = List.concat_map unroll_stmt f.body } ]

let unroll_func f = { f with body = List.concat_map unroll_stmt f.body }

(* Constant folding — part of the "LLVM-style" middle end. *)
let rec fold_expr = function
  | Int _ as e -> e
  | Var _ as e -> e
  | Load (arr, idx) -> Load (arr, List.map fold_expr idx)
  | Binop (op, a, b) -> (
    match (fold_expr a, fold_expr b) with
    | Int x, Int y ->
      let r =
        match op with
        | Add -> x + y
        | Sub -> x - y
        | Mul -> x * y
        | And -> x land y
        | Or -> x lor y
        | Xor -> x lxor y
        | Shl -> x lsl y
        | Shr -> x lsr y
        | Lt -> if x < y then 1 else 0
        | Le -> if x <= y then 1 else 0
        | Gt -> if x > y then 1 else 0
        | Ge -> if x >= y then 1 else 0
        | Eq -> if x = y then 1 else 0
        | Ne -> if x <> y then 1 else 0
      in
      Int r
    | a, Int 0 when op = Add || op = Sub -> a
    | Int 0, b when op = Add -> b
    | a, Int 1 when op = Mul -> a
    | Int 1, b when op = Mul -> b
    (* Strength reduction: multiply by a power of two becomes a
       shift (as Vivado's middle end does). *)
    | a, Int c when op = Mul && c > 1 && c land (c - 1) = 0 ->
      let rec log2 k v = if v = 1 then k else log2 (k + 1) (v / 2) in
      Binop (Shl, a, Int (log2 0 c))
    | Int c, b when op = Mul && c > 1 && c land (c - 1) = 0 ->
      let rec log2 k v = if v = 1 then k else log2 (k + 1) (v / 2) in
      Binop (Shl, b, Int (log2 0 c))
    | a, b -> Binop (op, a, b))

let rec fold_stmt = function
  | Let (n, t, e) -> Let (n, t, fold_expr e)
  | Store (arr, idx, e) -> Store (arr, List.map fold_expr idx, fold_expr e)
  | For f -> For { f with body = List.map fold_stmt f.body }

let fold_func f = { f with body = List.map fold_stmt f.body }
