# Convenience targets around dune; `make check` is the tier-1 gate
# plus a smoke run of the compilation service over examples/ and the
# built-in kernels.

SMOKE_DESIGNS := examples/designs/transpose.hir examples/designs/stencil_1d.hir \
                 examples/designs/fifo.hir

.PHONY: all build test check bench-json clean

all: build

build:
	dune build @all

test:
	dune runtest

# Build + tests + an end-to-end `hirc batch` smoke over the textual
# example designs and every built-in kernel (4 workers, cached,
# traced), exercising parse -> verify -> passes -> emit for real.
check: build test
	dune exec bin/hirc.exe -- batch $(SMOKE_DESIGNS) --kernels -j 4 \
	  --cache-dir _build/.hirc-smoke-cache --trace _build/smoke.trace.json \
	  -o _build/smoke-verilog
	@echo "make check: OK"

# Machine-readable benchmark results for tracking the perf trajectory.
bench-json:
	dune exec bench/main.exe -- --table 6 --json bench-results.json

clean:
	dune clean
