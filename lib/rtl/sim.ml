(* Two-phase cycle-accurate simulator for the flattened synthesizable
   subset:

     phase 1  settle combinational logic (assigns in topological order)
     phase 2  evaluate all always @(posedge clk) statements against the
              settled state, then commit register and memory updates

   Width semantics follow Verilog's context-determined evaluation as
   documented in [Hir_verilog.Ast].

   Two engines share the same interface:

   - [Compiled] (the default): a compile-once, run-many engine.  At
     [create] time every signal name is resolved to an integer slot in
     a dense state array, every expression is compiled to a closure
     with its context width precomputed, and always-blocks are compiled
     with a reusable update buffer.  [settle] is event-driven: the
     assign dependency graph is built once and per cycle only assigns
     whose source slots actually changed are re-evaluated (dirty-set
     propagation in topological order).  Signals of width <= 63 live
     unboxed on native OCaml ints with masking; wider signals fall back
     to [Bitvec].

   - [Reference]: the original tree-walking interpreter, kept as the
     oracle for the compiled engine (see test_sim_equiv) and as the
     executable specification of the width semantics. *)

open Hir_verilog.Ast

exception Sim_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

(* Fault-injection hook, called once per settle of the *compiled*
   engine only — the reference walker stays clean because it is the
   fallback the harness degrades to on [Sim_error].  The driver's fault
   subsystem (lib/driver/faults.ml, which this library must not depend
   on) installs a callback that raises [Sim_error] on an injected
   "sim.settle" fault; the default is a no-op closure, so the cost when
   disabled is one ref read per settle. *)
let settle_fault_hook : (unit -> unit) ref = ref (fun () -> ())

type assertion_failure = { at_cycle : int; message : string }

(* ------------------------------------------------------------------ *)
(* Shared netlist analysis                                             *)

(* Wires read by an expression (for the dependency graph); memory reads
   depend on the address expression only — the memory contents are
   state. *)
let rec wire_deps expr acc =
  match expr with
  | Const _ -> acc
  | Ref name -> name :: acc
  | Index (_, a) -> wire_deps a acc
  | Slice (e, _, _) -> wire_deps e acc
  | Unop (_, e) -> wire_deps e acc
  | Binop (_, a, b) -> wire_deps a (wire_deps b acc)
  | Ternary (c, a, b) -> wire_deps c (wire_deps a (wire_deps b acc))
  | Concat es -> List.fold_left (fun acc e -> wire_deps e acc) acc es

(* Memories read by an expression — the state half of the dependency
   story that [wire_deps] deliberately excludes.  The compiled engine
   uses this to re-settle reads of a memory after a write commits. *)
let rec mem_reads expr acc =
  match expr with
  | Const _ | Ref _ -> acc
  | Index (name, a) -> mem_reads a (name :: acc)
  | Slice (e, _, _) -> mem_reads e acc
  | Unop (_, e) -> mem_reads e acc
  | Binop (_, a, b) -> mem_reads a (mem_reads b acc)
  | Ternary (c, a, b) -> mem_reads c (mem_reads a (mem_reads b acc))
  | Concat es -> List.fold_left (fun acc e -> mem_reads e acc) acc es

(* Statement-level variants for always-block statements: every signal
   (resp. memory) read anywhere in the statement — conditions,
   right-hand sides, and write addresses.  The opcode engine uses these
   as the wake-up set of its event-driven clock blocks. *)
let rec stmt_wire_deps stmt acc =
  match stmt with
  | Nonblocking (Lref _, e) -> wire_deps e acc
  | Nonblocking (Lindex (_, addr), e) -> wire_deps addr (wire_deps e acc)
  | If (c, then_s, else_s) ->
    let acc = List.fold_left (fun a s -> stmt_wire_deps s a) acc then_s in
    let acc = List.fold_left (fun a s -> stmt_wire_deps s a) acc else_s in
    wire_deps c acc
  | Assert_stmt { cond; _ } -> wire_deps cond acc

let rec stmt_mem_reads stmt acc =
  match stmt with
  | Nonblocking (Lref _, e) -> mem_reads e acc
  | Nonblocking (Lindex (_, addr), e) -> mem_reads addr (mem_reads e acc)
  | If (c, then_s, else_s) ->
    let acc = List.fold_left (fun a s -> stmt_mem_reads s a) acc then_s in
    let acc = List.fold_left (fun a s -> stmt_mem_reads s a) acc else_s in
    mem_reads c acc
  | Assert_stmt { cond; _ } -> mem_reads cond acc

(* Registers a statement writes (under any condition). *)
let rec stmt_reg_writes stmt acc =
  match stmt with
  | Nonblocking (Lref name, _) -> name :: acc
  | Nonblocking (Lindex _, _) -> acc
  | If (_, then_s, else_s) ->
    let acc = List.fold_left (fun a s -> stmt_reg_writes s a) acc then_s in
    List.fold_left (fun a s -> stmt_reg_writes s a) acc else_s
  | Assert_stmt _ -> acc

(* Memories a statement writes (under any condition), with the address
   expression of each write. *)
let rec stmt_mem_writes stmt acc =
  match stmt with
  | Nonblocking (Lref _, _) -> acc
  | Nonblocking (Lindex (name, addr), _) -> (name, addr) :: acc
  | If (_, then_s, else_s) ->
    let acc = List.fold_left (fun a s -> stmt_mem_writes s a) acc then_s in
    List.fold_left (fun a s -> stmt_mem_writes s a) acc else_s
  | Assert_stmt _ -> acc


(* Topologically sort the assigns (edge from each dependency that is
   itself an assign target).  [is_comb name] says whether [name] is a
   combinational (non-reg) signal; register reads do not create edges.
   On a combinational loop the full cycle path is reported. *)
let topo_sort_assigns ~is_comb assign_list =
  let target_tbl = Hashtbl.create 64 in
  List.iter (fun (t, e) -> Hashtbl.replace target_tbl t e) assign_list;
  let visited = Hashtbl.create 64 in
  let sorted = ref [] in
  let rec visit ~stack target =
    match Hashtbl.find_opt visited target with
    | Some `Done -> ()
    | Some `In_progress ->
      (* [stack] holds the in-progress chain, most recent first; the
         loop is the suffix starting at [target]. *)
      let chain = List.rev stack in
      let rec from_target = function
        | x :: _ as l when x = target -> l
        | _ :: tl -> from_target tl
        | [] -> []
      in
      let path = from_target chain @ [ target ] in
      fail "combinational loop: %s" (String.concat " -> " path)
    | None ->
      Hashtbl.replace visited target `In_progress;
      let expr = Hashtbl.find target_tbl target in
      List.iter
        (fun dep ->
          if is_comb dep && Hashtbl.mem target_tbl dep then
            visit ~stack:(target :: stack) dep)
        (wire_deps expr []);
      Hashtbl.replace visited target `Done;
      sorted := (target, expr) :: !sorted
  in
  List.iter (fun (t, _) -> visit ~stack:[] t) assign_list;
  List.rev !sorted

(* Per-run statistics, surfaced through [Pass.record_counter] so
   [hirc --stats] and the Chrome traces cover simulation too. *)
type stats = {
  st_cycles : int;
  st_settles : int;
  st_assigns_evaluated : int;
  st_assigns_skipped : int;
  st_fastpath_evaluated : int;  (* evaluations whose target is unboxed *)
  st_narrow_signals : int;  (* width <= 63, native-int representation *)
  st_wide_signals : int;
}

(* ------------------------------------------------------------------ *)
(* Runtime pieces shared by the compiled engines                       *)

(* Low [w] bits of a native int; [mask 63] is all 63 OCaml int bits
   (-1), so width-63 values use bit 62 as the OCaml sign bit.  Every
   arithmetic case below stays exact on that representation because
   OCaml ints wrap modulo 2^63 and [land] masks bit patterns. *)
let mask w = if w >= 63 then -1 else (1 lsl w) - 1

(* Unsigned comparison of two masked ints: flipping the sign bit maps
   the unsigned 63-bit order onto the signed order. *)
let ucmp a b = Int.compare (a lxor min_int) (b lxor min_int)

(* Reusable nonblocking-update buffer: parallel growable arrays, so a
   clock edge allocates nothing in steady state.  Kinds: 0 narrow
   reg, 1 wide reg, 2 narrow mem cell, 3 wide mem cell. *)
type ubuf = {
  mutable u_len : int;
  mutable u_kind : int array;
  mutable u_a : int array;  (* reg: value-array index; mem: mem index *)
  mutable u_b : int array;  (* reg: dependency id; mem: cell address *)
  mutable u_iv : int array;
  mutable u_bv : Bitvec.t array;
}

let dummy_bv = Bitvec.zero 1

let push buf kind a b iv bv =
  let n = buf.u_len in
  if n = Array.length buf.u_kind then begin
    let grow ar z =
      let nar = Array.make (2 * n) z in
      Array.blit ar 0 nar 0 n;
      nar
    in
    buf.u_kind <- grow buf.u_kind 0;
    buf.u_a <- grow buf.u_a 0;
    buf.u_b <- grow buf.u_b 0;
    buf.u_iv <- grow buf.u_iv 0;
    buf.u_bv <- grow buf.u_bv dummy_bv
  end;
  buf.u_kind.(n) <- kind;
  buf.u_a.(n) <- a;
  buf.u_b.(n) <- b;
  buf.u_iv.(n) <- iv;
  buf.u_bv.(n) <- bv;
  buf.u_len <- n + 1

let fresh_ubuf () =
  {
    u_len = 0;
    u_kind = Array.make 64 0;
    u_a = Array.make 64 0;
    u_b = Array.make 64 0;
    u_iv = Array.make 64 0;
    u_bv = Array.make 64 dummy_bv;
  }

type rt = {
  mutable cycle : int;
  mutable failures : assertion_failure list;
  mutable settles : int;
  mutable evaluated : int;
  mutable skipped : int;
  mutable fast_evaluated : int;
}

let fresh_rt () =
  { cycle = 0; failures = []; settles = 0; evaluated = 0; skipped = 0; fast_evaluated = 0 }

(* ================================================================== *)
(* Reference engine: the original tree walker                          *)

module Reference = struct
  type signal = {
    mutable value : Bitvec.t;
    width : int;
    is_reg : bool;
  }

  type memory = { cells : Bitvec.t array; elem_width : int }

  type t = {
    signals : (string, signal) Hashtbl.t;
    memories : (string, memory) Hashtbl.t;
    assigns : (string * expr) list;  (* topologically sorted *)
    always : stmt list;
    inputs : string list;
    outputs : string list;
    mutable cycle : int;
    mutable failures : assertion_failure list;
    mutable settles : int;
  }

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)

  let signal_width t name =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.width
    | None -> (
      match Hashtbl.find_opt t.memories name with
      | Some m -> m.elem_width
      | None -> fail "unknown signal %s" name)

  let create (flat : Flatten.flat) =
    let signals = Hashtbl.create 256 in
    let memories = Hashtbl.create 16 in
    let assigns = ref [] in
    let always_rev = ref [] in
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } ->
          Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = false }
        | Reg_decl { name; width } ->
          Hashtbl.replace signals name { value = Bitvec.zero width; width; is_reg = true }
        | Mem_decl { name; width; depth; _ } ->
          Hashtbl.replace memories name
            { cells = Array.make depth (Bitvec.zero width); elem_width = width }
        | Assign { target; expr } -> assigns := (target, expr) :: !assigns
        | Always_ff stmts -> always_rev := stmts :: !always_rev
        | Comment _ -> ()
        | Instance _ -> fail "simulator requires a flattened design")
      flat.flat_items;
    let assign_list = List.rev !assigns in
    let is_comb name =
      match Hashtbl.find_opt signals name with
      | Some s -> not s.is_reg
      | None -> false
    in
    {
      signals;
      memories;
      assigns = topo_sort_assigns ~is_comb assign_list;
      always = List.concat (List.rev !always_rev);
      inputs = flat.flat_inputs;
      outputs = flat.flat_outputs;
      cycle = 0;
      failures = [];
      settles = 0;
    }

  (* ---------------------------------------------------------------- *)
  (* Expression evaluation                                             *)

  let natural t expr = natural_width ~signal_width:(signal_width t) expr

  let rec eval t ~width expr : Bitvec.t =
    match expr with
    | Const b -> Bitvec.resize ~width b
    | Ref name -> (
      match Hashtbl.find_opt t.signals name with
      | Some s -> Bitvec.resize ~width s.value
      | None -> fail "read of unknown signal %s" name)
    | Index (name, addr) -> (
      match Hashtbl.find_opt t.memories name with
      | Some m ->
        let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
        if a < Array.length m.cells then Bitvec.resize ~width m.cells.(a)
        else Bitvec.zero width
      | None -> fail "indexing non-memory %s" name)
    | Slice (e, hi, lo) ->
      let v = eval t ~width:(max (hi + 1) (natural t e)) e in
      Bitvec.resize ~width (Bitvec.extract ~hi ~lo v)
    | Unop (Not, e) -> Bitvec.lognot (eval t ~width e)
    | Unop (Red_or, e) ->
      let v = eval t ~width:(max 1 (natural t e)) e in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero v)))
    | Unop (Red_and, e) ->
      let w = max 1 (natural t e) in
      let v = eval t ~width:w e in
      Bitvec.resize ~width (Bitvec.of_bool (Bitvec.equal v (Bitvec.ones w)))
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
      let x = eval t ~width a and y = eval t ~width b in
      let f =
        match op with
        | Add -> Bitvec.add
        | Sub -> Bitvec.sub
        | Mul -> Bitvec.mul
        | And -> Bitvec.logand
        | Or -> Bitvec.logor
        | Xor -> Bitvec.logxor
        | _ -> assert false
      in
      f x y
    | Binop (Shl, a, b) ->
      let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
      Bitvec.shift_left (eval t ~width a) (min shift width)
    | Binop (Shr, a, b) ->
      let shift = Bitvec.to_int (eval t ~width:(max 1 (natural t b)) b) in
      Bitvec.shift_right_logical (eval t ~width a) (min shift width)
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let w = max 1 (max (natural t a) (natural t b)) in
      let x = eval t ~width:w a and y = eval t ~width:w b in
      let c = Bitvec.compare x y in
      let r =
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq -> c = 0
        | Ne -> c <> 0
        | _ -> assert false
      in
      Bitvec.resize ~width (Bitvec.of_bool r)
    | Binop (Log_and, a, b) ->
      let x = eval t ~width:(max 1 (natural t a)) a in
      let y = eval t ~width:(max 1 (natural t b)) b in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) && not (Bitvec.is_zero y)))
    | Binop (Log_or, a, b) ->
      let x = eval t ~width:(max 1 (natural t a)) a in
      let y = eval t ~width:(max 1 (natural t b)) b in
      Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) || not (Bitvec.is_zero y)))
    | Ternary (c, a, b) ->
      let cond = eval t ~width:(max 1 (natural t c)) c in
      if Bitvec.is_zero cond then eval t ~width b else eval t ~width a
    | Concat [] -> fail "empty concatenation"
    | Concat (e0 :: rest) ->
      let part e = eval t ~width:(max 1 (natural t e)) e in
      let v = List.fold_left (fun acc e -> Bitvec.concat acc (part e)) (part e0) rest in
      Bitvec.resize ~width v

  let eval_bool t expr = not (Bitvec.is_zero (eval t ~width:(max 1 (natural t expr)) expr))

  (* ---------------------------------------------------------------- *)
  (* Cycle execution                                                   *)

  type update =
    | Set_reg of string * Bitvec.t
    | Set_mem of string * int * Bitvec.t

  let rec run_stmt t acc stmt =
    match stmt with
    | Nonblocking (Lref name, e) ->
      let w = signal_width t name in
      Set_reg (name, eval t ~width:w e) :: acc
    | Nonblocking (Lindex (name, addr), e) -> (
      match Hashtbl.find_opt t.memories name with
      | Some m ->
        let a = Bitvec.to_int (eval t ~width:(max 1 (natural t addr)) addr) in
        Set_mem (name, a, eval t ~width:m.elem_width e) :: acc
      | None -> fail "write to non-memory %s" name)
    | If (c, then_s, else_s) ->
      if eval_bool t c then List.fold_left (run_stmt t) acc then_s
      else List.fold_left (run_stmt t) acc else_s
    | Assert_stmt { cond; message } ->
      if not (eval_bool t cond) then
        t.failures <- { at_cycle = t.cycle; message } :: t.failures;
      acc

  let settle t =
    t.settles <- t.settles + 1;
    List.iter
      (fun (target, expr) ->
        let s = Hashtbl.find t.signals target in
        s.value <- eval t ~width:s.width expr)
      t.assigns

  let commit t updates =
    List.iter
      (fun u ->
        match u with
        | Set_reg (name, v) -> (Hashtbl.find t.signals name).value <- v
        | Set_mem (name, a, v) ->
          let m = Hashtbl.find t.memories name in
          if a < Array.length m.cells then m.cells.(a) <- v
          else
            t.failures <-
              { at_cycle = t.cycle; message = Printf.sprintf "write past end of %s" name }
              :: t.failures)
      updates

  (* Drive an input signal (before [step]). *)
  let set_input t name v =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.value <- Bitvec.resize ~width:s.width v
    | None -> fail "unknown input %s" name

  let peek t name =
    match Hashtbl.find_opt t.signals name with
    | Some s -> s.value
    | None -> fail "unknown signal %s" name

  (* Clock edge against already-settled combinational state. *)
  let clock t =
    let updates = List.fold_left (run_stmt t) [] t.always in
    commit t updates;
    t.cycle <- t.cycle + 1

  let step t =
    settle t;
    clock t

  let settle_only t = settle t

  let failures t = List.rev t.failures
  let cycle t = t.cycle

  (* All named signals with their widths, for waveform dumping. *)
  let signal_names t =
    Hashtbl.fold (fun name s acc -> (name, s.width) :: acc) t.signals []
    |> List.sort compare

  let stats t =
    let n_assigns = List.length t.assigns in
    let narrow, wide =
      Hashtbl.fold
        (fun _ s (n, w) -> if s.width <= 63 then (n + 1, w) else (n, w + 1))
        t.signals (0, 0)
    in
    {
      st_cycles = t.cycle;
      st_settles = t.settles;
      st_assigns_evaluated = t.settles * n_assigns;
      st_assigns_skipped = 0;
      st_fastpath_evaluated = 0;
      st_narrow_signals = narrow;
      st_wide_signals = wide;
    }
end

(* ================================================================== *)
(* Compiled engine                                                     *)

module Compiled = struct
  type slot = {
    sl_name : string;
    sl_width : int;
    sl_is_reg : bool;
    sl_idx : int;  (* index into the narrow or wide value array *)
    sl_id : int;  (* dense id in the dependency graph *)
  }

  type mem_store = M_narrow of int array | M_wide of Bitvec.t array

  type mem = {
    m_name : string;
    m_elem_width : int;
    m_store : mem_store;
    m_id : int;  (* dependency-graph id: memory contents are a source *)
    m_pos : int;  (* index into the [mems] array, for update records *)
  }

  (* Compilation environment: name resolution plus the live state
     arrays the compiled closures read and write. *)
  type cenv = {
    ce_signals : (string, slot) Hashtbl.t;
    ce_mems : (string, mem) Hashtbl.t;
    ce_narrow : int array;
    ce_wide : Bitvec.t array;
  }

  type t = {
    env : cenv;
    rt : rt;
    buf : ubuf;
    mems : mem array;
    assign_eval : (unit -> unit) array;  (* topo order: eval, store, mark *)
    assign_fast : bool array;  (* target is narrow (unboxed) *)
    dirty : bool array;  (* per assign, same indexing *)
    deps : int array array;  (* slot id -> assign indices reading it *)
    always : (unit -> unit) array;
    inputs : string list;
    outputs : string list;
    n_narrow_signals : int;
    n_wide_signals : int;
  }

  (* ---------------------------------------------------------------- *)
  (* Expression compilation                                            *)

  let sig_width env name =
    match Hashtbl.find_opt env.ce_signals name with
    | Some s -> s.sl_width
    | None -> (
      match Hashtbl.find_opt env.ce_mems name with
      | Some m -> m.m_elem_width
      | None -> fail "unknown signal %s" name)

  let natural env expr = natural_width ~signal_width:(sig_width env) expr

  (* [compile_int env ~width e] compiles [e] to a closure producing its
     value at context [width] (1 <= width <= 63) as a masked native
     int.  [compile_bv] is the general boxed path for any width; each
     evaluation point picks a path by its own evaluation width, so a
     narrow context can still dive into wide subexpressions and vice
     versa. *)
  let rec compile_int env ~width e : unit -> int =
    let mw = mask width in
    match e with
    | Const b ->
      let v = Bitvec.to_int_trunc (Bitvec.resize ~width b) in
      fun () -> v
    | Ref name -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        let narrow = env.ce_narrow and wide = env.ce_wide in
        let idx = s.sl_idx in
        if s.sl_width > 63 then fun () -> Bitvec.to_int_trunc wide.(idx) land mw
        else if s.sl_width <= width then fun () -> narrow.(idx)
        else fun () -> narrow.(idx) land mw)
    | Index (name, addr) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let fa = compile_addr env addr in
        (match m.m_store with
        | M_narrow cells ->
          let depth = Array.length cells in
          if m.m_elem_width <= width then
            fun () ->
              let a = fa () in
              if a >= 0 && a < depth then cells.(a) else 0
          else
            fun () ->
              let a = fa () in
              if a >= 0 && a < depth then cells.(a) land mw else 0
        | M_wide cells ->
          let depth = Array.length cells in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then Bitvec.to_int_trunc cells.(a) land mw
            else 0))
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural env e1) in
      let m = mask (min (hi - lo + 1) width) in
      if wi <= 63 then
        let f = compile_int env ~width:wi e1 in
        fun () -> (f () lsr lo) land m
      else
        let f = compile_bv env ~width:wi e1 in
        fun () -> Bitvec.to_int_trunc (Bitvec.extract ~hi ~lo (f ())) land m
    | Unop (Not, e1) ->
      let f = compile_int env ~width e1 in
      fun () -> lnot (f ()) land mw
    | Unop (Red_or, e1) ->
      let f = compile_nonzero env e1 in
      fun () -> if f () then 1 else 0
    | Unop (Red_and, e1) -> (
      let wn = max 1 (natural env e1) in
      if wn <= 63 then
        let f = compile_int env ~width:wn e1 in
        let all = mask wn in
        fun () -> if f () = all then 1 else 0
      else
        let f = compile_bv env ~width:wn e1 in
        let all = Bitvec.ones wn in
        fun () -> if Bitvec.equal (f ()) all then 1 else 0)
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) -> (
      let fa = compile_int env ~width a and fb = compile_int env ~width b in
      match op with
      | Add -> fun () -> (fa () + fb ()) land mw
      | Sub -> fun () -> (fa () - fb ()) land mw
      | Mul -> fun () -> fa () * fb () land mw
      | And -> fun () -> fa () land fb ()
      | Or -> fun () -> fa () lor fb ()
      | Xor -> fun () -> fa () lxor fb ()
      | _ -> assert false)
    | Binop (Shl, a, b) ->
      let fa = compile_int env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        if k < 0 || k >= width then 0 else (fa () lsl k) land mw
    | Binop (Shr, a, b) ->
      let fa = compile_int env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        if k < 0 || k >= width then 0 else fa () lsr k
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) -> (
      let cmp = compile_compare env a b in
      match op with
      | Lt -> fun () -> if cmp () < 0 then 1 else 0
      | Le -> fun () -> if cmp () <= 0 then 1 else 0
      | Gt -> fun () -> if cmp () > 0 then 1 else 0
      | Ge -> fun () -> if cmp () >= 0 then 1 else 0
      | Eq -> fun () -> if cmp () = 0 then 1 else 0
      | Ne -> fun () -> if cmp () <> 0 then 1 else 0
      | _ -> assert false)
    | Binop (Log_and, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      fun () -> if fa () && fb () then 1 else 0
    | Binop (Log_or, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      fun () -> if fa () || fb () then 1 else 0
    | Ternary (c, a, b) ->
      let fc = compile_nonzero env c in
      let fa = compile_int env ~width a and fb = compile_int env ~width b in
      fun () -> if fc () then fa () else fb ()
    | Concat [] -> fail "empty concatenation"
    | Concat es ->
      let widths = List.map (fun e -> max 1 (natural env e)) es in
      let total = List.fold_left ( + ) 0 widths in
      if total <= 63 then begin
        (* Part i occupies bits [shift_i, shift_i + w_i); a lone
           width-63 part gets shift 0, so [lsl] stays in range. *)
        let fs = Array.of_list (List.map2 (fun e w -> compile_int env ~width:w e) es widths) in
        let ws = Array.of_list widths in
        let n = Array.length fs in
        let shifts = Array.make n 0 in
        let acc = ref 0 in
        for i = n - 1 downto 0 do
          shifts.(i) <- !acc;
          acc := !acc + ws.(i)
        done;
        let combine () =
          let v = ref 0 in
          for i = 0 to n - 1 do
            v := !v lor (fs.(i) () lsl shifts.(i))
          done;
          !v
        in
        if width >= total then combine else fun () -> combine () land mw
      end
      else
        let f = compile_concat_bv env es widths in
        fun () -> Bitvec.to_int_trunc (f ()) land mw

  and compile_bv env ~width e : unit -> Bitvec.t =
    match e with
    | Const b ->
      let v = Bitvec.resize ~width b in
      fun () -> v
    | Ref name -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        let narrow = env.ce_narrow and wide = env.ce_wide in
        let idx = s.sl_idx in
        if s.sl_width > 63 then
          if s.sl_width = width then fun () -> wide.(idx)
          else fun () -> Bitvec.resize ~width wide.(idx)
        else
          let sw = s.sl_width in
          fun () -> Bitvec.resize ~width (Bitvec.of_int ~width:sw narrow.(idx)))
    | Index (name, addr) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let fa = compile_addr env addr in
        let oob = Bitvec.zero width in
        (match m.m_store with
        | M_narrow cells ->
          let depth = Array.length cells and ew = m.m_elem_width in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then
              Bitvec.resize ~width (Bitvec.of_int ~width:ew cells.(a))
            else oob
        | M_wide cells ->
          let depth = Array.length cells in
          fun () ->
            let a = fa () in
            if a >= 0 && a < depth then Bitvec.resize ~width cells.(a) else oob))
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural env e1) in
      if wi <= 63 then
        let f = compile_int env ~width:wi e1 in
        let sw = hi - lo + 1 in
        let m = mask sw in
        fun () -> Bitvec.resize ~width (Bitvec.of_int ~width:sw ((f () lsr lo) land m))
      else
        let f = compile_bv env ~width:wi e1 in
        fun () -> Bitvec.resize ~width (Bitvec.extract ~hi ~lo (f ()))
    | Unop (Not, e1) ->
      let f = compile_bv env ~width e1 in
      fun () -> Bitvec.lognot (f ())
    | Unop (Red_or, e1) ->
      let f = compile_nonzero env e1 in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if f () then tru else fls
    | Unop (Red_and, e1) -> (
      let wn = max 1 (natural env e1) in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      if wn <= 63 then
        let f = compile_int env ~width:wn e1 in
        let all = mask wn in
        fun () -> if f () = all then tru else fls
      else
        let f = compile_bv env ~width:wn e1 in
        let all = Bitvec.ones wn in
        fun () -> if Bitvec.equal (f ()) all then tru else fls)
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
      let fa = compile_bv env ~width a and fb = compile_bv env ~width b in
      let g =
        match op with
        | Add -> Bitvec.add
        | Sub -> Bitvec.sub
        | Mul -> Bitvec.mul
        | And -> Bitvec.logand
        | Or -> Bitvec.logor
        | Xor -> Bitvec.logxor
        | _ -> assert false
      in
      fun () -> g (fa ()) (fb ())
    | Binop (Shl, a, b) ->
      let fa = compile_bv env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        let k = if k < 0 || k > width then width else k in
        Bitvec.shift_left (fa ()) k
    | Binop (Shr, a, b) ->
      let fa = compile_bv env ~width a and fk = compile_shift env b in
      fun () ->
        let k = fk () in
        let k = if k < 0 || k > width then width else k in
        Bitvec.shift_right_logical (fa ()) k
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
      let cmp = compile_compare env a b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      let test =
        match op with
        | Lt -> fun c -> c < 0
        | Le -> fun c -> c <= 0
        | Gt -> fun c -> c > 0
        | Ge -> fun c -> c >= 0
        | Eq -> fun c -> c = 0
        | Ne -> fun c -> c <> 0
        | _ -> assert false
      in
      fun () -> if test (cmp ()) then tru else fls
    | Binop (Log_and, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if fa () && fb () then tru else fls
    | Binop (Log_or, a, b) ->
      let fa = compile_nonzero env a and fb = compile_nonzero env b in
      let tru = Bitvec.resize ~width (Bitvec.of_bool true) and fls = Bitvec.zero width in
      fun () -> if fa () || fb () then tru else fls
    | Ternary (c, a, b) ->
      let fc = compile_nonzero env c in
      let fa = compile_bv env ~width a and fb = compile_bv env ~width b in
      fun () -> if fc () then fa () else fb ()
    | Concat [] -> fail "empty concatenation"
    | Concat es ->
      let widths = List.map (fun e -> max 1 (natural env e)) es in
      let total = List.fold_left ( + ) 0 widths in
      let f = compile_concat_bv env es widths in
      if total = width then f else fun () -> Bitvec.resize ~width (f ())

  (* Concatenation as a [Bitvec] of width = sum of part widths; the
     first part occupies the high bits. *)
  and compile_concat_bv env es widths =
    let fs =
      List.map2
        (fun e w ->
          if w <= 63 then
            let f = compile_int env ~width:w e in
            fun () -> Bitvec.of_int ~width:w (f ())
          else compile_bv env ~width:w e)
        es widths
    in
    match fs with
    | [] -> fail "empty concatenation"
    | f0 :: rest -> fun () -> List.fold_left (fun acc f -> Bitvec.concat acc (f ())) (f0 ()) rest

  (* Nonzero test at the expression's natural width. *)
  and compile_nonzero env e =
    let wn = max 1 (natural env e) in
    if wn <= 63 then
      let f = compile_int env ~width:wn e in
      fun () -> f () <> 0
    else
      let f = compile_bv env ~width:wn e in
      fun () -> not (Bitvec.is_zero (f ()))

  (* Unsigned comparison at the wider operand's natural width. *)
  and compile_compare env a b =
    let w0 = max 1 (max (natural env a) (natural env b)) in
    if w0 <= 63 then
      let fa = compile_int env ~width:w0 a and fb = compile_int env ~width:w0 b in
      fun () -> ucmp (fa ()) (fb ())
    else
      let fa = compile_bv env ~width:w0 a and fb = compile_bv env ~width:w0 b in
      fun () -> Bitvec.compare (fa ()) (fb ())

  (* Shift amount / memory address as a non-negative int; a negative
     result means "too large to represent" and is treated as
     out-of-range by the callers (the reference walker raises on such
     values instead — they are unreachable from generated designs). *)
  and compile_shift env b =
    let wb = max 1 (natural env b) in
    if wb <= 63 then compile_int env ~width:wb b
    else
      let f = compile_bv env ~width:wb b in
      fun () -> ( match Bitvec.to_int_opt (f ()) with Some k -> k | None -> -1)

  and compile_addr env addr = compile_shift env addr

  (* ---------------------------------------------------------------- *)
  (* Statement compilation (always @(posedge clk) bodies)              *)

  let rec compile_stmt env ~rt ~buf stmt : unit -> unit =
    match stmt with
    | Nonblocking (Lref name, e) -> (
      match Hashtbl.find_opt env.ce_signals name with
      | None -> fail "unknown signal %s" name
      | Some s ->
        let idx = s.sl_idx and id = s.sl_id in
        if s.sl_width <= 63 then
          let f = compile_int env ~width:s.sl_width e in
          fun () -> push buf 0 idx id (f ()) dummy_bv
        else
          let f = compile_bv env ~width:s.sl_width e in
          fun () -> push buf 1 idx id 0 (f ()))
    | Nonblocking (Lindex (name, addr), e) -> (
      match Hashtbl.find_opt env.ce_mems name with
      | None -> fail "write to non-memory %s" name
      | Some m -> (
        let fa = compile_addr env addr in
        let pos = m.m_pos in
        match m.m_store with
        | M_narrow _ ->
          let f = compile_int env ~width:m.m_elem_width e in
          fun () ->
            let a = fa () in
            push buf 2 pos a (f ()) dummy_bv
        | M_wide _ ->
          let f = compile_bv env ~width:m.m_elem_width e in
          fun () ->
            let a = fa () in
            push buf 3 pos a 0 (f ())))
    | If (c, then_s, else_s) ->
      let fc = compile_nonzero env c in
      let ft = Array.of_list (List.map (compile_stmt env ~rt ~buf) then_s) in
      let fe = Array.of_list (List.map (compile_stmt env ~rt ~buf) else_s) in
      fun () ->
        let arm = if fc () then ft else fe in
        for i = 0 to Array.length arm - 1 do
          arm.(i) ()
        done
    | Assert_stmt { cond; message } ->
      let fc = compile_nonzero env cond in
      fun () ->
        if not (fc ()) then
          rt.failures <- { at_cycle = rt.cycle; message } :: rt.failures

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)

  let create (flat : Flatten.flat) =
    let sig_tbl = Hashtbl.create 256 in
    let mem_tbl = Hashtbl.create 16 in
    let decls = ref [] in
    let mem_decls = ref [] in
    let assigns_rev = ref [] in
    let always_rev = ref [] in
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } -> decls := (name, width, false) :: !decls
        | Reg_decl { name; width } -> decls := (name, width, true) :: !decls
        | Mem_decl { name; width; depth; _ } -> mem_decls := (name, width, depth) :: !mem_decls
        | Assign { target; expr } -> assigns_rev := (target, expr) :: !assigns_rev
        | Always_ff stmts -> always_rev := stmts :: !always_rev
        | Comment _ -> ()
        | Instance _ -> fail "simulator requires a flattened design")
      flat.flat_items;
    let decls = List.rev !decls in
    let mem_decls = List.rev !mem_decls in
    let assign_list = List.rev !assigns_rev in
    let always_stmts = List.concat (List.rev !always_rev) in
    (* Slot allocation: narrow signals share one int array, wide ones a
       Bitvec array; every signal and memory also gets a dense id in
       the dependency graph. *)
    let n_narrow = ref 0 and n_wide = ref 0 and n_ids = ref 0 in
    let wide_widths = ref [] in
    List.iter
      (fun (name, width, is_reg) ->
        let idx =
          if width <= 63 then (
            let i = !n_narrow in
            incr n_narrow;
            i)
          else (
            let i = !n_wide in
            incr n_wide;
            wide_widths := width :: !wide_widths;
            i)
        in
        let id = !n_ids in
        incr n_ids;
        Hashtbl.replace sig_tbl name
          { sl_name = name; sl_width = width; sl_is_reg = is_reg; sl_idx = idx; sl_id = id })
      decls;
    let mems =
      Array.of_list
        (List.mapi
           (fun pos (name, width, depth) ->
             let id = !n_ids in
             incr n_ids;
             let store =
               if width <= 63 then M_narrow (Array.make depth 0)
               else M_wide (Array.make depth (Bitvec.zero width))
             in
             let m = { m_name = name; m_elem_width = width; m_store = store; m_id = id; m_pos = pos } in
             Hashtbl.replace mem_tbl name m;
             m)
           mem_decls)
    in
    let narrow = Array.make (max 1 !n_narrow) 0 in
    let wide = Array.of_list (List.rev_map (fun w -> Bitvec.zero w) !wide_widths) in
    let env = { ce_signals = sig_tbl; ce_mems = mem_tbl; ce_narrow = narrow; ce_wide = wide } in
    let is_comb name =
      match Hashtbl.find_opt sig_tbl name with
      | Some s -> not s.sl_is_reg
      | None -> false
    in
    let sorted = Array.of_list (topo_sort_assigns ~is_comb assign_list) in
    let n_assigns = Array.length sorted in
    (* Dependency graph: which assigns (by topo index) read each slot.
       Dependents of an assign's own target always sit later in topo
       order, so one forward pass over the dirty set per settle is a
       fixpoint. *)
    let dep_lists = Array.make (max 1 !n_ids) [] in
    Array.iteri
      (fun j (_, expr) ->
        List.iter
          (fun name ->
            match Hashtbl.find_opt sig_tbl name with
            | Some s -> dep_lists.(s.sl_id) <- j :: dep_lists.(s.sl_id)
            | None -> ())
          (wire_deps expr []);
        List.iter
          (fun name ->
            match Hashtbl.find_opt mem_tbl name with
            | Some m -> dep_lists.(m.m_id) <- j :: dep_lists.(m.m_id)
            | None -> ())
          (mem_reads expr []))
      sorted;
    let deps = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) dep_lists in
    let dirty = Array.make (max 1 n_assigns) true in
    let rt = fresh_rt () in
    let buf = fresh_ubuf () in
    let assign_fast =
      Array.map
        (fun (target, _) ->
          match Hashtbl.find_opt sig_tbl target with
          | Some s -> s.sl_width <= 63
          | None -> false)
        sorted
    in
    let assign_eval =
      Array.map
        (fun (target, expr) ->
          match Hashtbl.find_opt sig_tbl target with
          | None -> fail "assign to undeclared signal %s" target
          | Some s ->
            let succs = deps.(s.sl_id) in
            let idx = s.sl_idx in
            if s.sl_width <= 63 then begin
              let f = compile_int env ~width:s.sl_width expr in
              fun () ->
                let v = f () in
                if narrow.(idx) <> v then begin
                  narrow.(idx) <- v;
                  Array.iter (fun j -> dirty.(j) <- true) succs
                end
            end
            else begin
              let f = compile_bv env ~width:s.sl_width expr in
              fun () ->
                let v = f () in
                if not (Bitvec.equal wide.(idx) v) then begin
                  wide.(idx) <- v;
                  Array.iter (fun j -> dirty.(j) <- true) succs
                end
            end)
        sorted
    in
    let always = Array.of_list (List.map (compile_stmt env ~rt ~buf) always_stmts) in
    {
      env;
      rt;
      buf;
      mems;
      assign_eval;
      assign_fast;
      dirty;
      deps;
      always;
      inputs = flat.flat_inputs;
      outputs = flat.flat_outputs;
      n_narrow_signals = !n_narrow;
      n_wide_signals = !n_wide;
    }

  (* ---------------------------------------------------------------- *)
  (* Cycle execution                                                   *)

  let settle t =
    !settle_fault_hook ();
    let rt = t.rt in
    rt.settles <- rt.settles + 1;
    let dirty = t.dirty and evalf = t.assign_eval and fast = t.assign_fast in
    for i = 0 to Array.length evalf - 1 do
      if dirty.(i) then begin
        dirty.(i) <- false;
        rt.evaluated <- rt.evaluated + 1;
        if fast.(i) then rt.fast_evaluated <- rt.fast_evaluated + 1;
        evalf.(i) ()
      end
      else rt.skipped <- rt.skipped + 1
    done

  let mark_slot t id = Array.iter (fun j -> t.dirty.(j) <- true) t.deps.(id)

  (* Commit in reverse push order, replicating the reference walker's
     list-accumulated semantics exactly: with several updates to one
     target in a cycle, the first statement executed wins, and
     out-of-range memory writes report in that same order. *)
  let commit t =
    let b = t.buf and narrow = t.env.ce_narrow and wide = t.env.ce_wide in
    for i = b.u_len - 1 downto 0 do
      match b.u_kind.(i) with
      | 0 ->
        let idx = b.u_a.(i) and v = b.u_iv.(i) in
        if narrow.(idx) <> v then begin
          narrow.(idx) <- v;
          mark_slot t b.u_b.(i)
        end
      | 1 ->
        let idx = b.u_a.(i) and v = b.u_bv.(i) in
        if not (Bitvec.equal wide.(idx) v) then begin
          wide.(idx) <- v;
          mark_slot t b.u_b.(i)
        end
      | k -> (
        let m = t.mems.(b.u_a.(i)) and a = b.u_b.(i) in
        let oob depth =
          if a >= 0 && a < depth then false
          else begin
            t.rt.failures <-
              { at_cycle = t.rt.cycle; message = Printf.sprintf "write past end of %s" m.m_name }
              :: t.rt.failures;
            true
          end
        in
        match m.m_store with
        | M_narrow cells ->
          assert (k = 2);
          let v = b.u_iv.(i) in
          if (not (oob (Array.length cells))) && cells.(a) <> v then begin
            cells.(a) <- v;
            mark_slot t m.m_id
          end
        | M_wide cells ->
          let v = b.u_bv.(i) in
          if (not (oob (Array.length cells))) && not (Bitvec.equal cells.(a) v) then begin
            cells.(a) <- v;
            mark_slot t m.m_id
          end)
    done;
    b.u_len <- 0

  let clock t =
    t.buf.u_len <- 0;
    let always = t.always in
    for i = 0 to Array.length always - 1 do
      always.(i) ()
    done;
    commit t;
    t.rt.cycle <- t.rt.cycle + 1

  let step t =
    settle t;
    clock t

  let settle_only t = settle t

  let set_input t name v =
    match Hashtbl.find_opt t.env.ce_signals name with
    | None -> fail "unknown input %s" name
    | Some s ->
      if s.sl_width <= 63 then begin
        let v = Bitvec.to_int_trunc (Bitvec.resize ~width:s.sl_width v) in
        if t.env.ce_narrow.(s.sl_idx) <> v then begin
          t.env.ce_narrow.(s.sl_idx) <- v;
          mark_slot t s.sl_id
        end
      end
      else begin
        let v = Bitvec.resize ~width:s.sl_width v in
        if not (Bitvec.equal t.env.ce_wide.(s.sl_idx) v) then begin
          t.env.ce_wide.(s.sl_idx) <- v;
          mark_slot t s.sl_id
        end
      end

  let peek t name =
    match Hashtbl.find_opt t.env.ce_signals name with
    | Some s ->
      if s.sl_width <= 63 then Bitvec.of_int ~width:s.sl_width t.env.ce_narrow.(s.sl_idx)
      else t.env.ce_wide.(s.sl_idx)
    | None -> fail "unknown signal %s" name

  let reader t name =
    match Hashtbl.find_opt t.env.ce_signals name with
    | Some s ->
      if s.sl_width <= 63 then
        let file = t.env.ce_narrow and idx = s.sl_idx and w = s.sl_width in
        fun () -> Bitvec.of_int ~width:w file.(idx)
      else
        let file = t.env.ce_wide and idx = s.sl_idx in
        fun () -> file.(idx)
    | None -> fail "unknown signal %s" name

  let writer t name =
    match Hashtbl.find_opt t.env.ce_signals name with
    | None -> fail "unknown input %s" name
    | Some s ->
      let idx = s.sl_idx and w = s.sl_width and id = s.sl_id in
      if w <= 63 then (fun v ->
        let v = Bitvec.to_int_trunc (Bitvec.resize ~width:w v) in
        if t.env.ce_narrow.(idx) <> v then begin
          t.env.ce_narrow.(idx) <- v;
          mark_slot t id
        end)
      else fun v ->
        let v = Bitvec.resize ~width:w v in
        if not (Bitvec.equal t.env.ce_wide.(idx) v) then begin
          t.env.ce_wide.(idx) <- v;
          mark_slot t id
        end

  let signal_width t name = sig_width t.env name

  let failures t = List.rev t.rt.failures
  let cycle t = t.rt.cycle

  let signal_names t =
    Hashtbl.fold (fun name s acc -> (name, s.sl_width) :: acc) t.env.ce_signals []
    |> List.sort compare

  let eval_bool t expr = compile_nonzero t.env expr ()

  let stats t =
    {
      st_cycles = t.rt.cycle;
      st_settles = t.rt.settles;
      st_assigns_evaluated = t.rt.evaluated;
      st_assigns_skipped = t.rt.skipped;
      st_fastpath_evaluated = t.rt.fast_evaluated;
      st_narrow_signals = t.n_narrow_signals;
      st_wide_signals = t.n_wide_signals;
    }
end

(* ================================================================== *)
(* Opcode engine                                                       *)

(* The next lowering step after [Compiled]: instead of a closure per
   expression node, every assign is compiled once into a flat block of
   integer opcodes over dense register files — narrow values (width <=
   63) in one [int array], wide values in a [Bitvec.t array], with
   constants and scratch temporaries materialized as extra slots of the
   same files.  A settle is then one tight [exec] match loop with no
   closure calls and no tree traversal.

   Width semantics are inherited by construction: the compiler below
   mirrors [Compiled.compile_int]/[compile_bv] case by case, so every
   opcode sequence computes exactly what the corresponding closure
   would have (the qcheck lockstep suite in test_sim_equiv checks this
   against both other engines).  The one intentional difference is that
   a mux evaluates both arms before selecting — safe because
   expressions are pure (memory reads out of range yield 0 and cannot
   fail), and cheaper than a branch per node.

   Dirty tracking uses a bitset (63 assigns per word) instead of the
   compiled engine's [bool array] scan: a settle skips clean regions a
   word at a time, so the per-cycle cost is proportional to the work
   actually done, not to netlist size.

   Partitioning: assigns are grouped into connected components of the
   "reads the target of" relation (union-find), so combinational cones
   never straddle a partition — partitions communicate only through
   registers, inputs and memories, which are written and marked dirty
   from the main domain between settles, never during one.  Each
   partition owns a private, word-aligned range of the dirty bitset and
   of the temporaries it writes, so a parallel settle touches disjoint
   mutable state and needs no locks beyond the pool's barrier.

   Because the program is immutable and all mutable state lives in
   [state], [fork] is a deep copy of the register files — batched
   multi-stimulus runs (Harness.run_batch) elaborate and compile once
   and fork per stimulus. *)

module Opcode = struct
  (* Signals resolve to slots exactly as in [Compiled]; [o_id] is the
     dense dependency id shared with memories. *)
  type sslot = {
    o_name : string;
    o_width : int;
    o_is_reg : bool;
    o_idx : int;
    o_id : int;
  }

  type omem = {
    om_name : string;
    om_elem_width : int;
    om_depth : int;
    om_narrow : bool;
    om_idx : int;  (* index into the kind-specific cell-array array *)
    om_id : int;
  }

  (* The compiled program: immutable after [create], shared by forks.

     [p_code] holds one block per assign, entered at
     [p_block_off.(g)] for global assign index [g] and terminated by
     NSTORE/WSTORE; [p_clock_code] holds one HALT-terminated block per
     top-level always statement, entered at [p_clock_off.(b)].
     [p_marks]/[p_mark_off] give, per dependency id, the dirty-bitset
     positions of the readers — comb assigns and clock blocks alike —
     each encoded as [(word lsl 6) lor bit].  [p_parts] gives each
     partition's word range of the comb half of the dirty bitset;
     global assign index [g] lives at word [g / 63], bit [g mod 63],
     and partition bases are word-aligned so no word is shared between
     partitions.  Clock block [b] lives after the comb words, at word
     [p_n_words + b / 63], bit [b mod 63]; [p_clock_pinned] masks the
     blocks that must run every cycle regardless of dirtiness. *)
  type prog = {
    p_signals : (string, sslot) Hashtbl.t;
    p_mem_tbl : (string, omem) Hashtbl.t;
    p_nmems : omem array;
    p_wmems : omem array;
    p_code : int array;
    p_block_off : int array;
    p_clock_code : int array;
    p_clock_off : int array;
    p_clock_pinned : int array;
    p_clock_oob : int array;
    p_n_clock_words : int;
    p_marks : int array;
    p_mark_off : int array;
    p_msgs : string array;
    p_parts : (int * int) array;  (* base word, word count *)
    p_n_words : int;
    p_n_assigns : int;
    p_ninit : int array;
    p_winit : Bitvec.t array;
    p_dirty_init : int array;
    p_n_narrow_signals : int;
    p_n_wide_signals : int;
    p_inputs : string list;
    p_outputs : string list;
  }

  (* All mutable run state, so [fork] is an array copy.  [s_evals] and
     [s_fast] are per-partition counters: each partition increments
     only its own cell during a parallel settle.  [s_cmarks] is
     per-partition scratch for clock-block wake-ups discovered during a
     parallel settle: a comb store may mark a clock block owned by a
     word another partition is also marking, so each partition
     accumulates clock marks privately and [settle] ORs them into the
     real clock dirty words after the barrier. *)
  type state = {
    s_n : int array;
    s_w : Bitvec.t array;
    s_nmem : int array array;
    s_wmem : Bitvec.t array array;
    s_dirty : int array;
    s_buf : ubuf;
    s_rt : rt;
    s_evals : int array;
    s_fast : int array;
    s_cmarks : int array array;
  }

  type t = { prog : prog; st : state }

  (* ---------------------------------------------------------------- *)
  (* The interpreter                                                   *)

  (* Number of trailing zeros of a nonzero int (bit indices 0..62). *)
  let ntz x =
    let x = ref (x land -x) in
    let n = ref 0 in
    if !x land 0xFFFFFFFF = 0 then begin
      n := !n + 32;
      x := !x lsr 32
    end;
    if !x land 0xFFFF = 0 then begin
      n := !n + 16;
      x := !x lsr 16
    end;
    if !x land 0xFF = 0 then begin
      n := !n + 8;
      x := !x lsr 8
    end;
    if !x land 0xF = 0 then begin
      n := !n + 4;
      x := !x lsr 4
    end;
    if !x land 0x3 = 0 then begin
      n := !n + 2;
      x := !x lsr 2
    end;
    if !x land 0x1 = 0 then incr n;
    !n

  (* The interpreter's hot loops index register files, opcode buffers,
     and mark tables exclusively with compiler-generated offsets, and
     every runtime-valued index (a memory address) is explicitly
     range-checked before use — so the implicit bounds checks only
     cost.  The per-cycle functions below shadow [Array] with these
     unchecked primitives via [let module Array = Unchecked]; the rest
     of the engine keeps the checked operations. *)
  module Unchecked = struct
    include Stdlib.Array

    external get : 'a array -> int -> 'a = "%array_unsafe_get"
    external set : 'a array -> int -> 'a -> unit = "%array_unsafe_set"
  end

  let mark_id p st id =
    let module Array = Unchecked in
    let marks = p.p_marks and dirty = st.s_dirty in
    for k = p.p_mark_off.(id) to p.p_mark_off.(id + 1) - 1 do
      let e = marks.(k) in
      let w = e lsr 6 in
      dirty.(w) <- dirty.(w) lor (1 lsl (e land 63))
    done

  (* Execute [code] from [pc0] until a terminator: NSTORE/WSTORE end an
     assign block (store with change detection, marking the target's
     readers dirty), HALT ends a clock block.  Returns 1 when the
     terminating store hit a narrow (unboxed) target, else 0.

     [cm] is the caller's clock-mark scratch: reader marks that land in
     the clock half of the dirty bitset (word >= [p_n_words]) are
     accumulated there instead of in [s_dirty], so parallel settles of
     different partitions never write the same word.  Clock-block code
     contains no NSTORE/WSTORE, so [cm] is dead when executing it.

     Operand conventions: [dst]/[a]/[b]/[c] are register-file indices
     (narrow unless the opcode name says wide), [m] a precomputed mask,
     [w] a width or shift bound, [mem] a kind-specific memory index.
     Comment format: OP dst operands... *)
  let exec p st cm code pc0 =
    let module Array = Unchecked in
    let nf = st.s_n and wf = st.s_w in
    let nmem = st.s_nmem and wmem = st.s_wmem in
    let marks = p.p_marks and dirty = st.s_dirty in
    let ncw = p.p_n_words in
    let rec go i =
      match code.(i) with
      | 0 (* NMASK dst a m *) ->
        nf.(code.(i + 1)) <- nf.(code.(i + 2)) land code.(i + 3);
        go (i + 4)
      | 1 (* NNOT dst a m *) ->
        nf.(code.(i + 1)) <- lnot nf.(code.(i + 2)) land code.(i + 3);
        go (i + 4)
      | 2 (* NAND dst a b *) ->
        nf.(code.(i + 1)) <- nf.(code.(i + 2)) land nf.(code.(i + 3));
        go (i + 4)
      | 3 (* NOR dst a b *) ->
        nf.(code.(i + 1)) <- nf.(code.(i + 2)) lor nf.(code.(i + 3));
        go (i + 4)
      | 4 (* NXOR dst a b *) ->
        nf.(code.(i + 1)) <- nf.(code.(i + 2)) lxor nf.(code.(i + 3));
        go (i + 4)
      | 5 (* NADD dst a b m *) ->
        nf.(code.(i + 1)) <- (nf.(code.(i + 2)) + nf.(code.(i + 3))) land code.(i + 4);
        go (i + 5)
      | 6 (* NSUB dst a b m *) ->
        nf.(code.(i + 1)) <- (nf.(code.(i + 2)) - nf.(code.(i + 3))) land code.(i + 4);
        go (i + 5)
      | 7 (* NMUL dst a b m *) ->
        nf.(code.(i + 1)) <- nf.(code.(i + 2)) * nf.(code.(i + 3)) land code.(i + 4);
        go (i + 5)
      | 8 (* NSHL dst a k w m *) ->
        let k = nf.(code.(i + 3)) in
        nf.(code.(i + 1)) <-
          (if k < 0 || k >= code.(i + 4) then 0
           else (nf.(code.(i + 2)) lsl k) land code.(i + 5));
        go (i + 6)
      | 9 (* NSHR dst a k w *) ->
        let k = nf.(code.(i + 3)) in
        nf.(code.(i + 1)) <-
          (if k < 0 || k >= code.(i + 4) then 0 else nf.(code.(i + 2)) lsr k);
        go (i + 5)
      | 10 (* NLT dst a b *) ->
        nf.(code.(i + 1)) <- (if ucmp nf.(code.(i + 2)) nf.(code.(i + 3)) < 0 then 1 else 0);
        go (i + 4)
      | 11 (* NLE dst a b *) ->
        nf.(code.(i + 1)) <- (if ucmp nf.(code.(i + 2)) nf.(code.(i + 3)) <= 0 then 1 else 0);
        go (i + 4)
      | 12 (* NGT dst a b *) ->
        nf.(code.(i + 1)) <- (if ucmp nf.(code.(i + 2)) nf.(code.(i + 3)) > 0 then 1 else 0);
        go (i + 4)
      | 13 (* NGE dst a b *) ->
        nf.(code.(i + 1)) <- (if ucmp nf.(code.(i + 2)) nf.(code.(i + 3)) >= 0 then 1 else 0);
        go (i + 4)
      | 14 (* NEQ dst a b *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) = nf.(code.(i + 3)) then 1 else 0);
        go (i + 4)
      | 15 (* NNE dst a b *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) <> nf.(code.(i + 3)) then 1 else 0);
        go (i + 4)
      | 16 (* NLOGAND dst a b *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) <> 0 && nf.(code.(i + 3)) <> 0 then 1 else 0);
        go (i + 4)
      | 17 (* NLOGOR dst a b *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) <> 0 || nf.(code.(i + 3)) <> 0 then 1 else 0);
        go (i + 4)
      | 18 (* NNZ dst a *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) <> 0 then 1 else 0);
        go (i + 3)
      | 19 (* NREDAND dst a all *) ->
        nf.(code.(i + 1)) <- (if nf.(code.(i + 2)) = code.(i + 3) then 1 else 0);
        go (i + 4)
      | 20 (* NSLICE dst a lo m *) ->
        nf.(code.(i + 1)) <- (nf.(code.(i + 2)) lsr code.(i + 3)) land code.(i + 4);
        go (i + 5)
      | 21 (* NMUX dst c a b *) ->
        nf.(code.(i + 1)) <-
          (if nf.(code.(i + 2)) <> 0 then nf.(code.(i + 3)) else nf.(code.(i + 4)));
        go (i + 5)
      | 22 (* NSHLOR dst a k b *) ->
        nf.(code.(i + 1)) <- (nf.(code.(i + 2)) lsl code.(i + 3)) lor nf.(code.(i + 4));
        go (i + 5)
      | 23 (* NMEMRD dst mem a m *) ->
        let cells = nmem.(code.(i + 2)) in
        let a = nf.(code.(i + 3)) in
        nf.(code.(i + 1)) <-
          (if a >= 0 && a < Array.length cells then cells.(a) land code.(i + 4) else 0);
        go (i + 5)
      | 24 (* NMEMRDW dst mem a m — wide memory, narrow context *) ->
        let cells = wmem.(code.(i + 2)) in
        let a = nf.(code.(i + 3)) in
        nf.(code.(i + 1)) <-
          (if a >= 0 && a < Array.length cells then
             Bitvec.to_int_trunc cells.(a) land code.(i + 4)
           else 0);
        go (i + 5)
      | 25 (* WRESIZE dst a w *) ->
        wf.(code.(i + 1)) <- Bitvec.resize ~width:code.(i + 3) wf.(code.(i + 2));
        go (i + 4)
      | 26 (* N2W dst a sw w *) ->
        wf.(code.(i + 1)) <-
          Bitvec.resize ~width:code.(i + 4) (Bitvec.of_int ~width:code.(i + 3) nf.(code.(i + 2)));
        go (i + 5)
      | 27 (* W2N dst a m *) ->
        nf.(code.(i + 1)) <- Bitvec.to_int_trunc wf.(code.(i + 2)) land code.(i + 3);
        go (i + 4)
      | 28 (* WNOT dst a *) ->
        wf.(code.(i + 1)) <- Bitvec.lognot wf.(code.(i + 2));
        go (i + 3)
      | 29 (* WAND dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.logand wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 30 (* WOR dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.logor wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 31 (* WXOR dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.logxor wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 32 (* WADD dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.add wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 33 (* WSUB dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.sub wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 34 (* WMUL dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.mul wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 35 (* WSHL dst a k w *) ->
        let k = nf.(code.(i + 3)) in
        let w = code.(i + 4) in
        let k = if k < 0 || k > w then w else k in
        wf.(code.(i + 1)) <- Bitvec.shift_left wf.(code.(i + 2)) k;
        go (i + 5)
      | 36 (* WSHR dst a k w *) ->
        let k = nf.(code.(i + 3)) in
        let w = code.(i + 4) in
        let k = if k < 0 || k > w then w else k in
        wf.(code.(i + 1)) <- Bitvec.shift_right_logical wf.(code.(i + 2)) k;
        go (i + 5)
      | 37 (* WLT dst a b — narrow 0/1 result *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.compare wf.(code.(i + 2)) wf.(code.(i + 3)) < 0 then 1 else 0);
        go (i + 4)
      | 38 (* WLE dst a b *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.compare wf.(code.(i + 2)) wf.(code.(i + 3)) <= 0 then 1 else 0);
        go (i + 4)
      | 39 (* WGT dst a b *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.compare wf.(code.(i + 2)) wf.(code.(i + 3)) > 0 then 1 else 0);
        go (i + 4)
      | 40 (* WGE dst a b *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.compare wf.(code.(i + 2)) wf.(code.(i + 3)) >= 0 then 1 else 0);
        go (i + 4)
      | 41 (* WEQ dst a b *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.equal wf.(code.(i + 2)) wf.(code.(i + 3)) then 1 else 0);
        go (i + 4)
      | 42 (* WNE dst a b *) ->
        nf.(code.(i + 1)) <-
          (if Bitvec.equal wf.(code.(i + 2)) wf.(code.(i + 3)) then 0 else 1);
        go (i + 4)
      | 43 (* WNZ dst a *) ->
        nf.(code.(i + 1)) <- (if Bitvec.is_zero wf.(code.(i + 2)) then 0 else 1);
        go (i + 3)
      | 44 (* WSLICE dst a hi lo w *) ->
        wf.(code.(i + 1)) <-
          Bitvec.resize ~width:code.(i + 5)
            (Bitvec.extract ~hi:code.(i + 3) ~lo:code.(i + 4) wf.(code.(i + 2)));
        go (i + 6)
      | 45 (* NSLICEW dst a hi lo m — wide source, narrow result *) ->
        nf.(code.(i + 1)) <-
          Bitvec.to_int_trunc
            (Bitvec.extract ~hi:code.(i + 3) ~lo:code.(i + 4) wf.(code.(i + 2)))
          land code.(i + 5);
        go (i + 6)
      | 46 (* WCONCAT dst a b *) ->
        wf.(code.(i + 1)) <- Bitvec.concat wf.(code.(i + 2)) wf.(code.(i + 3));
        go (i + 4)
      | 47 (* WMEMRDN dst mem a ew w — narrow memory, wide context *) ->
        let cells = nmem.(code.(i + 2)) in
        let a = nf.(code.(i + 3)) in
        let w = code.(i + 5) in
        wf.(code.(i + 1)) <-
          (if a >= 0 && a < Array.length cells then
             Bitvec.resize ~width:w (Bitvec.of_int ~width:code.(i + 4) cells.(a))
           else Bitvec.zero w);
        go (i + 6)
      | 48 (* WMEMRD dst mem a w *) ->
        let cells = wmem.(code.(i + 2)) in
        let a = nf.(code.(i + 3)) in
        let w = code.(i + 4) in
        wf.(code.(i + 1)) <-
          (if a >= 0 && a < Array.length cells then Bitvec.resize ~width:w cells.(a)
           else Bitvec.zero w);
        go (i + 5)
      | 49 (* W2INT dst a — unsigned value or -1 if out of int range *) ->
        nf.(code.(i + 1)) <-
          (match Bitvec.to_int_opt wf.(code.(i + 2)) with Some k -> k | None -> -1);
        go (i + 3)
      | 50 (* NSTORE slot src lo hi — assign-block terminator *) ->
        let dst = code.(i + 1) in
        let v = nf.(code.(i + 2)) in
        if nf.(dst) <> v then begin
          nf.(dst) <- v;
          for k = code.(i + 3) to code.(i + 4) - 1 do
            let e = marks.(k) in
            let w = e lsr 6 in
            if w < ncw then dirty.(w) <- dirty.(w) lor (1 lsl (e land 63))
            else cm.(w - ncw) <- cm.(w - ncw) lor (1 lsl (e land 63))
          done
        end;
        1
      | 51 (* WSTORE slot src lo hi *) ->
        let dst = code.(i + 1) in
        let v = wf.(code.(i + 2)) in
        if not (Bitvec.equal wf.(dst) v) then begin
          wf.(dst) <- v;
          for k = code.(i + 3) to code.(i + 4) - 1 do
            let e = marks.(k) in
            let w = e lsr 6 in
            if w < ncw then dirty.(w) <- dirty.(w) lor (1 lsl (e land 63))
            else cm.(w - ncw) <- cm.(w - ncw) lor (1 lsl (e land 63))
          done
        end;
        0
      | 52 (* HALT *) -> 0
      | 53 (* JZ c target *) -> go (if nf.(code.(i + 1)) = 0 then code.(i + 2) else i + 3)
      | 54 (* JMP target *) -> go code.(i + 1)
      | 55 (* PUSHN slot id src *) ->
        push st.s_buf 0 code.(i + 1) code.(i + 2) nf.(code.(i + 3)) dummy_bv;
        go (i + 4)
      | 56 (* PUSHW slot id src *) ->
        push st.s_buf 1 code.(i + 1) code.(i + 2) 0 wf.(code.(i + 3));
        go (i + 4)
      | 57 (* PUSHNM mem a v *) ->
        push st.s_buf 2 code.(i + 1) nf.(code.(i + 2)) nf.(code.(i + 3)) dummy_bv;
        go (i + 4)
      | 58 (* PUSHWM mem a v *) ->
        push st.s_buf 3 code.(i + 1) nf.(code.(i + 2)) 0 wf.(code.(i + 3));
        go (i + 4)
      | 59 (* ASSERT c msg *) ->
        if nf.(code.(i + 1)) = 0 then
          st.s_rt.failures <-
            { at_cycle = st.s_rt.cycle; message = p.p_msgs.(code.(i + 2)) } :: st.s_rt.failures;
        go (i + 3)
      | 60 (* WMUX dst c a b — narrow condition *) ->
        wf.(code.(i + 1)) <-
          (if nf.(code.(i + 2)) <> 0 then wf.(code.(i + 3)) else wf.(code.(i + 4)));
        go (i + 5)
      | 62 (* NSTOREMUX slot c a b lo hi — NSTORE of an NMUX, fused *) ->
        let dst = code.(i + 1) in
        let v = if nf.(code.(i + 2)) <> 0 then nf.(code.(i + 3)) else nf.(code.(i + 4)) in
        if nf.(dst) <> v then begin
          nf.(dst) <- v;
          for k = code.(i + 5) to code.(i + 6) - 1 do
            let e = marks.(k) in
            let w = e lsr 6 in
            if w < ncw then dirty.(w) <- dirty.(w) lor (1 lsl (e land 63))
            else cm.(w - ncw) <- cm.(w - ncw) lor (1 lsl (e land 63))
          done
        end;
        1
      | 61 (* ACONFLICT p1 p2 a1 a2 msg — fused port-conflict assert:
              fails iff both enables are up and the addresses differ.
              Arbiter/port-sharing checks are the bulk of woken clock
              blocks, so they get a single-dispatch opcode. *) ->
        if
          nf.(code.(i + 1)) <> 0
          && nf.(code.(i + 2)) <> 0
          && nf.(code.(i + 3)) <> nf.(code.(i + 4))
        then
          st.s_rt.failures <-
            { at_cycle = st.s_rt.cycle; message = p.p_msgs.(code.(i + 5)) } :: st.s_rt.failures;
        go (i + 6)
      | op -> fail "corrupt opcode program: opcode %d at %d" op i
    in
    go pc0

  (* ---------------------------------------------------------------- *)
  (* Compilation                                                       *)

  type builder = { mutable bb : int array; mutable bl : int; mutable blast : int }
  (* [blast] is the start offset of the last instruction [ins]-ed,
     letting peepholes inspect (and rewind) exactly one instruction. *)

  let new_builder () = { bb = Array.make 256 0; bl = 0; blast = -1 }

  let emit b v =
    if b.bl = Array.length b.bb then begin
      let nb = Array.make (2 * b.bl) 0 in
      Array.blit b.bb 0 nb 0 b.bl;
      b.bb <- nb
    end;
    b.bb.(b.bl) <- v;
    b.bl <- b.bl + 1

  let ins b l =
    b.blast <- b.bl;
    List.iter (emit b) l
  let finish b = Array.sub b.bb 0 b.bl

  (* Compile-time allocation state.  Slot indices below the signal
     counts are signals; constants (deduplicated for narrow values) and
     per-use scratch temporaries are appended after them.  Temporaries
     are never shared between blocks, so parallel partitions write
     disjoint slots. *)
  type cstate = {
    cs_signals : (string, sslot) Hashtbl.t;
    cs_mems : (string, omem) Hashtbl.t;
    mutable cs_nn : int;
    mutable cs_nextra : int list;  (* narrow extra inits, reversed *)
    mutable cs_nw : int;
    mutable cs_wextra : Bitvec.t list;
    cs_nconst : (int, int) Hashtbl.t;
    mutable cs_msgs : string list;  (* reversed *)
    mutable cs_nmsgs : int;
  }

  let ntemp cs =
    let i = cs.cs_nn in
    cs.cs_nn <- i + 1;
    cs.cs_nextra <- 0 :: cs.cs_nextra;
    i

  let wtemp cs width =
    let i = cs.cs_nw in
    cs.cs_nw <- i + 1;
    cs.cs_wextra <- Bitvec.zero width :: cs.cs_wextra;
    i

  let nconst cs v =
    match Hashtbl.find_opt cs.cs_nconst v with
    | Some i -> i
    | None ->
      let i = cs.cs_nn in
      cs.cs_nn <- i + 1;
      cs.cs_nextra <- v :: cs.cs_nextra;
      Hashtbl.replace cs.cs_nconst v i;
      i

  let wconst cs bv =
    let i = cs.cs_nw in
    cs.cs_nw <- i + 1;
    cs.cs_wextra <- bv :: cs.cs_wextra;
    i

  let sig_width_c cs name =
    match Hashtbl.find_opt cs.cs_signals name with
    | Some s -> s.o_width
    | None -> (
      match Hashtbl.find_opt cs.cs_mems name with
      | Some m -> m.om_elem_width
      | None -> fail "unknown signal %s" name)

  let natural_c cs expr = natural_width ~signal_width:(sig_width_c cs) expr

  (* [comp_n cs b ~width e] appends opcodes evaluating [e] at narrow
     context [width] to [b] and returns the narrow slot holding the
     result; [comp_w] is the wide/boxed path.  Both mirror
     [Compiled.compile_int]/[compile_bv] case by case — any semantic
     divergence here is a bug, caught by the lockstep suite. *)
  let rec comp_n cs b ~width e : int =
    let mw = mask width in
    match e with
    | Const bv -> nconst cs (Bitvec.to_int_trunc (Bitvec.resize ~width bv))
    | Ref name -> (
      match Hashtbl.find_opt cs.cs_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        if s.o_width > 63 then begin
          let d = ntemp cs in
          ins b [ 27; d; s.o_idx; mw ];
          d
        end
        else if s.o_width <= width then s.o_idx
        else begin
          let d = ntemp cs in
          ins b [ 0; d; s.o_idx; mw ];
          d
        end)
    | Index (name, addr) -> (
      match Hashtbl.find_opt cs.cs_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let a = comp_addr cs b addr in
        let d = ntemp cs in
        if m.om_narrow then
          (* land -1 is the identity, so one opcode covers both the
             element-fits and the must-truncate cases. *)
          ins b [ 23; d; m.om_idx; a; (if m.om_elem_width <= width then -1 else mw) ]
        else ins b [ 24; d; m.om_idx; a; mw ];
        d)
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural_c cs e1) in
      let m = mask (min (hi - lo + 1) width) in
      let d = ntemp cs in
      if wi <= 63 then begin
        let s = comp_n cs b ~width:wi e1 in
        ins b [ 20; d; s; lo; m ]
      end
      else begin
        let s = comp_w cs b ~width:wi e1 in
        ins b [ 45; d; s; hi; lo; m ]
      end;
      d
    | Unop (Not, e1) ->
      let s = comp_n cs b ~width e1 in
      let d = ntemp cs in
      ins b [ 1; d; s; mw ];
      d
    | Unop (Red_or, e1) -> comp_nz cs b e1
    | Unop (Red_and, e1) ->
      let wn = max 1 (natural_c cs e1) in
      let d = ntemp cs in
      if wn <= 63 then begin
        let s = comp_n cs b ~width:wn e1 in
        ins b [ 19; d; s; mask wn ]
      end
      else begin
        let s = comp_w cs b ~width:wn e1 in
        let allw = wconst cs (Bitvec.ones wn) in
        ins b [ 41; d; s; allw ]
      end;
      d
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b1) ->
      let sa = comp_n cs b ~width a in
      let sb = comp_n cs b ~width b1 in
      let d = ntemp cs in
      (match op with
      | Add -> ins b [ 5; d; sa; sb; mw ]
      | Sub -> ins b [ 6; d; sa; sb; mw ]
      | Mul -> ins b [ 7; d; sa; sb; mw ]
      | And -> ins b [ 2; d; sa; sb ]
      | Or -> ins b [ 3; d; sa; sb ]
      | Xor -> ins b [ 4; d; sa; sb ]
      | _ -> assert false);
      d
    | Binop (Shl, a, k) ->
      let sa = comp_n cs b ~width a in
      let sk = comp_shift cs b k in
      let d = ntemp cs in
      ins b [ 8; d; sa; sk; width; mw ];
      d
    | Binop (Shr, a, k) ->
      let sa = comp_n cs b ~width a in
      let sk = comp_shift cs b k in
      let d = ntemp cs in
      ins b [ 9; d; sa; sk; width ];
      d
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b1) -> comp_cmp cs b op a b1
    | Binop (Log_and, a, b1) ->
      let sa = comp_nz cs b a in
      let sb = comp_nz cs b b1 in
      let d = ntemp cs in
      ins b [ 16; d; sa; sb ];
      d
    | Binop (Log_or, a, b1) ->
      let sa = comp_nz cs b a in
      let sb = comp_nz cs b b1 in
      let d = ntemp cs in
      ins b [ 17; d; sa; sb ];
      d
    | Ternary (c, a, b1) ->
      let sc = comp_nz cs b c in
      let sa = comp_n cs b ~width a in
      let sb = comp_n cs b ~width b1 in
      let d = ntemp cs in
      ins b [ 21; d; sc; sa; sb ];
      d
    | Concat [] -> fail "empty concatenation"
    | Concat es -> (
      let widths = List.map (fun e -> max 1 (natural_c cs e)) es in
      let total = List.fold_left ( + ) 0 widths in
      if total <= 63 then begin
        let parts = List.map2 (fun e w -> (comp_n cs b ~width:w e, w)) es widths in
        match parts with
        | [] -> assert false
        | (s0, _) :: rest ->
          let acc =
            List.fold_left
              (fun acc (s, w) ->
                let d = ntemp cs in
                ins b [ 22; d; acc; w; s ];
                d)
              s0 rest
          in
          if width >= total then acc
          else begin
            let d = ntemp cs in
            ins b [ 0; d; acc; mw ];
            d
          end
      end
      else begin
        let s, _ = comp_concat_w cs b es widths in
        let d = ntemp cs in
        ins b [ 27; d; s; mw ];
        d
      end)

  and comp_w cs b ~width e : int =
    match e with
    | Const bv -> wconst cs (Bitvec.resize ~width bv)
    | Ref name -> (
      match Hashtbl.find_opt cs.cs_signals name with
      | None -> fail "read of unknown signal %s" name
      | Some s ->
        if s.o_width > 63 then
          if s.o_width = width then s.o_idx
          else begin
            let d = wtemp cs width in
            ins b [ 25; d; s.o_idx; width ];
            d
          end
        else begin
          let d = wtemp cs width in
          ins b [ 26; d; s.o_idx; s.o_width; width ];
          d
        end)
    | Index (name, addr) -> (
      match Hashtbl.find_opt cs.cs_mems name with
      | None -> fail "indexing non-memory %s" name
      | Some m ->
        let a = comp_addr cs b addr in
        let d = wtemp cs width in
        if m.om_narrow then ins b [ 47; d; m.om_idx; a; m.om_elem_width; width ]
        else ins b [ 48; d; m.om_idx; a; width ];
        d)
    | Slice (e1, hi, lo) ->
      let wi = max (hi + 1) (natural_c cs e1) in
      if wi <= 63 then begin
        let s = comp_n cs b ~width:wi e1 in
        let sw = hi - lo + 1 in
        let t = ntemp cs in
        ins b [ 20; t; s; lo; mask sw ];
        let d = wtemp cs width in
        ins b [ 26; d; t; sw; width ];
        d
      end
      else begin
        let s = comp_w cs b ~width:wi e1 in
        let d = wtemp cs width in
        ins b [ 44; d; s; hi; lo; width ];
        d
      end
    | Unop (Not, e1) ->
      let s = comp_w cs b ~width e1 in
      let d = wtemp cs width in
      ins b [ 28; d; s ];
      d
    | Unop (Red_or, e1) ->
      let t = comp_nz cs b e1 in
      let d = wtemp cs width in
      ins b [ 26; d; t; 1; width ];
      d
    | Unop (Red_and, e1) ->
      let wn = max 1 (natural_c cs e1) in
      let t = ntemp cs in
      (if wn <= 63 then begin
         let s = comp_n cs b ~width:wn e1 in
         ins b [ 19; t; s; mask wn ]
       end
       else begin
         let s = comp_w cs b ~width:wn e1 in
         let allw = wconst cs (Bitvec.ones wn) in
         ins b [ 41; t; s; allw ]
       end);
      let d = wtemp cs width in
      ins b [ 26; d; t; 1; width ];
      d
    | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b1) ->
      let sa = comp_w cs b ~width a in
      let sb = comp_w cs b ~width b1 in
      let d = wtemp cs width in
      let opc =
        match op with
        | Add -> 32
        | Sub -> 33
        | Mul -> 34
        | And -> 29
        | Or -> 30
        | Xor -> 31
        | _ -> assert false
      in
      ins b [ opc; d; sa; sb ];
      d
    | Binop (Shl, a, k) ->
      let sa = comp_w cs b ~width a in
      let sk = comp_shift cs b k in
      let d = wtemp cs width in
      ins b [ 35; d; sa; sk; width ];
      d
    | Binop (Shr, a, k) ->
      let sa = comp_w cs b ~width a in
      let sk = comp_shift cs b k in
      let d = wtemp cs width in
      ins b [ 36; d; sa; sk; width ];
      d
    | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b1) ->
      let t = comp_cmp cs b op a b1 in
      let d = wtemp cs width in
      ins b [ 26; d; t; 1; width ];
      d
    | Binop (Log_and, a, b1) ->
      let sa = comp_nz cs b a in
      let sb = comp_nz cs b b1 in
      let t = ntemp cs in
      ins b [ 16; t; sa; sb ];
      let d = wtemp cs width in
      ins b [ 26; d; t; 1; width ];
      d
    | Binop (Log_or, a, b1) ->
      let sa = comp_nz cs b a in
      let sb = comp_nz cs b b1 in
      let t = ntemp cs in
      ins b [ 17; t; sa; sb ];
      let d = wtemp cs width in
      ins b [ 26; d; t; 1; width ];
      d
    | Ternary (c, a, b1) ->
      let sc = comp_nz cs b c in
      let sa = comp_w cs b ~width a in
      let sb = comp_w cs b ~width b1 in
      let d = wtemp cs width in
      ins b [ 60; d; sc; sa; sb ];
      d
    | Concat [] -> fail "empty concatenation"
    | Concat es ->
      let widths = List.map (fun e -> max 1 (natural_c cs e)) es in
      let total = List.fold_left ( + ) 0 widths in
      let s, _ = comp_concat_w cs b es widths in
      if total = width then s
      else begin
        let d = wtemp cs width in
        ins b [ 25; d; s; width ];
        d
      end

  (* Concatenation as a wide value of width = sum of part widths (the
     first part highest), returned as (slot, total width). *)
  and comp_concat_w cs b es widths =
    let parts =
      List.map2
        (fun e w ->
          if w <= 63 then begin
            let s = comp_n cs b ~width:w e in
            let d = wtemp cs w in
            ins b [ 26; d; s; w; w ];
            (d, w)
          end
          else (comp_w cs b ~width:w e, w))
        es widths
    in
    match parts with
    | [] -> fail "empty concatenation"
    | p0 :: rest ->
      List.fold_left
        (fun (acc, aw) (s, w) ->
          let d = wtemp cs (aw + w) in
          ins b [ 46; d; acc; s ];
          (d, aw + w))
        p0 rest

  (* Nonzero test at the expression's natural width; returns a narrow
     0/1 slot.  A 1-bit operand is already its own nonzero test, so the
     NNZ is skipped — conditions on enables and comparison results (the
     overwhelming majority) cost no extra opcode. *)
  and comp_nz cs b e =
    let wn = max 1 (natural_c cs e) in
    if wn = 1 then comp_n cs b ~width:1 e
    else begin
      let d = ntemp cs in
      (if wn <= 63 then begin
         let s = comp_n cs b ~width:wn e in
         ins b [ 18; d; s ]
       end
       else begin
         let s = comp_w cs b ~width:wn e in
         ins b [ 43; d; s ]
       end);
      d
    end

  (* Unsigned comparison at the wider operand's natural width; returns
     a narrow 0/1 slot. *)
  and comp_cmp cs b op a b1 =
    let w0 = max 1 (max (natural_c cs a) (natural_c cs b1)) in
    let d = ntemp cs in
    (if w0 <= 63 then begin
       let sa = comp_n cs b ~width:w0 a in
       let sb = comp_n cs b ~width:w0 b1 in
       let opc =
         match op with
         | Lt -> 10
         | Le -> 11
         | Gt -> 12
         | Ge -> 13
         | Eq -> 14
         | Ne -> 15
         | _ -> assert false
       in
       ins b [ opc; d; sa; sb ]
     end
     else begin
       let sa = comp_w cs b ~width:w0 a in
       let sb = comp_w cs b ~width:w0 b1 in
       let opc =
         match op with
         | Lt -> 37
         | Le -> 38
         | Gt -> 39
         | Ge -> 40
         | Eq -> 41
         | Ne -> 42
         | _ -> assert false
       in
       ins b [ opc; d; sa; sb ]
     end);
    d

  (* Shift amount / memory address as a narrow slot; -1 encodes "too
     large for an int", treated as out-of-range by the consumers. *)
  and comp_shift cs b e =
    let wb = max 1 (natural_c cs e) in
    if wb <= 63 then comp_n cs b ~width:wb e
    else begin
      let s = comp_w cs b ~width:wb e in
      let d = ntemp cs in
      ins b [ 49; d; s ];
      d
    end

  and comp_addr cs b e = comp_shift cs b e

  (* Always-block statements compile into the single clock program;
     [If] lowers to JZ/JMP with backpatched targets, so untaken arms
     cost one branch. *)
  let rec comp_stmt cs b stmt =
    match stmt with
    | Nonblocking (Lref name, e) -> (
      match Hashtbl.find_opt cs.cs_signals name with
      | None -> fail "unknown signal %s" name
      | Some s ->
        if s.o_width <= 63 then begin
          let src = comp_n cs b ~width:s.o_width e in
          ins b [ 55; s.o_idx; s.o_id; src ]
        end
        else begin
          let src = comp_w cs b ~width:s.o_width e in
          ins b [ 56; s.o_idx; s.o_id; src ]
        end)
    | Nonblocking (Lindex (name, addr), e) -> (
      match Hashtbl.find_opt cs.cs_mems name with
      | None -> fail "write to non-memory %s" name
      | Some m ->
        let a = comp_addr cs b addr in
        if m.om_narrow then begin
          let v = comp_n cs b ~width:m.om_elem_width e in
          ins b [ 57; m.om_idx; a; v ]
        end
        else begin
          let v = comp_w cs b ~width:m.om_elem_width e in
          ins b [ 58; m.om_idx; a; v ]
        end)
    | If (c, then_s, else_s) ->
      let sc = comp_nz cs b c in
      let jz_at = b.bl in
      ins b [ 53; sc; 0 ];
      List.iter (comp_stmt cs b) then_s;
      let jmp_at = b.bl in
      ins b [ 54; 0 ];
      b.bb.(jz_at + 2) <- b.bl;
      List.iter (comp_stmt cs b) else_s;
      b.bb.(jmp_at + 1) <- b.bl
    | Assert_stmt
        { cond = Binop (Or, Unop (Not, Binop (And, p1, p2)), Binop (Eq, a1, a2)); message }
      when natural_c cs p1 = 1 && natural_c cs p2 = 1
           && max 1 (max (natural_c cs a1) (natural_c cs a2)) <= 63 ->
      (* Port-conflict shape emitted by the memref arbiters; fused into
         one ACONFLICT dispatch instead of not/and/eq/or/assert. *)
      let sp1 = comp_n cs b ~width:1 p1 in
      let sp2 = comp_n cs b ~width:1 p2 in
      let wa = max 1 (max (natural_c cs a1) (natural_c cs a2)) in
      let sa1 = comp_n cs b ~width:wa a1 in
      let sa2 = comp_n cs b ~width:wa a2 in
      let mi = cs.cs_nmsgs in
      cs.cs_nmsgs <- mi + 1;
      cs.cs_msgs <- message :: cs.cs_msgs;
      ins b [ 61; sp1; sp2; sa1; sa2; mi ]
    | Assert_stmt { cond; message } ->
      let sc = comp_nz cs b cond in
      let mi = cs.cs_nmsgs in
      cs.cs_nmsgs <- mi + 1;
      cs.cs_msgs <- message :: cs.cs_msgs;
      ins b [ 59; sc; mi ]

  (* ---------------------------------------------------------------- *)
  (* Construction                                                      *)

  let fresh_state p =
    let n_parts = Array.length p.p_parts in
    {
      s_n = Array.copy p.p_ninit;
      s_w = Array.copy p.p_winit;
      s_nmem = Array.map (fun m -> Array.make m.om_depth 0) p.p_nmems;
      s_wmem = Array.map (fun m -> Array.make m.om_depth (Bitvec.zero m.om_elem_width)) p.p_wmems;
      s_dirty = Array.copy p.p_dirty_init;
      s_buf = fresh_ubuf ();
      s_rt = fresh_rt ();
      s_evals = Array.make (max 1 n_parts) 0;
      s_fast = Array.make (max 1 n_parts) 0;
      s_cmarks = Array.init (max 1 n_parts) (fun _ -> Array.make (max 1 p.p_n_clock_words) 0);
    }

  let create ?(partitions = 0) (flat : Flatten.flat) =
    let decls = ref [] in
    let mem_decls = ref [] in
    let assigns_rev = ref [] in
    let always_rev = ref [] in
    List.iter
      (fun item ->
        match item with
        | Wire_decl { name; width } -> decls := (name, width, false) :: !decls
        | Reg_decl { name; width } -> decls := (name, width, true) :: !decls
        | Mem_decl { name; width; depth; _ } -> mem_decls := (name, width, depth) :: !mem_decls
        | Assign { target; expr } -> assigns_rev := (target, expr) :: !assigns_rev
        | Always_ff stmts -> always_rev := stmts :: !always_rev
        | Comment _ -> ()
        | Instance _ -> fail "simulator requires a flattened design")
      flat.flat_items;
    let decls = List.rev !decls in
    let mem_decls = List.rev !mem_decls in
    let assign_list = List.rev !assigns_rev in
    let always_stmts = List.concat (List.rev !always_rev) in
    (* Slot and dependency-id allocation, as in [Compiled]. *)
    let sig_tbl = Hashtbl.create 256 in
    let mem_tbl = Hashtbl.create 16 in
    let n_narrow = ref 0 and n_wide = ref 0 and n_ids = ref 0 in
    let wide_widths = ref [] in
    List.iter
      (fun (name, width, is_reg) ->
        let idx =
          if width <= 63 then (
            let i = !n_narrow in
            incr n_narrow;
            i)
          else (
            let i = !n_wide in
            incr n_wide;
            wide_widths := width :: !wide_widths;
            i)
        in
        let id = !n_ids in
        incr n_ids;
        Hashtbl.replace sig_tbl name
          { o_name = name; o_width = width; o_is_reg = is_reg; o_idx = idx; o_id = id })
      decls;
    let nmems_rev = ref [] and wmems_rev = ref [] in
    let nn_mem = ref 0 and nw_mem = ref 0 in
    List.iter
      (fun (name, width, depth) ->
        let id = !n_ids in
        incr n_ids;
        let narrowp = width <= 63 in
        let idx =
          if narrowp then (
            let i = !nn_mem in
            incr nn_mem;
            i)
          else (
            let i = !nw_mem in
            incr nw_mem;
            i)
        in
        let m =
          { om_name = name; om_elem_width = width; om_depth = depth; om_narrow = narrowp;
            om_idx = idx; om_id = id }
        in
        if narrowp then nmems_rev := m :: !nmems_rev else wmems_rev := m :: !wmems_rev;
        Hashtbl.replace mem_tbl name m)
      mem_decls;
    let nmems = Array.of_list (List.rev !nmems_rev) in
    let wmems = Array.of_list (List.rev !wmems_rev) in
    let is_comb name =
      match Hashtbl.find_opt sig_tbl name with
      | Some s -> not s.o_is_reg
      | None -> false
    in
    let sorted = Array.of_list (topo_sort_assigns ~is_comb assign_list) in
    let n_assigns = Array.length sorted in
    (* Partitioning: union-find over "assign j reads assign i's comb
       target" edges keeps each combinational cone in one component;
       components are then greedily binned into the requested number of
       partitions, largest first. *)
    let requested = if partitions <= 0 then Pool.auto_partitions () else partitions in
    let parent = Array.init (max 1 n_assigns) (fun i -> i) in
    let rec find i =
      let p = parent.(i) in
      if p = i then i
      else begin
        let r = find p in
        parent.(i) <- r;
        r
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
    in
    let topo_of_target = Hashtbl.create 64 in
    Array.iteri (fun j (tname, _) -> Hashtbl.replace topo_of_target tname j) sorted;
    Array.iteri
      (fun j (_, expr) ->
        List.iter
          (fun dep ->
            if is_comb dep then
              match Hashtbl.find_opt topo_of_target dep with
              | Some i -> union i j
              | None -> ())
          (wire_deps expr []))
      sorted;
    let comp_members = Hashtbl.create 64 in
    for j = n_assigns - 1 downto 0 do
      let r = find j in
      let cur = Option.value ~default:[] (Hashtbl.find_opt comp_members r) in
      Hashtbl.replace comp_members r (j :: cur)
    done;
    let comps = Hashtbl.fold (fun _ l acc -> l :: acc) comp_members [] in
    let comps =
      List.sort
        (fun a b ->
          match compare (List.length b) (List.length a) with
          | 0 -> compare (List.hd a) (List.hd b)
          | c -> c)
        comps
    in
    let np = max 1 (min requested (List.length comps)) in
    let bins = Array.make np [] in
    let bin_sz = Array.make np 0 in
    List.iter
      (fun comp ->
        let best = ref 0 in
        for i = 1 to np - 1 do
          if bin_sz.(i) < bin_sz.(!best) then best := i
        done;
        bins.(!best) <- comp :: bins.(!best);
        bin_sz.(!best) <- bin_sz.(!best) + List.length comp)
      comps;
    (* Word-aligned global numbering: partition [p] owns dirty-bitset
       words [base, base + words); the assigns it holds (in topo order)
       occupy consecutive bit positions from [base * 63]. *)
    let words_of = Array.map (fun c -> (c + 62) / 63) bin_sz in
    let n_words = Array.fold_left ( + ) 0 words_of in
    let parts = Array.make np (0, 0) in
    let topo_at = Array.make (max 1 (n_words * 63)) (-1) in
    let g_of_topo = Array.make (max 1 n_assigns) (-1) in
    let wb = ref 0 in
    for pi = 0 to np - 1 do
      let members = List.sort compare (List.concat bins.(pi)) in
      parts.(pi) <- (!wb, words_of.(pi));
      List.iteri
        (fun k tj ->
          let g = (!wb * 63) + k in
          topo_at.(g) <- tj;
          g_of_topo.(tj) <- g)
        members;
      wb := !wb + words_of.(pi)
    done;
    (* Readers of each dependency id, as dirty-bitset positions. *)
    let dep_lists = Array.make (max 1 !n_ids) [] in
    Array.iteri
      (fun tj (_, expr) ->
        let g = g_of_topo.(tj) in
        List.iter
          (fun name ->
            match Hashtbl.find_opt sig_tbl name with
            | Some s -> dep_lists.(s.o_id) <- g :: dep_lists.(s.o_id)
            | None -> ())
          (wire_deps expr []);
        List.iter
          (fun name ->
            match Hashtbl.find_opt mem_tbl name with
            | Some m -> dep_lists.(m.om_id) <- g :: dep_lists.(m.om_id)
            | None -> ())
          (mem_reads expr []))
      sorted;
    (* Event-driven clock blocks: each top-level always statement is a
       block and a pseudo-reader of everything it reads anywhere —
       conditions, right-hand sides, write addresses.  Block [b] lives
       in the dirty bitset after the comb words (word [n_words + b/63],
       bit [b mod 63]), so value changes wake it through the same CSR
       as comb readers, and [clock] only executes woken blocks.  A
       block whose inputs did not change since its last run would
       re-push exactly the values its targets already hold, so skipping
       it is a no-op — except where ordering or side effects matter:
       blocks containing assertions (must re-fire every failing cycle),
       memory writes (out-of-range reporting, multi-writer commits), or
       a register also written by another block (first-statement-wins
       needs every competing push present) are pinned and always run. *)
    let always_blocks = Array.of_list always_stmts in
    let n_blocks = Array.length always_blocks in
    let n_clock_words = (n_blocks + 62) / 63 in
    Array.iteri
      (fun bi stmt ->
        let g = (n_words * 63) + bi in
        List.iter
          (fun name ->
            match Hashtbl.find_opt sig_tbl name with
            | Some s -> dep_lists.(s.o_id) <- g :: dep_lists.(s.o_id)
            | None -> ())
          (stmt_wire_deps stmt []);
        List.iter
          (fun name ->
            match Hashtbl.find_opt mem_tbl name with
            | Some m -> dep_lists.(m.om_id) <- g :: dep_lists.(m.om_id)
            | None -> ())
          (stmt_mem_reads stmt []))
      always_blocks;
    let write_sites = Hashtbl.create 64 in
    let count_site name =
      Hashtbl.replace write_sites name
        (1 + Option.value ~default:0 (Hashtbl.find_opt write_sites name))
    in
    Array.iter
      (fun stmt ->
        List.iter count_site (List.sort_uniq compare (stmt_reg_writes stmt []));
        List.iter count_site
          (List.sort_uniq compare (List.map fst (stmt_mem_writes stmt []))))
      always_blocks;
    let multi_writer name =
      Option.value ~default:0 (Hashtbl.find_opt write_sites name) > 1
    in
    (* Assertions need no pin: a block whose run records a failure
       re-marks itself (see [clock]), so it re-fires every failing
       cycle, and a skipped block's assertions all passed last run with
       the same inputs — they would pass again.  Likewise memory
       writes: a skipped write would re-push the same (address, value)
       the cell already holds — a commit no-op — unless the address is
       out of range, where commit must record a fresh failure every
       cycle; commit recording any failure wakes every block in
       [p_oob_mask] (the blocks whose write address can exceed its
       memory: natural width [wa] is masked nonnegative, so depth >=
       2^wa cannot be missed), so out-of-range writers re-fire while
       they misbehave.  Only first-statement-wins races — a register or
       memory written by more than one block — need a pin, since a
       winning push must out-rank the losers every cycle. *)
    let sig_width name =
      match Hashtbl.find_opt sig_tbl name with
      | Some s -> s.o_width
      | None -> (
        match Hashtbl.find_opt mem_tbl name with
        | Some m -> m.om_elem_width
        | None -> fail "unknown signal %s" name)
    in
    let mem_write_can_miss (name, addr) =
      match Hashtbl.find_opt mem_tbl name with
      | None -> true
      | Some m ->
        let wa = max 1 (natural_width ~signal_width:sig_width addr) in
        wa > 62 || 1 lsl wa > m.om_depth
    in
    let clock_pinned = Array.make (max 1 n_clock_words) 0 in
    let oob_mask = Array.make (max 1 n_clock_words) 0 in
    Array.iteri
      (fun bi stmt ->
        let mws = stmt_mem_writes stmt [] in
        let pinned =
          List.exists (fun (name, _) -> multi_writer name) mws
          || List.exists multi_writer (stmt_reg_writes stmt [])
        in
        let bit = 1 lsl (bi mod 63) in
        if pinned then clock_pinned.(bi / 63) <- clock_pinned.(bi / 63) lor bit
        else if List.exists mem_write_can_miss mws then
          oob_mask.(bi / 63) <- oob_mask.(bi / 63) lor bit)
      always_blocks;
    let marks_b = new_builder () in
    let mark_off = Array.make (!n_ids + 1) 0 in
    for id = 0 to !n_ids - 1 do
      mark_off.(id) <- marks_b.bl;
      List.iter
        (fun g -> emit marks_b (((g / 63) lsl 6) lor (g mod 63)))
        (List.sort_uniq compare dep_lists.(id))
    done;
    mark_off.(!n_ids) <- marks_b.bl;
    (* Compile every assign block and the clock program. *)
    let cs =
      {
        cs_signals = sig_tbl;
        cs_mems = mem_tbl;
        cs_nn = !n_narrow;
        cs_nextra = [];
        cs_nw = !n_wide;
        cs_wextra = [];
        cs_nconst = Hashtbl.create 64;
        cs_msgs = [];
        cs_nmsgs = 0;
      }
    in
    let code = new_builder () in
    let block_off = Array.make (max 1 (n_words * 63)) (-1) in
    Array.iteri
      (fun g tj ->
        if tj >= 0 then begin
          let target, expr = sorted.(tj) in
          match Hashtbl.find_opt sig_tbl target with
          | None -> fail "assign to undeclared signal %s" target
          | Some s ->
            block_off.(g) <- code.bl;
            let lo = mark_off.(s.o_id) and hi = mark_off.(s.o_id + 1) in
            if s.o_width <= 63 then begin
              let src = comp_n cs code ~width:s.o_width expr in
              (* Peephole: an assign whose value is a freshly-computed
                 mux (the dominant comb shape — stall/enable muxes)
                 fuses mux and change-detecting store into one
                 dispatch.  The mux temp is dead after the store. *)
              if
                code.blast >= 0
                && code.bl - code.blast = 5
                && code.bb.(code.blast) = 21
                && code.bb.(code.blast + 1) = src
              then begin
                let c = code.bb.(code.blast + 2)
                and a = code.bb.(code.blast + 3)
                and b = code.bb.(code.blast + 4) in
                code.bl <- code.blast;
                ins code [ 62; s.o_idx; c; a; b; lo; hi ]
              end
              else ins code [ 50; s.o_idx; src; lo; hi ]
            end
            else begin
              let src = comp_w cs code ~width:s.o_width expr in
              ins code [ 51; s.o_idx; src; lo; hi ]
            end
        end)
      topo_at;
    let clock_b = new_builder () in
    let clock_off = Array.make (max 1 n_blocks) (-1) in
    Array.iteri
      (fun bi stmt ->
        clock_off.(bi) <- clock_b.bl;
        comp_stmt cs clock_b stmt;
        ins clock_b [ 52 ])
      always_blocks;
    (* Initial register files: signals first (zero), then constants and
       temporaries in allocation order. *)
    let ninit = Array.make (max 1 cs.cs_nn) 0 in
    ignore (List.fold_left (fun i v -> ninit.(i) <- v; i - 1) (cs.cs_nn - 1) cs.cs_nextra : int);
    let winit = Array.make (max 1 cs.cs_nw) dummy_bv in
    ignore
      (List.fold_left (fun i w -> winit.(i) <- Bitvec.zero w; i - 1) (!n_wide - 1) !wide_widths
        : int);
    ignore (List.fold_left (fun i v -> winit.(i) <- v; i - 1) (cs.cs_nw - 1) cs.cs_wextra : int);
    let dirty_init = Array.make (max 1 (n_words + n_clock_words)) 0 in
    Array.iteri
      (fun pi (base, wcnt) ->
        let count = bin_sz.(pi) in
        for k = 0 to wcnt - 1 do
          let remaining = count - (k * 63) in
          dirty_init.(base + k) <- (if remaining >= 63 then -1 else mask remaining)
        done)
      parts;
    (* Every clock block starts dirty: the first cycle establishes the
       "targets hold this block's last pushes" invariant. *)
    for k = 0 to n_clock_words - 1 do
      let remaining = n_blocks - (k * 63) in
      dirty_init.(n_words + k) <- (if remaining >= 63 then -1 else mask remaining)
    done;
    let prog =
      {
        p_signals = sig_tbl;
        p_mem_tbl = mem_tbl;
        p_nmems = nmems;
        p_wmems = wmems;
        p_code = finish code;
        p_block_off = block_off;
        p_clock_code = finish clock_b;
        p_clock_off = clock_off;
        p_clock_pinned = clock_pinned;
        p_clock_oob = oob_mask;
        p_n_clock_words = n_clock_words;
        p_marks = finish marks_b;
        p_mark_off = mark_off;
        p_msgs = Array.of_list (List.rev cs.cs_msgs);
        p_parts = parts;
        p_n_words = n_words;
        p_n_assigns = n_assigns;
        p_ninit = ninit;
        p_winit = winit;
        p_dirty_init = dirty_init;
        p_n_narrow_signals = !n_narrow;
        p_n_wide_signals = !n_wide;
        p_inputs = flat.flat_inputs;
        p_outputs = flat.flat_outputs;
      }
    in
    { prog; st = fresh_state prog }

  (* A new simulator sharing the compiled program, with fresh state —
     elaborate/compile once, run many stimuli. *)
  let fork t = { prog = t.prog; st = fresh_state t.prog }

  let partitions t = Array.length t.prog.p_parts

  (* ---------------------------------------------------------------- *)
  (* Cycle execution                                                   *)

  (* Drain one partition's word range.  A block execution can mark
     later bits of the word being drained (successors are always
     forward in topo order within a component, and components never
     span partitions), so the word is re-read after every block and the
     lowest set bit processed next: blocks always run in ascending
     index order with fully-updated predecessors, at most once per
     settle — the same guarantee as the compiled engine's linear
     scan. *)
  let settle_range p st (base, wcnt) pi =
    let module Array = Unchecked in
    let dirty = st.s_dirty in
    let code = p.p_code and block_off = p.p_block_off in
    let cm = st.s_cmarks.(pi) in
    let ev = ref 0 and fe = ref 0 in
    for w = base to base + wcnt - 1 do
      let gbase = w * 63 in
      while dirty.(w) <> 0 do
        let tz = ntz dirty.(w) in
        dirty.(w) <- dirty.(w) land lnot (1 lsl tz);
        incr ev;
        fe := !fe + exec p st cm code block_off.(gbase + tz)
      done
    done;
    st.s_evals.(pi) <- st.s_evals.(pi) + !ev;
    st.s_fast.(pi) <- st.s_fast.(pi) + !fe

  let settle t =
    !settle_fault_hook ();
    let p = t.prog and st = t.st in
    let rt = st.s_rt in
    rt.settles <- rt.settles + 1;
    let parts = p.p_parts in
    let tot0 = Array.fold_left ( + ) 0 st.s_evals in
    if Array.length parts = 1 then settle_range p st parts.(0) 0
    else
      Pool.run (List.init (Array.length parts) (fun i () -> settle_range p st parts.(i) i));
    (* Merge the per-partition clock wake-ups gathered during the drain
       into the real clock dirty words (single-writer: main domain,
       after the barrier). *)
    let cw = p.p_n_clock_words in
    if cw > 0 then begin
      let dirty = st.s_dirty and base = p.p_n_words in
      Array.iter
        (fun cm ->
          for k = 0 to cw - 1 do
            if cm.(k) <> 0 then begin
              dirty.(base + k) <- dirty.(base + k) lor cm.(k);
              cm.(k) <- 0
            end
          done)
        st.s_cmarks
    end;
    let tot1 = Array.fold_left ( + ) 0 st.s_evals in
    rt.evaluated <- tot1;
    rt.fast_evaluated <- Array.fold_left ( + ) 0 st.s_fast;
    rt.skipped <- rt.skipped + (p.p_n_assigns - (tot1 - tot0))

  (* Commit in reverse push order — same first-statement-wins and
     out-of-range reporting semantics as the other engines. *)
  let commit t =
    (* Drain indices come from the update buffer and memory addresses
       are range-checked below, so unchecked indexing is safe here
       too. *)
    let module Array = Unchecked in
    let p = t.prog and st = t.st in
    let b = st.s_buf in
    let nf = st.s_n and wf = st.s_w in
    for i = b.u_len - 1 downto 0 do
      match b.u_kind.(i) with
      | 0 ->
        let idx = b.u_a.(i) and v = b.u_iv.(i) in
        if nf.(idx) <> v then begin
          nf.(idx) <- v;
            mark_id p st b.u_b.(i)
        end
      | 1 ->
        let idx = b.u_a.(i) and v = b.u_bv.(i) in
        if not (Bitvec.equal wf.(idx) v) then begin
          wf.(idx) <- v;
          mark_id p st b.u_b.(i)
        end
      | 2 ->
        let mi = b.u_a.(i) and a = b.u_b.(i) in
        let cells = st.s_nmem.(mi) in
        if a >= 0 && a < Array.length cells then begin
          let v = b.u_iv.(i) in
          if cells.(a) <> v then begin
            cells.(a) <- v;
            mark_id p st p.p_nmems.(mi).om_id
          end
        end
        else
          st.s_rt.failures <-
            { at_cycle = st.s_rt.cycle;
              message = Printf.sprintf "write past end of %s" p.p_nmems.(mi).om_name }
            :: st.s_rt.failures
      | _ ->
        let mi = b.u_a.(i) and a = b.u_b.(i) in
        let cells = st.s_wmem.(mi) in
        if a >= 0 && a < Array.length cells then begin
          let v = b.u_bv.(i) in
          if not (Bitvec.equal cells.(a) v) then begin
            cells.(a) <- v;
            mark_id p st p.p_wmems.(mi).om_id
          end
        end
        else
          st.s_rt.failures <-
            { at_cycle = st.s_rt.cycle;
              message = Printf.sprintf "write past end of %s" p.p_wmems.(mi).om_name }
            :: st.s_rt.failures
    done;
    b.u_len <- 0

  (* Drain the clock half of the dirty bitset in ascending block order
     (= original statement order, preserving push order for commit's
     first-statement-wins), always including the pinned mask.  Nothing
     marks clock words during the drain itself — clock code has no
     NSTORE/WSTORE, pushes don't mark — so snapshotting each word is
     safe; marks from [commit] land in the already-cleared words and
     wake blocks for the next cycle. *)
  let clock t =
    let module Array = Unchecked in
    let p = t.prog and st = t.st in
    st.s_buf.u_len <- 0;
    let dirty = st.s_dirty in
    let base = p.p_n_words in
    let code = p.p_clock_code and off = p.p_clock_off in
    let pinned = p.p_clock_pinned in
    let cm = st.s_cmarks.(0) in
    for k = 0 to p.p_n_clock_words - 1 do
      let d = ref (dirty.(base + k) lor pinned.(k)) in
      dirty.(base + k) <- 0;
      let bbase = k * 63 in
      while !d <> 0 do
        let tz = ntz !d in
        d := !d land lnot (1 lsl tz);
        let before = st.s_rt.failures in
        ignore (exec p st cm code off.(bbase + tz) : int);
        (* A failing assertion must re-fire every cycle it fails: a
           block that just recorded a failure re-marks itself. *)
        if st.s_rt.failures != before then
          dirty.(base + k) <- dirty.(base + k) lor (1 lsl tz)
      done
    done;
    let before_commit = st.s_rt.failures in
    commit t;
    (* Commit only records out-of-range write failures; if one fired,
       wake every block that can write out of range so it re-records
       next cycle, like the reference engine re-walking it would. *)
    if st.s_rt.failures != before_commit then begin
      let om = p.p_clock_oob in
      for k = 0 to p.p_n_clock_words - 1 do
        if om.(k) <> 0 then dirty.(base + k) <- dirty.(base + k) lor om.(k)
      done
    end;
    st.s_rt.cycle <- st.s_rt.cycle + 1

  let step t =
    settle t;
    clock t

  let settle_only t = settle t

  let set_input t name v =
    match Hashtbl.find_opt t.prog.p_signals name with
    | None -> fail "unknown input %s" name
    | Some s ->
      if s.o_width <= 63 then begin
        let v = Bitvec.to_int_trunc (Bitvec.resize ~width:s.o_width v) in
        if t.st.s_n.(s.o_idx) <> v then begin
          t.st.s_n.(s.o_idx) <- v;
          mark_id t.prog t.st s.o_id
        end
      end
      else begin
        let v = Bitvec.resize ~width:s.o_width v in
        if not (Bitvec.equal t.st.s_w.(s.o_idx) v) then begin
          t.st.s_w.(s.o_idx) <- v;
          mark_id t.prog t.st s.o_id
        end
      end

  let peek t name =
    match Hashtbl.find_opt t.prog.p_signals name with
    | Some s ->
      if s.o_width <= 63 then Bitvec.of_int ~width:s.o_width t.st.s_n.(s.o_idx)
      else t.st.s_w.(s.o_idx)
    | None -> fail "unknown signal %s" name

  (* Pre-resolved [peek]: the name lookup happens once, the returned
     closure reads the register file directly — for samplers that read
     every signal every cycle. *)
  let reader t name =
    match Hashtbl.find_opt t.prog.p_signals name with
    | Some s ->
      if s.o_width <= 63 then
        let file = t.st.s_n and idx = s.o_idx and w = s.o_width in
        fun () -> Bitvec.of_int ~width:w file.(idx)
      else
        let file = t.st.s_w and idx = s.o_idx in
        fun () -> file.(idx)
    | None -> fail "unknown signal %s" name

  (* Pre-resolved [set_input], same motivation. *)
  let writer t name =
    match Hashtbl.find_opt t.prog.p_signals name with
    | None -> fail "unknown input %s" name
    | Some s ->
      let prog = t.prog and st = t.st in
      let idx = s.o_idx and w = s.o_width and id = s.o_id in
      if w <= 63 then (fun v ->
        let v = Bitvec.to_int_trunc (Bitvec.resize ~width:w v) in
        if st.s_n.(idx) <> v then begin
          st.s_n.(idx) <- v;
          mark_id prog st id
        end)
      else fun v ->
        let v = Bitvec.resize ~width:w v in
        if not (Bitvec.equal st.s_w.(idx) v) then begin
          st.s_w.(idx) <- v;
          mark_id prog st id
        end

  let signal_width t name =
    match Hashtbl.find_opt t.prog.p_signals name with
    | Some s -> s.o_width
    | None -> (
      match Hashtbl.find_opt t.prog.p_mem_tbl name with
      | Some m -> m.om_elem_width
      | None -> fail "unknown signal %s" name)

  let failures t = List.rev t.st.s_rt.failures
  let cycle t = t.st.s_rt.cycle

  let signal_names t =
    Hashtbl.fold (fun name s acc -> (name, s.o_width) :: acc) t.prog.p_signals []
    |> List.sort compare

  (* Cold path (assertion probes from tests): a tree walk mirroring
     [Reference.eval] against the opcode state. *)
  let eval_bool t expr =
    let natural e = natural_width ~signal_width:(signal_width t) e in
    let rec eval ~width e : Bitvec.t =
      match e with
      | Const b -> Bitvec.resize ~width b
      | Ref name -> Bitvec.resize ~width (peek t name)
      | Index (name, addr) -> (
        match Hashtbl.find_opt t.prog.p_mem_tbl name with
        | Some m -> (
          let a = Bitvec.to_int (eval ~width:(max 1 (natural addr)) addr) in
          if a >= m.om_depth then Bitvec.zero width
          else if m.om_narrow then
            Bitvec.resize ~width (Bitvec.of_int ~width:m.om_elem_width t.st.s_nmem.(m.om_idx).(a))
          else Bitvec.resize ~width t.st.s_wmem.(m.om_idx).(a))
        | None -> fail "indexing non-memory %s" name)
      | Slice (e1, hi, lo) ->
        let v = eval ~width:(max (hi + 1) (natural e1)) e1 in
        Bitvec.resize ~width (Bitvec.extract ~hi ~lo v)
      | Unop (Not, e1) -> Bitvec.lognot (eval ~width e1)
      | Unop (Red_or, e1) ->
        let v = eval ~width:(max 1 (natural e1)) e1 in
        Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero v)))
      | Unop (Red_and, e1) ->
        let w = max 1 (natural e1) in
        let v = eval ~width:w e1 in
        Bitvec.resize ~width (Bitvec.of_bool (Bitvec.equal v (Bitvec.ones w)))
      | Binop (((Add | Sub | Mul | And | Or | Xor) as op), a, b) ->
        let x = eval ~width a and y = eval ~width b in
        let f =
          match op with
          | Add -> Bitvec.add
          | Sub -> Bitvec.sub
          | Mul -> Bitvec.mul
          | And -> Bitvec.logand
          | Or -> Bitvec.logor
          | Xor -> Bitvec.logxor
          | _ -> assert false
        in
        f x y
      | Binop (Shl, a, b) ->
        let shift = Bitvec.to_int (eval ~width:(max 1 (natural b)) b) in
        Bitvec.shift_left (eval ~width a) (min shift width)
      | Binop (Shr, a, b) ->
        let shift = Bitvec.to_int (eval ~width:(max 1 (natural b)) b) in
        Bitvec.shift_right_logical (eval ~width a) (min shift width)
      | Binop (((Lt | Le | Gt | Ge | Eq | Ne) as op), a, b) ->
        let w = max 1 (max (natural a) (natural b)) in
        let c = Bitvec.compare (eval ~width:w a) (eval ~width:w b) in
        let r =
          match op with
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | Eq -> c = 0
          | Ne -> c <> 0
          | _ -> assert false
        in
        Bitvec.resize ~width (Bitvec.of_bool r)
      | Binop (Log_and, a, b) ->
        let x = eval ~width:(max 1 (natural a)) a in
        let y = eval ~width:(max 1 (natural b)) b in
        Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) && not (Bitvec.is_zero y)))
      | Binop (Log_or, a, b) ->
        let x = eval ~width:(max 1 (natural a)) a in
        let y = eval ~width:(max 1 (natural b)) b in
        Bitvec.resize ~width (Bitvec.of_bool (not (Bitvec.is_zero x) || not (Bitvec.is_zero y)))
      | Ternary (c, a, b) ->
        if Bitvec.is_zero (eval ~width:(max 1 (natural c)) c) then eval ~width b
        else eval ~width a
      | Concat [] -> fail "empty concatenation"
      | Concat (e0 :: rest) ->
        let part e = eval ~width:(max 1 (natural e)) e in
        let v = List.fold_left (fun acc e -> Bitvec.concat acc (part e)) (part e0) rest in
        Bitvec.resize ~width v
    in
    not (Bitvec.is_zero (eval ~width:(max 1 (natural expr)) expr))

  let stats t =
    {
      st_cycles = t.st.s_rt.cycle;
      st_settles = t.st.s_rt.settles;
      st_assigns_evaluated = t.st.s_rt.evaluated;
      st_assigns_skipped = t.st.s_rt.skipped;
      st_fastpath_evaluated = t.st.s_rt.fast_evaluated;
      st_narrow_signals = t.prog.p_n_narrow_signals;
      st_wide_signals = t.prog.p_n_wide_signals;
    }
end

(* ================================================================== *)
(* Engine dispatch: the opcode engine is the default; callers pick the  *)
(* closure-based engine with [create ~engine:`Compiled] or the          *)
(* reference walker with [create ~engine:`Reference].                   *)

type engine = [ `Opcode | `Compiled | `Reference ]

let engine_name : engine -> string = function
  | `Opcode -> "opcode"
  | `Compiled -> "compiled"
  | `Reference -> "reference"

let engine_names = [ "opcode"; "compiled"; "reference" ]

let engine_of_string : string -> engine option = function
  | "opcode" -> Some `Opcode
  | "compiled" -> Some `Compiled
  | "reference" -> Some `Reference
  | _ -> None

type impl = O of Opcode.t | C of Compiled.t | R of Reference.t

(* The flattened design is retained so [fork] of the non-forkable
   engines can rebuild from scratch (the opcode engine shares its
   compiled program instead). *)
type t = { impl : impl; flat : Flatten.flat; engine : engine }

(* [partitions] only affects the opcode engine: 0 (the default) sizes
   the partition count to the machine, 1 forces a sequential settle,
   and larger values bound the number of register-delimited groups
   settled in parallel. *)
let create ?(engine = `Opcode) ?(partitions = 0) flat =
  let impl =
    match engine with
    | `Opcode -> O (Opcode.create ~partitions flat)
    | `Compiled -> C (Compiled.create flat)
    | `Reference -> R (Reference.create flat)
  in
  { impl; flat; engine }

let engine t = t.engine

(* Actual partition count in use (1 for the non-partitioned engines). *)
let partitions t = match t.impl with O o -> Opcode.partitions o | C _ | R _ -> 1

(* A fresh simulator over the same design: the opcode engine forks its
   state and shares the compiled program; the others recompile. *)
let fork t =
  match t.impl with
  | O o -> { t with impl = O (Opcode.fork o) }
  | C _ -> { t with impl = C (Compiled.create t.flat) }
  | R _ -> { t with impl = R (Reference.create t.flat) }

let signal_width t name =
  match t.impl with
  | O o -> Opcode.signal_width o name
  | C c -> Compiled.signal_width c name
  | R r -> Reference.signal_width r name

let set_input t name v =
  match t.impl with
  | O o -> Opcode.set_input o name v
  | C c -> Compiled.set_input c name v
  | R r -> Reference.set_input r name v

let peek t name =
  match t.impl with
  | O o -> Opcode.peek o name
  | C c -> Compiled.peek c name
  | R r -> Reference.peek r name

(* A pre-resolved [peek]: the name lookup happens once, the returned
   closure reads the current value directly.  The VCD sampler uses this
   to avoid a hashtable probe per signal per cycle. *)
let reader t name =
  match t.impl with
  | O o -> Opcode.reader o name
  | C c -> Compiled.reader c name
  | R r -> fun () -> Reference.peek r name

(* A pre-resolved [set_input]; same contract as [reader]. *)
let writer t name =
  match t.impl with
  | O o -> Opcode.writer o name
  | C c -> Compiled.writer c name
  | R r -> fun v -> Reference.set_input r name v

let clock t =
  match t.impl with O o -> Opcode.clock o | C c -> Compiled.clock c | R r -> Reference.clock r

let step t =
  match t.impl with O o -> Opcode.step o | C c -> Compiled.step c | R r -> Reference.step r

let settle_only t =
  match t.impl with
  | O o -> Opcode.settle_only o
  | C c -> Compiled.settle_only c
  | R r -> Reference.settle_only r

let failures t =
  match t.impl with
  | O o -> Opcode.failures o
  | C c -> Compiled.failures c
  | R r -> Reference.failures r

let cycle t =
  match t.impl with O o -> Opcode.cycle o | C c -> Compiled.cycle c | R r -> Reference.cycle r

let signal_names t =
  match t.impl with
  | O o -> Opcode.signal_names o
  | C c -> Compiled.signal_names c
  | R r -> Reference.signal_names r

let eval_bool t expr =
  match t.impl with
  | O o -> Opcode.eval_bool o expr
  | C c -> Compiled.eval_bool c expr
  | R r -> Reference.eval_bool r expr

let stats t =
  match t.impl with
  | O o -> Opcode.stats o
  | C c -> Compiled.stats c
  | R r -> Reference.stats r

(* Report this run's statistics into the innermost [Pass.with_counters]
   collector (a no-op outside one), so `hirc --stats` and the Chrome
   traces cover simulation alongside the compiler passes. *)
let record_stats t =
  let s = stats t in
  let c n v = Hir_ir.Pass.record_counter ~n:v ("sim." ^ n) in
  c "cycles" s.st_cycles;
  c "settles" s.st_settles;
  c "assigns_evaluated" s.st_assigns_evaluated;
  c "assigns_skipped" s.st_assigns_skipped;
  c "fastpath_evaluated" s.st_fastpath_evaluated;
  c "narrow_signals" s.st_narrow_signals;
  c "wide_signals" s.st_wide_signals;
  c "partitions" (partitions t)
