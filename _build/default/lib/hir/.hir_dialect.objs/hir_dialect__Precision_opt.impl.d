lib/hir/precision_opt.ml: Hashtbl Hir_ir Ir List Ops Pass Typ
