(* Attributes: constant, uniqued metadata attached to operations. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | String of string
  | Symbol of string  (** Reference to a symbol, printed as [@name]. *)
  | Type of Typ.t
  | Array of t list
  | Dict of (string * t) list

let rec pp fmt = function
  | Unit -> Format.pp_print_string fmt "unit"
  | Bool b -> Format.pp_print_bool fmt b
  | Int n -> Format.pp_print_int fmt n
  | String s -> Format.fprintf fmt "%S" s
  | Symbol s -> Format.fprintf fmt "@%s" s
  | Type t -> Format.fprintf fmt "!ty<%a>" Typ.pp t
  | Array l ->
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp)
      l
  | Dict l ->
    let pp_entry fmt (k, v) = Format.fprintf fmt "%s = %a" k pp v in
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_entry)
      l

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b

(* Typed accessors; raise on shape mismatch so that misuse in passes
   fails loudly rather than silently. *)
let as_int = function Int n -> n | a -> failwith ("Attribute.as_int: " ^ to_string a)
let as_bool = function Bool b -> b | a -> failwith ("Attribute.as_bool: " ^ to_string a)
let as_string = function String s -> s | a -> failwith ("Attribute.as_string: " ^ to_string a)
let as_symbol = function Symbol s -> s | a -> failwith ("Attribute.as_symbol: " ^ to_string a)
let as_type = function Type t -> t | a -> failwith ("Attribute.as_type: " ^ to_string a)
let as_array = function Array l -> l | a -> failwith ("Attribute.as_array: " ^ to_string a)
